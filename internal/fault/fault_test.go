package fault

import (
	"errors"
	"testing"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
)

func mustNew(t *testing.T, s Schedule) *Injector {
	t.Helper()
	inj, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestDeliveryDeterministic pins the plane's core property: two injectors
// built from the same schedule make identical decisions for every
// (id, attempt), and the decision streams for distinct fault kinds are
// decorrelated (changing the seed changes outcomes).
func TestDeliveryDeterministic(t *testing.T) {
	s := Schedule{Seed: 42, DropProb: 0.3, DelayProb: 0.3, DupProb: 0.3}
	a, b := mustNew(t, s), mustNew(t, s)
	diff := 0
	other := mustNew(t, Schedule{Seed: 43, DropProb: 0.3, DelayProb: 0.3, DupProb: 0.3})
	for id := uint64(1); id <= 500; id++ {
		for attempt := 1; attempt <= 3; attempt++ {
			oa, ob := a.Delivery(id, attempt), b.Delivery(id, attempt)
			if oa != ob {
				t.Fatalf("id=%d attempt=%d: %+v vs %+v", id, attempt, oa, ob)
			}
			if oa != other.Delivery(id, attempt) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("seed change did not change any outcome")
	}
}

// TestDeliveryAtLeastOnce pins the redelivery bound: even with certain
// drops, attempt MaxAttempts always delivers, and backoff stays capped.
func TestDeliveryAtLeastOnce(t *testing.T) {
	inj := mustNew(t, Schedule{Seed: 7, DropProb: 1.0, MaxAttempts: 4})
	for id := uint64(1); id <= 100; id++ {
		for attempt := 1; attempt < 4; attempt++ {
			o := inj.Delivery(id, attempt)
			if !o.Drop {
				t.Fatalf("id=%d attempt=%d: DropProb=1 did not drop", id, attempt)
			}
			if o.Backoff == 0 || o.Backoff > 8 {
				t.Fatalf("id=%d attempt=%d: backoff %d outside (0,8]", id, attempt, o.Backoff)
			}
		}
		if o := inj.Delivery(id, 4); o.Drop {
			t.Fatalf("id=%d: final attempt dropped — delivery is not at-least-once", id)
		}
	}
}

// TestScheduleValidation rejects malformed schedules.
func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{DropProb: -0.1},
		{DupProb: 1.5},
		{DelayProb: 2},
		{Crashes: []Crash{{Block: 3, Shard: -1}}},
		{WaveStallFlushes: -1},
		{CommitFailEvery: -2},
	}
	for i, s := range bad {
		if _, err := New(s); err == nil {
			t.Errorf("schedule %d accepted: %+v", i, s)
		}
	}
	if _, err := New(Schedule{}); err != nil {
		t.Errorf("zero schedule rejected: %v", err)
	}
}

// TestPeriodicCrashes pins the helper's rotation and the injector's
// per-block lookup.
func TestPeriodicCrashes(t *testing.T) {
	cs := PeriodicCrashes(5, 20, 3)
	want := []Crash{{5, 0}, {10, 1}, {15, 2}, {20, 0}}
	if len(cs) != len(want) {
		t.Fatalf("got %d crashes, want %d", len(cs), len(want))
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("crash %d = %+v, want %+v", i, cs[i], want[i])
		}
	}
	inj := mustNew(t, Schedule{Crashes: cs})
	if !inj.HasCrashes() {
		t.Error("HasCrashes false with a crash schedule")
	}
	if got := inj.CrashedShards(10); len(got) != 1 || got[0] != 1 {
		t.Errorf("CrashedShards(10) = %v", got)
	}
	if got := inj.CrashedShards(11); got != nil {
		t.Errorf("CrashedShards(11) = %v, want none", got)
	}
}

// TestCommitFails pins the transient-failure cadence: every Nth commit
// fails CommitFailCount times, then succeeds; others never fail.
func TestCommitFails(t *testing.T) {
	inj := mustNew(t, Schedule{CommitFailEvery: 3, CommitFailCount: 2})
	for seq := uint64(0); seq < 10; seq++ {
		shouldFail := seq != 0 && seq%3 == 0
		for attempt := 1; attempt <= 4; attempt++ {
			got := inj.CommitFails(seq, attempt)
			want := shouldFail && attempt <= 2
			if got != want {
				t.Errorf("CommitFails(%d, %d) = %v, want %v", seq, attempt, got, want)
			}
		}
	}
}

// TestFlakyDirectoryWaveStall pins the degradation path: a wave commit
// stalls for the configured number of flushes while non-wave commits
// overtake it, then lands intact (tear check clean).
func TestFlakyDirectoryWaveStall(t *testing.T) {
	d := directory.New(directory.Config{})
	inj := mustNew(t, Schedule{WaveStallFlushes: 2})
	f := NewFlakyDirectory(d, inj)

	if _, err := f.CommitBatch(directory.Batch{Set: []directory.Move{{V: 1, To: 0}, {V: 2, To: 1}}}, false); err != nil {
		t.Fatal(err)
	}
	wave := directory.Batch{Set: []directory.Move{{V: 1, To: 1}, {V: 2, To: 0}}}
	if _, err := f.CommitBatch(wave, true); err != nil {
		t.Fatal(err)
	}
	if f.PendingWaves() != 1 {
		t.Fatalf("PendingWaves = %d after wave commit, want 1", f.PendingWaves())
	}
	// The stalled wave must not be visible; later placements overtake it.
	if sh, _ := d.Current().Lookup(1); sh != 0 {
		t.Error("stalled wave became visible early")
	}
	if _, err := f.CommitBatch(directory.Batch{Set: []directory.Move{{V: 3, To: 2}}}, false); err != nil {
		t.Fatal(err)
	}
	if f.PendingWaves() != 1 {
		t.Fatalf("wave landed after one flush, want two")
	}
	if _, err := f.CommitBatch(directory.Batch{Set: []directory.Move{{V: 4, To: 2}}}, false); err != nil {
		t.Fatal(err)
	}
	if f.PendingWaves() != 0 {
		t.Fatalf("PendingWaves = %d after stall expiry, want 0", f.PendingWaves())
	}
	// The whole wave is visible atomically, alongside the overtakers.
	for v, want := range map[graph.VertexID]int{1: 1, 2: 0, 3: 2, 4: 2} {
		if sh, ok := d.Current().Lookup(v); !ok || sh != want {
			t.Errorf("Lookup(%d) = %d,%v, want %d", v, sh, ok, want)
		}
	}
	m := inj.Metrics.Snapshot()
	if m.WaveStalls != 1 || m.StallFlushes != 1 || m.TornCommits != 0 {
		t.Errorf("metrics = %+v, want 1 stall, 1 stall-flush, 0 torn", m)
	}
}

// TestFlakyDirectoryDrainStalls pins end-of-run cleanup: stalled waves
// land immediately, in order.
func TestFlakyDirectoryDrainStalls(t *testing.T) {
	d := directory.New(directory.Config{})
	inj := mustNew(t, Schedule{WaveStallFlushes: 100})
	f := NewFlakyDirectory(d, inj)
	if _, err := f.CommitBatch(directory.Batch{Set: []directory.Move{{V: 1, To: 0}}}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CommitBatch(directory.Batch{Set: []directory.Move{{V: 1, To: 1}}}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CommitBatch(directory.Batch{Set: []directory.Move{{V: 1, To: 2}}}, true); err != nil {
		t.Fatal(err)
	}
	if err := f.DrainStalls(); err != nil {
		t.Fatal(err)
	}
	if f.PendingWaves() != 0 {
		t.Fatal("DrainStalls left pending waves")
	}
	// The later wave wins — arrival order preserved.
	if sh, _ := d.Current().Lookup(1); sh != 2 {
		t.Errorf("Lookup(1) = %d after drain, want 2 (later wave last)", sh)
	}
}

// TestFlakyDirectoryCommitFailures pins the retry loop: injected
// transient failures are absorbed (the caller never sees them) and
// counted.
func TestFlakyDirectoryCommitFailures(t *testing.T) {
	d := directory.New(directory.Config{})
	inj := mustNew(t, Schedule{CommitFailEvery: 1, CommitFailCount: 3})
	f := NewFlakyDirectory(d, inj)
	for i := 1; i <= 4; i++ {
		if _, err := f.CommitBatch(directory.Batch{Set: []directory.Move{{V: graph.VertexID(i), To: 0}}}, false); err != nil {
			t.Fatal(err)
		}
	}
	// seq 0 never fails; seqs 1..3 fail 3 times each.
	if m := inj.Metrics.Snapshot(); m.CommitFailures != 9 {
		t.Errorf("CommitFailures = %d, want 9", m.CommitFailures)
	}
	if d.Current().Len() != 4 {
		t.Errorf("entries = %d, want 4 — a transient failure leaked", d.Current().Len())
	}
}

// TestMetricsMaxLag pins the high-water helper.
func TestMetricsMaxLag(t *testing.T) {
	var m Metrics
	for _, lag := range []uint64{2, 5, 3} {
		m.MaxLag(lag)
	}
	if got := m.Snapshot().MaxEpochLag; got != 5 {
		t.Errorf("MaxEpochLag = %d, want 5", got)
	}
}

var _ = errors.Is // keep errors imported if assertions above change

// TestScheduleShardsValidation is the elastic-k satellite's compile-time
// check: a schedule that declares its shard universe rejects crash entries
// naming shards outside it, so a fault plan written for k=8 fails fast when
// replayed against a k=4 run instead of silently never firing.
func TestScheduleShardsValidation(t *testing.T) {
	if _, err := New(Schedule{Shards: 4, Crashes: []Crash{{Block: 3, Shard: 4}}}); err == nil {
		t.Error("crash naming shard 4 accepted with Shards: 4")
	}
	if _, err := New(Schedule{Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	// In-range entries and the undeclared (Shards: 0) legacy shape pass.
	if _, err := New(Schedule{Shards: 4, Crashes: []Crash{{Block: 3, Shard: 3}}}); err != nil {
		t.Errorf("in-range crash rejected: %v", err)
	}
	if _, err := New(Schedule{Crashes: []Crash{{Block: 3, Shard: 99}}}); err != nil {
		t.Errorf("undeclared-universe schedule rejected: %v", err)
	}
}
