package fault

import (
	"fmt"
	"sync"

	"ethpart/internal/directory"
)

// FlakyDirectory sits between a Publisher and the placement directory and
// injects the directory-degradation faults of a Schedule:
//
//   - transient commit failures (CommitFailEvery/CommitFailCount) are
//     absorbed by an internal retry loop — the publisher above never sees
//     them, only the metrics do;
//   - repartition wave commits stall for WaveStallFlushes subsequent
//     flushes before landing. Later non-wave commits overtake the stalled
//     wave — safe in this stack because a wave only rehomes vertices that
//     are already placed, while overtaking flushes carry first-sight
//     placements of vertices the wave cannot name; readers pinned past the
//     stalled flip degrade to journaled snapshots with bounded staleness.
//
// Every wave that lands is immediately tear-checked: the committed epoch
// is re-pinned and every move of the batch must read back its destination.
// A failure counts a TornCommit — the invariant `ethpart chaos` requires
// to stay zero.
type FlakyDirectory struct {
	d   *directory.Directory
	c   directory.Committer // commit target; d itself, or a wrapper below
	inj *Injector

	mu      sync.Mutex
	seq     uint64 // commit sequence, keys CommitFailEvery
	stalled []stalledWave
}

type stalledWave struct {
	b      directory.Batch
	remain int
}

// NewFlakyDirectory wraps d with the degradation plan of inj.
func NewFlakyDirectory(d *directory.Directory, inj *Injector) *FlakyDirectory {
	return NewFlakyCommitter(d, d, inj)
}

// NewFlakyCommitter wraps an arbitrary committer over d with the
// degradation plan of inj: commits land through c (so a replica fan-out
// below the fault plane ships exactly the commits that actually land, in
// their landed order, with real epoch numbers), while the tear check and
// staleness observations still read d's published snapshots. c must
// ultimately commit into d.
func NewFlakyCommitter(d *directory.Directory, c directory.Committer, inj *Injector) *FlakyDirectory {
	return &FlakyDirectory{d: d, c: c, inj: inj}
}

// Directory returns the wrapped directory.
func (f *FlakyDirectory) Directory() *directory.Directory { return f.d }

// CommitBatch implements directory.Committer. Each call ages the stall
// queue by one flush (landing waves whose stall expired, oldest first)
// before handling its own batch.
func (f *FlakyDirectory) CommitBatch(b directory.Batch, wave bool) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.age(); err != nil {
		return 0, err
	}
	if wave && f.inj.sched.WaveStallFlushes > 0 {
		f.inj.Metrics.WaveStalls.Add(1)
		f.stalled = append(f.stalled, stalledWave{b: b, remain: f.inj.sched.WaveStallFlushes})
		return f.d.Current().Epoch(), nil
	}
	return f.commit(b, wave)
}

// age ticks every stalled wave one flush closer to landing and commits
// the expired ones in arrival order.
func (f *FlakyDirectory) age() error {
	for i := range f.stalled {
		f.stalled[i].remain--
	}
	for len(f.stalled) > 0 && f.stalled[0].remain <= 0 {
		w := f.stalled[0]
		f.stalled = f.stalled[1:]
		if _, err := f.commit(w.b, true); err != nil {
			return err
		}
		f.inj.Metrics.StallFlushes.Add(1)
	}
	return nil
}

// commit lands one batch, absorbing injected transient failures, and
// tear-checks wave flips.
func (f *FlakyDirectory) commit(b directory.Batch, wave bool) (uint64, error) {
	seq := f.seq
	f.seq++
	for attempt := 1; ; attempt++ {
		if f.inj.CommitFails(seq, attempt) {
			f.inj.Metrics.CommitFailures.Add(1)
			continue
		}
		e, err := f.c.CommitBatch(b, wave)
		if err != nil {
			return e, err
		}
		if wave {
			f.tearCheck(e, b)
		}
		return e, nil
	}
}

// tearCheck re-pins the committed epoch and verifies the whole wave is
// visible: a flip must be all-or-nothing, even under injection.
func (f *FlakyDirectory) tearCheck(epoch uint64, b directory.Batch) {
	s, err := f.d.PinEpoch(epoch)
	if err != nil {
		f.inj.Metrics.TornCommits.Add(1)
		return
	}
	for _, m := range b.Set {
		if got, ok := s.Lookup(m.V); !ok || got != m.To {
			f.inj.Metrics.TornCommits.Add(1)
			return
		}
	}
}

// PendingWaves reports how many wave flips are still stalled.
func (f *FlakyDirectory) PendingWaves() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.stalled)
}

// DrainStalls lands every stalled wave immediately (end-of-run cleanup;
// a real deployment's stall always ends).
func (f *FlakyDirectory) DrainStalls() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.stalled) > 0 {
		w := f.stalled[0]
		f.stalled = f.stalled[1:]
		if _, err := f.commit(w.b, true); err != nil {
			return fmt.Errorf("fault: draining stalled wave: %w", err)
		}
		f.inj.Metrics.StallFlushes.Add(1)
	}
	return nil
}
