// Package fault is a deterministic, seeded fault-injection plane for the
// sharded serving path. A Schedule describes which faults to inject —
// shard crash-stops at block boundaries, lossy/duplicating/delaying
// receipt delivery, stalled or failing directory commits — and an
// Injector turns it into reproducible per-event decisions: every roll is
// a pure hash of (seed, event identity, attempt), so two runs with the
// same schedule inject byte-identical faults regardless of goroutine
// scheduling. The plane never shares RNG state across threads; metrics
// are the only mutable state and they are atomics.
package fault

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Crash is one scheduled shard crash-stop: shard Shard fails while
// executing block Block and is recovered from its durable log before the
// block's barrier completes.
type Crash struct {
	Block uint64
	Shard int
}

// Schedule is a declarative fault plan. The zero value injects nothing.
type Schedule struct {
	// Seed keys every probabilistic decision. Two runs with equal
	// schedules observe identical faults.
	Seed uint64

	// Crashes lists shard crash-stops by (block, shard).
	Crashes []Crash

	// Shards, when positive, declares the shard count the schedule was
	// written against: New rejects crash entries naming shards outside
	// [0, Shards), catching plans aimed at lanes that don't exist at
	// arming time. Lanes removed *later* by a merge are a runtime
	// condition, counted by Metrics.CrashesSkipped instead. Zero skips
	// the compile-time check (legacy schedules that never resize).
	Shards int

	// DropProb, DelayProb and DupProb are per-delivery-attempt
	// probabilities for losing, delaying and duplicating a receipt on
	// the barrier exchange. DupAll forces every delivery to also
	// enqueue one duplicate (the property-test mode).
	DropProb  float64
	DelayProb float64
	DupProb   float64
	DupAll    bool

	// ShuffleDeliveries reorders each destination inbox's arrivals
	// within a barrier (seeded), exercising order-independence of
	// settlement. Off, arrivals keep canonical order.
	ShuffleDeliveries bool

	// MaxDelay bounds injected transport delay in blocks (default 4).
	// RetryAfter is the base redelivery backoff in blocks after a drop
	// (default 2, doubled per attempt, capped at 8 so bounded drain
	// loops still terminate). MaxAttempts bounds drops per receipt:
	// attempt MaxAttempts always delivers, making redelivery
	// at-least-once rather than probabilistic (default 6).
	MaxDelay    uint64
	RetryAfter  uint64
	MaxAttempts int

	// DedupWindow is how many blocks a shard remembers applied receipt
	// IDs (default 128). It must exceed the worst-case redelivery
	// horizon or a late duplicate could settle twice.
	DedupWindow uint64

	// WaveStallFlushes stalls each repartition wave commit for that
	// many subsequent directory flushes before it lands (readers
	// degrade to journaled snapshots meanwhile). CommitFailEvery makes
	// every Nth commit fail transiently CommitFailCount times
	// (default 2) before succeeding, exercising commit retry.
	WaveStallFlushes int
	CommitFailEvery  int
	CommitFailCount  int
}

// withDefaults fills zero fields with the documented defaults.
func (s Schedule) withDefaults() Schedule {
	if s.MaxDelay == 0 {
		s.MaxDelay = 4
	}
	if s.RetryAfter == 0 {
		s.RetryAfter = 2
	}
	if s.MaxAttempts == 0 {
		s.MaxAttempts = 6
	}
	if s.DedupWindow == 0 {
		s.DedupWindow = 128
	}
	if s.CommitFailCount == 0 {
		s.CommitFailCount = 2
	}
	return s
}

// PeriodicCrashes schedules a crash every `every` blocks up to maxBlock,
// rotating the victim across k shards — the standard crash-during-wave
// workload.
func PeriodicCrashes(every, maxBlock uint64, k int) []Crash {
	var cs []Crash
	i := 0
	for b := every; b <= maxBlock; b += every {
		cs = append(cs, Crash{Block: b, Shard: i % k})
		i++
	}
	return cs
}

// Outcome is the injector's decision for one delivery attempt of one
// receipt. Drop and the others are mutually exclusive with Drop: a
// dropped attempt is retried after Backoff blocks; a delivered attempt
// may additionally be delayed by Delay blocks and/or spawn one
// duplicate.
type Outcome struct {
	Drop      bool
	Backoff   uint64 // blocks until redelivery when dropped
	Delay     uint64 // extra transport blocks when delivered
	Duplicate bool   // also enqueue a second copy of the receipt
}

// Injector turns a Schedule into deterministic per-event decisions.
// All methods are safe for concurrent use: decisions are pure functions
// of (seed, identity, attempt) and metrics are atomic.
type Injector struct {
	sched   Schedule
	crashes map[uint64][]int // block -> shards, sorted

	// Metrics accumulates what was actually injected and recovered.
	Metrics Metrics
}

// New validates a schedule and builds its injector.
func New(s Schedule) (*Injector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropProb", s.DropProb}, {"DelayProb", s.DelayProb}, {"DupProb", s.DupProb}} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("fault: %s %v outside [0,1]", p.name, p.v)
		}
	}
	if s.Shards < 0 {
		return nil, fmt.Errorf("fault: negative shard count %d", s.Shards)
	}
	for _, c := range s.Crashes {
		if c.Shard < 0 {
			return nil, fmt.Errorf("fault: crash at block %d names negative shard %d", c.Block, c.Shard)
		}
		if s.Shards > 0 && c.Shard >= s.Shards {
			return nil, fmt.Errorf("fault: crash at block %d names shard %d, schedule declares %d shards",
				c.Block, c.Shard, s.Shards)
		}
	}
	if s.WaveStallFlushes < 0 || s.CommitFailEvery < 0 {
		return nil, fmt.Errorf("fault: negative stall/fail cadence")
	}
	inj := &Injector{sched: s.withDefaults(), crashes: map[uint64][]int{}}
	for _, c := range s.Crashes {
		inj.crashes[c.Block] = append(inj.crashes[c.Block], c.Shard)
	}
	for b := range inj.crashes {
		sort.Ints(inj.crashes[b])
	}
	return inj, nil
}

// Schedule returns the (default-filled) schedule driving this injector.
func (inj *Injector) Schedule() Schedule { return inj.sched }

// HasCrashes reports whether any shard crash is scheduled.
func (inj *Injector) HasCrashes() bool { return len(inj.crashes) > 0 }

// HasMessageFaults reports whether the delivery plane can deviate from
// perfect in-order single delivery.
func (inj *Injector) HasMessageFaults() bool {
	s := inj.sched
	return s.DropProb > 0 || s.DelayProb > 0 || s.DupProb > 0 || s.DupAll || s.ShuffleDeliveries
}

// CrashedShards returns the shards scheduled to crash while executing
// block b, in ascending order.
func (inj *Injector) CrashedShards(b uint64) []int { return inj.crashes[b] }

// Delivery decides the fate of delivery attempt `attempt` (1-based) of
// the receipt with identity id.
func (inj *Injector) Delivery(id uint64, attempt int) Outcome {
	s := inj.sched
	var o Outcome
	if attempt < s.MaxAttempts && roll(s.Seed, id, uint64(attempt), saltDrop) < s.DropProb {
		o.Drop = true
		o.Backoff = min(s.RetryAfter<<uint(attempt-1), 8)
		return o
	}
	if roll(s.Seed, id, uint64(attempt), saltDelay) < s.DelayProb {
		o.Delay = 1 + hash(s.Seed, id, uint64(attempt), saltDelayLen)%s.MaxDelay
	}
	if s.DupAll || roll(s.Seed, id, uint64(attempt), saltDup) < s.DupProb {
		o.Duplicate = true
	}
	return o
}

// ShuffleSeed keys the per-(destination, block) arrival shuffle.
func (inj *Injector) ShuffleSeed(dst int, block uint64) uint64 {
	return hash(inj.sched.Seed, uint64(dst), block, saltShuffle)
}

// ShuffleDeliveries reports whether barrier arrivals should be
// reordered.
func (inj *Injector) ShuffleDeliveries() bool { return inj.sched.ShuffleDeliveries }

// CommitFails reports whether commit attempt `attempt` (1-based) of the
// seq-th directory commit should fail transiently.
func (inj *Injector) CommitFails(seq uint64, attempt int) bool {
	s := inj.sched
	if s.CommitFailEvery == 0 || seq == 0 || seq%uint64(s.CommitFailEvery) != 0 {
		return false
	}
	return attempt <= s.CommitFailCount
}

// Hash salts keep the drop/delay/dup/shuffle decision streams
// independent: the same (id, attempt) must not correlate across fault
// kinds.
const (
	saltDrop = iota + 1
	saltDelay
	saltDelayLen
	saltDup
	saltShuffle
)

// hash is splitmix64 over the decision identity.
func hash(seed, a, b, salt uint64) uint64 {
	x := seed ^ mix(a) ^ mix(b+0x632be59bd9b4e019) ^ mix(salt*0x9e3779b97f4a7c15)
	return mix(x)
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll maps the decision hash onto [0,1).
func roll(seed, a, b, salt uint64) float64 {
	return float64(hash(seed, a, b, salt)>>11) / float64(1<<53)
}

// Metrics counts injected faults and the recovery work they caused.
// All fields are updated atomically; read them through Snapshot.
type Metrics struct {
	// Crash/recovery plane.
	Crashes        atomic.Uint64
	BlocksReplayed atomic.Uint64
	ItemsReplayed  atomic.Uint64 // transactions + receipts re-applied
	RecoveryNanos  atomic.Uint64
	// CrashesSkipped counts scheduled crashes aimed at lanes a merge had
	// already decommissioned when the block arrived.
	CrashesSkipped atomic.Uint64

	// Message plane.
	Dropped          atomic.Uint64
	Delayed          atomic.Uint64
	Duplicated       atomic.Uint64
	DupsSuppressed   atomic.Uint64
	RedeliveryBlocks atomic.Uint64 // injected transport delay, summed

	// Directory plane.
	CommitFailures atomic.Uint64
	WaveStalls     atomic.Uint64
	StallFlushes   atomic.Uint64
	StaleBlocks    atomic.Uint64
	RePins         atomic.Uint64
	MaxEpochLag    atomic.Uint64
	TornCommits    atomic.Uint64
}

// MaxLag records an observed reader staleness, keeping the maximum.
func (m *Metrics) MaxLag(lag uint64) {
	for {
		cur := m.MaxEpochLag.Load()
		if lag <= cur || m.MaxEpochLag.CompareAndSwap(cur, lag) {
			return
		}
	}
}

// MetricsSnapshot is a plain-value copy of Metrics for reports.
type MetricsSnapshot struct {
	Crashes        uint64
	BlocksReplayed uint64
	ItemsReplayed  uint64
	RecoveryNanos  uint64
	CrashesSkipped uint64

	Dropped          uint64
	Delayed          uint64
	Duplicated       uint64
	DupsSuppressed   uint64
	RedeliveryBlocks uint64

	CommitFailures uint64
	WaveStalls     uint64
	StallFlushes   uint64
	StaleBlocks    uint64
	RePins         uint64
	MaxEpochLag    uint64
	TornCommits    uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Crashes:        m.Crashes.Load(),
		BlocksReplayed: m.BlocksReplayed.Load(),
		ItemsReplayed:  m.ItemsReplayed.Load(),
		RecoveryNanos:  m.RecoveryNanos.Load(),
		CrashesSkipped: m.CrashesSkipped.Load(),

		Dropped:          m.Dropped.Load(),
		Delayed:          m.Delayed.Load(),
		Duplicated:       m.Duplicated.Load(),
		DupsSuppressed:   m.DupsSuppressed.Load(),
		RedeliveryBlocks: m.RedeliveryBlocks.Load(),

		CommitFailures: m.CommitFailures.Load(),
		WaveStalls:     m.WaveStalls.Load(),
		StallFlushes:   m.StallFlushes.Load(),
		StaleBlocks:    m.StaleBlocks.Load(),
		RePins:         m.RePins.Load(),
		MaxEpochLag:    m.MaxEpochLag.Load(),
		TornCommits:    m.TornCommits.Load(),
	}
}
