package experiments

import (
	"fmt"
	"time"

	"ethpart/internal/opsim"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

// This file implements the scenario comparison (the scenariocost figure):
// the full method × multi-shard-model matrix replayed through the live
// sharded chain on each named open-loop scenario. Where the paper's
// figures ask "which method wins on the historical trace", this asks how
// the ranking holds up across workload shapes — steady transfers, diurnal
// exchange traffic, a flash NFT mint — on the operational metrics the
// edge-cut curves proxy: dynamic cut, wave migrations and settlement
// latency.

// ScenarioCostParams configures the scenario × method × model matrix.
type ScenarioCostParams struct {
	// Seed overrides every scenario's seed (default 1).
	Seed int64
	// K is the shard count (default 4).
	K int
	// Scenarios names the library scenarios to compare (default
	// transfer-steady, diurnal-exchange and flash-nft-mint — a steady, a
	// periodic and a bursty arrival shape).
	Scenarios []string
	// Hours optionally shortens every scenario's arrival duration.
	Hours float64
}

func (p ScenarioCostParams) withDefaults() ScenarioCostParams {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.K <= 0 {
		p.K = 4
	}
	if len(p.Scenarios) == 0 {
		p.Scenarios = []string{"transfer-steady", "diurnal-exchange", "flash-nft-mint"}
	}
	return p
}

// ScenarioCostRow is one cell of the matrix: a method under one
// multi-shard model on one scenario's history.
type ScenarioCostRow struct {
	Scenario string
	Method   sim.Method
	Model    shardchain.Model
	K        int
	// Records is the scenario history's size (identical across the
	// scenario's rows — methods replay the same trace).
	Records int
	// DynamicCut is the run-level cross-shard interaction fraction.
	DynamicCut float64
	// WaveMigrations/WaveSlots are what repartition waves moved; the
	// totals below also include the migration model's inline moves.
	WaveMigrations int64
	WaveSlots      int64
	Migrations     int64
	MigratedSlots  int64
	Messages       int64
	// MeanSettlement is the mean cross-shard settlement latency in blocks
	// (0 when nothing settled — the migration model forwards instead).
	MeanSettlement float64
	Failed         int64
}

// scenarioCostConfig is one cell's co-simulation configuration: the
// paper's policy parameters at the scenario's block spacing.
func scenarioCostConfig(method sim.Method, model shardchain.Model, k int) opsim.Config {
	return opsim.Config{
		Sim: sim.Config{
			Method:           method,
			K:                k,
			Window:           4 * time.Hour,
			RepartitionEvery: 2 * 24 * time.Hour,
		},
		Model: model,
	}
}

// ScenarioCost generates each named scenario once and replays it through
// the live sharded chain for every method under both multi-shard models.
// Rows come back grouped by scenario, then model, then method; all
// replays of one scenario share its trace, and the whole matrix runs in
// parallel.
func ScenarioCost(p ScenarioCostParams) ([]ScenarioCostRow, error) {
	p = p.withDefaults()

	traces := make([]*sim.GeneratedTrace, len(p.Scenarios))
	for i, name := range p.Scenarios {
		sc, err := workload.ResolveScenario(name, "", p.Hours, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenariocost: %w", err)
		}
		gt, err := sim.GenerateScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenariocost %s: %w", name, err)
		}
		traces[i] = gt
	}

	type cell struct {
		scenario int
		method   sim.Method
		model    shardchain.Model
	}
	var cells []cell
	for i := range p.Scenarios {
		for _, model := range Models() {
			for _, m := range sim.Methods() {
				cells = append(cells, cell{i, m, model})
			}
		}
	}
	results := make([]*opsim.Result, len(cells))
	errs := make([]error, len(cells))
	sim.RunIndexed(len(cells), func(i int) {
		c := cells[i]
		results[i], errs[i] = opsim.Run(traces[c.scenario], scenarioCostConfig(c.method, c.model, p.K))
	})

	rows := make([]ScenarioCostRow, len(cells))
	for i, c := range cells {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: scenariocost %s %v/%v: %w",
				p.Scenarios[c.scenario], c.method, c.model, errs[i])
		}
		res := results[i]
		rows[i] = ScenarioCostRow{
			Scenario:       p.Scenarios[c.scenario],
			Method:         c.method,
			Model:          c.model,
			K:              p.K,
			Records:        len(traces[c.scenario].Records),
			DynamicCut:     res.Sim.OverallDynamicCut,
			WaveMigrations: res.WaveMigrations,
			WaveSlots:      res.WaveMigratedSlots,
			Migrations:     res.Totals.Migrations,
			MigratedSlots:  res.Totals.MigratedSlots,
			Messages:       res.Totals.Messages,
			MeanSettlement: res.MeanSettlement(),
			Failed:         res.Totals.Failed,
		}
	}
	return rows, nil
}
