// Package experiments regenerates every figure of the paper's evaluation:
//
//	Fig. 1 — growth of the blockchain graph (vertices & edges per month);
//	Fig. 2 — an example subgraph rendered to DOT;
//	Fig. 3 — hashing and METIS time series at k=2 (4-hour windows);
//	Fig. 4 — box/violin statistics of the five methods over 2017 periods;
//	Fig. 5 — the shard-count sweep (k ∈ {2,4,8}) of cut, balance and moves.
//
// A Dataset generates the synthetic history once and caches per-method
// simulation results so the figures share work. Both cmd/experiments and
// the root-level benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ethpart/internal/graph"
	"ethpart/internal/opsim"
	"ethpart/internal/sim"
	"ethpart/internal/stats"
	"ethpart/internal/trace"
	"ethpart/internal/workload"
)

// Params configures a reproduction run.
type Params struct {
	// Seed drives the whole synthetic history.
	Seed int64
	// Scale is the workload scale (see workload.Config.Scale). The
	// default, 0.004, yields a few hundred thousand interactions — large
	// enough for every qualitative effect, small enough for a laptop.
	Scale float64
	// BlockInterval is the simulated block spacing (default 2h).
	BlockInterval time.Duration
	// Eras overrides the history schedule (default workload.DefaultEras).
	Eras []workload.Era
	// Scenario, when non-empty, generates the history from the named
	// open-loop scenario library composition instead of the era schedule;
	// Scale and Eras are ignored. Seed overrides the scenario's seed.
	Scenario string
	// Arrival optionally overrides the scenario's arrival process kind
	// (poisson|diurnal|flash); only meaningful with Scenario.
	Arrival string
	// Window is the metric window (default 4h, as in the paper).
	Window time.Duration
	// RepartitionEvery is the periodic methods' period (default 2 weeks).
	RepartitionEvery time.Duration
	// DecayHalfLife, when positive, enables windowed decay of the
	// cumulative graph in every simulation (see sim.Config.DecayHalfLife).
	// Zero keeps the paper's full-history mode.
	DecayHalfLife time.Duration
	// Horizon is the decay retention horizon (see sim.Config.Horizon);
	// zero defaults to 4×DecayHalfLife when decay is enabled.
	Horizon time.Duration
	// Autoscale, when Enabled, lets every simulation resize its shard
	// count at window boundaries (see sim.AutoscaleConfig). The zero value
	// keeps k fixed, as in the paper.
	Autoscale sim.AutoscaleConfig
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Scale <= 0 {
		p.Scale = 0.004
	}
	if p.BlockInterval <= 0 {
		p.BlockInterval = 2 * time.Hour
	}
	if p.Window <= 0 {
		p.Window = 4 * time.Hour
	}
	if p.RepartitionEvery <= 0 {
		p.RepartitionEvery = 14 * 24 * time.Hour
	}
	return p
}

// Dataset is a generated history plus cached simulation results.
//
// A Dataset is safe for concurrent use: the result caches are guarded by a
// mutex (fills run outside the lock — the generated trace is only read —
// so concurrent callers at worst duplicate a replay, never race).
type Dataset struct {
	Params Params
	GT     *sim.GeneratedTrace

	mu       sync.Mutex
	cache    map[simKey]*sim.Result
	opsCache map[opsKey]*opsim.Result
}

// cachedRun returns the cached simulation result for key, if any.
func (d *Dataset) cachedRun(key simKey) (*sim.Result, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	res, ok := d.cache[key]
	return res, ok
}

// storeRun caches a simulation result.
func (d *Dataset) storeRun(key simKey, res *sim.Result) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache[key] = res
}

type simKey struct {
	method sim.Method
	k      int
}

// NewDataset generates the synthetic history for p.
func NewDataset(p Params) (*Dataset, error) {
	p = p.withDefaults()
	var (
		gt  *sim.GeneratedTrace
		err error
	)
	if p.Scenario != "" {
		var sc workload.Scenario
		sc, err = workload.ResolveScenario(p.Scenario, p.Arrival, 0, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		sc.BlockInterval = p.BlockInterval
		gt, err = sim.GenerateScenario(sc)
	} else {
		gt, err = sim.Generate(workload.Config{
			Seed:          p.Seed,
			Scale:         p.Scale,
			Eras:          p.Eras,
			BlockInterval: p.BlockInterval,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: generating dataset: %w", err)
	}
	return &Dataset{
		Params:   p,
		GT:       gt,
		cache:    make(map[simKey]*sim.Result),
		opsCache: make(map[opsKey]*opsim.Result),
	}, nil
}

// configFor is the simulation configuration for method at k shards using
// the paper's policy parameters.
func (d *Dataset) configFor(method sim.Method, k int) sim.Config {
	return sim.Config{
		Method:           method,
		K:                k,
		Window:           d.Params.Window,
		RepartitionEvery: d.Params.RepartitionEvery,
		DecayHalfLife:    d.Params.DecayHalfLife,
		Horizon:          d.Params.Horizon,
		Autoscale:        d.Params.Autoscale,
	}
}

// Run returns the (cached) simulation result for method at k shards using
// the paper's policy parameters.
func (d *Dataset) Run(method sim.Method, k int) (*sim.Result, error) {
	key := simKey{method, k}
	if res, ok := d.cachedRun(key); ok {
		return res, nil
	}
	res, err := sim.Replay(d.GT, d.configFor(method, k))
	if err != nil {
		return nil, fmt.Errorf("experiments: %v k=%d: %w", method, k, err)
	}
	d.storeRun(key, res)
	return res, nil
}

// Prefetch fills the result cache for every method at each of the given
// shard counts by replaying the missing combinations in parallel with
// sim.RunSweep. Figure methods then serve from the cache; calling Prefetch
// first turns the serial method×k loops of Fig. 4 and Fig. 5 into one
// multi-core sweep.
func (d *Dataset) Prefetch(ks []int) error {
	var cfgs []sim.Config
	var keys []simKey
	for _, k := range ks {
		for _, m := range sim.Methods() {
			if _, ok := d.cachedRun(simKey{m, k}); ok {
				continue
			}
			cfgs = append(cfgs, d.configFor(m, k))
			keys = append(keys, simKey{m, k})
		}
	}
	if len(cfgs) == 0 {
		return nil
	}
	results, err := sim.RunSweep(d.GT, cfgs)
	if err != nil {
		return fmt.Errorf("experiments: prefetch: %w", err)
	}
	for i, key := range keys {
		d.storeRun(key, results[i])
	}
	return nil
}

// Fig1Row is one monthly sample of graph size.
type Fig1Row struct {
	Month    time.Time
	Vertices int64
	Edges    int64
}

// Fig1 samples the cumulative graph size at month boundaries, reproducing
// the growth curve of Fig. 1. It also returns the era boundaries for the
// vertical markers.
func (d *Dataset) Fig1() ([]Fig1Row, []workload.Era, error) {
	g := graph.New()
	var rows []Fig1Row
	var next time.Time
	flush := func(at time.Time) {
		rows = append(rows, Fig1Row{
			Month:    at,
			Vertices: int64(g.VertexCount()),
			Edges:    int64(g.EdgeCount()),
		})
	}
	for _, rec := range d.GT.Records {
		t := time.Unix(rec.Time, 0).UTC()
		if next.IsZero() {
			next = monthStart(t).AddDate(0, 1, 0)
		}
		for !t.Before(next) {
			flush(next)
			next = next.AddDate(0, 1, 0)
		}
		if err := rec.Apply(g); err != nil {
			return nil, nil, fmt.Errorf("experiments: fig1: %w", err)
		}
	}
	if !next.IsZero() {
		flush(next)
	}
	eras := d.Params.Eras
	if eras == nil {
		eras = workload.DefaultEras()
	}
	return rows, eras, nil
}

// Fig1GrowthFit characterises the growth regime before and after the
// attack: the paper observes exponential growth until around October 2016
// and slower, superlinear growth afterwards. It returns the log-linear
// growth rate (per month) of the edge count in both regimes.
func Fig1GrowthFit(rows []Fig1Row, split time.Time) (preRate, postRate float64, err error) {
	var preX, preY, postX, postY []float64
	for i, r := range rows {
		if r.Edges <= 0 {
			continue
		}
		x := float64(i)
		if r.Month.Before(split) {
			preX = append(preX, x)
			preY = append(preY, float64(r.Edges))
		} else {
			postX = append(postX, x)
			postY = append(postY, float64(r.Edges))
		}
	}
	_, preRate, _, err = stats.LogLinearFit(preX, preY)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: pre-attack fit: %w", err)
	}
	_, postRate, _, err = stats.LogLinearFit(postX, postY)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: post-attack fit: %w", err)
	}
	return preRate, postRate, nil
}

// Fig2 renders an early subgraph around a fan-out contract in the style of
// the paper's Fig. 2 (accounts solid, contracts dashed, weighted edges).
func (d *Dataset) Fig2(w io.Writer, maxVertices int) error {
	if maxVertices <= 0 {
		maxVertices = 24
	}
	// Build the graph of the first month.
	g := graph.New()
	var cutoff int64
	for _, rec := range d.GT.Records {
		if cutoff == 0 {
			cutoff = time.Unix(rec.Time, 0).UTC().AddDate(0, 1, 0).Unix()
		}
		if rec.Time > cutoff {
			break
		}
		if err := rec.Apply(g); err != nil {
			return fmt.Errorf("experiments: fig2: %w", err)
		}
	}
	// Seed on the busiest contract.
	var seed graph.VertexID
	var bestW int64 = -1
	g.Vertices(func(id graph.VertexID, kind graph.Kind, weight int64) bool {
		if kind == graph.KindContract && weight > bestW {
			seed, bestW = id, weight
		}
		return true
	})
	if bestW < 0 {
		return fmt.Errorf("experiments: fig2: no contract in the first month")
	}
	// Two-hop BFS neighbourhood, capped.
	sub := graph.New()
	visited := map[graph.VertexID]bool{seed: true}
	frontier := []graph.VertexID{seed}
	for hop := 0; hop < 2 && len(visited) < maxVertices; hop++ {
		var nextFrontier []graph.VertexID
		for _, u := range frontier {
			g.Neighbors(u, func(v graph.VertexID, _ int64) bool {
				if !visited[v] {
					visited[v] = true
					nextFrontier = append(nextFrontier, v)
				}
				return len(visited) < maxVertices
			})
		}
		frontier = nextFrontier
	}
	g.Edges(func(u, v graph.VertexID, wgt int64) bool {
		if visited[u] && visited[v] {
			if err := sub.AddInteraction(u, v, g.VertexKind(u), g.VertexKind(v), wgt); err != nil {
				return false
			}
		}
		return true
	})
	return sub.WriteDOT(w, graph.DOTOptions{Name: "fig2", ShowWeights: true})
}

// Fig3 runs the k=2 time series of Fig. 3 for one method.
func (d *Dataset) Fig3(method sim.Method) (*sim.Result, error) {
	return d.Run(method, 2)
}

// Fig4Cell is one box/violin glyph of Fig. 4: the distribution of a
// window metric for (method, k, period), plus the period's total moves.
type Fig4Cell struct {
	Method   sim.Method
	K        int
	Period   string
	CutStats stats.Summary
	BalStats stats.Summary
	// CutDensity/BalDensity are violin outlines (KDE over the windows).
	CutDensity []float64
	BalDensity []float64
	Moves      int64
}

// fig4Periods are the paper's 2017 sub-periods.
var fig4Periods = []struct {
	label      string
	start, end time.Time
}{
	{"01.17-06.17", time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)},
	{"06.17-09.17", time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC), time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)},
	{"09.17-12.17", time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC), time.Date(2017, 12, 1, 0, 0, 0, 0, time.UTC)},
	{"12.17-01.18", time.Date(2017, 12, 1, 0, 0, 0, 0, time.UTC), time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)},
}

// Fig4Periods returns the labels of the paper's 2017 sub-periods.
func Fig4Periods() []string {
	labels := make([]string, len(fig4Periods))
	for i, p := range fig4Periods {
		labels[i] = p.label
	}
	return labels
}

// Fig4 computes every cell of Fig. 4 for the given shard counts (the paper
// uses 2 and 8). Uncached method×k combinations are replayed in parallel.
func (d *Dataset) Fig4(ks []int) ([]Fig4Cell, error) {
	if err := d.Prefetch(ks); err != nil {
		return nil, err
	}
	var cells []Fig4Cell
	for _, k := range ks {
		for _, m := range sim.Methods() {
			res, err := d.Run(m, k)
			if err != nil {
				return nil, err
			}
			for _, period := range fig4Periods {
				var cuts, bals []float64
				var moves int64
				for _, win := range res.Windows {
					if win.Start.Before(period.start) || !win.Start.Before(period.end) {
						continue
					}
					if win.Interactions > 0 {
						cuts = append(cuts, win.DynamicCut)
						bals = append(bals, win.DynamicBalance)
					}
					moves += win.Moves
				}
				cell := Fig4Cell{
					Method: m, K: k, Period: period.label,
					CutStats: stats.Summarize(cuts),
					BalStats: stats.Summarize(bals),
					Moves:    moves,
				}
				_, cell.CutDensity = stats.KDE(cuts, 32)
				_, cell.BalDensity = stats.KDE(bals, 32)
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// Fig5Row is one point of Fig. 5: a method at a shard count.
type Fig5Row struct {
	Method sim.Method
	K      int
	// DynamicCut is the run-level cross-shard fraction.
	DynamicCut float64
	// NormBalance is the paper's normalized dynamic balance,
	// (balance−1)/(k−1).
	NormBalance float64
	Moves       int64
	MovedSlots  int64
}

// Fig5 sweeps the shard counts (the paper uses 2, 4, 8) over all methods
// on the full history. Uncached method×k combinations are replayed in
// parallel.
func (d *Dataset) Fig5(ks []int) ([]Fig5Row, error) {
	if err := d.Prefetch(ks); err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, m := range sim.Methods() {
		for _, k := range ks {
			res, err := d.Run(m, k)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig5Row{
				Method:      m,
				K:           k,
				DynamicCut:  res.OverallDynamicCut,
				NormBalance: normBalance(res.OverallDynamicBalance, k),
				Moves:       res.TotalMoves,
				MovedSlots:  res.TotalMovedSlots,
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Method != rows[j].Method {
			return rows[i].Method < rows[j].Method
		}
		return rows[i].K < rows[j].K
	})
	return rows, nil
}

func normBalance(balance float64, k int) float64 {
	if k <= 1 {
		return 0
	}
	return (balance - 1) / float64(k-1)
}

// RecordsOf returns the dataset's records (for trace export).
func (d *Dataset) RecordsOf() []trace.Record { return d.GT.Records }

func monthStart(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}
