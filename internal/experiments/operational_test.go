package experiments

import (
	"sync"
	"testing"
	"time"

	"ethpart/internal/opsim"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

func TestOperationalCoversMatrixAndCaches(t *testing.T) {
	ds := testDataset(t)
	rows, err := ds.Operational(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sim.Methods()) * len(Models()); len(rows) != want {
		t.Fatalf("rows = %d, want %d (methods × models)", len(rows), want)
	}
	seen := map[opsKey]bool{}
	for _, row := range rows {
		key := opsKey{method: row.Method, model: row.Model, k: row.K}
		if seen[key] {
			t.Errorf("duplicate row %v/%v", row.Method, row.Model)
		}
		seen[key] = true
		if row.Result == nil || len(row.Result.Windows) == 0 {
			t.Fatalf("%v/%v: empty result", row.Method, row.Model)
		}
		if row.Result.Totals.Failed != 0 {
			t.Errorf("%v/%v: %d failed txs", row.Method, row.Model, row.Result.Totals.Failed)
		}
	}
	// Second call must serve from the cache (same pointers).
	again, err := ds.Operational(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i].Result != again[i].Result {
			t.Fatalf("row %d not cached", i)
		}
	}

	// The operational ordering mirrors the cut ordering: under receipts,
	// METIS must beat hashing on messages, the paper's claim end to end.
	byKey := map[opsKey]*OperationalRow{}
	for i := range rows {
		byKey[opsKey{method: rows[i].Method, model: rows[i].Model, k: rows[i].K}] = &rows[i]
	}
	hash := byKey[opsKey{method: sim.MethodHash, model: shardchain.ModelReceipts, k: 2}]
	metis := byKey[opsKey{method: sim.MethodMetis, model: shardchain.ModelReceipts, k: 2}]
	if metis.Result.Totals.Messages >= hash.Result.Totals.Messages {
		t.Errorf("metis messages %d not below hash %d",
			metis.Result.Totals.Messages, hash.Result.Totals.Messages)
	}
}

// tinyDataset is a one-week history small enough to replay through the
// live chain many times in one test.
func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset(Params{
		Seed:  7,
		Scale: 0.01,
		Eras: []workload.Era{{
			Name:          "mini",
			Start:         time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
			End:           time.Date(2017, 1, 8, 0, 0, 0, 0, time.UTC),
			TxPerDayStart: 10_000, TxPerDayEnd: 10_000, Kind: workload.GrowthLinear,
			NewAccountFrac: 0.2, DeploysPerDay: 5,
			Mix: workload.TxMix{Transfer: 0.6, Token: 0.2, Wallet: 0.1, Crowdsale: 0.05, Game: 0.03, Airdrop: 0.02},
		}},
		BlockInterval:    time.Hour,
		RepartitionEvery: 48 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestOperationalRunConcurrentCallersShareCache(t *testing.T) {
	// Regression for the cache race: Operational advertises parallel fills,
	// so concurrent OperationalRun calls (same and different keys) must be
	// safe — run under -race in CI — and must converge on one cached
	// result per key.
	ds := tinyDataset(t)
	keys := []opsKey{
		{method: sim.MethodHash, model: shardchain.ModelReceipts, k: 2},
		{method: sim.MethodHash, model: shardchain.ModelMigration, k: 2},
		{method: sim.MethodHash, model: shardchain.ModelReceipts, k: 2}, // duplicate on purpose
		{method: sim.MethodMetis, model: shardchain.ModelReceipts, k: 2},
	}
	const callersPerKey = 3
	results := make([]*opsim.Result, len(keys)*callersPerKey)
	errs := make([]error, len(results))
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := keys[i%len(keys)]
			results[i], errs[i] = ds.OperationalRun(key.method, key.model, key.k)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	// After the dust settles the cache serves one pointer per key.
	for i := range results {
		key := keys[i%len(keys)]
		cached, err := ds.OperationalRun(key.method, key.model, key.k)
		if err != nil {
			t.Fatal(err)
		}
		if cached == nil || results[i] == nil {
			t.Fatalf("caller %d: nil result", i)
		}
		if cached.Totals != results[i].Totals {
			t.Errorf("caller %d: totals diverge from cached result", i)
		}
	}
	if _, err := ds.OperationalRun(sim.MethodHash, shardchain.ModelReceipts, 0); err == nil {
		t.Error("k=0 must error")
	}
}

// TestDecayParamsReachSimAndBridge pins the decay pass-through: Params'
// DecayHalfLife/Horizon must thread into every cached simulation and into
// the operational co-simulation. With an aggressive horizon on the one-week
// history, the decayed replay must end with a strictly smaller live graph
// than full-history mode while replaying the identical record stream, and
// the bridge must complete on top of it (retired accounts keep their
// sticky homes, so the live chain never sees an unhomed account).
func TestDecayParamsReachSimAndBridge(t *testing.T) {
	full := tinyDataset(t)
	decayed := tinyDecayedDataset(t)
	if len(full.GT.Records) != len(decayed.GT.Records) {
		t.Fatalf("histories diverge: %d vs %d records", len(full.GT.Records), len(decayed.GT.Records))
	}
	fr, err := full.Run(sim.MethodMetis, 2)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := decayed.Run(sim.MethodMetis, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Vertices >= fr.Vertices {
		t.Errorf("decayed live graph (%d vertices) not below full history (%d)", dr.Vertices, fr.Vertices)
	}
	if len(dr.Windows) != len(fr.Windows) {
		t.Errorf("window counts diverge: %d vs %d", len(dr.Windows), len(fr.Windows))
	}
	res, err := decayed.OperationalRun(sim.MethodMetis, shardchain.ModelMigration, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Failed != 0 {
		t.Errorf("decayed operational run failed %d transactions", res.Totals.Failed)
	}
	if res.Replayed != int64(len(decayed.GT.Records)) {
		t.Errorf("replayed %d of %d records", res.Replayed, len(decayed.GT.Records))
	}
}

// tinyDecayedDataset is tinyDataset with windowed decay enabled (12h
// half-life, 36h horizon — aggressive enough to retire idle accounts
// within the one-week history).
func tinyDecayedDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset(Params{
		Seed:  7,
		Scale: 0.01,
		Eras: []workload.Era{{
			Name:          "mini",
			Start:         time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
			End:           time.Date(2017, 1, 8, 0, 0, 0, 0, time.UTC),
			TxPerDayStart: 10_000, TxPerDayEnd: 10_000, Kind: workload.GrowthLinear,
			NewAccountFrac: 0.2, DeploysPerDay: 5,
			Mix: workload.TxMix{Transfer: 0.6, Token: 0.2, Wallet: 0.1, Crowdsale: 0.05, Game: 0.03, Airdrop: 0.02},
		}},
		BlockInterval:    time.Hour,
		RepartitionEvery: 48 * time.Hour,
		DecayHalfLife:    12 * time.Hour,
		Horizon:          36 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestOperationalParallelMatchesSerialRows(t *testing.T) {
	ds := tinyDataset(t)
	serial, err := ds.Operational(2)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ds.OperationalParallel(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i].Result, parallel[i].Result
		if s == p {
			t.Fatalf("row %d: engines share one cache entry", i)
		}
		if !p.Parallel || s.Parallel {
			t.Fatalf("row %d: engine flags wrong", i)
		}
		if s.Totals != p.Totals {
			t.Errorf("row %d (%v/%v): totals diverge: serial %+v, parallel %+v",
				i, serial[i].Method, serial[i].Model, s.Totals, p.Totals)
		}
	}
}
