package experiments

import (
	"testing"

	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
)

func TestOperationalCoversMatrixAndCaches(t *testing.T) {
	ds := testDataset(t)
	rows, err := ds.Operational(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sim.Methods()) * len(Models()); len(rows) != want {
		t.Fatalf("rows = %d, want %d (methods × models)", len(rows), want)
	}
	seen := map[opsKey]bool{}
	for _, row := range rows {
		key := opsKey{row.Method, row.Model, row.K}
		if seen[key] {
			t.Errorf("duplicate row %v/%v", row.Method, row.Model)
		}
		seen[key] = true
		if row.Result == nil || len(row.Result.Windows) == 0 {
			t.Fatalf("%v/%v: empty result", row.Method, row.Model)
		}
		if row.Result.Totals.Failed != 0 {
			t.Errorf("%v/%v: %d failed txs", row.Method, row.Model, row.Result.Totals.Failed)
		}
	}
	// Second call must serve from the cache (same pointers).
	again, err := ds.Operational(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i].Result != again[i].Result {
			t.Fatalf("row %d not cached", i)
		}
	}

	// The operational ordering mirrors the cut ordering: under receipts,
	// METIS must beat hashing on messages, the paper's claim end to end.
	byKey := map[opsKey]*OperationalRow{}
	for i := range rows {
		byKey[opsKey{rows[i].Method, rows[i].Model, rows[i].K}] = &rows[i]
	}
	hash := byKey[opsKey{sim.MethodHash, shardchain.ModelReceipts, 2}]
	metis := byKey[opsKey{sim.MethodMetis, shardchain.ModelReceipts, 2}]
	if metis.Result.Totals.Messages >= hash.Result.Totals.Messages {
		t.Errorf("metis messages %d not below hash %d",
			metis.Result.Totals.Messages, hash.Result.Totals.Messages)
	}
}
