package experiments

import (
	"fmt"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/opsim"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/types"
)

// This file implements the elastic-shard-count comparison (the scalecost
// figure): what saturation-driven autoscaling buys a live sharded chain on
// a flash-crowd history, against the two fixed provisioning policies it
// interpolates between — always-small (cheap, but saturated during the
// crowd) and always-large (meets the surge, but pays for idle shards the
// rest of the time). Cost is shard-windows provisioned; the SLO side is
// settlement latency, failures and cross-shard traffic.

// ScaleParams configures the flash-crowd autoscaling comparison.
type ScaleParams struct {
	// Seed drives the flash-crowd trace generator.
	Seed int64
	// KMin/KMax bound the autoscaler and name the two fixed baselines
	// (defaults 2 and 8).
	KMin, KMax int
	// Target is the autoscaler's per-shard window-load target (default
	// 100; the default trace's quiet phase sits comfortably under it at
	// KMin and the surge blows through it).
	Target int64
	// HalfLife/Horizon are the decay parameters (defaults 12h/36h).
	HalfLife, Horizon time.Duration
}

func (p ScaleParams) withDefaults() ScaleParams {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.KMin <= 0 {
		p.KMin = 2
	}
	if p.KMax <= 0 {
		p.KMax = 8
	}
	if p.Target <= 0 {
		p.Target = 100
	}
	if p.HalfLife <= 0 {
		p.HalfLife = 12 * time.Hour
	}
	if p.Horizon <= 0 {
		p.Horizon = 3 * p.HalfLife
	}
	return p
}

// ScaleCostRow is one provisioning policy run through the live chain on the
// flash-crowd history.
type ScaleCostRow struct {
	// Mode names the policy: fixed-kmin, fixed-kmax, or autoscale.
	Mode string
	// KStart/KFinal are the shard counts entering and leaving the run;
	// Resizes counts autoscaler firings (zero for the fixed policies).
	KStart, KFinal int
	Resizes        int
	// ShardWindows is Σ over windows of the shards provisioned in that
	// window — the run's capacity cost in shard-windows.
	ShardWindows int64
	// PeakWindowLoad is the largest per-shard window load any shard saw —
	// the saturation the SLO metrics respond to.
	PeakWindowLoad int64
	// The SLO side: cross-shard messages, settlement latency, state
	// migration traffic and failed transactions over the whole run.
	Messages       int64
	MeanSettlement float64
	Migrations     int64
	MigratedSlots  int64
	Failed         int64
	DynamicCut     float64
}

// flashCrowd sizes the trace: a small resident cohort with steady traffic,
// then a surge cohort arriving with an order of magnitude more records per
// block, then a cooldown in which the crowd leaves again.
const (
	flashBaseVertices  = 100
	flashCrowdVertices = 400
	flashSlotsEvery    = 10
	flashSlots         = 4
	flashQuietWindows  = 6
	flashSurgeWindows  = 6
	flashCoolWindows   = 10
	flashQuietRecs     = 30 // per block
	flashSurgeRecs     = 300
)

// FlashCrowdTrace builds the flash-crowd history: quiet base traffic, a
// surge phase in which a large new cohort multiplies the record rate, and a
// cooldown back to base load. Four-hour windows, two blocks per window,
// deterministic in Seed. It is exported so the root benchmarks can replay
// the same regime.
func FlashCrowdTrace(p ScaleParams) *sim.GeneratedTrace {
	p = p.withDefaults()
	reg := trace.NewRegistry()
	slots := make(map[graph.VertexID]int)
	total := uint64(flashBaseVertices + flashCrowdVertices)
	for i := uint64(0); i < total; i++ {
		id := reg.ID(types.AddressFromSeq(i + 1))
		if id%flashSlotsEvery == 0 {
			reg.MarkContract(id)
			slots[graph.VertexID(id)] = flashSlots
		}
	}

	state := uint64(p.Seed)*2862933555777941757 + 3037000493
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	// pick draws one endpoint: base-cohort only in the quiet phases, and
	// mostly crowd (with some base mixing, so the phases stay connected)
	// during the surge.
	pick := func(surge bool) uint64 {
		if surge && next(10) < 8 {
			return flashBaseVertices + next(flashCrowdVertices)
		}
		return next(flashBaseVertices)
	}

	const blocksPerWindow = 2
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	phases := []struct {
		windows int
		recs    int
		surge   bool
	}{
		{flashQuietWindows, flashQuietRecs, false},
		{flashSurgeWindows, flashSurgeRecs, true},
		{flashCoolWindows, flashQuietRecs, false},
	}
	var recs []trace.Record
	block := uint64(0)
	for _, ph := range phases {
		for w := 0; w < ph.windows; w++ {
			for b := 0; b < blocksPerWindow; b++ {
				block++
				t := base + int64(block-1)*int64(4*3600/blocksPerWindow)
				for i := 0; i < ph.recs; i++ {
					from := pick(ph.surge)
					to := pick(ph.surge)
					recs = append(recs, trace.Record{
						Block: block, Time: t, Kind: evm.KindTransaction,
						From: from, To: to,
						FromContract: reg.IsContract(from),
						ToContract:   reg.IsContract(to),
						Value:        1 + next(1000),
					})
				}
			}
		}
	}
	return sim.NewGeneratedTrace(recs, reg, slots)
}

// scaleConfig is one policy's co-simulation configuration on the
// flash-crowd trace: TR-METIS with decay under the receipts model, so a
// merge has to pay the honest decommissioning cost of force-migrating the
// state history pinned to the drained lanes.
func scaleConfig(p ScaleParams, k int, autoscale bool) opsim.Config {
	cfg := opsim.Config{
		Sim: sim.Config{
			Method: sim.MethodTRMetis, K: k,
			Window:            4 * time.Hour,
			RepartitionEvery:  2 * 24 * time.Hour,
			MinRepartitionGap: 8 * time.Hour,
			TriggerWindows:    2,
			DecayHalfLife:     p.HalfLife,
			Horizon:           p.Horizon,
		},
		Model: shardchain.ModelReceipts,
	}
	if autoscale {
		cfg.Sim.Autoscale = sim.AutoscaleConfig{
			Enabled:          true,
			KMin:             p.KMin,
			KMax:             p.KMax,
			TargetWindowLoad: p.Target,
		}
	}
	return cfg
}

// ScaleOperational runs the comparison: fixed provisioning at KMin and at
// KMax, and the autoscaler ranging between them, all on the same
// flash-crowd history. The three co-simulations run in parallel.
func ScaleOperational(p ScaleParams) ([]ScaleCostRow, error) {
	p = p.withDefaults()
	if p.KMin > p.KMax {
		return nil, fmt.Errorf("experiments: scale: k-min %d > k-max %d", p.KMin, p.KMax)
	}
	gt := FlashCrowdTrace(p)
	cells := []struct {
		mode      string
		k         int
		autoscale bool
	}{
		{"fixed-kmin", p.KMin, false},
		{"fixed-kmax", p.KMax, false},
		{"autoscale", p.KMin, true},
	}
	results := make([]*opsim.Result, len(cells))
	errs := make([]error, len(cells))
	sim.RunIndexed(len(cells), func(i int) {
		results[i], errs[i] = opsim.Run(gt, scaleConfig(p, cells[i].k, cells[i].autoscale))
	})
	rows := make([]ScaleCostRow, len(cells))
	for i, c := range cells {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: scale ops %s: %w", c.mode, errs[i])
		}
		res := results[i]
		row := ScaleCostRow{
			Mode:           c.mode,
			KStart:         c.k,
			KFinal:         c.k,
			Resizes:        len(res.Sim.Resizes),
			Messages:       res.Totals.Messages,
			Migrations:     res.Totals.Migrations,
			MigratedSlots:  res.Totals.MigratedSlots,
			Failed:         res.Totals.Failed,
			DynamicCut:     res.Sim.OverallDynamicCut,
			MeanSettlement: res.MeanSettlement(),
		}
		for _, w := range res.Windows {
			row.ShardWindows += int64(w.Shards)
			row.KFinal = w.Shards
		}
		for _, w := range res.Sim.Windows {
			if w.PeakLoad > row.PeakWindowLoad {
				row.PeakWindowLoad = w.PeakLoad
			}
		}
		rows[i] = row
	}
	return rows, nil
}
