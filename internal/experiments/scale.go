package experiments

import (
	"fmt"
	"time"

	"ethpart/internal/opsim"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

// This file implements the elastic-shard-count comparison (the scalecost
// figure): what saturation-driven autoscaling buys a live sharded chain on
// a flash-crowd history, against the two fixed provisioning policies it
// interpolates between — always-small (cheap, but saturated during the
// crowd) and always-large (meets the surge, but pays for idle shards the
// rest of the time). Cost is shard-windows provisioned; the SLO side is
// settlement latency, failures and cross-shard traffic.

// ScaleParams configures the flash-crowd autoscaling comparison.
type ScaleParams struct {
	// Seed drives the flash-crowd trace generator.
	Seed int64
	// KMin/KMax bound the autoscaler and name the two fixed baselines
	// (defaults 2 and 8).
	KMin, KMax int
	// Target is the autoscaler's per-shard window-load target (default
	// 100; the default trace's quiet phase sits comfortably under it at
	// KMin and the surge blows through it).
	Target int64
	// HalfLife/Horizon are the decay parameters (defaults 12h/36h).
	HalfLife, Horizon time.Duration
}

func (p ScaleParams) withDefaults() ScaleParams {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.KMin <= 0 {
		p.KMin = 2
	}
	if p.KMax <= 0 {
		p.KMax = 8
	}
	if p.Target <= 0 {
		p.Target = 100
	}
	if p.HalfLife <= 0 {
		p.HalfLife = 12 * time.Hour
	}
	if p.Horizon <= 0 {
		p.Horizon = 3 * p.HalfLife
	}
	return p
}

// ScaleCostRow is one provisioning policy run through the live chain on the
// flash-crowd history.
type ScaleCostRow struct {
	// Mode names the policy: fixed-kmin, fixed-kmax, or autoscale.
	Mode string
	// KStart/KFinal are the shard counts entering and leaving the run;
	// Resizes counts autoscaler firings (zero for the fixed policies).
	KStart, KFinal int
	Resizes        int
	// ShardWindows is Σ over windows of the shards provisioned in that
	// window — the run's capacity cost in shard-windows.
	ShardWindows int64
	// PeakWindowLoad is the largest per-shard window load any shard saw —
	// the saturation the SLO metrics respond to.
	PeakWindowLoad int64
	// The SLO side: cross-shard messages, settlement latency, state
	// migration traffic and failed transactions over the whole run.
	Messages       int64
	MeanSettlement float64
	Migrations     int64
	MigratedSlots  int64
	Failed         int64
	DynamicCut     float64
}

// flashCrowd sizes the arrival process: quiet traffic around 60 records
// per 4-hour window, then a surge phase an order of magnitude denser, then
// a long cooldown back to base load. The window counts size the flash
// spike's position inside the open-loop arrival window.
const (
	flashQuietWindows = 6
	flashSurgeWindows = 6
	flashCoolWindows  = 10
	flashWindowHours  = 4
	flashQuietRate    = 15 // arrivals per hour, quiet phases
	flashPeakFactor   = 10 // surge multiplier
)

// flashTotalWindows is the arrival window in 4-hour metric windows.
const flashTotalWindows = flashQuietWindows + flashSurgeWindows + flashCoolWindows

// FlashCrowdSpec is the flash-crowd composition: the library's flash
// arrival process sized so the quiet phase sits comfortably under the
// autoscaler's per-shard target at KMin and the surge blows through it.
// Two blocks per 4-hour window, deterministic in Seed.
func FlashCrowdSpec(seed int64) workload.Scenario {
	return workload.Scenario{
		Name:        "scalecost-flash-crowd",
		Description: "the autoscale figure's regime: quiet boards, a 10× surge, cooldown",
		Seed:        seed,
		// Two blocks per 4-hour metric window, as the hand-rolled trace had.
		BlockInterval: flashWindowHours * time.Hour / 2,
		Arrival: workload.ArrivalSpec{
			Kind:        workload.ArrivalFlash,
			Start:       time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
			Duration:    flashTotalWindows * flashWindowHours * time.Hour,
			RatePerHour: flashQuietRate,
			PeakFactor:  flashPeakFactor,
			PeakStart:   float64(flashQuietWindows) / flashTotalWindows,
			PeakWidth:   float64(flashSurgeWindows) / flashTotalWindows,
		},
		Population:     workload.PopulationSpec{HotProb: 0.4, RecencyBias: 0.8},
		Mix:            workload.ScenarioMix{Transfer: 0.6, Token: 0.2, Game: 0.2},
		NewAccountFrac: 0.25,
		DeploysPerDay:  2,
	}
}

// FlashCrowdTrace builds the flash-crowd history through the open-loop
// workload pipeline: quiet base traffic, a surge phase in which a crowd of
// new arrivals multiplies the record rate, and a cooldown back to base
// load. It is exported so the root benchmarks can replay the same regime.
func FlashCrowdTrace(p ScaleParams) *sim.GeneratedTrace {
	p = p.withDefaults()
	gt, err := sim.GenerateScenario(FlashCrowdSpec(p.Seed))
	if err != nil {
		// The spec is a fixed, validated composition; generation cannot
		// fail on it short of a programming error.
		panic(fmt.Sprintf("experiments: flash-crowd trace: %v", err))
	}
	return gt
}

// scaleConfig is one policy's co-simulation configuration on the
// flash-crowd trace: TR-METIS with decay under the receipts model, so a
// merge has to pay the honest decommissioning cost of force-migrating the
// state history pinned to the drained lanes.
func scaleConfig(p ScaleParams, k int, autoscale bool) opsim.Config {
	cfg := opsim.Config{
		Sim: sim.Config{
			Method: sim.MethodTRMetis, K: k,
			Window:            4 * time.Hour,
			RepartitionEvery:  2 * 24 * time.Hour,
			MinRepartitionGap: 8 * time.Hour,
			TriggerWindows:    2,
			DecayHalfLife:     p.HalfLife,
			Horizon:           p.Horizon,
		},
		Model: shardchain.ModelReceipts,
	}
	if autoscale {
		cfg.Sim.Autoscale = sim.AutoscaleConfig{
			Enabled:          true,
			KMin:             p.KMin,
			KMax:             p.KMax,
			TargetWindowLoad: p.Target,
		}
	}
	return cfg
}

// ScaleOperational runs the comparison: fixed provisioning at KMin and at
// KMax, and the autoscaler ranging between them, all on the same
// flash-crowd history. The three co-simulations run in parallel.
func ScaleOperational(p ScaleParams) ([]ScaleCostRow, error) {
	p = p.withDefaults()
	if p.KMin > p.KMax {
		return nil, fmt.Errorf("experiments: scale: k-min %d > k-max %d", p.KMin, p.KMax)
	}
	gt := FlashCrowdTrace(p)
	cells := []struct {
		mode      string
		k         int
		autoscale bool
	}{
		{"fixed-kmin", p.KMin, false},
		{"fixed-kmax", p.KMax, false},
		{"autoscale", p.KMin, true},
	}
	results := make([]*opsim.Result, len(cells))
	errs := make([]error, len(cells))
	sim.RunIndexed(len(cells), func(i int) {
		results[i], errs[i] = opsim.Run(gt, scaleConfig(p, cells[i].k, cells[i].autoscale))
	})
	rows := make([]ScaleCostRow, len(cells))
	for i, c := range cells {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: scale ops %s: %w", c.mode, errs[i])
		}
		res := results[i]
		row := ScaleCostRow{
			Mode:           c.mode,
			KStart:         c.k,
			KFinal:         c.k,
			Resizes:        len(res.Sim.Resizes),
			Messages:       res.Totals.Messages,
			Migrations:     res.Totals.Migrations,
			MigratedSlots:  res.Totals.MigratedSlots,
			Failed:         res.Totals.Failed,
			DynamicCut:     res.Sim.OverallDynamicCut,
			MeanSettlement: res.MeanSettlement(),
		}
		for _, w := range res.Windows {
			row.ShardWindows += int64(w.Shards)
			row.KFinal = w.Shards
		}
		for _, w := range res.Sim.Windows {
			if w.PeakLoad > row.PeakWindowLoad {
				row.PeakWindowLoad = w.PeakLoad
			}
		}
		rows[i] = row
	}
	return rows, nil
}
