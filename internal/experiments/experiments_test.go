package experiments

import (
	"strings"
	"testing"
	"time"

	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

// testEras compresses the paper's three regimes (growth, attack, boom) into
// three months so the full figure pipeline runs in seconds.
func testEras() []workload.Era {
	d := func(y int, m time.Month, day int) time.Time {
		return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
	}
	return []workload.Era{
		{
			Name: "growth", Start: d(2016, 11, 1), End: d(2016, 12, 10),
			TxPerDayStart: 4_000, TxPerDayEnd: 20_000, Kind: workload.GrowthExponential,
			NewAccountFrac: 0.3, DeploysPerDay: 8,
			Mix: workload.TxMix{Transfer: 0.7, Token: 0.12, Wallet: 0.08, Crowdsale: 0.04, Game: 0.03, Airdrop: 0.03},
		},
		{
			Name: "attack", Start: d(2016, 12, 10), End: d(2016, 12, 20),
			TxPerDayStart: 80_000, TxPerDayEnd: 80_000, Kind: workload.GrowthLinear,
			NewAccountFrac: 0.1, DummyFrac: 0.8, DeploysPerDay: 2,
			Mix: workload.TxMix{Transfer: 0.15, Token: 0.02, Wallet: 0.01, Crowdsale: 0.01, Game: 0.005, Airdrop: 0.005},
		},
		{
			Name: "boom", Start: d(2016, 12, 20), End: d(2017, 2, 1),
			TxPerDayStart: 25_000, TxPerDayEnd: 60_000, Kind: workload.GrowthExponential,
			NewAccountFrac: 0.22, DeploysPerDay: 15,
			Mix: workload.TxMix{Transfer: 0.5, Token: 0.25, Wallet: 0.08, Crowdsale: 0.08, Game: 0.04, Airdrop: 0.05},
		},
	}
}

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset(Params{
		Seed:             5,
		Scale:            0.02,
		Eras:             testEras(),
		BlockInterval:    2 * time.Hour,
		RepartitionEvery: 10 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.GT.Records) < 5_000 {
		t.Fatalf("dataset too small: %d records", len(ds.GT.Records))
	}
	return ds
}

func TestFig1ShowsGrowthAndAttackSpike(t *testing.T) {
	ds := testDataset(t)
	rows, eras, err := ds.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d monthly samples", len(rows))
	}
	if len(eras) != 3 {
		t.Fatalf("eras = %d", len(eras))
	}
	// Monotone growth of cumulative counts.
	for i := 1; i < len(rows); i++ {
		if rows[i].Vertices < rows[i-1].Vertices || rows[i].Edges < rows[i-1].Edges {
			t.Fatalf("cumulative counts decreased at %v", rows[i].Month)
		}
	}
	// The attack month (December) must add far more vertices than the
	// first growth month (the paper's order-of-magnitude jump). Row i is
	// the cumulative count at the start of month i+1, so December's
	// growth is the delta of the row flushed on January 1.
	novGrowth := rows[0].Vertices
	var decGrowth int64
	for i := 1; i < len(rows); i++ {
		if rows[i].Month.Month() == time.January {
			decGrowth = rows[i].Vertices - rows[i-1].Vertices
		}
	}
	if decGrowth < 3*novGrowth {
		t.Errorf("attack month growth %d not clearly above pre-attack %d", decGrowth, novGrowth)
	}
}

func TestFig1GrowthFit(t *testing.T) {
	rows := []Fig1Row{}
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	// Fabricate exponential-then-flat edge counts.
	edges := []int64{100, 200, 400, 800, 1600, 1700, 1800, 1900}
	for i, e := range edges {
		rows = append(rows, Fig1Row{Month: base.AddDate(0, i, 0), Edges: e, Vertices: e})
	}
	split := base.AddDate(0, 5, 0)
	pre, post, err := Fig1GrowthFit(rows, split)
	if err != nil {
		t.Fatal(err)
	}
	if pre < 0.6 || pre > 0.8 { // log(2) ≈ 0.693 per month
		t.Errorf("pre rate = %v, want ≈ 0.69", pre)
	}
	if post > 0.1 {
		t.Errorf("post rate = %v, want small", post)
	}
	if pre <= post {
		t.Error("pre-attack growth must exceed post-attack growth")
	}
}

func TestFig2ProducesDOT(t *testing.T) {
	ds := testDataset(t)
	var sb strings.Builder
	if err := ds.Fig2(&sb, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph") {
		t.Fatalf("no DOT header: %q", out[:min(80, len(out))])
	}
	if !strings.Contains(out, "style=dashed") {
		t.Error("Fig 2 subgraph must contain a contract (dashed node)")
	}
	if !strings.Contains(out, "->") {
		t.Error("Fig 2 subgraph must contain edges")
	}
}

func TestFig3SeriesAndCache(t *testing.T) {
	ds := testDataset(t)
	res, err := ds.Fig3(sim.MethodHash)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) < 50 {
		t.Fatalf("only %d windows", len(res.Windows))
	}
	// Cache: a second call returns the identical object.
	res2, err := ds.Fig3(sim.MethodHash)
	if err != nil {
		t.Fatal(err)
	}
	if res != res2 {
		t.Error("dataset cache must return the same result object")
	}
}

func TestFig4CellsCoverMethodsAndPeriods(t *testing.T) {
	// Use a dataset whose records span one Fig-4 period; the windows of
	// other periods are simply empty. We use a 2017-period era so at
	// least one period has data.
	ds := testDataset(t)
	cells, err := ds.Fig4([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(sim.Methods()) * len(Fig4Periods())
	if len(cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(cells), wantCells)
	}
	// The 01.17-06.17 period overlaps the test eras' tail (January 2017);
	// every method must have window samples there.
	for _, c := range cells {
		if c.Period != "01.17-06.17" {
			continue
		}
		if c.CutStats.N == 0 {
			t.Errorf("%v has no window samples in %s", c.Method, c.Period)
		}
		if c.CutStats.Min < 0 || c.CutStats.Max > 1 {
			t.Errorf("%v cut out of range: %+v", c.Method, c.CutStats)
		}
		if c.BalStats.Min < 1-1e-9 {
			t.Errorf("%v balance below 1: %+v", c.Method, c.BalStats)
		}
	}
}

func TestFig5ShapesMatchPaper(t *testing.T) {
	ds := testDataset(t)
	rows, err := ds.Fig5([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sim.Methods())*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(m sim.Method, k int) Fig5Row {
		for _, r := range rows {
			if r.Method == m && r.K == k {
				return r
			}
		}
		t.Fatalf("missing row %v k=%d", m, k)
		return Fig5Row{}
	}
	// Hash: zero moves, cut grows with k.
	h2, h4 := get(sim.MethodHash, 2), get(sim.MethodHash, 4)
	if h2.Moves != 0 || h4.Moves != 0 {
		t.Error("hash must have zero moves")
	}
	if h4.DynamicCut <= h2.DynamicCut {
		t.Error("hash cut must grow with k")
	}
	// METIS beats hash on cut at every k.
	for _, k := range []int{2, 4} {
		if get(sim.MethodMetis, k).DynamicCut >= get(sim.MethodHash, k).DynamicCut {
			t.Errorf("k=%d: METIS cut not below hash", k)
		}
	}
	// Normalized balance within [0, 1] (+slack for tiny loads).
	for _, r := range rows {
		if r.NormBalance < -1e-9 || r.NormBalance > 1+1e-9 {
			t.Errorf("%v k=%d norm balance = %v", r.Method, r.K, r.NormBalance)
		}
	}
}
