package experiments

import (
	"fmt"
	"time"

	"ethpart/internal/costmodel"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

// The functions here implement the two extension experiments derived from
// the paper's final remarks:
//
//   - CostComparison prices each method's run under both multi-shard
//     execution models (coordinated execution vs state movement), the
//     "computation, storage and bandwidth" incentive components;
//   - ShardAware re-runs the headline comparison on a workload whose
//     applications were designed for a sharded world (community-local
//     interactions), the paper's "applications will be designed in a
//     different way" caveat.

// CostRow is one method's price under one execution model.
type CostRow struct {
	Method    sim.Method
	Model     costmodel.Model
	Breakdown costmodel.Breakdown
}

// CostComparison prices every method at k shards under both execution
// models using the default cost parameters.
func (d *Dataset) CostComparison(k int) ([]CostRow, error) {
	return d.CostComparisonWith(k, costmodel.DefaultParams())
}

// CostComparisonWith prices every method at k shards under both execution
// models with explicit cost parameters (e.g. costmodel.WANParams).
func (d *Dataset) CostComparisonWith(k int, params costmodel.Params) ([]CostRow, error) {
	var rows []CostRow
	for _, model := range []costmodel.Model{costmodel.Coordinated, costmodel.StateMovement} {
		for _, m := range sim.Methods() {
			res, err := d.Run(m, k)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CostRow{
				Method:    m,
				Model:     model,
				Breakdown: costmodel.Cost(res, model, params),
			})
		}
	}
	return rows, nil
}

// ShardAwareRow compares one method's dynamic cut on today's workload
// against the shard-aware (community-local) workload.
type ShardAwareRow struct {
	Method      sim.Method
	BaselineCut float64
	AwareCut    float64
	BaselineBal float64
	AwareBal    float64
}

// ShardAware generates a second history identical in shape but with
// application communities (one per shard, high locality) and reruns the
// methods at k shards on both. The expected outcome — and what the tests
// assert — is that every placement-aware method's cut collapses while
// hashing barely improves: shard-awareness only helps when the partitioner
// can follow the community structure.
func ShardAware(p Params, k int, locality float64) ([]ShardAwareRow, error) {
	p = p.withDefaults()
	base, err := NewDataset(p)
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline dataset: %w", err)
	}
	awareGT, err := sim.Generate(workload.Config{
		Seed:              p.Seed,
		Scale:             p.Scale,
		Eras:              p.Eras,
		BlockInterval:     p.BlockInterval,
		Communities:       k,
		CommunityLocality: locality,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: shard-aware dataset: %w", err)
	}

	var rows []ShardAwareRow
	for _, m := range sim.Methods() {
		baseRes, err := base.Run(m, k)
		if err != nil {
			return nil, err
		}
		// Mirror configFor exactly (including decay) so both halves of the
		// comparison replay under the same regime.
		awareRes, err := sim.Replay(awareGT, sim.Config{
			Method: m, K: k,
			Window:           p.Window,
			RepartitionEvery: p.RepartitionEvery,
			DecayHalfLife:    p.DecayHalfLife,
			Horizon:          p.Horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: shard-aware %v: %w", m, err)
		}
		rows = append(rows, ShardAwareRow{
			Method:      m,
			BaselineCut: baseRes.OverallDynamicCut,
			AwareCut:    awareRes.OverallDynamicCut,
			BaselineBal: baseRes.OverallDynamicBalance,
			AwareBal:    awareRes.OverallDynamicBalance,
		})
	}
	return rows, nil
}

// DefaultShardAwareParams compresses the history for the extension
// experiment (it needs two full generations).
func DefaultShardAwareParams(seed int64, scale float64) Params {
	d := func(y int, m time.Month, day int) time.Time {
		return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
	}
	return Params{
		Seed:  seed,
		Scale: scale,
		Eras: []workload.Era{{
			Name:  "boom",
			Start: d(2017, time.March, 1), End: d(2017, time.September, 1),
			TxPerDayStart: 45_000, TxPerDayEnd: 200_000,
			Kind:           workload.GrowthExponential,
			NewAccountFrac: 0.22, DeploysPerDay: 40,
			Mix: workload.TxMix{Transfer: 0.48, Token: 0.26, Wallet: 0.08, Crowdsale: 0.1, Game: 0.04, Airdrop: 0.04},
		}},
		BlockInterval: 2 * time.Hour,
	}
}
