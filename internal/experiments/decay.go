package experiments

import (
	"fmt"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/opsim"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/types"
)

// This file implements the operational decay comparison — the roadmap's
// missing figure: what windowed decay buys a *live* sharded chain in
// migration cost (account moves, relocated storage slots, cross-shard
// messages) on a drifting-era history, where full-history repartitioners
// keep re-deciding the fate of accounts that will never be touched again.

// DecayParams configures the operational decay comparison.
type DecayParams struct {
	// Seed drives the drifting-era trace generator.
	Seed int64
	// K is the shard count (default 4).
	K int
	// HalfLife/Horizon are the decay runs' parameters (defaults: 12h/36h).
	HalfLife, Horizon time.Duration
	// Eras and WindowsPerEra size the drifting history (defaults: 10 eras
	// of 8 four-hour windows; each era retires the previous era's active
	// set, the regime decay is built for).
	Eras, WindowsPerEra int
}

func (p DecayParams) withDefaults() DecayParams {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.K <= 0 {
		p.K = 4
	}
	if p.HalfLife <= 0 {
		p.HalfLife = 12 * time.Hour
	}
	if p.Horizon <= 0 {
		p.Horizon = 3 * p.HalfLife
	}
	if p.Eras <= 0 {
		p.Eras = 10
	}
	if p.WindowsPerEra <= 0 {
		p.WindowsPerEra = 8
	}
	return p
}

// DecayCostRow is one row of the comparison: a repartitioning method run
// through the live chain under ModelMigration, with or without decay.
type DecayCostRow struct {
	Method sim.Method
	Decay  bool
	// Repartitions and Moves are the simulator's policy firings and
	// assignment changes; WaveMigrations/WaveSlots are what the waves cost
	// the live chain (state actually moved by applyMoves batches), while
	// Migrations/MigratedSlots/Messages are the chain totals including the
	// traffic-driven inline migrations of the model.
	Repartitions   int
	Moves          int64
	WaveMigrations int64
	WaveSlots      int64
	Migrations     int64
	MigratedSlots  int64
	Messages       int64
	// DynamicCut is the run-level cross-shard fraction (quality must not
	// be given up for the cheaper moves).
	DynamicCut float64
	// LiveVertices is the final live-graph size — the memory bound decay
	// buys.
	LiveVertices int
}

// decayTraceVertices is each era's active-set size; every tenth vertex is
// a contract carrying decayTraceSlots storage slots so migration cost is
// visible in relocated state, not just move counts.
const (
	decayTraceVertices = 120
	decayTraceSlots    = 4
)

// DecayTrace builds the drifting-era history of the comparison: Eras eras
// whose active sets are disjoint, WindowsPerEra four-hour windows each,
// two blocks per window, deterministic in Seed. It is exported so the
// bench-dir load driver can replay the same regime.
func DecayTrace(p DecayParams) *sim.GeneratedTrace {
	p = p.withDefaults()
	reg := trace.NewRegistry()
	slots := make(map[graph.VertexID]int)
	total := uint64(p.Eras * decayTraceVertices)
	for i := uint64(0); i < total; i++ {
		id := reg.ID(types.AddressFromSeq(i + 1))
		if id%10 == 0 {
			reg.MarkContract(id)
			slots[graph.VertexID(id)] = decayTraceSlots
		}
	}

	state := uint64(p.Seed)*2862933555777941757 + 3037000493
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	const (
		blocksPerWindow = 2
		recsPerBlock    = 60
	)
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	var recs []trace.Record
	block := uint64(0)
	for e := 0; e < p.Eras; e++ {
		lo := uint64(e * decayTraceVertices)
		for w := 0; w < p.WindowsPerEra; w++ {
			for b := 0; b < blocksPerWindow; b++ {
				block++
				t := base + int64(block-1)*int64(4*3600/blocksPerWindow)
				for i := 0; i < recsPerBlock; i++ {
					from := lo + next(decayTraceVertices)
					to := lo + next(decayTraceVertices)
					recs = append(recs, trace.Record{
						Block: block, Time: t, Kind: evm.KindTransaction,
						From: from, To: to,
						FromContract: reg.IsContract(from),
						ToContract:   reg.IsContract(to),
						Value:        1 + next(1000),
					})
				}
			}
		}
	}
	return sim.NewGeneratedTrace(recs, reg, slots)
}

// DecayOperational runs the comparison: the three repartitioning methods
// (METIS, R-METIS, TR-METIS) through the live chain under ModelMigration,
// each with and without windowed decay, on the same drifting-era history.
// The six co-simulations run in parallel.
func DecayOperational(p DecayParams) ([]DecayCostRow, error) {
	p = p.withDefaults()
	gt := DecayTrace(p)
	methods := []sim.Method{sim.MethodMetis, sim.MethodRMetis, sim.MethodTRMetis}

	type cell struct {
		method sim.Method
		decay  bool
	}
	var cells []cell
	for _, m := range methods {
		for _, decay := range []bool{false, true} {
			cells = append(cells, cell{m, decay})
		}
	}
	results := make([]*opsim.Result, len(cells))
	errs := make([]error, len(cells))
	sim.RunIndexed(len(cells), func(i int) {
		c := cells[i]
		cfg := opsim.Config{
			Sim: sim.Config{
				Method: c.method, K: p.K,
				Window:            4 * time.Hour,
				RepartitionEvery:  2 * 24 * time.Hour,
				MinRepartitionGap: 24 * time.Hour,
				TriggerWindows:    2,
				CutThreshold:      0.2,
				BalanceThreshold:  1.5,
			},
			Model: shardchain.ModelMigration,
		}
		if c.decay {
			cfg.Sim.DecayHalfLife = p.HalfLife
			cfg.Sim.Horizon = p.Horizon
		}
		results[i], errs[i] = opsim.Run(gt, cfg)
	})
	rows := make([]DecayCostRow, len(cells))
	for i, c := range cells {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: decay ops %v decay=%v: %w", c.method, c.decay, errs[i])
		}
		res := results[i]
		rows[i] = DecayCostRow{
			Method:         c.method,
			Decay:          c.decay,
			Repartitions:   res.Sim.Repartitions,
			Moves:          res.Sim.TotalMoves,
			WaveMigrations: res.WaveMigrations,
			WaveSlots:      res.WaveMigratedSlots,
			Migrations:     res.Totals.Migrations,
			MigratedSlots:  res.Totals.MigratedSlots,
			Messages:       res.Totals.Messages,
			DynamicCut:     res.Sim.OverallDynamicCut,
			LiveVertices:   res.Sim.Vertices,
		}
	}
	return rows, nil
}
