package experiments

import (
	"testing"
)

// TestFlashCrowdTraceShape: the pipeline-generated trace is deterministic
// in its seed and carries the three-phase shape the autoscaler comparison
// depends on — a surge phase an order of magnitude denser than the quiet
// phases around it, populated by a crowd of accounts the quiet prefix
// never saw.
func TestFlashCrowdTraceShape(t *testing.T) {
	a := FlashCrowdTrace(ScaleParams{Seed: 7})
	b := FlashCrowdTrace(ScaleParams{Seed: 7})
	if len(a.Records) != len(b.Records) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("same seed diverges at record %d", i)
		}
	}
	c := FlashCrowdTrace(ScaleParams{Seed: 8})
	same := len(c.Records) == len(a.Records)
	if same {
		diff := false
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical traces")
		}
	}

	// Bucket records into the arrival process's three phases by timestamp.
	spec := FlashCrowdSpec(7)
	start := spec.Arrival.Start.Unix()
	surgeFrom := start + int64(flashQuietWindows*flashWindowHours*3600)
	surgeTo := surgeFrom + int64(flashSurgeWindows*flashWindowHours*3600)
	var quiet, surge, cool int
	quietSeen := map[uint64]bool{}
	crowd := map[uint64]bool{}
	for _, r := range a.Records {
		switch {
		case r.Time < surgeFrom:
			quiet++
			quietSeen[r.From], quietSeen[r.To] = true, true
		case r.Time < surgeTo:
			surge++
			if !quietSeen[r.From] {
				crowd[r.From] = true
			}
			if !quietSeen[r.To] {
				crowd[r.To] = true
			}
		default:
			cool++
		}
	}
	if quiet == 0 || surge == 0 || cool == 0 {
		t.Fatalf("phase empty: quiet=%d surge=%d cool=%d", quiet, surge, cool)
	}
	// The surge phase and the quiet prefix cover the same number of
	// windows; the flash spike must make the surge several times denser.
	if surge < 4*quiet {
		t.Errorf("surge has %d records vs %d quiet: spike invisible", surge, quiet)
	}
	// The surge brings a crowd: a substantial cohort of accounts that
	// never appeared before it (open-loop arrivals fund new accounts).
	if len(crowd) < len(quietSeen) {
		t.Errorf("surge introduced only %d new accounts over %d quiet-phase ones",
			len(crowd), len(quietSeen))
	}
}

// TestScaleOperational runs the scalecost comparison end to end and pins
// the figure's headline relationships: the fixed policies never resize and
// bracket the autoscaler's capacity cost, and the autoscaler both splits
// under the surge and merges in the cooldown.
func TestScaleOperational(t *testing.T) {
	rows, err := ScaleOperational(ScaleParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want fixed-kmin, fixed-kmax, autoscale", len(rows))
	}
	byMode := map[string]ScaleCostRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	kmin, kmax, auto := byMode["fixed-kmin"], byMode["fixed-kmax"], byMode["autoscale"]

	for _, r := range []ScaleCostRow{kmin, kmax} {
		if r.Resizes != 0 {
			t.Errorf("%s resized %d times; fixed policies must not", r.Mode, r.Resizes)
		}
		if r.KFinal != r.KStart {
			t.Errorf("%s ended at k=%d, started at %d", r.Mode, r.KFinal, r.KStart)
		}
	}
	// Fixed cells provision k shards in every window; the exact window
	// count belongs to the arrival process, but the two runs must agree on
	// it (shard-windows scale with k on the same trace).
	if kmin.ShardWindows%2 != 0 || kmax.ShardWindows != 4*kmin.ShardWindows {
		t.Errorf("fixed shard-windows inconsistent: kmin=%d kmax=%d (want 4x)",
			kmin.ShardWindows, kmax.ShardWindows)
	}

	if auto.Resizes == 0 {
		t.Fatal("autoscale cell never resized on the flash crowd")
	}
	if auto.ShardWindows <= kmin.ShardWindows || auto.ShardWindows >= kmax.ShardWindows {
		t.Errorf("autoscale capacity cost %d shard-windows not strictly between the fixed %d and %d",
			auto.ShardWindows, kmin.ShardWindows, kmax.ShardWindows)
	}
	// Scaling out must relieve the saturation the small fleet suffers.
	if auto.PeakWindowLoad >= kmin.PeakWindowLoad {
		t.Errorf("autoscale peak load %d not below fixed-kmin's %d",
			auto.PeakWindowLoad, kmin.PeakWindowLoad)
	}
	// The merge leg pays honest decommissioning cost under receipts: the
	// fixed cells never migrate, the autoscaler does.
	if kmin.Migrations != 0 || kmax.Migrations != 0 {
		t.Errorf("fixed receipts cells migrated state: %d / %d", kmin.Migrations, kmax.Migrations)
	}
	if auto.Migrations == 0 {
		t.Error("autoscale run recorded no merge-drain migrations")
	}
	for _, r := range rows {
		if r.Failed != 0 {
			t.Errorf("%s: %d failed txs; funded replay must validate cleanly", r.Mode, r.Failed)
		}
	}
}

// TestScaleOperationalValidation: inverted bounds are rejected up front.
func TestScaleOperationalValidation(t *testing.T) {
	if _, err := ScaleOperational(ScaleParams{KMin: 6, KMax: 3}); err == nil {
		t.Error("KMin > KMax accepted")
	}
}
