package experiments

import (
	"testing"
)

// TestFlashCrowdTraceShape: the trace is deterministic in its seed and
// carries the three-phase shape the autoscaler comparison depends on — a
// surge phase an order of magnitude denser than the quiet phases around it.
func TestFlashCrowdTraceShape(t *testing.T) {
	a := FlashCrowdTrace(ScaleParams{Seed: 7})
	b := FlashCrowdTrace(ScaleParams{Seed: 7})
	if len(a.Records) != len(b.Records) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("same seed diverges at record %d", i)
		}
	}
	c := FlashCrowdTrace(ScaleParams{Seed: 8})
	same := len(c.Records) == len(a.Records)
	if same {
		diff := false
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical traces")
		}
	}

	const blocksPerWindow = 2
	wantQuiet := flashQuietWindows * blocksPerWindow * flashQuietRecs
	wantSurge := flashSurgeWindows * blocksPerWindow * flashSurgeRecs
	wantCool := flashCoolWindows * blocksPerWindow * flashQuietRecs
	if got := len(a.Records); got != wantQuiet+wantSurge+wantCool {
		t.Errorf("trace has %d records, want %d", got, wantQuiet+wantSurge+wantCool)
	}
	// The surge cohort must be absent from the quiet prefix and dominant in
	// the middle.
	for i := 0; i < wantQuiet; i++ {
		if a.Records[i].From >= flashBaseVertices || a.Records[i].To >= flashBaseVertices {
			t.Fatalf("quiet-phase record %d touches the crowd cohort", i)
		}
	}
	crowd := 0
	for i := wantQuiet; i < wantQuiet+wantSurge; i++ {
		if a.Records[i].From >= flashBaseVertices || a.Records[i].To >= flashBaseVertices {
			crowd++
		}
	}
	if frac := float64(crowd) / float64(wantSurge); frac < 0.5 {
		t.Errorf("crowd cohort appears in only %.0f%% of surge records", 100*frac)
	}
}

// TestScaleOperational runs the scalecost comparison end to end and pins
// the figure's headline relationships: the fixed policies never resize and
// bracket the autoscaler's capacity cost, and the autoscaler both splits
// under the surge and merges in the cooldown.
func TestScaleOperational(t *testing.T) {
	rows, err := ScaleOperational(ScaleParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want fixed-kmin, fixed-kmax, autoscale", len(rows))
	}
	byMode := map[string]ScaleCostRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	kmin, kmax, auto := byMode["fixed-kmin"], byMode["fixed-kmax"], byMode["autoscale"]

	for _, r := range []ScaleCostRow{kmin, kmax} {
		if r.Resizes != 0 {
			t.Errorf("%s resized %d times; fixed policies must not", r.Mode, r.Resizes)
		}
		if r.KFinal != r.KStart {
			t.Errorf("%s ended at k=%d, started at %d", r.Mode, r.KFinal, r.KStart)
		}
	}
	windows := int64(flashQuietWindows + flashSurgeWindows + flashCoolWindows)
	if kmin.ShardWindows != 2*windows {
		t.Errorf("fixed-kmin shard-windows = %d, want %d", kmin.ShardWindows, 2*windows)
	}
	if kmax.ShardWindows != 8*windows {
		t.Errorf("fixed-kmax shard-windows = %d, want %d", kmax.ShardWindows, 8*windows)
	}

	if auto.Resizes == 0 {
		t.Fatal("autoscale cell never resized on the flash crowd")
	}
	if auto.ShardWindows <= kmin.ShardWindows || auto.ShardWindows >= kmax.ShardWindows {
		t.Errorf("autoscale capacity cost %d shard-windows not strictly between the fixed %d and %d",
			auto.ShardWindows, kmin.ShardWindows, kmax.ShardWindows)
	}
	// Scaling out must relieve the saturation the small fleet suffers.
	if auto.PeakWindowLoad >= kmin.PeakWindowLoad {
		t.Errorf("autoscale peak load %d not below fixed-kmin's %d",
			auto.PeakWindowLoad, kmin.PeakWindowLoad)
	}
	// The merge leg pays honest decommissioning cost under receipts: the
	// fixed cells never migrate, the autoscaler does.
	if kmin.Migrations != 0 || kmax.Migrations != 0 {
		t.Errorf("fixed receipts cells migrated state: %d / %d", kmin.Migrations, kmax.Migrations)
	}
	if auto.Migrations == 0 {
		t.Error("autoscale run recorded no merge-drain migrations")
	}
	for _, r := range rows {
		if r.Failed != 0 {
			t.Errorf("%s: %d failed txs; funded replay must validate cleanly", r.Mode, r.Failed)
		}
	}
}

// TestScaleOperationalValidation: inverted bounds are rejected up front.
func TestScaleOperationalValidation(t *testing.T) {
	if _, err := ScaleOperational(ScaleParams{KMin: 6, KMax: 3}); err == nil {
		t.Error("KMin > KMax accepted")
	}
}
