package experiments

import (
	"testing"
	"time"

	"ethpart/internal/costmodel"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

func TestCostComparisonRanksMethods(t *testing.T) {
	ds := testDataset(t)
	rows, err := ds.CostComparison(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(sim.Methods()) {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]CostRow{}
	for _, r := range rows {
		byKey[r.Method.String()+"/"+r.Model.String()] = r
		if r.Breakdown.Total() <= 0 {
			t.Errorf("%v/%v total = %v", r.Method, r.Model, r.Breakdown.Total())
		}
	}
	// Hashing pays the most coordination under the coordinated model (its
	// cut is the worst) and nothing in relocation.
	hash := byKey["HASH/coordinated"]
	metis := byKey["METIS/coordinated"]
	if hash.Breakdown.Coordination <= metis.Breakdown.Coordination {
		t.Error("hash must pay more coordination than METIS")
	}
	if hash.Breakdown.Relocation != 0 {
		t.Error("hash must pay no relocation")
	}
	if metis.Breakdown.Relocation <= 0 {
		t.Error("METIS must pay relocation")
	}
}

// shardAwareParams compresses history further for test speed.
func shardAwareTestParams() Params {
	d := func(y int, m time.Month, day int) time.Time {
		return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
	}
	return Params{
		Seed:  7,
		Scale: 0.02,
		Eras: []workload.Era{{
			Name:  "boom",
			Start: d(2017, time.March, 1), End: d(2017, time.April, 15),
			TxPerDayStart: 30_000, TxPerDayEnd: 60_000,
			Kind:           workload.GrowthExponential,
			NewAccountFrac: 0.2, DeploysPerDay: 30,
			Mix: workload.TxMix{Transfer: 0.5, Token: 0.24, Wallet: 0.08, Crowdsale: 0.1, Game: 0.04, Airdrop: 0.04},
		}},
		BlockInterval:    2 * time.Hour,
		RepartitionEvery: 10 * 24 * time.Hour,
	}
}

func TestShardAwareWorkloadCollapsesCut(t *testing.T) {
	rows, err := ShardAware(shardAwareTestParams(), 4, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sim.Methods()) {
		t.Fatalf("rows = %d", len(rows))
	}
	var hash, metis ShardAwareRow
	for _, r := range rows {
		t.Logf("%-8v baseline cut=%.3f aware cut=%.3f", r.Method, r.BaselineCut, r.AwareCut)
		switch r.Method {
		case sim.MethodHash:
			hash = r
		case sim.MethodMetis:
			metis = r
		}
	}
	// Hashing cannot exploit community structure: its cut stays near
	// (k-1)/k either way.
	if hash.AwareCut < 0.6 {
		t.Errorf("hash aware cut = %.3f, should stay near 0.75", hash.AwareCut)
	}
	// METIS must exploit it: cut on the shard-aware workload far below its
	// baseline cut.
	if metis.AwareCut > 0.7*metis.BaselineCut {
		t.Errorf("METIS aware cut = %.3f vs baseline %.3f: expected a collapse",
			metis.AwareCut, metis.BaselineCut)
	}
}

func TestDefaultShardAwareParams(t *testing.T) {
	p := DefaultShardAwareParams(3, 0.01)
	if p.Seed != 3 || p.Scale != 0.01 || len(p.Eras) != 1 {
		t.Errorf("params = %+v", p)
	}
}

func TestCostModelIntegrationMovesDominateForMetis(t *testing.T) {
	// Under the state-movement pricing, METIS's repartitioning moves must
	// show up as a significant relocation bill relative to KL's.
	ds := testDataset(t)
	rows, err := ds.CostComparison(2)
	if err != nil {
		t.Fatal(err)
	}
	var metisReloc, klReloc float64
	for _, r := range rows {
		if r.Model != costmodel.StateMovement {
			continue
		}
		switch r.Method {
		case sim.MethodMetis:
			metisReloc = r.Breakdown.Relocation
		case sim.MethodKL:
			klReloc = r.Breakdown.Relocation
		}
	}
	if metisReloc <= klReloc {
		t.Errorf("METIS relocation %v not above KL %v", metisReloc, klReloc)
	}
}
