package experiments

import (
	"fmt"

	"ethpart/internal/opsim"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
)

// Models lists the two multi-shard handling classes in presentation order.
func Models() []shardchain.Model {
	return []shardchain.Model{shardchain.ModelReceipts, shardchain.ModelMigration}
}

// OperationalRow is one cell of the operational matrix: a method replayed
// through the live sharded chain under one multi-shard model.
type OperationalRow struct {
	Method sim.Method
	Model  shardchain.Model
	K      int
	Result *opsim.Result
}

type opsKey struct {
	method sim.Method
	model  shardchain.Model
	k      int
}

// opsConfigFor is the co-simulation configuration for one cell of the
// operational matrix.
func (d *Dataset) opsConfigFor(key opsKey) opsim.Config {
	return opsim.Config{Sim: d.configFor(key.method, key.k), Model: key.model}
}

// OperationalRun returns the (cached) co-simulation result for one
// method × model at k shards.
func (d *Dataset) OperationalRun(method sim.Method, model shardchain.Model, k int) (*opsim.Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("experiments: ops: k must be >= 1, got %d", k)
	}
	key := opsKey{method, model, k}
	if res, ok := d.opsCache[key]; ok {
		return res, nil
	}
	res, err := opsim.Run(d.GT, d.opsConfigFor(key))
	if err != nil {
		return nil, fmt.Errorf("experiments: ops %v/%v k=%d: %w", method, model, k, err)
	}
	d.opsCache[key] = res
	return res, nil
}

// Operational replays the history through the live sharded chain for every
// method under both multi-shard models at k shards — the end-to-end
// measurement the paper's edge-cut curves proxy: cross-shard messages,
// settlement latency, migrated state and failed transactions, per window
// and in total. Uncached combinations run in parallel (each co-simulation
// only reads the shared trace, like sim.RunSweep's replays).
func (d *Dataset) Operational(k int) ([]OperationalRow, error) {
	if k < 1 {
		return nil, fmt.Errorf("experiments: ops: k must be >= 1, got %d", k)
	}
	var missing []opsKey
	for _, model := range Models() {
		for _, m := range sim.Methods() {
			key := opsKey{m, model, k}
			if _, ok := d.opsCache[key]; !ok {
				missing = append(missing, key)
			}
		}
	}
	if len(missing) > 0 {
		results := make([]*opsim.Result, len(missing))
		errs := make([]error, len(missing))
		sim.RunIndexed(len(missing), func(i int) {
			results[i], errs[i] = opsim.Run(d.GT, d.opsConfigFor(missing[i]))
		})
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("experiments: ops %v/%v k=%d: %w",
					missing[i].method, missing[i].model, k, err)
			}
			d.opsCache[missing[i]] = results[i]
		}
	}
	var rows []OperationalRow
	for _, model := range Models() {
		for _, m := range sim.Methods() {
			res, err := d.OperationalRun(m, model, k)
			if err != nil {
				return nil, err
			}
			rows = append(rows, OperationalRow{Method: m, Model: model, K: k, Result: res})
		}
	}
	return rows, nil
}
