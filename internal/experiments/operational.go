package experiments

import (
	"fmt"

	"ethpart/internal/opsim"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
)

// Models lists the two multi-shard handling classes in presentation order.
func Models() []shardchain.Model {
	return []shardchain.Model{shardchain.ModelReceipts, shardchain.ModelMigration}
}

// OperationalRow is one cell of the operational matrix: a method replayed
// through the live sharded chain under one multi-shard model.
type OperationalRow struct {
	Method sim.Method
	Model  shardchain.Model
	K      int
	Result *opsim.Result
}

type opsKey struct {
	method   sim.Method
	model    shardchain.Model
	k        int
	parallel bool
}

// opsConfigFor is the co-simulation configuration for one cell of the
// operational matrix.
func (d *Dataset) opsConfigFor(key opsKey) opsim.Config {
	return opsim.Config{Sim: d.configFor(key.method, key.k), Model: key.model, Parallel: key.parallel}
}

// cachedOps returns the cached co-simulation result for key, if any.
func (d *Dataset) cachedOps(key opsKey) (*opsim.Result, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	res, ok := d.opsCache[key]
	return res, ok
}

// storeOps caches a co-simulation result.
func (d *Dataset) storeOps(key opsKey, res *opsim.Result) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.opsCache[key] = res
}

// OperationalRun returns the (cached) co-simulation result for one
// method × model at k shards on the serial chain engine. It is safe to
// call concurrently (the caches are mutex-guarded; the trace is only
// read).
func (d *Dataset) OperationalRun(method sim.Method, model shardchain.Model, k int) (*opsim.Result, error) {
	return d.operationalRun(opsKey{method, model, k, false})
}

func (d *Dataset) operationalRun(key opsKey) (*opsim.Result, error) {
	if key.k < 1 {
		return nil, fmt.Errorf("experiments: ops: k must be >= 1, got %d", key.k)
	}
	if res, ok := d.cachedOps(key); ok {
		return res, nil
	}
	res, err := opsim.Run(d.GT, d.opsConfigFor(key))
	if err != nil {
		return nil, fmt.Errorf("experiments: ops %v/%v k=%d: %w", key.method, key.model, key.k, err)
	}
	d.storeOps(key, res)
	return res, nil
}

// Operational replays the history through the live sharded chain for every
// method under both multi-shard models at k shards — the end-to-end
// measurement the paper's edge-cut curves proxy: cross-shard messages,
// settlement latency, migrated state and failed transactions, per window
// and in total. Uncached combinations run in parallel (each co-simulation
// only reads the shared trace, like sim.RunSweep's replays).
func (d *Dataset) Operational(k int) ([]OperationalRow, error) {
	return d.operational(k, false)
}

// OperationalParallel is Operational on shardchain's parallel per-shard
// engine: every replayed window and total is byte-identical to
// Operational's, and the results' Blocks/StepNanos measure what the
// parallel engine buys per block.
func (d *Dataset) OperationalParallel(k int) ([]OperationalRow, error) {
	return d.operational(k, true)
}

func (d *Dataset) operational(k int, parallel bool) ([]OperationalRow, error) {
	if k < 1 {
		return nil, fmt.Errorf("experiments: ops: k must be >= 1, got %d", k)
	}
	var missing []opsKey
	for _, model := range Models() {
		for _, m := range sim.Methods() {
			key := opsKey{m, model, k, parallel}
			if _, ok := d.cachedOps(key); !ok {
				missing = append(missing, key)
			}
		}
	}
	if len(missing) > 0 {
		results := make([]*opsim.Result, len(missing))
		errs := make([]error, len(missing))
		sim.RunIndexed(len(missing), func(i int) {
			results[i], errs[i] = opsim.Run(d.GT, d.opsConfigFor(missing[i]))
		})
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("experiments: ops %v/%v k=%d: %w",
					missing[i].method, missing[i].model, k, err)
			}
			d.storeOps(missing[i], results[i])
		}
	}
	var rows []OperationalRow
	for _, model := range Models() {
		for _, m := range sim.Methods() {
			res, err := d.operationalRun(opsKey{m, model, k, parallel})
			if err != nil {
				return nil, err
			}
			rows = append(rows, OperationalRow{Method: m, Model: model, K: k, Result: res})
		}
	}
	return rows, nil
}
