package experiments

import (
	"testing"

	"ethpart/internal/sim"
)

// TestDecayOperationalComparison pins the figure's qualitative claims on
// the drifting-era history: (a) the comparison covers the three
// repartitioning methods with and without decay on identical traffic,
// (b) decay bounds the live graph by the active set while full history
// grows with the trace, and (c) for the full-graph repartitioner (METIS)
// the repartition waves move far less state under decay — the dead eras
// drop out of every firing.
func TestDecayOperationalComparison(t *testing.T) {
	rows, err := DecayOperational(DecayParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3 methods x 2 modes", len(rows))
	}
	byKey := func(m sim.Method, decay bool) DecayCostRow {
		for _, r := range rows {
			if r.Method == m && r.Decay == decay {
				return r
			}
		}
		t.Fatalf("missing row %v decay=%v", m, decay)
		return DecayCostRow{}
	}
	for _, m := range []sim.Method{sim.MethodMetis, sim.MethodRMetis, sim.MethodTRMetis} {
		full, decay := byKey(m, false), byKey(m, true)
		// Same replay on both sides: both must actually repartition.
		if full.Repartitions == 0 || decay.Repartitions == 0 {
			t.Errorf("%v: no repartitions (full=%d decay=%d)", m, full.Repartitions, decay.Repartitions)
		}
		// The memory bound: full history accumulates every era, decay
		// keeps roughly the horizon's worth of active set.
		if full.LiveVertices <= 3*decay.LiveVertices {
			t.Errorf("%v: live graph %d (full) vs %d (decay); decay should bound it",
				m, full.LiveVertices, decay.LiveVertices)
		}
		if full.WaveMigrations == 0 {
			t.Errorf("%v: waves moved no state; the comparison is vacuous", m)
		}
	}
	// The headline: METIS (whole-graph repartitioner) must move much less
	// state per run under decay — dead eras stop being re-migrated.
	full, decay := byKey(sim.MethodMetis, false), byKey(sim.MethodMetis, true)
	if decay.WaveMigrations >= full.WaveMigrations/2 {
		t.Errorf("METIS wave migrations %d (decay) vs %d (full); decay should at least halve them",
			decay.WaveMigrations, full.WaveMigrations)
	}
	if decay.WaveSlots >= full.WaveSlots {
		t.Errorf("METIS wave slots %d (decay) vs %d (full)", decay.WaveSlots, full.WaveSlots)
	}
}
