// Package types holds the primitive blockchain types — addresses and hashes —
// shared by the chain, EVM and trie packages.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// AddressLen is the length of an account address in bytes.
const AddressLen = 20

// HashLen is the length of a hash in bytes.
const HashLen = 32

// Address identifies an account or contract, Ethereum-style (20 bytes).
type Address [AddressLen]byte

// Hash is a 32-byte digest.
type Hash [HashLen]byte

// BytesToAddress converts b to an Address, left-padding or truncating to the
// last 20 bytes as Ethereum does.
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > AddressLen {
		b = b[len(b)-AddressLen:]
	}
	copy(a[AddressLen-len(b):], b)
	return a
}

// AddressFromSeq returns a deterministic synthetic address for sequence
// number n. The synthetic workload generator uses it so that traces are
// reproducible: the same sequence number always yields the same address.
func AddressFromSeq(n uint64) Address {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n)
	h := sha256.Sum256(buf[:])
	return BytesToAddress(h[:])
}

// Hex returns the 0x-prefixed hex encoding of a.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String implements fmt.Stringer with a shortened form for logs.
func (a Address) String() string {
	return fmt.Sprintf("0x%x…%x", a[:3], a[AddressLen-2:])
}

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool { return a == Address{} }

// Hex returns the 0x-prefixed hex encoding of h.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer with a shortened form for logs.
func (h Hash) String() string {
	return fmt.Sprintf("0x%x…%x", h[:4], h[HashLen-2:])
}

// IsZero reports whether h is the zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// HashData returns the SHA-256 digest of data. The reproduction uses SHA-256
// everywhere Ethereum uses Keccak-256; the choice of hash function has no
// bearing on partitioning behaviour.
func HashData(data []byte) Hash { return sha256.Sum256(data) }

// HashConcat hashes the concatenation of the given byte slices without
// intermediate allocation.
func HashConcat(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// ContractAddress derives the address of a contract created by creator with
// the given nonce, mirroring Ethereum's CREATE address derivation.
func ContractAddress(creator Address, nonce uint64) Address {
	var buf [AddressLen + 8]byte
	copy(buf[:], creator[:])
	binary.BigEndian.PutUint64(buf[AddressLen:], nonce)
	h := sha256.Sum256(buf[:])
	return BytesToAddress(h[:])
}
