package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBytesToAddressPadding(t *testing.T) {
	a := BytesToAddress([]byte{0x01})
	if a[AddressLen-1] != 0x01 {
		t.Errorf("last byte = %#x, want 0x01", a[AddressLen-1])
	}
	for i := 0; i < AddressLen-1; i++ {
		if a[i] != 0 {
			t.Errorf("byte %d = %#x, want 0 (left padding)", i, a[i])
		}
	}
}

func TestBytesToAddressTruncation(t *testing.T) {
	b := make([]byte, 32)
	for i := range b {
		b[i] = byte(i)
	}
	a := BytesToAddress(b)
	// Must keep the last 20 bytes: 12..31.
	if a[0] != 12 || a[AddressLen-1] != 31 {
		t.Errorf("truncation kept wrong bytes: % x", a[:])
	}
}

func TestAddressFromSeqDeterministic(t *testing.T) {
	if AddressFromSeq(7) != AddressFromSeq(7) {
		t.Error("AddressFromSeq must be deterministic")
	}
	if AddressFromSeq(7) == AddressFromSeq(8) {
		t.Error("distinct sequence numbers must give distinct addresses")
	}
}

func TestAddressHexAndZero(t *testing.T) {
	var a Address
	if !a.IsZero() {
		t.Error("zero address must report IsZero")
	}
	a[0] = 0xab
	if a.IsZero() {
		t.Error("non-zero address must not report IsZero")
	}
	if !strings.HasPrefix(a.Hex(), "0xab") {
		t.Errorf("Hex() = %q", a.Hex())
	}
	if len(a.Hex()) != 2+2*AddressLen {
		t.Errorf("Hex() length = %d", len(a.Hex()))
	}
}

func TestHashDataMatchesKnownLength(t *testing.T) {
	h := HashData([]byte("hello"))
	if h.IsZero() {
		t.Error("hash of data must not be zero")
	}
	if len(h.Hex()) != 2+2*HashLen {
		t.Errorf("Hex() length = %d", len(h.Hex()))
	}
}

func TestHashConcatEquivalence(t *testing.T) {
	a, b := []byte("foo"), []byte("bar")
	joined := HashData([]byte("foobar"))
	concat := HashConcat(a, b)
	if joined != concat {
		t.Error("HashConcat must equal HashData of concatenation")
	}
}

func TestContractAddressUnique(t *testing.T) {
	creator := AddressFromSeq(1)
	a0 := ContractAddress(creator, 0)
	a1 := ContractAddress(creator, 1)
	if a0 == a1 {
		t.Error("different nonces must yield different contract addresses")
	}
	other := AddressFromSeq(2)
	if ContractAddress(other, 0) == a0 {
		t.Error("different creators must yield different contract addresses")
	}
}

func TestPropertyAddressRoundTripIsIdempotent(t *testing.T) {
	f := func(raw [AddressLen]byte) bool {
		a := Address(raw)
		return BytesToAddress(a[:]) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHashDeterminism(t *testing.T) {
	f := func(data []byte) bool {
		return HashData(data) == HashData(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
