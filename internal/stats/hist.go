package stats

import (
	"math"
	"math/bits"
)

// LatencyHist is a fixed-bucket log-scale histogram for non-negative
// integer samples (nanoseconds, typically). Values below 16 get unit
// buckets; above that, every octave is subdivided into 16 sub-buckets, so
// any quantile is exact to within a 1/16 (6.25%) relative error — a
// replacement for sampled percentile estimates that keeps every
// observation and has no sampling bias. The zero value is ready to use.
//
// Record/Quantile are not synchronised: keep one LatencyHist per recording
// goroutine and Merge them afterwards.
type LatencyHist struct {
	counts [latencyBuckets]int64
	total  int64
}

const (
	latencySubBits = 4
	latencySub     = 1 << latencySubBits
	// Unit buckets for [0,16), then 16 sub-buckets per octave for
	// exponents 4..62 — the last bucket's upper bound is MaxInt64.
	latencyBuckets = latencySub + (63-latencySubBits)*latencySub
)

// latencyBucket maps a sample to its bucket index.
func latencyBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < latencySub {
		return int(u)
	}
	e := bits.Len64(u) - 1 // position of the top set bit, ≥ latencySubBits
	sub := int((u >> (uint(e) - latencySubBits)) & (latencySub - 1))
	return latencySub + (e-latencySubBits)*latencySub + sub
}

// latencyBucketMax returns the largest sample value mapping to bucket i —
// the value Quantile reports, so quantiles are conservative (never under-
// report) within the bucket's 6.25% width.
func latencyBucketMax(i int) int64 {
	if i < latencySub {
		return int64(i)
	}
	e := uint(latencySubBits + (i-latencySub)/latencySub)
	sub := uint64((i - latencySub) % latencySub)
	lo := uint64(1)<<e | sub<<(e-latencySubBits)
	return int64(lo + 1<<(e-latencySubBits) - 1)
}

// Record adds one sample.
func (h *LatencyHist) Record(v int64) {
	h.counts[latencyBucket(v)]++
	h.total++
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int64 { return h.total }

// Merge adds o's samples into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) as the upper bound of the
// bucket holding the rank-⌈p·n⌉ sample. Zero when empty.
func (h *LatencyHist) Quantile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return latencyBucketMax(i)
		}
	}
	return latencyBucketMax(latencyBuckets - 1)
}
