// Package stats provides the descriptive statistics the figures need:
// five-number summaries for Fig. 4's box-and-whisker plots, Gaussian kernel
// density estimates for its violin overlays, histograms, and log-linear
// growth fits used to characterise Fig. 1's growth regimes.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number summary plus mean, the contents of one
// box-and-whisker glyph in Fig. 4.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// Summarize computes a Summary of xs. It copies and sorts internally.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted slice
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// KDE evaluates a Gaussian kernel density estimate of xs at `points`
// equally spaced positions spanning [min, max], using Silverman's
// rule-of-thumb bandwidth. It returns the positions and densities — the
// violin outline of Fig. 4.
func KDE(xs []float64, points int) (positions, densities []float64) {
	if len(xs) == 0 || points <= 0 {
		return nil, nil
	}
	s := Summarize(xs)
	sd := stddev(xs, s.Mean)
	iqr := s.Q3 - s.Q1
	h := 0.9 * math.Min(sd, iqr/1.34) * math.Pow(float64(len(xs)), -0.2)
	if h <= 0 {
		h = 1e-9 // degenerate (constant) sample: near-delta kernel
	}
	lo, hi := s.Min, s.Max
	if lo == hi {
		lo -= 1
		hi += 1
	}
	positions = make([]float64, points)
	densities = make([]float64, points)
	step := (hi - lo) / float64(points-1)
	if points == 1 {
		step = 0
	}
	norm := 1 / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	for i := 0; i < points; i++ {
		x := lo + float64(i)*step
		positions[i] = x
		var d float64
		for _, xi := range xs {
			z := (x - xi) / h
			d += math.Exp(-0.5 * z * z)
		}
		densities[i] = d * norm
	}
	return positions, densities
}

// Histogram bins xs into `bins` equal-width buckets over [min, max] and
// returns the bucket left edges and counts.
func Histogram(xs []float64, bins int) (edges []float64, counts []int) {
	if len(xs) == 0 || bins <= 0 {
		return nil, nil
	}
	s := Summarize(xs)
	lo, hi := s.Min, s.Max
	if lo == hi {
		hi = lo + 1
	}
	width := (hi - lo) / float64(bins)
	edges = make([]float64, bins)
	counts = make([]int, bins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}

// LinearFit fits y = a + b·x by least squares and returns the intercept,
// slope and coefficient of determination.
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, 0, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1, nil
	}
	var ssRes float64
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2, nil
}

// LogLinearFit fits log(y) = a + b·x, the exponential-growth model of
// Fig. 1's pre-attack regime. All ys must be positive.
func LogLinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	logs := make([]float64, len(ys))
	for i, y := range ys {
		if y <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: log-linear fit needs positive y, got %v at %d", y, i)
		}
		logs[i] = math.Log(y)
	}
	return LinearFit(xs, logs)
}

// ParetoAlphaMLE estimates the tail index α of a power-law (Pareto)
// distribution from the samples ≥ xmin using the Hill maximum-likelihood
// estimator: α = n / Σ ln(x_i/xmin). Heavy-tailed (power-law-like) data
// has small α (typically 1–3 for degree distributions); light-tailed data
// yields large values. It returns the estimate and the tail sample count.
func ParetoAlphaMLE(xs []float64, xmin float64) (alpha float64, n int, err error) {
	if xmin <= 0 {
		return 0, 0, fmt.Errorf("stats: xmin must be positive, got %v", xmin)
	}
	var sum float64
	for _, x := range xs {
		if x < xmin {
			continue
		}
		sum += math.Log(x / xmin)
		n++
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("stats: no samples >= xmin %v", xmin)
	}
	if sum == 0 {
		return math.Inf(1), n, nil // all mass at xmin: infinitely light tail
	}
	return float64(n) / sum, n, nil
}

func stddev(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
