package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("N = %d", s.N)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v, %v", s.Q1, s.Q3)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %v, want 5", got)
	}
	if got := Quantile(sorted, 0); got != 0 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	pos, den := KDE(xs, 256)
	if len(pos) != 256 || len(den) != 256 {
		t.Fatalf("lengths = %d, %d", len(pos), len(den))
	}
	// Trapezoidal integral over the sampled span should be close to 1
	// (mass outside [min,max] is small for a normal sample).
	var integral float64
	for i := 1; i < len(pos); i++ {
		integral += (den[i] + den[i-1]) / 2 * (pos[i] - pos[i-1])
	}
	if integral < 0.9 || integral > 1.05 {
		t.Errorf("KDE integral = %v, want ≈ 1", integral)
	}
	// Density must peak near 0 for a standard normal.
	peak := 0
	for i := range den {
		if den[i] > den[peak] {
			peak = i
		}
	}
	if math.Abs(pos[peak]) > 0.5 {
		t.Errorf("KDE peak at %v, want ≈ 0", pos[peak])
	}
}

func TestKDEDegenerateSample(t *testing.T) {
	pos, den := KDE([]float64{2, 2, 2}, 16)
	if len(pos) != 16 {
		t.Fatalf("positions = %d", len(pos))
	}
	for _, d := range den {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatal("degenerate KDE produced NaN/Inf")
		}
	}
}

func TestKDEEmpty(t *testing.T) {
	pos, den := KDE(nil, 16)
	if pos != nil || den != nil {
		t.Error("empty KDE must return nil")
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if len(edges) != 2 || len(counts) != 2 {
		t.Fatalf("lengths: %d, %d", len(edges), len(counts))
	}
	if counts[0]+counts[1] != 5 {
		t.Errorf("total count = %d, want 5", counts[0]+counts[1])
	}
	// Half-open bins: [0, 0.5) and [0.5, 1.0]; 0.5 lands right.
	if counts[0] != 2 || counts[1] != 3 {
		t.Errorf("counts = %v", counts)
	}
}

func TestLinearFitRecoversLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*x
	}
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2) > 1e-9 || math.Abs(b-3) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = %v + %v x, r2 = %v", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must error")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x must error")
	}
}

func TestLogLinearFitRecoversExponential(t *testing.T) {
	// y = 10 * e^(0.5 x)
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10 * math.Exp(0.5*x)
	}
	a, b, r2, err := LogLinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-9 || math.Abs(math.Exp(a)-10) > 1e-6 || r2 < 0.999 {
		t.Errorf("log fit a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLogLinearFitRejectsNonPositive(t *testing.T) {
	if _, _, _, err := LogLinearFit([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("zero y must error")
	}
}

func TestPropertySummaryOrdering(t *testing.T) {
	// Property: min ≤ q1 ≤ median ≤ q3 ≤ max and min ≤ mean ≤ max.
	// Inputs are clamped to a sane magnitude: the sum in the mean is
	// allowed to overflow for inputs near ±MaxFloat64.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1Raw, q2Raw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		qa := float64(q1Raw) / 255
		qb := float64(q2Raw) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParetoAlphaMLERecoversTailIndex(t *testing.T) {
	// Sample from a Pareto(α=2, xmin=1) via inverse transform.
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 20000)
	for i := range xs {
		u := rng.Float64()
		xs[i] = math.Pow(1-u, -1.0/2.0)
	}
	alpha, n, err := ParetoAlphaMLE(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(xs) {
		t.Errorf("tail n = %d", n)
	}
	if math.Abs(alpha-2) > 0.1 {
		t.Errorf("alpha = %v, want ≈ 2", alpha)
	}
}

func TestParetoAlphaMLEErrors(t *testing.T) {
	if _, _, err := ParetoAlphaMLE([]float64{1, 2}, 0); err == nil {
		t.Error("xmin=0 must error")
	}
	if _, _, err := ParetoAlphaMLE([]float64{1, 2}, 100); err == nil {
		t.Error("empty tail must error")
	}
	if alpha, _, err := ParetoAlphaMLE([]float64{3, 3, 3}, 3); err != nil || !math.IsInf(alpha, 1) {
		t.Errorf("degenerate tail: alpha=%v err=%v", alpha, err)
	}
}
