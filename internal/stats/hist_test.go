package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLatencyHistSmallValuesExact(t *testing.T) {
	var h LatencyHist
	for v := int64(0); v < 16; v++ {
		h.Record(v)
	}
	for v := int64(0); v < 16; v++ {
		p := (float64(v) + 0.5) / 16
		if got := h.Quantile(p); got != v {
			t.Errorf("quantile %.3f = %d, want %d (unit buckets must be exact)", p, got, v)
		}
	}
	if h.Count() != 16 {
		t.Errorf("count = %d, want 16", h.Count())
	}
}

func TestLatencyHistRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h LatencyHist
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the shape of a latency tail.
		v := int64(math.Exp(rng.Float64() * 14))
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(p * float64(len(samples)))
		if rank < 1 {
			rank = 1
		}
		want := samples[rank-1]
		got := h.Quantile(p)
		// The reported value is the bucket's upper bound: never below the
		// true quantile, and at most one sub-bucket (6.25%) above it.
		if got < want {
			t.Errorf("p%.3f = %d underreports true %d", p, got, want)
		}
		if float64(got) > float64(want)*(1+1.0/16)+1 {
			t.Errorf("p%.3f = %d exceeds true %d by more than 6.25%%", p, got, want)
		}
	}
}

func TestLatencyHistBucketRoundTrip(t *testing.T) {
	// Every bucket's reported upper bound must map back to that bucket,
	// and bucket boundaries must be monotone.
	prev := int64(-1)
	for i := 0; i < latencyBuckets; i++ {
		ub := latencyBucketMax(i)
		if latencyBucket(ub) != i {
			t.Fatalf("bucket %d upper bound %d maps to bucket %d", i, ub, latencyBucket(ub))
		}
		if ub <= prev {
			t.Fatalf("bucket %d upper bound %d not increasing (prev %d)", i, ub, prev)
		}
		prev = ub
	}
	if latencyBucket(math.MaxInt64) >= latencyBuckets {
		t.Fatal("MaxInt64 overflows the bucket table")
	}
	if latencyBucket(-5) != 0 {
		t.Fatal("negative samples must clamp to bucket 0")
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b, whole LatencyHist
	for i := int64(0); i < 1000; i++ {
		v := i * i
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	for _, p := range []float64{0.1, 0.5, 0.99} {
		if a.Quantile(p) != whole.Quantile(p) {
			t.Errorf("merged quantile %.2f = %d, want %d", p, a.Quantile(p), whole.Quantile(p))
		}
	}
}
