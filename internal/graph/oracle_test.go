package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// oracleGraph is the retained map-based reference implementation of the
// graph contract — the storage the dense slice-backed Graph replaced. The
// property tests below drive both implementations with the same randomized
// interaction streams and require them to agree on every observable.
type oracleGraph struct {
	kinds   map[VertexID]Kind
	weights map[VertexID]int64
	out     map[VertexID]map[VertexID]int64
	in      map[VertexID]map[VertexID]int64

	numEdges        int
	totalEdgeWeight int64
	totalVertWeight int64
}

func newOracle() *oracleGraph {
	return &oracleGraph{
		kinds:   make(map[VertexID]Kind),
		weights: make(map[VertexID]int64),
		out:     make(map[VertexID]map[VertexID]int64),
		in:      make(map[VertexID]map[VertexID]int64),
	}
}

func (o *oracleGraph) addInteraction(from, to VertexID, fromKind, toKind Kind, w int64) {
	if _, ok := o.kinds[from]; !ok {
		o.kinds[from] = fromKind
	}
	if _, ok := o.kinds[to]; !ok {
		o.kinds[to] = toKind
	}
	o.weights[from] += w
	o.totalVertWeight += w
	if from == to {
		return
	}
	o.weights[to] += w
	o.totalVertWeight += w
	m := o.out[from]
	if m == nil {
		m = make(map[VertexID]int64)
		o.out[from] = m
	}
	if _, existed := m[to]; !existed {
		o.numEdges++
	}
	m[to] += w
	r := o.in[to]
	if r == nil {
		r = make(map[VertexID]int64)
		o.in[to] = r
	}
	r[from] += w
	o.totalEdgeWeight += w
}

// neighbors returns the merged undirected adjacency of u with combined
// weights, the contract of Graph.Neighbors.
func (o *oracleGraph) neighbors(u VertexID) map[VertexID]int64 {
	merged := make(map[VertexID]int64)
	for v, w := range o.out[u] {
		merged[v] += w
	}
	for v, w := range o.in[u] {
		merged[v] += w
	}
	return merged
}

// interactionStream is a reproducible random stream of interactions. A
// slice of the ID pool is remapped to huge IDs so the stream also exercises
// the graph's spill path for callers that mint VertexIDs from address bits.
func interactionStream(seed int64, n, m int) []struct {
	from, to VertexID
	fk, tk   Kind
	w        int64
} {
	rng := rand.New(rand.NewSource(seed))
	pick := func() (VertexID, Kind) {
		raw := rng.Intn(n)
		id := VertexID(raw)
		if raw%7 == 0 {
			id = VertexID(1)<<40 + VertexID(raw) // spilled region
		}
		kind := KindAccount
		if raw%3 == 0 {
			kind = KindContract
		}
		return id, kind
	}
	stream := make([]struct {
		from, to VertexID
		fk, tk   Kind
		w        int64
	}, m)
	for i := range stream {
		stream[i].from, stream[i].fk = pick()
		stream[i].to, stream[i].tk = pick()
		stream[i].w = int64(1 + rng.Intn(5))
	}
	return stream
}

// TestPropertyDenseMatchesOracle replays random interaction streams into
// the dense graph and the map-based oracle and compares every observable:
// vertex kinds and weights, directed edge weights, merged neighbours,
// degrees, totals, and a clean, consistent CSR.
func TestPropertyDenseMatchesOracle(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%60) + 2
		m := int(mRaw%150) + 1
		g := New()
		o := newOracle()
		for _, it := range interactionStream(seed, n, m) {
			if err := g.AddInteraction(it.from, it.to, it.fk, it.tk, it.w); err != nil {
				t.Fatalf("AddInteraction: %v", err)
			}
			o.addInteraction(it.from, it.to, it.fk, it.tk, it.w)
		}

		if g.VertexCount() != len(o.kinds) {
			t.Errorf("VertexCount = %d, oracle %d", g.VertexCount(), len(o.kinds))
			return false
		}
		if g.EdgeCount() != o.numEdges {
			t.Errorf("EdgeCount = %d, oracle %d", g.EdgeCount(), o.numEdges)
			return false
		}
		if g.TotalEdgeWeight() != o.totalEdgeWeight || g.TotalVertexWeight() != o.totalVertWeight {
			t.Errorf("totals (%d,%d), oracle (%d,%d)", g.TotalEdgeWeight(),
				g.TotalVertexWeight(), o.totalEdgeWeight, o.totalVertWeight)
			return false
		}

		for id, kind := range o.kinds {
			if g.VertexKind(id) != kind {
				t.Errorf("VertexKind(%d) = %v, oracle %v", id, g.VertexKind(id), kind)
				return false
			}
			if g.VertexWeight(id) != o.weights[id] {
				t.Errorf("VertexWeight(%d) = %d, oracle %d", id, g.VertexWeight(id), o.weights[id])
				return false
			}
			// Directed edge weights.
			for v, w := range o.out[id] {
				if g.EdgeWeight(id, v) != w {
					t.Errorf("EdgeWeight(%d,%d) = %d, oracle %d", id, v, g.EdgeWeight(id, v), w)
					return false
				}
			}
			// Merged neighbours and degree.
			want := o.neighbors(id)
			got := make(map[VertexID]int64)
			g.Neighbors(id, func(v VertexID, w int64) bool {
				got[v] = w
				return true
			})
			if len(got) != len(want) || g.Degree(id) != len(want) {
				t.Errorf("Neighbors(%d): %d entries (Degree %d), oracle %d",
					id, len(got), g.Degree(id), len(want))
				return false
			}
			for v, w := range want {
				if got[v] != w {
					t.Errorf("Neighbors(%d)[%d] = %d, oracle %d", id, v, got[v], w)
					return false
				}
			}
		}

		// The CSR view must be structurally clean and agree with the oracle
		// on vertex count and total undirected weight.
		csr := NewCSR(g)
		if err := csr.Validate(); err != nil {
			t.Errorf("CSR validate: %v", err)
			return false
		}
		if csr.N() != len(o.kinds) {
			t.Errorf("CSR.N = %d, oracle %d", csr.N(), len(o.kinds))
			return false
		}
		if csr.TotalEW != o.totalEdgeWeight {
			t.Errorf("CSR.TotalEW = %d, oracle %d", csr.TotalEW, o.totalEdgeWeight)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCloneMatchesOracle checks that clones stay deeply equal to
// the oracle after the original keeps mutating.
func TestPropertyCloneMatchesOracle(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw%100) + 2
		stream := interactionStream(seed, n, m)
		half := len(stream) / 2

		g := New()
		o := newOracle()
		for _, it := range stream[:half] {
			if err := g.AddInteraction(it.from, it.to, it.fk, it.tk, it.w); err != nil {
				t.Fatalf("AddInteraction: %v", err)
			}
			o.addInteraction(it.from, it.to, it.fk, it.tk, it.w)
		}
		c := g.Clone()
		for _, it := range stream[half:] {
			if err := g.AddInteraction(it.from, it.to, it.fk, it.tk, it.w); err != nil {
				t.Fatalf("AddInteraction: %v", err)
			}
		}
		// The clone must still match the half-stream oracle.
		if c.VertexCount() != len(o.kinds) || c.TotalEdgeWeight() != o.totalEdgeWeight {
			t.Errorf("clone diverged: %d vertices / %d weight, oracle %d / %d",
				c.VertexCount(), c.TotalEdgeWeight(), len(o.kinds), o.totalEdgeWeight)
			return false
		}
		for id := range o.kinds {
			if c.VertexWeight(id) != o.weights[id] || c.Degree(id) != len(o.neighbors(id)) {
				t.Errorf("clone vertex %d diverged", id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
