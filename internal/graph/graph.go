// Package graph implements the weighted directed multigraph used to model a
// blockchain: vertices are accounts and smart contracts, edges are
// interactions between them (currency transfers and contract activations),
// and weights count how often a vertex or an edge appears in the workload.
//
// The package supports incremental construction (one interaction at a time,
// as transactions execute), snapshots, windowed sub-graphs, a compact CSR
// form consumed by the partitioners, and DOT export for visualisation.
package graph

import (
	"fmt"
	"sort"
)

// VertexID uniquely identifies an account or contract in the graph.
//
// IDs are assigned by the caller (typically the address registry in the
// chain package) and are stable across snapshots: the same account keeps the
// same ID for the life of the blockchain.
type VertexID uint64

// Kind distinguishes externally-owned accounts from smart contracts.
type Kind uint8

// Vertex kinds. The zero value is invalid so that an unset Kind is caught
// early.
const (
	// KindAccount is an externally-owned account controlled by a user key.
	KindAccount Kind = iota + 1
	// KindContract is a smart contract whose code lives in the blockchain.
	KindContract
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAccount:
		return "account"
	case KindContract:
		return "contract"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the declared kinds.
func (k Kind) Valid() bool { return k == KindAccount || k == KindContract }

// vertexData is the per-vertex record held by a Graph.
type vertexData struct {
	kind   Kind
	weight int64 // dynamic weight: number of interactions the vertex took part in
}

// Graph is a directed multigraph with weighted vertices and edges.
//
// A Graph is not safe for concurrent mutation; wrap it in a lock if multiple
// goroutines build it. Read-only access after construction is safe.
//
// The zero value is not usable; call New.
type Graph struct {
	vertices map[VertexID]*vertexData
	out      map[VertexID]map[VertexID]int64 // out[u][v] = weight of edge u->v
	in       map[VertexID]map[VertexID]int64 // in[v][u]  = weight of edge u->v

	numEdges        int   // number of distinct directed (u,v) pairs
	totalEdgeWeight int64 // sum of all directed edge weights
	totalVertWeight int64 // sum of all vertex weights
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[VertexID]*vertexData),
		out:      make(map[VertexID]map[VertexID]int64),
		in:       make(map[VertexID]map[VertexID]int64),
	}
}

// EnsureVertex adds a vertex with the given kind if it does not exist yet and
// returns true if the vertex was created. The kind of an existing vertex is
// never changed: accounts that later deploy code are modelled as separate
// contract vertices by the caller.
func (g *Graph) EnsureVertex(id VertexID, kind Kind) bool {
	if _, ok := g.vertices[id]; ok {
		return false
	}
	g.vertices[id] = &vertexData{kind: kind}
	return true
}

// HasVertex reports whether id is in the graph.
func (g *Graph) HasVertex(id VertexID) bool {
	_, ok := g.vertices[id]
	return ok
}

// VertexKind returns the kind of vertex id, or zero if the vertex is absent.
func (g *Graph) VertexKind(id VertexID) Kind {
	if v, ok := g.vertices[id]; ok {
		return v.kind
	}
	return 0
}

// VertexWeight returns the dynamic weight (interaction count) of id, or zero
// if the vertex is absent.
func (g *Graph) VertexWeight(id VertexID) int64 {
	if v, ok := g.vertices[id]; ok {
		return v.weight
	}
	return 0
}

// AddInteraction records w occurrences of an interaction from vertex `from`
// of kind fromKind to vertex `to` of kind toKind. Missing vertices are
// created. Both endpoint weights and the directed edge weight increase by w.
//
// Self-interactions (from == to) are legal — a contract may call itself —
// and contribute vertex weight but no edge, mirroring how the paper's
// edge-cut metric treats them (a self-loop can never be cut).
func (g *Graph) AddInteraction(from, to VertexID, fromKind, toKind Kind, w int64) error {
	if w <= 0 {
		return fmt.Errorf("graph: interaction weight must be positive, got %d", w)
	}
	if !fromKind.Valid() || !toKind.Valid() {
		return fmt.Errorf("graph: invalid vertex kind (from %v, to %v)", fromKind, toKind)
	}
	g.EnsureVertex(from, fromKind)
	g.EnsureVertex(to, toKind)

	g.vertices[from].weight += w
	g.totalVertWeight += w
	if from == to {
		return nil
	}
	g.vertices[to].weight += w
	g.totalVertWeight += w

	m := g.out[from]
	if m == nil {
		m = make(map[VertexID]int64)
		g.out[from] = m
	}
	if _, existed := m[to]; !existed {
		g.numEdges++
	}
	m[to] += w

	r := g.in[to]
	if r == nil {
		r = make(map[VertexID]int64)
		g.in[to] = r
	}
	r[from] += w

	g.totalEdgeWeight += w
	return nil
}

// VertexCount returns the number of vertices.
func (g *Graph) VertexCount() int { return len(g.vertices) }

// EdgeCount returns the number of distinct directed edges.
func (g *Graph) EdgeCount() int { return g.numEdges }

// TotalEdgeWeight returns the sum of all directed edge weights.
func (g *Graph) TotalEdgeWeight() int64 { return g.totalEdgeWeight }

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 { return g.totalVertWeight }

// Vertices calls fn for every vertex until fn returns false. Iteration order
// is unspecified.
func (g *Graph) Vertices(fn func(id VertexID, kind Kind, weight int64) bool) {
	for id, v := range g.vertices {
		if !fn(id, v.kind, v.weight) {
			return
		}
	}
}

// VertexIDs returns all vertex IDs in ascending order. The slice is freshly
// allocated on every call.
func (g *Graph) VertexIDs() []VertexID {
	ids := make([]VertexID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OutNeighbors calls fn for every directed edge leaving u until fn returns
// false.
func (g *Graph) OutNeighbors(u VertexID, fn func(v VertexID, w int64) bool) {
	for v, w := range g.out[u] {
		if !fn(v, w) {
			return
		}
	}
}

// InNeighbors calls fn for every directed edge entering v until fn returns
// false.
func (g *Graph) InNeighbors(v VertexID, fn func(u VertexID, w int64) bool) {
	for u, w := range g.in[v] {
		if !fn(u, w) {
			return
		}
	}
}

// Neighbors calls fn once per undirected neighbour of u with the combined
// weight w(u->v)+w(v->u), until fn returns false. This is the adjacency the
// partitioners and the incremental placement rule consume.
func (g *Graph) Neighbors(u VertexID, fn func(v VertexID, w int64) bool) {
	seen := g.out[u]
	for v, w := range seen {
		if back, ok := g.in[u]; ok {
			if bw, ok := back[v]; ok {
				w += bw
			}
		}
		if !fn(v, w) {
			return
		}
	}
	for v, w := range g.in[u] {
		if _, dup := seen[v]; dup {
			continue
		}
		if !fn(v, w) {
			return
		}
	}
}

// Degree returns the number of distinct undirected neighbours of u.
func (g *Graph) Degree(u VertexID) int {
	n := len(g.out[u])
	for v := range g.in[u] {
		if _, dup := g.out[u][v]; !dup {
			n++
		}
	}
	return n
}

// EdgeWeight returns the weight of the directed edge u->v, or zero when the
// edge is absent.
func (g *Graph) EdgeWeight(u, v VertexID) int64 {
	if m, ok := g.out[u]; ok {
		return m[v]
	}
	return 0
}

// Edges calls fn for every distinct directed edge until fn returns false.
// Iteration order is unspecified.
func (g *Graph) Edges(fn func(u, v VertexID, w int64) bool) {
	for u, m := range g.out {
		for v, w := range m {
			if !fn(u, v, w) {
				return
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		vertices:        make(map[VertexID]*vertexData, len(g.vertices)),
		out:             make(map[VertexID]map[VertexID]int64, len(g.out)),
		in:              make(map[VertexID]map[VertexID]int64, len(g.in)),
		numEdges:        g.numEdges,
		totalEdgeWeight: g.totalEdgeWeight,
		totalVertWeight: g.totalVertWeight,
	}
	for id, v := range g.vertices {
		vc := *v
		c.vertices[id] = &vc
	}
	for u, m := range g.out {
		mc := make(map[VertexID]int64, len(m))
		for v, w := range m {
			mc[v] = w
		}
		c.out[u] = mc
	}
	for v, m := range g.in {
		mc := make(map[VertexID]int64, len(m))
		for u, w := range m {
			mc[u] = w
		}
		c.in[v] = mc
	}
	return c
}
