// Package graph implements the weighted directed multigraph used to model a
// blockchain: vertices are accounts and smart contracts, edges are
// interactions between them (currency transfers and contract activations),
// and weights count how often a vertex or an edge appears in the workload.
//
// The package supports incremental construction (one interaction at a time,
// as transactions execute), snapshots, windowed sub-graphs, a compact CSR
// form consumed by the partitioners, DOT export for visualisation, and
// windowed exponential decay with retirement (DecayWeights) so long-running
// callers can keep the live graph bounded by the active set instead of the
// full history.
//
// Storage is dense: the trace registry assigns vertex IDs from zero, so the
// graph keeps per-vertex records in slices indexed through a VertexID->slot
// table instead of hash maps. Adjacency rows are append-only slices of
// half edges carved from a shared arena; rows that grow past a threshold
// (hub contracts) gain a lazily built position index so edge lookups stay
// O(1) without paying a map per vertex.
package graph

import (
	"fmt"
	"slices"
)

// VertexID uniquely identifies an account or contract in the graph.
//
// IDs are assigned by the caller (typically the address registry in the
// chain package) and are stable across snapshots: the same account keeps the
// same ID for the life of the blockchain. IDs are expected to be dense
// (assigned from zero upward); the graph's ID table grows to the largest ID
// seen.
type VertexID uint64

// Kind distinguishes externally-owned accounts from smart contracts.
type Kind uint8

// Vertex kinds. The zero value is invalid so that an unset Kind is caught
// early.
const (
	// KindAccount is an externally-owned account controlled by a user key.
	KindAccount Kind = iota + 1
	// KindContract is a smart contract whose code lives in the blockchain.
	KindContract
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAccount:
		return "account"
	case KindContract:
		return "contract"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the declared kinds.
func (k Kind) Valid() bool { return k == KindAccount || k == KindContract }

// rowIndexThreshold is the row length beyond which a row builds its
// neighbour-position index. Small rows (the vast majority) use a linear
// scan over a contiguous slice, which beats a map well past a dozen
// entries; hub rows amortise the map across thousands of lookups.
const rowIndexThreshold = 32

// halfEdge is one directed adjacency entry: the far endpoint, the
// accumulated edge weight and the epoch the edge was last touched in.
// Neighbour, weight and touch share a struct so a row is one contiguous
// allocation instead of three parallel ones. Both copies of an edge (the
// out row of u and the in row of v) always carry identical weight and
// touch, so a decay sweep drops or keeps them consistently without any
// cross-row surgery.
//
// dec tags the epoch the scheduled decay path last rescaled this entry
// (meaningful on the out copy only, which is the canonical one): the
// heavy list may carry duplicate references to one edge, and the tag
// makes the second visit within a sweep a no-op instead of a double
// decay. It occupies what used to be struct padding, so the entry stays
// 24 bytes.
type halfEdge struct {
	to    VertexID
	w     int64
	touch uint32 // epoch of the last AddInteraction on this edge
	dec   uint32 // epoch of the last scheduled rescale (out copy only)
}

// row is one adjacency direction of a vertex: half edges in insertion
// order, with a lazily built position index once the row grows past
// rowIndexThreshold.
type row struct {
	e   []halfEdge
	idx map[VertexID]int32 // nil while len(e) <= rowIndexThreshold
}

// find returns the position of v in the row, or -1.
func (r *row) find(v VertexID) int32 {
	if r.idx != nil {
		if p, ok := r.idx[v]; ok {
			return p
		}
		return -1
	}
	for i := range r.e {
		if r.e[i].to == v {
			return int32(i)
		}
	}
	return -1
}

// add accumulates weight w onto the edge to v, creating the entry if it is
// new. It reports whether the entry was created and, for existing entries,
// the weight and touch epoch it had before this call (zero for created
// ones) — the scheduled decay path uses them to decide whether the edge
// needs a new horizon bucket or a heavy-list entry. New rows draw their
// first block from g's edge arena.
func (r *row) add(g *Graph, v VertexID, w int64) (created bool, oldW int64, oldTouch uint32) {
	if p := r.find(v); p >= 0 {
		oldW, oldTouch = r.e[p].w, r.e[p].touch
		r.e[p].w += w
		r.e[p].touch = g.epoch
		return false, oldW, oldTouch
	}
	if r.e == nil {
		r.e = g.newRowBlock()
	}
	r.e = append(r.e, halfEdge{to: v, w: w, touch: g.epoch})
	if r.idx != nil {
		r.idx[v] = int32(len(r.e) - 1)
	} else if len(r.e) > rowIndexThreshold {
		r.idx = make(map[VertexID]int32, 2*len(r.e))
		for i := range r.e {
			r.idx[r.e[i].to] = int32(i)
		}
	}
	return true, 0, 0
}

// removeAt deletes the entry at position p, preserving entry order
// (iteration order is observable through Neighbors and Edges) and keeping
// the position index consistent with the shifted tail.
func (r *row) removeAt(p int32) {
	victim := r.e[p].to
	copy(r.e[p:], r.e[p+1:])
	r.e = r.e[:len(r.e)-1]
	if r.idx == nil {
		return
	}
	delete(r.idx, victim)
	if len(r.e) <= rowIndexThreshold {
		r.idx = nil
		return
	}
	for i := int(p); i < len(r.e); i++ {
		r.idx[r.e[i].to] = int32(i)
	}
}

// clone returns a deep copy of the row.
func (r *row) clone() row {
	c := row{e: append([]halfEdge(nil), r.e...)}
	if r.idx != nil {
		c.idx = make(map[VertexID]int32, len(r.idx))
		for k, v := range r.idx {
			c.idx[k] = v
		}
	}
	return c
}

// Graph is a directed multigraph with weighted vertices and edges.
//
// A Graph is not safe for concurrent mutation; wrap it in a lock if multiple
// goroutines build it. Read-only access after construction is safe.
//
// The zero value is not usable; call New.
type Graph struct {
	// slot maps VertexID -> dense slot, -1 for absent vertices. Its length
	// tracks the largest dense-region ID seen plus one, so sparse windowed
	// sub-graphs pay four bytes per ID of address space, not a full vertex
	// record. IDs at or above denseIDLimit — callers hashing addresses
	// straight into VertexIDs — live in the spill map instead, trading the
	// O(1) array probe for a map probe rather than an absurd table.
	slot  []int32
	spill map[VertexID]int32
	// Per-slot vertex records, in insertion order. A slot whose kind is the
	// zero value is free (its vertex was retired by DecayWeights); free
	// slots are reused by EnsureVertex through the free list, so a graph
	// with windowed decay keeps its record storage O(live vertices) however
	// long it runs.
	ids     []VertexID
	kinds   []Kind
	weights []int64  // dynamic weight: interactions the vertex took part in
	touch   []uint32 // epoch of the last interaction involving the vertex
	out     []row    // out[s] lists v with edge ids[s]->v
	in      []row    // in[s] lists u with edge u->ids[s]
	// free lists retired slots available for reuse.
	free []int32
	// epoch counts DecayWeights sweeps; touch stamps compare against it.
	epoch uint32
	// sched, when non-nil, holds the scheduled (lazy) decay state: horizon
	// buckets and heavy lists that make a sweep O(touched traffic) instead
	// of O(live graph). Enabled by EnableScheduledDecay on an empty graph;
	// dropped permanently if a sweep is ever requested at a different
	// horizon (the eager full scan takes over).
	sched *decaySchedule

	// arena hands out the initial fixed-size block of every adjacency row.
	// Most vertices stay within one block for their whole life, so row
	// storage costs one allocation per few hundred rows instead of one
	// each; rows that outgrow their block migrate to their own slice via
	// ordinary append growth.
	arena []halfEdge

	numEdges        int   // number of distinct directed (u,v) pairs
	totalEdgeWeight int64 // sum of all directed edge weights
	totalVertWeight int64 // sum of all vertex weights
}

// rowBlockCap is the capacity of a row's initial arena block.
const rowBlockCap = 4

// newRowBlock carves a zero-length, rowBlockCap-capacity block off the
// arena. The full slice expression caps the block so a row growing past it
// reallocates privately instead of clobbering its arena neighbour.
func (g *Graph) newRowBlock() []halfEdge {
	if cap(g.arena)-len(g.arena) < rowBlockCap {
		g.arena = make([]halfEdge, 0, 1024*rowBlockCap)
	}
	lo := len(g.arena)
	g.arena = g.arena[:lo+rowBlockCap]
	return g.arena[lo : lo : lo+rowBlockCap]
}

// denseIDLimit bounds the dense VertexID->slot table: 2^22 IDs cost at most
// 16 MiB, far above any registry-assigned ID space while keeping a graph
// safe against callers that mint VertexIDs from address bits.
const denseIDLimit = VertexID(1) << 22

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// slotOf returns the dense slot of id, or -1.
func (g *Graph) slotOf(id VertexID) int32 {
	if id < VertexID(len(g.slot)) {
		return g.slot[id]
	}
	if g.spill != nil {
		if s, ok := g.spill[id]; ok {
			return s
		}
	}
	return -1
}

// EnsureVertex adds a vertex with the given kind if it does not exist yet and
// returns true if the vertex was created. The kind of an existing vertex is
// never changed: accounts that later deploy code are modelled as separate
// contract vertices by the caller. An invalid kind is refused (returns
// false without creating anything): the zero Kind marks free slots
// internally, so admitting it would plant a ghost slot that iteration and
// retirement skip forever.
func (g *Graph) EnsureVertex(id VertexID, kind Kind) bool {
	if !kind.Valid() || g.slotOf(id) >= 0 {
		return false
	}
	var s int32
	if n := len(g.free); n > 0 {
		// Reuse a retired slot: its rows were already reset at retirement.
		s = g.free[n-1]
		g.free = g.free[:n-1]
		g.ids[s] = id
		g.kinds[s] = kind
		g.weights[s] = 0
		g.touch[s] = g.epoch
		g.indexSlot(id, s)
		if g.sched != nil {
			g.sched.vdec[s] = 0
			g.scheduleVertex(id, s)
		}
		return true
	}
	s = int32(len(g.ids))
	g.ids = append(g.ids, id)
	g.kinds = append(g.kinds, kind)
	g.weights = append(g.weights, 0)
	g.touch = append(g.touch, g.epoch)
	g.out = append(g.out, row{})
	g.in = append(g.in, row{})
	g.indexSlot(id, s)
	if g.sched != nil {
		g.sched.vdec = append(g.sched.vdec, 0)
		g.scheduleVertex(id, s)
	}
	return true
}

// indexSlot records the VertexID -> slot mapping in the dense table or the
// spill map.
func (g *Graph) indexSlot(id VertexID, s int32) {
	if id < denseIDLimit {
		if VertexID(len(g.slot)) <= id {
			grown := append(g.slot, make([]int32, int(id)+1-len(g.slot))...)
			for i := len(g.slot); i < len(grown); i++ {
				grown[i] = -1
			}
			g.slot = grown
		}
		g.slot[id] = s
	} else {
		if g.spill == nil {
			g.spill = make(map[VertexID]int32)
		}
		g.spill[id] = s
	}
}

// HasVertex reports whether id is in the graph.
func (g *Graph) HasVertex(id VertexID) bool { return g.slotOf(id) >= 0 }

// VertexKind returns the kind of vertex id, or zero if the vertex is absent.
func (g *Graph) VertexKind(id VertexID) Kind {
	if s := g.slotOf(id); s >= 0 {
		return g.kinds[s]
	}
	return 0
}

// VertexWeight returns the dynamic weight (interaction count) of id, or zero
// if the vertex is absent.
func (g *Graph) VertexWeight(id VertexID) int64 {
	if s := g.slotOf(id); s >= 0 {
		return g.weights[s]
	}
	return 0
}

// AddInteraction records w occurrences of an interaction from vertex `from`
// of kind fromKind to vertex `to` of kind toKind. Missing vertices are
// created. Both endpoint weights and the directed edge weight increase by w.
//
// Self-interactions (from == to) are legal — a contract may call itself —
// and contribute vertex weight but no edge, mirroring how the paper's
// edge-cut metric treats them (a self-loop can never be cut).
func (g *Graph) AddInteraction(from, to VertexID, fromKind, toKind Kind, w int64) error {
	if w <= 0 {
		return fmt.Errorf("graph: interaction weight must be positive, got %d", w)
	}
	if !fromKind.Valid() || !toKind.Valid() {
		return fmt.Errorf("graph: invalid vertex kind (from %v, to %v)", fromKind, toKind)
	}
	g.EnsureVertex(from, fromKind)
	g.EnsureVertex(to, toKind)
	sf := g.slotOf(from)

	g.touchVertex(from, sf, w)
	if from == to {
		return nil
	}
	st := g.slotOf(to)
	g.touchVertex(to, st, w)

	created, oldW, oldTouch := g.out[sf].add(g, to, w)
	if created {
		g.numEdges++
	}
	if g.sched != nil {
		// The canonical (out) copy drives the scheduled decay state: a
		// fresh touch epoch files a new horizon bucket, and a weight
		// crossing the decay floor joins the heavy list. A created edge was
		// pushed with w directly; an existing one at the floor (weight one,
		// by the heavy invariant the only weight not already listed) grows
		// past it with any positive increment.
		if created || oldTouch != g.epoch {
			g.scheduleEdgeExpiry(from, to)
		}
		if (created && w >= 2) || (!created && oldW == 1) {
			g.sched.heavyE = append(g.sched.heavyE, edgeRef{u: from, v: to})
		}
	}
	g.in[st].add(g, from, w)
	g.totalEdgeWeight += w
	return nil
}

// touchVertex applies one interaction's weight to the vertex in slot s and
// stamps its touch epoch, maintaining the scheduled decay state: the first
// touch of an epoch re-files the horizon bucket, and a weight leaving the
// decay floor (one) joins the heavy list so the next sweep rescales it.
func (g *Graph) touchVertex(id VertexID, s int32, w int64) {
	oldW := g.weights[s]
	g.weights[s] += w
	g.totalVertWeight += w
	if g.sched != nil {
		if g.touch[s] != g.epoch {
			g.scheduleExpiry(id)
		}
		if oldW == 1 {
			g.sched.heavyV = append(g.sched.heavyV, heavyVertex{s: s, id: id})
		}
	}
	g.touch[s] = g.epoch
}

// VertexCount returns the number of live vertices.
func (g *Graph) VertexCount() int { return len(g.ids) - len(g.free) }

// EdgeCount returns the number of distinct directed edges.
func (g *Graph) EdgeCount() int { return g.numEdges }

// TotalEdgeWeight returns the sum of all directed edge weights.
func (g *Graph) TotalEdgeWeight() int64 { return g.totalEdgeWeight }

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int64 { return g.totalVertWeight }

// MaxID returns the exclusive upper bound of the graph's dense ID region:
// every vertex ID below MaxID resolves through the dense slot table. The
// CSR builder sizes its dense ID->local table with it; vertices with
// spilled IDs (>= denseIDLimit) are resolved by search instead.
func (g *Graph) MaxID() VertexID { return VertexID(len(g.slot)) }

// Vertices calls fn for every live vertex until fn returns false. Iteration
// follows slot order (insertion order, with retired slots reused in place).
func (g *Graph) Vertices(fn func(id VertexID, kind Kind, weight int64) bool) {
	for s, id := range g.ids {
		if g.kinds[s] == 0 {
			continue // free slot
		}
		if !fn(id, g.kinds[s], g.weights[s]) {
			return
		}
	}
}

// VertexIDs returns all vertex IDs in ascending order. The slice is freshly
// allocated on every call, sized by the live vertex count — collecting from
// the slot records and sorting keeps the call O(peak slots + n log n)
// regardless of how large the historical ID space (MaxID) has grown, where
// a scan of the dense slot table would pay O(IDs ever) after mass
// retirement shrinks the live graph.
func (g *Graph) VertexIDs() []VertexID {
	ids := make([]VertexID, 0, g.VertexCount())
	for s, id := range g.ids {
		if g.kinds[s] == 0 {
			continue // free slot
		}
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// OutNeighbors calls fn for every directed edge leaving u until fn returns
// false.
func (g *Graph) OutNeighbors(u VertexID, fn func(v VertexID, w int64) bool) {
	s := g.slotOf(u)
	if s < 0 {
		return
	}
	r := &g.out[s]
	for i := range r.e {
		if !fn(r.e[i].to, r.e[i].w) {
			return
		}
	}
}

// InNeighbors calls fn for every directed edge entering v until fn returns
// false.
func (g *Graph) InNeighbors(v VertexID, fn func(u VertexID, w int64) bool) {
	s := g.slotOf(v)
	if s < 0 {
		return
	}
	r := &g.in[s]
	for i := range r.e {
		if !fn(r.e[i].to, r.e[i].w) {
			return
		}
	}
}

// Neighbors calls fn once per undirected neighbour of u with the combined
// weight w(u->v)+w(v->u), until fn returns false. This is the adjacency the
// partitioners and the incremental placement rule consume.
func (g *Graph) Neighbors(u VertexID, fn func(v VertexID, w int64) bool) {
	s := g.slotOf(u)
	if s < 0 {
		return
	}
	ro, ri := &g.out[s], &g.in[s]
	for i := range ro.e {
		v, w := ro.e[i].to, ro.e[i].w
		if p := ri.find(v); p >= 0 {
			w += ri.e[p].w
		}
		if !fn(v, w) {
			return
		}
	}
	for i := range ri.e {
		v := ri.e[i].to
		if ro.find(v) >= 0 {
			continue
		}
		if !fn(v, ri.e[i].w) {
			return
		}
	}
}

// Degree returns the number of distinct undirected neighbours of u.
func (g *Graph) Degree(u VertexID) int {
	s := g.slotOf(u)
	if s < 0 {
		return 0
	}
	ro, ri := &g.out[s], &g.in[s]
	n := len(ro.e)
	for i := range ri.e {
		if ro.find(ri.e[i].to) < 0 {
			n++
		}
	}
	return n
}

// EdgeWeight returns the weight of the directed edge u->v, or zero when the
// edge is absent.
func (g *Graph) EdgeWeight(u, v VertexID) int64 {
	s := g.slotOf(u)
	if s < 0 {
		return 0
	}
	r := &g.out[s]
	if p := r.find(v); p >= 0 {
		return r.e[p].w
	}
	return 0
}

// Edges calls fn for every distinct directed edge until fn returns false.
// Iteration follows vertex slot order, then row insertion order.
func (g *Graph) Edges(fn func(u, v VertexID, w int64) bool) {
	for s, u := range g.ids {
		if g.kinds[s] == 0 {
			continue // free slot
		}
		r := &g.out[s]
		for i := range r.e {
			if !fn(u, r.e[i].to, r.e[i].w) {
				return
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		slot:            append([]int32(nil), g.slot...),
		spill:           nil,
		ids:             append([]VertexID(nil), g.ids...),
		kinds:           append([]Kind(nil), g.kinds...),
		weights:         append([]int64(nil), g.weights...),
		touch:           append([]uint32(nil), g.touch...),
		out:             make([]row, len(g.out)),
		in:              make([]row, len(g.in)),
		free:            append([]int32(nil), g.free...),
		epoch:           g.epoch,
		numEdges:        g.numEdges,
		totalEdgeWeight: g.totalEdgeWeight,
		totalVertWeight: g.totalVertWeight,
	}
	if g.spill != nil {
		c.spill = make(map[VertexID]int32, len(g.spill))
		for id, s := range g.spill {
			c.spill[id] = s
		}
	}
	for i := range g.out {
		c.out[i] = g.out[i].clone()
		c.in[i] = g.in[i].clone()
	}
	if g.sched != nil {
		c.sched = g.sched.clone()
	}
	return c
}
