package graph

import (
	"fmt"
	"runtime"
	"testing"
)

// buildRetiredEraGraph grows a graph through a sequence of historical eras
// of distinct vertices — inflating MaxID, the dense ID space high-water
// mark — each era retired past the horizon before the next begins, so
// retired slots are reused and peak slot storage stays O(era), decoupled
// from MaxID. It then establishes a small live set of `live` vertices on
// IDs spread across the whole historical space. The result is the regime
// the O(live) hot-path contract is about: a tiny live graph inside a huge
// historical ID space.
func buildRetiredEraGraph(tb testing.TB, historical, live int, maxAge uint32, scheduled bool) *Graph {
	tb.Helper()
	g := New()
	if scheduled {
		if err := g.EnableScheduledDecay(maxAge); err != nil {
			tb.Fatal(err)
		}
	}
	const eraSize = 512
	for lo := 0; lo < historical; lo += eraSize {
		hi := lo + eraSize
		if hi > historical {
			hi = historical
		}
		for i := lo; i < hi; i++ {
			next := i + 1
			if next == hi {
				next = lo
			}
			if err := g.AddInteraction(VertexID(i), VertexID(next),
				KindAccount, KindAccount, 1); err != nil {
				tb.Fatal(err)
			}
		}
		for i := uint32(0); i <= maxAge; i++ {
			g.DecayWeights(0.5, maxAge)
		}
	}
	if g.VertexCount() != 0 {
		tb.Fatalf("historical eras not fully retired: %d live", g.VertexCount())
	}
	stride := (historical - 1) / live
	for i := 0; i < live; i++ {
		from := VertexID(i * stride)
		to := VertexID(((i + 1) % live) * stride)
		if err := g.AddInteraction(from, to, KindAccount, KindAccount, 1); err != nil {
			tb.Fatal(err)
		}
	}
	// One sweep settles the fresh weights; the live set is inside the
	// horizon and survives.
	g.DecayWeights(0.5, maxAge)
	if g.VertexCount() != live {
		tb.Fatalf("live set = %d vertices, want %d", g.VertexCount(), live)
	}
	return g
}

// TestHotPathBoundedByLiveGraph is the tentpole's regression guard: after
// mass retirement shrinks the live graph to N vertices inside a historical
// ID space of tens of thousands, a CSR rebuild must allocate O(N) — not
// the O(MaxID) index table the old per-build memset paid — its counted
// index-clear loop must touch at most N entries per build, and a quiet
// decay sweep must visit nothing at all. Against the pre-refactor code the
// allocation bound fails by more than an order of magnitude (an 80 KB
// dense Index per build at MaxID 20000).
func TestHotPathBoundedByLiveGraph(t *testing.T) {
	const (
		historical = 20000
		live       = 64
		maxAge     = uint32(4)
		builds     = 50
	)
	g := buildRetiredEraGraph(t, historical, live, maxAge, true)
	if int(g.MaxID()) != historical {
		t.Fatalf("MaxID = %d, want the full historical ID space %d", g.MaxID(), historical)
	}

	var b CSRBuilder
	// Warm-up build: pays the one-time scratch growth to MaxID and sizes
	// the merge buffers, like the simulator's long-lived builder has by
	// steady state.
	if err := b.Build(g).Validate(); err != nil {
		t.Fatal(err)
	}
	clears0 := b.IndexClears()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var c *CSR
	for i := 0; i < builds; i++ {
		c = b.Build(g)
	}
	runtime.ReadMemStats(&after)
	if c.N() != live {
		t.Fatalf("CSR.N = %d, want %d", c.N(), live)
	}

	perBuild := (after.TotalAlloc - before.TotalAlloc) / builds
	// O(live) budget: the CSR's own slices for 64 vertices come to ~2 KB;
	// 16 KB leaves generous headroom while sitting far below the 80 KB
	// (historical × 4 bytes) the dense per-build index table cost.
	if limit := uint64(16 << 10); perBuild > limit {
		t.Errorf("CSR build allocates %d B at %d live vertices (MaxID %d), want <= %d B (O(live), not O(MaxID))",
			perBuild, live, historical, limit)
	}
	if clears := b.IndexClears() - clears0; clears > builds*live {
		t.Errorf("scratch index clears = %d over %d builds, want <= %d (live IDs only)",
			clears, builds, builds*live)
	}

	// Sweep side of the contract. The first sweep after the live burst
	// still drains the burst's schedule entries — O(live). The one after
	// that is quiet: no bucket due, no heavy weight left, so the scheduled
	// sweep must do no work at all however large the graph's history.
	d1 := g.DecaySweep(0.5, maxAge, nil, nil)
	if !d1.Lazy {
		t.Fatal("scheduled decay not active")
	}
	if d1.Touched > 4*live {
		t.Errorf("post-burst sweep touched %d entries, want <= %d (O(live))", d1.Touched, 4*live)
	}
	d2 := g.DecaySweep(0.5, maxAge, nil, nil)
	if d2.Touched != 0 || !d2.Quiet() {
		t.Errorf("quiet sweep touched %d entries (quiet=%v), want zero work", d2.Touched, d2.Quiet())
	}
}

// BenchmarkCSRRebuildAfterRetirement pins the CSR half of the O(live)
// claim for CI: rebuild cost at a fixed live-vertex count across a 20×
// spread of historical ID space (MaxID). With the builder-owned scratch
// index the three curves coincide; the old dense per-build Index table
// made cost track MaxID. Part of CI's benchmark smoke.
func BenchmarkCSRRebuildAfterRetirement(b *testing.B) {
	const live = 256
	for _, historical := range []int{live * 4, live * 20, live * 80} {
		b.Run(fmt.Sprintf("live=%d/maxid=%d", live, historical), func(b *testing.B) {
			g := buildRetiredEraGraph(b, historical, live, 4, true)
			var builder CSRBuilder
			builder.Build(g) // one-time scratch growth
			b.ReportAllocs()
			b.ResetTimer()
			var c *CSR
			for i := 0; i < b.N; i++ {
				c = builder.Build(g)
			}
			b.StopTimer()
			b.ReportMetric(float64(c.N()), "live-vertices")
			b.ReportMetric(float64(g.MaxID()), "max-id")
		})
	}
}

// BenchmarkQuietWindowSweep pins the sweep half of the O(live) claim for
// CI: the cost of a quiet decay sweep (nothing expires, nothing above the
// decay floor) across a 10× spread of live-graph size. The scheduled sweep
// stays flat — a quiet window costs nothing regardless of how much is
// live — while the eager sweep, benchmarked alongside as the baseline,
// scales linearly. Part of CI's benchmark smoke.
func BenchmarkQuietWindowSweep(b *testing.B) {
	// A horizon at the schedule's upper bound keeps every entry inside it
	// for any realistic b.N, so the measured sweeps stay genuinely quiet.
	const maxAge = maxScheduledAge
	for _, mode := range []struct {
		name      string
		scheduled bool
	}{{"scheduled", true}, {"eager", false}} {
		for _, live := range []int{2000, 20000} {
			b.Run(fmt.Sprintf("mode=%s/live=%d", mode.name, live), func(b *testing.B) {
				g := New()
				if mode.scheduled {
					if err := g.EnableScheduledDecay(maxAge); err != nil {
						b.Fatal(err)
					}
				}
				for i := 0; i < live; i++ {
					if err := g.AddInteraction(VertexID(i), VertexID((i+1)%live),
						KindAccount, KindAccount, 2); err != nil {
						b.Fatal(err)
					}
				}
				// Warm sweeps: grind every weight to the decay floor and
				// drain the heavy lists; afterwards each sweep is quiet.
				for i := 0; i < 3; i++ {
					g.DecayWeights(0.5, maxAge)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var touched int
				for i := 0; i < b.N; i++ {
					touched += g.DecaySweep(0.5, maxAge, nil, nil).Touched
				}
				b.StopTimer()
				b.ReportMetric(float64(touched)/float64(b.N), "touched/sweep")
				b.ReportMetric(float64(g.VertexCount()), "live-vertices")
			})
		}
	}
}
