package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// decayOracle is a map-based reference implementation of the windowed
// decay/retirement contract: per-vertex and per-edge touch epochs, floor
// decay with a minimum of one, drop at the retention horizon.
type decayOracle struct {
	kinds  map[VertexID]Kind
	weight map[VertexID]int64
	vtouch map[VertexID]uint32
	out    map[VertexID]map[VertexID]int64
	etouch map[[2]VertexID]uint32
	epoch  uint32
}

func newDecayOracle() *decayOracle {
	return &decayOracle{
		kinds:  make(map[VertexID]Kind),
		weight: make(map[VertexID]int64),
		vtouch: make(map[VertexID]uint32),
		out:    make(map[VertexID]map[VertexID]int64),
		etouch: make(map[[2]VertexID]uint32),
	}
}

func (o *decayOracle) add(from, to VertexID, fk, tk Kind, w int64) {
	if _, ok := o.kinds[from]; !ok {
		o.kinds[from] = fk
	}
	if _, ok := o.kinds[to]; !ok {
		o.kinds[to] = tk
	}
	o.weight[from] += w
	o.vtouch[from] = o.epoch
	if from == to {
		return
	}
	o.weight[to] += w
	o.vtouch[to] = o.epoch
	m := o.out[from]
	if m == nil {
		m = make(map[VertexID]int64)
		o.out[from] = m
	}
	m[to] += w
	o.etouch[[2]VertexID{from, to}] = o.epoch
}

func decayed(w int64, factor float64) int64 {
	d := int64(float64(w) * factor)
	if d < 1 {
		d = 1
	}
	return d
}

func (o *decayOracle) decay(factor float64, maxAge uint32) {
	o.epoch++
	for e, touch := range o.etouch {
		if o.epoch-touch >= maxAge {
			delete(o.out[e[0]], e[1])
			delete(o.etouch, e)
			continue
		}
		o.out[e[0]][e[1]] = decayed(o.out[e[0]][e[1]], factor)
	}
	for v, touch := range o.vtouch {
		if o.epoch-touch >= maxAge {
			delete(o.kinds, v)
			delete(o.weight, v)
			delete(o.vtouch, v)
			delete(o.out, v)
			continue
		}
		o.weight[v] = decayed(o.weight[v], factor)
	}
}

func (o *decayOracle) totals() (edges int, ew, vw int64) {
	for _, m := range o.out {
		for _, w := range m {
			edges++
			ew += w
		}
	}
	for _, w := range o.weight {
		vw += w
	}
	return edges, ew, vw
}

// TestPropertyDecayMatchesOracle interleaves random interaction bursts with
// decay sweeps and requires the dense graph (free-listed slots, compacted
// rows, rebuilt aggregates) to agree with the map oracle on every
// observable, including after retired vertices reappear.
func TestPropertyDecayMatchesOracle(t *testing.T) {
	f := func(seed int64, nRaw, rounds, fRaw, aRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 2
		factor := 0.3 + 0.7*float64(fRaw%100)/100 // (0.3, 1.0)
		maxAge := uint32(aRaw%4) + 1
		g := New()
		o := newDecayOracle()

		for round := 0; round < int(rounds%8)+2; round++ {
			// A burst drawn from a drifting window of the ID space, so some
			// vertices go quiet long enough to retire.
			lo := round * n / 2
			for i := 0; i < 1+rng.Intn(40); i++ {
				from := VertexID(lo + rng.Intn(n))
				to := VertexID(lo + rng.Intn(n))
				if rng.Intn(9) == 0 {
					to = VertexID(1)<<40 + to // spill region
				}
				fk, tk := KindAccount, KindContract
				w := int64(1 + rng.Intn(4))
				if err := g.AddInteraction(from, to, fk, tk, w); err != nil {
					t.Fatalf("AddInteraction: %v", err)
				}
				o.add(from, to, fk, tk, w)
			}
			g.DecayWeights(factor, maxAge)
			o.decay(factor, maxAge)

			if g.VertexCount() != len(o.kinds) {
				t.Errorf("VertexCount = %d, oracle %d", g.VertexCount(), len(o.kinds))
				return false
			}
			edges, ew, vw := o.totals()
			if g.EdgeCount() != edges || g.TotalEdgeWeight() != ew || g.TotalVertexWeight() != vw {
				t.Errorf("totals (%d,%d,%d), oracle (%d,%d,%d)", g.EdgeCount(),
					g.TotalEdgeWeight(), g.TotalVertexWeight(), edges, ew, vw)
				return false
			}
			for id, kind := range o.kinds {
				if g.VertexKind(id) != kind || g.VertexWeight(id) != o.weight[id] {
					t.Errorf("vertex %d: kind %v weight %d, oracle %v %d",
						id, g.VertexKind(id), g.VertexWeight(id), kind, o.weight[id])
					return false
				}
				for v, w := range o.out[id] {
					if g.EdgeWeight(id, v) != w {
						t.Errorf("EdgeWeight(%d,%d) = %d, oracle %d", id, v, g.EdgeWeight(id, v), w)
						return false
					}
				}
			}
			// No ghost vertices: everything the graph reports must be in the
			// oracle (retired slots must not leak into iteration).
			ghost := false
			g.Vertices(func(id VertexID, _ Kind, _ int64) bool {
				if _, ok := o.kinds[id]; !ok {
					ghost = true
					return false
				}
				return true
			})
			g.Edges(func(u, v VertexID, w int64) bool {
				if o.out[u][v] != w {
					ghost = true
					return false
				}
				return true
			})
			if ghost {
				t.Error("graph reports a vertex or edge the oracle retired")
				return false
			}
			// The CSR over the decayed graph covers exactly the live set.
			csr := NewCSR(g)
			if err := csr.Validate(); err != nil {
				t.Errorf("CSR validate after decay: %v", err)
				return false
			}
			if csr.N() != len(o.kinds) {
				t.Errorf("CSR.N = %d, oracle %d", csr.N(), len(o.kinds))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDecayIdentitySweepIsNoOp pins the identity sweep: factor 1 with an
// unreachable horizon must leave every observable untouched.
func TestDecayIdentitySweepIsNoOp(t *testing.T) {
	g := New()
	for _, it := range interactionStream(7, 40, 120) {
		if err := g.AddInteraction(it.from, it.to, it.fk, it.tk, it.w); err != nil {
			t.Fatal(err)
		}
	}
	want := g.Clone()
	if retired := g.DecayWeights(1, 1<<30); retired != 0 {
		t.Fatalf("identity sweep retired %d vertices", retired)
	}
	if g.VertexCount() != want.VertexCount() || g.EdgeCount() != want.EdgeCount() ||
		g.TotalEdgeWeight() != want.TotalEdgeWeight() || g.TotalVertexWeight() != want.TotalVertexWeight() {
		t.Fatal("identity sweep changed aggregate counters")
	}
	want.Vertices(func(id VertexID, kind Kind, w int64) bool {
		if g.VertexKind(id) != kind || g.VertexWeight(id) != w {
			t.Errorf("vertex %d changed under identity sweep", id)
			return false
		}
		return true
	})
	want.Edges(func(u, v VertexID, w int64) bool {
		if g.EdgeWeight(u, v) != w {
			t.Errorf("edge %d->%d changed under identity sweep", u, v)
			return false
		}
		return true
	})
}

// TestEnsureVertexRejectsInvalidKind guards the free-slot marker: the zero
// Kind is reserved internally, so admitting it would plant a ghost slot
// that iteration and retirement skip forever while VertexCount counts it.
func TestEnsureVertexRejectsInvalidKind(t *testing.T) {
	g := New()
	if g.EnsureVertex(1, 0) {
		t.Fatal("EnsureVertex accepted the invalid zero Kind")
	}
	if g.HasVertex(1) || g.VertexCount() != 0 {
		t.Fatal("rejected vertex left state behind")
	}
	if !g.EnsureVertex(1, KindAccount) {
		t.Fatal("valid kind refused")
	}
}

// TestDecayClampsOutOfRangeArgs pins the argument clamping: a factor that
// underflowed to zero (or a zero maxAge) must still sweep — silently doing
// nothing would let the graph grow unbounded while the caller believes
// decay is on.
func TestDecayClampsOutOfRangeArgs(t *testing.T) {
	g := New()
	if err := g.AddInteraction(1, 2, KindAccount, KindAccount, 100); err != nil {
		t.Fatal(err)
	}
	// factor 0 clamps to the smallest positive float: weights collapse to
	// the floor of one, the sweep still runs.
	if retired := g.DecayWeights(0, 2); retired != 0 {
		t.Fatalf("first sweep retired %d, want 0 (age 1 < maxAge 2)", retired)
	}
	if w := g.VertexWeight(1); w != 1 {
		t.Errorf("underflowed factor must collapse weights to the floor of one, got %d", w)
	}
	// maxAge 0 clamps to 1: everything untouched since the last sweep
	// retires rather than the call silently doing nothing.
	if retired := g.DecayWeights(0.5, 0); retired != 2 {
		t.Errorf("maxAge-0 sweep retired %d, want 2", retired)
	}
	if g.VertexCount() != 0 {
		t.Errorf("live vertices = %d, want 0", g.VertexCount())
	}
}

// TestDecayReusesRetiredSlots checks the free list: retire a generation of
// vertices, add a new generation, and the slot storage must not grow.
func TestDecayReusesRetiredSlots(t *testing.T) {
	g := New()
	for i := 0; i < 100; i++ {
		if err := g.AddInteraction(VertexID(i), VertexID(i+100), KindAccount, KindAccount, 1); err != nil {
			t.Fatal(err)
		}
	}
	slots := len(g.ids)
	if retired := g.DecayWeights(0.5, 1); retired != 200 {
		t.Fatalf("retired %d vertices, want 200", retired)
	}
	if g.VertexCount() != 0 || g.EdgeCount() != 0 {
		t.Fatalf("live graph not empty after full retirement: %d vertices, %d edges",
			g.VertexCount(), g.EdgeCount())
	}
	for i := 0; i < 100; i++ {
		if err := g.AddInteraction(VertexID(i+500), VertexID(i+700), KindAccount, KindAccount, 1); err != nil {
			t.Fatal(err)
		}
	}
	if len(g.ids) != slots {
		t.Errorf("slot storage grew from %d to %d despite %d free slots",
			slots, len(g.ids), 200)
	}
	if g.VertexCount() != 200 {
		t.Errorf("VertexCount = %d, want 200", g.VertexCount())
	}
	if err := NewCSR(g).Validate(); err != nil {
		t.Errorf("CSR over reused slots: %v", err)
	}
}

// TestDecayRetireReappearKeepsEdges checks the retire-then-reappear
// round-trip: a vertex that ages out and comes back builds fresh adjacency
// without resurrecting pre-retirement edges.
func TestDecayRetireReappearKeepsEdges(t *testing.T) {
	g := New()
	mustAdd := func(u, v VertexID) {
		t.Helper()
		if err := g.AddInteraction(u, v, KindAccount, KindAccount, 3); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(1, 2)
	mustAdd(2, 3)
	g.DecayWeights(0.5, 2) // age 1: everything survives
	if g.VertexCount() != 3 {
		t.Fatalf("VertexCount = %d, want 3", g.VertexCount())
	}
	mustAdd(2, 3) // keep 2,3 fresh; 1 ages out next sweep
	g.DecayWeights(0.5, 2)
	if g.HasVertex(1) {
		t.Fatal("vertex 1 should have retired")
	}
	if g.EdgeWeight(2, 1) != 0 || g.EdgeWeight(1, 2) != 0 {
		t.Fatal("edges of retired vertex 1 survived")
	}
	mustAdd(1, 3) // reappearance
	if !g.HasVertex(1) || g.EdgeWeight(1, 3) != 3 {
		t.Fatal("reappeared vertex 1 missing its fresh edge")
	}
	if g.EdgeWeight(1, 2) != 0 {
		t.Fatal("pre-retirement edge 1->2 resurrected")
	}
	if err := NewCSR(g).Validate(); err != nil {
		t.Fatalf("CSR after retire/reappear: %v", err)
	}
}
