package graph

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"
)

// graphDump is a canonical, storage-independent snapshot of every graph
// observable: sorted vertex and edge lists plus the aggregate counters.
// Two graphs with equal dumps are indistinguishable to any reader.
type graphDump struct {
	Vertices []vertexDump
	Edges    []edgeDump
	Epoch    uint32
	NumEdges int
	TotalEW  int64
	TotalVW  int64
}

type vertexDump struct {
	ID   VertexID
	Kind Kind
	W    int64
}

type edgeDump struct {
	U, V VertexID
	W    int64
}

func dumpGraph(g *Graph) graphDump {
	d := graphDump{
		Epoch:    g.Epoch(),
		NumEdges: g.EdgeCount(),
		TotalEW:  g.TotalEdgeWeight(),
		TotalVW:  g.TotalVertexWeight(),
	}
	g.Vertices(func(id VertexID, kind Kind, w int64) bool {
		d.Vertices = append(d.Vertices, vertexDump{ID: id, Kind: kind, W: w})
		return true
	})
	slices.SortFunc(d.Vertices, func(a, b vertexDump) int {
		if a.ID != b.ID {
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	g.Edges(func(u, v VertexID, w int64) bool {
		d.Edges = append(d.Edges, edgeDump{U: u, V: v, W: w})
		return true
	})
	slices.SortFunc(d.Edges, func(a, b edgeDump) int {
		if a.U != b.U {
			if a.U < b.U {
				return -1
			}
			return 1
		}
		if a.V != b.V {
			if a.V < b.V {
				return -1
			}
			return 1
		}
		return 0
	})
	return d
}

// sweepTrace collects one sweep's callback output in comparable form:
// retirements in emission order (observable: ascending slot order on both
// paths), edge changes sorted (emission order is an implementation detail
// of the sweep's internal walk and deliberately unspecified).
type sweepTrace struct {
	Retired []VertexID
	Edges   []edgeChange
}

type edgeChange struct {
	U, V       VertexID
	OldW, NewW int64
}

func traceSweep(g *Graph, factor float64, maxAge uint32) (DecayDelta, sweepTrace) {
	var tr sweepTrace
	delta := g.DecaySweep(factor, maxAge,
		func(id VertexID) { tr.Retired = append(tr.Retired, id) },
		func(u, v VertexID, oldW, newW int64) {
			tr.Edges = append(tr.Edges, edgeChange{U: u, V: v, OldW: oldW, NewW: newW})
		})
	slices.SortFunc(tr.Edges, func(a, b edgeChange) int {
		if a.U != b.U {
			if a.U < b.U {
				return -1
			}
			return 1
		}
		if a.V != b.V {
			if a.V < b.V {
				return -1
			}
			return 1
		}
		return 0
	})
	return delta, tr
}

// TestPropertyScheduledDecayMatchesEager drives a scheduled-decay graph and
// an eager-decay graph with identical interaction/sweep interleavings —
// bursts, quiet gaps long enough to retire whole eras, and reappearance of
// retired IDs — and requires byte-identical observables after every sweep:
// the canonical graph dump, the retirement sequence, the edge-change set,
// and the DecayDelta change counts. This is the equivalence proof for the
// O(touched) sweep; CI runs it under -race.
func TestPropertyScheduledDecayMatchesEager(t *testing.T) {
	f := func(seed int64, nRaw, roundsRaw, ageRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		rounds := int(roundsRaw%30) + 4
		maxAge := uint32(ageRaw%5) + 1
		factor := [...]float64{0.5, 0.9, 1.0, 0.25}[int(seed&3+3)&3]

		lazy := New()
		if err := lazy.EnableScheduledDecay(maxAge); err != nil {
			t.Fatalf("EnableScheduledDecay: %v", err)
		}
		eager := New()
		if !lazy.ScheduledDecay() || eager.ScheduledDecay() {
			t.Fatal("ScheduledDecay flags wrong")
		}

		for round := 0; round < rounds; round++ {
			// A burst of traffic over a drifting slice of the ID pool —
			// later rounds re-touch IDs the quiet gaps retired, exercising
			// reappearance (slot reuse with stale schedule references).
			burst := rng.Intn(3 * n)
			base := rng.Intn(n)
			for i := 0; i < burst; i++ {
				it := interactionStream(seed^int64(round*1000+i), n, 1)[0]
				if rng.Intn(4) == 0 {
					// Bias part of the burst toward a drifting hot set so
					// heavy (weight >= 2) entries form and re-form.
					it.to = VertexID((base + i%3) % n)
					it.tk = KindAccount
				}
				if err := lazy.AddInteraction(it.from, it.to, it.fk, it.tk, it.w); err != nil {
					t.Fatalf("lazy AddInteraction: %v", err)
				}
				if err := eager.AddInteraction(it.from, it.to, it.fk, it.tk, it.w); err != nil {
					t.Fatalf("eager AddInteraction: %v", err)
				}
			}
			// One to several sweeps: >maxAge in a row simulates a quiet gap
			// that retires everything untouched.
			sweeps := 1
			if rng.Intn(3) == 0 {
				sweeps = int(maxAge) + 1 + rng.Intn(2)
			}
			for k := 0; k < sweeps; k++ {
				ld, lt := traceSweep(lazy, factor, maxAge)
				ed, et := traceSweep(eager, factor, maxAge)
				if !ld.Lazy || ed.Lazy {
					t.Errorf("Lazy flags: lazy=%v eager=%v", ld.Lazy, ed.Lazy)
					return false
				}
				if ld.Retired != ed.Retired || ld.EdgeDrops != ed.EdgeDrops || ld.EdgeDecays != ed.EdgeDecays {
					t.Errorf("round %d sweep %d: delta (r=%d,d=%d,c=%d) vs eager (r=%d,d=%d,c=%d)",
						round, k, ld.Retired, ld.EdgeDrops, ld.EdgeDecays,
						ed.Retired, ed.EdgeDrops, ed.EdgeDecays)
					return false
				}
				if !reflect.DeepEqual(lt, et) {
					t.Errorf("round %d sweep %d: traces diverge\nlazy:  %+v\neager: %+v", round, k, lt, et)
					return false
				}
				if ldump, edump := dumpGraph(lazy), dumpGraph(eager); !reflect.DeepEqual(ldump, edump) {
					t.Errorf("round %d sweep %d: graphs diverge\nlazy:  %+v\neager: %+v", round, k, ldump, edump)
					return false
				}
			}
		}

		// A clone of the scheduled graph must keep sweeping independently
		// and identically.
		lc, ec := lazy.Clone(), eager.Clone()
		traceSweep(lazy, factor, maxAge)
		for k := 0; k < int(maxAge)+1; k++ {
			traceSweep(lc, factor, maxAge)
			traceSweep(ec, factor, maxAge)
		}
		if !reflect.DeepEqual(dumpGraph(lc), dumpGraph(ec)) {
			t.Error("cloned scheduled graph diverged from cloned eager graph")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestScheduledDecayFallsBackOnHorizonMismatch pins the safety valve: a
// sweep at a different horizon permanently reverts a scheduled graph to
// eager sweeps (the horizon buckets are keyed by the configured maxAge and
// cannot answer another), and results stay correct through the switch.
func TestScheduledDecayFallsBackOnHorizonMismatch(t *testing.T) {
	g := New()
	if err := g.EnableScheduledDecay(3); err != nil {
		t.Fatalf("EnableScheduledDecay: %v", err)
	}
	if err := g.AddInteraction(1, 2, KindAccount, KindAccount, 5); err != nil {
		t.Fatal(err)
	}
	if d := g.DecaySweep(0.5, 3, nil, nil); !d.Lazy {
		t.Fatal("first sweep should be scheduled")
	}
	if d := g.DecaySweep(0.5, 4, nil, nil); d.Lazy {
		t.Fatal("mismatched-horizon sweep should run eager")
	}
	if g.ScheduledDecay() {
		t.Fatal("schedule should be dropped permanently")
	}
	if w := g.EdgeWeight(1, 2); w != 1 {
		t.Fatalf("EdgeWeight(1,2) = %d, want 1 after two halvings of 5", w)
	}
	// Back at the original horizon: still eager, still correct — the third
	// sweep hits the age-3 horizon, so everything retires.
	if d := g.DecaySweep(0.5, 3, nil, nil); d.Lazy || d.Retired != 2 {
		t.Fatalf("post-fallback sweep: %+v, want eager with 2 retirements", d)
	}
	if g.VertexCount() != 0 {
		t.Fatalf("VertexCount = %d, want 0 at the horizon", g.VertexCount())
	}
}

// TestEnableScheduledDecayPreconditions pins the enable-time contract.
func TestEnableScheduledDecayPreconditions(t *testing.T) {
	g := New()
	if err := g.EnableScheduledDecay(0); err == nil {
		t.Error("maxAge 0 accepted")
	}
	if err := g.EnableScheduledDecay(maxScheduledAge + 1); err == nil {
		t.Error("maxAge beyond bound accepted")
	}
	if err := g.EnableScheduledDecay(maxScheduledAge); err != nil {
		t.Errorf("maxAge at bound refused: %v", err)
	}
	g2 := New()
	g2.EnsureVertex(1, KindAccount)
	if err := g2.EnableScheduledDecay(4); err == nil {
		t.Error("non-empty graph accepted")
	}
	g3 := New()
	g3.DecayWeights(0.5, 2)
	if err := g3.EnableScheduledDecay(4); err == nil {
		t.Error("already-swept graph accepted")
	}
}

// TestDecaySweepQuietDelta pins the Quiet signal the simulator keys its
// cut-recount skip on: a sweep over a graph whose every weight sits at the
// floor and whose entries are all within the horizon changes nothing and
// must say so.
func TestDecaySweepQuietDelta(t *testing.T) {
	for _, scheduled := range []bool{false, true} {
		g := New()
		if scheduled {
			if err := g.EnableScheduledDecay(8); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.AddInteraction(1, 2, KindAccount, KindAccount, 4); err != nil {
			t.Fatal(err)
		}
		// First sweeps grind the weights down to the floor.
		if d := g.DecaySweep(0.5, 8, nil, nil); d.Quiet() {
			t.Errorf("scheduled=%v: first sweep reported quiet", scheduled)
		}
		g.DecaySweep(0.5, 8, nil, nil)
		// Weights now at 1; further in-horizon sweeps are quiet.
		d := g.DecaySweep(0.5, 8, nil, nil)
		if !d.Quiet() {
			t.Errorf("scheduled=%v: floor sweep not quiet: %+v", scheduled, d)
		}
		if scheduled && d.Touched != 0 {
			t.Errorf("scheduled quiet sweep touched %d entries, want 0", d.Touched)
		}
	}
}
