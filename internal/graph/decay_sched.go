package graph

import (
	"fmt"
	"slices"
)

// Scheduled (lazy) decay: the O(touched) sweep.
//
// The eager sweep in decay.go visits every live slot and both rows of
// every live vertex — O(live graph) per window even when nothing happened.
// Two observations make the sweep cheap without changing a single
// observable:
//
//  1. The per-sweep rescale w' = max(1, floor(w·factor)) has a fixed
//     point at w == 1 (and, for factor < 1, strictly decreases every
//     w >= 2). The set of weights a sweep can change is therefore exactly
//     the "heavy" set {w >= 2} — in steady state a vanishing fraction of
//     the live graph, since most weights have long since decayed to the
//     floor of one.
//  2. Retirement happens at an entry's touch epoch plus the horizon, a
//     time known the moment the entry is touched. A timer-wheel of
//     maxAge+1 buckets keyed by (touch+maxAge) mod ring files every
//     (re)touch exactly once; at a sweep only the current bucket drains,
//     and entries re-touched since filing are recognised (their age is
//     below the horizon) and skipped.
//
// The schedule therefore keeps: a bucket ring per kind (vertices, edges)
// and a heavy list per kind (entries whose weight is above the floor,
// plus freshly created vertices whose weight the next sweep must
// materialize from zero to one, exactly as the eager sweep would). Sweep
// work is O(bucket drained + heavy visited) — proportional to traffic
// touched within the horizon, not to the live graph.
//
// Heavy lists may hold duplicate or stale references (an entry retired,
// re-created and re-promoted files a second reference; membership is
// never searched on the hot path). Stale references resolve to a missing
// or light entry and are dropped at the next visit; duplicates are
// defused by the per-entry dec epoch tag, which marks an entry already
// rescaled in the current sweep. The invariant that makes the heavy list
// complete: every entry with weight >= 2 has at least one live reference
// listed (references are filed when a weight leaves the floor and only
// removed by a visit that observed the weight at or below it).
//
// Stored weights are always current: a sweep materializes every weight it
// could change, so readers (Neighbors, EdgeWeight, the CSR builder, the
// placement rules, the aggregate counters) need no read-side view and are
// byte-identical to the eager path. Equivalence is pinned by the
// scheduled-vs-eager property test under -race.

// maxScheduledAge bounds the horizon the scheduled path will build its
// bucket ring for. Beyond it (a horizon of more than ~64k sweeps —
// decades of four-hour windows) the ring's fixed cost stops being worth
// it and EnableScheduledDecay refuses, leaving the eager sweep in charge.
const maxScheduledAge = 1 << 16

// edgeRef names a directed edge by its endpoints; the out row of u holds
// the canonical copy.
type edgeRef struct {
	u, v VertexID
}

// heavyVertex references a vertex by slot, with the ID it had when filed
// so a reference left dangling by retirement and slot reuse is
// recognised as stale.
type heavyVertex struct {
	s  int32
	id VertexID
}

// decaySchedule is the scheduled-decay state of a Graph.
type decaySchedule struct {
	maxAge uint32
	// vring and ering are the horizon bucket rings, indexed by target
	// epoch mod (maxAge+1). The bucket drained at epoch e holds exactly
	// the entries filed at epoch e-maxAge; pending buckets target epochs
	// in (e, e+maxAge], so targets never collide within the ring.
	vring [][]VertexID
	ering [][]edgeRef
	// heavyV and heavyE list the entries the next sweep must rescale.
	heavyV []heavyVertex
	heavyE []edgeRef
	// vdec is the slot-parallel vertex counterpart of halfEdge.dec: the
	// epoch of the slot's last scheduled rescale, defusing duplicate
	// heavy references within one sweep.
	vdec []uint32
	// retire is per-sweep scratch for sorting the retiring slots.
	retire []int32
}

// clone deep-copies the schedule (Graph.Clone support).
func (d *decaySchedule) clone() *decaySchedule {
	c := &decaySchedule{
		maxAge: d.maxAge,
		vring:  make([][]VertexID, len(d.vring)),
		ering:  make([][]edgeRef, len(d.ering)),
		heavyV: append([]heavyVertex(nil), d.heavyV...),
		heavyE: append([]edgeRef(nil), d.heavyE...),
		vdec:   append([]uint32(nil), d.vdec...),
	}
	for i := range d.vring {
		if len(d.vring[i]) > 0 {
			c.vring[i] = append([]VertexID(nil), d.vring[i]...)
		}
	}
	for i := range d.ering {
		if len(d.ering[i]) > 0 {
			c.ering[i] = append([]edgeRef(nil), d.ering[i]...)
		}
	}
	return c
}

// EnableScheduledDecay switches the graph's decay sweeps from the eager
// full scan to the scheduled O(touched) path, for sweeps at exactly the
// given horizon (DecaySweep with any other maxAge permanently reverts the
// graph to eager sweeps). It must be called on a graph that has never
// held a vertex or been swept; maxAge must be in [1, 1<<16]. The factor
// passed to each sweep remains free — only the horizon is fixed, because
// the retirement buckets are keyed by it.
func (g *Graph) EnableScheduledDecay(maxAge uint32) error {
	if len(g.ids) != 0 || g.epoch != 0 {
		return fmt.Errorf("graph: scheduled decay must be enabled before any vertex or sweep")
	}
	if maxAge < 1 || maxAge > maxScheduledAge {
		return fmt.Errorf("graph: scheduled decay horizon %d outside [1, %d]", maxAge, maxScheduledAge)
	}
	g.sched = &decaySchedule{
		maxAge: maxAge,
		vring:  make([][]VertexID, maxAge+1),
		ering:  make([][]edgeRef, maxAge+1),
	}
	return nil
}

// ScheduledDecay reports whether the scheduled decay path is active.
func (g *Graph) ScheduledDecay() bool { return g.sched != nil }

// scheduleExpiry files id into the horizon bucket of the epoch at which
// it becomes eligible to retire if left untouched. Called on the first
// touch of a vertex in each epoch.
func (g *Graph) scheduleExpiry(id VertexID) {
	d := g.sched
	slot := (g.epoch + d.maxAge) % uint32(len(d.vring))
	d.vring[slot] = append(d.vring[slot], id)
}

// scheduleEdgeExpiry is scheduleExpiry for the directed edge u->v.
func (g *Graph) scheduleEdgeExpiry(u, v VertexID) {
	d := g.sched
	slot := (g.epoch + d.maxAge) % uint32(len(d.ering))
	d.ering[slot] = append(d.ering[slot], edgeRef{u: u, v: v})
}

// scheduleVertex registers a newly (re)created vertex: a horizon bucket
// entry, plus a heavy-list entry because its weight of zero must be
// materialized to the floor of one by the next sweep, exactly as the
// eager sweep would.
func (g *Graph) scheduleVertex(id VertexID, s int32) {
	g.scheduleExpiry(id)
	g.sched.heavyV = append(g.sched.heavyV, heavyVertex{s: s, id: id})
}

// scheduledSweep is the O(touched) decay sweep. Equivalence with
// eagerSweep rests on the observations documented at the top of this
// file; the phases run in an order that reproduces the eager sweep's
// observable sequence exactly:
//
//  1. Drain the edge bucket — horizon-expired edges leave both rows
//     before any vertex retires, so retiring vertices always have empty
//     rows (an edge's touch never exceeds its endpoints', hence its
//     expiry never falls after theirs).
//  2. Drain the vertex bucket, retiring in ascending slot order — the
//     order the eager scan fires onRetire in.
//  3. Rescale the heavy edges, then the heavy vertices. A vertex
//     retiring this sweep is gone by now, exactly like the eager sweep
//     retires a vertex instead of decaying it; its weight left the
//     aggregate at the value the previous sweep gave it.
//
// Callbacks must not mutate the graph.
func (g *Graph) scheduledSweep(factor float64, onRetire func(VertexID), onEdge func(u, v VertexID, oldW, newW int64)) DecayDelta {
	d := g.sched
	g.epoch++
	e := g.epoch
	delta := DecayDelta{Lazy: true}

	// Phase 1: horizon-expired edges.
	slot := e % uint32(len(d.ering))
	for _, ref := range d.ering[slot] {
		delta.Touched++
		su := g.slotOf(ref.u)
		if su < 0 {
			continue // endpoint retired earlier; rows already clean
		}
		ro := &g.out[su]
		p := ro.find(ref.v)
		if p < 0 {
			continue // edge expired via an earlier filing
		}
		if e-ro.e[p].touch < d.maxAge {
			continue // re-touched since this filing; a newer bucket owns it
		}
		w := ro.e[p].w
		ro.removeAt(p)
		if sv := g.slotOf(ref.v); sv >= 0 {
			ri := &g.in[sv]
			if q := ri.find(ref.u); q >= 0 {
				ri.removeAt(q)
			}
		}
		g.numEdges--
		g.totalEdgeWeight -= w
		delta.EdgeDrops++
		if onEdge != nil {
			onEdge(ref.u, ref.v, w, 0)
		}
	}
	d.ering[slot] = d.ering[slot][:0]

	// Phase 2: horizon-expired vertices, in ascending slot order.
	d.retire = d.retire[:0]
	slot = e % uint32(len(d.vring))
	for _, id := range d.vring[slot] {
		delta.Touched++
		s := g.slotOf(id)
		if s < 0 || e-g.touch[s] < d.maxAge {
			continue // already retired, or re-touched since this filing
		}
		d.retire = append(d.retire, s)
	}
	d.vring[slot] = d.vring[slot][:0]
	slices.Sort(d.retire)
	for _, s := range d.retire {
		if onRetire != nil {
			onRetire(g.ids[s])
		}
		g.totalVertWeight -= g.weights[s]
		g.retireSlot(s)
		delta.Retired++
	}

	// Phase 3a: heavy edges. References surviving with weight >= 2 stay
	// listed (in-place filter); the rest drop out.
	he := d.heavyE[:0]
	for _, ref := range d.heavyE {
		delta.Touched++
		su := g.slotOf(ref.u)
		if su < 0 {
			continue
		}
		ro := &g.out[su]
		p := ro.find(ref.v)
		if p < 0 {
			continue // stale: edge expired (possibly just now)
		}
		en := &ro.e[p]
		if en.dec == e {
			continue // duplicate reference; this sweep already rescaled it
		}
		if en.w < 2 {
			continue // stale: a light re-creation reused the endpoints
		}
		en.dec = e
		old := en.w
		nw := int64(float64(old) * factor)
		if nw < 1 {
			nw = 1
		}
		if nw != old {
			en.w = nw
			// Mirror into the in copy so both row copies stay identical.
			sv := g.slotOf(ref.v)
			ri := &g.in[sv]
			if q := ri.find(ref.u); q >= 0 {
				ri.e[q].w = nw
			}
			g.totalEdgeWeight += nw - old
			delta.EdgeDecays++
			if onEdge != nil {
				onEdge(ref.u, ref.v, old, nw)
			}
		}
		if nw >= 2 {
			he = append(he, ref)
		}
	}
	d.heavyE = he

	// Phase 3b: heavy vertices.
	hv := d.heavyV[:0]
	for _, h := range d.heavyV {
		delta.Touched++
		if g.kinds[h.s] == 0 || g.ids[h.s] != h.id {
			continue // stale: retired (slot possibly reused by another ID)
		}
		if d.vdec[h.s] == e {
			continue // duplicate reference
		}
		d.vdec[h.s] = e
		old := g.weights[h.s]
		nw := int64(float64(old) * factor)
		if nw < 1 {
			nw = 1
		}
		if nw != old {
			g.weights[h.s] = nw
			g.totalVertWeight += nw - old
		}
		if nw >= 2 {
			hv = append(hv, h)
		}
	}
	d.heavyV = hv
	return delta
}
