package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSREmpty(t *testing.T) {
	c := NewCSR(New())
	if c.N() != 0 {
		t.Fatalf("N = %d, want 0", c.N())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRSmall(t *testing.T) {
	g := New()
	mustAdd(t, g, 10, 20, 3)
	mustAdd(t, g, 20, 10, 2) // merged into one undirected edge of weight 5
	mustAdd(t, g, 10, 30, 1)

	c := NewCSR(g)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3", c.N())
	}
	if c.NumEdges != 2 {
		t.Fatalf("NumEdges = %d, want 2", c.NumEdges)
	}
	if c.TotalEW != 6 {
		t.Fatalf("TotalEW = %d, want 6", c.TotalEW)
	}

	i10 := c.LocalOf(10)
	adj, w := c.Row(i10)
	if len(adj) != 2 {
		t.Fatalf("degree of 10 = %d, want 2", len(adj))
	}
	// Row sorted by local index; 20 and 30 have indices 1 and 2.
	if c.IDs[adj[0]] != 20 || w[0] != 5 {
		t.Errorf("first neighbour of 10 = id %d w %d, want 20 w 5", c.IDs[adj[0]], w[0])
	}
	if c.IDs[adj[1]] != 30 || w[1] != 1 {
		t.Errorf("second neighbour of 10 = id %d w %d, want 30 w 1", c.IDs[adj[1]], w[1])
	}
}

func TestCSRSelfLoopExcluded(t *testing.T) {
	g := New()
	if err := g.AddInteraction(1, 1, KindContract, KindContract, 4); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, g, 1, 2, 1)
	c := NewCSR(g)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumEdges != 1 {
		t.Fatalf("NumEdges = %d, want 1 (self loop excluded)", c.NumEdges)
	}
}

func TestCSRVertexWeightsPreserved(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3)
	mustAdd(t, g, 3, 1, 2)
	c := NewCSR(g)
	for i, id := range c.IDs {
		if c.VW[i] != g.VertexWeight(id) {
			t.Errorf("VW[%d] = %d, want %d", i, c.VW[i], g.VertexWeight(id))
		}
	}
	if c.TotalVW != g.TotalVertexWeight() {
		t.Errorf("TotalVW = %d, want %d", c.TotalVW, g.TotalVertexWeight())
	}
}

func TestPropertyCSRValid(t *testing.T) {
	// Property: for any random interaction sequence the CSR passes its own
	// validation and preserves vertex count and undirected edge count.
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		m := int(mRaw%150) + 1
		g := randomGraph(rng, n, m)
		c := NewCSR(g)
		if err := c.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		if c.N() != g.VertexCount() {
			return false
		}
		// Undirected edges: count distinct unordered pairs in g.
		pairs := map[[2]VertexID]bool{}
		g.Edges(func(u, v VertexID, _ int64) bool {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			pairs[[2]VertexID{a, b}] = true
			return true
		})
		return c.NumEdges == len(pairs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	if err := g.AddInteraction(1, 2, KindAccount, KindContract, 3); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := g.WriteDOT(&sb, DOTOptions{Name: "sub", ShowWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "sub"`,
		"1 [shape=ellipse, style=solid];",
		"2 [shape=box, style=dashed];",
		`1 -> 2 [label="3"];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTShardColours(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 1)
	var sb strings.Builder
	err := g.WriteDOT(&sb, DOTOptions{
		Shard: func(id VertexID) (int, bool) { return int(id) % 2, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fillcolor=") {
		t.Errorf("expected shard colouring in DOT output:\n%s", sb.String())
	}
}

func TestWriteDOTMaxVertices(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 3, 4, 1)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, DOTOptions{MaxVertices: 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "3 ->") || strings.Contains(out, " 4 [") {
		t.Errorf("vertices beyond MaxVertices leaked into output:\n%s", out)
	}
	if !strings.Contains(out, "1 -> 2") {
		t.Errorf("expected edge 1->2 in output:\n%s", out)
	}
}

func BenchmarkNewCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 10000, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCSR(g)
		if c.N() == 0 {
			b.Fatal("empty csr")
		}
	}
}

func BenchmarkAddInteraction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := VertexID(rng.Intn(100000))
		v := VertexID(rng.Intn(100000))
		if err := g.AddInteraction(u, v, KindAccount, KindAccount, 1); err != nil {
			b.Fatal(err)
		}
	}
}
