package graph

import (
	"fmt"
	"slices"
)

// CSR is a compact, immutable, undirected view of a Graph in compressed
// sparse row form. It is the representation consumed by the partitioners:
// directed edges u->v and v->u are merged into a single undirected edge whose
// weight is the sum of both directions.
//
// Vertices are renumbered to dense local indices [0, N). IDs maps a local
// index back to the original VertexID; LocalOf maps a VertexID back to its
// local index. There is deliberately no dense ID->local table on the CSR
// itself: such a table is O(MaxID) — the historical ID space — and filling
// it made every build pay for every ID ever seen even when the live graph
// had shrunk to a handful of vertices. The builder keeps one reusable
// scratch table instead (see CSRBuilder), and the finished CSR answers
// reverse lookups by binary search over its sorted IDs list.
type CSR struct {
	// IDs maps local index -> original vertex ID, sorted ascending.
	IDs []VertexID
	// VW holds per-vertex dynamic weights (interaction counts).
	VW []int64
	// XAdj is the CSR row index: the neighbours of local vertex i are
	// Adj[XAdj[i]:XAdj[i+1]] with weights AdjW at the same positions.
	XAdj []int32
	// Adj holds neighbour local indices, sorted ascending within a row.
	Adj []int32
	// AdjW holds undirected edge weights, parallel to Adj.
	AdjW []int64

	// TotalVW is the sum of VW.
	TotalVW int64
	// TotalEW is the sum of undirected edge weights, counting each
	// undirected edge once.
	TotalEW int64
	// NumEdges is the number of undirected edges (each counted once).
	NumEdges int
}

// LocalOf returns the local index of the given vertex ID, or -1 when the ID
// is not in this CSR. O(log N) — a binary search over the sorted IDs list.
// Hot loops that resolve IDs per edge should iterate local indices and use
// IDs for the reverse direction instead.
func (c *CSR) LocalOf(id VertexID) int32 {
	if p, ok := slices.BinarySearch(c.IDs, id); ok {
		return int32(p)
	}
	return -1
}

// CSRBuilder builds CSRs while reusing scratch across builds: the merge
// buffers for the intermediate half edges, and the dense ID->local index
// used to resolve neighbour IDs during the gather pass. The index is the
// load-bearing piece of the O(live) build contract: it spans the graph's
// dense ID space but is initialised (to -1) only when it grows, and after
// every build it is wiped back to -1 by walking the *live* IDs list — so a
// build does O(live vertices + live edges) index work however large the
// historical ID space has become, where the old per-CSR table paid an
// O(MaxID) fill every build. The zero value is ready to use. A builder is
// not safe for concurrent use; the CSRs it returns never alias builder
// scratch and are independent of the builder and of each other.
type CSRBuilder struct {
	halfTo []int32 // merged adjacency targets, grouped by source local index
	halfW  []int64 // weights parallel to halfTo
	fill   []int32 // per-row write cursor for the scatter pass
	// index is the reusable dense ID->local scratch table. Invariant
	// between builds: every entry is -1 (established at growth, restored by
	// the post-build clear walk).
	index []int32
	// indexClears counts entries restored to -1 by post-build clear walks —
	// exactly the live-ID writes, observable so the O(live) contract can be
	// asserted by a regression test instead of trusted.
	indexClears int
}

// IndexClears returns the cumulative number of scratch-index entries this
// builder has cleared across all builds: one per live dense-ID vertex per
// build, never O(MaxID).
func (b *CSRBuilder) IndexClears() int { return b.indexClears }

// NewCSR builds the undirected CSR view of g. The result does not alias g;
// later mutations of g are not reflected. Callers building CSRs repeatedly
// should hold a CSRBuilder and call its Build method instead — a one-shot
// builder pays the full scratch-index initialisation for nothing.
func NewCSR(g *Graph) *CSR {
	return new(CSRBuilder).Build(g)
}

// Build constructs the undirected CSR view of g.
//
// Rows come out sorted by neighbour index without any comparison sort: the
// merged adjacency is first gathered per source vertex (ascending), then
// scattered to its target rows — each row receives its sources in ascending
// order, a counting-sort over edge targets.
func (b *CSRBuilder) Build(g *Graph) *CSR {
	n := g.VertexCount()
	c := &CSR{
		IDs:  g.VertexIDs(),
		VW:   make([]int64, n),
		XAdj: make([]int32, n+1),
	}
	// Grow the scratch index to the graph's dense ID bound. Only the grown
	// region pays a -1 fill, once per high-water mark — not per build.
	if m := int(g.MaxID()); len(b.index) < m {
		grown := append(b.index, make([]int32, m-len(b.index))...)
		for i := len(b.index); i < len(grown); i++ {
			grown[i] = -1
		}
		b.index = grown
	}
	for i, id := range c.IDs {
		if id < VertexID(len(b.index)) {
			b.index[id] = int32(i)
		}
		w := g.weights[g.slotOf(id)]
		c.VW[i] = w
		c.TotalVW += w
	}
	// localOf resolves a vertex ID to its local index: a scratch-table
	// probe for dense IDs, a binary search over the sorted ID list for
	// spilled ones.
	localOf := func(v VertexID) int32 {
		if v < VertexID(len(b.index)) {
			return b.index[v]
		}
		return c.LocalOf(v)
	}

	// Gather pass: the merged (undirected, deduplicated) adjacency of every
	// vertex, in ascending vertex order, into the reusable half-edge
	// buffers. XAdj doubles as the offsets of this grouping because the
	// merged half adjacency of a vertex is exactly its final CSR row.
	halfTo, halfW := b.halfTo[:0], b.halfW[:0]
	for i := 0; i < n; i++ {
		s := g.slotOf(c.IDs[i])
		ro, ri := &g.out[s], &g.in[s]
		for p := range ro.e {
			v, w := ro.e[p].to, ro.e[p].w
			if q := ri.find(v); q >= 0 {
				w += ri.e[q].w
			}
			halfTo = append(halfTo, localOf(v))
			halfW = append(halfW, w)
		}
		for p := range ri.e {
			v := ri.e[p].to
			if ro.find(v) >= 0 {
				continue
			}
			halfTo = append(halfTo, localOf(v))
			halfW = append(halfW, ri.e[p].w)
		}
		c.XAdj[i+1] = int32(len(halfTo))
	}
	b.halfTo, b.halfW = halfTo, halfW

	// Scatter pass: write each half edge into its target's row. Sources are
	// visited in ascending order, so every row is born sorted.
	if cap(b.fill) < n {
		b.fill = make([]int32, n)
	}
	fill := b.fill[:n]
	copy(fill, c.XAdj[:n])
	c.Adj = make([]int32, len(halfTo))
	c.AdjW = make([]int64, len(halfTo))
	for i := int32(0); int(i) < n; i++ {
		for p := c.XAdj[i]; p < c.XAdj[i+1]; p++ {
			j := halfTo[p]
			pos := fill[j]
			c.Adj[pos] = i
			c.AdjW[pos] = halfW[p]
			fill[j]++
			if i < j { // count each undirected edge once
				c.TotalEW += halfW[p]
				c.NumEdges++
			}
		}
	}

	// Restore the scratch-index invariant by walking the live IDs — an
	// O(live) clear in place of the old O(MaxID) per-build fill.
	for _, id := range c.IDs {
		if id < VertexID(len(b.index)) {
			b.index[id] = -1
			b.indexClears++
		}
	}
	return c
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.IDs) }

// Degree returns the undirected degree of local vertex i.
func (c *CSR) Degree(i int32) int32 { return c.XAdj[i+1] - c.XAdj[i] }

// Row returns the neighbour indices and weights of local vertex i. The
// returned slices alias the CSR and must not be modified.
func (c *CSR) Row(i int32) ([]int32, []int64) {
	lo, hi := c.XAdj[i], c.XAdj[i+1]
	return c.Adj[lo:hi], c.AdjW[lo:hi]
}

// Validate checks structural invariants: symmetric adjacency, consistent
// weights, sorted rows and matching totals. It is used by tests and is cheap
// enough to call on moderately sized graphs.
func (c *CSR) Validate() error {
	n := c.N()
	if len(c.VW) != n || len(c.XAdj) != n+1 {
		return fmt.Errorf("csr: inconsistent lengths (n=%d, vw=%d, xadj=%d)", n, len(c.VW), len(c.XAdj))
	}
	if int(c.XAdj[n]) != len(c.Adj) || len(c.Adj) != len(c.AdjW) {
		return fmt.Errorf("csr: adjacency length mismatch")
	}
	for i := 1; i < n; i++ {
		if c.IDs[i-1] >= c.IDs[i] {
			return fmt.Errorf("csr: IDs not strictly ascending at local %d", i)
		}
	}
	var ew int64
	var edges int
	for i := int32(0); int(i) < n; i++ {
		adj, w := c.Row(i)
		for p, j := range adj {
			if j < 0 || int(j) >= n {
				return fmt.Errorf("csr: vertex %d has out-of-range neighbour %d", i, j)
			}
			if j == i {
				return fmt.Errorf("csr: vertex %d has a self-loop", i)
			}
			if p > 0 && adj[p-1] >= j {
				return fmt.Errorf("csr: row %d not strictly sorted", i)
			}
			// Symmetry: j must list i with the same weight.
			radj, rw := c.Row(j)
			pos, ok := slices.BinarySearch(radj, i)
			if !ok {
				return fmt.Errorf("csr: edge %d-%d not symmetric", i, j)
			}
			if rw[pos] != w[p] {
				return fmt.Errorf("csr: edge %d-%d weight mismatch (%d vs %d)", i, j, w[p], rw[pos])
			}
			if i < j {
				ew += w[p]
				edges++
			}
		}
	}
	if ew != c.TotalEW {
		return fmt.Errorf("csr: TotalEW=%d, recomputed %d", c.TotalEW, ew)
	}
	if edges != c.NumEdges {
		return fmt.Errorf("csr: NumEdges=%d, recomputed %d", c.NumEdges, edges)
	}
	var vw int64
	for _, w := range c.VW {
		vw += w
	}
	if vw != c.TotalVW {
		return fmt.Errorf("csr: TotalVW=%d, recomputed %d", c.TotalVW, vw)
	}
	return nil
}
