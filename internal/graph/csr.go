package graph

import (
	"fmt"
	"sort"
)

// CSR is a compact, immutable, undirected view of a Graph in compressed
// sparse row form. It is the representation consumed by the partitioners:
// directed edges u->v and v->u are merged into a single undirected edge whose
// weight is the sum of both directions.
//
// Vertices are renumbered to dense local indices [0, N). IDs maps a local
// index back to the original VertexID and Index maps a VertexID to its local
// index.
type CSR struct {
	// IDs maps local index -> original vertex ID, sorted ascending.
	IDs []VertexID
	// Index maps original vertex ID -> local index.
	Index map[VertexID]int32
	// VW holds per-vertex dynamic weights (interaction counts).
	VW []int64
	// XAdj is the CSR row index: the neighbours of local vertex i are
	// Adj[XAdj[i]:XAdj[i+1]] with weights AdjW at the same positions.
	XAdj []int32
	// Adj holds neighbour local indices.
	Adj []int32
	// AdjW holds undirected edge weights, parallel to Adj.
	AdjW []int64

	// TotalVW is the sum of VW.
	TotalVW int64
	// TotalEW is the sum of undirected edge weights, counting each
	// undirected edge once.
	TotalEW int64
	// NumEdges is the number of undirected edges (each counted once).
	NumEdges int
}

// NewCSR builds the undirected CSR view of g. The result does not alias g;
// later mutations of g are not reflected.
func NewCSR(g *Graph) *CSR {
	n := g.VertexCount()
	c := &CSR{
		IDs:   g.VertexIDs(),
		Index: make(map[VertexID]int32, n),
		VW:    make([]int64, n),
		XAdj:  make([]int32, n+1),
	}
	for i, id := range c.IDs {
		c.Index[id] = int32(i)
	}

	// First pass: degrees.
	deg := make([]int32, n)
	for i, id := range c.IDs {
		c.VW[i] = g.VertexWeight(id)
		c.TotalVW += c.VW[i]
		deg[i] = int32(g.Degree(id))
	}
	var total int32
	for i := 0; i < n; i++ {
		c.XAdj[i] = total
		total += deg[i]
	}
	c.XAdj[n] = total
	c.Adj = make([]int32, total)
	c.AdjW = make([]int64, total)

	// Second pass: fill adjacency.
	fill := make([]int32, n)
	copy(fill, c.XAdj[:n])
	for i, id := range c.IDs {
		li := int32(i)
		g.Neighbors(id, func(v VertexID, w int64) bool {
			lj := c.Index[v]
			c.Adj[fill[li]] = lj
			c.AdjW[fill[li]] = w
			fill[li]++
			if li < lj { // count each undirected edge once
				c.TotalEW += w
				c.NumEdges++
			}
			return true
		})
	}
	// Sort each row by neighbour index for deterministic iteration.
	for i := 0; i < n; i++ {
		lo, hi := c.XAdj[i], c.XAdj[i+1]
		row := adjRow{adj: c.Adj[lo:hi], w: c.AdjW[lo:hi]}
		sort.Sort(row)
	}
	return c
}

// adjRow sorts an adjacency row and its weights together.
type adjRow struct {
	adj []int32
	w   []int64
}

func (r adjRow) Len() int           { return len(r.adj) }
func (r adjRow) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r adjRow) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.IDs) }

// Degree returns the undirected degree of local vertex i.
func (c *CSR) Degree(i int32) int32 { return c.XAdj[i+1] - c.XAdj[i] }

// Row returns the neighbour indices and weights of local vertex i. The
// returned slices alias the CSR and must not be modified.
func (c *CSR) Row(i int32) ([]int32, []int64) {
	lo, hi := c.XAdj[i], c.XAdj[i+1]
	return c.Adj[lo:hi], c.AdjW[lo:hi]
}

// Validate checks structural invariants: symmetric adjacency, consistent
// weights, sorted rows and matching totals. It is used by tests and is cheap
// enough to call on moderately sized graphs.
func (c *CSR) Validate() error {
	n := c.N()
	if len(c.VW) != n || len(c.XAdj) != n+1 {
		return fmt.Errorf("csr: inconsistent lengths (n=%d, vw=%d, xadj=%d)", n, len(c.VW), len(c.XAdj))
	}
	if int(c.XAdj[n]) != len(c.Adj) || len(c.Adj) != len(c.AdjW) {
		return fmt.Errorf("csr: adjacency length mismatch")
	}
	var ew int64
	var edges int
	for i := int32(0); int(i) < n; i++ {
		adj, w := c.Row(i)
		for p, j := range adj {
			if j < 0 || int(j) >= n {
				return fmt.Errorf("csr: vertex %d has out-of-range neighbour %d", i, j)
			}
			if j == i {
				return fmt.Errorf("csr: vertex %d has a self-loop", i)
			}
			if p > 0 && adj[p-1] >= j {
				return fmt.Errorf("csr: row %d not strictly sorted", i)
			}
			// Symmetry: j must list i with the same weight.
			radj, rw := c.Row(j)
			pos := sort.Search(len(radj), func(q int) bool { return radj[q] >= i })
			if pos == len(radj) || radj[pos] != i {
				return fmt.Errorf("csr: edge %d-%d not symmetric", i, j)
			}
			if rw[pos] != w[p] {
				return fmt.Errorf("csr: edge %d-%d weight mismatch (%d vs %d)", i, j, w[p], rw[pos])
			}
			if i < j {
				ew += w[p]
				edges++
			}
		}
	}
	if ew != c.TotalEW {
		return fmt.Errorf("csr: TotalEW=%d, recomputed %d", c.TotalEW, ew)
	}
	if edges != c.NumEdges {
		return fmt.Errorf("csr: NumEdges=%d, recomputed %d", c.NumEdges, edges)
	}
	var vw int64
	for _, w := range c.VW {
		vw += w
	}
	if vw != c.TotalVW {
		return fmt.Errorf("csr: TotalVW=%d, recomputed %d", c.TotalVW, vw)
	}
	return nil
}
