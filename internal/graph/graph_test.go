package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindAccount, "account"},
		{KindContract, "contract"},
		{Kind(0), "Kind(0)"},
		{Kind(9), "Kind(9)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	if !KindAccount.Valid() || !KindContract.Valid() {
		t.Error("declared kinds must be valid")
	}
	if Kind(0).Valid() || Kind(3).Valid() {
		t.Error("undeclared kinds must be invalid")
	}
}

func TestEnsureVertex(t *testing.T) {
	g := New()
	if !g.EnsureVertex(1, KindAccount) {
		t.Fatal("first EnsureVertex should create the vertex")
	}
	if g.EnsureVertex(1, KindContract) {
		t.Fatal("second EnsureVertex should be a no-op")
	}
	if got := g.VertexKind(1); got != KindAccount {
		t.Fatalf("kind changed on re-ensure: got %v", got)
	}
	if g.VertexCount() != 1 {
		t.Fatalf("VertexCount = %d, want 1", g.VertexCount())
	}
}

func TestAddInteractionBasics(t *testing.T) {
	g := New()
	if err := g.AddInteraction(1, 2, KindAccount, KindContract, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddInteraction(1, 2, KindAccount, KindContract, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeCount(); got != 1 {
		t.Errorf("EdgeCount = %d, want 1 (repeated interaction reuses edge)", got)
	}
	if got := g.EdgeWeight(1, 2); got != 3 {
		t.Errorf("EdgeWeight(1,2) = %d, want 3", got)
	}
	if got := g.EdgeWeight(2, 1); got != 0 {
		t.Errorf("EdgeWeight(2,1) = %d, want 0 (directed)", got)
	}
	if got := g.VertexWeight(1); got != 3 {
		t.Errorf("VertexWeight(1) = %d, want 3", got)
	}
	if got := g.VertexWeight(2); got != 3 {
		t.Errorf("VertexWeight(2) = %d, want 3", got)
	}
	if got := g.TotalEdgeWeight(); got != 3 {
		t.Errorf("TotalEdgeWeight = %d, want 3", got)
	}
	if got := g.TotalVertexWeight(); got != 6 {
		t.Errorf("TotalVertexWeight = %d, want 6", got)
	}
}

func TestAddInteractionRejectsBadInput(t *testing.T) {
	g := New()
	if err := g.AddInteraction(1, 2, KindAccount, KindAccount, 0); err == nil {
		t.Error("zero weight must be rejected")
	}
	if err := g.AddInteraction(1, 2, KindAccount, KindAccount, -4); err == nil {
		t.Error("negative weight must be rejected")
	}
	if err := g.AddInteraction(1, 2, Kind(0), KindAccount, 1); err == nil {
		t.Error("invalid from-kind must be rejected")
	}
	if err := g.AddInteraction(1, 2, KindAccount, Kind(7), 1); err == nil {
		t.Error("invalid to-kind must be rejected")
	}
	if g.VertexCount() != 0 || g.EdgeCount() != 0 {
		t.Error("failed interactions must not mutate the graph")
	}
}

func TestSelfLoopAddsNoEdge(t *testing.T) {
	g := New()
	if err := g.AddInteraction(5, 5, KindContract, KindContract, 2); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 0 {
		t.Errorf("self loop created an edge: EdgeCount = %d", g.EdgeCount())
	}
	if got := g.VertexWeight(5); got != 2 {
		t.Errorf("VertexWeight(5) = %d, want 2", got)
	}
	if g.TotalEdgeWeight() != 0 {
		t.Errorf("TotalEdgeWeight = %d, want 0", g.TotalEdgeWeight())
	}
}

func TestNeighborsCombinesDirections(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3) // 1->2 weight 3
	mustAdd(t, g, 2, 1, 4) // 2->1 weight 4
	mustAdd(t, g, 1, 3, 1) // 1->3 weight 1

	got := map[VertexID]int64{}
	g.Neighbors(1, func(v VertexID, w int64) bool {
		got[v] = w
		return true
	})
	if len(got) != 2 {
		t.Fatalf("Neighbors(1) visited %d vertices, want 2: %v", len(got), got)
	}
	if got[2] != 7 {
		t.Errorf("combined weight 1~2 = %d, want 7", got[2])
	}
	if got[3] != 1 {
		t.Errorf("combined weight 1~3 = %d, want 1", got[3])
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(1) = %d, want 2", d)
	}
	if d := g.Degree(3); d != 1 {
		t.Errorf("Degree(3) = %d, want 1", d)
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 1, 3, 1)
	mustAdd(t, g, 4, 1, 1)
	n := 0
	g.Neighbors(1, func(VertexID, int64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d neighbours, want 1", n)
	}
}

func TestVertexIDsSorted(t *testing.T) {
	g := New()
	for _, id := range []VertexID{42, 7, 99, 1} {
		g.EnsureVertex(id, KindAccount)
	}
	ids := g.VertexIDs()
	want := []VertexID{1, 7, 42, 99}
	if len(ids) != len(want) {
		t.Fatalf("len = %d, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("VertexIDs() = %v, want %v", ids, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 5)
	c := g.Clone()
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 3, 4, 1)

	if c.EdgeWeight(1, 2) != 5 {
		t.Errorf("clone edge weight mutated: %d", c.EdgeWeight(1, 2))
	}
	if c.VertexCount() != 2 {
		t.Errorf("clone vertex count mutated: %d", c.VertexCount())
	}
	if c.TotalEdgeWeight() != 5 {
		t.Errorf("clone total edge weight mutated: %d", c.TotalEdgeWeight())
	}
}

func TestEdgesIteration(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2, 3)
	mustAdd(t, g, 2, 3, 4)
	sum := int64(0)
	count := 0
	g.Edges(func(u, v VertexID, w int64) bool {
		sum += w
		count++
		return true
	})
	if count != 2 || sum != 7 {
		t.Errorf("Edges visited count=%d sum=%d, want 2 and 7", count, sum)
	}
}

// randomGraph builds a pseudo-random graph with n vertices and m interactions.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := New()
	for i := 0; i < m; i++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		ku, kv := KindAccount, KindAccount
		if u%3 == 0 {
			ku = KindContract
		}
		if v%3 == 0 {
			kv = KindContract
		}
		w := int64(1 + rng.Intn(5))
		if err := g.AddInteraction(u, v, ku, kv, w); err != nil {
			panic(err)
		}
	}
	return g
}

func TestPropertyTotalsConsistent(t *testing.T) {
	// Property: TotalEdgeWeight equals the sum over Edges, and
	// TotalVertexWeight equals the sum over Vertices, for any sequence of
	// interactions.
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		m := int(mRaw%120) + 1
		g := randomGraph(rng, n, m)

		var ew, vw int64
		g.Edges(func(_, _ VertexID, w int64) bool { ew += w; return true })
		g.Vertices(func(_ VertexID, _ Kind, w int64) bool { vw += w; return true })
		return ew == g.TotalEdgeWeight() && vw == g.TotalVertexWeight()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDegreeMatchesNeighbors(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 2
		m := int(mRaw%100) + 1
		g := randomGraph(rng, n, m)
		ok := true
		g.Vertices(func(id VertexID, _ Kind, _ int64) bool {
			visited := 0
			g.Neighbors(id, func(VertexID, int64) bool { visited++; return true })
			if visited != g.Degree(id) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustAdd(t *testing.T, g *Graph, u, v VertexID, w int64) {
	t.Helper()
	if err := g.AddInteraction(u, v, KindAccount, KindAccount, w); err != nil {
		t.Fatal(err)
	}
}
