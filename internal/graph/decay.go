package graph

import "math"

// Windowed decay and retirement. The graph tracks, per vertex and per
// directed edge, the epoch of the last interaction that touched it; a decay
// sweep (one per metric window in the simulator) advances the epoch,
// multiplies every live weight by a factor in (0,1], and retires whatever
// has not been touched for maxAge epochs. The effective decayed weight of
// an entry is therefore
//
//	w(age) = max(1, floor(w·factor^age))  while age < maxAge,
//	w(age) = 0                            at age >= maxAge,
//
// i.e. weights shrink exponentially toward the floor of one unit and reach
// zero exactly at the retention horizon. The min-1 clamp keeps integer
// weights from erasing the (majority) weight-1 edges after a single sweep,
// so the half-life governs *ranking* between heavy and light edges while
// the horizon alone governs *lifetime* — which is what bounds memory: the
// live graph is exactly the set of vertices and edges touched within the
// last maxAge epochs.
//
// Two sweep implementations share these semantics: the eager full scan
// below, and the scheduled O(touched) path in decay_sched.go (enabled by
// EnableScheduledDecay) that exploits the floor fixed point and horizon
// buckets to touch only what a sweep can actually change. DecaySweep picks
// between them; they are observably identical, pinned by a property test.
//
// Retired vertices release their slot to the free list (EnsureVertex reuses
// it on reappearance) and their ID is removed from the slot table or spill
// map. The caller keeps any external per-vertex state (the simulator's
// shard assignment stays sticky) and re-admits reappearing vertices through
// its normal first-sight path.

// DecayDelta summarizes what one decay sweep changed.
type DecayDelta struct {
	// Retired counts vertices dropped at the horizon.
	Retired int
	// EdgeDrops counts directed edges dropped at the horizon (each distinct
	// (u,v) pair once, however many row copies it had).
	EdgeDrops int
	// EdgeDecays counts directed edges whose weight changed (shrank) this
	// sweep, excluding drops.
	EdgeDecays int
	// Touched counts the entries the sweep actually visited — schedule
	// bucket and heavy-list entries on the scheduled path, live vertices
	// plus their out-row entries on the eager one. It is the sweep's work
	// metric: on the scheduled path it is O(traffic touched within the
	// horizon) regardless of live-graph size.
	Touched int
	// Lazy reports which implementation ran (true: scheduled).
	Lazy bool
}

// Quiet reports whether the sweep changed no edge: nothing dropped,
// nothing rescaled. Consumers maintaining edge-derived counters (the
// simulator's cut counters) can skip their update entirely on quiet
// sweeps.
func (d DecayDelta) Quiet() bool { return d.EdgeDrops == 0 && d.EdgeDecays == 0 }

// DecayWeights advances the graph's epoch and applies one decay sweep:
// every vertex and edge weight is multiplied by factor (rounded down,
// clamped to a minimum of one), and vertices and edges untouched for maxAge
// or more epochs — counting the epoch just opened — are dropped. It returns
// the number of retired vertices.
//
// factor must be in (0, 1] and maxAge at least 1; out-of-range arguments
// are clamped (see DecaySweep).
func (g *Graph) DecayWeights(factor float64, maxAge uint32) (retired int) {
	return g.DecaySweep(factor, maxAge, nil, nil).Retired
}

// DecayRetired is DecayWeights with a callback invoked for each vertex just
// before it retires (while its ID and records are still intact), letting
// callers maintain external per-vertex state — the simulator uses it to
// keep per-shard live counts exact.
func (g *Graph) DecayRetired(factor float64, maxAge uint32, onRetire func(VertexID)) (retired int) {
	return g.DecaySweep(factor, maxAge, onRetire, nil).Retired
}

// DecaySweep is the full decay entry point: one sweep with both callbacks
// and a change summary. onRetire fires per retiring vertex as in
// DecayRetired. onEdge fires exactly once per directed edge the sweep
// changes — onEdge(u, v, oldW, 0) for a horizon drop, onEdge(u, v, oldW,
// newW) for a weight rescale that actually changed the stored value — and
// never for edges left as they were, so a consumer can maintain
// edge-derived counters incrementally and skip windows whose delta is
// Quiet. Callbacks must not mutate the graph.
//
// Out-of-range arguments are clamped rather than silently ignored — a
// factor underflowing to 0 (a half-life vastly shorter than the sweep
// interval) must not read as "decay off" and let the graph grow without
// bound: factor <= 0 becomes the smallest positive float (weights collapse
// to the floor of one immediately; retirement still runs on age), factor >
// 1 becomes 1, maxAge 0 becomes 1.
//
// On a graph with scheduled decay enabled, a sweep at any horizon other
// than the scheduled one permanently reverts the graph to eager sweeps:
// the schedule's horizon buckets are keyed by the configured maxAge and
// cannot answer a different one.
func (g *Graph) DecaySweep(factor float64, maxAge uint32, onRetire func(VertexID), onEdge func(u, v VertexID, oldW, newW int64)) DecayDelta {
	if factor <= 0 {
		factor = math.SmallestNonzeroFloat64
	}
	if factor > 1 {
		factor = 1
	}
	if maxAge < 1 {
		maxAge = 1
	}
	if g.sched != nil && g.sched.maxAge != maxAge {
		g.sched = nil
	}
	if g.sched != nil {
		return g.scheduledSweep(factor, onRetire, onEdge)
	}
	return g.eagerSweep(factor, maxAge, onRetire, onEdge)
}

// eagerSweep is the full-scan sweep: every slot ever allocated is visited
// (free slots cost one kind check each, so the scan is O(peak live size))
// and weight work is proportional to the live graph; aggregate counters
// (EdgeCount, TotalEdgeWeight, TotalVertexWeight) are rebuilt during the
// sweep.
//
// The epoch/touch invariant that makes the sweep safe: a vertex's touch is
// at least the touch of every incident edge (AddInteraction stamps both
// endpoints), so by the time a vertex ages out, every incident edge has
// already been dropped — from both of its row copies, which always carry
// identical touch stamps — and retirement never leaves a dangling edge.
// onEdge consequently fires from exactly one place per directed edge: the
// canonical (out) copy, either in the owner's decayRow pass or, for a
// retiring owner whose rows are dropped wholesale, in the retirement
// branch below.
func (g *Graph) eagerSweep(factor float64, maxAge uint32, onRetire func(VertexID), onEdge func(u, v VertexID, oldW, newW int64)) DecayDelta {
	var delta DecayDelta
	g.epoch++
	g.numEdges = 0
	g.totalEdgeWeight = 0
	g.totalVertWeight = 0
	for s := range g.ids {
		if g.kinds[s] == 0 {
			continue // already free
		}
		delta.Touched++
		if g.epoch-g.touch[s] >= maxAge {
			if onRetire != nil {
				onRetire(g.ids[s])
			}
			// The out row holds this vertex's canonical edge copies; they
			// vanish with the slot (the mirror copies in live neighbours'
			// in rows age out in those neighbours' decayRow pass, silently).
			r := &g.out[s]
			delta.EdgeDrops += len(r.e)
			if onEdge != nil {
				for i := range r.e {
					onEdge(g.ids[s], r.e[i].to, r.e[i].w, 0)
				}
			}
			g.retireSlot(int32(s))
			delta.Retired++
			continue
		}
		g.decayRow(&g.out[s], factor, maxAge, g.ids[s], true, onEdge, &delta)
		g.decayRow(&g.in[s], factor, maxAge, 0, false, nil, nil)
		w := int64(float64(g.weights[s]) * factor)
		if w < 1 {
			w = 1
		}
		g.weights[s] = w
		g.totalVertWeight += w
		g.numEdges += len(g.out[s].e)
		for i := range g.out[s].e {
			g.totalEdgeWeight += g.out[s].e[i].w
		}
	}
	return delta
}

// decayRow decays one adjacency row in place: expired entries are dropped,
// surviving weights shrink by factor with a floor of one. The position
// index is rebuilt (or dropped) to match the compacted row. canon marks the
// row as holding canonical (out) edge copies owned by vertex u: drops and
// rescales are then counted into delta and reported through onEdge; mirror
// (in) rows pass canon false and change silently.
func (g *Graph) decayRow(r *row, factor float64, maxAge uint32, u VertexID, canon bool, onEdge func(u, v VertexID, oldW, newW int64), delta *DecayDelta) {
	j := 0
	for i := range r.e {
		if canon {
			delta.Touched++
		}
		if g.epoch-r.e[i].touch >= maxAge {
			if canon {
				delta.EdgeDrops++
				if onEdge != nil {
					onEdge(u, r.e[i].to, r.e[i].w, 0)
				}
			}
			continue
		}
		w := int64(float64(r.e[i].w) * factor)
		if w < 1 {
			w = 1
		}
		if canon && w != r.e[i].w {
			delta.EdgeDecays++
			if onEdge != nil {
				onEdge(u, r.e[i].to, r.e[i].w, w)
			}
		}
		r.e[j] = r.e[i]
		r.e[j].w = w
		j++
	}
	if j == len(r.e) {
		// Nothing dropped: the rescale already happened in place (j == i
		// throughout), positions are unchanged, the index stays valid.
		return
	}
	r.e = r.e[:j]
	if r.idx == nil {
		return
	}
	if len(r.e) <= rowIndexThreshold {
		r.idx = nil
		return
	}
	clear(r.idx)
	for i := range r.e {
		r.idx[r.e[i].to] = int32(i)
	}
}

// retireSlot frees one vertex slot: the ID is unindexed, the records are
// zeroed (the zero Kind marks the slot free) and the slot joins the free
// list. The vertex's rows are dropped wholesale — every incident edge is at
// least as old as the vertex, so the same sweep drops the mirror copies
// from the rows of its (live) neighbours.
func (g *Graph) retireSlot(s int32) {
	id := g.ids[s]
	if id < VertexID(len(g.slot)) {
		g.slot[id] = -1
	} else if g.spill != nil {
		delete(g.spill, id)
	}
	g.ids[s] = 0
	g.kinds[s] = 0
	g.weights[s] = 0
	g.out[s] = row{}
	g.in[s] = row{}
	g.free = append(g.free, s)
}

// Epoch returns the number of decay sweeps applied so far.
func (g *Graph) Epoch() uint32 { return g.epoch }
