package graph

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions controls DOT export.
type DOTOptions struct {
	// Name is the graph name in the DOT header. Defaults to "ethereum".
	Name string
	// MaxVertices truncates the export to the first MaxVertices vertices
	// (in ascending ID order) to keep renderings readable. Zero means no
	// limit.
	MaxVertices int
	// ShowWeights annotates edges with their weights when the weight is
	// greater than one, matching Fig. 2 of the paper.
	ShowWeights bool
	// Shard, when non-nil, colours each vertex by its shard assignment.
	Shard func(VertexID) (int, bool)
}

// shardPalette colours shards in DOT output; shard s uses entry s mod len.
var shardPalette = []string{
	"lightblue", "lightsalmon", "palegreen", "plum",
	"khaki", "lightcyan", "mistyrose", "honeydew",
}

// WriteDOT renders g in Graphviz DOT format: accounts as solid ellipses,
// contracts as dashed boxes, edge labels carrying multiplicities — the style
// of Fig. 2 in the paper.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "ethereum"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", name)
	fmt.Fprintf(bw, "  rankdir=LR;\n  node [fontsize=10];\n")

	ids := g.VertexIDs()
	if opts.MaxVertices > 0 && len(ids) > opts.MaxVertices {
		ids = ids[:opts.MaxVertices]
	}
	included := make(map[VertexID]bool, len(ids))
	for _, id := range ids {
		included[id] = true
	}
	for _, id := range ids {
		style := "solid"
		shape := "ellipse"
		if g.VertexKind(id) == KindContract {
			style = "dashed"
			shape = "box"
		}
		attrs := fmt.Sprintf("shape=%s, style=%s", shape, style)
		if opts.Shard != nil {
			if s, ok := opts.Shard(id); ok {
				attrs = fmt.Sprintf("%s, fillcolor=%s, style=\"%s,filled\"",
					fmt.Sprintf("shape=%s", shape), shardPalette[s%len(shardPalette)], style)
			}
		}
		fmt.Fprintf(bw, "  %d [%s];\n", id, attrs)
	}
	var err error
	g.Edges(func(u, v VertexID, wgt int64) bool {
		if !included[u] || !included[v] {
			return true
		}
		if opts.ShowWeights && wgt > 1 {
			_, err = fmt.Fprintf(bw, "  %d -> %d [label=\"%d\"];\n", u, v, wgt)
		} else {
			_, err = fmt.Fprintf(bw, "  %d -> %d;\n", u, v)
		}
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("graph: writing DOT edges: %w", err)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
