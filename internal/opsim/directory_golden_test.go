package opsim

import (
	"reflect"
	"testing"
	"time"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
)

// stripMeasurement zeroes the fields two otherwise identical runs are
// allowed to differ on: wall-clock timing and the resolver's own
// reporting. Everything else — receipts-derived stats, windows, the
// simulator result (which covers placements, moves and homes) — must
// match byte for byte.
func stripMeasurement(r *Result) *Result {
	c := *r
	c.StepNanos = 0
	c.DirectoryStats = nil
	c.DirectoryView = nil
	if c.Sweeps != nil {
		// SweepNanos is wall clock; the rest of each observation (live
		// sizes, touched counts, skip flags) is simulation state and must
		// still match.
		sweeps := make([]sim.SweepObs, len(c.Sweeps))
		copy(sweeps, c.Sweeps)
		for i := range sweeps {
			sweeps[i].SweepNanos = 0
		}
		c.Sweeps = sweeps
	}
	return &c
}

// TestDirectoryResolvedRunsIdentical is the tentpole's golden contract:
// resolving every home through the epoch-versioned directory's snapshots
// must be byte-identical to resolving through the simulator's raw
// assignment — across methods, both multi-shard models, and with decay
// (placements, waves AND retirement spill on the publisher path).
func TestDirectoryResolvedRunsIdentical(t *testing.T) {
	gt := smallTrace(t)
	type variant struct {
		name  string
		cfg   Config
		decay bool
	}
	var variants []variant
	for _, model := range []shardchain.Model{shardchain.ModelReceipts, shardchain.ModelMigration} {
		for _, m := range []sim.Method{sim.MethodHash, sim.MethodTRMetis} {
			variants = append(variants, variant{
				name: m.String() + "/" + model.String(),
				cfg:  cfgFor(m, model, 4),
			})
		}
		// Decay exercises the cold tier: retirements spill, reappearing
		// vertices resolve from the cold map, waves rehydrate.
		dc := cfgFor(sim.MethodTRMetis, model, 4)
		dc.Sim.DecayHalfLife = 12 * time.Hour
		dc.Sim.Horizon = 24 * time.Hour
		variants = append(variants, variant{
			name: "TR-METIS-decay/" + model.String(), cfg: dc, decay: true,
		})
	}

	for _, v := range variants {
		dirCfg := v.cfg
		dirCfg.Resolver = ResolverDirectory
		asgCfg := v.cfg
		asgCfg.Resolver = ResolverAssignment

		dres, err := Run(gt, dirCfg)
		if err != nil {
			t.Fatalf("%s directory: %v", v.name, err)
		}
		ares, err := Run(gt, asgCfg)
		if err != nil {
			t.Fatalf("%s assignment: %v", v.name, err)
		}
		if dres.DirectoryStats == nil {
			t.Fatalf("%s: directory run has no directory stats", v.name)
		}
		if ares.DirectoryStats != nil {
			t.Fatalf("%s: assignment run built a directory", v.name)
		}
		if !reflect.DeepEqual(stripMeasurement(dres), stripMeasurement(ares)) {
			t.Errorf("%s: directory-resolved run diverged from assignment-resolved run", v.name)
		}
		// The directory's final view must cover exactly the assignment:
		// every assigned vertex resolves to the same shard.
		st := dres.DirectoryStats
		if st.Entries == 0 || st.Flips == 0 {
			t.Errorf("%s: directory never exercised (entries=%d flips=%d)",
				v.name, st.Entries, st.Flips)
		}
		if v.decay {
			if st.Retired == 0 {
				t.Errorf("%s: decay run spilled nothing to the cold tier", v.name)
			}
		} else if st.Cold != 0 {
			t.Errorf("%s: cold entries without decay: %d", v.name, st.Cold)
		}
	}
}

// TestDirectoryFinalViewMatchesAssignment cross-checks a publisher-fed
// directory entry-by-entry against the simulator's assignment after a
// decayed repartitioning replay: the publisher must not lose, duplicate or
// misroute a single vertex across place/wave/retire traffic, in either
// direction.
func TestDirectoryFinalViewMatchesAssignment(t *testing.T) {
	gt := smallTrace(t)
	dir := directory.New(directory.Config{})
	pub := directory.NewPublisher(dir)
	cfg := sim.Config{
		Method: sim.MethodTRMetis, K: 4,
		Window:            4 * time.Hour,
		MinRepartitionGap: 24 * time.Hour,
		TriggerWindows:    2,
		DecayHalfLife:     12 * time.Hour,
		Horizon:           24 * time.Hour,
		OnPlace:           pub.OnPlace,
		OnMove:            pub.OnMove,
		OnRetire:          pub.OnRetire,
	}
	cfg.OnRepartition = func(_ time.Time, moves int) {
		if err := pub.OnRepartition(moves); err != nil {
			t.Fatal(err)
		}
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range gt.Records {
		if err := s.Process(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Finish()

	snap := dir.Current()
	// Directory → assignment: every directory entry matches.
	n := 0
	snap.Each(func(v graph.VertexID, shard int) bool {
		n++
		got, ok := s.Assignment().ShardOf(v)
		if !ok || got != shard {
			t.Fatalf("vertex %d: directory says %d, assignment says %d (ok=%v)", v, shard, got, ok)
		}
		return true
	})
	// Assignment → directory: same cardinality means same coverage.
	if n != s.Assignment().Len() {
		t.Fatalf("directory holds %d entries, assignment %d", n, s.Assignment().Len())
	}
	if st := dir.Stats(); st.Retired == 0 || st.Cold == 0 {
		t.Errorf("decay replay never spilled to the cold tier: %+v", st)
	}
}
