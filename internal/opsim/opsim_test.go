package opsim

import (
	"testing"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

// smallTrace generates a one-week history small enough for unit tests.
func smallTrace(t *testing.T) *sim.GeneratedTrace {
	t.Helper()
	eras := []workload.Era{{
		Name:          "mini",
		Start:         time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		End:           time.Date(2017, 1, 8, 0, 0, 0, 0, time.UTC),
		TxPerDayStart: 10_000, TxPerDayEnd: 10_000, Kind: workload.GrowthLinear,
		NewAccountFrac: 0.2, DeploysPerDay: 5,
		Mix: workload.TxMix{Transfer: 0.6, Token: 0.2, Wallet: 0.1, Crowdsale: 0.05, Game: 0.03, Airdrop: 0.02},
	}}
	gt, err := sim.Generate(workload.Config{Seed: 5, Scale: 0.05, Eras: eras, BlockInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Records) == 0 {
		t.Fatal("empty trace")
	}
	return gt
}

func cfgFor(method sim.Method, model shardchain.Model, k int) Config {
	return Config{
		Sim: sim.Config{
			Method: method, K: k,
			Window:           4 * time.Hour,
			RepartitionEvery: 48 * time.Hour,
		},
		Model: model,
	}
}

func TestRunEveryMethodUnderBothModels(t *testing.T) {
	gt := smallTrace(t)
	for _, model := range []shardchain.Model{shardchain.ModelReceipts, shardchain.ModelMigration} {
		for _, m := range sim.Methods() {
			res, err := Run(gt, cfgFor(m, model, 4))
			if err != nil {
				t.Fatalf("%v/%v: %v", m, model, err)
			}
			if res.Replayed != int64(len(gt.Records)) {
				t.Errorf("%v/%v: replayed %d of %d records", m, model, res.Replayed, len(gt.Records))
			}
			total := res.Totals.LocalTxs + res.Totals.CrossTxs + res.Totals.Failed
			if total != res.Replayed {
				t.Errorf("%v/%v: executed %d txs for %d records", m, model, total, res.Replayed)
			}
			if res.Totals.Failed != 0 {
				t.Errorf("%v/%v: %d failed txs; funded replay must validate cleanly",
					m, model, res.Totals.Failed)
			}
			if len(res.Windows) == 0 || res.Sim == nil {
				t.Fatalf("%v/%v: missing windows or sim result", m, model)
			}
			// The per-window deltas must sum to the run totals.
			var sum shardchain.Stats
			var inter int64
			for _, w := range res.Windows {
				sum.Messages += w.Messages
				sum.ReceiptsSettled += w.ReceiptsSettled
				sum.SettlementBlocks += w.SettlementBlocks
				sum.Migrations += w.Migrations
				sum.MigratedSlots += w.MigratedSlots
				sum.Failed += w.Failed
				inter += w.Interactions
			}
			if sum.Messages != res.Totals.Messages ||
				sum.ReceiptsSettled != res.Totals.ReceiptsSettled ||
				sum.SettlementBlocks != res.Totals.SettlementBlocks ||
				sum.Migrations != res.Totals.Migrations ||
				sum.MigratedSlots != res.Totals.MigratedSlots {
				t.Errorf("%v/%v: window deltas do not sum to totals: %+v vs %+v",
					m, model, sum, res.Totals)
			}
			if inter != res.Replayed {
				t.Errorf("%v/%v: window interactions %d != replayed %d", m, model, inter, res.Replayed)
			}
			// Model invariants.
			switch model {
			case shardchain.ModelReceipts:
				if res.Totals.Migrations != 0 {
					t.Errorf("%v/receipts: %d migrations; receipts must never move state",
						m, res.Totals.Migrations)
				}
				if res.Totals.CrossTxs > 0 && res.Totals.ReceiptsSettled == 0 {
					t.Errorf("%v/receipts: cross txs but nothing settled", m)
				}
			case shardchain.ModelMigration:
				if res.Totals.CrossTxs != 0 {
					t.Errorf("%v/migration: %d cross txs; migration makes every tx local",
						m, res.Totals.CrossTxs)
				}
				if res.Totals.Messages > 0 && res.Totals.Migrations == 0 {
					t.Errorf("%v/migration: messages without migrations", m)
				}
			}
		}
	}
}

func TestCutProxyHoldsOperationally(t *testing.T) {
	// The paper's central claim, end to end: a method with a lower dynamic
	// edge-cut must produce fewer cross-shard messages on the live chain
	// than stateless hashing, under the receipts model.
	gt := smallTrace(t)
	hash, err := Run(gt, cfgFor(sim.MethodHash, shardchain.ModelReceipts, 4))
	if err != nil {
		t.Fatal(err)
	}
	metis, err := Run(gt, cfgFor(sim.MethodMetis, shardchain.ModelReceipts, 4))
	if err != nil {
		t.Fatal(err)
	}
	if metis.Sim.OverallDynamicCut >= hash.Sim.OverallDynamicCut {
		t.Skipf("metis cut %.3f not below hash %.3f on this trace; proxy test void",
			metis.Sim.OverallDynamicCut, hash.Sim.OverallDynamicCut)
	}
	if metis.Totals.Messages >= hash.Totals.Messages {
		t.Errorf("metis messages %d not below hash %d despite lower cut (%.3f vs %.3f)",
			metis.Totals.Messages, hash.Totals.Messages,
			metis.Sim.OverallDynamicCut, hash.Sim.OverallDynamicCut)
	}
	if metis.CrossFraction() >= hash.CrossFraction() {
		t.Errorf("metis cross fraction %.3f not below hash %.3f",
			metis.CrossFraction(), hash.CrossFraction())
	}
}

func TestRepartitionDrivesMigrationBatches(t *testing.T) {
	// Under ModelMigration, a repartitioning method must turn its
	// assignment changes into real state movement on the chain.
	gt := smallTrace(t)
	res, err := Run(gt, cfgFor(sim.MethodMetis, shardchain.ModelMigration, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.Repartitions == 0 {
		t.Fatal("config must trigger at least one repartition")
	}
	if res.Totals.Migrations == 0 {
		t.Error("repartitions produced no chain migrations")
	}
	// Repartition windows must show migration activity beyond the steady
	// state: the windows flagged by the simulator carry moved slots.
	var repartSlots int64
	for i, w := range res.Sim.Windows {
		if w.Repartitioned && i < len(res.Windows) {
			repartSlots += res.Windows[i].MigratedSlots
		}
	}
	if repartSlots == 0 && res.Totals.MigratedSlots > 0 {
		t.Error("no migrated slots in any repartition window")
	}
}

func TestParallelEngineMatchesSerialOverWorkload(t *testing.T) {
	// The full bridge over a generated workload slice: the parallel
	// per-shard engine must reproduce the serial engine's windows and
	// totals bit for bit, under both models (run with -race in CI, this is
	// also the bridge-level data-race check for the fan-out).
	gt := smallTrace(t)
	for _, model := range []shardchain.Model{shardchain.ModelReceipts, shardchain.ModelMigration} {
		for _, m := range []sim.Method{sim.MethodHash, sim.MethodRMetis} {
			serialCfg := cfgFor(m, model, 4)
			parallelCfg := serialCfg
			parallelCfg.Parallel = true
			a, err := Run(gt, serialCfg)
			if err != nil {
				t.Fatalf("%v/%v serial: %v", m, model, err)
			}
			b, err := Run(gt, parallelCfg)
			if err != nil {
				t.Fatalf("%v/%v parallel: %v", m, model, err)
			}
			if !b.Parallel || a.Parallel {
				t.Fatalf("%v/%v: engine flags not recorded", m, model)
			}
			if a.Totals != b.Totals {
				t.Errorf("%v/%v: totals diverge:\nserial:   %+v\nparallel: %+v", m, model, a.Totals, b.Totals)
			}
			if a.Replayed != b.Replayed || a.Blocks != b.Blocks {
				t.Errorf("%v/%v: replayed/blocks diverge: %d/%d vs %d/%d",
					m, model, a.Replayed, a.Blocks, b.Replayed, b.Blocks)
			}
			if len(a.Windows) != len(b.Windows) {
				t.Fatalf("%v/%v: window counts differ: %d vs %d", m, model, len(a.Windows), len(b.Windows))
			}
			for i := range a.Windows {
				if a.Windows[i] != b.Windows[i] {
					t.Errorf("%v/%v: window %d diverges:\nserial:   %+v\nparallel: %+v",
						m, model, i, a.Windows[i], b.Windows[i])
				}
			}
		}
	}
}

func TestWindowMeanSettlementEmptyDenominator(t *testing.T) {
	// Regression: a window in which nothing settled must report 0, never
	// NaN — the ops CSV used to print the raw quotient.
	if got := (WindowStat{}).MeanSettlement(); got != 0 {
		t.Errorf("empty window MeanSettlement = %v, want 0", got)
	}
	if got := (&Result{}).MeanSettlement(); got != 0 {
		t.Errorf("empty result MeanSettlement = %v, want 0", got)
	}
	w := WindowStat{ReceiptsSettled: 4, SettlementBlocks: 6}
	if got := w.MeanSettlement(); got != 1.5 {
		t.Errorf("MeanSettlement = %v, want 1.5", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	gt := smallTrace(t)
	a, err := Run(gt, cfgFor(sim.MethodRMetis, shardchain.ModelMigration, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(gt, cfgFor(sim.MethodRMetis, shardchain.ModelMigration, 4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Totals != b.Totals {
		t.Errorf("same trace and config must reproduce identical totals:\n%+v\n%+v", a.Totals, b.Totals)
	}
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Errorf("window %d differs: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
}

func TestFailedTxDoesNotCascadeNonceMismatches(t *testing.T) {
	// A transfer above the sender's funding is rejected without a nonce
	// bump on the chain; the runner must resync its tracked nonce so the
	// sender's later transactions still validate.
	reg := trace.NewRegistry()
	a := reg.ID(types.AddressFromSeq(1))
	b := reg.ID(types.AddressFromSeq(2))
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	gt := &sim.GeneratedTrace{
		Registry: reg,
		Records: []trace.Record{
			{Block: 1, Time: base, Kind: evm.KindTransaction, From: a, To: b, Value: 150},
			{Block: 2, Time: base + 3600, Kind: evm.KindTransaction, From: a, To: b, Value: 50},
		},
	}
	cfg := cfgFor(sim.MethodHash, shardchain.ModelReceipts, 2)
	cfg.Fund = evm.WordFromUint64(100)
	res, err := Run(gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Failed != 1 {
		t.Errorf("failed = %d, want exactly the overdraft", res.Totals.Failed)
	}
	if got := res.Totals.LocalTxs + res.Totals.CrossTxs; got != 1 {
		t.Errorf("executed = %d, want 1 (the post-failure transfer must validate)", got)
	}
}

func TestRunValidation(t *testing.T) {
	gt := smallTrace(t)
	if _, err := Run(gt, Config{Sim: sim.Config{Method: sim.Method(99)}, Model: shardchain.ModelReceipts}); err == nil {
		t.Error("bad method must error")
	}
	if _, err := Run(gt, Config{Sim: sim.Config{Method: sim.MethodHash}, Model: shardchain.Model(9)}); err == nil {
		t.Error("bad model must error")
	}
}
