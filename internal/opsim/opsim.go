// Package opsim is the operational co-simulation bridge: it replays a
// generated workload's interaction records through a live
// shardchain.ShardChain while a sim.Simulator consumes the same records in
// lockstep. The simulator supplies placement (first-seen accounts are homed
// by its method's rule) and fires its repartitioning policy; every
// repartition is translated into real work on the chain — a batch of state
// migrations under shardchain.ModelMigration, or a re-homing of future
// placements under shardchain.ModelReceipts, where existing state stays put
// and only accounts that have not materialised yet follow the new
// assignment.
//
// The result is the measurement layer the paper declined to build: for each
// of the five methods under both multi-shard models, the abstract edge-cut
// curve of Fig. 3 gains an operational twin — cross-shard messages,
// settlement latency, migrated storage slots and failed transactions per
// four-hour window.
//
// Fidelity notes: records are replayed as plain value transfers (contract
// code is not installed, so receipts settle value without continuations),
// values are clamped so a flat per-account funding covers any history, and
// contracts materialise their end-of-history storage footprint as synthetic
// slots so migration costs are visible in moved state, not just move
// counts.
package opsim

import (
	"encoding/binary"
	"fmt"
	"time"

	"ethpart/internal/chain"
	"ethpart/internal/directory"
	"ethpart/internal/evm"
	"ethpart/internal/fault"
	"ethpart/internal/graph"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/types"
)

// Resolver selects how the live chain resolves account homes.
type Resolver int

const (
	// ResolverDirectory (the default) feeds the simulator's placement
	// callbacks through a directory.Publisher into a concurrent
	// epoch-versioned placement directory and resolves every home through
	// its published snapshots — the serving-layer path. Each chain block
	// pins one directory epoch (shardchain.Config.AssignSnapshot), and
	// results are byte-identical to the raw-assignment path by
	// construction (pinned by the golden test in directory_golden_test.go).
	ResolverDirectory Resolver = iota
	// ResolverAssignment resolves straight from the simulator's live
	// assignment — the pre-directory oracle path, kept for the
	// byte-identity golden test.
	ResolverAssignment
)

// Config parameterises a co-simulation run.
type Config struct {
	// Sim is the simulator configuration: method, shard count, window and
	// repartitioning policy. Its Window also paces the operational windows
	// so the two curves align (zero fields take the simulator defaults).
	Sim sim.Config
	// Model is the multi-shard handling class of the live chain.
	Model shardchain.Model
	// Chain configures the per-shard chains (zero value → defaults).
	Chain chain.Config
	// Fund is the balance credited to every first-seen account (zero →
	// 1<<50, ample for any clamped-value history).
	Fund evm.Word
	// MaxValue clamps per-record transfer values (zero → 1e6) so funding
	// always covers a sender's lifetime of transfers.
	MaxValue uint64
	// MaxSettleSteps bounds the empty blocks stepped at the end of the run
	// to drain in-flight receipts (zero → 64).
	MaxSettleSteps int
	// Parallel runs the live chain on shardchain's parallel per-shard
	// engine. The replayed results (windows, totals) are byte-identical to
	// the serial engine's; only the timing fields differ.
	Parallel bool
	// Resolver selects the home-resolution path; the zero value is
	// ResolverDirectory. Both resolvers produce byte-identical results.
	Resolver Resolver
	// Fault, when non-nil, arms the deterministic fault-injection plane:
	// the chain takes the schedule's crash/message faults, and (under
	// ResolverDirectory) the publisher commits through a
	// fault.FlakyDirectory injecting stalled waves and transient commit
	// failures. Chain blocks that pin an epoch while a wave is stalled are
	// counted as stale in the fault metrics.
	Fault *fault.Injector
	// Capture computes the convergence artifacts (StateRoots, HomesHash,
	// ReceiptsHash) at end of run — the byte-identity evidence chaos
	// scenarios compare against the fault-free oracle. Off by default:
	// capturing hashes every shard's state, which golden tests that
	// DeepEqual whole Results neither need nor want to pay for.
	Capture bool
	// DirCommitter, when non-nil, wraps the run's directory in a caller-
	// supplied committer (ResolverDirectory only) — the seam the networked
	// serving tier uses to splice a dirserve.Fanout under the publisher.
	// With Fault also armed the chain is Publisher → FlakyDirectory →
	// DirCommitter → Directory, so replicas receive exactly the landed
	// commit sequence with real epoch numbers. The caller owns the
	// committer's lifecycle (e.g. closing fan-out feeds after Run returns).
	DirCommitter func(d *directory.Directory) (directory.Committer, error)
	// DirHints, when non-nil, is attached to the publisher so promotion
	// hints (cold-tier lookups pushed by serving processes) drain into each
	// commit's Promote lane. ResolverDirectory only.
	DirHints *directory.HintRing
}

func (c Config) withDefaults() Config {
	if c.Sim.K <= 0 {
		c.Sim.K = 2
	}
	if c.Sim.Window <= 0 {
		c.Sim.Window = 4 * time.Hour
	}
	if c.Chain.BlockGasLimit == 0 {
		c.Chain = chain.DefaultConfig()
	}
	if c.Fund.IsZero() {
		c.Fund = evm.WordFromUint64(1 << 50)
	}
	if c.MaxValue == 0 {
		c.MaxValue = 1_000_000
	}
	if c.MaxSettleSteps <= 0 {
		c.MaxSettleSteps = 64
	}
	return c
}

// WindowStat is one operational data point: what the chain did during one
// metric window, alongside the simulator's dynamic cut for the same window.
type WindowStat struct {
	Start time.Time
	// Interactions is the number of records replayed in the window.
	Interactions int64
	// LocalTxs and CrossTxs split executed transactions by locality.
	LocalTxs, CrossTxs int64
	// Messages counts cross-shard messages (receipts and state transfers).
	Messages int64
	// ReceiptsSettled and SettlementBlocks measure settlement latency:
	// mean latency is SettlementBlocks/ReceiptsSettled.
	ReceiptsSettled  int64
	SettlementBlocks int64
	// Migrations and MigratedSlots count account moves and relocated
	// storage.
	Migrations    int64
	MigratedSlots int64
	// Failed counts transactions rejected by validation.
	Failed int64
	// DynamicCut is the simulator's cross-shard fraction for the same
	// window — the abstract curve the operational numbers shadow.
	DynamicCut float64
	// Shards is the number of chain lanes the window was served with —
	// constant without the autoscaler, the shards-provisioned-over-time
	// series with it.
	Shards int
}

// MeanSettlement returns the window's mean settlement latency in blocks
// (zero when nothing settled).
func (w WindowStat) MeanSettlement() float64 {
	if w.ReceiptsSettled == 0 {
		return 0
	}
	return float64(w.SettlementBlocks) / float64(w.ReceiptsSettled)
}

// Result is the outcome of a co-simulation run.
type Result struct {
	Method sim.Method
	Model  shardchain.Model
	K      int
	// Windows are the per-window operational stats, aligned with Sim.Windows.
	Windows []WindowStat
	// Totals are the chain's whole-run counters.
	Totals shardchain.Stats
	// Replayed counts the records driven through the chain.
	Replayed int64
	// WaveMigrations/WaveMigratedSlots isolate the share of Totals'
	// migration cost caused by repartition waves (applyMoves batches) and
	// merge drains, as opposed to the traffic-driven sender/callee
	// migrations the migration model performs inline. Under ModelReceipts
	// they are zero except for merge resizes, whose decommissioned lanes
	// must evacuate state regardless of the multi-shard model.
	WaveMigrations    int64
	WaveMigratedSlots int64
	// Sim is the lockstep simulator's result (the dynamic-cut curves).
	Sim *sim.Result
	// Sweeps are the simulator's per-window decay-sweep observations
	// (live-graph size, sweep wall time, whether cut maintenance skipped),
	// parallel to Sim.Windows. SweepNanos entries are measurement, not
	// simulation state — like StepNanos, they vary between identical runs.
	Sweeps []sim.SweepObs
	// Parallel records which chain engine ran.
	Parallel bool
	// DirectoryStats summarises the placement directory at end of run
	// (nil under ResolverAssignment). It is reporting, not replayed state:
	// both resolvers agree on every other field.
	DirectoryStats *directory.Stats
	// DirectoryView is the directory's final published snapshot (nil under
	// ResolverAssignment), taken after stalled waves drain — the in-process
	// oracle a networked chaos run cross-checks replica views against.
	DirectoryView *directory.Snapshot
	// Blocks counts the blocks stepped (including the settle-drain steps)
	// and StepNanos the wall-clock spent inside ShardChain.Step. They are
	// measurement, not simulation state: two runs of the same trace agree
	// on every window and total but not on StepNanos.
	Blocks    int64
	StepNanos int64
	// Convergence artifacts, computed only with Config.Capture: per-shard
	// final state roots, a hash over every known account's home, and a
	// running hash over every transaction receipt in replay order. A
	// faulty run converges iff all three (plus Totals and Windows) equal
	// the fault-free oracle's.
	StateRoots   []types.Hash
	HomesHash    types.Hash
	ReceiptsHash types.Hash
	// Fault is the injector's metrics snapshot (nil without Config.Fault).
	Fault *fault.MetricsSnapshot
}

// MsPerBlock returns the mean wall-clock per block step in milliseconds.
func (r *Result) MsPerBlock() float64 {
	if r.Blocks == 0 {
		return 0
	}
	return float64(r.StepNanos) / float64(r.Blocks) / 1e6
}

// MeanSettlement returns the run-level mean settlement latency in blocks.
func (r *Result) MeanSettlement() float64 {
	if r.Totals.ReceiptsSettled == 0 {
		return 0
	}
	return float64(r.Totals.SettlementBlocks) / float64(r.Totals.ReceiptsSettled)
}

// CrossFraction returns the executed cross-shard transaction fraction.
func (r *Result) CrossFraction() float64 {
	total := r.Totals.LocalTxs + r.Totals.CrossTxs
	if total == 0 {
		return 0
	}
	return float64(r.Totals.CrossTxs) / float64(total)
}

// move is one collected assignment change from a repartition batch.
type move struct {
	v  graph.VertexID
	to int
}

// runner holds the live state of one co-simulation.
type runner struct {
	cfg Config
	gt  *sim.GeneratedTrace
	s   *sim.Simulator
	sc  *shardchain.ShardChain

	pendingMoves []move
	pendingTxs   []*chain.Transaction
	curBlock     uint64
	haveBlock    bool

	// pub/dir are the serving directory fed by the simulator's callbacks
	// (ResolverDirectory only); pubErr carries a publisher failure out of
	// the void callbacks. flaky is the fault-injecting committer wedged
	// between them when Config.Fault is armed. resizeErr likewise carries
	// a failed resize bridge out of the void OnResize callback.
	pub       *directory.Publisher
	dir       *directory.Directory
	flaky     *fault.FlakyDirectory
	pubErr    error
	resizeErr error

	// receiptsHash accumulates the replay-order receipt hash (Capture).
	receiptsHash types.Hash
	// lagging tracks whether the previous block pinned a stale epoch, so
	// re-pins (lag returning to zero) can be counted.
	lagging bool

	seen   []bool // vertex ID → funded/materialised on the chain
	nonces map[types.Address]uint64

	winStart  time.Time
	started   bool
	lastStats shardchain.Stats
	res       *Result
}

// Run replays gt through a live sharded chain under cfg.
func Run(gt *sim.GeneratedTrace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Sim.StorageSlots == nil {
		cfg.Sim.StorageSlots = gt.StorageSlots
	}
	r := &runner{
		cfg:    cfg,
		gt:     gt,
		seen:   make([]bool, gt.Registry.Len()),
		nonces: make(map[types.Address]uint64),
	}
	simCfg := cfg.Sim
	userMove := simCfg.OnMove
	simCfg.OnMove = func(v graph.VertexID, from, to int) {
		if userMove != nil {
			userMove(v, from, to)
		}
		r.pendingMoves = append(r.pendingMoves, move{v, to})
	}
	userResize := simCfg.OnResize
	simCfg.OnResize = func(at time.Time, oldK, newK, moves int) {
		if userResize != nil {
			userResize(at, oldK, newK, moves)
		}
		if r.resizeErr == nil {
			r.resizeErr = r.applyResize(oldK, newK, moves)
		}
	}
	scCfg := shardchain.Config{
		K: cfg.Sim.K, Model: cfg.Model, Chain: cfg.Chain, Parallel: cfg.Parallel,
		Fault: cfg.Fault,
	}
	if cfg.Resolver == ResolverDirectory {
		// The simulator's placement stream publishes into the serving
		// directory: placements flush per record, a repartition's move set
		// commits as one epoch flip, retirements spill to the cold tier.
		// With a fault plane armed the publisher commits through the flaky
		// committer, which injects stalled waves and transient failures.
		r.dir = directory.New(directory.Config{})
		var committer directory.Committer = r.dir
		if cfg.DirCommitter != nil {
			c, err := cfg.DirCommitter(r.dir)
			if err != nil {
				return nil, fmt.Errorf("opsim: directory committer: %w", err)
			}
			committer = c
		}
		if cfg.Fault != nil {
			r.flaky = fault.NewFlakyCommitter(r.dir, committer, cfg.Fault)
			committer = r.flaky
		}
		r.pub = directory.NewPublisher(committer)
		r.pub.SetShards(cfg.Sim.K)
		if cfg.DirHints != nil {
			r.pub.AttachHints(cfg.DirHints)
		}
		// Merge waves remap retired sticky assignments too; routing those
		// through the tier-preserving SetCold lane keeps dead history out
		// of the directory's hot tier.
		r.pub.SetLive(func(v graph.VertexID) bool { return r.s.Graph().HasVertex(v) })
		userPlace := simCfg.OnPlace
		simCfg.OnPlace = func(v graph.VertexID, shard int) {
			if userPlace != nil {
				userPlace(v, shard)
			}
			r.pub.OnPlace(v, shard)
		}
		chainMove := simCfg.OnMove
		simCfg.OnMove = func(v graph.VertexID, from, to int) {
			chainMove(v, from, to)
			r.pub.OnMove(v, from, to)
		}
		userRepart := simCfg.OnRepartition
		simCfg.OnRepartition = func(at time.Time, moves int) {
			if userRepart != nil {
				userRepart(at, moves)
			}
			if err := r.pub.OnRepartition(moves); err != nil && r.pubErr == nil {
				r.pubErr = err
			}
		}
		userRetire := simCfg.OnRetire
		simCfg.OnRetire = func(v graph.VertexID, shard int) {
			if userRetire != nil {
				userRetire(v, shard)
			}
			r.pub.OnRetire(v, shard)
		}
		// Each chain block resolves against one pinned directory epoch.
		// With a flaky committer the pin also observes degradation: a block
		// that starts while wave flips are stalled is serving bounded-stale
		// placement (counted, with the lag high-water mark), and the first
		// block after the flips land is the re-pin.
		scCfg.AssignSnapshot = func() func(types.Address) (int, bool) {
			if r.flaky != nil {
				if pending := r.flaky.PendingWaves(); pending > 0 {
					cfg.Fault.Metrics.StaleBlocks.Add(1)
					cfg.Fault.Metrics.MaxLag(uint64(pending))
					r.lagging = true
				} else if r.lagging {
					cfg.Fault.Metrics.RePins.Add(1)
					r.lagging = false
				}
			}
			snap := r.dir.Current()
			return func(a types.Address) (int, bool) {
				id, ok := r.gt.Registry.Lookup(a)
				if !ok {
					return 0, false
				}
				return snap.Lookup(graph.VertexID(id))
			}
		}
	}
	s, err := sim.New(simCfg)
	if err != nil {
		return nil, fmt.Errorf("opsim: %w", err)
	}
	r.s = s
	sc, err := shardchain.New(scCfg, nil, r.assignOf)
	if err != nil {
		return nil, fmt.Errorf("opsim: %w", err)
	}
	r.sc = sc
	r.res = &Result{Method: simCfg.Method, Model: cfg.Model, K: cfg.Sim.K, Parallel: cfg.Parallel}
	return r.run()
}

// assignOf homes first-seen chain accounts — the bridge's placement rule.
// Under ResolverDirectory it reads the directory's current snapshot (the
// out-of-block path; in-block resolutions go through the pinned per-Step
// view from AssignSnapshot); under ResolverAssignment it reads the
// simulator's live assignment directly. The two always agree: every
// placement event is flushed into the directory before the chain resolves.
func (r *runner) assignOf(a types.Address) (int, bool) {
	id, ok := r.gt.Registry.Lookup(a)
	if !ok {
		return 0, false
	}
	if r.dir != nil {
		return r.dir.Current().Lookup(graph.VertexID(id))
	}
	return r.s.Assignment().ShardOf(graph.VertexID(id))
}

func (r *runner) run() (*Result, error) {
	for _, rec := range r.gt.Records {
		if err := r.processRecord(rec); err != nil {
			return nil, err
		}
	}
	r.flushBlock()
	// Drain in-flight receipts with empty blocks; their settlements land in
	// the final window. The fault channel's retry bound keeps this finite,
	// but a fault-armed caller should budget MaxSettleSteps for the
	// injected backoff chains.
	for i := 0; i < r.cfg.MaxSettleSteps && r.sc.PendingReceipts() > 0; i++ {
		r.step(nil)
	}
	if r.flaky != nil {
		// Land any wave flips still stalled at end of run; every stall ends.
		if err := r.flaky.DrainStalls(); err != nil {
			return nil, fmt.Errorf("opsim: %w", err)
		}
	}
	if r.started {
		r.closeWindow()
	}
	r.res.Totals = r.sc.Stats()
	r.res.Sim = r.s.Finish()
	r.res.Sweeps = r.s.Sweeps()
	if r.dir != nil {
		st := r.dir.Stats()
		r.res.DirectoryStats = &st
		r.res.DirectoryView = r.dir.Current()
	}
	if r.cfg.Capture {
		r.captureArtifacts()
	}
	if r.cfg.Fault != nil {
		snap := r.cfg.Fault.Metrics.Snapshot()
		r.res.Fault = &snap
	}
	// Join the simulator's dynamic-cut curve onto the operational windows.
	cuts := make(map[int64]float64, len(r.res.Sim.Windows))
	for _, w := range r.res.Sim.Windows {
		cuts[w.Start.Unix()] = w.DynamicCut
	}
	for i := range r.res.Windows {
		r.res.Windows[i].DynamicCut = cuts[r.res.Windows[i].Start.Unix()]
	}
	return r.res, nil
}

// processRecord advances the co-simulation by one interaction record.
func (r *runner) processRecord(rec trace.Record) error {
	t := time.Unix(rec.Time, 0).UTC()
	if !r.started {
		r.winStart = t.Truncate(r.cfg.Sim.Window)
		r.started = true
	}
	// A record in a new block seals the previous one; a record in a new
	// window then closes the window (block timestamps are per-block, so a
	// window boundary always falls on a block boundary).
	if !r.haveBlock || rec.Block != r.curBlock {
		r.flushBlock()
		r.curBlock, r.haveBlock = rec.Block, true
	}
	for t.Sub(r.winStart) >= r.cfg.Sim.Window {
		r.closeWindow()
		r.winStart = r.winStart.Add(r.cfg.Sim.Window)
	}

	// Lockstep: the simulator sees the record first — it places first-seen
	// vertices and may fire its repartitioning policy (or the autoscaler)
	// at a window boundary.
	if err := r.s.Process(rec); err != nil {
		return fmt.Errorf("opsim: %w", err)
	}
	if r.resizeErr != nil {
		return fmt.Errorf("opsim: applying resize: %w", r.resizeErr)
	}
	if r.pub != nil {
		// Publish the record's placements (and any buffered retirements)
		// before the chain resolves homes; waves already committed inside
		// Process via OnRepartition.
		if err := r.pub.Flush(); err != nil && r.pubErr == nil {
			r.pubErr = err
		}
		if r.pubErr != nil {
			return fmt.Errorf("opsim: publishing to directory: %w", r.pubErr)
		}
	}
	if len(r.pendingMoves) > 0 {
		if err := r.applyMoves(); err != nil {
			return err
		}
	}

	// Then the chain replays the same record as a transaction.
	from, ok := r.gt.Registry.Address(rec.From)
	if !ok {
		return fmt.Errorf("opsim: unknown vertex %d", rec.From)
	}
	to, ok := r.gt.Registry.Address(rec.To)
	if !ok {
		return fmt.Errorf("opsim: unknown vertex %d", rec.To)
	}
	r.materialise(rec.From, from)
	r.materialise(rec.To, to)
	value := rec.Value
	if value > r.cfg.MaxValue {
		value = r.cfg.MaxValue
	}
	toCopy := to
	r.pendingTxs = append(r.pendingTxs, &chain.Transaction{
		Nonce: r.nonces[from], From: from, To: &toCopy,
		Value:    evm.WordFromUint64(value),
		GasLimit: 50_000, GasPrice: 0,
	})
	r.nonces[from]++
	r.res.Replayed++
	return nil
}

// applyMoves translates a repartition batch into chain operations: state
// migrations under ModelMigration, future re-homings under ModelReceipts.
//
// Under ModelReceipts the chain adopts almost none of a repartition: the
// bridge materialises accounts at first sight, so by the time a policy
// fires, every moved vertex already has live state somewhere and Rehome
// (correctly) refuses to strand it. That is the receipts model's defining
// limitation made visible — a partition improvement can only reach accounts
// that do not exist yet — and it is why the joined DynamicCut (the
// simulator's assignment) and the chain's CrossTxs fraction diverge for
// repartitioning methods under receipts. The gap between the two columns
// *is* the measurement, not an error; under ModelMigration they track.
func (r *runner) applyMoves() error {
	before := r.sc.Stats()
	for _, mv := range r.pendingMoves {
		addr, ok := r.gt.Registry.Address(uint64(mv.v))
		if !ok {
			return fmt.Errorf("opsim: repartition moved unknown vertex %d", mv.v)
		}
		var err error
		if r.cfg.Model == shardchain.ModelMigration {
			_, err = r.sc.MigrateAccount(addr, mv.to)
		} else {
			_, err = r.sc.Rehome(addr, mv.to)
		}
		if err != nil {
			return fmt.Errorf("opsim: applying repartition: %w", err)
		}
	}
	r.pendingMoves = r.pendingMoves[:0]
	d := statsDelta(r.sc.Stats(), before)
	r.res.WaveMigrations += d.Migrations
	r.res.WaveMigratedSlots += d.MigratedSlots
	return nil
}

// applyResize bridges one autoscaler firing (sim.Config.OnResize) onto the
// chain and directory. It runs inside the simulator's Process call, at a
// window boundary — which always falls on a block boundary, so no
// transactions are pending and the chain sits between Steps.
//
// Split: the chain grows its lanes first (they spin up empty), then the
// directory commits the new shard count together with every wave remap as
// ONE epoch flip, then the remaps land on the chain. Readers either see the
// old k with old placements or the new k with new placements — never a
// tear.
//
// Merge: the directory flips first (count + remaps in one commit), so every
// later resolution already answers below newK. Then the wave's moves land;
// under ModelReceipts Rehome refuses accounts with materialised state, so a
// sweep force-migrates everything still homed on a dropped lane — the
// honest decommissioning cost the receipts model defers until a lane
// actually disappears. Settle-only blocks then drain in-flight receipts
// (bounded by MaxSettleSteps), stalled directory waves are landed, and only
// a fully drained lane set is removed.
func (r *runner) applyResize(oldK, newK, moves int) error {
	if newK > oldK {
		if err := r.sc.AddShards(newK); err != nil {
			return err
		}
		if r.pub != nil {
			if err := r.pub.OnResize(newK, moves); err != nil {
				return err
			}
		}
		return r.applyMoves()
	}
	if r.pub != nil {
		if err := r.pub.OnResize(newK, moves); err != nil {
			return err
		}
	}
	if err := r.applyMoves(); err != nil {
		return err
	}
	before := r.sc.Stats()
	for s := newK; s < oldK; s++ {
		for _, addr := range r.sc.HomesOn(s) {
			to, ok := r.assignOf(addr)
			if !ok || to >= newK {
				return fmt.Errorf("merge to k=%d: no surviving home for %v (got %d)", newK, addr, to)
			}
			if _, err := r.sc.MigrateAccount(addr, to); err != nil {
				return err
			}
		}
	}
	d := statsDelta(r.sc.Stats(), before)
	r.res.WaveMigrations += d.Migrations
	r.res.WaveMigratedSlots += d.MigratedSlots
	for i := 0; i < r.cfg.MaxSettleSteps && r.sc.PendingReceipts() > 0; i++ {
		r.step(nil)
	}
	if r.flaky != nil {
		// The directory must have acknowledged every stalled wave before a
		// lane disappears; landing them here keeps the decommission safe
		// under injected commit stalls.
		if err := r.flaky.DrainStalls(); err != nil {
			return err
		}
	}
	return r.sc.RemoveShards(newK)
}

// materialise funds a first-seen account on its home shard and, for
// contracts, installs the synthetic storage footprint that makes migration
// costs visible as moved slots. Record IDs always index into the fully
// materialised registry, so seen never needs to grow.
func (r *runner) materialise(id uint64, addr types.Address) {
	if r.seen[id] {
		return
	}
	r.seen[id] = true
	st := r.sc.StateOf(r.sc.HomeOf(addr))
	st.AddBalance(addr, r.cfg.Fund)
	if r.gt.Registry.IsContract(id) {
		for i := 0; i < r.cfg.Sim.StorageSlots(graph.VertexID(id)); i++ {
			st.SetState(addr, evm.WordFromUint64(uint64(i+1)), evm.WordFromUint64(1))
		}
	}
	st.DiscardJournal()
}

// flushBlock steps the chain with the accumulated block transactions. The
// runner pre-assigns nonces when it enqueues (a sender can appear several
// times in one block), so a rejected transaction leaves the tracked nonce
// ahead of the chain's; resyncing from the chain keeps one failure from
// cascading into ErrNonceMismatch for every later transaction of that
// sender.
func (r *runner) flushBlock() {
	if len(r.pendingTxs) == 0 {
		return
	}
	receipts := r.step(r.pendingTxs)
	for i, receipt := range receipts {
		if receipt.Success {
			continue
		}
		from := r.pendingTxs[i].From
		r.nonces[from] = r.sc.StateOf(r.sc.HomeOf(from)).GetNonce(from)
	}
	r.pendingTxs = r.pendingTxs[:0]
}

// step drives one chain block, accounting its wall-clock cost so the
// serial and parallel engines can be compared per block.
func (r *runner) step(txs []*chain.Transaction) []*chain.Receipt {
	start := time.Now()
	receipts := r.sc.Step(txs)
	r.res.StepNanos += time.Since(start).Nanoseconds()
	r.res.Blocks++
	if r.cfg.Capture {
		for _, rc := range receipts {
			errStr := ""
			if rc.Err != nil {
				errStr = rc.Err.Error()
			}
			ok := byte(0)
			if rc.Success {
				ok = 1
			}
			var gas [8]byte
			binary.BigEndian.PutUint64(gas[:], rc.GasUsed)
			r.receiptsHash = types.HashConcat(
				r.receiptsHash[:], rc.TxHash[:], []byte{ok}, gas[:], []byte(errStr))
		}
	}
	return receipts
}

// captureArtifacts computes the end-of-run convergence evidence: per-shard
// state roots and a hash over every known account's home, in registry-ID
// order so the digest is canonical. ReceiptsHash accumulated in step.
func (r *runner) captureArtifacts() {
	// The chain's *final* lane count, not the configured initial one — the
	// autoscaler may have moved it.
	k := r.sc.K()
	r.res.StateRoots = make([]types.Hash, k)
	for s := 0; s < k; s++ {
		r.res.StateRoots[s] = r.sc.StateOf(s).Commit()
	}
	homes := types.Hash{}
	for id := uint64(0); id < uint64(r.gt.Registry.Len()); id++ {
		addr, ok := r.gt.Registry.Address(id)
		if !ok {
			continue
		}
		shard, known := r.sc.Known(addr)
		if !known {
			shard = -1
		}
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[:8], id)
		binary.BigEndian.PutUint64(buf[8:], uint64(int64(shard)))
		homes = types.HashConcat(homes[:], buf[:])
	}
	r.res.HomesHash = homes
	r.res.ReceiptsHash = r.receiptsHash
}

// closeWindow snapshots the chain's counters into a per-window delta.
func (r *runner) closeWindow() {
	cur := r.sc.Stats()
	d := statsDelta(cur, r.lastStats)
	r.lastStats = cur
	r.res.Windows = append(r.res.Windows, WindowStat{
		Start:            r.winStart,
		Interactions:     d.LocalTxs + d.CrossTxs + d.Failed,
		LocalTxs:         d.LocalTxs,
		CrossTxs:         d.CrossTxs,
		Messages:         d.Messages,
		ReceiptsSettled:  d.ReceiptsSettled,
		SettlementBlocks: d.SettlementBlocks,
		Migrations:       d.Migrations,
		MigratedSlots:    d.MigratedSlots,
		Failed:           d.Failed,
		Shards:           r.sc.K(),
	})
}

// statsDelta subtracts prev from cur fieldwise.
func statsDelta(cur, prev shardchain.Stats) shardchain.Stats {
	return shardchain.Stats{
		LocalTxs:         cur.LocalTxs - prev.LocalTxs,
		CrossTxs:         cur.CrossTxs - prev.CrossTxs,
		Messages:         cur.Messages - prev.Messages,
		ReceiptsSettled:  cur.ReceiptsSettled - prev.ReceiptsSettled,
		SettlementBlocks: cur.SettlementBlocks - prev.SettlementBlocks,
		Migrations:       cur.Migrations - prev.Migrations,
		MigratedSlots:    cur.MigratedSlots - prev.MigratedSlots,
		Failed:           cur.Failed - prev.Failed,
	}
}
