package opsim

import (
	"reflect"
	"testing"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/types"
)

// flashTrace is a self-contained flash-crowd history: quiet base traffic, a
// surge phase multiplying the record rate tenfold over a fresh cohort, then
// a long cooldown — the shape that makes the autoscaler split and later
// merge. Built inline (opsim cannot import the experiments package) with a
// deterministic LCG so the replay is reproducible.
func flashTrace() *sim.GeneratedTrace {
	reg := trace.NewRegistry()
	id := func(seq uint64) uint64 { return reg.ID(types.AddressFromSeq(seq + 1)) }
	state := uint64(0x5eed5eed5eed5eed)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	t := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC).Unix()
	var recs []trace.Record
	block := uint64(1)
	phases := []struct {
		windows, perWindow int
		surge              bool
	}{
		{6, 60, false},
		{6, 600, true},
		{10, 60, false},
	}
	for _, ph := range phases {
		for w := 0; w < ph.windows; w++ {
			step := int64(4*3600) / int64(ph.perWindow)
			for i := 0; i < ph.perWindow; i++ {
				pick := func() uint64 {
					if ph.surge && next(10) < 8 {
						return id(100 + next(400))
					}
					return id(next(100))
				}
				from := pick()
				to := pick()
				if to == from {
					to = id(next(100) + 500)
				}
				recs = append(recs, trace.Record{
					Block: block, Time: t, Kind: evm.KindTransaction,
					From: from, To: to, Value: 1 + next(100),
				})
				t += step
				if i%10 == 9 {
					block++
				}
			}
		}
	}
	return &sim.GeneratedTrace{Registry: reg, Records: recs}
}

func autoscaleCfg(model shardchain.Model) Config {
	return Config{
		Sim: sim.Config{
			Method: sim.MethodTRMetis, K: 2,
			Window:            4 * time.Hour,
			RepartitionEvery:  48 * time.Hour,
			MinRepartitionGap: 8 * time.Hour,
			TriggerWindows:    2,
			DecayHalfLife:     12 * time.Hour,
			Horizon:           36 * time.Hour,
			Autoscale: sim.AutoscaleConfig{
				Enabled: true, KMin: 2, KMax: 8, TargetWindowLoad: 100,
			},
		},
		Model: model,
	}
}

// TestAutoscaleBridgesResizeWaves: the runner must carry every controller
// resize onto the live chain — lanes grow and shrink with the events, the
// per-window Shards series tracks them, the directory's final view agrees
// with the final count, and a merge evacuates real state (visible as wave
// migrations even under the receipts model).
func TestAutoscaleBridgesResizeWaves(t *testing.T) {
	gt := flashTrace()
	cfg := autoscaleCfg(shardchain.ModelReceipts)
	cfg.Capture = true
	res, err := Run(gt, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var splits, merges int
	for _, ev := range res.Sim.Resizes {
		if ev.ToK > ev.FromK {
			splits++
		} else {
			merges++
		}
	}
	if splits == 0 || merges == 0 {
		t.Fatalf("flash crowd produced %d splits, %d merges (want both > 0): %+v",
			splits, merges, res.Sim.Resizes)
	}
	finalK := res.Sim.Resizes[len(res.Sim.Resizes)-1].ToK

	// The per-window shard series is the shards-provisioned-over-time
	// curve: it starts at K, ends at the last event's target, and only
	// changes by recorded events.
	if res.Windows[0].Shards != 2 {
		t.Errorf("first window served with %d shards, want the initial 2", res.Windows[0].Shards)
	}
	if last := res.Windows[len(res.Windows)-1].Shards; last != finalK {
		t.Errorf("last window served with %d shards, controller ended at %d", last, finalK)
	}
	changes := 0
	peak := 0
	for i := 1; i < len(res.Windows); i++ {
		if res.Windows[i].Shards != res.Windows[i-1].Shards {
			changes++
		}
		if res.Windows[i].Shards > peak {
			peak = res.Windows[i].Shards
		}
	}
	if changes > len(res.Sim.Resizes) {
		t.Errorf("window shard series changed %d times for %d resize events",
			changes, len(res.Sim.Resizes))
	}
	if peak <= 2 {
		t.Errorf("window series never rose above the initial count: peak %d", peak)
	}

	// Chain, directory and capture all agree on the final universe.
	if res.K != 2 {
		t.Errorf("Result.K = %d, want the configured initial 2", res.K)
	}
	if len(res.StateRoots) != finalK {
		t.Errorf("captured %d state roots, final k is %d", len(res.StateRoots), finalK)
	}
	if res.DirectoryStats == nil {
		t.Fatal("directory resolver produced no stats")
	}
	if res.DirectoryStats.Shards != finalK {
		t.Errorf("directory ended declaring %d shards, chain ended at %d",
			res.DirectoryStats.Shards, finalK)
	}

	// The merge drained a decommissioned lane: state moved even though the
	// receipts model never migrates for traffic.
	if res.WaveMigrations == 0 {
		t.Error("merge resize evacuated no accounts")
	}
	if res.Totals.Migrations != res.WaveMigrations {
		t.Errorf("receipts-model migrations (%d) beyond the wave/drain share (%d)",
			res.Totals.Migrations, res.WaveMigrations)
	}
	if res.Totals.Failed != 0 {
		t.Errorf("%d failed txs across resizes; funded replay must validate cleanly",
			res.Totals.Failed)
	}
}

// TestAutoscaleResolverByteIdentity extends the directory golden contract
// across elastic resizes: resolving homes through the epoch-versioned
// directory (whose snapshots carry the shard count through every flip) must
// be byte-identical to resolving from the raw assignment, with the
// controller actively splitting and merging mid-run.
func TestAutoscaleResolverByteIdentity(t *testing.T) {
	gt := flashTrace()
	for _, model := range []shardchain.Model{shardchain.ModelReceipts, shardchain.ModelMigration} {
		dirCfg := autoscaleCfg(model)
		dirCfg.Resolver = ResolverDirectory
		asgCfg := autoscaleCfg(model)
		asgCfg.Resolver = ResolverAssignment

		dres, err := Run(gt, dirCfg)
		if err != nil {
			t.Fatalf("%v directory: %v", model, err)
		}
		ares, err := Run(gt, asgCfg)
		if err != nil {
			t.Fatalf("%v assignment: %v", model, err)
		}
		if len(dres.Sim.Resizes) == 0 {
			t.Fatalf("%v: no resizes fired; identity check is vacuous", model)
		}
		if !reflect.DeepEqual(stripMeasurement(dres), stripMeasurement(ares)) {
			t.Errorf("%v: directory-resolved run diverged from assignment-resolved run across resizes", model)
		}
	}
}

// TestAutoscaleParallelMatchesSerial: the parallel per-shard engine must
// survive mid-run lane growth and removal and still reproduce the serial
// engine bit for bit.
func TestAutoscaleParallelMatchesSerial(t *testing.T) {
	gt := flashTrace()
	serialCfg := autoscaleCfg(shardchain.ModelReceipts)
	parallelCfg := serialCfg
	parallelCfg.Parallel = true
	a, err := Run(gt, serialCfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	b, err := Run(gt, parallelCfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(a.Sim.Resizes) == 0 {
		t.Fatal("no resizes fired; engine check is vacuous")
	}
	if a.Totals != b.Totals {
		t.Errorf("totals diverge:\nserial:   %+v\nparallel: %+v", a.Totals, b.Totals)
	}
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Errorf("window %d diverges:\nserial:   %+v\nparallel: %+v", i, a.Windows[i], b.Windows[i])
		}
	}
}
