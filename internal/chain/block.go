package chain

import (
	"encoding/binary"

	"ethpart/internal/trie"
	"ethpart/internal/types"
)

// Header is a block header. Hash-linking through ParentHash plus the state
// and transaction roots give the chain its integrity guarantees.
type Header struct {
	ParentHash types.Hash
	Number     uint64
	// Time is the block timestamp in Unix seconds.
	Time      int64
	Miner     types.Address
	StateRoot types.Hash
	TxRoot    types.Hash
	GasUsed   uint64
	GasLimit  uint64
}

// Hash returns the header digest, which identifies the block.
func (h *Header) Hash() types.Hash {
	var nums [8 * 4]byte
	binary.BigEndian.PutUint64(nums[0:], h.Number)
	binary.BigEndian.PutUint64(nums[8:], uint64(h.Time))
	binary.BigEndian.PutUint64(nums[16:], h.GasUsed)
	binary.BigEndian.PutUint64(nums[24:], h.GasLimit)
	return types.HashConcat(
		h.ParentHash[:], nums[:], h.Miner[:], h.StateRoot[:], h.TxRoot[:],
	)
}

// Block is a header plus its transactions.
type Block struct {
	Header Header
	Txs    []*Transaction
}

// Hash returns the block identifier (the header hash).
func (b *Block) Hash() types.Hash { return b.Header.Hash() }

// TxRoot computes the Merkle root of the block's transactions.
func TxRoot(txs []*Transaction) types.Hash {
	t := trie.New()
	var idx [8]byte
	for i, tx := range txs {
		binary.BigEndian.PutUint64(idx[:], uint64(i))
		h := tx.Hash()
		t.Put(idx[:], h[:])
	}
	return t.Root()
}
