package chain

import (
	"fmt"

	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// Config holds chain-wide parameters.
type Config struct {
	// BlockGasLimit bounds the total gas of a block's transactions.
	BlockGasLimit uint64
	// BlockReward is credited to the miner of every block.
	BlockReward evm.Word
	// CommitInterval controls how often the (expensive) state root is
	// computed: every Nth block. Zero commits every block; the large
	// simulated histories use a sparse interval. Blocks without a commit
	// carry the previous state root forward.
	CommitInterval uint64
}

// DefaultConfig mirrors mainnet-flavoured parameters.
func DefaultConfig() Config {
	return Config{
		BlockGasLimit:  8_000_000,
		BlockReward:    evm.WordFromUint64(5_000_000_000_000_000_000), // 5 ether in wei
		CommitInterval: 1,
	}
}

// Chain is an in-memory blockchain: a hash-linked list of blocks plus the
// world state after the head block. It is the substrate the synthetic
// workload executes on.
//
// Chain is not safe for concurrent use.
type Chain struct {
	cfg    Config
	blocks []*Block
	state  *State
	// lastRoot is the most recently computed state root (see
	// Config.CommitInterval).
	lastRoot types.Hash
}

// NewChain creates a chain with a genesis block holding the given
// allocation.
func NewChain(cfg Config, alloc map[types.Address]evm.Word) *Chain {
	state := NewStateWithAlloc(alloc)
	root := state.Commit()
	genesis := &Block{Header: Header{
		Number:    0,
		StateRoot: root,
		GasLimit:  cfg.BlockGasLimit,
	}}
	return &Chain{cfg: cfg, blocks: []*Block{genesis}, state: state, lastRoot: root}
}

// Head returns the latest block.
func (c *Chain) Head() *Block { return c.blocks[len(c.blocks)-1] }

// Len returns the number of blocks including genesis.
func (c *Chain) Len() int { return len(c.blocks) }

// BlockByNumber returns block n, or nil when out of range.
func (c *Chain) BlockByNumber(n uint64) *Block {
	if n >= uint64(len(c.blocks)) {
		return nil
	}
	return c.blocks[n]
}

// State returns the world state at the head block. Callers must not retain
// it across BuildBlock calls if they need a stable snapshot; use State.Copy.
func (c *Chain) State() *State { return c.state }

// BuildBlock executes txs on top of the head block, seals a new block and
// appends it. Transactions that fail validation (bad nonce, insufficient
// funds) are skipped and reported in the returned skipped slice —
// the block contains only the transactions that were actually applied,
// exactly like a miner dropping unexecutable transactions.
func (c *Chain) BuildBlock(miner types.Address, timestamp int64, txs []*Transaction) (*Block, []*Receipt, []error) {
	var (
		applied  []*Transaction
		receipts []*Receipt
		skipped  []error
		gasUsed  uint64
	)
	for _, tx := range txs {
		if gasUsed+tx.GasLimit > c.cfg.BlockGasLimit {
			skipped = append(skipped, fmt.Errorf("%w: tx %v", ErrGasLimitExceeded, tx.Hash()))
			continue
		}
		receipt, err := ApplyTransaction(c.state, tx, miner)
		if err != nil {
			skipped = append(skipped, err)
			continue
		}
		receipt.TxIndex = len(applied)
		applied = append(applied, tx)
		receipts = append(receipts, receipt)
		gasUsed += receipt.GasUsed
	}
	c.state.AddBalance(miner, c.cfg.BlockReward)
	c.state.DiscardJournal()

	parent := c.Head()
	number := parent.Header.Number + 1
	root := c.lastRoot
	if c.cfg.CommitInterval <= 1 || number%c.cfg.CommitInterval == 0 {
		root = c.state.Commit()
		c.lastRoot = root
	}
	block := &Block{
		Header: Header{
			ParentHash: parent.Hash(),
			Number:     number,
			Time:       timestamp,
			Miner:      miner,
			StateRoot:  root,
			TxRoot:     TxRoot(applied),
			GasUsed:    gasUsed,
			GasLimit:   c.cfg.BlockGasLimit,
		},
		Txs: applied,
	}
	c.blocks = append(c.blocks, block)
	return block, receipts, skipped
}

// VerifyHeaderChain checks hash linking and number contiguity over the whole
// chain. It is used by integrity tests and costs O(blocks).
func (c *Chain) VerifyHeaderChain() error {
	for i := 1; i < len(c.blocks); i++ {
		prev, cur := c.blocks[i-1], c.blocks[i]
		if cur.Header.ParentHash != prev.Hash() {
			return fmt.Errorf("%w: block %d", ErrUnknownParent, cur.Header.Number)
		}
		if cur.Header.Number != prev.Header.Number+1 {
			return fmt.Errorf("%w: block %d follows %d", ErrNonContiguousNumber,
				cur.Header.Number, prev.Header.Number)
		}
		if cur.Header.TxRoot != TxRoot(cur.Txs) {
			return fmt.Errorf("%w: block %d", ErrTxRootMismatch, cur.Header.Number)
		}
	}
	return nil
}

// Replay re-executes the whole chain from genesis on a fresh state and
// verifies that the head state root matches. It proves that block execution
// is deterministic.
func (c *Chain) Replay(alloc map[types.Address]evm.Word) error {
	fresh := NewStateWithAlloc(alloc)
	for _, b := range c.blocks[1:] {
		for _, tx := range b.Txs {
			if _, err := ApplyTransaction(fresh, tx, b.Header.Miner); err != nil {
				return fmt.Errorf("chain: replaying block %d: %w", b.Header.Number, err)
			}
		}
		fresh.AddBalance(b.Header.Miner, c.cfg.BlockReward)
		fresh.DiscardJournal()
	}
	if got, want := fresh.Commit(), c.state.Commit(); got != want {
		return fmt.Errorf("%w: replay got %v, head has %v", ErrStateRootMismatch, got, want)
	}
	return nil
}
