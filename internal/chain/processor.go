package chain

import (
	"errors"
	"fmt"

	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// Transaction validation errors.
var (
	ErrNonceMismatch       = errors.New("chain: transaction nonce mismatch")
	ErrInsufficientFunds   = errors.New("chain: insufficient funds for gas * price + value")
	ErrIntrinsicGas        = errors.New("chain: gas limit below intrinsic cost")
	ErrGasLimitExceeded    = errors.New("chain: block gas limit exceeded")
	ErrUnknownParent       = errors.New("chain: unknown parent block")
	ErrStateRootMismatch   = errors.New("chain: state root mismatch")
	ErrTxRootMismatch      = errors.New("chain: transaction root mismatch")
	ErrNonContiguousNumber = errors.New("chain: non-contiguous block number")
)

// ApplyTransaction executes tx against state and returns its receipt.
//
// Semantics follow Ethereum's: the nonce must match, the sender pre-pays
// gasLimit*gasPrice, execution runs with the remaining gas, failed
// executions revert all state changes except the nonce bump and the gas
// payment, and the miner is credited with gasUsed*gasPrice.
func ApplyTransaction(state *State, tx *Transaction, miner types.Address) (*Receipt, error) {
	return ApplyTransactionHooked(state, tx, miner, nil)
}

// ApplyTransactionHooked is ApplyTransaction with an optional cross-shard
// call interceptor installed in the VM (see evm.RemoteHook). The sharded
// execution engine uses it to divert internal calls that leave the
// executing shard into receipts.
func ApplyTransactionHooked(state *State, tx *Transaction, miner types.Address, hook evm.RemoteHook) (*Receipt, error) {
	return applyTransaction(state, tx, miner, hook, false)
}

// ApplyTransactionRetained is ApplyTransactionHooked without the journal
// discards at the commit points, so a caller holding a Snapshot taken
// before the transaction ran can still revert it (and any transactions
// applied since that snapshot) wholesale. The parallel shard engine's
// conflict rollback depends on this; the state content it produces is
// identical to ApplyTransactionHooked's.
func ApplyTransactionRetained(state *State, tx *Transaction, miner types.Address, hook evm.RemoteHook) (*Receipt, error) {
	return applyTransaction(state, tx, miner, hook, true)
}

func applyTransaction(state *State, tx *Transaction, miner types.Address, hook evm.RemoteHook, retain bool) (*Receipt, error) {
	receipt := &Receipt{TxHash: tx.Hash()}

	if got := state.GetNonce(tx.From); got != tx.Nonce {
		return nil, fmt.Errorf("%w: account %v has nonce %d, tx has %d",
			ErrNonceMismatch, tx.From, got, tx.Nonce)
	}
	intrinsic := tx.intrinsicGas()
	if tx.GasLimit < intrinsic {
		return nil, fmt.Errorf("%w: limit %d < intrinsic %d", ErrIntrinsicGas, tx.GasLimit, intrinsic)
	}
	gasCost := evm.WordFromUint64(tx.GasLimit * tx.GasPrice)
	totalCost := gasCost.Add(tx.Value)
	if state.GetBalance(tx.From).Cmp(totalCost) < 0 {
		return nil, fmt.Errorf("%w: account %v", ErrInsufficientFunds, tx.From)
	}

	// Buy gas and bump the nonce; these survive execution failure.
	state.SubBalance(tx.From, gasCost)
	state.SetNonce(tx.From, tx.Nonce+1)
	if !retain {
		state.DiscardJournal()
	}

	snap := state.Snapshot()
	vm := evm.New(state)
	if hook != nil {
		vm.SetRemoteHook(hook)
	}
	gas := tx.GasLimit - intrinsic

	var (
		gasLeft uint64
		execErr error
	)
	if tx.IsCreate() {
		// The contract address derives from the sender's pre-transaction
		// nonce, as in Ethereum.
		addr := types.ContractAddress(tx.From, tx.Nonce)
		gasLeft, execErr = vm.CreateAt(tx.From, addr, tx.Data, tx.Value, gas)
		if execErr == nil {
			receipt.ContractAddress = &addr
		}
	} else {
		_, gasLeft, execErr = vm.Call(tx.From, *tx.To, tx.Value, tx.Data, gas)
	}

	if execErr != nil {
		state.RevertToSnapshot(snap)
		gasLeft = 0 // failed executions consume all gas, as post-Homestead Ethereum
	}
	if !retain {
		state.DiscardJournal()
	}

	gasUsed := tx.GasLimit - gasLeft
	// Refund unused gas and pay the miner.
	state.AddBalance(tx.From, evm.WordFromUint64(gasLeft*tx.GasPrice))
	state.AddBalance(miner, evm.WordFromUint64(gasUsed*tx.GasPrice))
	if !retain {
		state.DiscardJournal()
	}

	receipt.Success = execErr == nil
	receipt.Err = execErr
	receipt.GasUsed = gasUsed
	// Copy: the VM owns its trace slice.
	receipt.Traces = append([]evm.CallTrace(nil), vm.Traces()...)
	return receipt, nil
}
