package chain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/evm"
	"ethpart/internal/types"
)

var (
	addrA = types.AddressFromSeq(100)
	addrB = types.AddressFromSeq(101)
)

func TestStateBalanceOps(t *testing.T) {
	s := NewState()
	if !s.GetBalance(addrA).IsZero() {
		t.Error("fresh account must have zero balance")
	}
	s.AddBalance(addrA, evm.WordFromUint64(50))
	s.SubBalance(addrA, evm.WordFromUint64(20))
	if got := s.GetBalance(addrA).Uint64(); got != 30 {
		t.Errorf("balance = %d, want 30", got)
	}
}

func TestStateNonceAndCode(t *testing.T) {
	s := NewState()
	s.SetNonce(addrA, 7)
	if got := s.GetNonce(addrA); got != 7 {
		t.Errorf("nonce = %d, want 7", got)
	}
	code := []byte{1, 2, 3}
	s.SetCode(addrA, code)
	if got := s.GetCode(addrA); len(got) != 3 {
		t.Errorf("code = %v", got)
	}
}

func TestStateStorageZeroClears(t *testing.T) {
	s := NewState()
	key := evm.WordFromUint64(1)
	s.SetState(addrA, key, evm.WordFromUint64(9))
	if s.StorageSize(addrA) != 1 {
		t.Fatalf("StorageSize = %d, want 1", s.StorageSize(addrA))
	}
	s.SetState(addrA, key, evm.Word{})
	if s.StorageSize(addrA) != 0 {
		t.Errorf("zero write must clear the slot, size = %d", s.StorageSize(addrA))
	}
}

func TestSnapshotRevert(t *testing.T) {
	s := NewState()
	s.AddBalance(addrA, evm.WordFromUint64(100))
	s.DiscardJournal()

	snap := s.Snapshot()
	s.SubBalance(addrA, evm.WordFromUint64(60))
	s.AddBalance(addrB, evm.WordFromUint64(60))
	s.SetNonce(addrA, 5)
	s.SetState(addrB, evm.WordFromUint64(1), evm.WordFromUint64(42))
	s.SetCode(addrB, []byte{0xfe})

	s.RevertToSnapshot(snap)

	if got := s.GetBalance(addrA).Uint64(); got != 100 {
		t.Errorf("addrA balance after revert = %d, want 100", got)
	}
	if s.Exist(addrB) {
		t.Error("account created inside reverted scope must disappear")
	}
	if s.GetNonce(addrA) != 0 {
		t.Error("nonce change must be reverted")
	}
}

func TestDeleteAccountPurgesAndReverts(t *testing.T) {
	s := NewState()
	s.AddBalance(addrA, evm.WordFromUint64(100))
	s.SetNonce(addrA, 4)
	s.SetCode(addrA, []byte{0xfe})
	s.SetState(addrA, evm.WordFromUint64(1), evm.WordFromUint64(42))
	s.DiscardJournal()

	snap := s.Snapshot()
	s.DeleteAccount(addrA)
	if s.Exist(addrA) {
		t.Fatal("deleted account must not exist")
	}
	if s.GetNonce(addrA) != 0 || s.GetCode(addrA) != nil || s.StorageSize(addrA) != 0 {
		t.Fatal("deleted account must leave no nonce, code or storage behind")
	}

	s.RevertToSnapshot(snap)
	if !s.Exist(addrA) {
		t.Fatal("revert must restore the deleted account")
	}
	if got := s.GetBalance(addrA).Uint64(); got != 100 {
		t.Errorf("restored balance = %d, want 100", got)
	}
	if s.GetNonce(addrA) != 4 || len(s.GetCode(addrA)) != 1 {
		t.Error("restored nonce/code wrong")
	}
	if got := s.GetState(addrA, evm.WordFromUint64(1)).Uint64(); got != 42 {
		t.Errorf("restored storage slot = %d, want 42", got)
	}

	// Deleting a missing account is a no-op and journals nothing.
	pre := s.Snapshot()
	s.DeleteAccount(addrB)
	if s.Snapshot() != pre {
		t.Error("deleting a missing account must not journal")
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := NewState()
	s.AddBalance(addrA, evm.WordFromUint64(10))
	s.DiscardJournal()

	outer := s.Snapshot()
	s.AddBalance(addrA, evm.WordFromUint64(1))
	inner := s.Snapshot()
	s.AddBalance(addrA, evm.WordFromUint64(2))
	s.RevertToSnapshot(inner)
	if got := s.GetBalance(addrA).Uint64(); got != 11 {
		t.Fatalf("after inner revert balance = %d, want 11", got)
	}
	s.RevertToSnapshot(outer)
	if got := s.GetBalance(addrA).Uint64(); got != 10 {
		t.Fatalf("after outer revert balance = %d, want 10", got)
	}
}

func TestCommitChangesWithState(t *testing.T) {
	s := NewState()
	r0 := s.Commit()
	s.AddBalance(addrA, evm.WordFromUint64(1))
	r1 := s.Commit()
	if r0 == r1 {
		t.Error("state root must change when a balance changes")
	}
	s.SetState(addrA, evm.WordFromUint64(1), evm.WordFromUint64(2))
	r2 := s.Commit()
	if r1 == r2 {
		t.Error("state root must change when storage changes")
	}
}

func TestCommitDeterministic(t *testing.T) {
	build := func(order []uint64) types.Hash {
		s := NewState()
		for _, i := range order {
			addr := types.AddressFromSeq(i)
			s.AddBalance(addr, evm.WordFromUint64(i))
			s.SetState(addr, evm.WordFromUint64(i), evm.WordFromUint64(i*2))
		}
		return s.Commit()
	}
	if build([]uint64{1, 2, 3, 4}) != build([]uint64{4, 2, 3, 1}) {
		t.Error("state root must be independent of mutation order for the same final state")
	}
}

func TestCopyIsDeep(t *testing.T) {
	s := NewState()
	s.AddBalance(addrA, evm.WordFromUint64(5))
	s.SetState(addrA, evm.WordFromUint64(1), evm.WordFromUint64(9))
	c := s.Copy()
	s.AddBalance(addrA, evm.WordFromUint64(5))
	s.SetState(addrA, evm.WordFromUint64(1), evm.WordFromUint64(10))
	if got := c.GetBalance(addrA).Uint64(); got != 5 {
		t.Errorf("copy balance mutated: %d", got)
	}
	if got := c.GetState(addrA, evm.WordFromUint64(1)).Uint64(); got != 9 {
		t.Errorf("copy storage mutated: %d", got)
	}
}

func TestPropertySnapshotRevertIsIdentity(t *testing.T) {
	// Property: a random mutation batch wrapped in snapshot/revert leaves
	// the state root unchanged.
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState()
		// Base state.
		for i := 0; i < 10; i++ {
			s.AddBalance(types.AddressFromSeq(uint64(i)), evm.WordFromUint64(uint64(rng.Intn(1000))))
		}
		s.DiscardJournal()
		before := s.Commit()

		snap := s.Snapshot()
		ops := int(opsRaw%60) + 1
		for i := 0; i < ops; i++ {
			addr := types.AddressFromSeq(uint64(rng.Intn(20)))
			switch rng.Intn(5) {
			case 0:
				s.AddBalance(addr, evm.WordFromUint64(uint64(rng.Intn(100))))
			case 1:
				s.SubBalance(addr, evm.WordFromUint64(uint64(rng.Intn(100))))
			case 2:
				s.SetNonce(addr, uint64(rng.Intn(100)))
			case 3:
				s.SetState(addr, evm.WordFromUint64(uint64(rng.Intn(5))), evm.WordFromUint64(uint64(rng.Intn(100))))
			case 4:
				s.SetCode(addr, []byte{byte(rng.Intn(256))})
			}
		}
		s.RevertToSnapshot(snap)
		return s.Commit() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
