package chain

import (
	"errors"
	"testing"

	"ethpart/internal/evm"
	"ethpart/internal/types"
)

var (
	sender = types.AddressFromSeq(1)
	recv   = types.AddressFromSeq(2)
	miner  = types.AddressFromSeq(999)
)

// fundedState returns a state with sender holding a large balance.
func fundedState() *State {
	return NewStateWithAlloc(map[types.Address]evm.Word{
		sender: evm.WordFromUint64(1_000_000_000_000),
	})
}

func transferTx(nonce uint64, value uint64) *Transaction {
	to := recv
	return &Transaction{
		Nonce: nonce, From: sender, To: &to,
		Value: evm.WordFromUint64(value), GasLimit: 50_000, GasPrice: 1,
	}
}

func TestApplyTransactionTransfer(t *testing.T) {
	s := fundedState()
	receipt, err := ApplyTransaction(s, transferTx(0, 500), miner)
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.Success {
		t.Fatalf("receipt failed: %v", receipt.Err)
	}
	if receipt.GasUsed != IntrinsicGas {
		t.Errorf("GasUsed = %d, want %d", receipt.GasUsed, IntrinsicGas)
	}
	if got := s.GetBalance(recv).Uint64(); got != 500 {
		t.Errorf("recipient balance = %d, want 500", got)
	}
	if got := s.GetBalance(miner).Uint64(); got != uint64(IntrinsicGas) {
		t.Errorf("miner fee = %d, want %d", got, IntrinsicGas)
	}
	if got := s.GetNonce(sender); got != 1 {
		t.Errorf("sender nonce = %d, want 1", got)
	}
	if len(receipt.Traces) != 1 || receipt.Traces[0].Kind != evm.KindTransaction {
		t.Errorf("traces = %+v", receipt.Traces)
	}
}

func TestApplyTransactionBadNonce(t *testing.T) {
	s := fundedState()
	_, err := ApplyTransaction(s, transferTx(5, 1), miner)
	if !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("err = %v, want ErrNonceMismatch", err)
	}
}

func TestApplyTransactionInsufficientFunds(t *testing.T) {
	s := NewState()
	_, err := ApplyTransaction(s, transferTx(0, 1), miner)
	if !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v, want ErrInsufficientFunds", err)
	}
}

func TestApplyTransactionIntrinsicGasTooLow(t *testing.T) {
	s := fundedState()
	to := recv
	tx := &Transaction{Nonce: 0, From: sender, To: &to, GasLimit: 100, GasPrice: 1}
	_, err := ApplyTransaction(s, tx, miner)
	if !errors.Is(err, ErrIntrinsicGas) {
		t.Fatalf("err = %v, want ErrIntrinsicGas", err)
	}
}

func TestApplyTransactionRevertRollsBack(t *testing.T) {
	// Deploy a contract that stores then reverts: storage must stay empty,
	// gas must be consumed, nonce must advance.
	runtime := evm.NewAssembler().
		Push(7).Push(0).Op(evm.SSTORE).
		Push(0).Push(0).Op(evm.REVERT).
		MustBytes()
	s := fundedState()
	deploy := &Transaction{
		Nonce: 0, From: sender, To: nil,
		Data: evm.DeployWrapper(runtime), GasLimit: 500_000, GasPrice: 1,
	}
	receipt, err := ApplyTransaction(s, deploy, miner)
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.Success || receipt.ContractAddress == nil {
		t.Fatalf("deploy failed: %+v", receipt)
	}
	contract := *receipt.ContractAddress

	call := &Transaction{
		Nonce: 1, From: sender, To: &contract, GasLimit: 200_000, GasPrice: 1,
	}
	receipt, err = ApplyTransaction(s, call, miner)
	if err != nil {
		t.Fatal(err)
	}
	if receipt.Success {
		t.Fatal("reverting call must produce a failed receipt")
	}
	if !errors.Is(receipt.Err, evm.ErrRevert) {
		t.Errorf("receipt.Err = %v, want ErrRevert", receipt.Err)
	}
	if s.StorageSize(contract) != 0 {
		t.Error("reverted SSTORE must not persist")
	}
	if receipt.GasUsed != call.GasLimit {
		t.Errorf("failed tx must consume all gas: used %d of %d", receipt.GasUsed, call.GasLimit)
	}
	if s.GetNonce(sender) != 2 {
		t.Errorf("nonce = %d, want 2 (bump survives failure)", s.GetNonce(sender))
	}
}

func TestBuildBlockAndVerify(t *testing.T) {
	alloc := map[types.Address]evm.Word{sender: evm.WordFromUint64(1_000_000_000_000)}
	c := NewChain(DefaultConfig(), alloc)

	block, receipts, skipped := c.BuildBlock(miner, 1000, []*Transaction{
		transferTx(0, 10),
		transferTx(1, 20),
		transferTx(5, 30), // bad nonce: skipped
	})
	if len(receipts) != 2 {
		t.Fatalf("receipts = %d, want 2", len(receipts))
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], ErrNonceMismatch) {
		t.Fatalf("skipped = %v", skipped)
	}
	if len(block.Txs) != 2 {
		t.Fatalf("block txs = %d, want 2", len(block.Txs))
	}
	if block.Header.Number != 1 {
		t.Errorf("block number = %d", block.Header.Number)
	}
	if got := c.State().GetBalance(recv).Uint64(); got != 30 {
		t.Errorf("recipient balance = %d, want 30", got)
	}
	// Miner got fees + reward.
	reward := DefaultConfig().BlockReward
	wantMiner := reward.Add(evm.WordFromUint64(2 * IntrinsicGas))
	if got := c.State().GetBalance(miner); got != wantMiner {
		t.Errorf("miner balance = %v, want %v", got, wantMiner)
	}
	if err := c.VerifyHeaderChain(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockGasLimitEnforced(t *testing.T) {
	alloc := map[types.Address]evm.Word{sender: evm.WordFromUint64(1_000_000_000_000)}
	cfg := DefaultConfig()
	cfg.BlockGasLimit = 60_000 // room for one transfer only
	c := NewChain(cfg, alloc)
	_, receipts, skipped := c.BuildBlock(miner, 1, []*Transaction{
		transferTx(0, 1),
		transferTx(1, 1),
	})
	if len(receipts) != 1 {
		t.Fatalf("receipts = %d, want 1", len(receipts))
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], ErrGasLimitExceeded) {
		t.Fatalf("skipped = %v", skipped)
	}
}

func TestChainLinkingAcrossBlocks(t *testing.T) {
	alloc := map[types.Address]evm.Word{sender: evm.WordFromUint64(1_000_000_000_000)}
	c := NewChain(DefaultConfig(), alloc)
	for i := uint64(0); i < 5; i++ {
		c.BuildBlock(miner, int64(1000+i), []*Transaction{transferTx(i, 1)})
	}
	if c.Len() != 6 {
		t.Fatalf("chain length = %d, want 6", c.Len())
	}
	if err := c.VerifyHeaderChain(); err != nil {
		t.Fatal(err)
	}
	// Tamper with a header: verification must fail.
	c.blocks[3].Header.Time++
	if err := c.VerifyHeaderChain(); err == nil {
		t.Fatal("tampered chain must fail verification")
	}
	c.blocks[3].Header.Time--
}

func TestReplayDeterminism(t *testing.T) {
	alloc := map[types.Address]evm.Word{sender: evm.WordFromUint64(1_000_000_000_000)}
	c := NewChain(DefaultConfig(), alloc)

	runtime := evm.NewAssembler().
		Push(0).Op(evm.CALLDATALOAD).
		Push(0).Op(evm.SSTORE).Op(evm.STOP).
		MustBytes()
	deploy := &Transaction{
		Nonce: 0, From: sender, Data: evm.DeployWrapper(runtime),
		GasLimit: 500_000, GasPrice: 1,
	}
	_, receipts, skipped := c.BuildBlock(miner, 1, []*Transaction{deploy})
	if len(skipped) != 0 || !receipts[0].Success {
		t.Fatalf("deploy failed: %v %v", skipped, receipts[0].Err)
	}
	contract := *receipts[0].ContractAddress
	arg := evm.WordFromUint64(1234).Bytes32()
	call := &Transaction{
		Nonce: 1, From: sender, To: &contract, Data: arg[:],
		GasLimit: 200_000, GasPrice: 1,
	}
	c.BuildBlock(miner, 2, []*Transaction{call, transferTx(2, 42)})

	if err := c.Replay(alloc); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCommitInterval(t *testing.T) {
	alloc := map[types.Address]evm.Word{sender: evm.WordFromUint64(1_000_000_000_000)}
	cfg := DefaultConfig()
	cfg.CommitInterval = 4
	c := NewChain(cfg, alloc)
	var roots []types.Hash
	for i := uint64(0); i < 8; i++ {
		b, _, _ := c.BuildBlock(miner, int64(i), []*Transaction{transferTx(i, 1)})
		roots = append(roots, b.Header.StateRoot)
	}
	// Blocks 1-3 carry the genesis root forward; block 4 commits fresh.
	if roots[0] != roots[1] || roots[1] != roots[2] {
		t.Error("non-commit blocks must carry the previous root")
	}
	if roots[2] == roots[3] {
		t.Error("block 4 must commit a fresh root")
	}
}

func TestTxHashDistinct(t *testing.T) {
	a := transferTx(0, 1)
	b := transferTx(0, 2)
	if a.Hash() == b.Hash() {
		t.Error("different transactions must have different hashes")
	}
	c := transferTx(0, 1)
	if a.Hash() != c.Hash() {
		t.Error("identical transactions must have equal hashes")
	}
}

func TestTxRootOrderSensitive(t *testing.T) {
	t1, t2 := transferTx(0, 1), transferTx(1, 2)
	r1 := TxRoot([]*Transaction{t1, t2})
	r2 := TxRoot([]*Transaction{t2, t1})
	if r1 == r2 {
		t.Error("transaction root must commit to ordering")
	}
	if !TxRoot(nil).IsZero() {
		t.Error("empty tx root must be zero")
	}
}

func TestInternalCallTraceInReceipt(t *testing.T) {
	// Deploy a proxy that calls the address in calldata; check the receipt
	// carries both the outer tx and the internal call.
	runtime := evm.NewAssembler().
		Push(0).Push(0).Push(0).Push(0).Push(0).
		Push(0).Op(evm.CALLDATALOAD).
		Push(30000).
		Op(evm.CALL).Op(evm.POP).Op(evm.STOP).
		MustBytes()
	s := fundedState()
	deploy := &Transaction{
		Nonce: 0, From: sender, Data: evm.DeployWrapper(runtime),
		GasLimit: 500_000, GasPrice: 1,
	}
	receipt, err := ApplyTransaction(s, deploy, miner)
	if err != nil || !receipt.Success {
		t.Fatalf("deploy: %v %v", err, receipt)
	}
	proxy := *receipt.ContractAddress

	target := types.AddressFromSeq(77)
	var input [32]byte
	copy(input[12:], target[:])
	call := &Transaction{
		Nonce: 1, From: sender, To: &proxy, Data: input[:],
		GasLimit: 300_000, GasPrice: 1,
	}
	receipt, err = ApplyTransaction(s, call, miner)
	if err != nil || !receipt.Success {
		t.Fatalf("call: %v %+v", err, receipt)
	}
	if len(receipt.Traces) != 2 {
		t.Fatalf("traces = %d, want 2: %+v", len(receipt.Traces), receipt.Traces)
	}
	if receipt.Traces[1].Kind != evm.KindCall || receipt.Traces[1].From != proxy || receipt.Traces[1].To != target {
		t.Errorf("internal trace = %+v", receipt.Traces[1])
	}
}
