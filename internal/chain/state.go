// Package chain implements the blockchain substrate: world state with
// journaled rollback, transactions, blocks with Merkle commitments, and a
// processor that executes transactions through the EVM and collects the
// call traces the blockchain graph is built from.
package chain

import (
	"encoding/binary"
	"sort"

	"ethpart/internal/evm"
	"ethpart/internal/trie"
	"ethpart/internal/types"
)

// Account is the state record of an address.
type Account struct {
	Balance evm.Word
	Nonce   uint64
	Code    []byte
	Storage map[evm.Word]evm.Word
}

// clone returns a deep copy of the account.
func (a *Account) clone() *Account {
	c := &Account{Balance: a.Balance, Nonce: a.Nonce}
	if a.Code != nil {
		c.Code = append([]byte(nil), a.Code...)
	}
	if a.Storage != nil {
		c.Storage = make(map[evm.Word]evm.Word, len(a.Storage))
		for k, v := range a.Storage {
			c.Storage[k] = v
		}
	}
	return c
}

// journalKind tags what a journal entry undoes.
type journalKind uint8

const (
	journalAccountCreated journalKind = iota
	journalBalance
	journalNonce
	journalCode
	journalStorage
	journalAccountDeleted
)

// journalEntry records how to undo one state mutation. It is a tagged
// value rather than a closure: the journal is the hottest allocation site
// of transaction execution, and a value entry in a reused slice costs no
// heap allocation per mutation where a closure costs one.
type journalEntry struct {
	kind journalKind
	addr types.Address
	// prevWord is the previous balance (journalBalance) or storage value
	// (journalStorage); key is the storage key.
	prevWord evm.Word
	key      evm.Word
	// existed reports whether the storage slot existed before the write.
	existed   bool
	prevNonce uint64
	prevCode  []byte
	prevAcc   *Account
}

// revert undoes one journaled mutation.
func (e *journalEntry) revert(s *State) {
	switch e.kind {
	case journalAccountCreated:
		delete(s.accounts, e.addr)
	case journalBalance:
		if a, ok := s.accounts[e.addr]; ok {
			a.Balance = e.prevWord
		}
	case journalNonce:
		if a, ok := s.accounts[e.addr]; ok {
			a.Nonce = e.prevNonce
		}
	case journalCode:
		if a, ok := s.accounts[e.addr]; ok {
			a.Code = e.prevCode
		}
	case journalStorage:
		a, ok := s.accounts[e.addr]
		if !ok {
			return
		}
		if a.Storage == nil {
			a.Storage = make(map[evm.Word]evm.Word)
		}
		if e.existed {
			a.Storage[e.key] = e.prevWord
		} else {
			delete(a.Storage, e.key)
		}
	case journalAccountDeleted:
		s.accounts[e.addr] = e.prevAcc
	}
}

// State is the world state: a map of accounts with a mutation journal that
// supports snapshot/revert, mirroring how a production node unwinds failed
// transactions. It implements evm.StateDB.
//
// State is not safe for concurrent use.
type State struct {
	accounts map[types.Address]*Account
	journal  []journalEntry
}

var _ evm.StateDB = (*State)(nil)

// NewState returns an empty world state.
func NewState() *State {
	return &State{accounts: make(map[types.Address]*Account)}
}

// NewStateWithAlloc returns a state pre-funded with the given balances
// (the genesis allocation).
func NewStateWithAlloc(alloc map[types.Address]evm.Word) *State {
	s := NewState()
	for addr, bal := range alloc {
		s.accounts[addr] = &Account{Balance: bal}
	}
	return s
}

// Snapshot returns an identifier for the current journal position.
func (s *State) Snapshot() int { return len(s.journal) }

// RevertToSnapshot unwinds all mutations made after snapshot id.
func (s *State) RevertToSnapshot(id int) {
	for i := len(s.journal) - 1; i >= id; i-- {
		s.journal[i].revert(s)
	}
	s.journal = s.journal[:id]
}

// DiscardJournal drops undo history (called after a transaction commits).
func (s *State) DiscardJournal() { s.journal = s.journal[:0] }

// getOrNew returns the account for addr, creating and journaling it if
// missing.
func (s *State) getOrNew(addr types.Address) *Account {
	if acc, ok := s.accounts[addr]; ok {
		return acc
	}
	acc := &Account{}
	s.accounts[addr] = acc
	s.journal = append(s.journal, journalEntry{kind: journalAccountCreated, addr: addr})
	return acc
}

// Exist implements evm.StateDB.
func (s *State) Exist(addr types.Address) bool {
	_, ok := s.accounts[addr]
	return ok
}

// CreateAccount implements evm.StateDB.
func (s *State) CreateAccount(addr types.Address) { s.getOrNew(addr) }

// GetBalance implements evm.StateDB.
func (s *State) GetBalance(addr types.Address) evm.Word {
	if acc, ok := s.accounts[addr]; ok {
		return acc.Balance
	}
	return evm.Word{}
}

// AddBalance implements evm.StateDB.
func (s *State) AddBalance(addr types.Address, amount evm.Word) {
	acc := s.getOrNew(addr)
	prev := acc.Balance
	acc.Balance = acc.Balance.Add(amount)
	s.journal = append(s.journal, journalEntry{kind: journalBalance, addr: addr, prevWord: prev})
}

// SubBalance implements evm.StateDB.
func (s *State) SubBalance(addr types.Address, amount evm.Word) {
	acc := s.getOrNew(addr)
	prev := acc.Balance
	acc.Balance = acc.Balance.Sub(amount)
	s.journal = append(s.journal, journalEntry{kind: journalBalance, addr: addr, prevWord: prev})
}

// GetNonce implements evm.StateDB.
func (s *State) GetNonce(addr types.Address) uint64 {
	if acc, ok := s.accounts[addr]; ok {
		return acc.Nonce
	}
	return 0
}

// SetNonce implements evm.StateDB.
func (s *State) SetNonce(addr types.Address, nonce uint64) {
	acc := s.getOrNew(addr)
	prev := acc.Nonce
	acc.Nonce = nonce
	s.journal = append(s.journal, journalEntry{kind: journalNonce, addr: addr, prevNonce: prev})
}

// GetCode implements evm.StateDB.
func (s *State) GetCode(addr types.Address) []byte {
	if acc, ok := s.accounts[addr]; ok {
		return acc.Code
	}
	return nil
}

// SetCode implements evm.StateDB.
func (s *State) SetCode(addr types.Address, code []byte) {
	acc := s.getOrNew(addr)
	prev := acc.Code
	acc.Code = code
	s.journal = append(s.journal, journalEntry{kind: journalCode, addr: addr, prevCode: prev})
}

// GetState implements evm.StateDB.
func (s *State) GetState(addr types.Address, key evm.Word) evm.Word {
	if acc, ok := s.accounts[addr]; ok && acc.Storage != nil {
		return acc.Storage[key]
	}
	return evm.Word{}
}

// SetState implements evm.StateDB.
func (s *State) SetState(addr types.Address, key, value evm.Word) {
	acc := s.getOrNew(addr)
	if acc.Storage == nil {
		acc.Storage = make(map[evm.Word]evm.Word)
	}
	prev, existed := acc.Storage[key]
	if value.IsZero() {
		delete(acc.Storage, key) // zero writes clear the slot, as in Ethereum
	} else {
		acc.Storage[key] = value
	}
	s.journal = append(s.journal, journalEntry{
		kind: journalStorage, addr: addr, key: key, prevWord: prev, existed: existed,
	})
}

// DeleteAccount removes addr from the state entirely — balance, nonce,
// code and every storage slot — journaling the removal so it reverts like
// any other mutation. It is the purge half of a cross-shard migration: the
// source shard must not keep a ghost copy of the account.
func (s *State) DeleteAccount(addr types.Address) {
	acc, ok := s.accounts[addr]
	if !ok {
		return
	}
	delete(s.accounts, addr)
	s.journal = append(s.journal, journalEntry{kind: journalAccountDeleted, addr: addr, prevAcc: acc})
}

// StorageSize implements evm.StateDB.
func (s *State) StorageSize(addr types.Address) int {
	if acc, ok := s.accounts[addr]; ok {
		return len(acc.Storage)
	}
	return 0
}

// AccountCount returns the number of accounts in the state.
func (s *State) AccountCount() int { return len(s.accounts) }

// Copy returns a deep copy of the state with an empty journal.
func (s *State) Copy() *State {
	c := NewState()
	for addr, acc := range s.accounts {
		c.accounts[addr] = acc.clone()
	}
	return c
}

// encodeAccount serializes an account for the state trie: balance, nonce,
// code hash and a digest of the sorted storage slots. Any change to an
// account changes its encoding and therefore the state root.
func encodeAccount(acc *Account) []byte {
	buf := make([]byte, 0, 32+8+types.HashLen*2)
	bal := acc.Balance.Bytes32()
	buf = append(buf, bal[:]...)
	var nonce [8]byte
	binary.BigEndian.PutUint64(nonce[:], acc.Nonce)
	buf = append(buf, nonce[:]...)
	codeHash := types.HashData(acc.Code)
	buf = append(buf, codeHash[:]...)
	storageHash := hashStorage(acc.Storage)
	buf = append(buf, storageHash[:]...)
	return buf
}

// hashStorage digests storage slots in sorted key order so the result is
// deterministic.
func hashStorage(storage map[evm.Word]evm.Word) types.Hash {
	if len(storage) == 0 {
		return types.Hash{}
	}
	keys := make([]evm.Word, 0, len(storage))
	for k := range storage {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Cmp(keys[j]) < 0 })
	parts := make([][]byte, 0, 2*len(keys))
	for _, k := range keys {
		kb, vb := k.Bytes32(), storage[k].Bytes32()
		parts = append(parts, kb[:], vb[:])
	}
	return types.HashConcat(parts...)
}

// EachStorage calls fn for every storage slot of addr until fn returns
// false. Iteration order is unspecified.
func (s *State) EachStorage(addr types.Address, fn func(key, value evm.Word) bool) {
	acc, ok := s.accounts[addr]
	if !ok {
		return
	}
	for k, v := range acc.Storage {
		if !fn(k, v) {
			return
		}
	}
}

// CopyStorage copies every storage slot of addr from src to dst and
// returns the number of slots copied — the state-payload of migrating a
// contract between shards.
func CopyStorage(src, dst *State, addr types.Address) int {
	n := 0
	src.EachStorage(addr, func(k, v evm.Word) bool {
		dst.SetState(addr, k, v)
		n++
		return true
	})
	return n
}

// Commit computes the Merkle root of the whole state. It is O(accounts) and
// intended for block sealing at configurable intervals, not per transaction.
func (s *State) Commit() types.Hash {
	t := trie.New()
	for addr, acc := range s.accounts {
		t.Put(addr[:], encodeAccount(acc))
	}
	return t.Root()
}
