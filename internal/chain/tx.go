package chain

import (
	"encoding/binary"

	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// Transaction is a user-submitted message. A nil To deploys the contract
// whose init code is in Data; otherwise Data is the call input.
//
// There are no signatures: the synthetic workload has no adversary, and
// signature checking is orthogonal to partitioning behaviour. From is
// therefore carried explicitly.
type Transaction struct {
	Nonce    uint64
	From     types.Address
	To       *types.Address
	Value    evm.Word
	GasLimit uint64
	GasPrice uint64
	Data     []byte
}

// IsCreate reports whether the transaction deploys a contract.
func (tx *Transaction) IsCreate() bool { return tx.To == nil }

// IntrinsicGas is the base cost charged for any transaction before
// execution, as in Ethereum.
const IntrinsicGas = 21_000

// CreateGas is the additional intrinsic cost of a contract-creating
// transaction.
const CreateGas = 32_000

// intrinsicGas returns the pre-execution gas cost of tx.
func (tx *Transaction) intrinsicGas() uint64 {
	gas := uint64(IntrinsicGas)
	if tx.IsCreate() {
		gas += CreateGas
	}
	gas += uint64(len(tx.Data)) * 4
	return gas
}

// Hash returns the transaction digest.
func (tx *Transaction) Hash() types.Hash {
	var num [8 * 3]byte
	binary.BigEndian.PutUint64(num[0:], tx.Nonce)
	binary.BigEndian.PutUint64(num[8:], tx.GasLimit)
	binary.BigEndian.PutUint64(num[16:], tx.GasPrice)
	var to []byte
	if tx.To != nil {
		to = tx.To[:]
	}
	val := tx.Value.Bytes32()
	return types.HashConcat(num[:], tx.From[:], to, val[:], tx.Data)
}

// Receipt is the result of executing a transaction.
type Receipt struct {
	TxHash  types.Hash
	TxIndex int
	// Success is false when execution failed (revert, out of gas, bad
	// nonce); the failure reason is in Err.
	Success bool
	Err     error
	GasUsed uint64
	// ContractAddress is set for successful contract creations.
	ContractAddress *types.Address
	// Traces holds the outer transaction entry plus every internal call
	// and creation performed during execution — the edges of the
	// blockchain graph.
	Traces []evm.CallTrace
}
