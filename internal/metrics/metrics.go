// Package metrics implements the paper's evaluation metrics (Eqs. 1 and 2):
// static and dynamic edge-cut, static and dynamic balance, the normalized
// balance used in Fig. 5, and helpers shared by the simulator and the
// benchmark harness.
//
// Static metrics treat every vertex and edge as weight one; dynamic metrics
// use the frequency weights the graph accumulates, which the paper argues
// reflect the system's real cross-shard traffic and load.
package metrics

import (
	"ethpart/internal/graph"
)

// ShardFunc reports the shard of a vertex. The second result is false when
// the vertex is unassigned; unassigned endpoints make an edge uncounted.
type ShardFunc func(graph.VertexID) (int, bool)

// EdgeCut returns the fraction of edges whose endpoints live in different
// shards (Eq. 1). With dynamic=true edges are weighted by interaction
// frequency; otherwise every edge counts one.
func EdgeCut(g *graph.Graph, shardOf ShardFunc, dynamic bool) float64 {
	var cut, total int64
	g.Edges(func(u, v graph.VertexID, w int64) bool {
		su, ok1 := shardOf(u)
		sv, ok2 := shardOf(v)
		if !ok1 || !ok2 {
			return true
		}
		c := int64(1)
		if dynamic {
			c = w
		}
		total += c
		if su != sv {
			cut += c
		}
		return true
	})
	if total == 0 {
		return 0
	}
	return float64(cut) / float64(total)
}

// Balance returns the paper's balance metric (Eq. 2): the size of the
// largest shard times k over the total, so 1.0 is perfect balance and 2.0
// at k=2 means one shard holds everything. With dynamic=true sizes are
// vertex-weight sums (load); otherwise vertex counts.
func Balance(g *graph.Graph, shardOf ShardFunc, k int, dynamic bool) float64 {
	loads := make([]int64, k)
	var total int64
	g.Vertices(func(id graph.VertexID, _ graph.Kind, w int64) bool {
		s, ok := shardOf(id)
		if !ok {
			return true
		}
		c := int64(1)
		if dynamic {
			c = w
		}
		loads[s] += c
		total += c
		return true
	})
	return balanceOf(loads, total, k)
}

// EdgeCutParts is EdgeCut over a CSR and a partitioner result; each
// undirected edge counts once.
func EdgeCutParts(c *graph.CSR, parts []int, dynamic bool) float64 {
	var cut, total int64
	for u := int32(0); int(u) < c.N(); u++ {
		adj, w := c.Row(u)
		for p, v := range adj {
			if v <= u { // visit each undirected edge once
				continue
			}
			cw := int64(1)
			if dynamic {
				cw = w[p]
			}
			total += cw
			if parts[u] != parts[v] {
				cut += cw
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cut) / float64(total)
}

// BalanceParts is Balance over a CSR and a partitioner result.
func BalanceParts(c *graph.CSR, parts []int, k int, dynamic bool) float64 {
	loads := make([]int64, k)
	var total int64
	for i := 0; i < c.N(); i++ {
		w := int64(1)
		if dynamic {
			w = c.VW[i]
		}
		loads[parts[i]] += w
		total += w
	}
	return balanceOf(loads, total, k)
}

// LoadBalance computes Eq. 2 directly from per-shard loads, used by the
// simulator for per-window dynamic balance where the loads are the activity
// observed in the window.
func LoadBalance(loads []int64) float64 {
	var total int64
	for _, l := range loads {
		total += l
	}
	return balanceOf(loads, total, len(loads))
}

// NormalizedBalance maps a balance value to [0,1] across different shard
// counts, as in Fig. 5: (balance − 1) / (k − 1). For k=1 the balance is
// always exactly 1 and the normalized value is 0.
func NormalizedBalance(balance float64, k int) float64 {
	if k <= 1 {
		return 0
	}
	return (balance - 1) / float64(k-1)
}

func balanceOf(loads []int64, total int64, k int) float64 {
	if total == 0 {
		return 1
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return float64(max) * float64(k) / float64(total)
}
