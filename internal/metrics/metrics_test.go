package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/graph"
)

// fixedShards adapts a map to a ShardFunc.
func fixedShards(m map[graph.VertexID]int) ShardFunc {
	return func(v graph.VertexID) (int, bool) {
		s, ok := m[v]
		return s, ok
	}
}

func buildGraph(t *testing.T, edges [][3]int64) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, e := range edges {
		if err := g.AddInteraction(graph.VertexID(e[0]), graph.VertexID(e[1]),
			graph.KindAccount, graph.KindAccount, e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestEdgeCutStaticAndDynamic(t *testing.T) {
	// Edges: 1-2 (w=9, same shard), 1-3 (w=1, cut).
	g := buildGraph(t, [][3]int64{{1, 2, 9}, {1, 3, 1}})
	shards := fixedShards(map[graph.VertexID]int{1: 0, 2: 0, 3: 1})

	static := EdgeCut(g, shards, false)
	if math.Abs(static-0.5) > 1e-9 {
		t.Errorf("static cut = %v, want 0.5", static)
	}
	dynamic := EdgeCut(g, shards, true)
	if math.Abs(dynamic-0.1) > 1e-9 {
		t.Errorf("dynamic cut = %v, want 0.1", dynamic)
	}
}

func TestEdgeCutSkipsUnassigned(t *testing.T) {
	g := buildGraph(t, [][3]int64{{1, 2, 1}, {1, 3, 1}})
	shards := fixedShards(map[graph.VertexID]int{1: 0, 2: 1}) // 3 unassigned
	if got := EdgeCut(g, shards, false); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("cut = %v, want 1.0 (only the assigned edge counts)", got)
	}
}

func TestEdgeCutEmptyGraph(t *testing.T) {
	if got := EdgeCut(graph.New(), fixedShards(nil), false); got != 0 {
		t.Errorf("empty graph cut = %v, want 0", got)
	}
}

func TestBalancePaperExample(t *testing.T) {
	// Eq. 2 example from the paper: k=2, one shard 30% over average gives
	// balance 1.3. With 13 vs 7 vertices: max=13, 13*2/20 = 1.3.
	g := graph.New()
	shards := map[graph.VertexID]int{}
	for i := 0; i < 13; i++ {
		g.EnsureVertex(graph.VertexID(i), graph.KindAccount)
		shards[graph.VertexID(i)] = 0
	}
	for i := 13; i < 20; i++ {
		g.EnsureVertex(graph.VertexID(i), graph.KindAccount)
		shards[graph.VertexID(i)] = 1
	}
	got := Balance(g, fixedShards(shards), 2, false)
	if math.Abs(got-1.3) > 1e-9 {
		t.Errorf("balance = %v, want 1.3", got)
	}
}

func TestDynamicBalanceUsesWeights(t *testing.T) {
	// Two vertices per shard, but shard 0's vertices are 9x more active.
	g := buildGraph(t, [][3]int64{{1, 2, 9}, {3, 4, 1}})
	shards := fixedShards(map[graph.VertexID]int{1: 0, 2: 0, 3: 1, 4: 1})
	static := Balance(g, shards, 2, false)
	if math.Abs(static-1.0) > 1e-9 {
		t.Errorf("static balance = %v, want 1.0", static)
	}
	dynamic := Balance(g, shards, 2, true)
	if math.Abs(dynamic-1.8) > 1e-9 {
		t.Errorf("dynamic balance = %v, want 1.8 (18 of 20 weight in one shard)", dynamic)
	}
}

func TestLoadBalance(t *testing.T) {
	if got := LoadBalance([]int64{10, 10}); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("LoadBalance(10,10) = %v", got)
	}
	if got := LoadBalance([]int64{20, 0}); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("LoadBalance(20,0) = %v", got)
	}
	if got := LoadBalance([]int64{0, 0}); got != 1 {
		t.Errorf("LoadBalance of no load = %v, want 1 (perfectly balanced)", got)
	}
}

func TestNormalizedBalance(t *testing.T) {
	tests := []struct {
		bal  float64
		k    int
		want float64
	}{
		{1.0, 2, 0},
		{2.0, 2, 1},
		{1.5, 2, 0.5},
		{8.0, 8, 1},
		{1.0, 8, 0},
		{1.0, 1, 0},
	}
	for _, tt := range tests {
		if got := NormalizedBalance(tt.bal, tt.k); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("NormalizedBalance(%v, %d) = %v, want %v", tt.bal, tt.k, got, tt.want)
		}
	}
}

func TestPartsVariantsAgreeWithGraphVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.New()
	shards := map[graph.VertexID]int{}
	for i := 0; i < 500; i++ {
		u := graph.VertexID(rng.Intn(100))
		v := graph.VertexID(rng.Intn(100))
		if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, int64(1+rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
	}
	g.Vertices(func(id graph.VertexID, _ graph.Kind, _ int64) bool {
		shards[id] = int(id) % 4
		return true
	})
	c := graph.NewCSR(g)
	parts := make([]int, c.N())
	for i, id := range c.IDs {
		parts[i] = shards[id]
	}
	// Balance agrees exactly (same vertex sets).
	for _, dyn := range []bool{false, true} {
		bg := Balance(g, fixedShards(shards), 4, dyn)
		bp := BalanceParts(c, parts, 4, dyn)
		if math.Abs(bg-bp) > 1e-9 {
			t.Errorf("dyn=%v balance mismatch: graph %v vs parts %v", dyn, bg, bp)
		}
	}
	// Dynamic cut agrees exactly: every directed edge u->v contributes its
	// weight once in the graph view; the CSR merges u->v and v->u but the
	// merged weight equals the sum, so totals and cut weights match.
	cg := EdgeCut(g, fixedShards(shards), true)
	cp := EdgeCutParts(c, parts, true)
	if math.Abs(cg-cp) > 1e-9 {
		t.Errorf("dynamic cut mismatch: graph %v vs parts %v", cg, cp)
	}
}

func TestPropertyCutBounds(t *testing.T) {
	// Property: edge-cut is in [0,1]; balance is in [1,k] for any
	// assignment covering all vertices.
	f := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 2
		m := int(mRaw%150) + 1
		k := int(kRaw%8) + 1
		g := graph.New()
		shards := map[graph.VertexID]int{}
		for i := 0; i < m; i++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, int64(1+rng.Intn(9))); err != nil {
				return false
			}
		}
		g.Vertices(func(id graph.VertexID, _ graph.Kind, _ int64) bool {
			shards[id] = rng.Intn(k)
			return true
		})
		sf := fixedShards(shards)
		for _, dyn := range []bool{false, true} {
			cut := EdgeCut(g, sf, dyn)
			if cut < 0 || cut > 1 {
				return false
			}
			bal := Balance(g, sf, k, dyn)
			if bal < 1-1e-9 || bal > float64(k)+1e-9 {
				return false
			}
			nb := NormalizedBalance(bal, k)
			if nb < -1e-9 || nb > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
