package partition

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"ethpart/internal/graph"
)

// Hash is the paper's baseline method: shard = hash(vertex id) mod k. It
// is stateless — a vertex's shard never changes — so repartitioning moves
// zero vertices, static balance is near-perfect for uniform hashes, and the
// edge-cut approaches (k-1)/k as k grows (≈88% of transactions are
// multi-shard at k=8 in the paper).
type Hash struct{}

var _ Partitioner = Hash{}

// ShardOf returns the hash shard of a single vertex. The simulator uses it
// to place newly appearing vertices under the hashing method.
func (Hash) ShardOf(v graph.VertexID, k int) int {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(k))
}

// Partition implements Partitioner.
func (hp Hash) Partition(c *graph.CSR, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: hash: k must be >= 1, got %d", k)
	}
	parts := make([]int, c.N())
	for i, id := range c.IDs {
		parts[i] = hp.ShardOf(id, k)
	}
	return parts, nil
}
