package partition

import (
	"fmt"

	"ethpart/internal/graph"
)

// Hash is the paper's baseline method: shard = hash(vertex id) mod k. It
// is stateless — a vertex's shard never changes — so repartitioning moves
// zero vertices, static balance is near-perfect for uniform hashes, and the
// edge-cut approaches (k-1)/k as k grows (≈88% of transactions are
// multi-shard at k=8 in the paper).
type Hash struct{}

var _ Partitioner = Hash{}

// fnv64a parameters, matching hash/fnv's 64-bit FNV-1a.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ShardOf returns the hash shard of a single vertex. The simulator uses it
// to place newly appearing vertices under the hashing method — the
// per-record hot path of MethodHash — so the FNV-1a fold over the ID's
// eight big-endian bytes is inlined rather than built from a hash.Hash64:
// same outputs as hash/fnv (pinned by TestHashShardOfMatchesFNV and the
// golden vectors), no hasher construction, and the whole function inlines
// into the caller.
func (Hash) ShardOf(v graph.VertexID, k int) int {
	h := uint64(fnvOffset64)
	h = (h ^ (uint64(v) >> 56)) * fnvPrime64
	h = (h ^ (uint64(v) >> 48 & 0xff)) * fnvPrime64
	h = (h ^ (uint64(v) >> 40 & 0xff)) * fnvPrime64
	h = (h ^ (uint64(v) >> 32 & 0xff)) * fnvPrime64
	h = (h ^ (uint64(v) >> 24 & 0xff)) * fnvPrime64
	h = (h ^ (uint64(v) >> 16 & 0xff)) * fnvPrime64
	h = (h ^ (uint64(v) >> 8 & 0xff)) * fnvPrime64
	h = (h ^ (uint64(v) & 0xff)) * fnvPrime64
	return int(h % uint64(k))
}

// ShardOfBytes is the same 64-bit FNV-1a fold over an arbitrary byte key —
// the one shard-hash implementation of the repo. The chain layer hashes
// 20-byte account addresses through it (shardchain's fallback placement),
// so the two layers' hashes can never drift; TestHashShardOfBytesMatchesFNV
// pins both against hash/fnv.
func (Hash) ShardOfBytes(key []byte, k int) int {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return int(h % uint64(k))
}

// Partition implements Partitioner.
func (hp Hash) Partition(c *graph.CSR, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: hash: k must be >= 1, got %d", k)
	}
	parts := make([]int, c.N())
	for i, id := range c.IDs {
		parts[i] = hp.ShardOf(id, k)
	}
	return parts, nil
}
