package partition

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"testing"

	"ethpart/internal/graph"
)

// fnvShardOf is the original hash/fnv-based implementation, kept as the
// test oracle for the inlined fold.
func fnvShardOf(v graph.VertexID, k int) int {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(k))
}

// TestHashShardOfMatchesFNV pins the inlined FNV-1a fold to hash/fnv over
// the full shapes the simulator uses: random IDs (dense and spill-region)
// at every figure shard count. A divergence here would silently shift
// every hashing figure.
func TestHashShardOfMatchesFNV(t *testing.T) {
	var h Hash
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := graph.VertexID(rng.Uint64())
		if i%2 == 0 {
			v &= 1<<22 - 1 // dense registry-assigned region
		}
		for _, k := range []int{1, 2, 3, 4, 8, 16} {
			if got, want := h.ShardOf(v, k), fnvShardOf(v, k); got != want {
				t.Fatalf("ShardOf(%d, %d) = %d, want %d", v, k, got, want)
			}
		}
	}
}

// TestHashShardOfGolden pins concrete shard outputs, so the placement of
// every hash-homed vertex — and with it every figure metric — cannot shift
// even if both implementations were changed together.
func TestHashShardOfGolden(t *testing.T) {
	var h Hash
	for _, tc := range []struct {
		v    graph.VertexID
		k    int
		want int
	}{
		{0, 2, 1}, {1, 2, 0}, {2, 2, 1}, {3, 2, 0},
		{0, 4, 1}, {1, 4, 2}, {7, 4, 0}, {42, 4, 3},
		{123456, 8, 0}, {1 << 40, 8, 4}, {graph.VertexID(^uint64(0) >> 1), 8, 5},
	} {
		if got := h.ShardOf(tc.v, tc.k); got != tc.want {
			t.Errorf("ShardOf(%d, %d) = %d, want %d", tc.v, tc.k, got, tc.want)
		}
	}
}

// TestHashShardOfAllocFree pins the hot-path property the inlining buys:
// zero heap allocations per placement, independent of compiler escape
// heuristics on hash.Hash64.
func TestHashShardOfAllocFree(t *testing.T) {
	var h Hash
	if n := testing.AllocsPerRun(1000, func() {
		_ = h.ShardOf(graph.VertexID(123456), 8)
	}); n != 0 {
		t.Errorf("ShardOf allocates %v per op, want 0", n)
	}
}

// BenchmarkHashShardOf tracks the per-placement cost of the MethodHash hot
// path.
func BenchmarkHashShardOf(b *testing.B) {
	var h Hash
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.ShardOf(graph.VertexID(i), 8)
	}
}
