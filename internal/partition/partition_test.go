package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
)

func TestNewAssignmentRejectsBadK(t *testing.T) {
	if _, err := NewAssignment(0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := NewAssignment(-1); err == nil {
		t.Fatal("k=-1 must be rejected")
	}
}

func TestAssignmentBasics(t *testing.T) {
	a, err := NewAssignment(3)
	if err != nil {
		t.Fatal(err)
	}
	prev, moved, err := a.Assign(10, 1)
	if err != nil || prev != NoShard || moved {
		t.Fatalf("first assign: prev=%d moved=%v err=%v", prev, moved, err)
	}
	if s, ok := a.ShardOf(10); !ok || s != 1 {
		t.Fatalf("ShardOf(10) = %d, %v", s, ok)
	}
	if a.Count(1) != 1 || a.Len() != 1 {
		t.Fatalf("counts wrong: %v len %d", a.Counts(), a.Len())
	}

	prev, moved, err = a.Assign(10, 2)
	if err != nil || prev != 1 || !moved {
		t.Fatalf("move: prev=%d moved=%v err=%v", prev, moved, err)
	}
	if a.Count(1) != 0 || a.Count(2) != 1 {
		t.Fatalf("counts after move: %v", a.Counts())
	}

	// Re-assign to the same shard: not a move.
	_, moved, _ = a.Assign(10, 2)
	if moved {
		t.Fatal("same-shard assign must not count as a move")
	}

	if _, _, err := a.Assign(11, 5); err == nil {
		t.Fatal("out-of-range shard must be rejected")
	}
}

func TestAssignmentCloneIndependent(t *testing.T) {
	a, _ := NewAssignment(2)
	a.Assign(1, 0)
	c := a.Clone()
	a.Assign(1, 1)
	if s, _ := c.ShardOf(1); s != 0 {
		t.Fatal("clone mutated by original")
	}
	if c.Count(0) != 1 {
		t.Fatal("clone counts mutated")
	}
}

func TestAssignmentApplyCountsMoves(t *testing.T) {
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.EnsureVertex(graph.VertexID(i), graph.KindAccount)
	}
	c := graph.NewCSR(g)
	a, _ := NewAssignment(2)
	for i := 0; i < 6; i++ {
		a.Assign(graph.VertexID(i), 0)
	}
	// New parts move vertices 3,4,5 to shard 1.
	parts := []int{0, 0, 0, 1, 1, 1}
	moves, err := a.Apply(c, parts)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 3 {
		t.Fatalf("moves = %d, want 3", moves)
	}
	if a.Count(0) != 3 || a.Count(1) != 3 {
		t.Fatalf("counts = %v", a.Counts())
	}
	// Applying the same parts again moves nothing.
	moves, err = a.Apply(c, parts)
	if err != nil || moves != 0 {
		t.Fatalf("idempotent apply: moves=%d err=%v", moves, err)
	}
}

func TestToPartsMarksUnassigned(t *testing.T) {
	g := graph.New()
	g.EnsureVertex(1, graph.KindAccount)
	g.EnsureVertex(2, graph.KindAccount)
	c := graph.NewCSR(g)
	a, _ := NewAssignment(2)
	a.Assign(1, 1)
	parts := a.ToParts(c)
	i1, i2 := c.LocalOf(1), c.LocalOf(2)
	if parts[i1] != 1 {
		t.Errorf("assigned vertex got %d", parts[i1])
	}
	if parts[i2] != NoShard {
		t.Errorf("unassigned vertex got %d, want NoShard", parts[i2])
	}
}

func TestHashPartitionerProperties(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10000; i++ {
		g.EnsureVertex(graph.VertexID(i), graph.KindAccount)
	}
	c := graph.NewCSR(g)
	for _, k := range []int{2, 4, 8} {
		parts, err := Hash{}.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateParts(parts, k); err != nil {
			t.Fatal(err)
		}
		// Static balance must be near-perfect for a uniform hash.
		bal := metrics.BalanceParts(c, parts, k, false)
		if bal > 1.1 {
			t.Errorf("k=%d hash balance = %.3f, want <= 1.1", k, bal)
		}
	}
}

func TestHashShardStable(t *testing.T) {
	h := Hash{}
	for v := graph.VertexID(0); v < 100; v++ {
		if h.ShardOf(v, 8) != h.ShardOf(v, 8) {
			t.Fatal("hash shard must be deterministic")
		}
		if s := h.ShardOf(v, 8); s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
	}
}

func TestHashEdgeCutApproachesKMinus1OverK(t *testing.T) {
	// On a random graph the expected hash cut is (k-1)/k; the paper reports
	// ~50% at k=2 and ~88% at k=8.
	rng := rand.New(rand.NewSource(7))
	g := graph.New()
	for i := 0; i < 30000; i++ {
		u := graph.VertexID(rng.Intn(5000))
		v := graph.VertexID(rng.Intn(5000))
		if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, 1); err != nil {
			t.Fatal(err)
		}
	}
	c := graph.NewCSR(g)
	for _, k := range []int{2, 8} {
		parts, err := Hash{}.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		cut := metrics.EdgeCutParts(c, parts, false)
		want := float64(k-1) / float64(k)
		if math.Abs(cut-want) > 0.05 {
			t.Errorf("k=%d hash cut = %.3f, want ≈ %.3f", k, cut, want)
		}
	}
}

func TestProbabilityMatrix(t *testing.T) {
	// Shard 0 proposes 10 to shard 1; shard 1 proposes 4 back. The oracle
	// must throttle 0→1 to 4/10 and let 1→0 flow fully.
	x := [][]int{
		{0, 10},
		{4, 0},
	}
	p := ProbabilityMatrix(x)
	if got := p[0][1]; math.Abs(got-0.4) > 1e-9 {
		t.Errorf("p[0][1] = %v, want 0.4", got)
	}
	if got := p[1][0]; math.Abs(got-1.0) > 1e-9 {
		t.Errorf("p[1][0] = %v, want 1.0", got)
	}
	if p[0][0] != 0 || p[1][1] != 0 {
		t.Error("diagonal must be zero")
	}
}

func TestProbabilityMatrixZeroFlows(t *testing.T) {
	x := [][]int{
		{0, 5},
		{0, 0},
	}
	p := ProbabilityMatrix(x)
	if p[0][1] != 0 {
		t.Errorf("one-sided flow must have probability 0, got %v", p[0][1])
	}
}

func TestPropertyProbabilityMatrixBalanced(t *testing.T) {
	// Property: expected flow i→j equals expected flow j→i, and every
	// probability is in [0,1].
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%6) + 2
		x := make([][]int, k)
		for i := range x {
			x[i] = make([]int, k)
			for j := range x[i] {
				if i != j {
					x[i][j] = rng.Intn(50)
				}
			}
		}
		p := ProbabilityMatrix(x)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if p[i][j] < 0 || p[i][j] > 1 {
					return false
				}
				flowIJ := p[i][j] * float64(x[i][j])
				flowJI := p[j][i] * float64(x[j][i])
				if math.Abs(flowIJ-flowJI) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clusteredCSR builds two planted clusters and returns the CSR.
func clusteredCSR(rng *rand.Rand, n int) *graph.CSR {
	g := graph.New()
	for c := 0; c < 2; c++ {
		base := c * n
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					continue
				}
				u := graph.VertexID(base + i)
				v := graph.VertexID(base + j)
				if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, 3); err != nil {
					panic(err)
				}
			}
		}
	}
	for b := 0; b < 4; b++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(n + rng.Intn(n))
		if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, 1); err != nil {
			panic(err)
		}
	}
	return graph.NewCSR(g)
}

func TestKLImprovesHashPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := clusteredCSR(rng, 30)
	start, err := Hash{}.Partition(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	kl := NewKL(KLConfig{MaxRounds: 12, Seed: 5})
	refined, err := kl.Refine(c, 2, start)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateParts(refined, 2); err != nil {
		t.Fatal(err)
	}
	before := metrics.EdgeCutParts(c, start, true)
	after := metrics.EdgeCutParts(c, refined, true)
	if after >= before {
		t.Errorf("KL did not improve cut: %.4f -> %.4f", before, after)
	}
	// KL must keep shards roughly balanced (the oracle matches flows).
	bal := metrics.BalanceParts(c, refined, 2, false)
	if bal > 1.4 {
		t.Errorf("KL balance = %.3f, want <= 1.4", bal)
	}
}

func TestKLInputValidation(t *testing.T) {
	c := graph.NewCSR(graph.New())
	kl := NewKL(KLConfig{})
	if _, err := kl.Refine(c, 0, nil); err == nil {
		t.Error("k=0 must be rejected")
	}
	g := graph.New()
	g.EnsureVertex(1, graph.KindAccount)
	c = graph.NewCSR(g)
	if _, err := kl.Refine(c, 2, []int{}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if _, err := kl.Refine(c, 2, []int{7}); err == nil {
		t.Error("illegal shard in current must be rejected")
	}
}

func TestKLDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := clusteredCSR(rng, 10)
	start, _ := Hash{}.Partition(c, 2)
	orig := append([]int(nil), start...)
	if _, err := NewKL(KLConfig{Seed: 3}).Refine(c, 2, start); err != nil {
		t.Fatal(err)
	}
	for i := range start {
		if start[i] != orig[i] {
			t.Fatal("Refine mutated its input")
		}
	}
}

func TestPlaceVertexPrefersNeighbourShard(t *testing.T) {
	g := graph.New()
	// v=100 interacts heavily with 1 (shard 0) and lightly with 2 (shard 1).
	mustAdd(t, g, 100, 1, 5)
	mustAdd(t, g, 100, 2, 1)
	a, _ := NewAssignment(2)
	a.Assign(1, 0)
	a.Assign(2, 1)
	if got := PlaceVertex(g, a, 100); got != 0 {
		t.Errorf("PlaceVertex = %d, want 0 (heavier attraction)", got)
	}
}

func TestPlaceVertexTieBreaksTowardBalance(t *testing.T) {
	g := graph.New()
	mustAdd(t, g, 100, 1, 3)
	mustAdd(t, g, 100, 2, 3)
	a, _ := NewAssignment(2)
	a.Assign(1, 0)
	a.Assign(2, 1)
	// Load shard 0 with extra vertices so the tie breaks to shard 1.
	a.Assign(50, 0)
	a.Assign(51, 0)
	if got := PlaceVertex(g, a, 100); got != 1 {
		t.Errorf("PlaceVertex = %d, want 1 (balance tie-break)", got)
	}
}

func TestPlaceVertexNoNeighboursFallsBackToLeastLoaded(t *testing.T) {
	g := graph.New()
	g.EnsureVertex(100, graph.KindAccount)
	a, _ := NewAssignment(3)
	a.Assign(1, 0)
	a.Assign(2, 0)
	a.Assign(3, 1)
	if got := PlaceVertex(g, a, 100); got != 2 {
		t.Errorf("PlaceVertex = %d, want 2 (empty shard)", got)
	}
}

func mustAdd(t *testing.T, g *graph.Graph, u, v graph.VertexID, w int64) {
	t.Helper()
	if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, w); err != nil {
		t.Fatal(err)
	}
}
