package partition

import (
	"hash/fnv"
	"math/rand"
	"strings"
	"testing"

	"ethpart/internal/graph"
)

// TestAssignmentResize: grow keeps every assignment and opens empty shards;
// shrink succeeds only once the dropped shards are empty, and the orphan
// error names the offending shard.
func TestAssignmentResize(t *testing.T) {
	a, err := NewAssignment(2)
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.VertexID(0); v < 10; v++ {
		if _, _, err := a.Assign(v, int(v%2)); err != nil {
			t.Fatal(err)
		}
	}

	if err := a.Resize(4); err != nil {
		t.Fatal(err)
	}
	if a.K() != 4 {
		t.Fatalf("K after grow = %d, want 4", a.K())
	}
	if a.Count(2) != 0 || a.Count(3) != 0 {
		t.Errorf("new shards not empty: %d, %d", a.Count(2), a.Count(3))
	}
	for v := graph.VertexID(0); v < 10; v++ {
		if s, ok := a.ShardOf(v); !ok || s != int(v%2) {
			t.Errorf("grow moved vertex %d: shard %d, ok=%v", v, s, ok)
		}
	}

	// Shrink with vertices still on shard >= newK must fail and change
	// nothing.
	if _, _, err := a.Assign(100, 3); err != nil {
		t.Fatal(err)
	}
	err = a.Resize(2)
	if err == nil {
		t.Fatal("Resize(2) accepted with a vertex on shard 3")
	}
	if !strings.Contains(err.Error(), "shard 3") {
		t.Errorf("orphan error does not name the shard: %v", err)
	}
	if a.K() != 4 {
		t.Errorf("failed shrink changed K to %d", a.K())
	}

	// Drain shard 3, then the shrink goes through.
	if _, _, err := a.Assign(100, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Resize(2); err != nil {
		t.Fatal(err)
	}
	if a.K() != 2 {
		t.Fatalf("K after shrink = %d, want 2", a.K())
	}
	if s, ok := a.ShardOf(100); !ok || s != 0 {
		t.Errorf("shrink lost vertex 100: shard %d, ok=%v", s, ok)
	}

	if err := a.Resize(0); err == nil {
		t.Error("Resize(0) accepted")
	}
}

// TestHashShardOfBytesMatchesFNV pins the byte-key fold (the shardchain
// address hash since the unification) to hash/fnv, over 20-byte
// address-shaped keys and other lengths.
func TestHashShardOfBytesMatchesFNV(t *testing.T) {
	var h Hash
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(32)
		if i%2 == 0 {
			n = 20 // address-shaped
		}
		key := make([]byte, n)
		rng.Read(key)
		ref := fnv.New64a()
		ref.Write(key)
		for _, k := range []int{1, 2, 3, 4, 8, 16} {
			if got, want := h.ShardOfBytes(key, k), int(ref.Sum64()%uint64(k)); got != want {
				t.Fatalf("ShardOfBytes(%x, %d) = %d, want %d", key, k, got, want)
			}
		}
	}
}
