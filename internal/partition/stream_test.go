package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
)

func TestLDGValidAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := clusteredCSR(rng, 40)
	for _, k := range []int{2, 4, 8} {
		parts, err := LDG{}.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateParts(parts, k); err != nil {
			t.Fatal(err)
		}
		bal := metrics.BalanceParts(c, parts, k, false)
		if bal > 1.35 {
			t.Errorf("k=%d LDG balance = %.3f, want <= 1.35", k, bal)
		}
	}
}

func TestFennelValidAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := clusteredCSR(rng, 40)
	for _, k := range []int{2, 4, 8} {
		parts, err := Fennel{}.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateParts(parts, k); err != nil {
			t.Fatal(err)
		}
		bal := metrics.BalanceParts(c, parts, k, false)
		if bal > 1.35 {
			t.Errorf("k=%d Fennel balance = %.3f, want <= 1.35", k, bal)
		}
	}
}

func TestStreamingBeatsHashOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := clusteredCSR(rng, 50)
	hashParts, err := Hash{}.Partition(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	hashCut := metrics.EdgeCutParts(c, hashParts, true)
	for _, p := range []struct {
		name string
		part Partitioner
	}{{"ldg", LDG{}}, {"fennel", Fennel{}}} {
		parts, err := p.part.Partition(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		cut := metrics.EdgeCutParts(c, parts, true)
		if cut >= hashCut {
			t.Errorf("%s cut %.3f not below hash %.3f", p.name, cut, hashCut)
		}
	}
}

func TestStreamingRejectBadK(t *testing.T) {
	c := graph.NewCSR(graph.New())
	if _, err := (LDG{}).Partition(c, 0); err == nil {
		t.Error("LDG k=0 must error")
	}
	if _, err := (Fennel{}).Partition(c, 0); err == nil {
		t.Error("Fennel k=0 must error")
	}
}

func TestStreamingEmptyGraph(t *testing.T) {
	c := graph.NewCSR(graph.New())
	if parts, err := (LDG{}).Partition(c, 3); err != nil || len(parts) != 0 {
		t.Errorf("LDG empty: %v %v", parts, err)
	}
	if parts, err := (Fennel{}).Partition(c, 3); err != nil || len(parts) != 0 {
		t.Errorf("Fennel empty: %v %v", parts, err)
	}
}

func TestPropertyStreamingValidAndCapped(t *testing.T) {
	// Property: one-pass partitions are always legal and respect their
	// size caps on arbitrary graphs.
	f := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 2
		m := int(mRaw%200) + 1
		k := int(kRaw%6) + 1
		g := graph.New()
		for i := 0; i < m; i++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, int64(1+rng.Intn(4))); err != nil {
				return false
			}
		}
		c := graph.NewCSR(g)
		for _, p := range []Partitioner{LDG{}, Fennel{}} {
			parts, err := p.Partition(c, k)
			if err != nil || len(parts) != c.N() {
				return false
			}
			counts := make([]int, k)
			for _, s := range parts {
				if s < 0 || s >= k {
					return false
				}
				counts[s]++
			}
			// Cap: 1.2–1.3× ideal plus one (rounding).
			limit := int(1.35*float64(c.N())/float64(k)) + 1
			for _, cnt := range counts {
				if cnt > limit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
