package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
)

func TestLDGValidAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := clusteredCSR(rng, 40)
	for _, k := range []int{2, 4, 8} {
		parts, err := LDG{}.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateParts(parts, k); err != nil {
			t.Fatal(err)
		}
		bal := metrics.BalanceParts(c, parts, k, false)
		if bal > 1.35 {
			t.Errorf("k=%d LDG balance = %.3f, want <= 1.35", k, bal)
		}
	}
}

func TestFennelValidAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := clusteredCSR(rng, 40)
	for _, k := range []int{2, 4, 8} {
		parts, err := Fennel{}.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateParts(parts, k); err != nil {
			t.Fatal(err)
		}
		bal := metrics.BalanceParts(c, parts, k, false)
		if bal > 1.35 {
			t.Errorf("k=%d Fennel balance = %.3f, want <= 1.35", k, bal)
		}
	}
}

func TestStreamingBeatsHashOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := clusteredCSR(rng, 50)
	hashParts, err := Hash{}.Partition(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	hashCut := metrics.EdgeCutParts(c, hashParts, true)
	for _, p := range []struct {
		name string
		part Partitioner
	}{{"ldg", LDG{}}, {"fennel", Fennel{}}} {
		parts, err := p.part.Partition(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		cut := metrics.EdgeCutParts(c, parts, true)
		if cut >= hashCut {
			t.Errorf("%s cut %.3f not below hash %.3f", p.name, cut, hashCut)
		}
	}
}

func TestStreamingOverfullStarRespectsSharedCapacity(t *testing.T) {
	// Regression for the capacity sign-flip and for Fennel's once
	// hard-coded 1.2·n/k cap: on a heavy star stream every vertex is
	// maximally attracted to the hub's shard, so the greedy rule pushes
	// one shard toward (and past) its capacity. With the multiplicative
	// penalty scored instead of enforced, (attract+1)·(1−size/cap) turns
	// negative past capacity and high attraction ranks worse, inverting
	// the rule; Stanton–Kliot's capacity is a hard exclusion. Both
	// streaming partitioners share the n(1+Slack)/k rule (default slack
	// 0.1), and the invariant holds for both: no vertex is ever placed
	// into a shard already at capacity while another shard had room.
	g := graph.New()
	n := 60
	for v := 1; v < n; v++ {
		// Heavy star: every vertex interacts with the hub many times.
		if err := g.AddInteraction(0, graph.VertexID(v),
			graph.KindContract, graph.KindAccount, 50); err != nil {
			t.Fatal(err)
		}
	}
	c := graph.NewCSR(g)
	k := 4
	for _, cand := range []struct {
		name  string
		slack float64
		p     Partitioner
	}{
		{"ldg", 0.1, LDG{Slack: 0.1}},
		{"ldg-default", 0.1, LDG{}},
		{"ldg-tight", 0.05, LDG{Slack: 0.05}},
		{"fennel", 0.1, Fennel{Slack: 0.1}},
		{"fennel-default", 0.1, Fennel{}},
		{"fennel-tight", 0.05, Fennel{Slack: 0.05}},
	} {
		parts, err := cand.p.Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateParts(parts, k); err != nil {
			t.Fatal(err)
		}
		capacity := float64(c.N()) * (1 + cand.slack) / float64(k)
		sizes := make([]int, k)
		for i := range c.IDs {
			s := parts[i]
			underCapExists := false
			for _, sz := range sizes {
				if float64(sz) < capacity {
					underCapExists = true
					break
				}
			}
			if underCapExists && float64(sizes[s]) >= capacity {
				t.Fatalf("%s: vertex %d placed into full shard %d (size %d, cap %.2f) while another shard had room",
					cand.name, i, s, sizes[s], capacity)
			}
			sizes[s]++
		}
		for s, sz := range sizes {
			if float64(sz) > capacity+1 {
				t.Errorf("%s: shard %d ended at %d, above capacity %.2f", cand.name, s, sz, capacity)
			}
		}
	}
}

func TestStreamingRejectBadK(t *testing.T) {
	c := graph.NewCSR(graph.New())
	if _, err := (LDG{}).Partition(c, 0); err == nil {
		t.Error("LDG k=0 must error")
	}
	if _, err := (Fennel{}).Partition(c, 0); err == nil {
		t.Error("Fennel k=0 must error")
	}
}

func TestStreamingEmptyGraph(t *testing.T) {
	c := graph.NewCSR(graph.New())
	if parts, err := (LDG{}).Partition(c, 3); err != nil || len(parts) != 0 {
		t.Errorf("LDG empty: %v %v", parts, err)
	}
	if parts, err := (Fennel{}).Partition(c, 3); err != nil || len(parts) != 0 {
		t.Errorf("Fennel empty: %v %v", parts, err)
	}
}

func TestPropertyStreamingValidAndCapped(t *testing.T) {
	// Property: one-pass partitions are always legal and respect their
	// size caps on arbitrary graphs.
	f := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 2
		m := int(mRaw%200) + 1
		k := int(kRaw%6) + 1
		g := graph.New()
		for i := 0; i < m; i++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, int64(1+rng.Intn(4))); err != nil {
				return false
			}
		}
		c := graph.NewCSR(g)
		for _, p := range []Partitioner{LDG{}, Fennel{}} {
			parts, err := p.Partition(c, k)
			if err != nil || len(parts) != c.N() {
				return false
			}
			counts := make([]int, k)
			for _, s := range parts {
				if s < 0 || s >= k {
					return false
				}
				counts[s]++
			}
			// Cap: 1.2–1.3× ideal plus one (rounding).
			limit := int(1.35*float64(c.N())/float64(k)) + 1
			for _, cnt := range counts {
				if cnt > limit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
