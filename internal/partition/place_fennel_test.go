package partition

import (
	"testing"

	"ethpart/internal/graph"
)

const fennelHub = graph.VertexID(1000)

// buildPlacement wires hub→v edges with the given weights, adds extra
// background edges, and assigns the listed vertices to shards.
func buildPlacement(t *testing.T, k int, pulls map[graph.VertexID]int64,
	background [][3]int64, assign map[graph.VertexID]int) (*graph.Graph, *Assignment) {
	t.Helper()
	g := graph.New()
	for v, w := range pulls {
		if err := g.AddInteraction(fennelHub, v, graph.KindAccount, graph.KindAccount, w); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range background {
		if err := g.AddInteraction(graph.VertexID(e[0]), graph.VertexID(e[1]),
			graph.KindAccount, graph.KindAccount, e[2]); err != nil {
			t.Fatal(err)
		}
	}
	a, err := NewAssignment(k)
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range assign {
		if _, _, err := a.Assign(v, s); err != nil {
			t.Fatal(err)
		}
	}
	return g, a
}

// TestPlaceVertexFennelOverturnsRawPull pins the objective difference
// between the cap-gated raw-pull rule and the Fennel rule on the same
// input: shard 0 pulls harder (4 vs 1) and both shards sit under every
// capacity, so the raw rule picks shard 0 — but at this edge mass the
// shared degree-based penalty α·γ·|S|^(γ−1) of shard 0's five vertices
// against shard 1's two (α = √3·100/15^1.5 ≈ 2.98: score 4−9.99 vs
// 1−6.32) flips the choice to shard 1.
func TestPlaceVertexFennelOverturnsRawPull(t *testing.T) {
	pulls := map[graph.VertexID]int64{10: 4, 20: 1}
	assign := map[graph.VertexID]int{10: 0, 20: 1}
	for i := graph.VertexID(100); i < 104; i++ {
		assign[i] = 0 // shard 0: 5 vertices
	}
	assign[200] = 1 // shard 1: 2 vertices
	for i := graph.VertexID(300); i < 308; i++ {
		assign[i] = 2 // shard 2: 8 vertices — beyond both capacity rules
	}
	// One heavy background edge brings the total edge mass to 100.
	g, a := buildPlacement(t, 3, pulls, [][3]int64{{100, 101, 95}}, assign)
	scratch := make([]int64, 3)

	if got := PlaceVertexCounts(g, a, fennelHub, scratch, nil); got != 0 {
		t.Fatalf("cap rule picked %d, want 0 (raw pull wins under the cap)", got)
	}
	if got := PlaceVertexFennel(g, a, fennelHub, scratch, nil); got != 1 {
		t.Errorf("Fennel rule picked %d, want 1 (size penalty overturns the pull)", got)
	}
}

// TestPlaceVertexFennelBalanceAndCapacity pins the rule's guard rails:
// equal pulls prefer the smaller shard, a shard at the hard streaming
// capacity C = n(1+0.1)/k is excluded despite overwhelming pull, and the
// no-neighbour / empty-population paths fall back to least-loaded.
func TestPlaceVertexFennelBalanceAndCapacity(t *testing.T) {
	scratch := make([]int64, 3)

	// Equal pulls, unequal sizes.
	g, a := buildPlacement(t, 2, map[graph.VertexID]int64{10: 2, 20: 2}, nil,
		map[graph.VertexID]int{10: 0, 20: 1, 100: 0, 101: 0})
	if got := PlaceVertexFennel(g, a, fennelHub, scratch, nil); got != 1 {
		t.Errorf("equal pulls picked %d, want 1 (smaller shard)", got)
	}

	// Hard capacity: shard 0 holds 11 of 12 vertices (capacity 6.6).
	assign := map[graph.VertexID]int{10: 0, 200: 1}
	for i := graph.VertexID(100); i < 110; i++ {
		assign[i] = 0
	}
	g2, a2 := buildPlacement(t, 2, map[graph.VertexID]int64{10: 100}, nil, assign)
	if got := PlaceVertexFennel(g2, a2, fennelHub, scratch, nil); got != 1 {
		t.Errorf("over-capacity shard chosen (%d), want 1", got)
	}

	// Empty population: least-loaded (shard 0).
	g3 := graph.New()
	a3, err := NewAssignment(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := PlaceVertexFennel(g3, a3, 1, scratch, nil); got != 0 {
		t.Errorf("empty population placed on %d, want 0", got)
	}

	// Explicit live counts override the assignment's cumulative counts
	// (decay mode: the dead history says shard 0 is packed, the live
	// population says it is empty).
	for i := graph.VertexID(10); i < 20; i++ {
		if _, _, err := a3.Assign(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g3.AddInteraction(1, 2, graph.KindAccount, graph.KindAccount, 1); err != nil {
		t.Fatal(err)
	}
	if got := PlaceVertexFennel(g3, a3, 1, scratch, []int{0, 1, 1}); got != 0 {
		t.Errorf("live-count placement picked %d, want 0 (live says empty)", got)
	}
}
