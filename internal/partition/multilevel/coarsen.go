package multilevel

import (
	"math/rand"
)

// level is one rung of the coarsening ladder: the fine graph and the map
// from its vertices to the coarse graph built from it.
type level struct {
	fine *mlGraph
	cmap []int32
}

// heavyEdgeMatching computes a matching that prefers heavy edges: vertices
// are visited in random order and an unmatched vertex pairs with its
// unmatched neighbour of maximum edge weight. maxVW caps the combined
// weight of a pair so hubs do not snowball into unsplittable supernodes.
// With random set, the first eligible neighbour in the (shuffled) visit is
// taken regardless of weight — the random-matching ablation.
// It returns the fine→coarse map and the coarse vertex count.
func heavyEdgeMatching(g *mlGraph, rng *rand.Rand, maxVW int64, random bool) (cmap []int32, nCoarse int) {
	n := g.n()
	cmap = make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	order := rng.Perm(n)
	next := int32(0)
	for _, vi := range order {
		v := int32(vi)
		if cmap[v] >= 0 {
			continue
		}
		adj, w := g.row(v)
		var best int32 = -1
		var bestW int64 = -1
		for p, u := range adj {
			if cmap[u] >= 0 || u == v {
				continue
			}
			if g.vw[v]+g.vw[u] > maxVW {
				continue
			}
			if random {
				best = u
				break
			}
			if w[p] > bestW {
				best, bestW = u, w[p]
			}
		}
		cmap[v] = next
		if best >= 0 {
			cmap[best] = next
		}
		next++
	}
	return cmap, int(next)
}

// contract builds the coarse graph induced by cmap: matched pairs merge
// their vertex weights, parallel edges merge their weights, and edges
// internal to a pair disappear.
func contract(g *mlGraph, cmap []int32, nCoarse int) *mlGraph {
	coarse := &mlGraph{
		xadj:    make([]int32, 1, nCoarse+1),
		vw:      make([]int64, nCoarse),
		totalVW: g.totalVW,
	}
	// members lists the fine vertices of each coarse vertex.
	members := make([][2]int32, nCoarse)
	for i := range members {
		members[i] = [2]int32{-1, -1}
	}
	for v := int32(0); int(v) < g.n(); v++ {
		c := cmap[v]
		if members[c][0] < 0 {
			members[c][0] = v
		} else {
			members[c][1] = v
		}
		coarse.vw[c] += g.vw[v]
	}
	// Scratch arrays replace a per-vertex map: mark[u] records the coarse
	// vertex currently accumulating edge u, pos[u] where in the adjacency
	// its weight lives. Deterministic (append order follows member
	// iteration) and allocation-free per coarse vertex.
	mark := make([]int32, nCoarse)
	pos := make([]int32, nCoarse)
	for i := range mark {
		mark[i] = -1
	}
	coarse.adj = make([]int32, 0, len(g.adj)/2)
	coarse.adjw = make([]int64, 0, len(g.adj)/2)
	for c := int32(0); int(c) < nCoarse; c++ {
		for _, v := range members[c] {
			if v < 0 {
				continue
			}
			adj, w := g.row(v)
			for p, u := range adj {
				cu := cmap[u]
				if cu == c {
					continue
				}
				if mark[cu] != c {
					mark[cu] = c
					pos[cu] = int32(len(coarse.adj))
					coarse.adj = append(coarse.adj, cu)
					coarse.adjw = append(coarse.adjw, w[p])
				} else {
					coarse.adjw[pos[cu]] += w[p]
				}
			}
		}
		coarse.xadj = append(coarse.xadj, int32(len(coarse.adj)))
	}
	return coarse
}

// coarsen builds the ladder of successively coarser graphs, stopping when
// the graph is small enough or matching stops making progress.
func coarsen(g *mlGraph, rng *rand.Rand, coarsenTo int, maxVW int64, random bool) []level {
	var ladder []level
	cur := g
	for cur.n() > coarsenTo {
		cmap, nCoarse := heavyEdgeMatching(cur, rng, maxVW, random)
		if float64(nCoarse) > 0.95*float64(cur.n()) {
			break // diminishing returns; stop coarsening
		}
		next := contract(cur, cmap, nCoarse)
		ladder = append(ladder, level{fine: cur, cmap: cmap})
		cur = next
	}
	ladder = append(ladder, level{fine: cur, cmap: nil})
	return ladder
}
