package multilevel

import (
	"math/rand"
)

// growBisection produces an initial two-way partition of g by greedy graph
// growing: start a region from a random seed and repeatedly absorb the
// frontier vertex with the highest gain (most edges into the region, fewest
// out) until the region reaches targetLeft weight. Disconnected graphs are
// handled by reseeding from any unvisited vertex.
//
// side[v] is 0 for the grown region, 1 for the rest.
func growBisection(g *mlGraph, rng *rand.Rand, targetLeft int64) []uint8 {
	n := g.n()
	side := make([]uint8, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 || targetLeft <= 0 {
		return side
	}

	inRegion := make([]bool, n)
	var regionW int64
	pq := &gainHeap{}
	inQueue := make([]bool, n)

	seed := func() int32 {
		start := rng.Intn(n)
		for off := 0; off < n; off++ {
			v := int32((start + off) % n)
			if !inRegion[v] {
				return v
			}
		}
		return -1
	}

	absorb := func(v int32) {
		inRegion[v] = true
		side[v] = 0
		regionW += g.vw[v]
		adj, w := g.row(v)
		for p, u := range adj {
			if inRegion[u] {
				continue
			}
			if inQueue[u] {
				pq.bump(u, w[p])
			} else {
				// gain = edges into region − edges out; initialise with
				// this edge in and the rest out.
				var deg int64
				_, uw := g.row(u)
				for _, x := range uw {
					deg += x
				}
				pq.push(gainItem{v: u, gain: 2*w[p] - deg})
				inQueue[u] = true
			}
		}
	}

	for regionW < targetLeft {
		if pq.Len() == 0 {
			s := seed()
			if s < 0 {
				break
			}
			// Stop rather than overshoot grossly on the last component.
			if regionW > 0 && regionW+g.vw[s] > targetLeft+targetLeft/2 {
				break
			}
			absorb(s)
			continue
		}
		item := pq.pop()
		if inRegion[item.v] {
			continue
		}
		absorb(item.v)
	}
	return side
}

// gainItem is a frontier vertex with its current gain.
type gainItem struct {
	v    int32
	gain int64
}

// gainHeap is a max-heap of frontier vertices by gain, implemented directly
// rather than through container/heap: the refinement inner loop performs
// millions of pushes and pops, and the interface boxing of heap.Push/Pop
// costs an allocation per operation. Stale entries are tolerated (lazy
// deletion); bump pushes an updated entry.
type gainHeap []gainItem

func (h gainHeap) Len() int { return len(h) }

// push inserts an item and sifts it up.
func (h *gainHeap) push(it gainItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].gain >= s[i].gain {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes and returns the maximum-gain item.
func (h *gainHeap) pop() gainItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	h.siftDown(0)
	return top
}

// siftDown restores the heap property below position i.
func (h gainHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && h[r].gain > h[l].gain {
			big = r
		}
		if h[i].gain >= h[big].gain {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// heapify establishes the heap property over arbitrary contents.
func (h gainHeap) heapify() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// bump raises v's priority by pushing a fresher, higher-gain entry; the
// stale one is skipped when popped (the pop path rechecks membership).
func (h *gainHeap) bump(v int32, extra int64) {
	// Lazy strategy: we do not track the old gain; pushing a new entry
	// with a modest boost keeps the heap approximate but fast. The greedy
	// growing phase only needs a good-enough ordering — FM refinement
	// cleans up afterwards.
	h.push(gainItem{v: v, gain: 2 * extra})
}
