package multilevel

import (
	"container/heap"
	"math/rand"
)

// growBisection produces an initial two-way partition of g by greedy graph
// growing: start a region from a random seed and repeatedly absorb the
// frontier vertex with the highest gain (most edges into the region, fewest
// out) until the region reaches targetLeft weight. Disconnected graphs are
// handled by reseeding from any unvisited vertex.
//
// side[v] is 0 for the grown region, 1 for the rest.
func growBisection(g *mlGraph, rng *rand.Rand, targetLeft int64) []uint8 {
	n := g.n()
	side := make([]uint8, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 || targetLeft <= 0 {
		return side
	}

	inRegion := make([]bool, n)
	var regionW int64
	pq := &gainHeap{}
	heap.Init(pq)
	inQueue := make([]bool, n)

	seed := func() int32 {
		start := rng.Intn(n)
		for off := 0; off < n; off++ {
			v := int32((start + off) % n)
			if !inRegion[v] {
				return v
			}
		}
		return -1
	}

	absorb := func(v int32) {
		inRegion[v] = true
		side[v] = 0
		regionW += g.vw[v]
		adj, w := g.row(v)
		for p, u := range adj {
			if inRegion[u] {
				continue
			}
			if inQueue[u] {
				pq.bump(u, w[p])
			} else {
				// gain = edges into region − edges out; initialise with
				// this edge in and the rest out.
				var deg int64
				_, uw := g.row(u)
				for _, x := range uw {
					deg += x
				}
				heap.Push(pq, gainItem{v: u, gain: 2*w[p] - deg})
				inQueue[u] = true
			}
		}
	}

	for regionW < targetLeft {
		if pq.Len() == 0 {
			s := seed()
			if s < 0 {
				break
			}
			// Stop rather than overshoot grossly on the last component.
			if regionW > 0 && regionW+g.vw[s] > targetLeft+targetLeft/2 {
				break
			}
			absorb(s)
			continue
		}
		item := heap.Pop(pq).(gainItem)
		if inRegion[item.v] {
			continue
		}
		absorb(item.v)
	}
	return side
}

// gainItem is a frontier vertex with its current gain.
type gainItem struct {
	v    int32
	gain int64
}

// gainHeap is a max-heap of frontier vertices by gain. Stale entries are
// tolerated (lazy deletion); bump pushes an updated entry.
type gainHeap []gainItem

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// bump raises v's priority by pushing a fresher, higher-gain entry; the
// stale one is skipped when popped (the pop path rechecks membership).
func (h *gainHeap) bump(v int32, extra int64) {
	// Lazy strategy: we do not track the old gain; pushing a new entry
	// with a modest boost keeps the heap approximate but fast. The greedy
	// growing phase only needs a good-enough ordering — FM refinement
	// cleans up afterwards.
	heap.Push(h, gainItem{v: v, gain: 2 * extra})
}
