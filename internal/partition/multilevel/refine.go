package multilevel

// fmRefine runs Fiduccia–Mattheyses boundary refinement on a two-way
// partition: repeatedly move the highest-gain movable vertex to the other
// side (respecting the balance envelope), lock it, and at the end of the
// pass roll back to the best prefix seen. Passes repeat until one yields no
// improvement or maxPasses is reached.
//
// Only boundary vertices (those with at least one cross edge) enter the
// move queue: interior vertices always have negative gain, and restricting
// the queue to the boundary is what makes refinement linear in the cut
// region rather than the whole graph. Vertices become eligible as their
// neighbours move.
//
// side is modified in place. targetLeft is the ideal weight of side 0 and
// tol the allowed absolute deviation from it.
func fmRefine(g *mlGraph, side []uint8, targetLeft, tol int64, maxPasses int) {
	n := g.n()
	if n == 0 {
		return
	}
	gains := make([]int64, n)
	locked := make([]bool, n)
	var leftW int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			leftW += g.vw[v]
		}
	}

	// computeGain also reports whether v is on the boundary.
	computeGain := func(v int32) (int64, bool) {
		adj, w := g.row(v)
		var in, out int64
		for p, u := range adj {
			if side[u] == side[v] {
				in += w[p]
			} else {
				out += w[p]
			}
		}
		return out - in, out > 0
	}

	// withinAfter reports whether moving v keeps (or brings) the left
	// weight inside the envelope, or at least improves the deviation —
	// the latter prevents deadlock when a level starts out of balance.
	withinAfter := func(v int32) bool {
		newLeft := leftW
		if side[v] == 0 {
			newLeft -= g.vw[v]
		} else {
			newLeft += g.vw[v]
		}
		devNew := abs64(newLeft - targetLeft)
		if devNew <= tol {
			return true
		}
		return devNew < abs64(leftW-targetLeft)
	}

	pq := &gainHeap{}
	for pass := 0; pass < maxPasses; pass++ {
		for i := range locked {
			locked[i] = false
		}
		*pq = (*pq)[:0]
		for v := int32(0); int(v) < n; v++ {
			gain, boundary := computeGain(v)
			gains[v] = gain
			if boundary {
				*pq = append(*pq, gainItem{v: v, gain: gain})
			}
		}
		pq.heapify()

		type moveRec struct {
			v int32
		}
		var (
			moves   []moveRec
			cum     int64
			bestCum int64
			bestIdx = -1 // index into moves of the best prefix end
		)
		// Stop a pass after this many consecutive non-improving moves —
		// the METIS early-exit heuristic that keeps a pass linear in the
		// productive part of the boundary instead of the whole graph.
		const noImprovementLimit = 128

		for pq.Len() > 0 {
			if bestIdx >= 0 && len(moves)-1-bestIdx >= noImprovementLimit {
				break
			}
			item := pq.pop()
			v := item.v
			if locked[v] {
				continue
			}
			if item.gain != gains[v] {
				// Stale: this vertex's gain changed since it was queued.
				// Re-queue it at its true gain so it is not lost.
				pq.push(gainItem{v: v, gain: gains[v]})
				continue
			}
			if !withinAfter(v) {
				continue
			}
			// Execute the move.
			if side[v] == 0 {
				side[v] = 1
				leftW -= g.vw[v]
			} else {
				side[v] = 0
				leftW += g.vw[v]
			}
			locked[v] = true
			cum += item.gain
			moves = append(moves, moveRec{v: v})
			if cum > bestCum {
				bestCum = cum
				bestIdx = len(moves) - 1
			}
			// Update neighbour gains. Only gain *increases* need a fresh
			// heap entry (decreases are handled lazily by the stale-pop
			// re-queue above), which keeps the heap small on dense
			// boundaries.
			adj, w := g.row(v)
			for p, u := range adj {
				if locked[u] {
					continue
				}
				if side[u] == side[v] {
					gains[u] -= 2 * w[p]
				} else {
					gains[u] += 2 * w[p]
					pq.push(gainItem{v: u, gain: gains[u]})
				}
			}
		}

		// Roll back past the best prefix.
		for i := len(moves) - 1; i > bestIdx; i-- {
			v := moves[i].v
			if side[v] == 0 {
				side[v] = 1
				leftW -= g.vw[v]
			} else {
				side[v] = 0
				leftW += g.vw[v]
			}
		}
		if bestCum <= 0 {
			break // pass produced no improvement
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
