package multilevel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
)

// ringGraph returns a cycle of n vertices with unit weights.
func ringGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		u := graph.VertexID(i)
		v := graph.VertexID((i + 1) % n)
		if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, 1); err != nil {
			panic(err)
		}
	}
	return g
}

// twoClusters returns two dense clusters of size n joined by `bridges`
// light edges — the canonical case a partitioner must split cleanly.
func twoClusters(n, bridges int, rng *rand.Rand) *graph.Graph {
	g := graph.New()
	addClique := func(base int) {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 { // sparse-ish cluster
					continue
				}
				u := graph.VertexID(base + i)
				v := graph.VertexID(base + j)
				if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, 4); err != nil {
					panic(err)
				}
			}
		}
	}
	addClique(0)
	addClique(n)
	for b := 0; b < bridges; b++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(n + rng.Intn(n))
		if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, 1); err != nil {
			panic(err)
		}
	}
	return g
}

func partsValid(t *testing.T, parts []int, n, k int) {
	t.Helper()
	if len(parts) != n {
		t.Fatalf("parts length = %d, want %d", len(parts), n)
	}
	for i, s := range parts {
		if s < 0 || s >= k {
			t.Fatalf("vertex %d in illegal shard %d", i, s)
		}
	}
}

func TestPartitionEmptyGraph(t *testing.T) {
	c := graph.NewCSR(graph.New())
	parts, err := New(Config{}).Partition(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 0 {
		t.Fatalf("parts = %v", parts)
	}
}

func TestPartitionK1(t *testing.T) {
	c := graph.NewCSR(ringGraph(10))
	parts, err := New(Config{}).Partition(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range parts {
		if s != 0 {
			t.Fatal("k=1 must place everything in shard 0")
		}
	}
}

func TestPartitionRejectsBadK(t *testing.T) {
	c := graph.NewCSR(ringGraph(10))
	if _, err := New(Config{}).Partition(c, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}

func TestBisectRingIsBalancedAndCheap(t *testing.T) {
	g := ringGraph(200)
	c := graph.NewCSR(g)
	parts, err := New(Config{Seed: 7}).Partition(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	partsValid(t, parts, 200, 2)
	bal := metrics.BalanceParts(c, parts, 2, false)
	if bal > 1.10 {
		t.Errorf("ring bisection balance = %.3f, want <= 1.10", bal)
	}
	// A ring's optimal bisection cuts exactly 2 of 200 edges. Allow slack
	// but demand far better than the random 50%.
	cut := metrics.EdgeCutParts(c, parts, false)
	if cut > 0.10 {
		t.Errorf("ring bisection cut = %.3f, want <= 0.10", cut)
	}
}

func TestBisectTwoClustersFindsTheSeam(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := twoClusters(40, 4, rng)
	c := graph.NewCSR(g)
	parts, err := New(Config{Seed: 3}).Partition(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	partsValid(t, parts, 80, 2)
	// The planted cut is 4 light edges; anything near it is a win. Demand
	// a dynamic cut under 5% (hash would give ~50%).
	cut := metrics.EdgeCutParts(c, parts, true)
	if cut > 0.05 {
		t.Errorf("two-cluster dynamic cut = %.4f, want <= 0.05", cut)
	}
	bal := metrics.BalanceParts(c, parts, 2, false)
	if bal > 1.15 {
		t.Errorf("two-cluster balance = %.3f, want <= 1.15", bal)
	}
}

func TestKWayNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := twoClusters(30, 3, rng)
	c := graph.NewCSR(g)
	for _, k := range []int{3, 5, 7} {
		parts, err := New(Config{Seed: 5}).Partition(c, k)
		if err != nil {
			t.Fatal(err)
		}
		partsValid(t, parts, c.N(), k)
		bal := metrics.BalanceParts(c, parts, k, false)
		if bal > 1.5 {
			t.Errorf("k=%d balance = %.3f, want <= 1.5", k, bal)
		}
		// All k shards must be populated on a graph this large.
		seen := make(map[int]bool)
		for _, s := range parts {
			seen[s] = true
		}
		if len(seen) != k {
			t.Errorf("k=%d produced only %d non-empty shards", k, len(seen))
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := twoClusters(25, 5, rng)
	c := graph.NewCSR(g)
	p := New(Config{Seed: 11})
	a, err := p.Partition(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Seed: 11}).Partition(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical partitions")
		}
	}
}

func TestHeavyEdgeMatchingRespectsWeightCap(t *testing.T) {
	// A star: hub 0 with 50 leaves. With a tight cap the hub cannot absorb
	// more than allowed.
	g := graph.New()
	for i := 1; i <= 50; i++ {
		if err := g.AddInteraction(0, graph.VertexID(i), graph.KindContract, graph.KindAccount, 1); err != nil {
			t.Fatal(err)
		}
	}
	c := graph.NewCSR(g)
	ml := fromCSR(c, false)
	rng := rand.New(rand.NewSource(2))
	cmap, nCoarse := heavyEdgeMatching(ml, rng, 2, false)
	// With maxVW=2 every coarse vertex holds at most 2 fine vertices.
	counts := make(map[int32]int)
	for _, cidx := range cmap {
		counts[cidx]++
		if counts[cidx] > 2 {
			t.Fatalf("coarse vertex %d has %d members, cap was 2", cidx, counts[cidx])
		}
	}
	if nCoarse < 26 {
		t.Errorf("nCoarse = %d, impossible under the cap", nCoarse)
	}
}

func TestContractPreservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := twoClusters(20, 3, rng)
	c := graph.NewCSR(g)
	ml := fromCSR(c, true)
	cmap, nCoarse := heavyEdgeMatching(ml, rng, ml.totalVW/4, false)
	coarse := contract(ml, cmap, nCoarse)

	if coarse.totalVW != ml.totalVW {
		t.Errorf("coarse totalVW = %d, want %d", coarse.totalVW, ml.totalVW)
	}
	var fineVW, coarseVW int64
	for _, w := range ml.vw {
		fineVW += w
	}
	for _, w := range coarse.vw {
		coarseVW += w
	}
	if fineVW != coarseVW {
		t.Errorf("sum of vertex weights changed: %d -> %d", fineVW, coarseVW)
	}
	// Cross-pair edge weight is preserved: cut of any projected partition
	// is identical. Check with an arbitrary split of coarse vertices.
	side := make([]uint8, nCoarse)
	for i := range side {
		side[i] = uint8(i % 2)
	}
	fineSide := make([]uint8, ml.n())
	for v := range fineSide {
		fineSide[v] = side[cmap[v]]
	}
	if got, want := coarse.cutOf(side), ml.cutOf(fineSide); got != want {
		t.Errorf("projected cut mismatch: coarse %d, fine %d", got, want)
	}
}

func TestRefinementImprovesCut(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := twoClusters(30, 3, rng)
	c := graph.NewCSR(g)
	noRefine, err := New(Config{Seed: 6, SkipRefinement: true}).Partition(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := New(Config{Seed: 6}).Partition(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	cutNo := metrics.EdgeCutParts(c, noRefine, true)
	cutYes := metrics.EdgeCutParts(c, refined, true)
	if cutYes > cutNo {
		t.Errorf("refinement worsened the cut: %.4f -> %.4f", cutNo, cutYes)
	}
}

func TestFMRefineRespectsBalanceEnvelope(t *testing.T) {
	// Start from a wildly unbalanced partition of a ring; FM must improve
	// or keep the deviation, never worsen it.
	g := ringGraph(100)
	c := graph.NewCSR(g)
	ml := fromCSR(c, false)
	side := make([]uint8, 100) // everything on side 0
	target := ml.totalVW / 2
	before := abs64(sideWeight(ml, side) - target)
	fmRefine(ml, side, target, 5, 8)
	after := abs64(sideWeight(ml, side) - target)
	if after > before {
		t.Errorf("FM worsened balance deviation: %d -> %d", before, after)
	}
}

func sideWeight(g *mlGraph, side []uint8) int64 {
	var w int64
	for v, s := range side {
		if s == 0 {
			w += g.vw[v]
		}
	}
	return w
}

func TestPropertyPartitionAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 2
		m := int(mRaw%200) + 1
		k := int(kRaw%7) + 1
		g := graph.New()
		for i := 0; i < m; i++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if err := g.AddInteraction(u, v, graph.KindAccount, graph.KindAccount, int64(1+rng.Intn(4))); err != nil {
				return false
			}
		}
		c := graph.NewCSR(g)
		parts, err := New(Config{Seed: seed}).Partition(c, k)
		if err != nil {
			return false
		}
		if len(parts) != c.N() {
			return false
		}
		for _, s := range parts {
			if s < 0 || s >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBisectionBeatsRandomOnClusters(t *testing.T) {
	// Property: on planted two-cluster graphs the multilevel cut is always
	// well below the ~50% a random split gives.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := twoClusters(20+rng.Intn(20), 2+rng.Intn(4), rng)
		c := graph.NewCSR(g)
		parts, err := New(Config{Seed: seed}).Partition(c, 2)
		if err != nil {
			return false
		}
		return metrics.EdgeCutParts(c, parts, true) < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPartitionMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	// Preferential-attachment-ish graph with 20k vertices.
	for i := 1; i < 20000; i++ {
		t := rng.Intn(i)
		if err := g.AddInteraction(graph.VertexID(i), graph.VertexID(t), graph.KindAccount, graph.KindAccount, int64(1+rng.Intn(3))); err != nil {
			b.Fatal(err)
		}
	}
	c := graph.NewCSR(g)
	p := New(Config{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(c, 8); err != nil {
			b.Fatal(err)
		}
	}
}
