// Package multilevel implements a METIS-style multilevel graph partitioner:
// the graph is repeatedly coarsened by heavy-edge matching, the coarsest
// graph is bisected by greedy graph growing, and the bisection is projected
// back through the levels with Fiduccia–Mattheyses boundary refinement at
// each step. k-way partitions are produced by recursive bisection with
// proportional weight targets, the structure of the original pmetis
// algorithm (Karypis & Kumar, SIAM J. Sci. Comput. 1998).
//
// The package stands in for the METIS binary the paper shells out to; it
// optimizes the same objective (edge-cut under a balance constraint) with
// the same three-phase structure.
package multilevel

import (
	"ethpart/internal/graph"
)

// mlGraph is the internal working representation: CSR adjacency plus vertex
// weights, without the ID mapping of graph.CSR (recursion tracks original
// indices separately).
type mlGraph struct {
	xadj    []int32
	adj     []int32
	adjw    []int64
	vw      []int64
	totalVW int64
}

func (g *mlGraph) n() int { return len(g.vw) }

func (g *mlGraph) row(v int32) ([]int32, []int64) {
	lo, hi := g.xadj[v], g.xadj[v+1]
	return g.adj[lo:hi], g.adjw[lo:hi]
}

// cutOf returns the weighted edge-cut of a two-way partition.
func (g *mlGraph) cutOf(side []uint8) int64 {
	var cut int64
	for v := int32(0); int(v) < g.n(); v++ {
		adj, w := g.row(v)
		for p, u := range adj {
			if u > v && side[u] != side[v] {
				cut += w[p]
			}
		}
	}
	return cut
}

// fromCSR converts a graph.CSR into the working representation. When
// dynamicWeights is false every vertex gets weight one (the paper's METIS
// configuration balances vertex counts); otherwise the CSR's frequency
// weights are used.
func fromCSR(c *graph.CSR, dynamicWeights bool) *mlGraph {
	n := c.N()
	g := &mlGraph{
		xadj: c.XAdj,
		adj:  c.Adj,
		adjw: c.AdjW,
		vw:   make([]int64, n),
	}
	for i := 0; i < n; i++ {
		if dynamicWeights {
			// Weights can be zero for isolated untouched vertices; clamp
			// to one so every vertex contributes to balance.
			g.vw[i] = max(c.VW[i], 1)
		} else {
			g.vw[i] = 1
		}
		g.totalVW += g.vw[i]
	}
	return g
}

// split extracts the two induced subgraphs of a bisection. vmap carries the
// original vertex index of every local vertex; the returned maps do the
// same for the subgraphs. Cross-side edges are dropped — they are already
// paid for in the recursive-bisection objective.
func split(g *mlGraph, side []uint8, vmap []int32) (sub [2]*mlGraph, submap [2][]int32) {
	n := g.n()
	local := make([]int32, n)
	var counts [2]int
	for v := 0; v < n; v++ {
		s := side[v]
		local[v] = int32(counts[s])
		counts[s]++
	}
	for s := 0; s < 2; s++ {
		sub[s] = &mlGraph{
			xadj: make([]int32, 1, counts[s]+1),
			vw:   make([]int64, 0, counts[s]),
		}
		submap[s] = make([]int32, 0, counts[s])
	}
	for v := int32(0); int(v) < n; v++ {
		s := side[v]
		sg := sub[s]
		adj, w := g.row(v)
		for p, u := range adj {
			if side[u] == s {
				sg.adj = append(sg.adj, local[u])
				sg.adjw = append(sg.adjw, w[p])
			}
		}
		sg.xadj = append(sg.xadj, int32(len(sg.adj)))
		sg.vw = append(sg.vw, g.vw[v])
		sg.totalVW += g.vw[v]
		submap[s] = append(submap[s], vmap[v])
	}
	return sub, submap
}
