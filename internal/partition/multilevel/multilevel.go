package multilevel

import (
	"fmt"
	"math/rand"

	"ethpart/internal/graph"
)

// Config parameterises the multilevel partitioner.
type Config struct {
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices. Default 120.
	CoarsenTo int
	// InitialTrials is the number of greedy-growing attempts at the
	// coarsest level; the best refined bisection wins. Default 4.
	InitialTrials int
	// FMPasses bounds refinement passes per level. Default 6.
	FMPasses int
	// Epsilon is the allowed relative imbalance of each bisection
	// (tolerance = Epsilon × total weight). Default 0.03.
	Epsilon float64
	// Seed drives matching order and initial seeds; fixed seeds give
	// reproducible partitions. Default 1.
	Seed int64
	// DynamicVertexWeights balances frequency weights instead of vertex
	// counts. The paper's METIS runs balance vertex counts (which is why
	// dynamic balance degrades there); this switch exists for the ablation
	// benches. Default false.
	DynamicVertexWeights bool
	// RandomMatching replaces heavy-edge matching with random matching;
	// used only by the coarsening ablation bench. Default false.
	RandomMatching bool
	// SkipRefinement disables FM refinement; used only by the refinement
	// ablation bench. Default false.
	SkipRefinement bool
}

// DefaultConfig returns the configuration used in the paper reproduction.
func DefaultConfig() Config {
	return Config{
		CoarsenTo:     120,
		InitialTrials: 4,
		FMPasses:      6,
		Epsilon:       0.03,
		Seed:          1,
	}
}

// Partitioner is the METIS-substitute multilevel k-way partitioner.
type Partitioner struct {
	cfg Config
}

// New returns a Partitioner; zero-valued Config fields fall back to
// DefaultConfig.
func New(cfg Config) *Partitioner {
	def := DefaultConfig()
	if cfg.CoarsenTo <= 0 {
		cfg.CoarsenTo = def.CoarsenTo
	}
	if cfg.InitialTrials <= 0 {
		cfg.InitialTrials = def.InitialTrials
	}
	if cfg.FMPasses <= 0 {
		cfg.FMPasses = def.FMPasses
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = def.Epsilon
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	return &Partitioner{cfg: cfg}
}

// Partition implements partition.Partitioner by recursive multilevel
// bisection with proportional targets, so any k ≥ 1 (not only powers of
// two) is supported.
func (p *Partitioner) Partition(c *graph.CSR, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("multilevel: k must be >= 1, got %d", k)
	}
	n := c.N()
	parts := make([]int, n)
	if k == 1 || n == 0 {
		return parts, nil
	}
	g := fromCSR(c, p.cfg.DynamicVertexWeights)
	vmap := make([]int32, n)
	for i := range vmap {
		vmap[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(p.cfg.Seed))
	p.recurse(g, vmap, k, 0, parts, rng)
	return parts, nil
}

// recurse assigns shards [base, base+k) to the vertices of g (whose
// original indices are vmap), splitting k proportionally at each level.
func (p *Partitioner) recurse(g *mlGraph, vmap []int32, k, base int, parts []int, rng *rand.Rand) {
	if k == 1 {
		for _, orig := range vmap {
			parts[orig] = base
		}
		return
	}
	kL := (k + 1) / 2
	kR := k - kL
	targetLeft := g.totalVW * int64(kL) / int64(k)
	side := p.bisect(g, targetLeft, rng)
	sub, submap := split(g, side, vmap)
	p.recurse(sub[0], submap[0], kL, base, parts, rng)
	p.recurse(sub[1], submap[1], kR, base+kL, parts, rng)
}

// bisect runs the multilevel pipeline on g: coarsen, initial partition at
// the coarsest level (best of InitialTrials), then uncoarsen with FM
// refinement at every level.
func (p *Partitioner) bisect(g *mlGraph, targetLeft int64, rng *rand.Rand) []uint8 {
	tol := int64(p.cfg.Epsilon * float64(g.totalVW))
	if tol < 1 {
		tol = 1
	}
	// Cap supernode weight so hubs stay splittable.
	maxVW := g.totalVW / 16
	if maxVW < 4 {
		maxVW = 4
	}

	ladder := coarsen(g, rng, p.cfg.CoarsenTo, maxVW, p.cfg.RandomMatching)
	coarsest := ladder[len(ladder)-1].fine

	// Initial partitioning: best of InitialTrials greedy growings, each
	// polished by FM.
	var best []uint8
	var bestCut int64 = -1
	for t := 0; t < p.cfg.InitialTrials; t++ {
		side := growBisection(coarsest, rng, targetLeft)
		if !p.cfg.SkipRefinement {
			fmRefine(coarsest, side, targetLeft, tol, p.cfg.FMPasses)
		}
		cut := coarsest.cutOf(side)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			best = side
		}
	}

	// Uncoarsen: project through the ladder, refining at each level.
	side := best
	for i := len(ladder) - 2; i >= 0; i-- {
		fine := ladder[i].fine
		cmap := ladder[i].cmap
		fineSide := make([]uint8, fine.n())
		for v := range fineSide {
			fineSide[v] = side[cmap[v]]
		}
		if !p.cfg.SkipRefinement {
			fmRefine(fine, fineSide, targetLeft, tol, p.cfg.FMPasses)
		}
		side = fineSide
	}
	return side
}
