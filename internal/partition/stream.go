package partition

import (
	"cmp"
	"fmt"
	"math"

	"ethpart/internal/graph"
)

// This file implements two classic streaming (one-pass) partitioners as
// additional baselines beyond the paper's five methods. Streaming placement
// is the natural regime for a blockchain — vertices arrive with
// transactions and must be placed immediately — so these serve as reference
// points between stateless hashing and full offline repartitioning:
//
//   - LDG (Linear Deterministic Greedy, Stanton & Kliot, KDD 2012): place
//     each vertex in the shard holding most of its already-placed
//     neighbours, weighted by remaining shard capacity;
//   - Fennel (Tsourakakis et al., WSDM 2014): replace LDG's hard capacity
//     with a degree-based interpolation of modularity — neighbours attract,
//     shard size repels with marginal cost α·γ·|S|^(γ−1).
//
// Both implement Partitioner by streaming the CSR in vertex order (the
// order of first appearance in the blockchain, since vertex IDs are
// assigned sequentially by the registry).

// streamCapacity is the shared capacity rule of the streaming
// partitioners: every shard holds at most C = n(1+slack)/k vertices, a
// hard constraint (full shards are excluded from the ranking, with a
// least-loaded fallback when every shard is at the cap). LDG and Fennel
// expose the same Slack knob with the same 0.1 default so their balance
// guarantees are directly comparable.
func streamCapacity(n, k int, slack float64) float64 {
	if slack <= 0 {
		slack = 0.1
	}
	return float64(n) * (1 + slack) / float64(k)
}

// fennelDefaultGamma is the size-penalty exponent the Fennel authors
// recommend; shared by the streaming partitioner and the decay-aware
// incremental placement rule (PlaceVertexFennel) so both optimise the same
// objective.
const fennelDefaultGamma = 1.5

// fennelAlpha is Fennel's degree-based penalty scale α = √k·m/n^γ: the
// marginal cost of adding a vertex to a shard of size s is α·γ·s^(γ−1),
// calibrated so the total size penalty is comparable to the edges the
// stream can save. m is the graph's edge mass and n its vertex count —
// under windowed decay callers pass the *live* graph's numbers, so the
// penalty tracks the active set rather than dead history.
func fennelAlpha(k int, m, n, gamma float64) float64 {
	return math.Sqrt(float64(k)) * m / math.Pow(n, gamma)
}

// fennelPenalty is the shared marginal size penalty α·γ·s^(γ−1).
func fennelPenalty(alpha, gamma, size float64) float64 {
	return alpha * gamma * math.Pow(size, gamma-1)
}

// LDG is the Linear Deterministic Greedy streaming partitioner.
type LDG struct {
	// Slack is the allowed overshoot of the capacity C = n(1+Slack)/k.
	// Default 0.1.
	Slack float64
}

var _ Partitioner = LDG{}

// Partition implements Partitioner.
func (l LDG) Partition(c *graph.CSR, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: ldg: k must be >= 1, got %d", k)
	}
	n := c.N()
	capacity := streamCapacity(n, k, l.Slack)
	parts := make([]int, n)
	sizes := make([]int, k)
	attract := make([]float64, k)

	for v := int32(0); int(v) < n; v++ {
		for i := range attract {
			attract[i] = 0
		}
		adj, w := c.Row(v)
		for p, u := range adj {
			if u < v { // only already-placed neighbours
				attract[parts[u]] += float64(w[p])
			}
		}
		// Stanton–Kliot capacity is a hard constraint: full shards are
		// excluded from the ranking rather than scored. Scoring them would
		// flip the sign of the neighbour pull once size exceeds capacity —
		// (attract+1)·(1−size/cap) goes negative and high attraction ranks
		// *worse* — inverting the greedy rule exactly when it matters.
		best, bestScore := -1, math.Inf(-1)
		for s := 0; s < k; s++ {
			if float64(sizes[s]) >= capacity {
				continue
			}
			// Neighbour pull scaled by remaining capacity; +1 so isolated
			// vertices still prefer emptier shards.
			score := (attract[s] + 1) * (1 - float64(sizes[s])/capacity)
			if score > bestScore {
				best, bestScore = s, score
			}
		}
		if best < 0 { // every shard at cap: least-loaded, as in Fennel's fallback
			best = minIndex(sizes)
		}
		parts[v] = best
		sizes[best]++
	}
	return parts, nil
}

// Fennel is the Fennel streaming partitioner.
type Fennel struct {
	// Gamma is the size-penalty exponent; the authors recommend 1.5.
	Gamma float64
	// Balance controls the α scaling; 1.0 reproduces the paper's
	// α = √k·m / n^γ.
	Balance float64
	// Slack is the allowed overshoot of the hard capacity C = n(1+Slack)/k
	// backing the soft size penalty, shared with LDG. Default 0.1.
	Slack float64
}

var _ Partitioner = Fennel{}

// Partition implements Partitioner.
func (f Fennel) Partition(c *graph.CSR, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: fennel: k must be >= 1, got %d", k)
	}
	gamma := f.Gamma
	if gamma <= 1 {
		gamma = fennelDefaultGamma
	}
	bal := f.Balance
	if bal <= 0 {
		bal = 1
	}
	n := c.N()
	if n == 0 {
		return nil, nil
	}
	alpha := bal * fennelAlpha(k, float64(c.NumEdges), float64(n), gamma)

	parts := make([]int, n)
	sizes := make([]float64, k)
	attract := make([]float64, k)
	// Hard cap prevents degenerate pile-ups on adversarial streams where
	// the soft α·γ·|S|^(γ−1) penalty loses to a hub's pull.
	capacity := streamCapacity(n, k, f.Slack)

	for v := int32(0); int(v) < n; v++ {
		for i := range attract {
			attract[i] = 0
		}
		adj, w := c.Row(v)
		for p, u := range adj {
			if u < v {
				attract[parts[u]] += float64(w[p])
			}
		}
		best, bestScore := -1, math.Inf(-1)
		for s := 0; s < k; s++ {
			if sizes[s] >= capacity {
				continue
			}
			// Marginal Fennel objective: neighbours gained minus the
			// marginal size penalty α·γ·|S|^(γ−1).
			score := attract[s] - fennelPenalty(alpha, gamma, sizes[s])
			if score > bestScore {
				best, bestScore = s, score
			}
		}
		if best < 0 { // every shard at cap (cannot happen with slack ≥ k/n)
			best = minIndex(sizes)
		}
		parts[v] = best
		sizes[best]++
	}
	return parts, nil
}

func minIndex[T cmp.Ordered](xs []T) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
