package partition

import (
	"testing"

	"ethpart/internal/graph"
)

// TestAssignmentSpilledIDs pins the dense/spill split: vertex IDs minted
// from address bits (far above the registry's dense region) must assign,
// move, clone and iterate without the dense table growing toward them.
func TestAssignmentSpilledIDs(t *testing.T) {
	a, err := NewAssignment(3)
	if err != nil {
		t.Fatal(err)
	}
	huge := graph.VertexID(1) << 40
	if _, _, err := a.Assign(7, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Assign(huge, 2); err != nil {
		t.Fatal(err)
	}
	if s, ok := a.ShardOf(huge); !ok || s != 2 {
		t.Fatalf("ShardOf(huge) = %d, %v", s, ok)
	}
	if a.Len() != 2 || a.Count(2) != 1 {
		t.Fatalf("Len=%d Count(2)=%d", a.Len(), a.Count(2))
	}
	// Move the spilled vertex and check counts follow.
	if prev, moved, err := a.Assign(huge, 0); err != nil || !moved || prev != 2 {
		t.Fatalf("move: prev=%d moved=%v err=%v", prev, moved, err)
	}
	if a.Count(0) != 1 || a.Count(2) != 0 {
		t.Fatalf("counts after move: %v", a.Counts())
	}
	// Clone must carry the spill map independently.
	c := a.Clone()
	if _, _, err := a.Assign(huge, 1); err != nil {
		t.Fatal(err)
	}
	if s, _ := c.ShardOf(huge); s != 0 {
		t.Fatalf("clone mutated: ShardOf(huge) = %d", s)
	}
	// Each must visit both regions.
	seen := map[graph.VertexID]int{}
	a.Each(func(v graph.VertexID, shard int) bool {
		seen[v] = shard
		return true
	})
	if len(seen) != 2 || seen[7] != 1 || seen[huge] != 1 {
		t.Fatalf("Each visited %v", seen)
	}
}
