package partition

import (
	"ethpart/internal/graph"
)

// placeMaxOverload caps how far above the average a shard may grow and
// still receive new vertices: with preferential attachment the dominant
// shard would otherwise absorb nearly every newcomer (rich-get-richer) and
// the partition collapses between repartitionings. 20% headroom matches the
// imbalance tolerance of the multilevel partitioner's bisections.
const placeMaxOverload = 1.2

// PlaceVertex implements the paper's incremental placement rule for a
// vertex appearing between repartitionings: "inspecting all the accounts
// involved in the transaction and picking the shard that minimizes
// edge-cuts; if more than one exists, we maximize the balance." Shards more
// than placeMaxOverload times the average size are not eligible, so the
// rule cannot starve the other shards between repartitionings.
//
// g supplies the new vertex's already-known neighbours (edges created so
// far, including those from the transaction that introduced it); a supplies
// their shards and the per-shard vertex counts for tie-breaking. The vertex
// is not assigned — the caller decides what to do with the answer.
func PlaceVertex(g *graph.Graph, a *Assignment, v graph.VertexID) int {
	return PlaceVertexScratch(g, a, v, make([]int64, a.K()))
}

// PlaceVertexScratch is PlaceVertex with a caller-provided scratch slice of
// length at least a.K(), letting hot loops (one placement per newly seen
// vertex during replay) avoid a per-call allocation. The scratch contents
// are overwritten.
func PlaceVertexScratch(g *graph.Graph, a *Assignment, v graph.VertexID, scratch []int64) int {
	k := a.K()
	attract := scratch[:k]
	for i := range attract {
		attract[i] = 0
	}
	any := false
	g.Neighbors(v, func(u graph.VertexID, w int64) bool {
		if s, ok := a.ShardOf(u); ok {
			attract[s] += w
			any = true
		}
		return true
	})
	if !any {
		// No placed neighbours: fall back to the emptiest shard, the
		// balance-maximising choice.
		return leastLoaded(a)
	}
	limit := loadCap(a)
	best := -1
	for s := 0; s < k; s++ {
		if a.Count(s) > limit {
			continue
		}
		switch {
		case best < 0:
			best = s
		case attract[s] > attract[best]:
			best = s
		case attract[s] == attract[best] && a.Count(s) < a.Count(best):
			best = s
		}
	}
	if best < 0 {
		return leastLoaded(a) // every shard above cap: degenerate, rebalance
	}
	return best
}

// loadCap returns the maximum shard size still eligible for placement. The
// least-loaded shard is always eligible (its size is at most the average).
func loadCap(a *Assignment) int {
	avg := float64(a.Len()) / float64(a.K())
	limit := int(placeMaxOverload * avg)
	if limit < 1 {
		limit = 1
	}
	return limit
}

// leastLoaded returns the shard with the fewest vertices, lowest index on
// ties so the choice is deterministic.
func leastLoaded(a *Assignment) int {
	best := 0
	for s := 1; s < a.K(); s++ {
		if a.Count(s) < a.Count(best) {
			best = s
		}
	}
	return best
}
