package partition

import (
	"ethpart/internal/graph"
)

// placeMaxOverload caps how far above the average a shard may grow and
// still receive new vertices: with preferential attachment the dominant
// shard would otherwise absorb nearly every newcomer (rich-get-richer) and
// the partition collapses between repartitionings. 20% headroom matches the
// imbalance tolerance of the multilevel partitioner's bisections.
const placeMaxOverload = 1.2

// PlaceVertex implements the paper's incremental placement rule for a
// vertex appearing between repartitionings: "inspecting all the accounts
// involved in the transaction and picking the shard that minimizes
// edge-cuts; if more than one exists, we maximize the balance." Shards more
// than placeMaxOverload times the average size are not eligible, so the
// rule cannot starve the other shards between repartitionings.
//
// g supplies the new vertex's already-known neighbours (edges created so
// far, including those from the transaction that introduced it); a supplies
// their shards and the per-shard vertex counts for tie-breaking. The vertex
// is not assigned — the caller decides what to do with the answer.
func PlaceVertex(g *graph.Graph, a *Assignment, v graph.VertexID) int {
	return PlaceVertexScratch(g, a, v, make([]int64, a.K()))
}

// PlaceVertexScratch is PlaceVertex with a caller-provided scratch slice of
// length at least a.K(), letting hot loops (one placement per newly seen
// vertex during replay) avoid a per-call allocation. The scratch contents
// are overwritten.
func PlaceVertexScratch(g *graph.Graph, a *Assignment, v graph.VertexID, scratch []int64) int {
	return PlaceVertexCounts(g, a, v, scratch, nil)
}

// PlaceVertexCounts is PlaceVertexScratch with an explicit per-shard
// vertex-count slice replacing the assignment's cumulative counts for the
// overload cap and the balance tie-breaks (the neighbour shards still come
// from the assignment). Under windowed decay the simulator passes its live
// per-shard counts here: retired vertices keep sticky assignments, so the
// cumulative counts measure dead history and would let loadCap drift far
// above any live shard — the rich-get-richer collapse the cap exists to
// prevent. A nil counts falls back to the assignment's counts.
func PlaceVertexCounts(g *graph.Graph, a *Assignment, v graph.VertexID, scratch []int64, counts []int) int {
	k := a.K()
	countOf := func(s int) int {
		if counts != nil {
			return counts[s]
		}
		return a.Count(s)
	}
	attract := scratch[:k]
	for i := range attract {
		attract[i] = 0
	}
	any := false
	g.Neighbors(v, func(u graph.VertexID, w int64) bool {
		if s, ok := a.ShardOf(u); ok {
			attract[s] += w
			any = true
		}
		return true
	})
	if !any {
		// No placed neighbours: fall back to the emptiest shard, the
		// balance-maximising choice.
		return leastLoaded(k, countOf)
	}
	limit := loadCap(k, countOf)
	best := -1
	for s := 0; s < k; s++ {
		if countOf(s) > limit {
			continue
		}
		switch {
		case best < 0:
			best = s
		case attract[s] > attract[best]:
			best = s
		case attract[s] == attract[best] && countOf(s) < countOf(best):
			best = s
		}
	}
	if best < 0 {
		return leastLoaded(k, countOf) // every shard above cap: degenerate, rebalance
	}
	return best
}

// PlaceVertexFennel is the decay-aware variant of the incremental
// placement rule: instead of ranking shards by raw neighbour pull under a
// hard overload cap, it scores them with the streaming Fennel objective —
// neighbour weight gained minus the shared degree-based marginal size
// penalty α·γ·|S|^(γ−1) (see Fennel in stream.go), with α computed from
// the graph g's current edge mass and the per-shard counts' vertex total.
//
// Under windowed decay g is the live graph, so the neighbour weights are
// the decayed weights and α tracks the active set: first-sight placement
// then optimises the same recency-weighted objective the decayed
// repartitioner does, instead of a different (cap-gated, raw-pull) one.
// The hard streaming capacity C = n(1+slack)/k still excludes runaway
// shards, with the same least-loaded fallback as LDG and Fennel.
//
// scratch and counts follow PlaceVertexCounts' contract: scratch has
// length ≥ a.K() and is overwritten; a nil counts falls back to the
// assignment's cumulative counts.
func PlaceVertexFennel(g *graph.Graph, a *Assignment, v graph.VertexID, scratch []int64, counts []int) int {
	k := a.K()
	countOf := func(s int) int {
		if counts != nil {
			return counts[s]
		}
		return a.Count(s)
	}
	attract := scratch[:k]
	for i := range attract {
		attract[i] = 0
	}
	g.Neighbors(v, func(u graph.VertexID, w int64) bool {
		if s, ok := a.ShardOf(u); ok {
			attract[s] += w
		}
		return true
	})
	n := 0
	for s := 0; s < k; s++ {
		n += countOf(s)
	}
	if n == 0 {
		return leastLoaded(k, countOf)
	}
	gamma := fennelDefaultGamma
	alpha := fennelAlpha(k, float64(g.TotalEdgeWeight()), float64(n), gamma)
	capacity := streamCapacity(n, k, 0)
	best, bestScore := -1, 0.0
	for s := 0; s < k; s++ {
		size := float64(countOf(s))
		if size >= capacity {
			continue
		}
		score := float64(attract[s]) - fennelPenalty(alpha, gamma, size)
		switch {
		case best < 0, score > bestScore:
			best, bestScore = s, score
		case score == bestScore && countOf(s) < countOf(best):
			best = s
		}
	}
	if best < 0 {
		return leastLoaded(k, countOf) // every shard at cap: degenerate, rebalance
	}
	return best
}

// loadCap returns the maximum shard size still eligible for placement. The
// least-loaded shard is always eligible (its size is at most the average).
func loadCap(k int, countOf func(int) int) int {
	total := 0
	for s := 0; s < k; s++ {
		total += countOf(s)
	}
	avg := float64(total) / float64(k)
	limit := int(placeMaxOverload * avg)
	if limit < 1 {
		limit = 1
	}
	return limit
}

// leastLoaded returns the shard with the fewest vertices, lowest index on
// ties so the choice is deterministic.
func leastLoaded(k int, countOf func(int) int) int {
	best := 0
	for s := 1; s < k; s++ {
		if countOf(s) < countOf(best) {
			best = s
		}
	}
	return best
}
