package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"ethpart/internal/graph"
)

// KLConfig parameterises the distributed Kernighan–Lin method.
type KLConfig struct {
	// MaxRounds bounds the number of propose/exchange rounds per
	// refinement. The algorithm stops earlier when no shard proposes a
	// positive-gain move.
	MaxRounds int
	// MaxCandidatesPerPair caps how many vertices one shard may propose to
	// another per round, modelling the bounded per-round migration of the
	// production systems this scheme comes from. Zero means unlimited.
	MaxCandidatesPerPair int
	// Seed drives the probabilistic exchange; a fixed seed makes runs
	// reproducible.
	Seed int64
}

// DefaultKLConfig returns the configuration used in the experiments.
func DefaultKLConfig() KLConfig {
	return KLConfig{MaxRounds: 8, MaxCandidatesPerPair: 0, Seed: 1}
}

// KL implements the paper's distributed Kernighan–Lin variant (§II-C):
// each shard independently selects vertices whose move to another shard
// would reduce the (dynamic) edge-cut, an oracle gathers the per-pair
// proposal counts into a k×k probability matrix that keeps the exchange
// balanced, and shards then move each proposed vertex with the oracle's
// probability. Intuitively the matrix lets shard i send to shard j only as
// much as j sends back, so shard sizes stay put while the cut drops.
//
// KL refines an existing partition; it never partitions from scratch (the
// paper bootstraps it with hashing).
type KL struct {
	cfg KLConfig
}

var _ Refiner = (*KL)(nil)

// NewKL returns a KL refiner with the given configuration. Zero-valued
// fields fall back to DefaultKLConfig.
func NewKL(cfg KLConfig) *KL {
	def := DefaultKLConfig()
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = def.MaxRounds
	}
	return &KL{cfg: cfg}
}

// proposal is one shard's wish to move a vertex to another shard.
type proposal struct {
	vertex int32
	gain   int64
}

// Refine implements Refiner.
func (kl *KL) Refine(c *graph.CSR, k int, current []int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: kl: k must be >= 1, got %d", k)
	}
	if len(current) != c.N() {
		return nil, fmt.Errorf("partition: kl: current has %d entries for %d vertices", len(current), c.N())
	}
	if err := ValidateParts(current, k); err != nil {
		return nil, fmt.Errorf("partition: kl: %w", err)
	}
	parts := append([]int(nil), current...)
	rng := rand.New(rand.NewSource(kl.cfg.Seed))

	for round := 0; round < kl.cfg.MaxRounds; round++ {
		props := kl.propose(c, k, parts)
		x := proposalCounts(props, k)
		p := ProbabilityMatrix(x)
		moved := kl.exchange(rng, props, p, parts)
		if moved == 0 {
			break
		}
	}
	return parts, nil
}

// propose runs the per-shard selection phase: for every vertex, compute the
// gain of moving it to its most attractive external shard; keep positive
// gains, best-gain first, capped per pair.
func (kl *KL) propose(c *graph.CSR, k int, parts []int) [][]proposal {
	props := make([][]proposal, k*k)
	attract := make([]int64, k)
	for v := int32(0); int(v) < c.N(); v++ {
		from := parts[v]
		adj, w := c.Row(v)
		for i := range attract {
			attract[i] = 0
		}
		for p, u := range adj {
			attract[parts[u]] += w[p]
		}
		bestShard, bestGain := -1, int64(0)
		for s := 0; s < k; s++ {
			if s == from {
				continue
			}
			if gain := attract[s] - attract[from]; gain > bestGain {
				bestShard, bestGain = s, gain
			}
		}
		if bestShard >= 0 {
			idx := from*k + bestShard
			props[idx] = append(props[idx], proposal{vertex: v, gain: bestGain})
		}
	}
	for idx := range props {
		sort.Slice(props[idx], func(a, b int) bool { return props[idx][a].gain > props[idx][b].gain })
		if limit := kl.cfg.MaxCandidatesPerPair; limit > 0 && len(props[idx]) > limit {
			props[idx] = props[idx][:limit]
		}
	}
	return props
}

// proposalCounts reduces proposals to the per-pair counts the oracle sees.
func proposalCounts(props [][]proposal, k int) [][]int {
	x := make([][]int, k)
	for i := range x {
		x[i] = make([]int, k)
		for j := 0; j < k; j++ {
			x[i][j] = len(props[i*k+j])
		}
	}
	return x
}

// ProbabilityMatrix is the oracle computation: given x[i][j] = number of
// vertices shard i proposes to move to shard j, return p[i][j], the
// probability with which each such proposal should be executed so that the
// expected flow i→j equals the expected flow j→i and shards stay balanced.
//
// Exported separately because it is the paper's "oracle" component and is
// property-tested on its own.
func ProbabilityMatrix(x [][]int) [][]float64 {
	k := len(x)
	p := make([][]float64, k)
	for i := range p {
		p[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			if i == j || x[i][j] == 0 {
				continue
			}
			matched := min(x[i][j], x[j][i])
			p[i][j] = float64(matched) / float64(x[i][j])
		}
	}
	return p
}

// exchange executes proposals with the oracle's probabilities and returns
// the number of vertices moved.
func (kl *KL) exchange(rng *rand.Rand, props [][]proposal, p [][]float64, parts []int) int {
	k := len(p)
	moved := 0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			prob := p[i][j]
			if prob == 0 {
				continue
			}
			for _, prop := range props[i*k+j] {
				if parts[prop.vertex] != i {
					continue // already moved this round
				}
				if rng.Float64() < prob {
					parts[prop.vertex] = j
					moved++
				}
			}
		}
	}
	return moved
}
