// Package partition implements the paper's five blockchain-graph
// partitioning methods and their shared machinery:
//
//   - Hash: stateless hashing of vertex IDs (§II-C "Hashing");
//   - KL: the distributed Kernighan–Lin variant in which shards propose
//     moves and an oracle computes a k×k probability matrix that keeps the
//     exchange balanced (§II-C "Kernighan-Lin algorithm");
//   - Multilevel (sub-package multilevel): a METIS-style multilevel
//     partitioner used by the METIS, R-METIS and TR-METIS methods;
//   - the incremental placement rule used for vertices that appear between
//     repartitionings: pick the shard that minimises edge-cut, break ties
//     toward the better balance (§II-C "METIS" bullet).
//
// The windowed (R-METIS) and threshold-triggered (TR-METIS) behaviours are
// repartitioning *policies* over these algorithms; they live in the sim
// package, which decides when to repartition and over which graph.
package partition

import (
	"fmt"

	"ethpart/internal/graph"
)

// NoShard marks a vertex without an assignment.
const NoShard = -1

// Partitioner computes a partition of a graph from scratch.
type Partitioner interface {
	// Partition returns a shard in [0,k) for every local vertex of c.
	Partition(c *graph.CSR, k int) ([]int, error)
}

// Refiner improves an existing partition in place of recomputing one.
type Refiner interface {
	// Refine returns an improved copy of current, which maps each local
	// vertex of c to a shard in [0,k).
	Refine(c *graph.CSR, k int, current []int) ([]int, error)
}

// Assignment tracks the shard of every vertex plus per-shard vertex counts.
// It is the mutable, incremental structure the simulator maintains between
// repartitionings; partitioners work on CSR-indexed slices and their output
// is applied back through Apply.
type Assignment struct {
	k      int
	shards map[graph.VertexID]int
	counts []int
}

// NewAssignment returns an empty assignment over k shards.
func NewAssignment(k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	return &Assignment{
		k:      k,
		shards: make(map[graph.VertexID]int),
		counts: make([]int, k),
	}, nil
}

// K returns the number of shards.
func (a *Assignment) K() int { return a.k }

// Len returns the number of assigned vertices.
func (a *Assignment) Len() int { return len(a.shards) }

// ShardOf returns the shard of v.
func (a *Assignment) ShardOf(v graph.VertexID) (int, bool) {
	s, ok := a.shards[v]
	return s, ok
}

// Count returns the number of vertices in shard s.
func (a *Assignment) Count(s int) int { return a.counts[s] }

// Counts returns a copy of the per-shard vertex counts.
func (a *Assignment) Counts() []int {
	return append([]int(nil), a.counts...)
}

// Assign places v in shard s, returning the previous shard (or NoShard) and
// whether this was a move of an already-assigned vertex.
func (a *Assignment) Assign(v graph.VertexID, s int) (prev int, moved bool, err error) {
	if s < 0 || s >= a.k {
		return NoShard, false, fmt.Errorf("partition: shard %d out of range [0,%d)", s, a.k)
	}
	if old, ok := a.shards[v]; ok {
		if old == s {
			return old, false, nil
		}
		a.counts[old]--
		a.counts[s]++
		a.shards[v] = s
		return old, true, nil
	}
	a.shards[v] = s
	a.counts[s]++
	return NoShard, false, nil
}

// Each calls fn for every assigned vertex.
func (a *Assignment) Each(fn func(v graph.VertexID, shard int) bool) {
	for v, s := range a.shards {
		if !fn(v, s) {
			return
		}
	}
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		k:      a.k,
		shards: make(map[graph.VertexID]int, len(a.shards)),
		counts: append([]int(nil), a.counts...),
	}
	for v, s := range a.shards {
		c.shards[v] = s
	}
	return c
}

// Apply overwrites the assignment with a partitioner result over c,
// returning the number of already-assigned vertices that changed shard (the
// paper's "moves" metric counts exactly these).
func (a *Assignment) Apply(c *graph.CSR, parts []int) (moves int, err error) {
	if len(parts) != c.N() {
		return 0, fmt.Errorf("partition: result has %d entries for %d vertices", len(parts), c.N())
	}
	for i, s := range parts {
		_, moved, err := a.Assign(c.IDs[i], s)
		if err != nil {
			return moves, err
		}
		if moved {
			moves++
		}
	}
	return moves, nil
}

// ToParts converts the assignment into a CSR-indexed slice for refiners.
// Unassigned vertices get NoShard.
func (a *Assignment) ToParts(c *graph.CSR) []int {
	parts := make([]int, c.N())
	for i, id := range c.IDs {
		if s, ok := a.shards[id]; ok {
			parts[i] = s
		} else {
			parts[i] = NoShard
		}
	}
	return parts
}

// ValidateParts checks that every entry of parts is a legal shard.
func ValidateParts(parts []int, k int) error {
	for i, s := range parts {
		if s < 0 || s >= k {
			return fmt.Errorf("partition: vertex %d has illegal shard %d (k=%d)", i, s, k)
		}
	}
	return nil
}
