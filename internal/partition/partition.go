// Package partition implements the paper's five blockchain-graph
// partitioning methods and their shared machinery:
//
//   - Hash: stateless hashing of vertex IDs (§II-C "Hashing");
//   - KL: the distributed Kernighan–Lin variant in which shards propose
//     moves and an oracle computes a k×k probability matrix that keeps the
//     exchange balanced (§II-C "Kernighan-Lin algorithm");
//   - Multilevel (sub-package multilevel): a METIS-style multilevel
//     partitioner used by the METIS, R-METIS and TR-METIS methods;
//   - the incremental placement rule used for vertices that appear between
//     repartitionings: pick the shard that minimises edge-cut, break ties
//     toward the better balance (§II-C "METIS" bullet).
//
// The windowed (R-METIS) and threshold-triggered (TR-METIS) behaviours are
// repartitioning *policies* over these algorithms; they live in the sim
// package, which decides when to repartition and over which graph.
package partition

import (
	"fmt"

	"ethpart/internal/graph"
)

// NoShard marks a vertex without an assignment.
const NoShard = -1

// Partitioner computes a partition of a graph from scratch.
type Partitioner interface {
	// Partition returns a shard in [0,k) for every local vertex of c.
	Partition(c *graph.CSR, k int) ([]int, error)
}

// Refiner improves an existing partition in place of recomputing one.
type Refiner interface {
	// Refine returns an improved copy of current, which maps each local
	// vertex of c to a shard in [0,k).
	Refine(c *graph.CSR, k int, current []int) ([]int, error)
}

// Assignment tracks the shard of every vertex plus per-shard vertex counts.
// It is the mutable, incremental structure the simulator maintains between
// repartitionings; partitioners work on CSR-indexed slices and their output
// is applied back through Apply.
//
// Storage is a dense VertexID-indexed table (vertex IDs come from the trace
// registry, which assigns them from zero), so shard lookups on the replay
// hot path are a bounds check and a load instead of a map probe. IDs at or
// above denseIDLimit — callers minting VertexIDs from address bits — fall
// back to a spill map, mirroring the graph package's dense/spill split.
type Assignment struct {
	k      int
	shards []int32 // VertexID -> shard for IDs < denseIDLimit, noShard when unassigned
	spill  map[graph.VertexID]int32
	n      int // number of assigned vertices
	counts []int
}

// noShard is the internal unassigned sentinel of the dense shard table.
const noShard int32 = -1

// denseIDLimit bounds the dense shard table (16 MiB worst case), matching
// the graph package's dense ID region.
const denseIDLimit = graph.VertexID(1) << 22

// NewAssignment returns an empty assignment over k shards.
func NewAssignment(k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	return &Assignment{
		k:      k,
		counts: make([]int, k),
	}, nil
}

// K returns the number of shards.
func (a *Assignment) K() int { return a.k }

// Len returns the number of assigned vertices.
func (a *Assignment) Len() int { return a.n }

// ShardOf returns the shard of v.
func (a *Assignment) ShardOf(v graph.VertexID) (int, bool) {
	if v < graph.VertexID(len(a.shards)) {
		if s := a.shards[v]; s != noShard {
			return int(s), true
		}
		return 0, false
	}
	if a.spill != nil {
		if s, ok := a.spill[v]; ok {
			return int(s), true
		}
	}
	return 0, false
}

// Count returns the number of vertices in shard s.
func (a *Assignment) Count(s int) int { return a.counts[s] }

// Counts returns a copy of the per-shard vertex counts.
func (a *Assignment) Counts() []int {
	return append([]int(nil), a.counts...)
}

// Assign places v in shard s, returning the previous shard (or NoShard) and
// whether this was a move of an already-assigned vertex.
func (a *Assignment) Assign(v graph.VertexID, s int) (prev int, moved bool, err error) {
	if s < 0 || s >= a.k {
		return NoShard, false, fmt.Errorf("partition: shard %d out of range [0,%d)", s, a.k)
	}
	old := noShard
	if v < denseIDLimit {
		if graph.VertexID(len(a.shards)) <= v {
			grown := append(a.shards, make([]int32, int(v)+1-len(a.shards))...)
			for i := len(a.shards); i < len(grown); i++ {
				grown[i] = noShard
			}
			a.shards = grown
		}
		old = a.shards[v]
		a.shards[v] = int32(s)
	} else {
		if a.spill == nil {
			a.spill = make(map[graph.VertexID]int32)
		}
		if sp, ok := a.spill[v]; ok {
			old = sp
		}
		a.spill[v] = int32(s)
	}
	if old != noShard {
		if int(old) == s {
			return int(old), false, nil
		}
		a.counts[old]--
		a.counts[s]++
		return int(old), true, nil
	}
	a.counts[s]++
	a.n++
	return NoShard, false, nil
}

// Resize changes the shard count to k, keeping every existing assignment.
// Growing adds empty shards at the top of the range. Shrinking requires the
// dropped shards (index >= k) to be empty — the caller drains them first by
// reassigning their vertices to survivors — so a resize can never silently
// orphan an assignment onto a shard that no longer exists.
func (a *Assignment) Resize(k int) error {
	if k < 1 {
		return fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if k >= a.k {
		a.counts = append(a.counts, make([]int, k-a.k)...)
		a.k = k
		return nil
	}
	for s := k; s < a.k; s++ {
		if a.counts[s] != 0 {
			return fmt.Errorf("partition: resize to k=%d would orphan %d vertices on shard %d",
				k, a.counts[s], s)
		}
	}
	a.counts = a.counts[:k]
	a.k = k
	return nil
}

// Each calls fn for every assigned vertex: dense IDs in ascending order,
// then spilled IDs in unspecified order.
func (a *Assignment) Each(fn func(v graph.VertexID, shard int) bool) {
	for v, s := range a.shards {
		if s == noShard {
			continue
		}
		if !fn(graph.VertexID(v), int(s)) {
			return
		}
	}
	for v, s := range a.spill {
		if !fn(v, int(s)) {
			return
		}
	}
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		k:      a.k,
		shards: append([]int32(nil), a.shards...),
		n:      a.n,
		counts: append([]int(nil), a.counts...),
	}
	if a.spill != nil {
		c.spill = make(map[graph.VertexID]int32, len(a.spill))
		for v, s := range a.spill {
			c.spill[v] = s
		}
	}
	return c
}

// Apply overwrites the assignment with a partitioner result over c,
// returning the number of already-assigned vertices that changed shard (the
// paper's "moves" metric counts exactly these).
func (a *Assignment) Apply(c *graph.CSR, parts []int) (moves int, err error) {
	if len(parts) != c.N() {
		return 0, fmt.Errorf("partition: result has %d entries for %d vertices", len(parts), c.N())
	}
	for i, s := range parts {
		_, moved, err := a.Assign(c.IDs[i], s)
		if err != nil {
			return moves, err
		}
		if moved {
			moves++
		}
	}
	return moves, nil
}

// ToParts converts the assignment into a CSR-indexed slice for refiners.
// Unassigned vertices get NoShard.
func (a *Assignment) ToParts(c *graph.CSR) []int {
	parts := make([]int, c.N())
	for i, id := range c.IDs {
		if s, ok := a.ShardOf(id); ok {
			parts[i] = s
		} else {
			parts[i] = NoShard
		}
	}
	return parts
}

// ValidateParts checks that every entry of parts is a legal shard.
func ValidateParts(parts []int, k int) error {
	for i, s := range parts {
		if s < 0 || s >= k {
			return fmt.Errorf("partition: vertex %d has illegal shard %d (k=%d)", i, s, k)
		}
	}
	return nil
}
