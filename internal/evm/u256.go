// Package evm implements a minimal Ethereum-style virtual machine: a 256-bit
// stack machine with storage, gas metering, message calls and contract
// creation. It exists so that contract interactions in the synthetic
// workload come from actually executed bytecode — the internal-call edges of
// the blockchain graph are collected from real execution traces, exactly as
// one would instrument a production node.
package evm

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Word is an unsigned 256-bit integer in little-endian limb order:
// Word[0] holds bits 0..63, Word[3] holds bits 192..255. Arithmetic wraps
// modulo 2^256, matching EVM semantics.
type Word [4]uint64

// WordFromUint64 returns a Word holding v.
func WordFromUint64(v uint64) Word { return Word{v, 0, 0, 0} }

// WordFromBytes interprets up to 32 big-endian bytes as a Word. Longer
// inputs use only the last 32 bytes, matching EVM calldata semantics.
func WordFromBytes(b []byte) Word {
	if len(b) > 32 {
		b = b[len(b)-32:]
	}
	var buf [32]byte
	copy(buf[32-len(b):], b)
	var w Word
	w[3] = binary.BigEndian.Uint64(buf[0:8])
	w[2] = binary.BigEndian.Uint64(buf[8:16])
	w[1] = binary.BigEndian.Uint64(buf[16:24])
	w[0] = binary.BigEndian.Uint64(buf[24:32])
	return w
}

// Bytes32 returns the big-endian 32-byte representation of w.
func (w Word) Bytes32() [32]byte {
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:8], w[3])
	binary.BigEndian.PutUint64(buf[8:16], w[2])
	binary.BigEndian.PutUint64(buf[16:24], w[1])
	binary.BigEndian.PutUint64(buf[24:32], w[0])
	return buf
}

// IsZero reports whether w == 0.
func (w Word) IsZero() bool { return w[0]|w[1]|w[2]|w[3] == 0 }

// IsUint64 reports whether w fits in a uint64.
func (w Word) IsUint64() bool { return w[1]|w[2]|w[3] == 0 }

// Uint64 returns the low 64 bits of w.
func (w Word) Uint64() uint64 { return w[0] }

// Cmp compares w and o, returning -1, 0 or +1.
func (w Word) Cmp(o Word) int {
	for i := 3; i >= 0; i-- {
		switch {
		case w[i] < o[i]:
			return -1
		case w[i] > o[i]:
			return 1
		}
	}
	return 0
}

// Add returns w + o mod 2^256.
func (w Word) Add(o Word) Word {
	var r Word
	var carry uint64
	for i := 0; i < 4; i++ {
		r[i], carry = bits.Add64(w[i], o[i], carry)
	}
	return r
}

// Sub returns w - o mod 2^256.
func (w Word) Sub(o Word) Word {
	var r Word
	var borrow uint64
	for i := 0; i < 4; i++ {
		r[i], borrow = bits.Sub64(w[i], o[i], borrow)
	}
	return r
}

// Mul returns w * o mod 2^256 using schoolbook limb multiplication.
func (w Word) Mul(o Word) Word {
	var r Word
	for i := 0; i < 4; i++ {
		if o[i] == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < 4; j++ {
			hi, lo := bits.Mul64(w[j], o[i])
			var c uint64
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			lo, c = bits.Add64(lo, r[i+j], 0)
			hi += c
			r[i+j] = lo
			carry = hi
		}
	}
	return r
}

// Div returns w / o (integer division). Division by zero returns zero,
// matching EVM semantics.
func (w Word) Div(o Word) Word {
	q, _ := w.divMod(o)
	return q
}

// Mod returns w mod o. Modulo by zero returns zero, matching EVM semantics.
func (w Word) Mod(o Word) Word {
	_, r := w.divMod(o)
	return r
}

// divMod returns (w/o, w%o) via restoring shift-subtract long division.
// It is O(256) iterations — slow relative to real bignum code but correct,
// simple and fast enough for a workload simulator.
func (w Word) divMod(o Word) (q, r Word) {
	if o.IsZero() {
		return Word{}, Word{}
	}
	if w.Cmp(o) < 0 {
		return Word{}, w
	}
	if o.IsUint64() && w.IsUint64() {
		return WordFromUint64(w[0] / o[0]), WordFromUint64(w[0] % o[0])
	}
	for i := w.bitLen() - 1; i >= 0; i-- {
		r = r.shl1()
		if w.bit(i) {
			r[0] |= 1
		}
		if r.Cmp(o) >= 0 {
			r = r.Sub(o)
			q.setBit(i)
		}
	}
	return q, r
}

// And returns the bitwise AND of w and o.
func (w Word) And(o Word) Word {
	return Word{w[0] & o[0], w[1] & o[1], w[2] & o[2], w[3] & o[3]}
}

// Or returns the bitwise OR of w and o.
func (w Word) Or(o Word) Word {
	return Word{w[0] | o[0], w[1] | o[1], w[2] | o[2], w[3] | o[3]}
}

// Xor returns the bitwise XOR of w and o.
func (w Word) Xor(o Word) Word {
	return Word{w[0] ^ o[0], w[1] ^ o[1], w[2] ^ o[2], w[3] ^ o[3]}
}

// Not returns the bitwise complement of w.
func (w Word) Not() Word {
	return Word{^w[0], ^w[1], ^w[2], ^w[3]}
}

// bitLen returns the minimum number of bits needed to represent w.
func (w Word) bitLen() int {
	for i := 3; i >= 0; i-- {
		if w[i] != 0 {
			return i*64 + bits.Len64(w[i])
		}
	}
	return 0
}

// bit reports whether bit i (0 = least significant) is set.
func (w Word) bit(i int) bool { return w[i/64]>>(uint(i)%64)&1 == 1 }

// setBit sets bit i in place.
func (w *Word) setBit(i int) { w[i/64] |= 1 << (uint(i) % 64) }

// shl1 returns w << 1.
func (w Word) shl1() Word {
	return Word{
		w[0] << 1,
		w[1]<<1 | w[0]>>63,
		w[2]<<1 | w[1]>>63,
		w[3]<<1 | w[2]>>63,
	}
}

// String renders w as 0x-prefixed minimal hex.
func (w Word) String() string {
	if w.IsZero() {
		return "0x0"
	}
	b := w.Bytes32()
	i := 0
	for b[i] == 0 {
		i++
	}
	return fmt.Sprintf("0x%x", b[i:])
}
