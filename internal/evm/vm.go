package evm

import (
	"errors"
	"fmt"

	"ethpart/internal/types"
)

// Execution errors. ErrRevert and ErrOutOfGas are ordinary outcomes of
// contract execution (the transaction fails, the chain continues); the
// others indicate malformed bytecode.
var (
	ErrOutOfGas            = errors.New("evm: out of gas")
	ErrStackUnderflow      = errors.New("evm: stack underflow")
	ErrStackOverflow       = errors.New("evm: stack overflow")
	ErrInvalidJump         = errors.New("evm: invalid jump destination")
	ErrInvalidOpcode       = errors.New("evm: invalid opcode")
	ErrCallDepth           = errors.New("evm: max call depth exceeded")
	ErrInsufficientBalance = errors.New("evm: insufficient balance for transfer")
	ErrRevert              = errors.New("evm: execution reverted")
)

const (
	// maxStack is the EVM stack limit.
	maxStack = 1024
	// maxCallDepth is the EVM call depth limit.
	maxCallDepth = 1024
	// maxMemory bounds VM memory to keep the simulator well-behaved on
	// adversarial bytecode.
	maxMemory = 1 << 20
)

// RemoteHook intercepts message calls to addresses that live outside the
// executing shard. It returns true when it has taken responsibility for the
// call (for example by enqueueing a cross-shard receipt); the VM then skips
// local execution and treats the call as successful with empty output. A
// nil hook (the default) executes everything locally — the single-chain
// behaviour.
type RemoteHook func(from, to types.Address, value Word, input []byte) bool

// VM executes bytecode against a StateDB and records a call trace. A VM
// instance is single-use per transaction: create one, run Call or Create
// once, read Traces.
//
// The zero value is not usable; call New.
type VM struct {
	state  StateDB
	traces []CallTrace
	remote RemoteHook
}

// New returns a VM bound to state.
func New(state StateDB) *VM {
	return &VM{state: state}
}

// SetRemoteHook installs a cross-shard call interceptor (see RemoteHook).
func (vm *VM) SetRemoteHook(hook RemoteHook) { vm.remote = hook }

// Traces returns the call trace accumulated so far. The slice is owned by
// the VM; callers must copy it if they need it past the next execution.
func (vm *VM) Traces() []CallTrace { return vm.traces }

// Call runs a message call from caller to `to` with the given value, input
// and gas. If `to` has no code the call degrades to a plain value transfer.
// It returns the output data and the gas left. The outer transaction entry
// is recorded at depth 0.
func (vm *VM) Call(caller, to types.Address, value Word, input []byte, gas uint64) ([]byte, uint64, error) {
	vm.traces = append(vm.traces, CallTrace{
		Kind: KindTransaction, From: caller, To: to, Value: value, Depth: 0,
	})
	return vm.call(caller, to, value, input, gas, 1)
}

// Create deploys code from caller with the given endowment, recording the
// creation in the trace. It returns the new contract's address.
//
// The deployed code is the *return value* of running initCode, matching
// Ethereum's two-phase deployment. Init code that returns nothing deploys
// an empty contract.
func (vm *VM) Create(caller types.Address, initCode []byte, value Word, gas uint64) (types.Address, uint64, error) {
	nonce := vm.state.GetNonce(caller)
	vm.state.SetNonce(caller, nonce+1)
	addr := types.ContractAddress(caller, nonce)

	vm.traces = append(vm.traces, CallTrace{
		Kind: KindCreate, From: caller, To: addr, Value: value, Depth: 0,
	})
	gasLeft, err := vm.create(caller, addr, initCode, value, gas, 1)
	return addr, gasLeft, err
}

// CreateAt deploys initCode at a caller-chosen address without touching the
// caller's nonce. The transaction processor uses it: the nonce bump of a
// contract-creating transaction is part of transaction validation (it must
// survive execution failure), so the processor performs it and derives the
// address itself.
func (vm *VM) CreateAt(caller, addr types.Address, initCode []byte, value Word, gas uint64) (uint64, error) {
	vm.traces = append(vm.traces, CallTrace{
		Kind: KindCreate, From: caller, To: addr, Value: value, Depth: 0,
	})
	return vm.create(caller, addr, initCode, value, gas, 1)
}

// call implements message-call semantics at the given depth.
func (vm *VM) call(caller, to types.Address, value Word, input []byte, gas uint64, depth int) ([]byte, uint64, error) {
	if depth > maxCallDepth {
		return nil, gas, ErrCallDepth
	}
	if !value.IsZero() {
		if vm.state.GetBalance(caller).Cmp(value) < 0 {
			return nil, gas, ErrInsufficientBalance
		}
		vm.state.SubBalance(caller, value)
		vm.state.AddBalance(to, value)
	} else if !vm.state.Exist(to) {
		vm.state.CreateAccount(to)
	}
	code := vm.state.GetCode(to)
	if len(code) == 0 {
		return nil, gas, nil // plain transfer
	}
	return vm.run(frame{caller: caller, self: to, value: value, input: input, code: code, gas: gas, depth: depth})
}

// create implements contract-creation semantics at the given depth.
func (vm *VM) create(caller, addr types.Address, initCode []byte, value Word, gas uint64, depth int) (uint64, error) {
	if depth > maxCallDepth {
		return gas, ErrCallDepth
	}
	if !value.IsZero() {
		if vm.state.GetBalance(caller).Cmp(value) < 0 {
			return gas, ErrInsufficientBalance
		}
	}
	vm.state.CreateAccount(addr)
	if !value.IsZero() {
		vm.state.SubBalance(caller, value)
		vm.state.AddBalance(addr, value)
	}
	deployed, gasLeft, err := vm.run(frame{
		caller: caller, self: addr, value: value, input: nil, code: initCode,
		gas: gas, depth: depth,
	})
	if err != nil {
		return gasLeft, err
	}
	vm.state.SetCode(addr, deployed)
	return gasLeft, nil
}

// frame is a single execution context.
type frame struct {
	caller types.Address
	self   types.Address
	value  Word
	input  []byte
	code   []byte
	gas    uint64
	depth  int
}

// run is the interpreter loop. It returns the frame's output data and the
// gas remaining.
func (vm *VM) run(f frame) ([]byte, uint64, error) {
	var (
		stack = make([]Word, 0, 64)
		mem   []byte
		pc    int
		gas   = f.gas
	)
	jumpdests := validJumpdests(f.code)

	pop := func() Word {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return w
	}
	push := func(w Word) { stack = append(stack, w) }

	for pc < len(f.code) {
		op := Opcode(f.code[pc])
		cost := gasCost(op)
		if gas < cost {
			return nil, 0, fmt.Errorf("%w: op %s at pc %d", ErrOutOfGas, op, pc)
		}
		gas -= cost

		// Stack arity check.
		need, produce := opArity(op)
		if len(stack) < need {
			return nil, gas, fmt.Errorf("%w: op %s at pc %d needs %d, have %d",
				ErrStackUnderflow, op, pc, need, len(stack))
		}
		if len(stack)-need+produce > maxStack {
			return nil, gas, fmt.Errorf("%w: op %s at pc %d", ErrStackOverflow, op, pc)
		}

		switch {
		case op == STOP:
			return nil, gas, nil

		// Binary ops follow yellow-paper operand order: the top of the
		// stack is the first operand (a), the item below it the second (b).
		case op == ADD:
			a, b := pop(), pop()
			push(a.Add(b))
		case op == MUL:
			a, b := pop(), pop()
			push(a.Mul(b))
		case op == SUB:
			a, b := pop(), pop()
			push(a.Sub(b))
		case op == DIV:
			a, b := pop(), pop()
			push(a.Div(b))
		case op == MOD:
			a, b := pop(), pop()
			push(a.Mod(b))
		case op == LT:
			a, b := pop(), pop()
			push(boolWord(a.Cmp(b) < 0))
		case op == GT:
			a, b := pop(), pop()
			push(boolWord(a.Cmp(b) > 0))
		case op == EQ:
			a, b := pop(), pop()
			push(boolWord(a == b))
		case op == ISZERO:
			push(boolWord(pop().IsZero()))
		case op == AND:
			a, b := pop(), pop()
			push(a.And(b))
		case op == OR:
			a, b := pop(), pop()
			push(a.Or(b))
		case op == XOR:
			a, b := pop(), pop()
			push(a.Xor(b))
		case op == NOT:
			push(pop().Not())

		case op == ADDRESS:
			push(addressWord(f.self))
		case op == BALANCE:
			addr := wordAddress(pop())
			push(vm.state.GetBalance(addr))
		case op == CALLER:
			push(addressWord(f.caller))
		case op == CALLVALUE:
			push(f.value)
		case op == CALLDATALOAD:
			off := pop()
			push(calldataLoad(f.input, off))
		case op == CALLDATASIZE:
			push(WordFromUint64(uint64(len(f.input))))

		case op == POP:
			pop()
		case op == MLOAD:
			off := pop()
			m, err := memExpand(mem, off, 32)
			if err != nil {
				return nil, gas, err
			}
			mem = m
			push(WordFromBytes(mem[off.Uint64() : off.Uint64()+32]))
		case op == MSTORE:
			off, val := pop(), pop()
			m, err := memExpand(mem, off, 32)
			if err != nil {
				return nil, gas, err
			}
			mem = m
			b := val.Bytes32()
			copy(mem[off.Uint64():], b[:])
		case op == SLOAD:
			key := pop()
			push(vm.state.GetState(f.self, key))
		case op == SSTORE:
			key, val := pop(), pop()
			vm.state.SetState(f.self, key, val)

		case op == JUMP:
			dst := pop()
			if !dst.IsUint64() || !jumpdests[dst.Uint64()] {
				return nil, gas, fmt.Errorf("%w: to %s at pc %d", ErrInvalidJump, dst, pc)
			}
			pc = int(dst.Uint64())
			continue
		case op == JUMPI:
			dst, cond := pop(), pop()
			if !cond.IsZero() {
				if !dst.IsUint64() || !jumpdests[dst.Uint64()] {
					return nil, gas, fmt.Errorf("%w: to %s at pc %d", ErrInvalidJump, dst, pc)
				}
				pc = int(dst.Uint64())
				continue
			}
		case op == PC:
			push(WordFromUint64(uint64(pc)))
		case op == GAS:
			push(WordFromUint64(gas))
		case op == JUMPDEST:
			// no-op marker

		case op.IsPush():
			n := op.PushSize()
			end := pc + 1 + n
			if end > len(f.code) {
				return nil, gas, fmt.Errorf("%w: truncated %s at pc %d", ErrInvalidOpcode, op, pc)
			}
			push(WordFromBytes(f.code[pc+1 : end]))
			pc = end
			continue

		case op >= DUP1 && op <= DUP16:
			n := int(op-DUP1) + 1
			if len(stack) < n {
				return nil, gas, fmt.Errorf("%w: %s at pc %d", ErrStackUnderflow, op, pc)
			}
			push(stack[len(stack)-n])
		case op >= SWAP1 && op <= SWAP16:
			n := int(op-SWAP1) + 1
			if len(stack) < n+1 {
				return nil, gas, fmt.Errorf("%w: %s at pc %d", ErrStackUnderflow, op, pc)
			}
			top := len(stack) - 1
			stack[top], stack[top-n] = stack[top-n], stack[top]

		case op == CALL:
			// Stack (top first): gas, to, value, inOff, inSize, outOff, outSize.
			cgas := pop()
			toW := pop()
			value := pop()
			inOff, inSize := pop(), pop()
			outOff, outSize := pop(), pop()

			m, err := memExpand(mem, inOff, inSize.Uint64())
			if err != nil {
				return nil, gas, err
			}
			mem = m
			input := make([]byte, inSize.Uint64())
			copy(input, mem[inOff.Uint64():inOff.Uint64()+inSize.Uint64()])

			callGas := cgas.Uint64()
			if !cgas.IsUint64() || callGas > gas {
				callGas = gas
			}
			to := wordAddress(toW)
			vm.traces = append(vm.traces, CallTrace{
				Kind: KindCall, From: f.self, To: to, Value: value, Depth: f.depth,
			})
			// Cross-shard interception: only when the caller can afford the
			// value (the hook enqueues a receipt, so it must not run for
			// calls that would fail locally anyway).
			canAfford := value.IsZero() || vm.state.GetBalance(f.self).Cmp(value) >= 0
			if vm.remote != nil && canAfford && vm.remote(f.self, to, value, input) {
				// Handled as a cross-shard call: debit the value locally
				// (the remote side credits it when the receipt settles)
				// and report success with empty output.
				if !value.IsZero() {
					vm.state.SubBalance(f.self, value)
				}
				push(WordFromUint64(1))
				pc++
				continue
			}
			ret, gasLeft, err := vm.call(f.self, to, value, input, callGas, f.depth+1)
			gas = gas - callGas + gasLeft
			if err != nil {
				push(Word{}) // failure
			} else {
				push(WordFromUint64(1))
				if n := min(uint64(len(ret)), outSize.Uint64()); n > 0 {
					m, err := memExpand(mem, outOff, n)
					if err != nil {
						return nil, gas, err
					}
					mem = m
					copy(mem[outOff.Uint64():], ret[:n])
				}
			}

		case op == CREATE:
			// Stack (top first): value, offset, size.
			value := pop()
			off, size := pop(), pop()
			m, err := memExpand(mem, off, size.Uint64())
			if err != nil {
				return nil, gas, err
			}
			mem = m
			initCode := make([]byte, size.Uint64())
			copy(initCode, mem[off.Uint64():off.Uint64()+size.Uint64()])

			nonce := vm.state.GetNonce(f.self)
			vm.state.SetNonce(f.self, nonce+1)
			addr := types.ContractAddress(f.self, nonce)
			vm.traces = append(vm.traces, CallTrace{
				Kind: KindCreate, From: f.self, To: addr, Value: value, Depth: f.depth,
			})
			gasLeft, err := vm.create(f.self, addr, initCode, value, gas, f.depth+1)
			gas = gasLeft
			if err != nil {
				push(Word{})
			} else {
				push(addressWord(addr))
			}

		case op == RETURN:
			off, size := pop(), pop()
			m, err := memExpand(mem, off, size.Uint64())
			if err != nil {
				return nil, gas, err
			}
			mem = m
			out := make([]byte, size.Uint64())
			copy(out, mem[off.Uint64():off.Uint64()+size.Uint64()])
			return out, gas, nil

		case op == REVERT:
			return nil, gas, ErrRevert

		default:
			return nil, gas, fmt.Errorf("%w: 0x%02x at pc %d", ErrInvalidOpcode, byte(op), pc)
		}
		pc++
	}
	return nil, gas, nil
}

// opArity returns the number of stack items consumed and produced by op.
// PUSH/DUP/SWAP and flow ops handle their own checks; this covers the rest.
func opArity(op Opcode) (need, produce int) {
	switch op {
	case ADD, MUL, SUB, DIV, MOD, LT, GT, EQ, AND, OR, XOR:
		return 2, 1
	case ISZERO, NOT, BALANCE, CALLDATALOAD, MLOAD:
		return 1, 1
	case ADDRESS, CALLER, CALLVALUE, CALLDATASIZE, PC, GAS:
		return 0, 1
	case POP, JUMP:
		return 1, 0
	case MSTORE, SSTORE, JUMPI, RETURN, REVERT:
		return 2, 0
	case SLOAD:
		return 1, 1
	case CALL:
		return 7, 1
	case CREATE:
		return 3, 1
	default:
		return 0, 1 // PUSH family; DUP/SWAP check explicitly
	}
}

// validJumpdests scans code and marks every JUMPDEST that is not inside a
// PUSH immediate.
func validJumpdests(code []byte) map[uint64]bool {
	dests := make(map[uint64]bool)
	for pc := 0; pc < len(code); {
		op := Opcode(code[pc])
		if op == JUMPDEST {
			dests[uint64(pc)] = true
		}
		pc += 1 + op.PushSize()
	}
	return dests
}

// calldataLoad reads 32 bytes of calldata at off, zero-padded past the end.
func calldataLoad(input []byte, off Word) Word {
	if !off.IsUint64() || off.Uint64() >= uint64(len(input)) {
		return Word{}
	}
	start := off.Uint64()
	var buf [32]byte
	copy(buf[:], input[start:])
	return WordFromBytes(buf[:])
}

// memExpand grows mem so that [off, off+size) is addressable, enforcing the
// memory cap.
func memExpand(mem []byte, off Word, size uint64) ([]byte, error) {
	if size == 0 {
		return mem, nil
	}
	if !off.IsUint64() || off.Uint64()+size > maxMemory {
		return nil, fmt.Errorf("%w: memory access beyond cap", ErrOutOfGas)
	}
	end := off.Uint64() + size
	if uint64(len(mem)) < end {
		grown := make([]byte, end)
		copy(grown, mem)
		return grown, nil
	}
	return mem, nil
}

// addressWord widens a 20-byte address to a 256-bit word.
func addressWord(a types.Address) Word { return WordFromBytes(a[:]) }

// wordAddress narrows a word to its low 20 bytes.
func wordAddress(w Word) types.Address {
	b := w.Bytes32()
	return types.BytesToAddress(b[:])
}

func boolWord(b bool) Word {
	if b {
		return WordFromUint64(1)
	}
	return Word{}
}
