package evm

import (
	"ethpart/internal/types"
)

// StateDB is the world-state interface the VM executes against. The chain
// package provides the canonical implementation; tests use an in-memory
// stub.
type StateDB interface {
	// Exist reports whether the account exists (has been touched).
	Exist(addr types.Address) bool
	// CreateAccount ensures an account record exists for addr.
	CreateAccount(addr types.Address)

	// GetBalance returns the account balance in wei.
	GetBalance(addr types.Address) Word
	// AddBalance credits amount to addr, creating the account if needed.
	AddBalance(addr types.Address, amount Word)
	// SubBalance debits amount from addr. The caller must have verified
	// sufficient balance; implementations may clamp at zero.
	SubBalance(addr types.Address, amount Word)

	// GetNonce and SetNonce access the account transaction counter.
	GetNonce(addr types.Address) uint64
	SetNonce(addr types.Address, nonce uint64)

	// GetCode and SetCode access contract bytecode.
	GetCode(addr types.Address) []byte
	SetCode(addr types.Address, code []byte)

	// GetState and SetState access a contract's 32-byte key/value storage.
	GetState(addr types.Address, key Word) Word
	SetState(addr types.Address, key, value Word)

	// StorageSize returns the number of occupied storage slots of addr.
	// The sharding simulator uses it to estimate the cost of relocating a
	// contract to another shard.
	StorageSize(addr types.Address) int
}

// CallKind labels an entry in a call trace.
type CallKind uint8

// Call trace kinds.
const (
	// KindTransaction is the outer, user-submitted message.
	KindTransaction CallKind = iota + 1
	// KindCall is an internal message call performed by a contract.
	KindCall
	// KindCreate is a contract creation.
	KindCreate
)

// String implements fmt.Stringer.
func (k CallKind) String() string {
	switch k {
	case KindTransaction:
		return "tx"
	case KindCall:
		return "call"
	case KindCreate:
		return "create"
	default:
		return "unknown"
	}
}

// CallTrace records one edge-producing interaction observed during
// execution: the outer transaction plus every internal call and creation.
// The graph builder turns each trace entry into a directed edge.
type CallTrace struct {
	Kind  CallKind
	From  types.Address
	To    types.Address
	Value Word
	Depth int
}
