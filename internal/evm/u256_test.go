package evm

import (
	"math/big"
	"testing"
	"testing/quick"
)

// bigMod is 2^256, the modulus of Word arithmetic.
var bigMod = new(big.Int).Lsh(big.NewInt(1), 256)

func wordToBig(w Word) *big.Int {
	b := w.Bytes32()
	return new(big.Int).SetBytes(b[:])
}

func bigToWord(x *big.Int) Word {
	y := new(big.Int).Mod(x, bigMod)
	return WordFromBytes(y.Bytes())
}

func TestWordFromUint64(t *testing.T) {
	w := WordFromUint64(42)
	if !w.IsUint64() || w.Uint64() != 42 {
		t.Fatalf("WordFromUint64(42) = %v", w)
	}
	if w.IsZero() {
		t.Fatal("42 is not zero")
	}
	if !WordFromUint64(0).IsZero() {
		t.Fatal("0 must be zero")
	}
}

func TestWordBytesRoundTrip(t *testing.T) {
	tests := []Word{
		{},
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
		{0xdeadbeef, 0xcafebabe, 0x12345678, 0x9abcdef0},
	}
	for _, w := range tests {
		b := w.Bytes32()
		got := WordFromBytes(b[:])
		if got != w {
			t.Errorf("round trip failed: %v -> %v", w, got)
		}
	}
}

func TestWordFromBytesShort(t *testing.T) {
	w := WordFromBytes([]byte{0x01, 0x02})
	if w.Uint64() != 0x0102 {
		t.Fatalf("short bytes: got %v", w)
	}
}

func TestWordFromBytesLong(t *testing.T) {
	// 33 bytes: the first byte must be ignored.
	b := make([]byte, 33)
	b[0] = 0xff
	b[32] = 0x07
	w := WordFromBytes(b)
	if w.Uint64() != 7 || !w.IsUint64() {
		t.Fatalf("long bytes: got %v", w)
	}
}

func TestWordString(t *testing.T) {
	tests := []struct {
		w    Word
		want string
	}{
		{Word{}, "0x0"},
		{WordFromUint64(255), "0xff"},
		{WordFromUint64(4096), "0x1000"},
	}
	for _, tt := range tests {
		if got := tt.w.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.w, got, tt.want)
		}
	}
}

func TestDivModByZero(t *testing.T) {
	w := WordFromUint64(123)
	if !w.Div(Word{}).IsZero() {
		t.Error("division by zero must return zero")
	}
	if !w.Mod(Word{}).IsZero() {
		t.Error("modulo by zero must return zero")
	}
}

func TestAddOverflowWraps(t *testing.T) {
	max := Word{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	if got := max.Add(WordFromUint64(1)); !got.IsZero() {
		t.Errorf("max+1 = %v, want 0", got)
	}
}

func TestSubUnderflowWraps(t *testing.T) {
	got := Word{}.Sub(WordFromUint64(1))
	want := Word{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	if got != want {
		t.Errorf("0-1 = %v, want all-ones", got)
	}
}

// randWord builds a Word from four uint64s, used by quick.Check.
func TestPropertyArithMatchesBig(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint64) bool {
		a := Word{a0, a1, a2, a3}
		b := Word{b0, b1, b2, b3}
		ba, bb := wordToBig(a), wordToBig(b)

		if a.Add(b) != bigToWord(new(big.Int).Add(ba, bb)) {
			return false
		}
		if a.Sub(b) != bigToWord(new(big.Int).Sub(ba, bb)) {
			return false
		}
		if a.Mul(b) != bigToWord(new(big.Int).Mul(ba, bb)) {
			return false
		}
		if bb.Sign() != 0 {
			if a.Div(b) != bigToWord(new(big.Int).Div(ba, bb)) {
				return false
			}
			if a.Mod(b) != bigToWord(new(big.Int).Mod(ba, bb)) {
				return false
			}
		}
		if a.Cmp(b) != ba.Cmp(bb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBitwiseMatchesBig(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint64) bool {
		a := Word{a0, a1, a2, a3}
		b := Word{b0, b1, b2, b3}
		ba, bb := wordToBig(a), wordToBig(b)
		if a.And(b) != bigToWord(new(big.Int).And(ba, bb)) {
			return false
		}
		if a.Or(b) != bigToWord(new(big.Int).Or(ba, bb)) {
			return false
		}
		if a.Xor(b) != bigToWord(new(big.Int).Xor(ba, bb)) {
			return false
		}
		// Not: ^a == 2^256-1 - a.
		allOnes := new(big.Int).Sub(bigMod, big.NewInt(1))
		if a.Not() != bigToWord(new(big.Int).Sub(allOnes, ba)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDivModIdentity(t *testing.T) {
	// Property: a == (a/b)*b + a%b for b != 0.
	f := func(a0, a1, a2, a3, b0, b1 uint64) bool {
		a := Word{a0, a1, a2, a3}
		b := Word{b0, b1, 0, 0}
		if b.IsZero() {
			return true
		}
		q, m := a.Div(b), a.Mod(b)
		return q.Mul(b).Add(m) == a && m.Cmp(b) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWordMul(b *testing.B) {
	x := Word{0xdeadbeefcafebabe, 0x0123456789abcdef, 0xfedcba9876543210, 0x1}
	y := Word{0x1111111111111111, 0x2222222222222222, 0x3333333333333333, 0x4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	sinkWord = x
}

func BenchmarkWordDiv(b *testing.B) {
	x := Word{0xdeadbeefcafebabe, 0x0123456789abcdef, 0xfedcba9876543210, 0x1}
	y := Word{0x1111111111111111, 0x2, 0, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkWord = x.Div(y)
	}
}

var sinkWord Word
