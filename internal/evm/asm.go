package evm

import (
	"encoding/binary"
	"fmt"

	"ethpart/internal/types"
)

// Assembler builds bytecode programmatically with label-based jumps. The
// workload generator's contract archetypes are written against it.
//
// Usage:
//
//	a := NewAssembler()
//	a.Push(0).Op(CALLDATALOAD).Push(1).Op(EQ)
//	a.JumpITo("transfer")
//	a.Op(STOP)
//	a.Label("transfer")
//	...
//	code, err := a.Bytes()
type Assembler struct {
	code   []byte
	labels map[string]int
	fixups []fixup
	err    error
}

// fixup records a PUSH2 immediate that must be patched with a label offset.
type fixup struct {
	pos   int // offset of the 2-byte immediate
	label string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int)}
}

// Op appends raw opcodes.
func (a *Assembler) Op(ops ...Opcode) *Assembler {
	for _, op := range ops {
		a.code = append(a.code, byte(op))
	}
	return a
}

// Push appends the smallest PUSH instruction that holds v.
func (a *Assembler) Push(v uint64) *Assembler {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	i := 0
	for i < 7 && buf[i] == 0 {
		i++
	}
	imm := buf[i:]
	a.code = append(a.code, byte(PUSH1)+byte(len(imm)-1))
	a.code = append(a.code, imm...)
	return a
}

// PushWord appends a PUSH32 of w.
func (a *Assembler) PushWord(w Word) *Assembler {
	b := w.Bytes32()
	a.code = append(a.code, byte(PUSH32))
	a.code = append(a.code, b[:]...)
	return a
}

// PushAddress appends a PUSH20 of addr.
func (a *Assembler) PushAddress(addr types.Address) *Assembler {
	a.code = append(a.code, byte(PUSH1)+types.AddressLen-1)
	a.code = append(a.code, addr[:]...)
	return a
}

// Label places a JUMPDEST here and binds name to its program counter.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.err = fmt.Errorf("evm: duplicate label %q", name)
		return a
	}
	a.labels[name] = len(a.code)
	a.code = append(a.code, byte(JUMPDEST))
	return a
}

// PushLabel appends a PUSH2 whose immediate will be patched with the pc of
// name when Bytes is called.
func (a *Assembler) PushLabel(name string) *Assembler {
	a.code = append(a.code, byte(PUSH1)+1) // PUSH2
	a.fixups = append(a.fixups, fixup{pos: len(a.code), label: name})
	a.code = append(a.code, 0, 0)
	return a
}

// JumpTo appends an unconditional jump to label name.
func (a *Assembler) JumpTo(name string) *Assembler {
	return a.PushLabel(name).Op(JUMP)
}

// JumpITo appends a conditional jump to label name. The condition must
// already be on the stack (JUMPI pops destination, then condition).
func (a *Assembler) JumpITo(name string) *Assembler {
	return a.PushLabel(name).Op(JUMPI)
}

// Bytes resolves all label fixups and returns the bytecode.
func (a *Assembler) Bytes() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	for _, f := range a.fixups {
		pc, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("evm: undefined label %q", f.label)
		}
		if pc > 0xffff {
			return nil, fmt.Errorf("evm: label %q offset %d exceeds PUSH2 range", f.label, pc)
		}
		binary.BigEndian.PutUint16(a.code[f.pos:], uint16(pc))
	}
	out := make([]byte, len(a.code))
	copy(out, a.code)
	return out, nil
}

// MustBytes is Bytes for statically known-good programs; it panics on error
// and is intended for package-level contract templates whose correctness is
// covered by tests.
func (a *Assembler) MustBytes() []byte {
	b, err := a.Bytes()
	if err != nil {
		panic(err)
	}
	return b
}

// DeployWrapper wraps runtime bytecode in init code that returns it, the
// standard two-phase EVM deployment. The wrapper MSTOREs the runtime code
// into memory 32 bytes at a time and RETURNs the exact code length.
func DeployWrapper(runtime []byte) []byte {
	a := NewAssembler()
	for off := 0; off < len(runtime); off += 32 {
		end := off + 32
		var chunk [32]byte
		if end > len(runtime) {
			end = len(runtime)
		}
		copy(chunk[:], runtime[off:end])
		// MSTORE pops offset (top) then value: push value, then offset.
		a.PushWord(WordFromBytes(chunk[:]))
		a.Push(uint64(off))
		a.Op(MSTORE)
	}
	// RETURN pops offset (top) then size: push size, then offset.
	a.Push(uint64(len(runtime)))
	a.Push(0)
	a.Op(RETURN)
	return a.MustBytes()
}
