package evm

import (
	"errors"
	"testing"

	"ethpart/internal/types"
)

func TestBalanceAndAddressOpcodes(t *testing.T) {
	// Contract stores its own balance at slot 0 and its address at slot 1.
	code := NewAssembler().
		Op(ADDRESS).Op(BALANCE).Push(0).Op(SSTORE).
		Op(ADDRESS).Push(1).Op(SSTORE).
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	st.AddBalance(bob, WordFromUint64(1234))
	if _, _, err := New(st).Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	if got := st.GetState(bob, WordFromUint64(0)).Uint64(); got != 1234 {
		t.Errorf("BALANCE stored %d, want 1234", got)
	}
	if got := st.GetState(bob, WordFromUint64(1)); got != addressWord(bob) {
		t.Errorf("ADDRESS stored %v", got)
	}
}

func TestGasAndPCOpcodes(t *testing.T) {
	// Store GAS at 0 and PC at 1; both must be non-zero / expected.
	code := NewAssembler().
		Op(GAS).Push(0).Op(SSTORE).
		Op(PC).Push(1).Op(SSTORE). // PC here is the offset of the PC op
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	if _, _, err := New(st).Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	if st.GetState(bob, WordFromUint64(0)).IsZero() {
		t.Error("GAS must be non-zero")
	}
	// PC opcode sits after GAS(1)+PUSH1 0(2)+SSTORE(1) = offset 4.
	if got := st.GetState(bob, WordFromUint64(1)).Uint64(); got != 4 {
		t.Errorf("PC = %d, want 4", got)
	}
}

func TestBitwiseAndComparisonOpcodes(t *testing.T) {
	code := NewAssembler().
		Push(0b1100).Push(0b1010).Op(AND).Push(0).Op(SSTORE). // 0b1000
		Push(0b1100).Push(0b1010).Op(OR).Push(1).Op(SSTORE).  // 0b1110
		Push(0b1100).Push(0b1010).Op(XOR).Push(2).Op(SSTORE). // 0b0110
		Push(0).Op(NOT).Push(3).Op(SSTORE).                   // all ones
		Push(5).Push(3).Op(LT).Push(4).Op(SSTORE).            // 3 < 5 = 1
		Push(3).Push(5).Op(GT).Push(5).Op(SSTORE).            // 5 > 3 = 1
		Push(7).Push(7).Op(EQ).Push(6).Op(SSTORE).            // 1
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	if _, _, err := New(st).Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0b1000, 0b1110, 0b0110, 0, 1, 1, 1}
	for slot, w := range want {
		got := st.GetState(bob, WordFromUint64(uint64(slot)))
		if slot == 3 {
			if got != (Word{}).Not() {
				t.Errorf("slot 3 = %v, want all-ones", got)
			}
			continue
		}
		if got.Uint64() != w {
			t.Errorf("slot %d = %v, want %d", slot, got, w)
		}
	}
}

func TestModOpcode(t *testing.T) {
	code := NewAssembler().
		Push(5).Push(17).Op(MOD).Push(0).Op(SSTORE). // 17 mod 5 = 2
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	if _, _, err := New(st).Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	if got := st.GetState(bob, WordFromUint64(0)).Uint64(); got != 2 {
		t.Errorf("17 mod 5 = %d, want 2", got)
	}
}

func TestMemoryCapEnforced(t *testing.T) {
	// MSTORE far past the cap must fail.
	code := NewAssembler().
		Push(1).Push(1 << 30).Op(MSTORE).Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	_, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v, want memory cap error", err)
	}
}

func TestCallToSelfDepth(t *testing.T) {
	// A contract that calls itself recursively. Depth must be bounded and
	// the outer call must still succeed (inner failure pushes 0).
	code := NewAssembler().
		Push(0).Push(0).Push(0).Push(0).Push(0).
		Op(ADDRESS).
		Push(1_000_000).
		Op(CALL).Op(POP).Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	vm := New(st)
	if _, _, err := vm.Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	// Gas halving per level bounds recursion well below maxCallDepth, but
	// several levels must have been traced.
	if len(vm.Traces()) < 3 {
		t.Errorf("recursion traced %d calls", len(vm.Traces()))
	}
}

func TestCallOutputWrittenToMemory(t *testing.T) {
	// Callee returns 0x2a; caller stores the returned word.
	callee := NewAssembler().
		Push(42).Push(0).Op(MSTORE).
		Push(32).Push(0).Op(RETURN).
		MustBytes()
	carol := types.AddressFromSeq(77)

	caller := NewAssembler().
		Push(32).Push(0). // outSize=32 outOff=0
		Push(0).Push(0).  // inSize inOff
		Push(0).          // value
		PushAddress(carol).
		Push(100_000).
		Op(CALL).Op(POP).
		Push(0).Op(MLOAD).Push(0).Op(SSTORE).
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(carol, callee)
	st.SetCode(bob, caller)
	if _, _, err := New(st).Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	if got := st.GetState(bob, WordFromUint64(0)).Uint64(); got != 42 {
		t.Errorf("returned word = %d, want 42", got)
	}
}

func TestCreateOpcodeInsideContract(t *testing.T) {
	// A factory deploys an empty contract via CREATE and stores the new
	// address.
	factory := NewAssembler().
		Push(0).Push(0). // size=0 offset=0 (empty init code)
		Push(0).         // value
		Op(CREATE).
		Push(0).Op(SSTORE).
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, factory)
	vm := New(st)
	if _, _, err := vm.Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	stored := st.GetState(bob, WordFromUint64(0))
	if stored.IsZero() {
		t.Fatal("CREATE must push the new address")
	}
	created := wordAddress(stored)
	if !st.Exist(created) {
		t.Error("created account missing from state")
	}
	// Trace: tx + create.
	traces := vm.Traces()
	if len(traces) != 2 || traces[1].Kind != KindCreate || traces[1].From != bob {
		t.Errorf("traces = %+v", traces)
	}
	if st.GetNonce(bob) != 1 {
		t.Errorf("factory nonce = %d, want 1", st.GetNonce(bob))
	}
}

func TestStackOverflowGuard(t *testing.T) {
	// 1025 pushes must overflow the stack.
	a := NewAssembler()
	for i := 0; i < maxStack+1; i++ {
		a.Push(1)
	}
	a.Op(STOP)
	st := newMemState()
	st.SetCode(bob, a.MustBytes())
	_, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
	if !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v, want ErrStackOverflow", err)
	}
}

func TestTruncatedPushRejected(t *testing.T) {
	st := newMemState()
	st.SetCode(bob, []byte{byte(PUSH32), 0x01}) // 31 bytes missing
	_, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
	if !errors.Is(err, ErrInvalidOpcode) {
		t.Fatalf("err = %v, want ErrInvalidOpcode", err)
	}
}

func TestDupSwapUnderflow(t *testing.T) {
	for _, op := range []Opcode{DUP16, SWAP16} {
		st := newMemState()
		st.SetCode(bob, []byte{byte(PUSH1), 1, byte(op)})
		_, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
		if !errors.Is(err, ErrStackUnderflow) {
			t.Fatalf("%v: err = %v, want ErrStackUnderflow", op, err)
		}
	}
}

func TestCreateWithValueMovesBalance(t *testing.T) {
	st := newMemState()
	st.AddBalance(alice, WordFromUint64(1000))
	vm := New(st)
	addr, _, err := vm.Create(alice, nil, WordFromUint64(400), testGas)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.GetBalance(addr).Uint64(); got != 400 {
		t.Errorf("endowment = %d, want 400", got)
	}
	if got := st.GetBalance(alice).Uint64(); got != 600 {
		t.Errorf("creator balance = %d, want 600", got)
	}
}

func TestCreateInsufficientEndowment(t *testing.T) {
	st := newMemState()
	vm := New(st)
	_, _, err := vm.Create(alice, nil, WordFromUint64(400), testGas)
	if !errors.Is(err, ErrInsufficientBalance) {
		t.Fatalf("err = %v, want ErrInsufficientBalance", err)
	}
}

func TestCalldataSizeOpcode(t *testing.T) {
	code := NewAssembler().
		Op(CALLDATASIZE).Push(0).Op(SSTORE).Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	if _, _, err := New(st).Call(alice, bob, Word{}, make([]byte, 77), testGas); err != nil {
		t.Fatal(err)
	}
	if got := st.GetState(bob, WordFromUint64(0)).Uint64(); got != 77 {
		t.Errorf("CALLDATASIZE = %d, want 77", got)
	}
}

func TestFailedInnerCallDoesNotAbortOuter(t *testing.T) {
	// Callee always reverts; caller must still finish with success=0 on
	// the stack, storing 0.
	carol := types.AddressFromSeq(78)
	callee := NewAssembler().Push(0).Push(0).Op(REVERT).MustBytes()
	caller := NewAssembler().
		Push(0).Push(0).Push(0).Push(0).Push(0).
		PushAddress(carol).
		Push(50_000).
		Op(CALL).
		Push(0).Op(SSTORE). // store the success flag
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(carol, callee)
	st.SetCode(bob, caller)
	if _, _, err := New(st).Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	if !st.GetState(bob, WordFromUint64(0)).IsZero() {
		t.Error("failed inner call must push 0")
	}
}
