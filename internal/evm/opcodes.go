package evm

import "fmt"

// Opcode is a single EVM instruction byte.
type Opcode byte

// The instruction set implemented by this VM. Values match the Ethereum
// yellow-paper opcodes so that bytecode reads naturally to anyone familiar
// with the EVM.
const (
	STOP   Opcode = 0x00
	ADD    Opcode = 0x01
	MUL    Opcode = 0x02
	SUB    Opcode = 0x03
	DIV    Opcode = 0x04
	MOD    Opcode = 0x06
	LT     Opcode = 0x10
	GT     Opcode = 0x11
	EQ     Opcode = 0x14
	ISZERO Opcode = 0x15
	AND    Opcode = 0x16
	OR     Opcode = 0x17
	XOR    Opcode = 0x18
	NOT    Opcode = 0x19

	ADDRESS      Opcode = 0x30
	BALANCE      Opcode = 0x31
	CALLER       Opcode = 0x33
	CALLVALUE    Opcode = 0x34
	CALLDATALOAD Opcode = 0x35
	CALLDATASIZE Opcode = 0x36

	POP      Opcode = 0x50
	MLOAD    Opcode = 0x51
	MSTORE   Opcode = 0x52
	SLOAD    Opcode = 0x54
	SSTORE   Opcode = 0x55
	JUMP     Opcode = 0x56
	JUMPI    Opcode = 0x57
	PC       Opcode = 0x58
	GAS      Opcode = 0x5a
	JUMPDEST Opcode = 0x5b

	PUSH1  Opcode = 0x60
	PUSH32 Opcode = 0x7f
	DUP1   Opcode = 0x80
	DUP16  Opcode = 0x8f
	SWAP1  Opcode = 0x90
	SWAP16 Opcode = 0x9f

	CREATE Opcode = 0xf0
	CALL   Opcode = 0xf1
	RETURN Opcode = 0xf3
	REVERT Opcode = 0xfd
)

// IsPush reports whether op is one of PUSH1..PUSH32.
func (op Opcode) IsPush() bool { return op >= PUSH1 && op <= PUSH32 }

// PushSize returns the number of immediate bytes for a PUSH opcode, or zero.
func (op Opcode) PushSize() int {
	if !op.IsPush() {
		return 0
	}
	return int(op-PUSH1) + 1
}

// opcodeNames maps opcodes to mnemonic strings for tracing and errors.
var opcodeNames = map[Opcode]string{
	STOP: "STOP", ADD: "ADD", MUL: "MUL", SUB: "SUB", DIV: "DIV", MOD: "MOD",
	LT: "LT", GT: "GT", EQ: "EQ", ISZERO: "ISZERO",
	AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT",
	ADDRESS: "ADDRESS", BALANCE: "BALANCE", CALLER: "CALLER",
	CALLVALUE: "CALLVALUE", CALLDATALOAD: "CALLDATALOAD", CALLDATASIZE: "CALLDATASIZE",
	POP: "POP", MLOAD: "MLOAD", MSTORE: "MSTORE",
	SLOAD: "SLOAD", SSTORE: "SSTORE",
	JUMP: "JUMP", JUMPI: "JUMPI", PC: "PC", GAS: "GAS", JUMPDEST: "JUMPDEST",
	CREATE: "CREATE", CALL: "CALL", RETURN: "RETURN", REVERT: "REVERT",
}

// String implements fmt.Stringer.
func (op Opcode) String() string {
	if name, ok := opcodeNames[op]; ok {
		return name
	}
	if op.IsPush() {
		return fmt.Sprintf("PUSH%d", op.PushSize())
	}
	if op >= DUP1 && op <= DUP16 {
		return fmt.Sprintf("DUP%d", op-DUP1+1)
	}
	if op >= SWAP1 && op <= SWAP16 {
		return fmt.Sprintf("SWAP%d", op-SWAP1+1)
	}
	return fmt.Sprintf("INVALID(0x%02x)", byte(op))
}

// gasCost returns the gas charged for executing op, before any dynamic
// costs. The table is a simplified version of Ethereum's: the absolute
// values matter only in that they make transaction costs proportional to
// work performed, which is what the workload's gas accounting needs.
func gasCost(op Opcode) uint64 {
	switch op {
	case STOP, JUMPDEST:
		return 1
	case ADD, SUB, LT, GT, EQ, ISZERO, AND, OR, XOR, NOT, POP, PC, GAS,
		CALLER, CALLVALUE, CALLDATASIZE, ADDRESS:
		return 3
	case MUL, DIV, MOD, CALLDATALOAD, MLOAD, MSTORE:
		return 5
	case JUMP:
		return 8
	case JUMPI:
		return 10
	case BALANCE:
		return 400
	case SLOAD:
		return 200
	case SSTORE:
		return 5000
	case CALL:
		return 700
	case CREATE:
		return 32000
	case RETURN, REVERT:
		return 0
	default:
		if op.IsPush() || (op >= DUP1 && op <= DUP16) || (op >= SWAP1 && op <= SWAP16) {
			return 3
		}
		return 0
	}
}
