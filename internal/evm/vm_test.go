package evm

import (
	"errors"
	"testing"

	"ethpart/internal/types"
)

// memState is an in-memory StateDB for tests.
type memState struct {
	balances map[types.Address]Word
	nonces   map[types.Address]uint64
	codes    map[types.Address][]byte
	storage  map[types.Address]map[Word]Word
}

var _ StateDB = (*memState)(nil)

func newMemState() *memState {
	return &memState{
		balances: make(map[types.Address]Word),
		nonces:   make(map[types.Address]uint64),
		codes:    make(map[types.Address][]byte),
		storage:  make(map[types.Address]map[Word]Word),
	}
}

func (s *memState) Exist(a types.Address) bool {
	_, ok := s.balances[a]
	return ok
}
func (s *memState) CreateAccount(a types.Address) {
	if !s.Exist(a) {
		s.balances[a] = Word{}
	}
}
func (s *memState) GetBalance(a types.Address) Word { return s.balances[a] }
func (s *memState) AddBalance(a types.Address, v Word) {
	s.balances[a] = s.balances[a].Add(v)
}
func (s *memState) SubBalance(a types.Address, v Word) {
	s.balances[a] = s.balances[a].Sub(v)
}
func (s *memState) GetNonce(a types.Address) uint64    { return s.nonces[a] }
func (s *memState) SetNonce(a types.Address, n uint64) { s.nonces[a] = n }
func (s *memState) GetCode(a types.Address) []byte     { return s.codes[a] }
func (s *memState) SetCode(a types.Address, c []byte)  { s.codes[a] = c }
func (s *memState) GetState(a types.Address, k Word) Word {
	return s.storage[a][k]
}
func (s *memState) SetState(a types.Address, k, v Word) {
	m := s.storage[a]
	if m == nil {
		m = make(map[Word]Word)
		s.storage[a] = m
	}
	m[k] = v
}
func (s *memState) StorageSize(a types.Address) int { return len(s.storage[a]) }

var (
	alice = types.AddressFromSeq(1)
	bob   = types.AddressFromSeq(2)
)

const testGas = 10_000_000

func TestPlainTransfer(t *testing.T) {
	st := newMemState()
	st.AddBalance(alice, WordFromUint64(100))
	vm := New(st)
	_, gasLeft, err := vm.Call(alice, bob, WordFromUint64(30), nil, testGas)
	if err != nil {
		t.Fatal(err)
	}
	if gasLeft != testGas {
		t.Errorf("plain transfer consumed gas: left %d", gasLeft)
	}
	if got := st.GetBalance(alice).Uint64(); got != 70 {
		t.Errorf("alice balance = %d, want 70", got)
	}
	if got := st.GetBalance(bob).Uint64(); got != 30 {
		t.Errorf("bob balance = %d, want 30", got)
	}
	traces := vm.Traces()
	if len(traces) != 1 || traces[0].Kind != KindTransaction {
		t.Fatalf("traces = %+v, want single tx entry", traces)
	}
}

func TestTransferInsufficientBalance(t *testing.T) {
	st := newMemState()
	st.AddBalance(alice, WordFromUint64(10))
	vm := New(st)
	_, _, err := vm.Call(alice, bob, WordFromUint64(30), nil, testGas)
	if !errors.Is(err, ErrInsufficientBalance) {
		t.Fatalf("err = %v, want ErrInsufficientBalance", err)
	}
	if got := st.GetBalance(alice).Uint64(); got != 10 {
		t.Errorf("failed transfer mutated balance: %d", got)
	}
}

func TestArithmeticProgram(t *testing.T) {
	// Store (7+5)*3 = 36 at storage slot 1.
	code := NewAssembler().
		Push(5).Push(7).Op(ADD). // 12
		Push(3).Op(MUL).         // MUL pops a(top)=3, b=12 -> 36
		Push(1).Op(SSTORE).      // SSTORE pops key(top)=1, val=36
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	vm := New(st)
	if _, _, err := vm.Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	got := st.GetState(bob, WordFromUint64(1))
	if got.Uint64() != 36 {
		t.Errorf("storage[1] = %v, want 36", got)
	}
}

func TestSubDivOperandOrder(t *testing.T) {
	// Yellow paper: SUB computes top - second. Push 3 then 10: top is 10.
	code := NewAssembler().
		Push(3).Push(10).Op(SUB). // 10 - 3 = 7
		Push(0).Op(SSTORE).
		Push(4).Push(20).Op(DIV). // 20 / 4 = 5
		Push(1).Op(SSTORE).
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	if _, _, err := New(st).Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	if got := st.GetState(bob, WordFromUint64(0)).Uint64(); got != 7 {
		t.Errorf("SUB result = %d, want 7", got)
	}
	if got := st.GetState(bob, WordFromUint64(1)).Uint64(); got != 5 {
		t.Errorf("DIV result = %d, want 5", got)
	}
}

func TestCalldataAndCaller(t *testing.T) {
	// Store calldata word 0 at slot 0 and caller at slot 1.
	code := NewAssembler().
		Push(0).Op(CALLDATALOAD).Push(0).Op(SSTORE).
		Op(CALLER).Push(1).Op(SSTORE).
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	arg := WordFromUint64(0xabcdef)
	input := arg.Bytes32()
	if _, _, err := New(st).Call(alice, bob, Word{}, input[:], testGas); err != nil {
		t.Fatal(err)
	}
	if got := st.GetState(bob, WordFromUint64(0)); got != arg {
		t.Errorf("slot0 = %v, want %v", got, arg)
	}
	if got := st.GetState(bob, WordFromUint64(1)); got != addressWord(alice) {
		t.Errorf("slot1 = %v, want caller", got)
	}
}

func TestJumpLoop(t *testing.T) {
	// Sum 1..5 with a loop: slot0 = 15.
	a := NewAssembler()
	a.Push(0) // sum
	a.Push(5) // i          stack: [sum, i]
	a.Label("loop")
	// if i == 0 goto end
	a.Op(DUP1).Op(ISZERO)
	a.JumpITo("end")
	// sum += i: stack [sum, i] -> [sum', i]
	a.Op(DUP1)                  // [sum, i, i]
	a.Op(SWAP1 + 1)             // SWAP2: [i, i, sum]
	a.Op(ADD)                   // [i, sum'] (ADD pops sum(top), i)
	a.Op(SWAP1)                 // [sum', i]
	a.Push(1).Op(SWAP1).Op(SUB) // [sum', i, 1] -> swap -> [sum', 1, i] -> SUB = i-1
	a.JumpTo("loop")
	a.Label("end")
	a.Op(POP)            // drop i
	a.Push(0).Op(SSTORE) // store sum at 0
	a.Op(STOP)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	st := newMemState()
	st.SetCode(bob, code)
	if _, _, err := New(st).Call(alice, bob, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	if got := st.GetState(bob, WordFromUint64(0)).Uint64(); got != 15 {
		t.Errorf("loop sum = %d, want 15", got)
	}
}

func TestInternalCallProducesTraceAndTransfersValue(t *testing.T) {
	// Contract at bob forwards 5 wei to the address given in calldata.
	code := NewAssembler().
		Push(0).Push(0).          // outSize, outOff
		Push(0).Push(0).          // inSize, inOff
		Push(5).                  // value
		Push(0).Op(CALLDATALOAD). // to (from calldata)
		Push(50000).              // gas
		Op(CALL).
		Op(POP).
		Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	st.AddBalance(bob, WordFromUint64(100))

	carol := types.AddressFromSeq(3)
	input := addressWord(carol).Bytes32()
	vm := New(st)
	if _, _, err := vm.Call(alice, bob, Word{}, input[:], testGas); err != nil {
		t.Fatal(err)
	}
	if got := st.GetBalance(carol).Uint64(); got != 5 {
		t.Errorf("carol balance = %d, want 5", got)
	}
	traces := vm.Traces()
	if len(traces) != 2 {
		t.Fatalf("got %d trace entries, want 2: %+v", len(traces), traces)
	}
	inner := traces[1]
	if inner.Kind != KindCall || inner.From != bob || inner.To != carol {
		t.Errorf("inner trace = %+v", inner)
	}
	if inner.Value.Uint64() != 5 {
		t.Errorf("inner value = %v, want 5", inner.Value)
	}
}

func TestCreateDeploysRuntimeCode(t *testing.T) {
	runtime := NewAssembler().
		Push(42).Push(0).Op(SSTORE).Op(STOP).
		MustBytes()
	init := DeployWrapper(runtime)

	st := newMemState()
	vm := New(st)
	addr, _, err := vm.Create(alice, init, Word{}, testGas)
	if err != nil {
		t.Fatal(err)
	}
	got := st.GetCode(addr)
	if len(got) != len(runtime) {
		t.Fatalf("deployed %d bytes, want %d", len(got), len(runtime))
	}
	for i := range got {
		if got[i] != runtime[i] {
			t.Fatalf("deployed code differs at byte %d", i)
		}
	}
	// The deployed contract must be callable.
	vm2 := New(st)
	if _, _, err := vm2.Call(alice, addr, Word{}, nil, testGas); err != nil {
		t.Fatal(err)
	}
	if st.GetState(addr, WordFromUint64(0)).Uint64() != 42 {
		t.Error("deployed contract did not execute")
	}
	// Creation trace present.
	if tr := vm.Traces(); len(tr) != 1 || tr[0].Kind != KindCreate || tr[0].To != addr {
		t.Errorf("create trace = %+v", tr)
	}
}

func TestOutOfGas(t *testing.T) {
	code := NewAssembler().
		Push(1).Push(0).Op(SSTORE).Op(STOP). // SSTORE costs 5000
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	_, _, err := New(st).Call(alice, bob, Word{}, nil, 100)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err = %v, want ErrOutOfGas", err)
	}
}

func TestStackUnderflow(t *testing.T) {
	code := []byte{byte(ADD)}
	st := newMemState()
	st.SetCode(bob, code)
	_, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
	if !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v, want ErrStackUnderflow", err)
	}
}

func TestInvalidJumpIntoPushImmediate(t *testing.T) {
	// PUSH2 0x005b ... JUMP to offset 1 (inside the immediate, looks like
	// JUMPDEST) must fail.
	code := []byte{
		byte(PUSH1) + 1, 0x00, 0x5b, // PUSH2 0x005b
		byte(PUSH1), 0x01, // PUSH1 1
		byte(JUMP),
	}
	st := newMemState()
	st.SetCode(bob, code)
	_, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
	if !errors.Is(err, ErrInvalidJump) {
		t.Fatalf("err = %v, want ErrInvalidJump", err)
	}
}

func TestInvalidOpcode(t *testing.T) {
	st := newMemState()
	st.SetCode(bob, []byte{0xfe})
	_, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
	if !errors.Is(err, ErrInvalidOpcode) {
		t.Fatalf("err = %v, want ErrInvalidOpcode", err)
	}
}

func TestRevert(t *testing.T) {
	code := NewAssembler().Push(0).Push(0).Op(REVERT).MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	_, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
	if !errors.Is(err, ErrRevert) {
		t.Fatalf("err = %v, want ErrRevert", err)
	}
}

func TestReturnData(t *testing.T) {
	// Return 32 bytes holding 99.
	code := NewAssembler().
		Push(99).Push(0).Op(MSTORE).
		Push(32).Push(0).Op(RETURN).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	out, _, err := New(st).Call(alice, bob, Word{}, nil, testGas)
	if err != nil {
		t.Fatal(err)
	}
	if got := WordFromBytes(out); got.Uint64() != 99 {
		t.Errorf("returned %v, want 99", got)
	}
}

func TestCalldataLoadPastEnd(t *testing.T) {
	code := NewAssembler().
		Push(100).Op(CALLDATALOAD).Push(0).Op(SSTORE).Op(STOP).
		MustBytes()
	st := newMemState()
	st.SetCode(bob, code)
	if _, _, err := New(st).Call(alice, bob, Word{}, []byte{1, 2}, testGas); err != nil {
		t.Fatal(err)
	}
	if !st.GetState(bob, WordFromUint64(0)).IsZero() {
		t.Error("calldata past end must read as zero")
	}
}

func TestOpcodeStrings(t *testing.T) {
	tests := []struct {
		op   Opcode
		want string
	}{
		{ADD, "ADD"},
		{PUSH1, "PUSH1"},
		{PUSH32, "PUSH32"},
		{DUP1, "DUP1"},
		{SWAP16, "SWAP16"},
		{Opcode(0xfe), "INVALID(0xfe)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Opcode(%#x).String() = %q, want %q", byte(tt.op), got, tt.want)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	if _, err := NewAssembler().JumpTo("missing").Bytes(); err == nil {
		t.Error("undefined label must error")
	}
	a := NewAssembler()
	a.Label("x")
	a.Label("x")
	if _, err := a.Bytes(); err == nil {
		t.Error("duplicate label must error")
	}
}

func TestCallKindString(t *testing.T) {
	for k, want := range map[CallKind]string{
		KindTransaction: "tx", KindCall: "call", KindCreate: "create", CallKind(0): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("CallKind(%d) = %q, want %q", k, got, want)
		}
	}
}
