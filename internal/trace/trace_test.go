package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/types"
)

func TestRegistryAssignsDenseIDs(t *testing.T) {
	r := NewRegistry()
	a := types.AddressFromSeq(1)
	b := types.AddressFromSeq(2)
	if got := r.ID(a); got != 0 {
		t.Errorf("first ID = %d, want 0", got)
	}
	if got := r.ID(b); got != 1 {
		t.Errorf("second ID = %d, want 1", got)
	}
	if got := r.ID(a); got != 0 {
		t.Errorf("repeat ID = %d, want 0", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if addr, ok := r.Address(0); !ok || addr != a {
		t.Errorf("Address(0) = %v, %v", addr, ok)
	}
	if _, ok := r.Address(99); ok {
		t.Error("Address of unknown id must fail")
	}
	if _, ok := r.Lookup(types.AddressFromSeq(3)); ok {
		t.Error("Lookup must not assign")
	}
}

func TestRegistryContractFlag(t *testing.T) {
	r := NewRegistry()
	id := r.ID(types.AddressFromSeq(1))
	if r.IsContract(id) {
		t.Error("fresh vertex must not be a contract")
	}
	r.MarkContract(id)
	if !r.IsContract(id) {
		t.Error("MarkContract must stick")
	}
	r.MarkContract(12345) // out of range: no panic
}

func TestRecordApplyAndKinds(t *testing.T) {
	rec := Record{From: 1, To: 2, FromContract: false, ToContract: true}
	if rec.FromKind() != graph.KindAccount || rec.ToKind() != graph.KindContract {
		t.Error("kind mapping wrong")
	}
	g := graph.New()
	if err := rec.Apply(g); err != nil {
		t.Fatal(err)
	}
	if g.EdgeWeight(1, 2) != 1 {
		t.Error("Apply must add a weight-1 edge")
	}
	if g.VertexKind(2) != graph.KindContract {
		t.Error("Apply must carry the contract kind")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	records := []Record{
		{Block: 1, Time: 1000, Kind: evm.KindTransaction, From: 0, To: 1, Value: 42},
		{Block: 1, Time: 1000, Kind: evm.KindCall, From: 1, To: 2, ToContract: true},
		{Block: 2, Time: 2000, Kind: evm.KindCreate, From: 0, To: 3, FromContract: true, ToContract: true, Value: ^uint64(0)},
	}
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	for _, rec := range records {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "block,time,kind,") {
		t.Errorf("missing header: %q", buf.String()[:40])
	}

	r := NewCSVReader(&buf)
	var got []Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(records))
	}
	for i := range records {
		if got[i] != records[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], records[i])
		}
	}
}

func TestCSVReaderEmpty(t *testing.T) {
	r := NewCSVReader(strings.NewReader(""))
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: err = %v, want EOF", err)
	}
}

func TestCSVReaderHeaderlessInput(t *testing.T) {
	// A headerless file starts with a data row; discarding it blindly
	// would silently drop the first record. The reader must refuse with an
	// error naming the expected header instead.
	in := "1,1000,tx,0,account,1,account,42\n1,1000,call,1,account,2,contract,0\n"
	r := NewCSVReader(strings.NewReader(in))
	_, err := r.Read()
	if err == nil {
		t.Fatal("headerless input must error, not lose its first record")
	}
	if !strings.Contains(err.Error(), "header") || !strings.Contains(err.Error(), "block,time,kind") {
		t.Errorf("error must name the expected header: %v", err)
	}
	// The failure is sticky: a caller that keeps reading must not have
	// later data rows validated as the header and then reach a clean EOF
	// that masks the malformed input.
	for i := 0; i < 3; i++ {
		if _, again := r.Read(); again == nil || again.Error() != err.Error() {
			t.Fatalf("read %d after header failure: err = %v, want the original header error", i, again)
		}
	}
}

func TestCSVReaderWrongHeader(t *testing.T) {
	in := "blk,ts,type,src,src_kind,dst,dst_kind,amount\n1,1000,tx,0,account,1,account,42\n"
	r := NewCSVReader(strings.NewReader(in))
	if _, err := r.Read(); err == nil || !strings.Contains(err.Error(), "bad CSV header") {
		t.Errorf("wrong header must be rejected descriptively, got %v", err)
	}
}

func TestCSVReaderHeaderOnly(t *testing.T) {
	in := "block,time,kind,from,from_kind,to,to_kind,value\n"
	r := NewCSVReader(strings.NewReader(in))
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("header-only stream: err = %v, want EOF", err)
	}
}

func TestCSVReaderBadKind(t *testing.T) {
	in := "block,time,kind,from,from_kind,to,to_kind,value\n1,2,bogus,0,account,1,account,0\n"
	r := NewCSVReader(strings.NewReader(in))
	if _, err := r.Read(); err == nil {
		t.Error("bad kind must error")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	records := []Record{
		{Block: 1, Time: 1000, Kind: evm.KindTransaction, From: 0, To: 1, Value: 42},
		{Block: 9, Time: 5000, Kind: evm.KindCall, From: 7, To: 8, ToContract: true},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("lost records: %d vs %d", len(got), len(records))
	}
	for i := range records {
		if got[i] != records[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(block uint64, tm int64, kindRaw uint8, from, to uint64, fc, tc bool, value uint64) bool {
		kind := evm.CallKind(kindRaw%3) + 1
		rec := Record{Block: block, Time: tm, Kind: kind, From: from, To: to,
			FromContract: fc, ToContract: tc, Value: value}
		var buf bytes.Buffer
		w := NewCSVWriter(&buf)
		if err := w.Write(rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewCSVReader(&buf)
		got, err := r.Read()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
