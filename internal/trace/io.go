package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"ethpart/internal/evm"
)

// csvHeader is the first row of the CSV dataset format.
var csvHeader = []string{"block", "time", "kind", "from", "from_kind", "to", "to_kind", "value"}

// kindLabel maps call kinds to the dataset's string labels.
func kindLabel(k evm.CallKind) string {
	switch k {
	case evm.KindTransaction:
		return "tx"
	case evm.KindCall:
		return "call"
	case evm.KindCreate:
		return "create"
	default:
		return "unknown"
	}
}

// parseKind is the inverse of kindLabel.
func parseKind(s string) (evm.CallKind, error) {
	switch s {
	case "tx":
		return evm.KindTransaction, nil
	case "call":
		return evm.KindCall, nil
	case "create":
		return evm.KindCreate, nil
	default:
		return 0, fmt.Errorf("trace: unknown interaction kind %q", s)
	}
}

func vertexLabel(contract bool) string {
	if contract {
		return "contract"
	}
	return "account"
}

// CSVWriter streams records in the dataset's CSV format.
type CSVWriter struct {
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVWriter returns a writer emitting the dataset header on first write.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

// Write appends one record.
func (cw *CSVWriter) Write(r Record) error {
	if !cw.wroteHeader {
		if err := cw.w.Write(csvHeader); err != nil {
			return fmt.Errorf("trace: writing CSV header: %w", err)
		}
		cw.wroteHeader = true
	}
	row := []string{
		strconv.FormatUint(r.Block, 10),
		strconv.FormatInt(r.Time, 10),
		kindLabel(r.Kind),
		strconv.FormatUint(r.From, 10),
		vertexLabel(r.FromContract),
		strconv.FormatUint(r.To, 10),
		vertexLabel(r.ToContract),
		strconv.FormatUint(r.Value, 10),
	}
	if err := cw.w.Write(row); err != nil {
		return fmt.Errorf("trace: writing CSV row: %w", err)
	}
	return nil
}

// Flush flushes buffered rows and reports any accumulated error.
func (cw *CSVWriter) Flush() error {
	cw.w.Flush()
	return cw.w.Error()
}

// CSVReader streams records from the dataset's CSV format.
type CSVReader struct {
	r          *csv.Reader
	readHeader bool
	// headerErr latches a header-validation failure: the bad row is
	// already consumed, so without it a caller that keeps reading would
	// have successive data rows validated as the header and end in a
	// clean io.EOF that masks the malformed input.
	headerErr error
	// skipped counts malformed records surfaced as RecordErrors.
	skipped int64
}

// RecordError reports one malformed record. It is recoverable: the reader
// has already advanced past the bad row, so the caller may count or log it
// and keep reading — a single corrupt line mid-stream no longer costs the
// tail of the dataset. Non-record failures (bad header, I/O errors) stay
// fatal and are not RecordErrors.
type RecordError struct {
	Line int // 1-based line in the input, 0 if unknown
	Err  error
}

func (e *RecordError) Error() string {
	return fmt.Sprintf("trace: bad CSV record at line %d: %v", e.Line, e.Err)
}

func (e *RecordError) Unwrap() error { return e.Err }

// Skipped reports how many malformed records this reader has surfaced
// (and skipped) so far.
func (cr *CSVReader) Skipped() int64 { return cr.skipped }

// NewCSVReader returns a reader over the dataset CSV format.
func NewCSVReader(r io.Reader) *CSVReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	return &CSVReader{r: cr}
}

// Read returns the next record, or io.EOF at the end of the stream.
//
// The first row must be the dataset header: blindly discarding it would
// silently lose the first record of a headerless file and misread any
// malformed input, so a mismatching first row is a descriptive error
// instead.
func (cr *CSVReader) Read() (Record, error) {
	if cr.headerErr != nil {
		return Record{}, cr.headerErr
	}
	if !cr.readHeader {
		row, err := cr.r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("trace: reading CSV header: %w", err)
		}
		if !slices.Equal(row, csvHeader) {
			cr.headerErr = fmt.Errorf("trace: bad CSV header %q, want %q (input is headerless or not a trace CSV)",
				strings.Join(row, ","), strings.Join(csvHeader, ","))
			return Record{}, cr.headerErr
		}
		cr.readHeader = true
	}
	row, err := cr.r.Read()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		// A CSV-level parse failure (wrong field count, bad quoting) is
		// confined to the record the reader already consumed: surface it as
		// a recoverable RecordError instead of killing the stream.
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			cr.skipped++
			return Record{}, &RecordError{Line: pe.Line, Err: err}
		}
		return Record{}, fmt.Errorf("trace: reading CSV row: %w", err)
	}
	rec, err := parseRow(row)
	if err != nil {
		cr.skipped++
		line, _ := cr.r.FieldPos(0)
		return Record{}, &RecordError{Line: line, Err: err}
	}
	return rec, nil
}

func parseRow(row []string) (Record, error) {
	var rec Record
	var err error
	if rec.Block, err = strconv.ParseUint(row[0], 10, 64); err != nil {
		return rec, fmt.Errorf("trace: bad block %q: %w", row[0], err)
	}
	if rec.Time, err = strconv.ParseInt(row[1], 10, 64); err != nil {
		return rec, fmt.Errorf("trace: bad time %q: %w", row[1], err)
	}
	if rec.Kind, err = parseKind(row[2]); err != nil {
		return rec, err
	}
	if rec.From, err = strconv.ParseUint(row[3], 10, 64); err != nil {
		return rec, fmt.Errorf("trace: bad from %q: %w", row[3], err)
	}
	rec.FromContract = row[4] == "contract"
	if rec.To, err = strconv.ParseUint(row[5], 10, 64); err != nil {
		return rec, fmt.Errorf("trace: bad to %q: %w", row[5], err)
	}
	rec.ToContract = row[6] == "contract"
	if rec.Value, err = strconv.ParseUint(row[7], 10, 64); err != nil {
		return rec, fmt.Errorf("trace: bad value %q: %w", row[7], err)
	}
	return rec, nil
}

// WriteJSONL streams records as JSON Lines.
func WriteJSONL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("trace: encoding JSONL: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSON Lines stream of records.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decoding JSONL: %w", err)
		}
		out = append(out, rec)
	}
}
