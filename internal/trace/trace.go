// Package trace defines the interaction-record format of the study's
// dataset — the paper publishes its extracted Ethereum trace "in easily
// understandable format" and this package is that format for the synthetic
// reproduction: one record per interaction (outer transaction, internal
// call or contract creation) with integer vertex IDs, plus streaming CSV
// and JSONL encoders and decoders.
package trace

import (
	"errors"
	"io"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/types"
)

// Record is one interaction: a directed edge candidate for the blockchain
// graph, as in the paper's §II-B.
type Record struct {
	// Block is the block number the interaction executed in.
	Block uint64 `json:"block"`
	// Time is the block's Unix timestamp.
	Time int64 `json:"time"`
	// Kind is the interaction kind: tx, call or create.
	Kind evm.CallKind `json:"kind"`
	// From and To are registry vertex IDs.
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
	// FromContract and ToContract carry endpoint kinds so a trace is
	// self-contained.
	FromContract bool `json:"from_contract"`
	ToContract   bool `json:"to_contract"`
	// Value is the transferred wei, clamped to uint64.
	Value uint64 `json:"value"`
}

// FromKind returns the graph kind of the source endpoint.
func (r *Record) FromKind() graph.Kind {
	if r.FromContract {
		return graph.KindContract
	}
	return graph.KindAccount
}

// ToKind returns the graph kind of the destination endpoint.
func (r *Record) ToKind() graph.Kind {
	if r.ToContract {
		return graph.KindContract
	}
	return graph.KindAccount
}

// Apply adds the record's interaction to g with weight 1.
func (r *Record) Apply(g *graph.Graph) error {
	return g.AddInteraction(graph.VertexID(r.From), graph.VertexID(r.To),
		r.FromKind(), r.ToKind(), 1)
}

// RecordSource is the streaming seam between record producers — the
// workload pipeline, trace files, converted real datasets — and every
// consumer (replay, the operational bridge, figure generation). Read
// returns records in arrival order and io.EOF at the end of the stream;
// like CSVReader, a source may surface per-record *RecordError values the
// caller can log and skip without losing the tail of the stream.
type RecordSource interface {
	Read() (Record, error)
}

// SliceSource adapts a materialised record slice to the RecordSource seam.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource returns a source streaming recs in order.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Read implements RecordSource.
func (s *SliceSource) Read() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// ReadAll drains src into a slice, skipping (and counting) per-record
// errors. Non-record failures abort.
func ReadAll(src RecordSource) ([]Record, int64, error) {
	var (
		out     []Record
		skipped int64
	)
	for {
		rec, err := src.Read()
		if errors.Is(err, io.EOF) {
			return out, skipped, nil
		}
		var re *RecordError
		if errors.As(err, &re) {
			skipped++
			continue
		}
		if err != nil {
			return nil, skipped, err
		}
		out = append(out, rec)
	}
}

// Registry assigns dense integer vertex IDs to addresses, exactly like the
// anonymised IDs of the published dataset (Fig. 2's "32643", "9703", …),
// and remembers which vertices are contracts.
type Registry struct {
	ids      map[types.Address]uint64
	addrs    []types.Address
	contract []bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[types.Address]uint64)}
}

// ID returns the vertex ID of addr, assigning the next free ID on first
// sight.
func (r *Registry) ID(addr types.Address) uint64 {
	if id, ok := r.ids[addr]; ok {
		return id
	}
	id := uint64(len(r.addrs))
	r.ids[addr] = id
	r.addrs = append(r.addrs, addr)
	r.contract = append(r.contract, false)
	return id
}

// Lookup returns the vertex ID of addr without assigning one.
func (r *Registry) Lookup(addr types.Address) (uint64, bool) {
	id, ok := r.ids[addr]
	return id, ok
}

// Address returns the address of vertex id.
func (r *Registry) Address(id uint64) (types.Address, bool) {
	if id >= uint64(len(r.addrs)) {
		return types.Address{}, false
	}
	return r.addrs[id], true
}

// MarkContract flags id as a contract vertex.
func (r *Registry) MarkContract(id uint64) {
	if id < uint64(len(r.contract)) {
		r.contract[id] = true
	}
}

// IsContract reports whether id is a contract vertex.
func (r *Registry) IsContract(id uint64) bool {
	return id < uint64(len(r.contract)) && r.contract[id]
}

// Len returns the number of registered vertices.
func (r *Registry) Len() int { return len(r.addrs) }

// FromReceipts converts a block's receipts into trace records, assigning
// vertex IDs through reg. Creations mark the target as a contract; calls
// mark it when isContract reports code at the address (internal calls to
// plain accounts are account edges, as in Fig. 2).
func FromReceipts(blockNum uint64, blockTime int64, receipts []*chain.Receipt,
	reg *Registry, isContract func(types.Address) bool) []Record {
	return FromReceiptsTimes(blockNum, blockTime, nil, receipts, reg, isContract)
}

// FromReceiptsTimes is FromReceipts for open-loop histories: times carries
// one arrival timestamp per receipt (the instant the transaction's logical
// action arrived, which the block merely batches), and every trace record
// of receipt i is stamped with times[i] instead of the block time. A nil
// times falls back to blockTime for every record — the closed-loop era
// semantics, where actions arrive exactly at the block they execute in.
func FromReceiptsTimes(blockNum uint64, blockTime int64, times []int64,
	receipts []*chain.Receipt, reg *Registry, isContract func(types.Address) bool) []Record {

	var records []Record
	for ri, receipt := range receipts {
		recTime := blockTime
		if times != nil {
			recTime = times[ri]
		}
		for _, tr := range receipt.Traces {
			fromID := reg.ID(tr.From)
			toID := reg.ID(tr.To)
			switch tr.Kind {
			case evm.KindCreate:
				reg.MarkContract(toID)
			case evm.KindTransaction, evm.KindCall:
				if isContract != nil && isContract(tr.To) {
					reg.MarkContract(toID)
				}
			}
			var value uint64
			if tr.Value.IsUint64() {
				value = tr.Value.Uint64()
			} else {
				value = ^uint64(0)
			}
			records = append(records, Record{
				Block: blockNum, Time: recTime, Kind: tr.Kind,
				From: fromID, To: toID,
				FromContract: reg.IsContract(fromID),
				ToContract:   reg.IsContract(toID),
				Value:        value,
			})
		}
	}
	return records
}
