package trace

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// TestCSVReaderSkipsMalformedRecords is the corrupted-fixture regression
// test: malformed records mid-stream surface as per-record RecordErrors
// with the offending line number, the reader keeps going, and the tail
// of the dataset is preserved — a single corrupt line no longer costs
// everything after it.
func TestCSVReaderSkipsMalformedRecords(t *testing.T) {
	// Lines are 1-based and include the header (line 1).
	fixture := strings.Join([]string{
		"block,time,kind,from,from_kind,to,to_kind,value",
		"1,1000,tx,10,account,20,account,5",       // line 2: good
		"2,1001,teleport,10,account,20,account,5", // line 3: unknown kind
		"3,1002,tx,10,account,20,account",         // line 4: wrong field count
		"4,x,tx,10,account,20,account,5",          // line 5: bad time
		"5,1004,call,11,contract,21,account,7",    // line 6: good (the tail)
	}, "\n") + "\n"

	cr := NewCSVReader(strings.NewReader(fixture))
	var records []Record
	var recErrs []*RecordError
	for {
		rec, err := cr.Read()
		if err == nil {
			records = append(records, rec)
			continue
		}
		if errors.Is(err, io.EOF) {
			break
		}
		var re *RecordError
		if !errors.As(err, &re) {
			t.Fatalf("non-recoverable error mid-stream: %v", err)
		}
		recErrs = append(recErrs, re)
	}

	if len(records) != 2 {
		t.Fatalf("got %d records, want 2 (head and tail preserved)", len(records))
	}
	if records[0].Block != 1 || records[1].Block != 5 {
		t.Errorf("records = blocks %d, %d; want 1, 5", records[0].Block, records[1].Block)
	}
	if len(recErrs) != 3 {
		t.Fatalf("got %d record errors, want 3", len(recErrs))
	}
	for i, wantLine := range []int{3, 4, 5} {
		if recErrs[i].Line != wantLine {
			t.Errorf("record error %d at line %d, want %d (%v)", i, recErrs[i].Line, wantLine, recErrs[i])
		}
		if !strings.Contains(recErrs[i].Error(), "bad CSV record at line") {
			t.Errorf("record error %d message %q lacks context", i, recErrs[i].Error())
		}
	}
	if cr.Skipped() != 3 {
		t.Errorf("Skipped() = %d, want 3", cr.Skipped())
	}
}

// TestCSVReaderHeaderErrorsStayFatal pins the boundary of the recovery:
// a bad header is not a RecordError — it stays fatal and latched, so a
// caller that keeps reading cannot misparse data rows as records of a
// file that was never a trace CSV.
func TestCSVReaderHeaderErrorsStayFatal(t *testing.T) {
	cr := NewCSVReader(strings.NewReader("1,1000,tx,10,account,20,account,5\n"))
	_, err := cr.Read()
	if err == nil {
		t.Fatal("headerless input accepted")
	}
	var re *RecordError
	if errors.As(err, &re) {
		t.Fatalf("header failure surfaced as recoverable RecordError: %v", err)
	}
	_, err2 := cr.Read()
	if err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("header error not latched: first %v, then %v", err, err2)
	}
	if cr.Skipped() != 0 {
		t.Errorf("Skipped() = %d after header failure, want 0", cr.Skipped())
	}
}
