package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Generated scenario traces are large; the file helpers below make gzip
// transparent at the I/O boundary so every tool reads and writes .csv.gz
// exactly like .csv. Readers sniff the gzip magic instead of trusting the
// file name, so renamed or piped compressed streams still decode.

// gzipMagic is the two-byte gzip stream header (RFC 1952).
var gzipMagic = []byte{0x1f, 0x8b}

// MaybeCompressed wraps r so that gzip-compressed input is transparently
// decompressed: the first two bytes are sniffed for the gzip magic and
// plain streams pass through untouched (buffered).
func MaybeCompressed(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(2)
	if err != nil {
		// Too short to be gzip (or empty): hand the buffered stream back
		// and let the caller's decoder produce its own error.
		return br, nil
	}
	if head[0] != gzipMagic[0] || head[1] != gzipMagic[1] {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
	}
	return zr, nil
}

// readCloser pairs a decoding reader with the closers beneath it.
type readCloser struct {
	io.Reader
	closers []io.Closer
}

func (rc *readCloser) Close() error {
	var first error
	for _, c := range rc.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OpenFile opens a trace file for reading, transparently decompressing
// gzip content (sniffed by magic bytes, so both trace.csv.gz and renamed
// compressed files work). "-" reads from stdin.
func OpenFile(path string) (io.ReadCloser, error) {
	if path == "-" {
		r, err := MaybeCompressed(os.Stdin)
		if err != nil {
			return nil, err
		}
		return &readCloser{Reader: r}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := MaybeCompressed(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	rc := &readCloser{Reader: r}
	if zr, ok := r.(*gzip.Reader); ok {
		rc.closers = append(rc.closers, zr)
	}
	rc.closers = append(rc.closers, f)
	return rc, nil
}

// writeCloser closes the full encoder stack in order: each closer must
// flush before the layer beneath it closes.
type writeCloser struct {
	io.Writer
	closers []io.Closer
}

func (wc *writeCloser) Close() error {
	var first error
	for _, c := range wc.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flusher adapts a Flush method to io.Closer for the ordered close stack.
type flusher struct{ f func() error }

func (fl flusher) Close() error { return fl.f() }

// CreateFile creates a trace file for writing, gzip-compressing when the
// name ends in ".gz". "-" writes to stdout (never compressed — pipe
// through gzip explicitly for compressed stdout). Close flushes the whole
// stack.
func CreateFile(path string) (io.WriteCloser, error) {
	if path == "-" {
		bw := bufio.NewWriterSize(os.Stdout, 1<<20)
		return &writeCloser{Writer: bw, closers: []io.Closer{flusher{bw.Flush}}}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if !strings.HasSuffix(path, ".gz") {
		return &writeCloser{Writer: bw, closers: []io.Closer{flusher{bw.Flush}, f}}, nil
	}
	zw := gzip.NewWriter(bw)
	return &writeCloser{Writer: zw, closers: []io.Closer{zw, flusher{bw.Flush}, f}}, nil
}
