package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ethpart/internal/evm"
)

// fileTestRecords is a small stream covering every field shape.
func fileTestRecords() []Record {
	return []Record{
		{Block: 1, Time: 1483228800, Kind: evm.KindTransaction, From: 0, To: 1, Value: 42},
		{Block: 1, Time: 1483228807, Kind: evm.KindCall, From: 1, To: 2, ToContract: true, Value: 0},
		{Block: 2, Time: 1483232400, Kind: evm.KindCreate, From: 2, To: 3, FromContract: true, ToContract: true, Value: 7},
		{Block: 3, Time: 1483236000, Kind: evm.KindTransaction, From: 3, To: 0, Value: 1 << 40},
	}
}

func writeRecords(t *testing.T, path string) []Record {
	t.Helper()
	recs := fileTestRecords()
	w, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cw := NewCSVWriter(w)
	for _, rec := range recs {
		if err := cw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func readRecords(t *testing.T, path string) []Record {
	t.Helper()
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := NewCSVReader(f)
	var got []Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	return got
}

// TestFileRoundTrip: CreateFile→OpenFile is lossless for both plain and
// gzip-compressed names, and the .gz file really is gzip on disk.
func TestFileRoundTrip(t *testing.T) {
	for _, name := range []string{"trace.csv", "trace.csv.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			want := writeRecords(t, path)
			got := readRecords(t, path)
			if len(got) != len(want) {
				t.Fatalf("round trip lost records: wrote %d, read %d", len(want), len(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("record %d: %+v round-tripped to %+v", i, want[i], got[i])
				}
			}
		})
	}
}

// TestCreateFileCompresses: a .gz name produces a real gzip stream whose
// payload is byte-identical to the uncompressed encoding.
func TestCreateFileCompresses(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.csv")
	packed := filepath.Join(dir, "t.csv.gz")
	writeRecords(t, plain)
	writeRecords(t, packed)

	rawPlain, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	rawPacked, err := os.ReadFile(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rawPacked) < 2 || rawPacked[0] != 0x1f || rawPacked[1] != 0x8b {
		t.Fatalf("%s does not start with the gzip magic", packed)
	}
	zr, err := gzip.NewReader(bytes.NewReader(rawPacked))
	if err != nil {
		t.Fatal(err)
	}
	unpacked, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unpacked, rawPlain) {
		t.Error("gzip payload differs from the plain encoding")
	}
}

// TestMaybeCompressedSniffs: decompression is decided by content, not
// name — a renamed gzip stream decodes, a plain stream passes through,
// and an empty stream is handed back without error.
func TestMaybeCompressedSniffs(t *testing.T) {
	var packed bytes.Buffer
	zw := gzip.NewWriter(&packed)
	if _, err := zw.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := MaybeCompressed(bytes.NewReader(packed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("sniffed gzip read %q, want hello", got)
	}

	r, err = MaybeCompressed(bytes.NewReader([]byte("plain text")))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := io.ReadAll(r); string(got) != "plain text" {
		t.Errorf("plain stream read %q", got)
	}

	r, err = MaybeCompressed(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := io.ReadAll(r); len(got) != 0 {
		t.Errorf("empty stream read %d bytes", len(got))
	}
}
