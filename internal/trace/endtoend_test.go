package trace_test

import (
	"testing"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/trace"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

// External test package: workload imports trace (the Stream seam), so
// tests that drive the generator live outside package trace.

func TestFromReceiptsEndToEnd(t *testing.T) {
	// Generate a couple of blocks and verify the records line up with the
	// receipts' traces, with contracts flagged.
	gen, err := workload.New(workload.Config{
		Seed: 11, Scale: 0.05,
		Eras: []workload.Era{{
			Name:          "mini",
			Start:         time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
			End:           time.Date(2016, 1, 3, 0, 0, 0, 0, time.UTC),
			TxPerDayStart: 5_000, TxPerDayEnd: 5_000, Kind: workload.GrowthLinear,
			NewAccountFrac: 0.2, DeploysPerDay: 5,
			Mix: workload.TxMix{Transfer: 0.5, Token: 0.2, Wallet: 0.1, Crowdsale: 0.1, Game: 0.05, Airdrop: 0.05},
		}},
		BlockInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := trace.NewRegistry()
	st := gen.Chain().State()
	isContract := func(a types.Address) bool { return len(st.GetCode(a)) > 0 }

	var all []trace.Record
	var traceCount int
	for {
		block, receipts, ok, err := gen.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if block == nil {
			continue
		}
		for _, r := range receipts {
			traceCount += len(r.Traces)
		}
		recs := trace.FromReceipts(block.Header.Number, block.Header.Time, receipts, reg, isContract)
		all = append(all, recs...)
	}
	if len(all) == 0 {
		t.Fatal("no records produced")
	}
	if len(all) != traceCount {
		t.Errorf("records = %d, traces = %d", len(all), traceCount)
	}
	// Token contract interactions must be flagged as contract targets.
	sawContractTarget := false
	sawInternalCall := false
	for _, rec := range all {
		if rec.ToContract && rec.Kind == evm.KindTransaction {
			sawContractTarget = true
		}
		if rec.Kind == evm.KindCall {
			sawInternalCall = true
		}
	}
	if !sawContractTarget {
		t.Error("no transaction targeted a contract")
	}
	if !sawInternalCall {
		t.Error("no internal calls recorded")
	}
	// IDs must be dense.
	for _, rec := range all {
		if rec.From >= uint64(reg.Len()) || rec.To >= uint64(reg.Len()) {
			t.Fatalf("record references unknown vertex: %+v", rec)
		}
	}
}
