// Package report renders experiment output: aligned ASCII tables, CSV
// emission, unicode sparklines for time series (Figs. 1 and 3) and ASCII
// box plots (Fig. 4). Every figure command in cmd/experiments prints both a
// human-readable rendering and machine-readable CSV.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"ethpart/internal/stats"
)

// Table writes an aligned ASCII table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		return sb.String()
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return fmt.Errorf("report: writing table: %w", err)
	}
	var total int
	for _, width := range widths {
		total += width + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return fmt.Errorf("report: writing table: %w", err)
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return fmt.Errorf("report: writing table: %w", err)
		}
	}
	return nil
}

// CSV writes headers and rows as CSV.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("report: writing CSV: %w", err)
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flushing CSV: %w", err)
	}
	return nil
}

// sparkGlyphs are the eight block heights of a sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip, mapping the value
// range onto eight block heights. NaN values render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var sb strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			sb.WriteRune(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkGlyphs)-1))
		}
		sb.WriteRune(sparkGlyphs[idx])
	}
	return sb.String()
}

// SparklineLog renders a sparkline of log10(values); zeros and negatives
// clamp to the smallest positive value. Used for Fig. 1's log-scale counts.
func SparklineLog(values []float64) string {
	minPos := math.Inf(1)
	for _, v := range values {
		if v > 0 {
			minPos = math.Min(minPos, v)
		}
	}
	if math.IsInf(minPos, 1) {
		return Sparkline(values)
	}
	logs := make([]float64, len(values))
	for i, v := range values {
		if v < minPos {
			v = minPos
		}
		logs[i] = math.Log10(v)
	}
	return Sparkline(logs)
}

// BoxPlot renders a five-number summary as a one-line ASCII box plot spanning
// [lo, hi] over `width` characters:
//
//	|----[==M==]------|
func BoxPlot(s stats.Summary, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	pos := func(v float64) int {
		p := int((v - lo) / span * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := []byte(strings.Repeat(" ", width))
	for i := pos(s.Min); i <= pos(s.Max); i++ {
		row[i] = '-'
	}
	for i := pos(s.Q1); i <= pos(s.Q3); i++ {
		row[i] = '='
	}
	row[pos(s.Min)] = '|'
	row[pos(s.Max)] = '|'
	if q1 := pos(s.Q1); row[q1] == '=' {
		row[q1] = '['
	}
	if q3 := pos(s.Q3); row[q3] == '=' || row[q3] == '[' {
		row[q3] = ']'
	}
	row[pos(s.Median)] = 'M'
	return string(row)
}

// FormatFloat renders a float with sensible precision for tables.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatCount renders large counts with thousands separators.
func FormatCount(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var sb strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		sb.WriteString(s[:lead])
		if len(s) > lead {
			sb.WriteByte(',')
		}
	}
	for i := lead; i < len(s); i += 3 {
		sb.WriteString(s[i : i+3])
		if i+3 < len(s) {
			sb.WriteByte(',')
		}
	}
	return sb.String()
}
