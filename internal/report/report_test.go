package report

import (
	"math"
	"strings"
	"testing"

	"ethpart/internal/stats"
)

func TestTableAlignsColumns(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "22") {
		t.Errorf("rows = %q", lines[2:])
	}
}

func TestCSVOutput(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "x,y"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,\"x,y\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	runes := []rune(s)
	if len(runes) != 4 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline must be empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
	withNaN := Sparkline([]float64{1, math.NaN(), 2})
	if []rune(withNaN)[1] != ' ' {
		t.Errorf("NaN must render as space: %q", withNaN)
	}
}

func TestSparklineLog(t *testing.T) {
	// Exponential data looks linear in log space: the log sparkline of
	// powers of 10 should use evenly increasing glyph heights.
	s := SparklineLog([]float64{1, 10, 100, 1000})
	runes := []rune(s)
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Errorf("log sparkline = %q", s)
	}
	// All-zero input must not panic.
	if got := SparklineLog([]float64{0, 0}); len([]rune(got)) != 2 {
		t.Errorf("zeros = %q", got)
	}
}

func TestBoxPlot(t *testing.T) {
	s := stats.Summarize([]float64{1, 2, 3, 4, 5})
	plot := BoxPlot(s, 0, 6, 40)
	if len(plot) != 40 {
		t.Fatalf("width = %d", len(plot))
	}
	if !strings.Contains(plot, "M") {
		t.Errorf("no median mark: %q", plot)
	}
	if !strings.Contains(plot, "|") || !strings.Contains(plot, "=") {
		t.Errorf("missing whiskers or box: %q", plot)
	}
	// Median must sit mid-plot for a symmetric sample on a centred range.
	idx := strings.Index(plot, "M")
	if idx < 15 || idx > 25 {
		t.Errorf("median at %d in width-40 plot: %q", idx, plot)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.5, "0.500"},
		{1234.5, "1.23e+03"},
		{0.0001, "0.0001"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.v); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{1234567, "1,234,567"},
		{12345, "12,345"},
	}
	for _, tt := range tests {
		if got := FormatCount(tt.n); got != tt.want {
			t.Errorf("FormatCount(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}
