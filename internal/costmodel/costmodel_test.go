package costmodel

import (
	"testing"
	"time"

	"ethpart/internal/sim"
)

// fakeResult builds a Result with the given aggregates.
func fakeResult(k int, interactions int64, cut, balance float64, moves, slots int64) *sim.Result {
	return &sim.Result{
		K: k,
		Windows: []sim.WindowStat{
			{Start: time.Unix(0, 0), Interactions: interactions},
		},
		OverallDynamicCut:     cut,
		OverallDynamicBalance: balance,
		TotalMoves:            moves,
		TotalMovedSlots:       slots,
	}
}

func TestModelString(t *testing.T) {
	if Coordinated.String() != "coordinated" || StateMovement.String() != "state-movement" {
		t.Error("model names wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Error("unknown model rendering wrong")
	}
}

func TestCostZeroCutHasNoCoordination(t *testing.T) {
	res := fakeResult(2, 1000, 0, 1.0, 0, 0)
	b := Cost(res, Coordinated, DefaultParams())
	if b.Coordination != 0 {
		t.Errorf("coordination = %v for zero cut", b.Coordination)
	}
	if b.Execution != 1000 {
		t.Errorf("execution = %v, want 1000", b.Execution)
	}
	if b.Relocation != 0 || b.Imbalance != 0 {
		t.Errorf("unexpected costs: %+v", b)
	}
	if b.Total() != 1000 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestCostCoordinatedScalesWithCut(t *testing.T) {
	p := DefaultParams()
	low := Cost(fakeResult(2, 1000, 0.1, 1, 0, 0), Coordinated, p)
	high := Cost(fakeResult(2, 1000, 0.5, 1, 0, 0), Coordinated, p)
	if high.Coordination != 5*low.Coordination {
		t.Errorf("coordination %v vs %v, want 5x", high.Coordination, low.Coordination)
	}
	// 1000 * 0.5 cross-shard txs * 2 rounds * 10 = 10000.
	if high.Coordination != 10_000 {
		t.Errorf("coordination = %v, want 10000", high.Coordination)
	}
}

func TestCostRelocation(t *testing.T) {
	p := DefaultParams()
	b := Cost(fakeResult(2, 100, 0, 1, 10, 50), Coordinated, p)
	want := 10*p.VertexMoveCost + 50*p.SlotMoveCost
	if b.Relocation != want {
		t.Errorf("relocation = %v, want %v", b.Relocation, want)
	}
}

func TestCostImbalanceStrandsCapacity(t *testing.T) {
	p := DefaultParams()
	balanced := Cost(fakeResult(2, 1000, 0, 1.0, 0, 0), Coordinated, p)
	skewed := Cost(fakeResult(2, 1000, 0, 2.0, 0, 0), Coordinated, p)
	if balanced.Imbalance != 0 {
		t.Errorf("balanced run has imbalance cost %v", balanced.Imbalance)
	}
	if skewed.Imbalance <= 0 {
		t.Errorf("skewed run has no imbalance cost")
	}
}

func TestStateMovementPricesPulls(t *testing.T) {
	p := DefaultParams()
	res := fakeResult(2, 1000, 0.2, 1, 0, 0)
	b := Cost(res, StateMovement, p)
	// 200 cross-shard txs * (10 + 25) = 7000.
	if b.Coordination != 7000 {
		t.Errorf("coordination = %v, want 7000", b.Coordination)
	}
	// The two models must price the same run differently.
	if c := Cost(res, Coordinated, p); c.Coordination == b.Coordination {
		t.Error("models must not coincide under default params")
	}
}

func TestModelsTradeOffAsExpected(t *testing.T) {
	// A workload with a high cut and no moves: coordinated execution pays
	// per cross-shard transaction; a low-cut heavy-move run pays mostly
	// relocation. The model must rank them accordingly.
	p := DefaultParams()
	highCut := fakeResult(2, 10_000, 0.5, 1.1, 0, 0)
	lowCutHeavyMoves := fakeResult(2, 10_000, 0.05, 1.1, 5_000, 20_000)

	coordHigh := Cost(highCut, Coordinated, p)
	coordLow := Cost(lowCutHeavyMoves, Coordinated, p)
	if coordHigh.Coordination <= coordLow.Coordination {
		t.Error("high-cut run must pay more coordination")
	}
	if coordLow.Relocation <= coordHigh.Relocation {
		t.Error("heavy-move run must pay more relocation")
	}
}

func TestWANParamsRaiseCoordination(t *testing.T) {
	res := fakeResult(2, 1000, 0.5, 1, 0, 0)
	def := Cost(res, Coordinated, DefaultParams())
	wan := Cost(res, Coordinated, WANParams())
	if wan.Coordination != 10*def.Coordination {
		t.Errorf("WAN coordination = %v, want 10x %v", wan.Coordination, def.Coordination)
	}
	if wan.Relocation != def.Relocation {
		t.Error("WAN params must not change relocation prices")
	}
}

func TestCompareCoversBothModels(t *testing.T) {
	results := []*sim.Result{
		fakeResult(2, 100, 0.5, 1.2, 10, 20),
		fakeResult(2, 100, 0.1, 1.6, 100, 200),
	}
	out := Compare(results, DefaultParams())
	if len(out) != 2 {
		t.Fatalf("models = %d", len(out))
	}
	for model, rows := range out {
		if len(rows) != 2 {
			t.Errorf("%v rows = %d", model, len(rows))
		}
		for _, b := range rows {
			if b.Total() <= 0 {
				t.Errorf("%v total = %v", model, b.Total())
			}
		}
	}
}
