// Package costmodel translates simulation results into system resource
// costs. The paper's final remarks identify three components that sharding
// a generic framework like Ethereum must price — computation, storage and
// bandwidth (citing Chepurnoy et al., "A systematic approach to
// cryptocurrency fees") — and its introduction identifies the two classes
// of multi-shard execution: coordinated distributed execution (Spanner,
// S-SMR) and state movement to one shard (dynamic SMR). This package
// implements both cost models so the partitioning methods can be compared
// in the units an operator pays for, not just edge-cut percentages.
package costmodel

import (
	"fmt"

	"ethpart/internal/sim"
)

// Params prices the primitive operations. Units are abstract "cost units";
// only ratios matter when comparing methods. Defaults follow the ratios of
// the components: a wide-area coordination round costs about an order of
// magnitude more than local execution, and moving a storage slot costs
// about as much as a message since both traverse the network.
type Params struct {
	// ExecCost is the cost of executing one interaction inside a shard.
	ExecCost float64
	// CoordRounds is the number of extra cross-shard coordination rounds a
	// multi-shard transaction needs under coordinated execution (two-phase
	// commit needs 2).
	CoordRounds int
	// MsgCost is the cost of one cross-shard message (bandwidth+latency).
	MsgCost float64
	// SlotMoveCost is the cost of relocating one storage slot between
	// shards (bandwidth + re-commitment).
	SlotMoveCost float64
	// VertexMoveCost is the fixed cost of re-homing a vertex (account
	// metadata, routing update), paid per move on top of its slots.
	VertexMoveCost float64
}

// DefaultParams returns the ratios described above.
func DefaultParams() Params {
	return Params{
		ExecCost:       1,
		CoordRounds:    2,
		MsgCost:        10,
		SlotMoveCost:   25, // a state payload outweighs a control message
		VertexMoveCost: 20,
	}
}

// WANParams prices coordination for wide-area deployments, where a
// cross-shard round costs an order of magnitude more than in a datacenter.
// Comparing DefaultParams against WANParams shows when cut reduction pays
// for relocation: the more expensive coordination is, the stronger the
// case for the low-cut (METIS-family) methods.
func WANParams() Params {
	p := DefaultParams()
	p.MsgCost = 100
	return p
}

// Model selects how multi-shard transactions are handled.
type Model int

const (
	// Coordinated executes a multi-shard transaction in place with the
	// involved shards running a commit protocol (Spanner, S-SMR).
	Coordinated Model = iota + 1
	// StateMovement relocates the needed state to one shard, which then
	// executes locally (dynamic scalable SMR).
	StateMovement
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case Coordinated:
		return "coordinated"
	case StateMovement:
		return "state-movement"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Breakdown itemises a run's cost.
type Breakdown struct {
	Model Model
	// Execution is the baseline compute cost of every interaction.
	Execution float64
	// Coordination is the messaging cost of multi-shard transactions
	// (Coordinated model) or of on-demand state pulls (StateMovement).
	Coordination float64
	// Relocation is the cost of repartitioning moves: vertices re-homed
	// plus their storage slots.
	Relocation float64
	// Imbalance is the capacity wasted by load skew: provisioning is set
	// by the hottest shard, so (balance − 1) of the execution cost is
	// stranded in idle shards.
	Imbalance float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.Execution + b.Coordination + b.Relocation + b.Imbalance
}

// Cost prices a simulation result under a model.
//
// The estimate uses the run-level aggregates of the result: every executed
// interaction pays ExecCost; the cross-shard fraction pays the model's
// per-transaction overhead; every repartitioning move pays vertex and slot
// relocation; and load imbalance strands capacity in proportion to
// (dynamic balance − 1).
func Cost(res *sim.Result, model Model, p Params) Breakdown {
	var interactions float64
	for _, w := range res.Windows {
		interactions += float64(w.Interactions)
	}
	crossShard := interactions * res.OverallDynamicCut

	b := Breakdown{Model: model}
	b.Execution = interactions * p.ExecCost

	switch model {
	case Coordinated:
		// Each multi-shard transaction runs CoordRounds extra message
		// rounds between the two involved shards.
		b.Coordination = crossShard * float64(p.CoordRounds) * p.MsgCost
	case StateMovement:
		// Each multi-shard transaction pulls the remote party's state:
		// one message plus a slot-sized payload on average. (The average
		// slot payload is folded into SlotMoveCost's ratio to MsgCost.)
		b.Coordination = crossShard * (p.MsgCost + p.SlotMoveCost)
	}

	b.Relocation = float64(res.TotalMoves)*p.VertexMoveCost +
		float64(res.TotalMovedSlots)*p.SlotMoveCost
	if res.OverallDynamicBalance > 1 {
		b.Imbalance = (res.OverallDynamicBalance - 1) * b.Execution / float64(res.K)
	}
	return b
}

// Compare prices a set of results under both models and returns the
// breakdowns keyed by the result's method, preserving input order.
func Compare(results []*sim.Result, p Params) map[Model][]Breakdown {
	out := make(map[Model][]Breakdown, 2)
	for _, model := range []Model{Coordinated, StateMovement} {
		rows := make([]Breakdown, 0, len(results))
		for _, res := range results {
			rows = append(rows, Cost(res, model, p))
		}
		out[model] = rows
	}
	return out
}
