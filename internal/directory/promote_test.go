package directory

import (
	"testing"

	"ethpart/internal/graph"
)

func TestPromoteRehydratesColdEntry(t *testing.T) {
	d := New(Config{})
	if _, err := d.Commit(Batch{Set: []Move{{V: 5, To: 2}}, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(Batch{Retire: []graph.VertexID{5}}); err != nil {
		t.Fatal(err)
	}
	s := d.Current()
	if sh, cold, ok := s.LookupTier(5); !ok || !cold || sh != 2 {
		t.Fatalf("after retire: (%d,cold=%v,ok=%v), want (2,true,true)", sh, cold, ok)
	}

	if _, err := d.Commit(Batch{Promote: []graph.VertexID{5}}); err != nil {
		t.Fatal(err)
	}
	s = d.Current()
	sh, cold, ok := s.LookupTier(5)
	if !ok || cold || sh != 2 {
		t.Fatalf("after promote: (%d,cold=%v,ok=%v), want (2,false,true)", sh, cold, ok)
	}
	if s.ColdLen() != 0 || s.HotLen() != 1 {
		t.Errorf("tiers: hot=%d cold=%d, want 1/0", s.HotLen(), s.ColdLen())
	}
	if got := d.Stats().Promoted; got != 1 {
		t.Errorf("Stats.Promoted = %d, want 1", got)
	}
}

func TestPromoteNeverChangesLookupAnswer(t *testing.T) {
	d := New(Config{})
	if _, err := d.Commit(Batch{Set: []Move{{V: 1, To: 0}, {V: 2, To: 3}}, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(Batch{Retire: []graph.VertexID{2}}); err != nil {
		t.Fatal(err)
	}
	before := map[graph.VertexID]int{}
	d.Current().Each(func(v graph.VertexID, sh int) bool { before[v] = sh; return true })

	// Promote a cold entry, a hot entry, an unknown vertex and an
	// out-of-range ID: only the cold one changes tier, none changes shard.
	if _, err := d.Commit(Batch{Promote: []graph.VertexID{2, 1, 77, 1 << 40}}); err != nil {
		t.Fatal(err)
	}
	after := d.Current()
	if after.Len() != len(before) {
		t.Fatalf("entry count changed: %d, want %d", after.Len(), len(before))
	}
	for v, sh := range before {
		if got, ok := after.Lookup(v); !ok || got != sh {
			t.Errorf("vertex %d = (%d,%v), want (%d,true) — promote changed an answer", v, got, ok, sh)
		}
	}
	if got := d.Stats().Promoted; got != 1 {
		t.Errorf("Stats.Promoted = %d, want 1 (hot/unknown/out-of-range are no-ops)", got)
	}
}

func TestPromoteIsIdempotent(t *testing.T) {
	d := New(Config{})
	if _, err := d.Commit(Batch{Set: []Move{{V: 9, To: 1}}, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(Batch{Retire: []graph.VertexID{9}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Commit(Batch{Promote: []graph.VertexID{9}}); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Current()
	if s.Len() != 1 || s.HotLen() != 1 {
		t.Errorf("len=%d hot=%d, want 1/1 after repeated promotes", s.Len(), s.HotLen())
	}
	if got := d.Stats().Promoted; got != 1 {
		t.Errorf("Stats.Promoted = %d, want 1 (re-promotes are no-ops)", got)
	}
}

// TestStatsWaveFlips is the regression test for the wave-marker satellite:
// CommitBatch's wave flag must be observable in Stats, splitting repartition
// flips from loose placement flushes.
func TestStatsWaveFlips(t *testing.T) {
	d := New(Config{})
	if _, err := d.CommitBatch(Batch{Set: []Move{{V: 1, To: 0}}, Shards: 2}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CommitBatch(Batch{Set: []Move{{V: 1, To: 1}}}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CommitBatch(Batch{Set: []Move{{V: 2, To: 0}}}, true); err != nil {
		t.Fatal(err)
	}
	// The Committer-free Commit path counts as a loose flush.
	if _, err := d.Commit(Batch{Set: []Move{{V: 3, To: 1}}}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Flips != 4 {
		t.Errorf("Flips = %d, want 4", st.Flips)
	}
	if st.WaveFlips != 2 {
		t.Errorf("WaveFlips = %d, want 2", st.WaveFlips)
	}
	if loose := st.Flips - st.WaveFlips; loose != 2 {
		t.Errorf("loose flushes = %d, want 2", loose)
	}
}

// TestPublisherDrainsHintsIntoPromote checks the publisher side of
// promotion-on-access: hints pushed into an attached ring surface as the
// next flush's Promote lane, deduplicated.
func TestPublisherDrainsHintsIntoPromote(t *testing.T) {
	d := New(Config{})
	p := NewPublisher(d)
	p.SetShards(2)
	ring := NewHintRing(64)
	p.AttachHints(ring)

	p.OnPlace(1, 0)
	p.OnPlace(2, 1)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	p.OnRetire(1, 0)
	p.OnRetire(2, 1)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Current().ColdLen() != 2 {
		t.Fatalf("cold len = %d, want 2", d.Current().ColdLen())
	}

	// Duplicated hints from concurrent readers dedupe into one promotion.
	ring.Push(1)
	ring.Push(2)
	ring.Push(1)
	epochBefore := d.Epoch()
	if err := p.Flush(); err != nil { // hint-only flush must still commit
		t.Fatal(err)
	}
	if d.Epoch() != epochBefore+1 {
		t.Fatal("hint-only flush did not commit")
	}
	if !ring.Empty() {
		t.Error("flush left hints in the ring")
	}
	s := d.Current()
	if s.ColdLen() != 0 || s.HotLen() != 2 {
		t.Errorf("tiers after hint flush: hot=%d cold=%d, want 2/0", s.HotLen(), s.ColdLen())
	}
	if got := d.Stats().Promoted; got != 2 {
		t.Errorf("Stats.Promoted = %d, want 2 (hints deduped)", got)
	}

	// An empty publisher with an empty ring flushes to a no-op.
	epochBefore = d.Epoch()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != epochBefore {
		t.Error("empty flush published a new epoch")
	}
}
