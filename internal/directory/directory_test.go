package directory

import (
	"testing"

	"ethpart/internal/graph"
)

func mustCommit(t *testing.T, d *Directory, b Batch) uint64 {
	t.Helper()
	e, err := d.Commit(b)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEmptyDirectory(t *testing.T) {
	d := New(Config{})
	s := d.Current()
	if s.Epoch() != 0 || s.Len() != 0 {
		t.Fatalf("empty directory: epoch=%d len=%d", s.Epoch(), s.Len())
	}
	if _, ok := s.Lookup(7); ok {
		t.Error("lookup on empty directory succeeded")
	}
	if got, ok := d.AtEpoch(0); !ok || got != s {
		t.Error("epoch 0 not journaled")
	}
}

func TestPlaceAndLookup(t *testing.T) {
	d := New(Config{})
	if _, err := d.Place(3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Place(5000, 2); err != nil { // second page
		t.Fatal(err)
	}
	s := d.Current()
	if sh, ok := s.Lookup(3); !ok || sh != 1 {
		t.Errorf("Lookup(3) = %d,%v", sh, ok)
	}
	if sh, ok := s.Lookup(5000); !ok || sh != 2 {
		t.Errorf("Lookup(5000) = %d,%v", sh, ok)
	}
	if _, ok := s.Lookup(4); ok {
		t.Error("unmapped vertex resolved")
	}
	if s.Len() != 2 || s.HotLen() != 2 || s.ColdLen() != 0 {
		t.Errorf("len=%d hot=%d cold=%d", s.Len(), s.HotLen(), s.ColdLen())
	}
	// Overwrite is not a new entry.
	if _, err := d.Place(3, 0); err != nil {
		t.Fatal(err)
	}
	if s := d.Current(); s.Len() != 2 {
		t.Errorf("overwrite changed len to %d", s.Len())
	}
	if _, err := d.Place(3, -1); err == nil {
		t.Error("negative shard accepted")
	}
}

func TestWaveCommitIsOneEpochAndOldSnapshotsFrozen(t *testing.T) {
	d := New(Config{})
	var init []Move
	for v := graph.VertexID(0); v < 100; v++ {
		init = append(init, Move{V: v, To: 0})
	}
	mustCommit(t, d, Batch{Set: init})
	before := d.Current()

	// One wave moves half the vertices; exactly one epoch flip.
	var wave []Move
	for v := graph.VertexID(0); v < 100; v += 2 {
		wave = append(wave, Move{V: v, To: 1})
	}
	e := mustCommit(t, d, Batch{Set: wave})
	if e != before.Epoch()+1 {
		t.Fatalf("wave committed as epoch %d, want %d", e, before.Epoch()+1)
	}
	after := d.Current()
	for v := graph.VertexID(0); v < 100; v++ {
		// The pre-wave snapshot must be completely untouched.
		if sh, _ := before.Lookup(v); sh != 0 {
			t.Fatalf("pinned snapshot saw wave: vertex %d on shard %d", v, sh)
		}
		want := 0
		if v%2 == 0 {
			want = 1
		}
		if sh, _ := after.Lookup(v); sh != want {
			t.Fatalf("post-wave vertex %d on shard %d, want %d", v, sh, want)
		}
	}
}

func TestRetireSpillsToColdAndRehydrates(t *testing.T) {
	d := New(Config{})
	mustCommit(t, d, Batch{Set: []Move{{V: 10, To: 2}, {V: 11, To: 1}}})
	mustCommit(t, d, Batch{Retire: []graph.VertexID{10, 999 /* unknown: no-op */}})

	s := d.Current()
	// Retirement relocates, never changes the answer.
	if sh, ok := s.Lookup(10); !ok || sh != 2 {
		t.Fatalf("retired vertex lost: %d,%v", sh, ok)
	}
	if s.HotLen() != 1 || s.ColdLen() != 1 || s.Len() != 2 {
		t.Fatalf("hot=%d cold=%d len=%d after retire", s.HotLen(), s.ColdLen(), s.Len())
	}
	// Double retire is a no-op.
	mustCommit(t, d, Batch{Retire: []graph.VertexID{10}})
	if s := d.Current(); s.ColdLen() != 1 || s.Len() != 2 {
		t.Fatalf("double retire changed counts: cold=%d len=%d", s.ColdLen(), s.Len())
	}
	// A wave touching a cold entry promotes it back to the hot tier.
	mustCommit(t, d, Batch{Set: []Move{{V: 10, To: 0}}})
	s = d.Current()
	if sh, ok := s.Lookup(10); !ok || sh != 0 {
		t.Fatalf("rehydrated vertex: %d,%v", sh, ok)
	}
	if s.HotLen() != 2 || s.ColdLen() != 0 || s.Len() != 2 {
		t.Fatalf("hot=%d cold=%d len=%d after rehydrate", s.HotLen(), s.ColdLen(), s.Len())
	}
	if st := d.Stats(); st.Retired != 1 || st.Rehydrated != 1 {
		t.Errorf("stats retired=%d rehydrated=%d, want 1/1", st.Retired, st.Rehydrated)
	}
}

// TestRejectedBatchLeavesNoTrace pins the validate-before-mutate contract:
// a batch rejected mid-way (negative shard after valid entries) must leave
// the published view AND the writer's occupancy bookkeeping untouched —
// otherwise pageLive drifts above real occupancy and the page-drop
// compaction can never fire for that page again.
func TestRejectedBatchLeavesNoTrace(t *testing.T) {
	d := New(Config{})
	mustCommit(t, d, Batch{Set: []Move{{V: 1, To: 0}}})
	if _, err := d.Commit(Batch{Set: []Move{{V: 2, To: 1}, {V: 3, To: -1}}}); err == nil {
		t.Fatal("negative shard accepted")
	}
	s := d.Current()
	if s.Epoch() != 1 || s.Len() != 1 {
		t.Fatalf("rejected batch leaked: epoch=%d len=%d", s.Epoch(), s.Len())
	}
	if _, ok := s.Lookup(2); ok {
		t.Error("rejected batch's valid prefix is visible")
	}
	// The occupancy bookkeeping must still be exact: retiring the one real
	// entry empties page 0 and drops it.
	mustCommit(t, d, Batch{Retire: []graph.VertexID{1}})
	if st := d.Stats(); st.Pages != 0 || st.Hot != 0 || st.Cold != 1 {
		t.Errorf("post-rejection compaction broken: %+v", st)
	}
}

func TestRetireDropsEmptyPages(t *testing.T) {
	d := New(Config{})
	// Fill two pages.
	var set []Move
	for v := graph.VertexID(0); v < 2*pageSize; v++ {
		set = append(set, Move{V: v, To: int(v) % 3})
	}
	mustCommit(t, d, Batch{Set: set})
	if got := d.Stats().Pages; got != 2 {
		t.Fatalf("pages = %d, want 2", got)
	}
	// Retire every entry of page 0: the page must be dropped.
	var retire []graph.VertexID
	for v := graph.VertexID(0); v < pageSize; v++ {
		retire = append(retire, v)
	}
	mustCommit(t, d, Batch{Retire: retire})
	st := d.Stats()
	if st.Pages != 1 {
		t.Errorf("pages = %d after emptying page 0, want 1 (compaction)", st.Pages)
	}
	if st.Hot != pageSize || st.Cold != pageSize {
		t.Errorf("hot=%d cold=%d, want %d/%d", st.Hot, st.Cold, pageSize, pageSize)
	}
	// Every spilled entry still answers.
	s := d.Current()
	for v := graph.VertexID(0); v < 2*pageSize; v++ {
		if sh, ok := s.Lookup(v); !ok || sh != int(v)%3 {
			t.Fatalf("vertex %d: %d,%v", v, sh, ok)
		}
	}
}

func TestOutOfRangeIDsSpillToCold(t *testing.T) {
	d := New(Config{})
	huge := hotIDLimit + 12345
	mustCommit(t, d, Batch{Set: []Move{{V: huge, To: 3}}})
	s := d.Current()
	if sh, ok := s.Lookup(huge); !ok || sh != 3 {
		t.Fatalf("huge ID: %d,%v", sh, ok)
	}
	if s.HotLen() != 0 || s.ColdLen() != 1 {
		t.Errorf("hot=%d cold=%d, want cold-resident", s.HotLen(), s.ColdLen())
	}
	if st := d.Stats(); st.Pages != 0 {
		t.Errorf("huge ID allocated %d pages", st.Pages)
	}
}

func TestJournalBounded(t *testing.T) {
	d := New(Config{JournalDepth: 4})
	for i := 0; i < 10; i++ {
		mustCommit(t, d, Batch{Set: []Move{{V: graph.VertexID(i), To: 0}}})
	}
	// Epochs 7..10 are retained, 6 and older evicted.
	for e := uint64(7); e <= 10; e++ {
		s, ok := d.AtEpoch(e)
		if !ok || s.Epoch() != e {
			t.Errorf("epoch %d not retained", e)
		}
		// The pinned view must contain exactly the first e placements.
		if s.Len() != int(e) {
			t.Errorf("epoch %d view has %d entries", e, s.Len())
		}
	}
	if _, ok := d.AtEpoch(6); ok {
		t.Error("epoch 6 should have been evicted from a depth-4 journal")
	}
}

func TestEachVisitsEveryEntry(t *testing.T) {
	d := New(Config{})
	mustCommit(t, d, Batch{Set: []Move{{V: 1, To: 0}, {V: 2, To: 1}, {V: hotIDLimit + 1, To: 2}}})
	mustCommit(t, d, Batch{Retire: []graph.VertexID{2}})
	got := map[graph.VertexID]int{}
	d.Current().Each(func(v graph.VertexID, shard int) bool {
		got[v] = shard
		return true
	})
	want := map[graph.VertexID]int{1: 0, 2: 1, hotIDLimit + 1: 2}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v, want %v", got, want)
	}
	for v, sh := range want {
		if got[v] != sh {
			t.Errorf("Each saw %d->%d, want %d", v, got[v], sh)
		}
	}
}

func TestPublisherBatchingSemantics(t *testing.T) {
	d := New(Config{})
	p := NewPublisher(d)

	// Places buffer until Flush; a flush with nothing buffered burns no epoch.
	p.OnPlace(1, 0)
	p.OnPlace(2, 1)
	if d.Epoch() != 0 {
		t.Fatal("places committed before Flush")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 || d.Current().Len() != 2 {
		t.Fatalf("epoch=%d len=%d after flush", d.Epoch(), d.Current().Len())
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Error("empty flush burned an epoch")
	}

	// A wave commits as one flip when OnRepartition fires, retires ride along.
	p.OnRetire(2, 1)
	p.OnMove(1, 0, 1)
	p.OnMove(2, 1, 0)
	if err := p.OnRepartition(2); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 2 {
		t.Fatalf("wave+retire flipped to epoch %d, want 2", d.Epoch())
	}
	s := d.Current()
	if sh, _ := s.Lookup(1); sh != 1 {
		t.Errorf("vertex 1 on %d", sh)
	}
	// Vertex 2 was retired then moved in the same batch: Set wins (the
	// move targets the current mapping wherever it lives).
	if sh, ok := s.Lookup(2); !ok || sh != 0 {
		t.Errorf("vertex 2: %d,%v", sh, ok)
	}

	// A move-count mismatch must refuse to commit.
	p.OnMove(1, 1, 0)
	if err := p.OnRepartition(2); err == nil {
		t.Error("torn wave accepted")
	}
}
