package directory

import (
	"sync/atomic"

	"ethpart/internal/graph"
)

// HintRing is a bounded, lock-free, multi-producer single-consumer ring of
// promotion hints: vertex IDs whose lookups hit the cold tier and that the
// publisher should consider re-hydrating into the hot tier at its next
// commit. The read path pushes without a lock (one CAS to reserve a slot,
// one store to publish it) and drops hints when the ring is full — a hint
// is advisory, losing one only delays a promotion until the vertex is
// looked up again. Drain is single-consumer: exactly one goroutine (the
// publisher) may call it.
//
// A slot holds v+1 so zero means "reserved but not yet published" (or
// empty); a drain that reaches such a slot stops there and picks the
// remainder up next time, so a half-published slot is never consumed and
// never lost.
type HintRing struct {
	slots []atomic.Uint64
	mask  uint64
	head  atomic.Uint64 // consumer position
	tail  atomic.Uint64 // producer reservations

	pushed  atomic.Uint64
	dropped atomic.Uint64
}

// NewHintRing returns a ring with capacity rounded up to a power of two
// (minimum 64; size <= 0 selects the default of 1024).
func NewHintRing(size int) *HintRing {
	if size <= 0 {
		size = 1024
	}
	cap := 64
	for cap < size {
		cap <<= 1
	}
	return &HintRing{slots: make([]atomic.Uint64, cap), mask: uint64(cap - 1)}
}

// Push offers one hint. It never blocks; false means the ring was full and
// the hint was dropped.
func (r *HintRing) Push(v graph.VertexID) bool {
	for {
		t := r.tail.Load()
		if t-r.head.Load() >= uint64(len(r.slots)) {
			r.dropped.Add(1)
			return false
		}
		if r.tail.CompareAndSwap(t, t+1) {
			r.slots[t&r.mask].Store(uint64(v) + 1)
			r.pushed.Add(1)
			return true
		}
	}
}

// Drain consumes every published hint, oldest first, and returns how many
// it delivered. Single consumer only.
func (r *HintRing) Drain(fn func(graph.VertexID)) int {
	h := r.head.Load()
	t := r.tail.Load()
	n := 0
	for i := h; i < t; i++ {
		x := r.slots[i&r.mask].Swap(0)
		if x == 0 {
			// Reserved but not yet published: stop, the next drain gets it.
			t = i
			break
		}
		fn(graph.VertexID(x - 1))
		n++
	}
	r.head.Store(t)
	return n
}

// Empty reports whether the ring has no pending hints (racy by nature;
// callers use it only to skip a drain).
func (r *HintRing) Empty() bool { return r.tail.Load() == r.head.Load() }

// Pushed and Dropped report cumulative accepted and discarded hints.
func (r *HintRing) Pushed() uint64  { return r.pushed.Load() }
func (r *HintRing) Dropped() uint64 { return r.dropped.Load() }
