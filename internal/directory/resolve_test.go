package directory

import (
	"errors"
	"strings"
	"testing"

	"ethpart/internal/graph"
)

// TestPinEpochEvictionBoundary pins the typed miss: epochs inside the
// bounded journal pin exactly, epochs that aged out (and epochs never
// published) fail with ErrEpochEvicted naming the retained range.
func TestPinEpochEvictionBoundary(t *testing.T) {
	d := New(Config{JournalDepth: 4})
	for e := 1; e <= 8; e++ {
		mustCommit(t, d, Batch{Set: []Move{{V: graph.VertexID(e), To: e % 3}}})
	}
	// Journal retains epochs 5..8 (depth 4, newest 8).
	for e := uint64(5); e <= 8; e++ {
		s, err := d.PinEpoch(e)
		if err != nil {
			t.Fatalf("PinEpoch(%d): %v", e, err)
		}
		if s.Epoch() != e {
			t.Fatalf("PinEpoch(%d) returned epoch %d", e, s.Epoch())
		}
	}
	for _, e := range []uint64{0, 1, 4, 9} {
		_, err := d.PinEpoch(e)
		if !errors.Is(err, ErrEpochEvicted) {
			t.Fatalf("PinEpoch(%d) = %v, want ErrEpochEvicted", e, err)
		}
		if !strings.Contains(err.Error(), "5..8") {
			t.Errorf("PinEpoch(%d) error %q does not name the retained range", e, err)
		}
	}
	// The boundary itself: the oldest retained epoch pins, its predecessor
	// does not.
	if _, err := d.PinEpoch(5); err != nil {
		t.Errorf("oldest retained epoch failed to pin: %v", err)
	}
	if _, err := d.PinEpoch(4); err == nil {
		t.Error("evicted boundary epoch pinned")
	}
}

// TestResolveFallsBackWithStaleness pins the degradation helper: a
// journaled epoch resolves exactly and fresh; an evicted or never-published
// epoch degrades to the newest view, flagged stale.
func TestResolveFallsBackWithStaleness(t *testing.T) {
	d := New(Config{JournalDepth: 2})
	for e := 1; e <= 5; e++ {
		mustCommit(t, d, Batch{Set: []Move{{V: graph.VertexID(e), To: 1}}})
	}
	cur := d.Current()

	if s, stale := d.Resolve(4); stale || s.Epoch() != 4 {
		t.Errorf("Resolve(4) = epoch %d stale=%v, want exact fresh snapshot", s.Epoch(), stale)
	}
	if s, stale := d.Resolve(1); !stale || s != cur {
		t.Errorf("Resolve(1) = epoch %d stale=%v, want current view flagged stale", s.Epoch(), stale)
	}
	if s, stale := d.Resolve(99); !stale || s != cur {
		t.Errorf("Resolve(99) = epoch %d stale=%v, want current view flagged stale", s.Epoch(), stale)
	}
}

// TestDirectoryImplementsCommitter pins the committer seam the fault
// plane and future replication wrap: the plain directory commits waves
// and non-waves identically.
func TestDirectoryImplementsCommitter(t *testing.T) {
	d := New(Config{})
	var c Committer = d
	e1, err := c.CommitBatch(Batch{Set: []Move{{V: 1, To: 0}}}, false)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.CommitBatch(Batch{Set: []Move{{V: 1, To: 1}}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1+1 {
		t.Errorf("wave commit burned %d epochs, want 1", e2-e1)
	}
	if sh, ok := d.Current().Lookup(1); !ok || sh != 1 {
		t.Errorf("Lookup(1) = %d,%v after wave commit", sh, ok)
	}
}
