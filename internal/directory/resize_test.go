package directory

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ethpart/internal/graph"
)

// TestBatchShardsCarriage: the shard count rides the batch, flips with the
// epoch, and inherits when unset; targets are validated against the
// effective count.
func TestBatchShardsCarriage(t *testing.T) {
	d := New(Config{})
	if got := d.Current().Shards(); got != 0 {
		t.Fatalf("fresh directory declares %d shards, want 0 (undeclared)", got)
	}

	e1, err := d.Commit(Batch{Shards: 4, Set: []Move{{V: 1, To: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Current().Shards(); got != 4 {
		t.Fatalf("Shards after declaring commit = %d, want 4", got)
	}

	// Shards: 0 inherits.
	if _, err := d.Commit(Batch{Set: []Move{{V: 2, To: 0}}}); err != nil {
		t.Fatal(err)
	}
	if got := d.Current().Shards(); got != 4 {
		t.Errorf("inheriting commit changed Shards to %d", got)
	}

	// A declared count validates every target in the same batch.
	if _, err := d.Commit(Batch{Set: []Move{{V: 3, To: 4}}}); err == nil {
		t.Error("Set target 4 accepted with 4 shards declared")
	}
	if _, err := d.Commit(Batch{SetCold: []Move{{V: 3, To: 7}}}); err == nil {
		t.Error("SetCold target 7 accepted with 4 shards declared")
	}
	if _, err := d.Commit(Batch{Shards: -2}); err == nil {
		t.Error("negative Shards accepted")
	}

	// The old epoch still answers with the old count: no k/placement tear
	// for a pinned reader.
	old, err := d.PinEpoch(e1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Shards() != 4 {
		t.Errorf("pinned epoch %d Shards = %d, want 4", e1, old.Shards())
	}
}

// TestShrinkOrphanRejected: a count-shrinking commit must carry remaps for
// every entry above the new range or be rejected before any mutation.
func TestShrinkOrphanRejected(t *testing.T) {
	d := New(Config{})
	if _, err := d.Commit(Batch{Shards: 4, Set: []Move{{V: 1, To: 0}, {V: 2, To: 3}}}); err != nil {
		t.Fatal(err)
	}
	epoch := d.Epoch()

	_, err := d.Commit(Batch{Shards: 2})
	if err == nil {
		t.Fatal("shrink accepted with vertex 2 on shard 3")
	}
	if !strings.Contains(err.Error(), "shard 3") {
		t.Errorf("shrink error does not name the orphan shard: %v", err)
	}
	if d.Epoch() != epoch {
		t.Errorf("failed shrink burned an epoch: %d -> %d", epoch, d.Epoch())
	}
	if s, ok := d.Current().Lookup(2); !ok || s != 3 {
		t.Errorf("failed shrink mutated entry: %d, %v", s, ok)
	}
	if d.Current().Shards() != 4 {
		t.Errorf("failed shrink changed count to %d", d.Current().Shards())
	}

	// The same shrink with the remap in the same batch is one clean flip.
	if _, err := d.Commit(Batch{Shards: 2, Set: []Move{{V: 2, To: 1}}}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != epoch+1 {
		t.Errorf("resize wave took %d flips, want 1", d.Epoch()-epoch)
	}
	if d.Current().Shards() != 2 {
		t.Errorf("Shards after shrink = %d", d.Current().Shards())
	}
}

// TestSetColdTierPreserving: SetCold updates an entry without changing its
// tier — retired entries stay cold (a merge remap of dead history must not
// re-hydrate the hot tier), hot entries stay hot, unknown entries land cold.
func TestSetColdTierPreserving(t *testing.T) {
	d := New(Config{})
	if _, err := d.Commit(Batch{Shards: 4, Set: []Move{{V: 10, To: 2}, {V: 11, To: 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(Batch{Retire: []graph.VertexID{10}}); err != nil {
		t.Fatal(err)
	}
	base := d.Current()
	if base.HotLen() != 1 || base.ColdLen() != 1 {
		t.Fatalf("setup: hot=%d cold=%d", base.HotLen(), base.ColdLen())
	}

	// Remap the retired entry and the hot entry via SetCold, plus one
	// never-seen vertex.
	if _, err := d.Commit(Batch{SetCold: []Move{{V: 10, To: 0}, {V: 11, To: 0}, {V: 12, To: 1}}}); err != nil {
		t.Fatal(err)
	}
	s := d.Current()
	if got, ok := s.Lookup(10); !ok || got != 0 {
		t.Errorf("retired entry not remapped: %d, %v", got, ok)
	}
	if got, ok := s.Lookup(11); !ok || got != 0 {
		t.Errorf("hot entry not remapped: %d, %v", got, ok)
	}
	if got, ok := s.Lookup(12); !ok || got != 1 {
		t.Errorf("unknown entry not placed: %d, %v", got, ok)
	}
	// 11 stayed hot; 10 stayed cold; 12 joined cold.
	if s.HotLen() != 1 || s.ColdLen() != 2 {
		t.Errorf("tiers after SetCold: hot=%d cold=%d, want 1/2", s.HotLen(), s.ColdLen())
	}
}

// TestColdPromotionAcrossResize is the satellite case: an entry that
// retired when the directory had k shards is re-placed (promoted hot) onto
// a shard index that only exists after a split, in the same epoch that
// grows the count.
func TestColdPromotionAcrossResize(t *testing.T) {
	d := New(Config{})
	if _, err := d.Commit(Batch{Shards: 2, Set: []Move{{V: 7, To: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(Batch{Retire: []graph.VertexID{7}}); err != nil {
		t.Fatal(err)
	}
	if d.Current().ColdLen() != 1 {
		t.Fatal("setup: entry not cold")
	}

	// Shard 5 does not exist before this commit; the promotion and the
	// growth land in one flip.
	epoch := d.Epoch()
	if _, err := d.Commit(Batch{Shards: 6, Set: []Move{{V: 7, To: 5}}}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != epoch+1 {
		t.Errorf("grow+promote took %d flips", d.Epoch()-epoch)
	}
	s := d.Current()
	if got, ok := s.Lookup(7); !ok || got != 5 {
		t.Errorf("promoted entry = %d, %v, want shard 5", got, ok)
	}
	if s.HotLen() != 1 || s.ColdLen() != 0 {
		t.Errorf("promotion tiers: hot=%d cold=%d", s.HotLen(), s.ColdLen())
	}
	st := d.Stats()
	if st.Rehydrated != 1 {
		t.Errorf("Rehydrated = %d, want 1", st.Rehydrated)
	}
	if st.Shards != 6 {
		t.Errorf("Stats.Shards = %d, want 6", st.Shards)
	}
}

// TestPinEpochResolveAcrossKFlip: a reader pinned before a k-changing flip
// keeps the old count with the old placements; once the journal evicts its
// epoch, Resolve degrades it to the current view (new count, new
// placements) with stale=true — never a mix.
func TestPinEpochResolveAcrossKFlip(t *testing.T) {
	d := New(Config{JournalDepth: 2})
	if _, err := d.Commit(Batch{Shards: 2, Set: []Move{{V: 1, To: 1}, {V: 2, To: 0}}}); err != nil {
		t.Fatal(err)
	}
	before := d.Epoch()

	// The resize wave: count 2 -> 4 plus the remap, one flip.
	if _, err := d.Commit(Batch{Shards: 4, Set: []Move{{V: 1, To: 3}}}); err != nil {
		t.Fatal(err)
	}

	old, err := d.PinEpoch(before)
	if err != nil {
		t.Fatal(err)
	}
	if old.Shards() != 2 {
		t.Errorf("pinned pre-flip Shards = %d, want 2", old.Shards())
	}
	if s, _ := old.Lookup(1); s != 1 {
		t.Errorf("pinned pre-flip placement = %d, want 1", s)
	}
	cur, stale := d.Resolve(before)
	if stale || cur.Shards() != 2 {
		t.Errorf("Resolve(retained) = shards %d, stale %v", cur.Shards(), stale)
	}

	// Flood the 2-deep journal so the pre-flip epoch evicts.
	for i := 0; i < 4; i++ {
		if _, err := d.Commit(Batch{Set: []Move{{V: 2, To: i % 4}}}); err != nil {
			t.Fatal(err)
		}
	}
	got, stale := d.Resolve(before)
	if !stale {
		t.Fatal("Resolve(evicted) not marked stale")
	}
	if got.Shards() != 4 {
		t.Errorf("degraded view Shards = %d, want the current 4", got.Shards())
	}
	if s, _ := got.Lookup(1); s != 3 {
		t.Errorf("degraded view placement = %d, want the current 3", s)
	}
	if _, err := d.PinEpoch(before); err == nil {
		t.Error("PinEpoch(evicted) did not error")
	}
}

// TestRaceShardCountNeverTears is the resize tear detector (runs under
// CI's -race job): a writer alternates the directory between a wide and a
// narrow shard count, each transition one commit carrying the count and
// the full remap; readers assert that every placement a snapshot answers
// is below that same snapshot's shard count. A torn resize — new
// placements with the old count, or the reverse — fails immediately.
func TestRaceShardCountNeverTears(t *testing.T) {
	const n = 256
	d := New(Config{})
	wide := make([]Move, n)
	narrow := make([]Move, n)
	for i := range wide {
		wide[i] = Move{V: graph.VertexID(i), To: i % 8}
		narrow[i] = Move{V: graph.VertexID(i), To: i % 2}
	}
	if _, err := d.Commit(Batch{Shards: 2, Set: narrow}); err != nil {
		t.Fatal(err)
	}

	var stop, torn atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				s := d.Current()
				k := s.Shards()
				for i := 0; i < 16; i++ {
					v := graph.VertexID(rng.Intn(n))
					if sh, ok := s.Lookup(v); ok && sh >= k {
						torn.Store(true)
						return
					}
				}
			}
		}(int64(r + 1))
	}

	for c := 0; c < 200 && !torn.Load(); c++ {
		b := Batch{Shards: 8, Set: wide}
		if c%2 == 1 {
			b = Batch{Shards: 2, Set: narrow}
		}
		if _, err := d.Commit(b); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if torn.Load() {
		t.Fatal("a reader observed a placement outside its snapshot's shard count")
	}
}
