package directory

import (
	"fmt"

	"ethpart/internal/graph"
)

// Publisher adapts a stream of placement events — the shape of the sim
// package's OnPlace/OnMove/OnRepartition/OnRetire callbacks — into
// directory commits with the serving layer's atomicity contract:
//
//   - first-sight placements buffer and commit together at the next Flush
//     (the operational bridge flushes once per replayed record, so a
//     record's placements become visible before the chain resolves homes);
//   - a repartition's moves buffer from OnMove and commit as ONE epoch
//     flip when OnRepartition fires — readers never observe a torn wave;
//   - retirements buffer and spill to the cold tier with the next commit
//     (spilling only relocates an entry between tiers, it never changes a
//     lookup's answer, so its visibility timing is free).
//
// A Publisher is not safe for concurrent use; it lives on the simulator's
// replay goroutine and only the committed snapshots cross threads.
type Publisher struct {
	c Committer

	places  []Move
	moves   []Move
	retires []graph.VertexID
}

// NewPublisher returns a publisher committing through c — a Directory, or
// a wrapper (fault injection, replication) between publisher and directory.
func NewPublisher(c Committer) *Publisher {
	return &Publisher{c: c}
}

// OnPlace buffers a first-sight placement.
func (p *Publisher) OnPlace(v graph.VertexID, shard int) {
	p.places = append(p.places, Move{V: v, To: shard})
}

// OnMove buffers one move of an in-progress repartition wave.
func (p *Publisher) OnMove(v graph.VertexID, _, to int) {
	p.moves = append(p.moves, Move{V: v, To: to})
}

// OnRetire buffers a retirement spill.
func (p *Publisher) OnRetire(v graph.VertexID, _ int) {
	p.retires = append(p.retires, v)
}

// OnRepartition commits the buffered wave (plus any placements and
// retirements buffered before it) as a single epoch flip, marked as a wave
// commit for the committer.
func (p *Publisher) OnRepartition(moves int) error {
	if moves != len(p.moves) {
		// The caller's move count and the buffered wave disagree — a
		// mis-wired callback chain would otherwise commit torn waves
		// silently.
		return fmt.Errorf("directory: repartition reported %d moves but %d were observed",
			moves, len(p.moves))
	}
	return p.flush(true)
}

// Flush commits everything buffered as one epoch flip. A flush with
// nothing buffered is a no-op (no epoch is burned).
func (p *Publisher) Flush() error {
	return p.flush(false)
}

func (p *Publisher) flush(wave bool) error {
	if len(p.places) == 0 && len(p.moves) == 0 && len(p.retires) == 0 {
		return nil
	}
	b := Batch{Retire: p.retires}
	b.Set = append(b.Set, p.places...)
	b.Set = append(b.Set, p.moves...)
	_, err := p.c.CommitBatch(b, wave)
	p.places = p.places[:0]
	p.moves = p.moves[:0]
	p.retires = p.retires[:0]
	return err
}
