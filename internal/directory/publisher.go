package directory

import (
	"fmt"

	"ethpart/internal/graph"
)

// Publisher adapts a stream of placement events — the shape of the sim
// package's OnPlace/OnMove/OnRepartition/OnRetire/OnResize callbacks — into
// directory commits with the serving layer's atomicity contract:
//
//   - first-sight placements buffer and commit together at the next Flush
//     (the operational bridge flushes once per replayed record, so a
//     record's placements become visible before the chain resolves homes);
//   - a repartition's moves buffer from OnMove and commit as ONE epoch
//     flip when OnRepartition fires — readers never observe a torn wave;
//   - a resize wave commits its new shard count together with every remap
//     in the same single flip (OnResize), so no reader can pair an old k
//     with a new placement;
//   - retirements buffer and spill to the cold tier with the next commit
//     (spilling only relocates an entry between tiers, it never changes a
//     lookup's answer, so its visibility timing is free).
//
// A Publisher is not safe for concurrent use; it lives on the simulator's
// replay goroutine and only the committed snapshots cross threads.
type Publisher struct {
	c Committer

	places    []Move
	moves     []Move
	movesCold []Move
	retires   []graph.VertexID

	// shards stamps outgoing batches; zero (never declared) inherits.
	shards int
	// live, when set, routes moves of non-live (retired) vertices to the
	// batch's tier-preserving SetCold lane instead of Set, so a merge wave
	// remapping sticky assignments off a drained shard doesn't re-hydrate
	// dead history into the hot tier.
	live func(graph.VertexID) bool
	// hints, when set, is drained into each outgoing batch's Promote lane:
	// read-side cold-tier hits become hot-tier re-hydrations at the next
	// commit, without the read path ever taking a write lock.
	hints *HintRing
}

// NewPublisher returns a publisher committing through c — a Directory, or
// a wrapper (fault injection, replication) between publisher and directory.
func NewPublisher(c Committer) *Publisher {
	return &Publisher{c: c}
}

// SetShards declares the shard count stamped on every subsequent commit.
// Call it once at wiring time with the initial k; resize waves update it
// through OnResize.
func (p *Publisher) SetShards(k int) { p.shards = k }

// SetLive installs the liveness test used to route wave moves between the
// promoting Set lane (live vertices) and the tier-preserving SetCold lane
// (retired ones). A nil func restores the default: every move promotes.
func (p *Publisher) SetLive(fn func(graph.VertexID) bool) { p.live = fn }

// AttachHints installs the promotion hint ring the publisher drains at
// every commit. The ring's producers are the serving path's readers (local
// snapshot lookups or the networked front end); the publisher is the
// ring's single consumer.
func (p *Publisher) AttachHints(r *HintRing) { p.hints = r }

// OnPlace buffers a first-sight placement.
func (p *Publisher) OnPlace(v graph.VertexID, shard int) {
	p.places = append(p.places, Move{V: v, To: shard})
}

// OnMove buffers one move of an in-progress repartition or resize wave.
func (p *Publisher) OnMove(v graph.VertexID, _, to int) {
	if p.live != nil && !p.live(v) {
		p.movesCold = append(p.movesCold, Move{V: v, To: to})
		return
	}
	p.moves = append(p.moves, Move{V: v, To: to})
}

// OnRetire buffers a retirement spill.
func (p *Publisher) OnRetire(v graph.VertexID, _ int) {
	p.retires = append(p.retires, v)
}

// OnRepartition commits the buffered wave (plus any placements and
// retirements buffered before it) as a single epoch flip, marked as a wave
// commit for the committer.
func (p *Publisher) OnRepartition(moves int) error {
	if moves != len(p.moves)+len(p.movesCold) {
		// The caller's move count and the buffered wave disagree — a
		// mis-wired callback chain would otherwise commit torn waves
		// silently.
		return fmt.Errorf("directory: repartition reported %d moves but %d were observed",
			moves, len(p.moves)+len(p.movesCold))
	}
	return p.flush(true)
}

// OnResize commits a resize wave: the new shard count plus every buffered
// remap of the wave, as exactly one epoch flip. A pure resize (no moves —
// e.g. a split whose re-partition happened to move nothing) still flips
// once, carrying the count alone.
func (p *Publisher) OnResize(newK, moves int) error {
	if newK < 1 {
		return fmt.Errorf("directory: resize to %d shards", newK)
	}
	if moves != len(p.moves)+len(p.movesCold) {
		return fmt.Errorf("directory: resize reported %d moves but %d were observed",
			moves, len(p.moves)+len(p.movesCold))
	}
	p.shards = newK
	b := p.take(newK)
	_, err := p.c.CommitBatch(b, true)
	return err
}

// Flush commits everything buffered as one epoch flip. A flush with
// nothing buffered is a no-op (no epoch is burned).
func (p *Publisher) Flush() error {
	return p.flush(false)
}

func (p *Publisher) flush(wave bool) error {
	if len(p.places) == 0 && len(p.moves) == 0 && len(p.movesCold) == 0 && len(p.retires) == 0 &&
		(p.hints == nil || p.hints.Empty()) {
		return nil
	}
	b := p.take(p.shards)
	_, err := p.c.CommitBatch(b, wave)
	return err
}

// take drains the buffers (and the hint ring) into one batch stamped with
// the given shard count. Every slice in the returned batch is freshly
// allocated: committers may retain a batch beyond the call — a stalled
// wave in the fault plane, an asynchronous replica fan-out — so it must
// not alias the publisher's reusable buffers.
func (p *Publisher) take(shards int) Batch {
	b := Batch{Shards: shards}
	b.Set = append(b.Set, p.places...)
	b.Set = append(b.Set, p.moves...)
	b.SetCold = append(b.SetCold, p.movesCold...)
	b.Retire = append(b.Retire, p.retires...)
	if p.hints != nil && !p.hints.Empty() {
		seen := make(map[graph.VertexID]struct{})
		p.hints.Drain(func(v graph.VertexID) {
			if _, dup := seen[v]; dup {
				return
			}
			seen[v] = struct{}{}
			b.Promote = append(b.Promote, v)
		})
	}
	p.places = p.places[:0]
	p.moves = p.moves[:0]
	p.movesCold = p.movesCold[:0]
	p.retires = p.retires[:0]
	return b
}
