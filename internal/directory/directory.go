// Package directory implements the serving layer's account→shard placement
// directory: an epoch-versioned, concurrent map from vertex IDs to shards
// that answers "which shard owns account X?" at high read rates while a
// repartitioner mutates the mapping underneath.
//
// The design is RCU-shaped. All state reachable from a published *Snapshot
// is immutable; readers load the current snapshot with one atomic pointer
// read and then perform any number of lookups against a frozen, consistent
// view — no locks, no retries, no torn reads. Writers serialise on a mutex,
// build the next snapshot by copying only what they touch, and publish it
// with one atomic store. A repartition's whole move set commits as a single
// epoch flip: no reader can ever observe half a wave.
//
// Storage is two-tiered, mirroring the dense/spill split of the partition
// and graph packages:
//
//   - the hot tier is a paged dense table (VertexID-indexed, fixed-size
//     copy-on-write pages), sized for the live account population that
//     placement and repartitioning actually touch;
//   - the cold tier is a compact map holding sticky assignments of retired
//     accounts (and of IDs outside the dense region). Retirement spills an
//     entry from a page into the cold map; when the spill empties a page
//     the page is dropped entirely, so the hot tier's footprint follows the
//     live set instead of the full history — the directory's absorption of
//     the "horizon-aware assignment compaction" roadmap item.
//
// A bounded journal retains the last JournalDepth snapshots by epoch, so a
// reader that pinned epoch E mid-flight can re-acquire exactly that view
// (AtEpoch) for as long as the journal keeps it.
package directory

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ethpart/internal/graph"
)

// NoShard is returned (with ok == false) for vertices the directory has
// never seen.
const NoShard = -1

// noShard is the unoccupied-entry sentinel inside hot pages.
const noShard int32 = -1

const (
	// pageBits sizes the hot tier's copy-on-write pages: 1<<pageBits
	// entries (4 KiB of int32s). Small enough that a single placement's
	// page copy is cheap, large enough that the page-pointer table stays
	// tiny (one pointer per 1024 accounts).
	pageBits = 10
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// hotIDLimit bounds the paged hot tier, matching the dense ID region of
// the graph and partition packages (IDs come from the trace registry,
// which assigns them densely from zero). Callers minting VertexIDs from
// address bits land in the cold map instead of forcing giant page tables.
const hotIDLimit = graph.VertexID(1) << 22

// page is one fixed-size block of the hot tier. Pages reachable from a
// published snapshot are immutable; a writer copies a page before its
// first write of a commit.
type page [pageSize]int32

// Snapshot is one immutable, internally consistent version of the
// directory. Any number of goroutines may share a Snapshot; it never
// changes after publication, so a reader holding one sees a single epoch's
// view across arbitrarily many lookups.
type Snapshot struct {
	epoch uint64
	// shards is the shard count this view was published under; zero until
	// a batch carries one. Riding inside the snapshot makes the count
	// epoch-consistent with the placements: a reader resolving homes
	// against a pinned view can never pair an old k with a new mapping (or
	// vice versa), however many resizes the writer commits meanwhile.
	shards int
	// pages is the hot tier; nil entries are wholly unoccupied (or
	// compacted-away) pages.
	pages []*page
	// cold is the cold tier: retired sticky assignments plus out-of-range
	// IDs. May be nil when nothing has ever spilled. Hot and cold are
	// disjoint: a vertex lives in exactly one tier.
	cold map[graph.VertexID]int32
	// hot and entries count occupied hot-tier slots and total mapped
	// vertices (hot + cold).
	hot, entries int
}

// Epoch returns the snapshot's version number. Epochs start at zero (the
// empty directory) and increase by one per commit.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Shards returns the shard count this view was published under — the
// epoch-consistent companion of the placements, guaranteed to cover every
// mapped shard of the view. Zero means no batch has declared one yet.
func (s *Snapshot) Shards() int { return s.shards }

// Len returns the number of mapped vertices in this view.
func (s *Snapshot) Len() int { return s.entries }

// HotLen returns the number of hot-tier entries in this view.
func (s *Snapshot) HotLen() int { return s.hot }

// ColdLen returns the number of cold-tier (retired/spilled) entries.
func (s *Snapshot) ColdLen() int { return s.entries - s.hot }

// Lookup returns the shard of v in this view. The hot tier is a bounds
// check, two loads and a compare; only misses (unknown or retired
// vertices) touch the cold map.
func (s *Snapshot) Lookup(v graph.VertexID) (int, bool) {
	if v < hotIDLimit {
		if p := int(v >> pageBits); p < len(s.pages) {
			if pg := s.pages[p]; pg != nil {
				if sh := pg[v&pageMask]; sh != noShard {
					return int(sh), true
				}
			}
		}
	}
	if s.cold != nil {
		if sh, ok := s.cold[v]; ok {
			return int(sh), true
		}
	}
	return NoShard, false
}

// LookupTier is Lookup plus tier information: cold reports whether the
// answer came from the cold tier. The serving front end uses it to emit
// promotion hints for hot-again accounts without taking any lock.
func (s *Snapshot) LookupTier(v graph.VertexID) (shard int, cold, ok bool) {
	if v < hotIDLimit {
		if p := int(v >> pageBits); p < len(s.pages) {
			if pg := s.pages[p]; pg != nil {
				if sh := pg[v&pageMask]; sh != noShard {
					return int(sh), false, true
				}
			}
		}
	}
	if s.cold != nil {
		if sh, ok := s.cold[v]; ok {
			return int(sh), true, true
		}
	}
	return NoShard, false, false
}

// Each calls fn for every mapped vertex of the view: hot tier in ascending
// ID order, then cold entries in unspecified order. Stops early when fn
// returns false.
func (s *Snapshot) Each(fn func(v graph.VertexID, shard int) bool) {
	for p, pg := range s.pages {
		if pg == nil {
			continue
		}
		base := graph.VertexID(p) << pageBits
		for i, sh := range pg {
			if sh == noShard {
				continue
			}
			if !fn(base+graph.VertexID(i), int(sh)) {
				return
			}
		}
	}
	for v, sh := range s.cold {
		if !fn(v, int(sh)) {
			return
		}
	}
}

// Move is one mapping update: vertex V is owned by shard To.
type Move struct {
	V  graph.VertexID
	To int
}

// Batch is the unit of atomicity: everything in one Batch becomes visible
// together, as a single epoch flip.
//
// Set entries update the mapping wherever the vertex currently lives: a
// new vertex joins the hot tier, an existing hot entry is overwritten in
// place, and a cold (retired) entry is promoted back into the hot tier —
// a repartition moving a sticky assignment re-hydrates it. SetCold entries
// update the mapping *without* changing tiers: hot stays hot, cold stays
// cold, unknown vertices join the cold tier — the shape of a merge wave
// remapping retired sticky assignments off a decommissioned shard, which
// must not re-hydrate dead history into the hot tier. Retire entries spill
// the vertex's current hot mapping into the cold map (no-ops for vertices
// already cold or never seen). Promote entries re-hydrate cold entries
// back into the hot tier at their current shard — the promotion-on-access
// lane fed by the read-side hint ring; a promotion never changes a
// lookup's answer and is a no-op for hot, unknown, or out-of-range
// vertices, so duplicated or stale hints are harmless.
//
// Shards, when positive, declares the shard count the batch's mappings are
// expressed against; it becomes the snapshot's epoch-consistent Shards().
// Zero inherits the current count. A batch both resizing and remapping is
// exactly one epoch flip — the directory's no-k/placement-tear guarantee —
// and Commit rejects any batch that would publish a view with a mapping at
// or above its own shard count.
type Batch struct {
	Set     []Move
	SetCold []Move
	Retire  []graph.VertexID
	Promote []graph.VertexID
	Shards  int
}

// Config parameterises a Directory.
type Config struct {
	// JournalDepth is how many recent snapshots stay reachable by epoch
	// through AtEpoch. Zero means the default of 16. The journal bounds
	// how long an in-flight reader can lag the writer and still re-pin
	// its epoch; snapshots older than the journal are garbage once the
	// last reader drops them.
	JournalDepth int
}

// Directory is the concurrent placement directory. Lookups (through
// Current/AtEpoch snapshots) are lock-free and safe from any number of
// goroutines; Commit/Place serialise internally, so multiple writers are
// safe too (though the intended shape is one publisher).
type Directory struct {
	mu   sync.Mutex
	view atomic.Pointer[Snapshot]

	journalDepth int
	journal      []*Snapshot // ring, len == journalDepth
	jhead        int

	// pageLive counts occupied slots per hot page (writer-owned; guarded
	// by mu) so retirement can drop pages that empty out.
	pageLive []int32

	// Cumulative writer-side counters (guarded by mu).
	flips, waveFlips, retired, rehydrated, promoted uint64
}

// New returns an empty directory at epoch zero.
func New(cfg Config) *Directory {
	if cfg.JournalDepth <= 0 {
		cfg.JournalDepth = 16
	}
	d := &Directory{
		journalDepth: cfg.JournalDepth,
		journal:      make([]*Snapshot, cfg.JournalDepth),
	}
	root := &Snapshot{}
	d.view.Store(root)
	d.journal[0] = root
	return d
}

// Current returns the latest published snapshot. The returned view is
// immutable; hold it for as many lookups as need to be mutually
// consistent, then drop it.
func (d *Directory) Current() *Snapshot { return d.view.Load() }

// Epoch returns the latest published epoch.
func (d *Directory) Epoch() uint64 { return d.view.Load().epoch }

// AtEpoch returns the journaled snapshot for epoch e, if the bounded
// journal still retains it.
func (d *Directory) AtEpoch(e uint64) (*Snapshot, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.journal {
		if s != nil && s.epoch == e {
			return s, true
		}
	}
	return nil, false
}

// ErrEpochEvicted reports that a requested epoch has aged out of the
// bounded journal (or was never published). Errors returned by PinEpoch
// match it with errors.Is.
var ErrEpochEvicted = errors.New("directory: epoch evicted from journal")

// PinEpoch returns the journaled snapshot for epoch e, or an error wrapping
// ErrEpochEvicted that names the epoch and the range the journal still
// retains — the typed form of the AtEpoch miss.
func (d *Directory) PinEpoch(e uint64) (*Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	oldest, newest := uint64(0), uint64(0)
	first := true
	for _, s := range d.journal {
		if s == nil {
			continue
		}
		if s.epoch == e {
			return s, nil
		}
		if first || s.epoch < oldest {
			oldest = s.epoch
		}
		if s.epoch > newest {
			newest = s.epoch
		}
		first = false
	}
	return nil, fmt.Errorf("%w: epoch %d (journal retains %d..%d)",
		ErrEpochEvicted, e, oldest, newest)
}

// Resolve returns the best available view for a reader that pinned epoch e:
// the exact journaled snapshot when the journal retains it, otherwise the
// newest published view with stale == true. It replaces the hand-rolled
// "AtEpoch, else Current" dance: an evicted (or not-yet-published) epoch
// degrades to a bounded-staleness read instead of an error, and the flag
// tells the caller to re-pin against the view it actually got.
func (d *Directory) Resolve(e uint64) (s *Snapshot, stale bool) {
	if s, ok := d.AtEpoch(e); ok {
		return s, false
	}
	return d.Current(), true
}

// Committer is the surface a Publisher commits through: the Directory
// itself, or a wrapper that injects faults or replication between the
// publisher and the directory. wave marks a repartition's epoch flip (the
// whole move set of one repartition as a single batch), so wrappers can
// treat flips differently from per-record placement flushes; the Directory
// counts it (Stats.WaveFlips) but applies both kinds identically.
type Committer interface {
	CommitBatch(b Batch, wave bool) (uint64, error)
}

// CommitBatch implements Committer. Wave commits are tallied separately in
// Stats.WaveFlips, so reports can split repartition flips from loose
// placement flushes.
func (d *Directory) CommitBatch(b Batch, wave bool) (uint64, error) {
	return d.commit(b, wave)
}

// Place maps a single vertex, as its own epoch flip. It is Commit of a
// one-entry batch; bulk callers should batch.
func (d *Directory) Place(v graph.VertexID, shard int) (uint64, error) {
	return d.Commit(Batch{Set: []Move{{V: v, To: shard}}})
}

// Commit atomically publishes one batch and returns the new epoch. An
// empty batch still flips the epoch (callers that want "no change, no
// flip" should skip the call — the Publisher does).
func (d *Directory) Commit(b Batch) (uint64, error) {
	return d.commit(b, false)
}

func (d *Directory) commit(b Batch, wave bool) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	// Validate the whole batch before touching any writer state: a
	// mid-batch rejection after mutating d.pageLive would leave the
	// occupancy bookkeeping out of sync with the (discarded) snapshot,
	// silently disabling page-drop compaction for the affected pages.
	cur := d.view.Load()
	if b.Shards < 0 {
		return 0, fmt.Errorf("directory: negative shard count %d", b.Shards)
	}
	shards := cur.shards
	if b.Shards > 0 {
		shards = b.Shards
	}
	for _, m := range b.Set {
		if m.To < 0 {
			return 0, fmt.Errorf("directory: set %d: negative shard %d", m.V, m.To)
		}
		if shards > 0 && m.To >= shards {
			return 0, fmt.Errorf("directory: set %d: shard %d out of range [0,%d)", m.V, m.To, shards)
		}
	}
	for _, m := range b.SetCold {
		if m.To < 0 {
			return 0, fmt.Errorf("directory: set-cold %d: negative shard %d", m.V, m.To)
		}
		if shards > 0 && m.To >= shards {
			return 0, fmt.Errorf("directory: set-cold %d: shard %d out of range [0,%d)", m.V, m.To, shards)
		}
	}
	if b.Shards > 0 && cur.shards > 0 && b.Shards < cur.shards {
		// Shrinking: every existing mapping at or above the new count must
		// be remapped below it by this very batch, or the flip would
		// publish a k/placement tear. The scan runs against the current
		// (immutable) view before anything mutates, so a rejection leaves
		// the writer state untouched. Resizes are rare; O(entries) here
		// buys an invariant every reader can rely on.
		remap := make(map[graph.VertexID]int, len(b.Set)+len(b.SetCold))
		for _, m := range b.Set {
			remap[m.V] = m.To
		}
		for _, m := range b.SetCold {
			remap[m.V] = m.To
		}
		var tearErr error
		cur.Each(func(v graph.VertexID, shard int) bool {
			if shard < b.Shards {
				return true
			}
			if to, ok := remap[v]; !ok || to >= b.Shards {
				tearErr = fmt.Errorf("directory: shrink to %d shards would orphan %d on shard %d",
					b.Shards, v, shard)
				return false
			}
			return true
		})
		if tearErr != nil {
			return 0, tearErr
		}
	}

	next := &Snapshot{
		epoch:   cur.epoch + 1,
		shards:  shards,
		pages:   cur.pages,
		cold:    cur.cold,
		hot:     cur.hot,
		entries: cur.entries,
	}
	// Copy-on-write bookkeeping for this commit: which pages (and whether
	// the page table and cold map) are already private to next.
	var pagesOwned, coldOwned bool
	owned := make(map[int]bool)

	ownPages := func(minLen int) {
		if !pagesOwned || len(next.pages) < minLen {
			grown := make([]*page, max(minLen, len(next.pages)))
			copy(grown, next.pages)
			next.pages = grown
			pagesOwned = true
		}
		if len(d.pageLive) < len(next.pages) {
			d.pageLive = append(d.pageLive, make([]int32, len(next.pages)-len(d.pageLive))...)
		}
	}
	ownPage := func(p int) *page {
		ownPages(p + 1)
		if owned[p] {
			return next.pages[p]
		}
		var np page
		if old := next.pages[p]; old != nil {
			np = *old
		} else {
			for i := range np {
				np[i] = noShard
			}
		}
		next.pages[p] = &np
		owned[p] = true
		return &np
	}
	ownCold := func() map[graph.VertexID]int32 {
		if !coldOwned {
			nc := make(map[graph.VertexID]int32, len(next.cold)+len(b.Set))
			for k, v := range next.cold {
				nc[k] = v
			}
			next.cold = nc
			coldOwned = true
		}
		return next.cold
	}

	for _, m := range b.Set {
		if m.V >= hotIDLimit {
			// Out-of-range IDs live in the cold map permanently.
			cold := ownCold()
			if _, ok := cold[m.V]; !ok {
				next.entries++
			}
			cold[m.V] = int32(m.To)
			continue
		}
		p := int(m.V >> pageBits)
		pg := ownPage(p)
		slot := m.V & pageMask
		if pg[slot] == noShard {
			// Hot miss: brand new, or a cold entry re-hydrating. Promotion
			// deletes the cold copy so the tiers stay disjoint.
			if next.cold != nil {
				if _, ok := next.cold[m.V]; ok {
					delete(ownCold(), m.V)
					next.entries--
					d.rehydrated++
				}
			}
			next.hot++
			next.entries++
			d.pageLive[p]++
		}
		pg[slot] = int32(m.To)
	}

	for _, m := range b.SetCold {
		// In-place, tier-preserving update: hot entries change under their
		// page, everything else lands (or stays) in the cold map.
		if m.V < hotIDLimit {
			p := int(m.V >> pageBits)
			if p < len(next.pages) && next.pages[p] != nil && next.pages[p][m.V&pageMask] != noShard {
				ownPage(p)[m.V&pageMask] = int32(m.To)
				continue
			}
		}
		cold := ownCold()
		if _, ok := cold[m.V]; !ok {
			next.entries++
		}
		cold[m.V] = int32(m.To)
	}

	for _, v := range b.Promote {
		// Promotion-on-access: move a cold entry back to the hot tier at
		// its current shard. Mapping, Len and every Lookup answer are
		// unchanged — only the tier moves — so replicas applying the same
		// stream converge on the same mapping regardless of hint timing.
		if v >= hotIDLimit || next.cold == nil {
			continue // permanently cold, or nothing spilled yet
		}
		sh, ok := next.cold[v]
		if !ok {
			continue // already hot, or never seen: stale hint, no-op
		}
		p := int(v >> pageBits)
		pg := ownPage(p)
		pg[v&pageMask] = sh
		delete(ownCold(), v)
		next.hot++
		d.pageLive[p]++
		d.promoted++
	}

	for _, v := range b.Retire {
		if v >= hotIDLimit {
			continue // already cold-resident by construction
		}
		p := int(v >> pageBits)
		if p >= len(next.pages) || next.pages[p] == nil {
			continue
		}
		slot := v & pageMask
		if next.pages[p][slot] == noShard {
			continue // unknown or already retired
		}
		pg := ownPage(p)
		ownCold()[v] = pg[slot]
		pg[slot] = noShard
		next.hot--
		d.pageLive[p]--
		d.retired++
		if d.pageLive[p] == 0 {
			// The spill emptied the page: drop it so the hot tier's
			// footprint tracks the live set (compaction).
			ownPages(p + 1)
			next.pages[p] = nil
			delete(owned, p)
		}
	}

	d.flips++
	if wave {
		d.waveFlips++
	}
	d.jhead = (d.jhead + 1) % d.journalDepth
	d.journal[d.jhead] = next
	d.view.Store(next)
	return next.epoch, nil
}

// Stats is a point-in-time summary of the directory for reporting.
type Stats struct {
	Epoch     uint64
	Shards    int
	Entries   int
	Hot, Cold int
	Pages     int // allocated (non-nil) hot pages in the current view
	Flips     uint64
	// WaveFlips counts the commits marked as repartition waves through the
	// Committer seam; Flips - WaveFlips are loose placement flushes.
	WaveFlips  uint64
	Retired    uint64
	Rehydrated uint64
	// Promoted counts cold entries re-hydrated through the Promote lane
	// (promotion-on-access); Rehydrated counts re-hydrations caused by Set.
	Promoted uint64
}

// Stats returns current counters.
func (d *Directory) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.view.Load()
	pages := 0
	for _, pg := range s.pages {
		if pg != nil {
			pages++
		}
	}
	return Stats{
		Epoch: s.epoch, Shards: s.shards, Entries: s.entries, Hot: s.hot,
		Cold: s.entries - s.hot, Pages: pages, Flips: d.flips,
		WaveFlips: d.waveFlips, Retired: d.retired, Rehydrated: d.rehydrated,
		Promoted: d.promoted,
	}
}
