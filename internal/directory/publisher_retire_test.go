package directory_test

// Retirement-flow coverage for the publisher path (external test package:
// it drives a real sim.Simulator, which the directory package itself must
// not depend on).

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

// TestPublisherRetirementFlow drives a decayed sim replay through a
// publisher-fed directory and pins the retirement contract:
//
//   - a sim.Config.OnRetire event is buffered, not applied: the vertex stays
//     hot until the publisher's next flush commits;
//   - on the next commit the entry is in the cold tier, same shard;
//   - a concurrent PinEpoch reader (run under -race) keeps a consistent
//     pinned view throughout: entries never vanish or change shard within
//     one pinned snapshot while retirements commit underneath it.
func TestPublisherRetirementFlow(t *testing.T) {
	eras := []workload.Era{{
		Name:          "mini",
		Start:         time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		End:           time.Date(2017, 1, 15, 0, 0, 0, 0, time.UTC),
		TxPerDayStart: 8_000, TxPerDayEnd: 20_000, Kind: workload.GrowthExponential,
		NewAccountFrac: 0.25, DeploysPerDay: 8,
		Mix: workload.TxMix{Transfer: 0.55, Token: 0.18, Wallet: 0.1, Crowdsale: 0.07, Game: 0.05, Airdrop: 0.05},
	}}
	gt, err := sim.Generate(workload.Config{
		Seed: 42, Scale: 0.05, Eras: eras, BlockInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := directory.New(directory.Config{})
	pub := directory.NewPublisher(dir)

	type retirement struct {
		v     graph.VertexID
		shard int
		// wasCold: the vertex was already in the cold tier when the event
		// fired — a re-retirement of a reappeared-but-never-replaced vertex.
		// Those stay cold; only hot→cold transitions assert "not cold until
		// the next commit".
		wasCold bool
		// epoch at event time: "buffered, not applied" is only observable
		// while no commit has intervened — a repartition wave in the same
		// Process call is itself a commit and may land the retirement.
		epoch uint64
	}
	var pending []retirement // OnRetire events since the last flush
	totalRetired := 0

	cfg := sim.Config{
		Method: sim.MethodTRMetis, K: 4,
		Window:            4 * time.Hour,
		MinRepartitionGap: 24 * time.Hour,
		TriggerWindows:    2,
		DecayHalfLife:     12 * time.Hour,
		Horizon:           24 * time.Hour,
		OnPlace:           pub.OnPlace,
		OnMove:            pub.OnMove,
		OnRetire: func(v graph.VertexID, shard int) {
			pub.OnRetire(v, shard)
			_, cold, ok := dir.Current().LookupTier(v)
			pending = append(pending, retirement{v, shard, ok && cold, dir.Epoch()})
			totalRetired++
		},
	}
	cfg.OnRepartition = func(_ time.Time, moves int) {
		if err := pub.OnRepartition(moves); err != nil {
			t.Error(err)
		}
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent pinned reader: pin the newest epoch, walk the snapshot,
	// then re-verify a prefix — within one pinned snapshot nothing may
	// vanish or move while the writer commits retirements underneath.
	var stop atomic.Bool
	var readerErr atomic.Pointer[string]
	fail := func(msg string) { readerErr.CompareAndSwap(nil, &msg) }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Loop until stopped AND at least one pin landed: on a single-CPU
		// box the replay can finish before this goroutine is ever
		// scheduled, and once the writer quiesces the first pin always
		// succeeds — so the non-vacuity check below never flakes.
		pins := 0
		for pins == 0 || !stop.Load() {
			e := dir.Epoch()
			snap, err := dir.PinEpoch(e)
			if err != nil {
				// The writer can push e out of the bounded journal between
				// the Epoch read and the pin — a benign race; re-pin.
				if errors.Is(err, directory.ErrEpochEvicted) {
					continue
				}
				fail("pin of current epoch failed: " + err.Error())
				return
			}
			pins++
			type ent struct {
				v  graph.VertexID
				sh int
			}
			var walked []ent
			snap.Each(func(v graph.VertexID, shard int) bool {
				walked = append(walked, ent{v, shard})
				return len(walked) < 512
			})
			for _, w := range walked {
				if sh, ok := snap.Lookup(w.v); !ok || sh != w.sh {
					fail("pinned snapshot mutated under reader")
					return
				}
			}
		}
		if pins == 0 {
			fail("reader never pinned")
		}
	}()

	checked := 0
	for _, rec := range gt.Records {
		if err := s.Process(rec); err != nil {
			t.Fatal(err)
		}
		if len(pending) > 0 {
			// Buffered, not applied: retirement is invisible until the next
			// commit. (OnRetire fires in the decay sweep; no flush has run.)
			before := dir.Current()
			for _, r := range pending {
				if r.wasCold || before.Epoch() != r.epoch {
					continue // re-retirement, or a wave already committed it
				}
				if _, cold, ok := before.LookupTier(r.v); ok && cold {
					t.Fatalf("vertex %d cold before the retiring flush", r.v)
				}
			}
			if err := pub.Flush(); err != nil {
				t.Fatal(err)
			}
			after := dir.Current()
			for _, r := range pending {
				sh, cold, ok := after.LookupTier(r.v)
				if !ok || !cold || sh != r.shard {
					t.Fatalf("vertex %d after retiring flush: (%d,cold=%v,ok=%v), want (%d,true,true)",
						r.v, sh, cold, ok, r.shard)
				}
				checked++
			}
			pending = pending[:0]
		} else if err := pub.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	s.Finish()

	if msg := readerErr.Load(); msg != nil {
		t.Fatal(*msg)
	}
	if totalRetired == 0 || checked == 0 {
		t.Fatalf("vacuous run: %d retirements fired, %d checked — decay never retired", totalRetired, checked)
	}
	if st := dir.Stats(); st.Retired == 0 || st.Cold == 0 {
		t.Errorf("directory counters missed the spill: %+v", st)
	}
}
