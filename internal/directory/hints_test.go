package directory

import (
	"sync"
	"testing"

	"ethpart/internal/graph"
)

func TestHintRingPushDrain(t *testing.T) {
	r := NewHintRing(64)
	if !r.Empty() {
		t.Fatal("fresh ring not empty")
	}
	for v := graph.VertexID(1); v <= 10; v++ {
		if !r.Push(v) {
			t.Fatalf("push %d rejected on non-full ring", v)
		}
	}
	if r.Empty() {
		t.Fatal("ring empty after pushes")
	}
	var got []graph.VertexID
	r.Drain(func(v graph.VertexID) { got = append(got, v) })
	if len(got) != 10 {
		t.Fatalf("drained %d hints, want 10", len(got))
	}
	for i, v := range got {
		if v != graph.VertexID(i+1) {
			t.Errorf("hint %d = %d, want %d (FIFO order)", i, v, i+1)
		}
	}
	if !r.Empty() {
		t.Error("ring not empty after full drain")
	}
}

func TestHintRingDropOnFull(t *testing.T) {
	r := NewHintRing(64) // min size
	for v := graph.VertexID(0); v < 64; v++ {
		if !r.Push(v) {
			t.Fatalf("push %d rejected before capacity", v)
		}
	}
	if r.Push(999) {
		t.Error("push on full ring must drop, not block or overwrite")
	}
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", r.Dropped())
	}
	n := 0
	r.Drain(func(graph.VertexID) { n++ })
	if n != 64 {
		t.Errorf("drained %d, want the 64 retained hints", n)
	}
	// Capacity is fully reusable after a drain.
	if !r.Push(1000) {
		t.Error("push rejected after drain freed the ring")
	}
}

func TestHintRingSizeRounding(t *testing.T) {
	r := NewHintRing(100) // rounds up to 128
	pushed := 0
	for v := graph.VertexID(0); v < 256; v++ {
		if r.Push(v) {
			pushed++
		}
	}
	if pushed != 128 {
		t.Errorf("accepted %d pushes, want 128 (pow2 round-up of 100)", pushed)
	}
	r0 := NewHintRing(0) // default
	if got := r0.Push(1); !got {
		t.Error("default-sized ring rejected first push")
	}
}

// TestHintRingConcurrent hammers the ring with concurrent producers while a
// single consumer drains: every hint is either delivered exactly once or
// counted dropped. Run under -race.
func TestHintRingConcurrent(t *testing.T) {
	r := NewHintRing(256)
	const producers = 8
	const perProducer = 10000

	var mu sync.Mutex
	seen := make(map[graph.VertexID]int)
	stop := make(chan struct{})
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		for {
			r.Drain(func(v graph.VertexID) {
				mu.Lock()
				seen[v]++
				mu.Unlock()
			})
			select {
			case <-stop:
				r.Drain(func(v graph.VertexID) {
					mu.Lock()
					seen[v]++
					mu.Unlock()
				})
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	var pushedCount int64
	var pushMu sync.Mutex
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < perProducer; i++ {
				v := graph.VertexID(p*perProducer + i)
				if r.Push(v) {
					local++
				}
			}
			pushMu.Lock()
			pushedCount += local
			pushMu.Unlock()
		}(p)
	}
	wg.Wait()
	close(stop)
	consumerWG.Wait()

	delivered := int64(0)
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("hint %d delivered %d times, want exactly once", v, n)
		}
		delivered++
	}
	if delivered != pushedCount {
		t.Errorf("delivered %d hints, accepted %d — hints lost in the ring", delivered, pushedCount)
	}
	if r.Pushed() != uint64(pushedCount) {
		t.Errorf("Pushed() = %d, want %d", r.Pushed(), pushedCount)
	}
	if delivered == 0 {
		t.Error("vacuous run: nothing delivered")
	}
}
