package directory

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ethpart/internal/graph"
)

// The concurrency property pinned here: every snapshot a reader can
// acquire — by loading Current at an arbitrary moment or by re-pinning a
// journaled epoch — is DeepEqual to a mutex-guarded oracle's state at that
// snapshot's epoch, under concurrent lookups, wave commits and retirement
// spills. Because the oracle applies each batch atomically under its lock,
// equality at every epoch is exactly the no-torn-wave guarantee; the test
// runs in CI's -race job, so it also pins the absence of data races in the
// RCU publication path.

// oracleState is one frozen epoch of the oracle: the full mapping plus
// which vertices are cold.
type oracleState struct {
	m    map[graph.VertexID]int
	cold map[graph.VertexID]bool
}

// oracle is the mutex-guarded reference implementation.
type oracle struct {
	mu     sync.Mutex
	cur    oracleState
	epochs map[uint64]oracleState // every epoch ever, for readers to join on
}

func newOracle() *oracle {
	o := &oracle{
		cur:    oracleState{m: map[graph.VertexID]int{}, cold: map[graph.VertexID]bool{}},
		epochs: map[uint64]oracleState{},
	}
	o.epochs[0] = o.snapshot()
	return o
}

func (o *oracle) snapshot() oracleState {
	s := oracleState{
		m:    make(map[graph.VertexID]int, len(o.cur.m)),
		cold: make(map[graph.VertexID]bool, len(o.cur.cold)),
	}
	for k, v := range o.cur.m {
		s.m[k] = v
	}
	for k := range o.cur.cold {
		s.cold[k] = true
	}
	return s
}

// apply mirrors Directory.Commit's semantics and records the post-state
// under the given epoch. It must be called BEFORE the directory commit so
// a reader that observes the new snapshot always finds the oracle entry.
func (o *oracle) apply(epoch uint64, b Batch) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, m := range b.Set {
		o.cur.m[m.V] = m.To
		delete(o.cur.cold, m.V) // sets (re)hydrate into the hot tier
	}
	for _, v := range b.Retire {
		if _, ok := o.cur.m[v]; ok && !o.cur.cold[v] {
			o.cur.cold[v] = true
		}
	}
	o.epochs[epoch] = o.snapshot()
}

func (o *oracle) at(epoch uint64) (oracleState, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.epochs[epoch]
	return s, ok
}

// materialise converts a directory snapshot into the oracle's shape.
func materialise(s *Snapshot) oracleState {
	st := oracleState{m: map[graph.VertexID]int{}, cold: map[graph.VertexID]bool{}}
	for p, pg := range s.pages {
		if pg == nil {
			continue
		}
		base := graph.VertexID(p) << pageBits
		for i, sh := range pg {
			if sh != noShard {
				st.m[base+graph.VertexID(i)] = int(sh)
			}
		}
	}
	for v, sh := range s.cold {
		st.m[v] = int(sh)
		st.cold[v] = true
	}
	return st
}

// TestRaceSnapshotsMatchOracle is the linearizability property test: one
// writer drives random place/wave/retire batches into the directory and
// the oracle; reader goroutines concurrently pin snapshots (current and
// journaled) and require them DeepEqual to the oracle at the same epoch.
func TestRaceSnapshotsMatchOracle(t *testing.T) {
	const (
		universe = 3 * pageSize // spans multiple pages
		commits  = 400
		readers  = 4
	)
	d := New(Config{JournalDepth: 8})
	o := newOracle()

	var stop atomic.Bool
	var fail atomic.Value // first reader error, as string

	check := func(s *Snapshot) {
		want, ok := o.at(s.Epoch())
		if !ok {
			fail.CompareAndSwap(nil, "oracle missing epoch")
			return
		}
		got := materialise(s)
		if !reflect.DeepEqual(got, want) {
			fail.CompareAndSwap(nil, "snapshot diverged from oracle")
		}
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				s := d.Current()
				// Point lookups against a consistent pinned view: two
				// reads of the same snapshot must agree even while waves
				// land underneath.
				v := graph.VertexID(rng.Intn(universe))
				a1, ok1 := s.Lookup(v)
				a2, ok2 := s.Lookup(v)
				if a1 != a2 || ok1 != ok2 {
					fail.CompareAndSwap(nil, "pinned snapshot changed between lookups")
					return
				}
				if rng.Intn(8) == 0 {
					check(s)
				}
				// Occasionally re-pin a recent epoch through the journal.
				if e := s.Epoch(); e > 0 && rng.Intn(8) == 0 {
					back := uint64(rng.Intn(4))
					if back > e {
						back = e
					}
					if old, ok := d.AtEpoch(e - back); ok {
						check(old)
					}
				}
			}
		}(int64(r + 1))
	}

	// Single writer: random batches, oracle first (so any published epoch
	// already has its oracle row), then the directory.
	rng := rand.New(rand.NewSource(99))
	placed := make([]graph.VertexID, 0, universe)
	seen := make(map[graph.VertexID]bool)
	for c := 0; c < commits && fail.Load() == nil; c++ {
		var b Batch
		switch rng.Intn(3) {
		case 0: // placement batch
			for i := 0; i < 1+rng.Intn(32); i++ {
				v := graph.VertexID(rng.Intn(universe))
				b.Set = append(b.Set, Move{V: v, To: rng.Intn(4)})
				if !seen[v] {
					seen[v] = true
					placed = append(placed, v)
				}
			}
		case 1: // wave over known vertices
			for i := 0; i < rng.Intn(64); i++ {
				if len(placed) == 0 {
					break
				}
				v := placed[rng.Intn(len(placed))]
				b.Set = append(b.Set, Move{V: v, To: rng.Intn(4)})
			}
		case 2: // retirement sweep
			for i := 0; i < rng.Intn(48); i++ {
				if len(placed) == 0 {
					break
				}
				b.Retire = append(b.Retire, placed[rng.Intn(len(placed))])
			}
		}
		o.apply(d.Epoch()+1, b)
		if _, err := d.Commit(b); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Final full-state equivalence.
	final, ok := o.at(d.Epoch())
	if !ok {
		t.Fatal("oracle missing final epoch")
	}
	if got := materialise(d.Current()); !reflect.DeepEqual(got, final) {
		t.Fatal("final directory state diverged from oracle")
	}
}

// TestRaceWavePairsNeverTear pins wave atomicity with an invariant that a
// torn wave would violate directly: vertices are committed in pairs
// (2i, 2i+1) that always share a shard, every wave moves whole pairs, and
// readers assert any snapshot agrees on each pair. A reader observing a
// half-applied wave would see the pair split.
func TestRaceWavePairsNeverTear(t *testing.T) {
	const pairs = 512
	d := New(Config{})
	var init []Move
	for i := 0; i < pairs; i++ {
		init = append(init, Move{V: graph.VertexID(2 * i), To: 0}, Move{V: graph.VertexID(2*i + 1), To: 0})
	}
	if _, err := d.Commit(Batch{Set: init}); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var torn atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				s := d.Current()
				i := rng.Intn(pairs)
				a, okA := s.Lookup(graph.VertexID(2 * i))
				b, okB := s.Lookup(graph.VertexID(2*i + 1))
				if !okA || !okB || a != b {
					torn.Store(true)
					return
				}
			}
		}(int64(r + 1))
	}

	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 300 && !torn.Load(); c++ {
		var wave []Move
		for i := 0; i < pairs; i++ {
			if rng.Intn(4) == 0 {
				to := rng.Intn(4)
				wave = append(wave,
					Move{V: graph.VertexID(2 * i), To: to},
					Move{V: graph.VertexID(2*i + 1), To: to})
			}
		}
		if _, err := d.Commit(Batch{Set: wave}); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if torn.Load() {
		t.Fatal("a reader observed a torn wave: pair split across shards")
	}
}
