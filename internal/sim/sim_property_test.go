package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/trace"
)

// randomRecords builds a time-ordered random interaction stream.
func randomRecords(rng *rand.Rand, n, vertices int, span time.Duration) []trace.Record {
	base := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC).Unix()
	step := int64(span.Seconds()) / int64(n+1)
	if step < 1 {
		step = 1
	}
	recs := make([]trace.Record, n)
	for i := range recs {
		kind := evm.KindTransaction
		if rng.Intn(4) == 0 {
			kind = evm.KindCall
		}
		recs[i] = trace.Record{
			Time: base + int64(i)*step,
			Kind: kind,
			From: uint64(rng.Intn(vertices)),
			To:   uint64(rng.Intn(vertices)),
		}
	}
	return recs
}

func TestPropertyWindowAccountingConsistent(t *testing.T) {
	// Properties over random streams and methods:
	//   1. sum of window interactions == number of records processed;
	//   2. every window's dynamic cut is in [0,1] and balance in [1,k];
	//   3. sum of window moves == TotalMoves;
	//   4. vertices in the result equal the distinct endpoints.
	f := func(seed int64, nRaw, vRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%200) + 20
		vertices := int(vRaw%40) + 4
		method := Methods()[int(mRaw)%len(Methods())]
		k := []int{2, 3, 4, 8}[int(kRaw)%4]

		s, err := New(Config{
			Method: method, K: k,
			Window:            2 * time.Hour,
			RepartitionEvery:  24 * time.Hour,
			MinRepartitionGap: 12 * time.Hour,
			TriggerWindows:    2,
		})
		if err != nil {
			return false
		}
		recs := randomRecords(rng, n, vertices, 4*24*time.Hour)
		distinct := map[uint64]bool{}
		for _, r := range recs {
			if err := s.Process(r); err != nil {
				return false
			}
			distinct[r.From] = true
			distinct[r.To] = true
		}
		res := s.Finish()

		var winSum, moveSum int64
		for _, w := range res.Windows {
			winSum += w.Interactions
			moveSum += w.Moves
			if w.DynamicCut < 0 || w.DynamicCut > 1 {
				return false
			}
			if w.DynamicBalance < 1-1e-9 || w.DynamicBalance > float64(k)+1e-9 {
				return false
			}
			if w.StaticBalance < 1-1e-9 || w.StaticBalance > float64(k)+1e-9 {
				return false
			}
		}
		if winSum != int64(n) {
			return false
		}
		if moveSum != res.TotalMoves {
			return false
		}
		return res.Vertices == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIncrementalCutMatchesRecount pins the incremental cut
// accounting (per-move deltas in applyParts plus per-record updates in
// Process) to a from-scratch O(E) recount over the final graph and
// assignment, across random streams, methods and shard counts.
func TestPropertyIncrementalCutMatchesRecount(t *testing.T) {
	f := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%250) + 30
		method := Methods()[int(mRaw)%len(Methods())]
		k := []int{2, 3, 4, 8}[int(kRaw)%4]

		s, err := New(Config{
			Method: method, K: k,
			Window:            2 * time.Hour,
			RepartitionEvery:  24 * time.Hour,
			MinRepartitionGap: 12 * time.Hour,
			TriggerWindows:    2,
		})
		if err != nil {
			return false
		}
		for _, r := range randomRecords(rng, n, 30, 5*24*time.Hour) {
			if err := s.Process(r); err != nil {
				return false
			}
		}
		res := s.Finish()

		var cutE, totE, cutW, totW int64
		s.Graph().Edges(func(u, v graph.VertexID, w int64) bool {
			su, _ := s.Assignment().ShardOf(u)
			sv, _ := s.Assignment().ShardOf(v)
			totE++
			totW += w
			if su != sv {
				cutE++
				cutW += w
			}
			return true
		})
		wantCut := 0.0
		if totE > 0 {
			wantCut = float64(cutE) / float64(totE)
		}
		if res.FinalStaticCut != wantCut {
			t.Errorf("%v k=%d: FinalStaticCut = %v, recount %v (cutE=%d totE=%d)",
				method, k, res.FinalStaticCut, wantCut, cutE, totE)
			return false
		}
		if s.cutEdges != cutE || s.totalEdges != totE ||
			s.cutWeight != cutW || s.totalWeight != totW {
			t.Errorf("%v k=%d: counters (%d/%d, %d/%d), recount (%d/%d, %d/%d)",
				method, k, s.cutEdges, s.totalEdges, s.cutWeight, s.totalWeight,
				cutE, totE, cutW, totW)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHashNeverMoves(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(Config{Method: MethodHash, K: 4})
		if err != nil {
			return false
		}
		for _, r := range randomRecords(rng, int(nRaw)+10, 20, 30*24*time.Hour) {
			if err := s.Process(r); err != nil {
				return false
			}
		}
		res := s.Finish()
		return res.TotalMoves == 0 && res.Repartitions == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAssignmentCoversAllVertices(t *testing.T) {
	// After any run, every graph vertex has a shard and per-shard counts
	// sum to the vertex count.
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		method := Methods()[int(mRaw)%len(Methods())]
		s, err := New(Config{Method: method, K: 3, RepartitionEvery: 24 * time.Hour})
		if err != nil {
			return false
		}
		for _, r := range randomRecords(rng, 150, 25, 3*24*time.Hour) {
			if err := s.Process(r); err != nil {
				return false
			}
		}
		ok := true
		s.Graph().Vertices(func(id graph.VertexID, _ graph.Kind, _ int64) bool {
			if _, assigned := s.Assignment().ShardOf(id); !assigned {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
		total := 0
		for _, c := range s.Assignment().Counts() {
			total += c
		}
		return total == s.Graph().VertexCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
