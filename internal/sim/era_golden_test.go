package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"ethpart/internal/workload"
)

// The pipeline refactor's contract: the era-based workload.Config path,
// re-expressed as one composition of the arrival/population/scenario
// layers, must produce byte-identical traces to the pre-pipeline
// generator. The hashes below were captured from the closed-loop
// generator immediately before the refactor; any drift in record content,
// order or count is a regression.

func goldenDate(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func goldenEras() []workload.Era {
	return []workload.Era{
		{
			Name:  "growth",
			Start: goldenDate(2016, time.January, 1), End: goldenDate(2016, time.January, 11),
			TxPerDayStart: 2_000, TxPerDayEnd: 8_000, Kind: workload.GrowthExponential,
			NewAccountFrac: 0.3, DeploysPerDay: 10,
			Mix: workload.TxMix{Transfer: 0.6, Token: 0.15, Wallet: 0.1, Crowdsale: 0.05, Game: 0.05, Airdrop: 0.05},
		},
		{
			Name:  "attack",
			Start: goldenDate(2016, time.January, 11), End: goldenDate(2016, time.January, 16),
			TxPerDayStart: 30_000, TxPerDayEnd: 30_000, Kind: workload.GrowthLinear,
			NewAccountFrac: 0.1, DummyFrac: 0.8, DeploysPerDay: 2,
			Mix: workload.TxMix{Transfer: 0.15, Token: 0.02, Wallet: 0.01, Crowdsale: 0.01, Game: 0.005, Airdrop: 0.005},
		},
	}
}

// hashTrace digests every field of every record, in order.
func hashTrace(gt *GeneratedTrace) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) { binary.BigEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	for _, r := range gt.Records {
		put(r.Block)
		put(uint64(r.Time))
		put(uint64(r.Kind))
		put(r.From)
		put(r.To)
		var fb, tb uint64
		if r.FromContract {
			fb = 1
		}
		if r.ToContract {
			tb = 1
		}
		put(fb)
		put(tb)
		put(r.Value)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestEraPathMatchesPreRefactorGoldens(t *testing.T) {
	cases := []struct {
		name     string
		cfg      workload.Config
		records  int
		vertices int
		sha      string
	}{
		{
			name:     "plain",
			cfg:      workload.Config{Seed: 7, Scale: 0.05, Eras: goldenEras(), BlockInterval: time.Hour},
			records:  24664,
			vertices: 10092,
			sha:      "780755c93f5b1992b2597b503b73f8607a6a8d074035a3d6325d41a40e9445af",
		},
		{
			name: "communities",
			cfg: workload.Config{Seed: 11, Scale: 0.03, Eras: goldenEras(), BlockInterval: 2 * time.Hour,
				Communities: 3, CommunityLocality: 0.9},
			records:  14631,
			vertices: 6033,
			sha:      "947e3da4377512768bef87e0c7af16d8180b3f4ddf97c079da5622673be14ccb",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gt, err := Generate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(gt.Records) != tc.records {
				t.Errorf("records = %d, want %d", len(gt.Records), tc.records)
			}
			if gt.Registry.Len() != tc.vertices {
				t.Errorf("vertices = %d, want %d", gt.Registry.Len(), tc.vertices)
			}
			if got := hashTrace(gt); got != tc.sha {
				t.Errorf("trace sha256 = %s, want %s", got, tc.sha)
			}
		})
	}
}
