package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
	"ethpart/internal/trace"
)

// replayAll drives recs through s and returns the finished result.
func replayAll(t *testing.T, s *Simulator, recs []trace.Record) *Result {
	t.Helper()
	for _, r := range recs {
		if err := s.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	return s.Finish()
}

// TestDecayIdentitySweepMatchesDisabled proves the decay plumbing is a true
// no-op when the sweep itself is the identity: with the per-window factor
// forced to exactly 1 and an unreachable horizon, every window, counter and
// graph observable must be byte-identical to a decay-disabled run. This
// pins the epoch stamping, the per-window sweep, and the counter recount
// (which must reproduce the incrementally maintained cut state exactly).
// TR-METIS is exercised separately: decay mode intentionally changes its
// repartition source graph, so identity-of-results does not apply to it.
func TestDecayIdentitySweepMatchesDisabled(t *testing.T) {
	recs := goldenStream()
	for _, m := range []Method{MethodHash, MethodKL, MethodMetis, MethodRMetis} {
		for _, k := range []int{2, 4} {
			base, err := New(goldenConfig(m, k))
			if err != nil {
				t.Fatal(err)
			}
			identCfg := goldenConfig(m, k)
			identCfg.DecayHalfLife = 24 * time.Hour // enables decay mode in New
			// Decay mode also switches PenaltyAuto placement to the Fennel
			// objective; pin the placement rule to the cap on both sides so
			// this test isolates the sweep plumbing (the Fennel path has its
			// own drifting-era golden in TestDecayPlacementGolden).
			identCfg.Placement = PenaltyCap
			ident, err := New(identCfg)
			if err != nil {
				t.Fatal(err)
			}
			// Force an identity sweep: decay mode stays on (live counts,
			// per-window sweeps, recounts all run), but the factor is
			// exactly 1 and the horizon can never be reached.
			ident.decayFactor = 1
			ident.decayMaxAge = math.MaxUint32
			want := replayAll(t, base, recs)
			got := replayAll(t, ident, recs)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v k=%d: identity-decay run differs from disabled run", m, k)
			}
			if got.Vertices != base.full.VertexCount() {
				t.Errorf("%v k=%d: identity decay changed the live graph", m, k)
			}
		}
	}
}

// driftingEras builds a long trace whose active set drifts completely
// every era — the regime the workload package's era schedule models, run
// long enough that full-history mode accumulates far more graph than any
// era keeps active. eras eras of 100 vertices each, windowsPerEra 4-hour
// windows per era, ~120 interactions per window.
func driftingEras(eras, windowsPerEra int) []trace.Record {
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	state := uint64(12345)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	var recs []trace.Record
	t := base
	for e := 0; e < eras; e++ {
		lo := uint64(e * 100)
		for w := 0; w < windowsPerEra; w++ {
			for i := 0; i < 120; i++ {
				recs = append(recs, trace.Record{
					Time: t, From: lo + next(100), To: lo + next(100),
				})
				t += 120 // 120 interactions spread over the 4-hour window
			}
		}
	}
	return recs
}

// TestDecayBoundsLiveGraph is the tentpole's headline property: on a long
// drifting-eras trace, full-history mode grows the cumulative graph
// linearly with trace length while decay mode keeps the peak live graph
// O(active set) — a few eras' worth of vertices, however long the trace
// runs.
func TestDecayBoundsLiveGraph(t *testing.T) {
	const eras, windowsPerEra = 24, 10
	recs := driftingEras(eras, windowsPerEra)

	run := func(cfg Config) (peak int, res *Result) {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range recs {
			if err := s.Process(r); err != nil {
				t.Fatal(err)
			}
			if i%500 == 0 {
				if n := s.Graph().VertexCount(); n > peak {
					peak = n
				}
			}
		}
		if n := s.Graph().VertexCount(); n > peak {
			peak = n
		}
		return peak, s.Finish()
	}

	cfg := Config{
		Method: MethodTRMetis, K: 4,
		Window:            4 * time.Hour,
		MinRepartitionGap: 24 * time.Hour,
		TriggerWindows:    2,
		CutThreshold:      0.2,
		BalanceThreshold:  1.5,
	}
	fullPeak, fullRes := run(cfg)

	decayCfg := cfg
	decayCfg.DecayHalfLife = 8 * time.Hour
	decayCfg.Horizon = 24 * time.Hour // 6 windows
	decayPeak, decayRes := run(decayCfg)

	t.Logf("full-history peak=%d, decay peak=%d (%d eras × 100 vertices)",
		fullPeak, decayPeak, eras)
	// Full history accumulates every era's vertices.
	if fullPeak != eras*100 {
		t.Errorf("full-history peak = %d, want %d", fullPeak, eras*100)
	}
	// Decay keeps the live graph within the horizon's worth of active set:
	// the current era plus what the 6-window horizon retains of the
	// previous one.
	if limit := 2*100 + 20; decayPeak > limit {
		t.Errorf("decay peak = %d, want <= %d (O(active set))", decayPeak, limit)
	}
	// Same replay on both sides: window count and total activity agree.
	if len(decayRes.Windows) != len(fullRes.Windows) {
		t.Errorf("window counts differ: %d vs %d", len(decayRes.Windows), len(fullRes.Windows))
	}
	var a, b int64
	for _, w := range fullRes.Windows {
		a += w.Interactions
	}
	for _, w := range decayRes.Windows {
		b += w.Interactions
	}
	if a != b || a != int64(len(recs)) {
		t.Errorf("interaction totals differ: full %d, decay %d, records %d", a, b, len(recs))
	}
	if decayRes.Repartitions == 0 {
		t.Error("decay run never repartitioned; the test should exercise the decayed-graph partitioner path")
	}
}

// TestPropertyDecayCountersExact is the retirement-invariant property test:
// under aggressive decay and retirement, with vertices constantly retiring
// and reappearing through placeIfNew, the incrementally maintained
// cumulative cut counters must equal a from-scratch recount over the live
// graph and assignment at the end of any random run.
func TestPropertyDecayCountersExact(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		method := Methods()[int(seed)%len(Methods())]
		k := []int{2, 3, 4, 8}[int(seed)%4]
		s, err := New(Config{
			Method: method, K: k,
			Window:            2 * time.Hour,
			RepartitionEvery:  24 * time.Hour,
			MinRepartitionGap: 12 * time.Hour,
			TriggerWindows:    2,
			DecayHalfLife:     2 * time.Hour,
			Horizon:           8 * time.Hour, // 4 windows: heavy churn
		})
		if err != nil {
			t.Fatal(err)
		}
		base := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC).Unix()
		ts := base
		for burst := 0; burst < 12; burst++ {
			lo := uint64(rng.Intn(30))
			for i := 0; i < 10+rng.Intn(60); i++ {
				r := trace.Record{Time: ts, From: lo + uint64(rng.Intn(25)), To: lo + uint64(rng.Intn(25))}
				if err := s.Process(r); err != nil {
					t.Fatal(err)
				}
				ts += int64(rng.Intn(400))
			}
			// Occasional multi-window gap so retirement actually happens.
			if rng.Intn(2) == 0 {
				ts += int64(time.Duration(1+rng.Intn(10)) * time.Hour / time.Second)
			}
		}

		var cutE, totE, cutW, totW int64
		s.Graph().Edges(func(u, v graph.VertexID, w int64) bool {
			su, okU := s.Assignment().ShardOf(u)
			sv, okV := s.Assignment().ShardOf(v)
			if !okU || !okV {
				t.Fatalf("seed %d: live vertex without assignment", seed)
			}
			totE++
			totW += w
			if su != sv {
				cutE++
				cutW += w
			}
			return true
		})
		if s.cutEdges != cutE || s.totalEdges != totE ||
			s.cutWeight != cutW || s.totalWeight != totW {
			t.Errorf("seed %d (%v k=%d): counters (%d/%d, %d/%d), recount (%d/%d, %d/%d)",
				seed, method, k, s.cutEdges, s.totalEdges, s.cutWeight, s.totalWeight,
				cutE, totE, cutW, totW)
		}
		// Retired vertices keep sticky assignments: the assignment covers
		// at least the live graph, and every live vertex is assigned.
		if s.Assignment().Len() < s.Graph().VertexCount() {
			t.Errorf("seed %d: %d assigned < %d live", seed, s.Assignment().Len(), s.Graph().VertexCount())
		}
		// The incrementally maintained live counts (placement capacity and
		// static balance both read them) must equal a per-shard recount of
		// the live graph: first sight, reappearance, retirement and moves
		// all have to keep them exact.
		liveLoads := make([]int64, k)
		s.Graph().Vertices(func(id graph.VertexID, _ graph.Kind, _ int64) bool {
			sh, _ := s.Assignment().ShardOf(id)
			liveLoads[sh]++
			return true
		})
		for sh := range liveLoads {
			if int64(s.liveCounts[sh]) != liveLoads[sh] {
				t.Errorf("seed %d: liveCounts[%d] = %d, live recount %d",
					seed, sh, s.liveCounts[sh], liveLoads[sh])
			}
		}
		if got, want := s.staticBalance(), metrics.LoadBalance(liveLoads); got != want {
			t.Errorf("seed %d: staticBalance = %v, live recount %v", seed, got, want)
		}
	}
}

// decayPlacementConfig is the drifting-era decay configuration of the
// placement-objective golden.
func decayPlacementConfig(p PlacementPenalty) Config {
	return Config{
		Method: MethodTRMetis, K: 4,
		Window:            4 * time.Hour,
		MinRepartitionGap: 24 * time.Hour,
		TriggerWindows:    2,
		CutThreshold:      0.2,
		BalanceThreshold:  1.5,
		DecayHalfLife:     8 * time.Hour,
		Horizon:           24 * time.Hour,
		Placement:         p,
	}
}

// TestDecayPlacementGolden pins the decay-aware placement objective on a
// drifting-era trace: under PenaltyAuto, decay mode feeds the decayed
// neighbour weights into the shared Fennel-style degree-based size penalty
// (PlaceVertexFennel), so first-sight placement and the decayed
// repartitioner optimise the same recency-weighted objective. The values
// were captured at the PR that introduced the objective; a drift here
// means the placement rule, the decay sweep, or the shared penalty
// changed.
func TestDecayPlacementGolden(t *testing.T) {
	recs := driftingEras(12, 8)
	s, err := New(decayPlacementConfig(PenaltyAuto))
	if err != nil {
		t.Fatal(err)
	}
	res := replayAll(t, s, recs)
	if !s.fennelPlace {
		t.Fatal("PenaltyAuto did not resolve to the Fennel objective in decay mode")
	}
	if len(res.Windows) != 96 || res.Repartitions != 15 ||
		res.TotalMoves != 1694 || res.Vertices != 100 ||
		!close9(res.OverallDynamicCut, 0.575319671) ||
		!close9(res.OverallDynamicBalance, 1.098962420) ||
		!close9(res.FinalStaticCut, 0.437655860) ||
		!close9(res.FinalStaticBalance, 2.120000000) {
		t.Errorf("decay placement drifted: windows=%d reparts=%d moves=%d verts=%d cut=%.9f bal=%.9f statCut=%.9f statBal=%.9f",
			len(res.Windows), res.Repartitions, res.TotalMoves, res.Vertices,
			res.OverallDynamicCut, res.OverallDynamicBalance,
			res.FinalStaticCut, res.FinalStaticBalance)
	}

	// The objective must actually differ from the cap rule on this trace —
	// otherwise the golden would pass vacuously with the dispatch broken.
	capSim, err := New(decayPlacementConfig(PenaltyCap))
	if err != nil {
		t.Fatal(err)
	}
	capRes := replayAll(t, capSim, recs)
	if capSim.fennelPlace {
		t.Fatal("PenaltyCap resolved to the Fennel objective")
	}
	if capRes.TotalMoves == res.TotalMoves &&
		capRes.OverallDynamicCut == res.OverallDynamicCut &&
		capRes.OverallDynamicBalance == res.OverallDynamicBalance {
		t.Error("cap and Fennel placements produced identical runs; the dispatch is dead")
	}
}

// TestHorizonWithoutHalfLifeRejected pins the config validation: a Horizon
// without a DecayHalfLife would be silently ignored (full-history mode
// while the caller believes memory is bounded), so New must refuse it.
func TestHorizonWithoutHalfLifeRejected(t *testing.T) {
	if _, err := New(Config{Method: MethodMetis, K: 2, Horizon: 24 * time.Hour}); err == nil {
		t.Error("Horizon without DecayHalfLife must be rejected")
	}
	if _, err := New(Config{Method: MethodMetis, K: 2,
		DecayHalfLife: 6 * time.Hour, Horizon: 24 * time.Hour}); err != nil {
		t.Errorf("valid decay config rejected: %v", err)
	}
}

// TestDecayHorizonMinimumIdleTime pins the retirement contract: entries
// retire only after being untouched for *at least* Horizon. Ages count
// whole windows and a fresh entry is already age 1 at the next sweep, so
// without the +1 in the maxAge computation an entry could retire up to one
// window early — and Horizon == Window would wipe the whole graph at every
// boundary.
func TestDecayHorizonMinimumIdleTime(t *testing.T) {
	s, err := New(Config{
		Method: MethodHash, K: 2,
		Window:        4 * time.Hour,
		DecayHalfLife: 4 * time.Hour,
		Horizon:       8 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	hour := int64(3600)
	if err := s.Process(rec(base, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Keep-alive traffic rolls one window boundary at a time.
	for w := int64(1); w <= 2; w++ {
		if err := s.Process(rec(base+4*w*hour, 5, 6)); err != nil {
			t.Fatal(err)
		}
		if !s.Graph().HasVertex(1) {
			t.Fatalf("vertex retired after %dh idle, horizon is 8h", 4*w)
		}
	}
	// The third boundary is the first at which the pair's idle time
	// provably reaches the 8h horizon.
	if err := s.Process(rec(base+12*hour, 5, 6)); err != nil {
		t.Fatal(err)
	}
	if s.Graph().HasVertex(1) || s.Graph().HasVertex(2) {
		t.Error("pair survived past the horizon")
	}
}

// TestDecayExtremeHalfLifeStaysEnabled guards the Exp2 underflow edge: a
// half-life thousands of times shorter than the window underflows the
// per-window factor to zero, which must not silently read as "decay off" —
// retirement has to keep running (weights just collapse to the floor of
// one within a sweep).
func TestDecayExtremeHalfLifeStaysEnabled(t *testing.T) {
	s, err := New(Config{
		Method: MethodHash, K: 2,
		Window:        4 * time.Hour,
		DecayHalfLife: time.Second, // Exp2(-14400) underflows to 0
		Horizon:       4 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.decayEnabled() {
		t.Fatal("decay silently disabled by factor underflow")
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	if err := s.Process(rec(base, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Two quiet windows later the pair must have retired (horizon = 1
	// window at this configuration).
	if err := s.Process(rec(base+9*3600, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Graph().HasVertex(1) || s.Graph().HasVertex(2) {
		t.Error("vertices survived past the horizon: decay sweep never ran")
	}
	if s.Graph().VertexCount() != 2 {
		t.Errorf("live vertices = %d, want 2 (the fresh pair)", s.Graph().VertexCount())
	}
}

// TestFinishIdempotent pins the Finish contract: a second call must not
// flush a duplicate trailing window or change any metric.
func TestFinishIdempotent(t *testing.T) {
	s, err := New(Config{Method: MethodHash, K: 2, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	for i := 0; i < 10; i++ {
		if err := s.Process(rec(base+int64(i)*600, uint64(i%4), uint64((i+1)%4))); err != nil {
			t.Fatal(err)
		}
	}
	first := s.Finish()
	windows := len(first.Windows)
	again := s.Finish()
	if len(again.Windows) != windows {
		t.Fatalf("second Finish appended windows: %d -> %d", windows, len(again.Windows))
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("second Finish changed the result")
	}
}
