package sim

import (
	"math/rand"
	"testing"
	"time"

	"ethpart/internal/trace"
)

// TestIncrementalCutMatchesRecountOracle pins the sweep-delta cut
// maintenance against the retained full-recount oracle: at several points
// of a churning decay run — including right after window rollovers with
// retirement — the incrementally maintained counters must equal what
// recountCut rebuilds from scratch over the live graph and assignment.
func TestIncrementalCutMatchesRecountOracle(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed + 77))
		method := Methods()[int(seed)%len(Methods())]
		s, err := New(Config{
			Method: method, K: 3,
			Window:            2 * time.Hour,
			RepartitionEvery:  20 * time.Hour,
			MinRepartitionGap: 10 * time.Hour,
			TriggerWindows:    2,
			DecayHalfLife:     3 * time.Hour,
			Horizon:           6 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		check := func(at string) {
			t.Helper()
			cutE, totE := s.cutEdges, s.totalEdges
			cutW, totW := s.cutWeight, s.totalWeight
			s.recountCut()
			if cutE != s.cutEdges || totE != s.totalEdges ||
				cutW != s.cutWeight || totW != s.totalWeight {
				t.Fatalf("seed %d (%v) %s: incremental (%d/%d, %d/%d) != oracle (%d/%d, %d/%d)",
					seed, method, at, cutE, totE, cutW, totW,
					s.cutEdges, s.totalEdges, s.cutWeight, s.totalWeight)
			}
		}
		ts := time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC).Unix()
		for burst := 0; burst < 10; burst++ {
			lo := uint64(rng.Intn(40))
			for i := 0; i < 15+rng.Intn(40); i++ {
				if err := s.Process(rec(ts, lo+uint64(rng.Intn(20)), lo+uint64(rng.Intn(20)))); err != nil {
					t.Fatal(err)
				}
				ts += int64(rng.Intn(500))
			}
			check("mid-run")
			// Multi-window gaps force sweeps with decays and retirements.
			if rng.Intn(2) == 0 {
				ts += int64(time.Duration(2+rng.Intn(12)) * time.Hour / time.Second)
			}
		}
		s.Finish()
		check("after Finish")
	}
}

// TestSweepObsPerWindow pins the sweep-observation stream: one SweepObs
// per flushed window, joined by window start; quiet windows flagged
// RecountSkipped; sweep work recorded only when a sweep ran.
func TestSweepObsPerWindow(t *testing.T) {
	s, err := New(Config{
		Method: MethodHash, K: 2,
		Window:        4 * time.Hour,
		DecayHalfLife: 4 * time.Hour,
		Horizon:       8 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	hour := int64(3600)
	// Window 0: traffic with weight above the floor (repeat edge).
	for i := int64(0); i < 3; i++ {
		if err := s.Process(rec(base+i*600, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Windows 1..4 roll over with one keep-alive pair far away.
	for w := int64(1); w <= 4; w++ {
		if err := s.Process(rec(base+4*w*hour, 8, 9)); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Finish()
	obs := s.Sweeps()
	if len(obs) != len(res.Windows) {
		t.Fatalf("got %d sweep observations for %d windows", len(obs), len(res.Windows))
	}
	for i := range obs {
		if !obs[i].Start.Equal(res.Windows[i].Start) {
			t.Errorf("obs[%d].Start = %v, window start %v", i, obs[i].Start, res.Windows[i].Start)
		}
	}
	// The first rollover decays the weight-3 edge: not quiet.
	if obs[0].RecountSkipped {
		t.Error("window 0's sweep decayed live weights but was flagged quiet")
	}
	if obs[0].SweepNanos <= 0 || obs[0].Touched == 0 {
		t.Errorf("window 0's sweep recorded no work: %+v", obs[0])
	}
	// The final flush has no sweep after it: pre-filled, quiet.
	last := obs[len(obs)-1]
	if !last.RecountSkipped || last.SweepNanos != 0 {
		t.Errorf("final window's observation should be the pre-filled no-sweep entry: %+v", last)
	}
	if last.LiveVertices != res.Vertices {
		t.Errorf("final LiveVertices = %d, result %d", last.LiveVertices, res.Vertices)
	}
	// At least one middle window must be a genuinely quiet sweep (floor
	// weights, nothing expiring) — the case whose cut maintenance is free.
	quiet := false
	for _, o := range obs[1 : len(obs)-1] {
		if o.RecountSkipped && o.LiveVertices > 0 {
			quiet = true
		}
	}
	if !quiet {
		t.Error("no quiet sweep observed; the skip path is untested by this trace")
	}
}

// decayedWindowTrace is a drifting two-community trace shaped so the raw
// period window and the decayed neighbourhood disagree: communities are
// bridged heavily in earlier periods, while the trigger period's own
// traffic is sparse and mostly intra-community.
func decayedWindowTrace() []trace.Record {
	base := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC).Unix()
	state := uint64(4242)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	var recs []trace.Record
	ts := base
	for day := 0; day < 12; day++ {
		for i := 0; i < 160; i++ {
			var from, to uint64
			switch {
			case day < 8 && i%3 == 0:
				// Early heavy cross-community bridges.
				from, to = next(12), 20+next(12)
			case i%2 == 0:
				from, to = next(12), next(12)
			default:
				from, to = 20+next(12), 20+next(12)
			}
			recs = append(recs, trace.Record{Time: ts, From: from, To: to})
			ts += 540 // 160 records/day
		}
	}
	return recs
}

// TestDecayedWindowAblation is the satellite's move-count ablation: giving
// KL and R-METIS the decayed repartition source (window ∪ decayed
// neighbourhood) must actually change their repartition decisions on a
// trace where recency-weighted adjacency disagrees with the raw period
// window — and must change nothing at all outside decay mode, where the
// flag is documented as inert.
func TestDecayedWindowAblation(t *testing.T) {
	recs := decayedWindowTrace()
	run := func(m Method, decayed bool, half time.Duration) *Result {
		cfg := Config{
			Method: m, K: 2,
			Window:           4 * time.Hour,
			RepartitionEvery: 2 * 24 * time.Hour,
			DecayedWindow:    decayed,
		}
		if half > 0 {
			cfg.DecayHalfLife = half
			cfg.Horizon = 8 * half
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return replayAll(t, s, recs)
	}
	for _, m := range []Method{MethodKL, MethodRMetis} {
		raw := run(m, false, 12*time.Hour)
		dec := run(m, true, 12*time.Hour)
		if raw.Repartitions == 0 {
			t.Fatalf("%v: trace fired no repartitions; ablation is vacuous", m)
		}
		if raw.TotalMoves == dec.TotalMoves {
			t.Errorf("%v: decayed window changed nothing (moves %d = %d); source dispatch is dead",
				m, raw.TotalMoves, dec.TotalMoves)
		}
		t.Logf("%v: moves raw=%d decayed=%d, cut raw=%.4f decayed=%.4f",
			m, raw.TotalMoves, dec.TotalMoves, raw.OverallDynamicCut, dec.OverallDynamicCut)

		// Outside decay mode the flag must be inert.
		plain := run(m, false, 0)
		flagged := run(m, true, 0)
		if plain.TotalMoves != flagged.TotalMoves || plain.Repartitions != flagged.Repartitions ||
			plain.OverallDynamicCut != flagged.OverallDynamicCut {
			t.Errorf("%v: DecayedWindow changed a non-decay run", m)
		}
	}
}
