package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunSweep replays every configuration in cfgs over the shared trace,
// spreading the runs across up to GOMAXPROCS workers. The trace is only
// read and every worker builds its own Simulator, so results are identical
// to calling Replay serially for each configuration; they are returned in
// cfgs order. The method×k sweeps behind Fig. 4 and Fig. 5 are exactly this
// shape — independent replays of one immutable history — which makes the
// sweep wall-clock scale with available cores.
//
// Peak memory scales with the worker count: every in-flight replay holds
// its own cumulative graph and assignment. On machines where that is too
// much, lower GOMAXPROCS for the process — the pool follows it.
//
// The first error encountered is returned (with its configuration's index);
// remaining runs still complete.
func RunSweep(gt *GeneratedTrace, cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	RunIndexed(len(cfgs), func(i int) {
		results[i], errs[i] = Replay(gt, cfgs[i])
	})
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sim: sweep config %d (%v k=%d): %w",
				i, cfgs[i].Method, cfgs[i].K, err)
		}
	}
	return results, nil
}

// RunIndexed runs fn for every index in [0, n) across up to GOMAXPROCS
// workers and waits for completion. It is the indexed worker pool behind
// RunSweep, exported for sweeps whose work items are not sim.Configs (the
// operational method×model matrix in internal/experiments uses it for
// opsim runs).
func RunIndexed(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
