package sim

import (
	"fmt"

	"ethpart/internal/graph"
	"ethpart/internal/trace"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

// GeneratedTrace is a fully materialised synthetic history: the record
// stream plus the lookups simulators need.
type GeneratedTrace struct {
	Records  []trace.Record
	Registry *trace.Registry
	Stats    workload.Stats
	// storageSlots maps vertex IDs to final storage footprints.
	storageSlots map[graph.VertexID]int
}

// StorageSlots reports the storage footprint of vertex v at the end of the
// history (an upper bound for mid-history moves, which is the conservative
// direction for the paper's "moving a contract moves its storage" point).
func (g *GeneratedTrace) StorageSlots(v graph.VertexID) int {
	return g.storageSlots[v]
}

// NewGeneratedTrace wraps an externally built record stream (synthetic
// drifting-era traces, converted real traces) in the form replays and the
// operational bridge consume. reg must cover every From/To ID of records;
// slots may be nil (no contract carries storage) or map vertex IDs to
// their synthetic storage footprints.
func NewGeneratedTrace(records []trace.Record, reg *trace.Registry, slots map[graph.VertexID]int) *GeneratedTrace {
	return &GeneratedTrace{Records: records, Registry: reg, storageSlots: slots}
}

// Generate runs the workload generator to completion and materialises the
// record stream. Generating once and replaying under many method
// configurations keeps method comparisons on identical histories.
func Generate(cfg workload.Config) (*GeneratedTrace, error) {
	gen, err := workload.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: building generator: %w", err)
	}
	reg := trace.NewRegistry()
	st := gen.Chain().State()
	isContract := func(a types.Address) bool { return len(st.GetCode(a)) > 0 }

	var records []trace.Record
	for {
		block, receipts, ok, err := gen.NextBlock()
		if err != nil {
			return nil, fmt.Errorf("sim: generating block: %w", err)
		}
		if !ok {
			break
		}
		if block == nil {
			continue
		}
		records = append(records, trace.FromReceipts(
			block.Header.Number, block.Header.Time, receipts, reg, isContract)...)
	}

	slots := make(map[graph.VertexID]int)
	for id := uint64(0); id < uint64(reg.Len()); id++ {
		if !reg.IsContract(id) {
			continue
		}
		if addr, ok := reg.Address(id); ok {
			if n := st.StorageSize(addr); n > 0 {
				slots[graph.VertexID(id)] = n
			}
		}
	}
	return &GeneratedTrace{
		Records:      records,
		Registry:     reg,
		Stats:        gen.Stats(),
		storageSlots: slots,
	}, nil
}

// Replay runs one simulation configuration over a generated trace.
func Replay(gt *GeneratedTrace, cfg Config) (*Result, error) {
	if cfg.StorageSlots == nil {
		cfg.StorageSlots = gt.StorageSlots
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, rec := range gt.Records {
		if err := s.Process(rec); err != nil {
			return nil, fmt.Errorf("sim: processing record: %w", err)
		}
	}
	return s.Finish(), nil
}
