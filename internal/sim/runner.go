package sim

import (
	"fmt"

	"ethpart/internal/graph"
	"ethpart/internal/trace"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

// GeneratedTrace is a fully materialised synthetic history: the record
// stream plus the lookups simulators need.
type GeneratedTrace struct {
	Records  []trace.Record
	Registry *trace.Registry
	Stats    workload.Stats
	// storageSlots maps vertex IDs to final storage footprints.
	storageSlots map[graph.VertexID]int
}

// StorageSlots reports the storage footprint of vertex v at the end of the
// history (an upper bound for mid-history moves, which is the conservative
// direction for the paper's "moving a contract moves its storage" point).
func (g *GeneratedTrace) StorageSlots(v graph.VertexID) int {
	return g.storageSlots[v]
}

// NewGeneratedTrace wraps an externally built record stream (synthetic
// drifting-era traces, converted real traces) in the form replays and the
// operational bridge consume. reg must cover every From/To ID of records;
// slots may be nil (no contract carries storage) or map vertex IDs to
// their synthetic storage footprints.
func NewGeneratedTrace(records []trace.Record, reg *trace.Registry, slots map[graph.VertexID]int) *GeneratedTrace {
	return &GeneratedTrace{Records: records, Registry: reg, storageSlots: slots}
}

// Generate runs the era workload composition to completion and
// materialises the record stream. Generating once and replaying under many
// method configurations keeps method comparisons on identical histories.
func Generate(cfg workload.Config) (*GeneratedTrace, error) {
	gen, err := workload.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: building generator: %w", err)
	}
	return Collect(gen.Stream())
}

// GenerateScenario runs a scenario composition to completion and
// materialises the record stream.
func GenerateScenario(sc workload.Scenario) (*GeneratedTrace, error) {
	gen, err := workload.NewScenario(sc)
	if err != nil {
		return nil, fmt.Errorf("sim: building scenario generator: %w", err)
	}
	return Collect(gen.Stream())
}

// Collect drains a workload stream into a materialised trace (records,
// registry, stats and final storage footprints).
func Collect(s *workload.Stream) (*GeneratedTrace, error) {
	records, _, err := trace.ReadAll(s) // workload streams emit no per-record errors
	if err != nil {
		return nil, fmt.Errorf("sim: generating block: %w", err)
	}
	return &GeneratedTrace{
		Records:      records,
		Registry:     s.Registry(),
		Stats:        s.Generator().Stats(),
		storageSlots: s.StorageSlots(),
	}, nil
}

// TraceFromRecords builds a replayable trace from a bare record stream
// (e.g. a loaded trace file): vertex IDs get synthetic addresses so the
// operational bridge can home accounts, contract vertices are marked from
// the records' endpoint kinds, and storage footprints are unknown (zero).
func TraceFromRecords(records []trace.Record) *GeneratedTrace {
	maxID := uint64(0)
	for i := range records {
		if records[i].From > maxID {
			maxID = records[i].From
		}
		if records[i].To > maxID {
			maxID = records[i].To
		}
	}
	reg := trace.NewRegistry()
	if len(records) > 0 {
		for id := uint64(0); id <= maxID; id++ {
			reg.ID(types.AddressFromSeq(id + 1))
		}
	}
	for i := range records {
		if records[i].FromContract {
			reg.MarkContract(records[i].From)
		}
		if records[i].ToContract {
			reg.MarkContract(records[i].To)
		}
	}
	return &GeneratedTrace{Records: records, Registry: reg}
}

// Replay runs one simulation configuration over a generated trace.
func Replay(gt *GeneratedTrace, cfg Config) (*Result, error) {
	if cfg.StorageSlots == nil {
		cfg.StorageSlots = gt.StorageSlots
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, rec := range gt.Records {
		if err := s.Process(rec); err != nil {
			return nil, fmt.Errorf("sim: processing record: %w", err)
		}
	}
	return s.Finish(), nil
}
