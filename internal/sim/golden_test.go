package sim

import (
	"testing"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/trace"
)

// goldenStream is a deterministic synthetic interaction stream (no
// math/rand dependency, so it can never drift with the standard library):
// a drifting active set with bursty traffic and quiet multi-window gaps.
// The LCG is deliberately private to this file — other tests carry their
// own copies — so no shared-helper refactor can ever change the golden
// inputs out from under the pinned values below.
func goldenStream() []trace.Record {
	base := time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC).Unix()
	var recs []trace.Record
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	t := base
	for phase := 0; phase < 6; phase++ {
		lo := uint64(phase * 12)
		for i := 0; i < 400; i++ {
			from := lo + next(30)
			to := lo + next(30)
			kind := evm.KindTransaction
			if next(4) == 0 {
				kind = evm.KindCall
			}
			recs = append(recs, trace.Record{Time: t, Kind: kind, From: from, To: to})
			t += 97 // ~400 records over ~11 hours
		}
		t += 3600 * 30 // 30-hour quiet gap: several empty 4h windows
	}
	return recs
}

// goldenConfig is the shared policy configuration of the golden runs.
func goldenConfig(m Method, k int) Config {
	return Config{
		Method: m, K: k,
		Window:            4 * time.Hour,
		RepartitionEvery:  2 * 24 * time.Hour,
		MinRepartitionGap: 24 * time.Hour,
		TriggerWindows:    3,
		CutThreshold:      0.3,
		BalanceThreshold:  1.5,
	}
}

// goldenRow is the pinned summary of one golden run.
type goldenRow struct {
	windows, repartitions int
	moves                 int64
	vertices              int
	dynCut, dynBal        float64
	staticCut, staticBal  float64
}

// TestGoldenDecayDisabled pins decay-disabled mode to the pre-decay-PR
// results: the decay subsystem is strictly opt-in, and a zero DecayHalfLife
// must reproduce full-history behaviour bit for bit. Every row was
// captured before the decay subsystem existed. The TR-METIS trigger fix
// (quiet windows neither erase nor — past a TriggerWindows-long gap —
// extend bad streaks, and firing requires a fresh degraded window) happens
// to be behaviour-preserving on this stream because its quiet gaps are all
// longer than TriggerWindows; the differing short-gap and stale-evidence
// cases are pinned by the TestTrigger* regression tests instead.
func TestGoldenDecayDisabled(t *testing.T) {
	want := map[[2]int]goldenRow{
		{int(MethodHash), 2}:    {54, 0, 0, 90, 0.505357908, 1.010775407, 0.500000000, 1.000000000},
		{int(MethodHash), 4}:    {54, 0, 0, 90, 0.775396485, 1.065708853, 0.767730496, 1.022222222},
		{int(MethodKL), 2}:      {54, 4, 33, 90, 0.464209173, 1.152757236, 0.452127660, 1.177777778},
		{int(MethodKL), 4}:      {54, 4, 71, 90, 0.750535791, 1.086837101, 0.722222222, 1.111111111},
		{int(MethodMetis), 2}:   {54, 4, 104, 90, 0.395627947, 1.237692795, 0.161938534, 1.066666667},
		{int(MethodMetis), 4}:   {54, 4, 178, 90, 0.618516931, 1.403760828, 0.463947991, 1.200000000},
		{int(MethodRMetis), 2}:  {54, 4, 72, 90, 0.445777968, 1.224593281, 0.445626478, 1.177777778},
		{int(MethodRMetis), 4}:  {54, 4, 104, 90, 0.705100729, 1.304880625, 0.699172577, 1.333333333},
		{int(MethodTRMetis), 2}: {54, 5, 107, 90, 0.454779254, 1.025142616, 0.413711584, 1.044444444},
		{int(MethodTRMetis), 4}: {54, 5, 150, 90, 0.706386627, 1.176420875, 0.663711584, 1.155555556},
	}
	recs := goldenStream()
	for _, m := range Methods() {
		for _, k := range []int{2, 4} {
			s, err := New(goldenConfig(m, k))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if err := s.Process(r); err != nil {
					t.Fatal(err)
				}
			}
			res := s.Finish()
			got := goldenRow{
				windows: len(res.Windows), repartitions: res.Repartitions,
				moves: res.TotalMoves, vertices: res.Vertices,
				dynCut: res.OverallDynamicCut, dynBal: res.OverallDynamicBalance,
				staticCut: res.FinalStaticCut, staticBal: res.FinalStaticBalance,
			}
			w := want[[2]int{int(m), k}]
			if got.windows != w.windows || got.repartitions != w.repartitions ||
				got.moves != w.moves || got.vertices != w.vertices ||
				!close9(got.dynCut, w.dynCut) || !close9(got.dynBal, w.dynBal) ||
				!close9(got.staticCut, w.staticCut) || !close9(got.staticBal, w.staticBal) {
				t.Errorf("%v k=%d: got %+v, want %+v", m, k, got, w)
			}
		}
	}
}

// close9 compares to the 9 decimal places the goldens were captured at.
func close9(a, b float64) bool {
	d := a - b
	return d < 5e-10 && d > -5e-10
}
