package sim

import (
	"math"
	"testing"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/trace"
	"ethpart/internal/workload"
)

// rec builds a simple account-to-account interaction record.
func rec(t int64, from, to uint64) trace.Record {
	return trace.Record{Time: t, Kind: evm.KindTransaction, From: from, To: to}
}

func TestParseMethod(t *testing.T) {
	for s, want := range map[string]Method{
		"hash": MethodHash, "KL": MethodKL, "metis": MethodMetis,
		"r-metis": MethodRMetis, "P-METIS": MethodRMetis, "tr-metis": MethodTRMetis,
	} {
		got, err := ParseMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("unknown method must error")
	}
}

func TestMethodString(t *testing.T) {
	want := []string{"HASH", "KL", "METIS", "R-METIS", "TR-METIS"}
	for i, m := range Methods() {
		if m.String() != want[i] {
			t.Errorf("method %d = %q, want %q", i, m.String(), want[i])
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Method: Method(99), K: 2}); err == nil {
		t.Error("invalid method must be rejected")
	}
}

func TestHashSimulatorBasics(t *testing.T) {
	s, err := New(Config{Method: MethodHash, K: 2, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	// 100 interactions across 4 hours among 20 vertices.
	for i := 0; i < 100; i++ {
		r := rec(base+int64(i)*144, uint64(i%20), uint64((i*7+3)%20))
		if err := s.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Finish()
	if len(res.Windows) < 4 {
		t.Fatalf("windows = %d, want >= 4", len(res.Windows))
	}
	if res.TotalMoves != 0 {
		t.Errorf("hash must never move vertices, got %d", res.TotalMoves)
	}
	if res.Repartitions != 0 {
		t.Errorf("hash must never repartition, got %d", res.Repartitions)
	}
	if res.Vertices != 20 {
		t.Errorf("vertices = %d, want 20", res.Vertices)
	}
	if res.OverallDynamicCut <= 0 || res.OverallDynamicCut > 1 {
		t.Errorf("dynamic cut = %v out of range", res.OverallDynamicCut)
	}
}

func TestWindowAccounting(t *testing.T) {
	s, err := New(Config{Method: MethodHash, K: 2, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	// Window 1: 3 interactions. Window 2 (one hour later): 1 interaction.
	for i := 0; i < 3; i++ {
		if err := s.Process(rec(base+int64(i), 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Process(rec(base+3700, 3, 4)); err != nil {
		t.Fatal(err)
	}
	res := s.Finish()
	if len(res.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(res.Windows))
	}
	if res.Windows[0].Interactions != 3 || res.Windows[1].Interactions != 1 {
		t.Errorf("window interaction counts = %d, %d",
			res.Windows[0].Interactions, res.Windows[1].Interactions)
	}
}

func TestEmptyWindowsAreEmitted(t *testing.T) {
	s, err := New(Config{Method: MethodHash, K: 2, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	if err := s.Process(rec(base, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Next interaction 5 hours later: windows in between must exist.
	if err := s.Process(rec(base+5*3600, 1, 2)); err != nil {
		t.Fatal(err)
	}
	res := s.Finish()
	if len(res.Windows) != 6 {
		t.Fatalf("windows = %d, want 6 (1 active + 4 empty + 1 active)", len(res.Windows))
	}
	for i := 1; i < 5; i++ {
		if res.Windows[i].Interactions != 0 {
			t.Errorf("window %d not empty", i)
		}
		if res.Windows[i].DynamicBalance != 1 {
			t.Errorf("empty window balance = %v, want 1", res.Windows[i].DynamicBalance)
		}
	}
}

func TestSelfInteractionNeverCut(t *testing.T) {
	s, err := New(Config{Method: MethodHash, K: 4, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	if err := s.Process(rec(base, 7, 7)); err != nil {
		t.Fatal(err)
	}
	res := s.Finish()
	if res.OverallDynamicCut != 0 {
		t.Errorf("self-interaction produced cut %v", res.OverallDynamicCut)
	}
	if res.Windows[0].Interactions != 1 {
		t.Error("self-interaction must still count as activity")
	}
}

func TestPeriodicRepartitionFires(t *testing.T) {
	s, err := New(Config{
		Method: MethodMetis, K: 2,
		Window:           time.Hour,
		RepartitionEvery: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	// 3 days of hourly interactions over two clusters joined weakly:
	// cluster A = vertices 0..9, cluster B = 10..19.
	n := int64(0)
	for day := 0; day < 3; day++ {
		for hour := 0; hour < 24; hour++ {
			ts := base + int64(day)*86400 + int64(hour)*3600
			for j := 0; j < 10; j++ {
				a := uint64(n % 10)
				b := uint64((n + 1) % 10)
				if err := s.Process(rec(ts, a, b)); err != nil {
					t.Fatal(err)
				}
				if err := s.Process(rec(ts, 10+a, 10+b)); err != nil {
					t.Fatal(err)
				}
				n++
			}
		}
	}
	res := s.Finish()
	if res.Repartitions < 2 {
		t.Errorf("repartitions = %d, want >= 2 over 3 days with 1-day period", res.Repartitions)
	}
	// After repartitioning the two clusters should be split nearly cleanly.
	if res.FinalStaticCut > 0.15 {
		t.Errorf("final static cut = %v, want small after repartitioning", res.FinalStaticCut)
	}
}

func TestAssignmentChangeCallbacks(t *testing.T) {
	// OnPlace fires exactly once per vertex, OnMove exactly once per
	// repartition move (and mirrors the live assignment), OnRepartition
	// once per policy firing with the batch's move count.
	placed := map[graph.VertexID]int{}
	var moveEvents, repartEvents int
	var movesSeen int
	var s *Simulator
	cfg := Config{
		Method: MethodMetis, K: 2,
		Window:           time.Hour,
		RepartitionEvery: 24 * time.Hour,
		OnPlace: func(v graph.VertexID, shard int) {
			if _, dup := placed[v]; dup {
				t.Errorf("OnPlace fired twice for %d", v)
			}
			placed[v] = shard
		},
		OnMove: func(v graph.VertexID, from, to int) {
			moveEvents++
			if got, ok := s.Assignment().ShardOf(v); !ok || got != to {
				t.Errorf("OnMove(%d, %d→%d) disagrees with assignment %d,%v", v, from, to, got, ok)
			}
		},
		OnRepartition: func(_ time.Time, moves int) {
			repartEvents++
			movesSeen += moves
		},
	}
	var err error
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	n := int64(0)
	for day := 0; day < 3; day++ {
		for hour := 0; hour < 24; hour++ {
			ts := base + int64(day)*86400 + int64(hour)*3600
			for j := 0; j < 10; j++ {
				a := uint64(n % 10)
				b := uint64((n + 1) % 10)
				if err := s.Process(rec(ts, a, b)); err != nil {
					t.Fatal(err)
				}
				if err := s.Process(rec(ts, 10+a, 10+b)); err != nil {
					t.Fatal(err)
				}
				n++
			}
		}
	}
	res := s.Finish()
	if len(placed) != res.Vertices {
		t.Errorf("OnPlace fired for %d vertices, graph has %d", len(placed), res.Vertices)
	}
	if int64(moveEvents) != res.TotalMoves {
		t.Errorf("OnMove fired %d times, result counts %d moves", moveEvents, res.TotalMoves)
	}
	if repartEvents != res.Repartitions {
		t.Errorf("OnRepartition fired %d times, result counts %d", repartEvents, res.Repartitions)
	}
	if int64(movesSeen) != res.TotalMoves {
		t.Errorf("OnRepartition move totals %d, result counts %d", movesSeen, res.TotalMoves)
	}
	if res.Repartitions == 0 {
		t.Fatal("test needs at least one repartition to exercise OnMove")
	}
}

func TestTRMetisOnlyFiresAboveThreshold(t *testing.T) {
	mk := func(cut float64) *Result {
		s, err := New(Config{
			Method: MethodTRMetis, K: 2,
			Window:            time.Hour,
			CutThreshold:      cut,
			BalanceThreshold:  99, // effectively disabled
			MinRepartitionGap: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
		// Two clusters with a steady trickle of cross-cluster traffic, so
		// every window has a small but non-zero dynamic cut.
		n := int64(0)
		for hour := 0; hour < 48; hour++ {
			ts := base + int64(hour)*3600
			for j := 0; j < 20; j++ {
				a := uint64(n % 10)
				b := uint64((n + 3) % 10)
				if err := s.Process(rec(ts, a, b)); err != nil {
					t.Fatal(err)
				}
				if err := s.Process(rec(ts, 10+a, 10+b)); err != nil {
					t.Fatal(err)
				}
				n++
			}
			if err := s.Process(rec(ts, uint64(n%10), 10+uint64(n%10))); err != nil {
				t.Fatal(err)
			}
		}
		return s.Finish()
	}
	// With an unreachable cut threshold nothing fires...
	if res := mk(1.1); res.Repartitions != 0 {
		t.Errorf("repartitions = %d with unreachable threshold", res.Repartitions)
	}
	// ...with a tiny threshold the trigger fires (placement leaves some
	// cross edges on this adversarial interleaving).
	if res := mk(0.0001); res.Repartitions == 0 {
		t.Error("no repartition despite tiny threshold")
	}
}

// smallTrace generates a compact two-week history shared by the
// integration tests below.
func smallTrace(t *testing.T) *GeneratedTrace {
	t.Helper()
	eras := []workload.Era{{
		Name:          "mini",
		Start:         time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		End:           time.Date(2017, 1, 15, 0, 0, 0, 0, time.UTC),
		TxPerDayStart: 8_000, TxPerDayEnd: 20_000, Kind: workload.GrowthExponential,
		NewAccountFrac: 0.25, DeploysPerDay: 8,
		Mix: workload.TxMix{Transfer: 0.55, Token: 0.18, Wallet: 0.1, Crowdsale: 0.07, Game: 0.05, Airdrop: 0.05},
	}}
	gt, err := Generate(workload.Config{
		Seed: 42, Scale: 0.05, Eras: eras, BlockInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Records) < 2000 {
		t.Fatalf("tiny trace: %d records", len(gt.Records))
	}
	return gt
}

func TestIntegrationMethodShapes(t *testing.T) {
	// The paper's qualitative ordering on a real-ish workload:
	//   - hash: cut ≈ 1/2 at k=2, perfect static balance, zero moves
	//   - multilevel (METIS): cut well below hash
	//   - TR-METIS: fewer moves than R-METIS
	gt := smallTrace(t)

	results := map[Method]*Result{}
	for _, m := range Methods() {
		res, err := Replay(gt, Config{
			Method: m, K: 2,
			Window:            4 * time.Hour,
			RepartitionEvery:  3 * 24 * time.Hour,
			CutThreshold:      0.45,
			BalanceThreshold:  1.6,
			MinRepartitionGap: 2 * 24 * time.Hour,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		results[m] = res
		t.Logf("%-8v cut=%.3f dynBal=%.3f moves=%d reparts=%d",
			m, res.OverallDynamicCut, res.OverallDynamicBalance, res.TotalMoves, res.Repartitions)
	}

	hash := results[MethodHash]
	if hash.TotalMoves != 0 {
		t.Errorf("hash moves = %d, want 0", hash.TotalMoves)
	}
	if math.Abs(hash.OverallDynamicCut-0.5) > 0.12 {
		t.Errorf("hash dynamic cut = %.3f, want ≈ 0.5", hash.OverallDynamicCut)
	}
	if hash.FinalStaticBalance > 1.1 {
		t.Errorf("hash static balance = %.3f, want ≈ 1", hash.FinalStaticBalance)
	}

	metis := results[MethodMetis]
	if metis.OverallDynamicCut >= hash.OverallDynamicCut {
		t.Errorf("METIS cut %.3f not below hash %.3f",
			metis.OverallDynamicCut, hash.OverallDynamicCut)
	}
	if metis.TotalMoves == 0 {
		t.Error("METIS over a growing graph should move vertices")
	}

	r := results[MethodRMetis]
	tr := results[MethodTRMetis]
	if tr.TotalMoves > r.TotalMoves {
		t.Errorf("TR-METIS moves %d exceed R-METIS %d", tr.TotalMoves, r.TotalMoves)
	}
	if tr.Repartitions > r.Repartitions {
		t.Errorf("TR-METIS repartitions %d exceed R-METIS %d", tr.Repartitions, r.Repartitions)
	}

	kl := results[MethodKL]
	if kl.OverallDynamicCut > hash.OverallDynamicCut+0.05 {
		t.Errorf("KL cut %.3f worse than hash %.3f", kl.OverallDynamicCut, hash.OverallDynamicCut)
	}
}

func TestIntegrationCutGrowsWithK(t *testing.T) {
	gt := smallTrace(t)
	var prev float64
	for _, k := range []int{2, 4, 8} {
		res, err := Replay(gt, Config{Method: MethodHash, K: k})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k-1) / float64(k)
		if math.Abs(res.OverallDynamicCut-want) > 0.15 {
			t.Errorf("k=%d hash cut %.3f, want ≈ %.3f", k, res.OverallDynamicCut, want)
		}
		if res.OverallDynamicCut <= prev {
			t.Errorf("cut did not grow with k: %.3f after %.3f", res.OverallDynamicCut, prev)
		}
		prev = res.OverallDynamicCut
	}
}

func TestReplayDeterministic(t *testing.T) {
	gt := smallTrace(t)
	cfg := Config{Method: MethodRMetis, K: 4, RepartitionEvery: 3 * 24 * time.Hour}
	a, err := Replay(gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(gt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMoves != b.TotalMoves || a.OverallDynamicCut != b.OverallDynamicCut ||
		len(a.Windows) != len(b.Windows) {
		t.Error("replay must be deterministic")
	}
}

func TestMovedSlotsAccounted(t *testing.T) {
	gt := smallTrace(t)
	res, err := Replay(gt, Config{
		Method: MethodMetis, K: 2, RepartitionEvery: 3 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMoves > 0 && res.TotalMovedSlots == 0 {
		t.Log("note: no contract among moved vertices (acceptable but unusual)")
	}
	if res.TotalMovedSlots < 0 {
		t.Error("negative moved slots")
	}
}
