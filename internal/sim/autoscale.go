// Autoscaling: the saturation-driven shard-count controller (DESIGN.md
// §13). The simulator's K stops being a lifetime constant and becomes a
// control variable: at each window boundary the controller reads the
// saturation signals already on hand — per-shard window load, the window's
// cross-shard ratio from the cut counters, live counts — and, behind
// hysteresis and a cooldown shared with the repartition policy, resizes the
// shard set. A split re-partitions the (decayed) live graph at the new k; a
// merge drains the dropped highest-index shards into the least-loaded
// survivors. Both are ordinary repartition waves: every remap flows through
// the same moveCutDelta/Assign/OnMove machinery, so downstream observers
// (directory publisher, operational chain) need no new move concepts — only
// the shard-count change itself, delivered via Config.OnResize after the
// wave's last OnMove.

package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ethpart/internal/graph"
)

// AutoscaleConfig parameterises the shard autoscaler. The zero value is
// disabled; when Enabled, unset fields take the defaults documented below.
type AutoscaleConfig struct {
	// Enabled arms the controller.
	Enabled bool
	// KMin and KMax bound the shard count. Defaults: 1 and 4×K.
	KMin, KMax int
	// TargetWindowLoad is the interaction load one shard is provisioned to
	// serve per window — the capacity unit the high/low water marks are
	// fractions of. Default 1024.
	TargetWindowLoad int64
	// SplitHighWater: a window whose hottest shard served at least
	// SplitHighWater×TargetWindowLoad counts toward a split. Default 0.9.
	SplitHighWater float64
	// MergeLowWater: a window whose *total* load is at most
	// MergeLowWater×TargetWindowLoad×k (the fleet mostly idle) counts
	// toward a merge, as does an entirely quiet window. Default 0.35.
	MergeLowWater float64
	// HysteresisWindows is how many consecutive hot (resp. cold) windows
	// must accumulate before a resize fires; a moderate window resets both
	// streaks. Default 2.
	HysteresisWindows int
	// Cooldown is the minimum time between a resize and any previous
	// repartition wave — shared with the repartition policy in both
	// directions, since a resize is itself a wave that advances the same
	// clock. Default: the (defaulted) MinRepartitionGap.
	Cooldown time.Duration
}

// autoscaleTargetUtil is the utilisation the desired shard count packs the
// observed load to: k′ = ceil(load / (TargetWindowLoad × util)). Sizing to
// ~60% rather than 100% leaves headroom so the fleet doesn't sit exactly at
// the split high water after every resize.
const autoscaleTargetUtil = 0.6

// withDefaults fills unset fields; k is the (defaulted) initial shard
// count and gap the defaulted MinRepartitionGap.
func (a AutoscaleConfig) withDefaults(k int, gap time.Duration) AutoscaleConfig {
	if a.KMin <= 0 {
		a.KMin = 1
	}
	if a.KMax <= 0 {
		a.KMax = 4 * k
	}
	if a.TargetWindowLoad <= 0 {
		a.TargetWindowLoad = 1024
	}
	if a.SplitHighWater <= 0 {
		a.SplitHighWater = 0.9
	}
	if a.MergeLowWater <= 0 {
		a.MergeLowWater = 0.35
	}
	if a.HysteresisWindows <= 0 {
		a.HysteresisWindows = 2
	}
	if a.Cooldown <= 0 {
		a.Cooldown = gap
	}
	return a
}

// validate checks the (defaulted) config against the initial shard count.
func (a AutoscaleConfig) validate(k int) error {
	if a.KMin > k || k > a.KMax {
		return fmt.Errorf("sim: autoscale: initial K=%d outside [KMin=%d, KMax=%d]", k, a.KMin, a.KMax)
	}
	if a.MergeLowWater >= a.SplitHighWater {
		return fmt.Errorf("sim: autoscale: MergeLowWater %.3f must be below SplitHighWater %.3f",
			a.MergeLowWater, a.SplitHighWater)
	}
	return nil
}

// ResizeEvent records one autoscaler firing.
type ResizeEvent struct {
	// At is the window boundary the resize fired on.
	At time.Time
	// FromK and ToK are the shard counts before and after.
	FromK, ToK int
	// Moves is the number of vertices the scale wave re-assigned.
	Moves int
}

// maybeResize runs the controller at a window boundary, after decayStep and
// before the repartition policy. The signals it reads describe the window
// flushWindow just closed.
func (s *Simulator) maybeResize(now time.Time) error {
	ac := s.cfg.Autoscale
	if !ac.Enabled {
		return nil
	}
	k := s.cfg.K
	target := float64(ac.TargetWindowLoad)
	maxLoad := float64(s.lastWinMaxLoad)
	sumLoad := float64(s.lastWinSumLoad)

	hot := maxLoad >= ac.SplitHighWater*target
	// Locality damper: when the window's cross-shard ratio already exceeds
	// the hash bound at k+1 shards, a split cannot buy locality — every
	// extra shard only adds coordination. Only true saturation (twice the
	// high water) still justifies splitting for capacity alone.
	if hot && s.lastWinCut >= float64(k)/float64(k+1) && maxLoad < 2*ac.SplitHighWater*target {
		hot = false
	}
	cold := s.lastWinInteractions == 0 || sumLoad <= ac.MergeLowWater*target*float64(k)
	switch {
	case hot:
		s.hotStreak++
		s.coldStreak = 0
	case cold:
		s.coldStreak++
		s.hotStreak = 0
	default:
		s.hotStreak, s.coldStreak = 0, 0
	}

	// Desired k packs the window's observed load at the target utilisation;
	// the direction of the firing clamps it so a split always grows and a
	// merge always shrinks, whatever the point estimate says.
	desired := int(math.Ceil(sumLoad / (target * autoscaleTargetUtil)))
	var newK int
	switch {
	case s.hotStreak >= ac.HysteresisWindows && k < ac.KMax:
		newK = clampInt(desired, k+1, ac.KMax)
	case s.coldStreak >= ac.HysteresisWindows && k > ac.KMin:
		newK = clampInt(desired, ac.KMin, k-1)
	default:
		return nil
	}
	if now.Sub(s.lastRepart) < ac.Cooldown {
		return nil // wave cooldown shared with the repartition policy
	}
	s.hotStreak, s.coldStreak = 0, 0
	return s.resize(now, newK)
}

// resize executes one k → newK transition as a repartition wave and fires
// OnResize after the wave's last OnMove.
func (s *Simulator) resize(now time.Time, newK int) error {
	oldK := s.cfg.K
	var moves int
	var err error
	if newK > oldK {
		moves, err = s.growShards(newK)
	} else {
		moves, err = s.shrinkShards(newK)
	}
	if err != nil {
		return fmt.Errorf("sim: resize %d -> %d: %w", oldK, newK, err)
	}
	// Defaulted TR-METIS thresholds were derived from k; re-derive them at
	// the new k. Caller-pinned values stay pinned.
	if s.cutDefaulted {
		s.cfg.CutThreshold = defaultCutThreshold(newK)
	}
	if s.balDefaulted {
		s.cfg.BalanceThreshold = defaultBalanceThreshold(newK)
	}
	// A resize is a repartition wave: the window graph restarts, the shared
	// wave clock advances (suppressing the repartition policy until its own
	// gap elapses again), and trigger evidence gathered at the old k is
	// discarded.
	s.window = graph.New()
	s.lastRepart = now
	s.badWindows = 0
	s.winReparted = true
	s.winMoves += int64(moves)
	s.result.TotalMoves += int64(moves)
	s.result.Resizes = append(s.result.Resizes, ResizeEvent{At: now, FromK: oldK, ToK: newK, Moves: moves})
	if s.cfg.OnResize != nil {
		s.cfg.OnResize(now, oldK, newK, moves)
	}
	return nil
}

// growShards is the split path: new empty shards appear at the top of the
// range, then the live graph is re-spread across all newK shards — a full
// re-hash at the new modulus for MethodHash, a multilevel re-partition of
// the (decayed) live graph for every graph-aware method. Retired vertices
// keep their sticky assignments, all of which remain valid after a grow.
func (s *Simulator) growShards(newK int) (int, error) {
	if err := s.assign.Resize(newK); err != nil {
		return 0, err
	}
	s.resizeScratch(newK)
	s.cfg.K = newK
	if s.cfg.Method == MethodHash || s.cfg.HashPlacement {
		return s.rehashAll(newK)
	}
	if s.full.VertexCount() == 0 {
		return 0, nil
	}
	csr := s.csrb.Build(s.full)
	parts, err := s.ml.Partition(csr, newK)
	if err != nil {
		return 0, fmt.Errorf("scale repartition: %w", err)
	}
	return s.applyParts(csr, parts)
}

// shrinkShards is the merge path: the dropped shards (index >= newK) drain
// into the least-loaded survivors — except under MethodHash, where the
// whole assignment re-hashes at the new modulus, because "shard = hash mod
// k" is the method's defining invariant and future placements will use it.
// Only once every dropped shard is empty does the assignment's k actually
// shrink, so the partition layer's no-orphan check holds by construction.
func (s *Simulator) shrinkShards(newK int) (int, error) {
	oldK := s.cfg.K
	if s.cfg.Method == MethodHash || s.cfg.HashPlacement {
		moves, err := s.rehashAll(newK)
		if err != nil {
			return 0, err
		}
		if err := s.assign.Resize(newK); err != nil {
			return 0, err
		}
		s.cfg.K = newK
		s.resizeScratch(newK)
		return moves, nil
	}

	// Deterministic drain order: every vertex stranded on a dropped shard,
	// sorted by ID (Each yields dense IDs in order but spilled IDs in map
	// order).
	var drain []graph.VertexID
	s.assign.Each(func(v graph.VertexID, shard int) bool {
		if shard >= newK {
			drain = append(drain, v)
		}
		return true
	})
	sort.Slice(drain, func(i, j int) bool { return drain[i] < drain[j] })

	// recv[(from-newK)*newK+to] counts vertices shard `from` handed to
	// survivor `to`, to fold served-load history below.
	recv := make([]int64, (oldK-newK)*newK)
	for _, v := range drain {
		from, _ := s.assign.ShardOf(v)
		to := 0
		for t := 1; t < newK; t++ {
			if s.shardFill(t) < s.shardFill(to) {
				to = t
			}
		}
		if err := s.applyResizeMove(v, from, to); err != nil {
			return 0, err
		}
		recv[(from-newK)*newK+to]++
	}
	// Fold each drained shard's whole-run served load into the survivor
	// that absorbed most of its vertices (lowest index on ties), so
	// OverallDynamicBalance keeps accounting every interaction ever served.
	for from := newK; from < oldK; from++ {
		best := 0
		for t := 1; t < newK; t++ {
			if recv[(from-newK)*newK+t] > recv[(from-newK)*newK+best] {
				best = t
			}
		}
		s.runLoad[best] += s.runLoad[from]
	}
	if err := s.assign.Resize(newK); err != nil {
		return 0, err
	}
	s.cfg.K = newK
	s.resizeScratch(newK)
	return len(drain), nil
}

// rehashAll re-assigns every assigned vertex (live and retired) to its hash
// shard at modulus newK. Moves are collected first and applied in vertex-ID
// order so the wave — and every OnMove — is deterministic even with spilled
// IDs in play.
func (s *Simulator) rehashAll(newK int) (int, error) {
	type mv struct {
		v        graph.VertexID
		from, to int
	}
	var pending []mv
	s.assign.Each(func(v graph.VertexID, shard int) bool {
		if to := s.hash.ShardOf(v, newK); to != shard {
			pending = append(pending, mv{v, shard, to})
		}
		return true
	})
	sort.Slice(pending, func(i, j int) bool { return pending[i].v < pending[j].v })
	for _, m := range pending {
		if err := s.applyResizeMove(m.v, m.from, m.to); err != nil {
			return 0, err
		}
	}
	return len(pending), nil
}

// applyResizeMove re-assigns one vertex during a scale wave with the same
// accounting as applyParts: cut delta before the assignment flips, moved
// storage, live counts for live vertices, OnMove after.
func (s *Simulator) applyResizeMove(v graph.VertexID, from, to int) error {
	s.moveCutDelta(v, from, to)
	if s.cfg.StorageSlots != nil {
		sl := int64(s.cfg.StorageSlots(v))
		s.winSlots += sl
		s.result.TotalMovedSlots += sl
	}
	if s.decayEnabled() && s.full.HasVertex(v) {
		s.liveCounts[from]--
		s.liveCounts[to]++
	}
	if _, _, err := s.assign.Assign(v, to); err != nil {
		return err
	}
	if s.cfg.OnMove != nil {
		s.cfg.OnMove(v, from, to)
	}
	return nil
}

// shardFill is the drain target's size measure: live population in decay
// mode, assignment counts on full history.
func (s *Simulator) shardFill(t int) int {
	if s.decayEnabled() {
		return s.liveCounts[t]
	}
	return s.assign.Count(t)
}

// resizeScratch re-sizes every k-indexed slice to k. Growth appends written
// zeros (append copies them in, so capacity reuse after an earlier shrink
// can never resurrect stale values); shrink truncates — runLoad is folded
// by the caller first, and winLoad is all zeros here because resizes only
// run at window boundaries, right after flushWindow's reset.
func (s *Simulator) resizeScratch(k int) {
	s.placeScratch = resizeInt64(s.placeScratch, k)
	s.loadScratch = resizeInt64(s.loadScratch, k)
	s.winLoad = resizeInt64(s.winLoad, k)
	s.runLoad = resizeInt64(s.runLoad, k)
	if s.liveCounts != nil {
		if k <= len(s.liveCounts) {
			s.liveCounts = s.liveCounts[:k]
		} else {
			s.liveCounts = append(s.liveCounts, make([]int, k-len(s.liveCounts))...)
		}
	}
}

func resizeInt64(sl []int64, k int) []int64 {
	if k <= len(sl) {
		return sl[:k]
	}
	return append(sl, make([]int64, k-len(sl))...)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
