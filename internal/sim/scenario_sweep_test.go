package sim

import (
	"testing"
	"time"

	"ethpart/internal/workload"
)

// TestScenarioSweepDeterminism is the determinism contract of the
// open-loop pipeline under the consumption pattern the figures use: for
// every named scenario, the same seed yields a byte-identical record
// stream from two fresh generators, and replaying one shared trace under
// several configurations concurrently (RunSweep) yields the same window
// metrics as replaying the independently generated twin — i.e. concurrent
// consumers never perturb a generated history.
func TestScenarioSweepDeterminism(t *testing.T) {
	cfgs := []Config{
		{Method: MethodHash, K: 2, Window: 4 * time.Hour},
		{Method: MethodMetis, K: 4, Window: 4 * time.Hour},
		{Method: MethodTRMetis, K: 4, Window: 4 * time.Hour,
			RepartitionEvery: 24 * time.Hour, DecayHalfLife: 12 * time.Hour},
	}
	for _, sc := range workload.Scenarios() {
		sc := sc
		sc.Arrival.Duration = 36 * time.Hour
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			a, err := GenerateScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := GenerateScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Records) != len(b.Records) {
				t.Fatalf("fresh generators produced %d vs %d records", len(a.Records), len(b.Records))
			}
			for i := range a.Records {
				if a.Records[i] != b.Records[i] {
					t.Fatalf("record %d differs across fresh generators: %+v vs %+v",
						i, a.Records[i], b.Records[i])
				}
			}

			ra, err := RunSweep(a, cfgs)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := RunSweep(b, cfgs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cfgs {
				x, y := ra[i], rb[i]
				if x.OverallDynamicCut != y.OverallDynamicCut ||
					x.OverallDynamicBalance != y.OverallDynamicBalance ||
					x.Repartitions != y.Repartitions ||
					x.TotalMoves != y.TotalMoves ||
					len(x.Windows) != len(y.Windows) {
					t.Fatalf("config %d diverged across concurrent sweeps: %+v vs %+v", i, x, y)
				}
				for w := range x.Windows {
					if x.Windows[w].DynamicCut != y.Windows[w].DynamicCut ||
						x.Windows[w].Interactions != y.Windows[w].Interactions ||
						x.Windows[w].Moves != y.Windows[w].Moves {
						t.Fatalf("config %d window %d diverged: %+v vs %+v",
							i, w, x.Windows[w], y.Windows[w])
					}
				}
			}
		})
	}
}
