package sim

import (
	"reflect"
	"testing"
	"time"
)

// TestRunSweepMatchesSerialReplay checks the parallel sweep's contract: for
// every method × k combination the sweep result must be deeply identical to
// a serial Replay of the same configuration over the same trace.
func TestRunSweepMatchesSerialReplay(t *testing.T) {
	gt := smallTrace(t)

	var cfgs []Config
	for _, k := range []int{2, 4} {
		for _, m := range Methods() {
			cfgs = append(cfgs, Config{
				Method: m, K: k,
				Window:           4 * time.Hour,
				RepartitionEvery: 3 * 24 * time.Hour,
			})
		}
	}

	got, err := RunSweep(gt, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("sweep returned %d results for %d configs", len(got), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := Replay(gt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%v k=%d: sweep result differs from serial replay", cfg.Method, cfg.K)
		}
	}
}

// TestRunSweepDecayedMatchesSerial extends the sweep contract to decay
// mode: parallel replays of decayed configurations (shared read-only trace,
// per-worker graphs with retirement churning the free lists) must stay
// deeply identical to serial replays. CI runs this under -race, so it also
// proves the decay sweep shares nothing across workers.
func TestRunSweepDecayedMatchesSerial(t *testing.T) {
	gt := smallTrace(t)
	var cfgs []Config
	for _, m := range Methods() {
		cfgs = append(cfgs, Config{
			Method: m, K: 4,
			Window:           4 * time.Hour,
			RepartitionEvery: 3 * 24 * time.Hour,
			DecayHalfLife:    24 * time.Hour,
			Horizon:          4 * 24 * time.Hour,
		})
	}
	got, err := RunSweep(gt, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := Replay(gt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%v k=%d decayed: sweep result differs from serial replay", cfg.Method, cfg.K)
		}
	}
}

// TestRunSweepEmpty checks the no-op edge case.
func TestRunSweepEmpty(t *testing.T) {
	results, err := RunSweep(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("expected no results, got %d", len(results))
	}
}

// TestRunSweepPropagatesError checks that an invalid configuration surfaces
// as an error while valid siblings still complete.
func TestRunSweepPropagatesError(t *testing.T) {
	gt := smallTrace(t)
	cfgs := []Config{
		{Method: MethodHash, K: 2},
		{Method: Method(99), K: 2}, // invalid
	}
	results, err := RunSweep(gt, cfgs)
	if err == nil {
		t.Fatal("expected an error for the invalid method")
	}
	if results[0] == nil {
		t.Error("valid sibling config should still produce a result")
	}
}
