package sim

import (
	"testing"
	"time"

	"ethpart/internal/graph"
	"ethpart/internal/partition"
)

// trigSim builds a TR-METIS simulator with hash placement (so the test can
// steer the dynamic cut precisely) and the given trigger parameters.
func trigSim(t *testing.T, triggerWindows int, gap time.Duration) *Simulator {
	t.Helper()
	s, err := New(Config{
		Method: MethodTRMetis, K: 2,
		Window:            time.Hour,
		MinRepartitionGap: gap,
		TriggerWindows:    triggerWindows,
		CutThreshold:      0.4,
		BalanceThreshold:  99, // balance trigger disabled
		HashPlacement:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// hashPairs finds a cross-shard pair and a same-shard pair under k=2 hash
// placement, so a test can emit windows with dynamic cut 1 or 0 at will.
func hashPairs(t *testing.T) (crossA, crossB, localA, localB uint64) {
	t.Helper()
	var h partition.Hash
	s0 := h.ShardOf(graph.VertexID(0), 2)
	crossA, localA = 0, 0
	crossB, localB = 0, 0
	for v := uint64(1); v < 64; v++ {
		if crossB == 0 && h.ShardOf(graph.VertexID(v), 2) != s0 {
			crossB = v
		}
		if localB == 0 && h.ShardOf(graph.VertexID(v), 2) == s0 {
			localB = v
		}
		if crossB != 0 && localB != 0 {
			return
		}
	}
	t.Fatal("no hash pair found in the first 64 IDs")
	return
}

// TestTriggerQuietWindowKeepsBadStreak pins the first trigger fix: a quiet
// window in the middle of a degraded stretch carries no evidence and must
// not erase the streak. With TriggerWindows=3, the sequence
// bad, bad, quiet, bad must fire — the pre-fix state machine reset the
// streak at the quiet window and stayed silent.
func TestTriggerQuietWindowKeepsBadStreak(t *testing.T) {
	s := trigSim(t, 3, time.Hour)
	ca, cb, _, _ := hashPairs(t)
	base := time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC).Unix()
	hour := int64(3600)
	badWindow := func(w int64) {
		for i := int64(0); i < 10; i++ {
			if err := s.Process(rec(base+w*hour+i*60, ca, cb)); err != nil {
				t.Fatal(err)
			}
		}
	}
	badWindow(0)
	badWindow(1)
	// Window 2 stays quiet; window 3 is degraded again.
	badWindow(3)
	// One sentinel record in window 4 rolls the boundary past window 3.
	if err := s.Process(rec(base+4*hour, ca, ca)); err != nil {
		t.Fatal(err)
	}
	res := s.Finish()
	if res.Repartitions != 1 {
		t.Fatalf("repartitions = %d, want 1 (bad,bad,quiet,bad with TriggerWindows=3)", res.Repartitions)
	}
	if !res.Windows[3].Repartitioned && !res.Windows[4].Repartitioned {
		t.Error("the firing must land at the boundary after the third bad window")
	}
}

// TestTriggerLongQuietGapAgesEvidenceOut pins the staleness bound: a
// quiet gap longer than TriggerWindows windows expires the streak, so
// degradation from before the gap cannot combine with fresh degradation
// into a firing. With TriggerWindows=3: two bad windows, a 10-window
// quiet gap, then one bad window must NOT fire (the streak restarted at
// one); two more bad windows then fire on genuinely consecutive evidence.
func TestTriggerLongQuietGapAgesEvidenceOut(t *testing.T) {
	s := trigSim(t, 3, time.Hour)
	ca, cb, la, _ := hashPairs(t)
	base := time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC).Unix()
	hour := int64(3600)
	emit := func(w int64, from, to uint64) {
		t.Helper()
		for i := int64(0); i < 10; i++ {
			if err := s.Process(rec(base+w*hour+i*60, from, to)); err != nil {
				t.Fatal(err)
			}
		}
	}
	emit(0, ca, cb)
	emit(1, ca, cb)
	// Windows 2..11 stay quiet (10 > TriggerWindows): the two-window
	// streak ages out. The bad windows 12 and 13 restart the streak at
	// one and reach only two — no firing may happen anywhere up to here,
	// even though 2 (pre-gap) + 2 (post-gap) ≥ TriggerWindows.
	emit(12, ca, cb)
	emit(13, ca, cb)
	emit(14, la, la) // good sentinel: rolls the boundary past window 13
	if got := s.result.Repartitions; got != 0 {
		t.Fatalf("repartitions = %d, want 0 (stale pre-gap evidence must not combine)", got)
	}
	// Window 14 was observed good and reset the streak; three genuinely
	// consecutive bad windows now fire exactly once.
	emit(15, ca, cb)
	emit(16, ca, cb)
	emit(17, ca, cb)
	emit(18, la, la) // sentinel: rolls the boundary past window 17
	res := s.Finish()
	if res.Repartitions != 1 {
		t.Fatalf("repartitions = %d, want 1 (fresh consecutive streak)", res.Repartitions)
	}
	for i, w := range res.Windows {
		if w.Repartitioned && i < 17 {
			t.Errorf("window %d repartitioned before the fresh streak completed", i)
		}
	}
}

// TestTriggerNoFireOnStaleEvidence pins the second trigger fix: a streak
// accumulated while MinRepartitionGap blocked the trigger must not fire by
// itself once the gap elapses — only a fresh degraded window can fire. The
// trace: five bad windows inside the gap, a 20-window quiet stretch during
// which the gap elapses (no fire may happen here), a good-traffic window
// (resets the streak, no fire), then three fresh bad windows (fires).
func TestTriggerNoFireOnStaleEvidence(t *testing.T) {
	s := trigSim(t, 3, 20*time.Hour)
	ca, cb, la, lb := hashPairs(t)
	base := time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC).Unix()
	hour := int64(3600)
	emit := func(w int64, from, to uint64) {
		t.Helper()
		for i := int64(0); i < 10; i++ {
			if err := s.Process(rec(base+w*hour+i*60, from, to)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for w := int64(0); w < 5; w++ {
		emit(w, ca, cb) // degraded, but the gap blocks any firing
	}
	// Quiet windows 5..24: the gap elapses at window 20. A record at
	// window 25 rolls every quiet boundary; none may fire on the stale
	// streak of five.
	emit(25, la, lb) // good traffic: resets the streak, must not fire
	if got := s.result.Repartitions; got != 0 {
		t.Fatalf("repartitions = %d after stale streak + quiet gap + good window, want 0", got)
	}
	// Fresh evidence: three degraded windows fire on the third.
	emit(26, ca, cb)
	emit(27, ca, cb)
	emit(28, ca, cb)
	emit(29, la, la) // sentinel: rolls the boundary past window 28
	res := s.Finish()
	if res.Repartitions != 1 {
		t.Fatalf("repartitions = %d, want exactly 1 (from the fresh streak)", res.Repartitions)
	}
	for i, w := range res.Windows {
		if w.Repartitioned && i < 28 {
			t.Errorf("window %d repartitioned before the fresh streak completed", i)
		}
	}
}
