package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/trace"
)

// flashStream is the autoscale tests' private deterministic trace: quiet
// base traffic over a small cohort, a surge phase in which a new cohort
// multiplies the record rate tenfold, then a long cooldown back to base
// load. Window = 4h; each phase window carries its records spread evenly.
func flashStream() []trace.Record {
	base := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC).Unix()
	var recs []trace.Record
	state := uint64(0xdeadbeefcafef00d)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	t := base
	phases := []struct {
		windows, perWindow int
		surge              bool
	}{
		{6, 60, false},
		{6, 600, true},
		{10, 60, false},
	}
	for _, ph := range phases {
		for w := 0; w < ph.windows; w++ {
			step := int64(4*3600) / int64(ph.perWindow)
			for i := 0; i < ph.perWindow; i++ {
				pick := func() uint64 {
					if ph.surge && next(10) < 8 {
						return 100 + next(400)
					}
					return next(100)
				}
				recs = append(recs, trace.Record{
					Time: t, Kind: evm.KindTransaction, From: pick(), To: pick(),
				})
				t += step
			}
		}
	}
	return recs
}

func flashConfig(m Method, auto bool) Config {
	cfg := Config{
		Method: m, K: 2,
		Window:            4 * time.Hour,
		RepartitionEvery:  2 * 24 * time.Hour,
		MinRepartitionGap: 8 * time.Hour,
		TriggerWindows:    2,
	}
	if auto {
		cfg.Autoscale = AutoscaleConfig{
			Enabled: true, KMin: 2, KMax: 8, TargetWindowLoad: 100,
		}
	}
	return cfg
}

// TestDefaultThresholdFormulas pins the k-derived TR-METIS trigger
// defaults at both an initial k and the k' a resize might land on — the
// values the controller re-derives on every resize.
func TestDefaultThresholdFormulas(t *testing.T) {
	for _, tc := range []struct {
		k        int
		cut, bal float64
	}{
		{2, 0.45, 1.4},
		{3, 0.6, 1.8},
		{4, 0.675, 2.2},
		{8, 0.7875, 3.8},
	} {
		if got := defaultCutThreshold(tc.k); math.Abs(got-tc.cut) > 1e-12 {
			t.Errorf("defaultCutThreshold(%d) = %v, want %v", tc.k, got, tc.cut)
		}
		if got := defaultBalanceThreshold(tc.k); math.Abs(got-tc.bal) > 1e-12 {
			t.Errorf("defaultBalanceThreshold(%d) = %v, want %v", tc.k, got, tc.bal)
		}
	}
}

// TestResizeRederivesDefaultedThresholds: thresholds the caller left
// defaulted follow k across a resize; caller-pinned values stay pinned.
func TestResizeRederivesDefaultedThresholds(t *testing.T) {
	now := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

	defaulted := flashConfig(MethodTRMetis, true)
	s, err := New(defaulted)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.cfg.CutThreshold, defaultCutThreshold(2); got != want {
		t.Fatalf("initial defaulted cut threshold = %v, want %v", got, want)
	}
	if err := s.resize(now, 4); err != nil {
		t.Fatal(err)
	}
	if got, want := s.cfg.CutThreshold, defaultCutThreshold(4); got != want {
		t.Errorf("after resize to 4: cut threshold = %v, want re-derived %v", got, want)
	}
	if got, want := s.cfg.BalanceThreshold, defaultBalanceThreshold(4); got != want {
		t.Errorf("after resize to 4: balance threshold = %v, want re-derived %v", got, want)
	}

	pinned := flashConfig(MethodTRMetis, true)
	pinned.CutThreshold = 0.33
	pinned.BalanceThreshold = 1.77
	s2, err := New(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.resize(now, 4); err != nil {
		t.Fatal(err)
	}
	if s2.cfg.CutThreshold != 0.33 || s2.cfg.BalanceThreshold != 1.77 {
		t.Errorf("resize moved caller-pinned thresholds: cut=%v bal=%v",
			s2.cfg.CutThreshold, s2.cfg.BalanceThreshold)
	}
}

// TestAutoscaleValidation: an initial K outside [KMin, KMax] and inverted
// water marks are rejected at construction.
func TestAutoscaleValidation(t *testing.T) {
	cfg := flashConfig(MethodMetis, true)
	cfg.Autoscale.KMin = 4 // K=2 below the floor
	if _, err := New(cfg); err == nil {
		t.Error("New accepted initial K below KMin")
	}
	cfg = flashConfig(MethodMetis, true)
	cfg.Autoscale.MergeLowWater = 0.95 // above SplitHighWater's 0.9 default
	if _, err := New(cfg); err == nil {
		t.Error("New accepted MergeLowWater above SplitHighWater")
	}
}

// TestAutoscaleSplitsAndMerges is the controller's headline behaviour on
// the flash-crowd stream: it splits while the surge saturates the fleet
// and merges the extra shards away once traffic subsides, for both the
// graph-aware and the hash planner. After every replay the incrementally
// maintained cut counters must match the from-scratch recount oracle, and
// no assignment may point at a dropped shard.
func TestAutoscaleSplitsAndMerges(t *testing.T) {
	recs := flashStream()
	for _, m := range []Method{MethodTRMetis, MethodHash} {
		s, err := New(flashConfig(m, true))
		if err != nil {
			t.Fatal(err)
		}
		res := replayAll(t, s, recs)
		var splits, merges int
		for _, ev := range res.Resizes {
			if ev.ToK > ev.FromK {
				splits++
			} else {
				merges++
			}
			if ev.FromK == ev.ToK {
				t.Errorf("%v: no-op resize event %+v", m, ev)
			}
		}
		if splits == 0 || merges == 0 {
			t.Fatalf("%v: flash crowd produced %d splits, %d merges (want both > 0); events: %+v",
				m, splits, merges, res.Resizes)
		}
		finalK := res.Resizes[len(res.Resizes)-1].ToK
		if s.cfg.K != finalK || s.K() != finalK {
			t.Errorf("%v: simulator K = %d, last resize event says %d", m, s.cfg.K, finalK)
		}
		if res.Windows[len(res.Windows)-1].Shards != finalK {
			t.Errorf("%v: final window reports %d shards, want %d",
				m, res.Windows[len(res.Windows)-1].Shards, finalK)
		}
	}
}

// TestAutoscaleCountersMatchOracle re-verifies the incremental cut state
// against the from-scratch recount after a replay with resizes in it.
func TestAutoscaleCountersMatchOracle(t *testing.T) {
	recs := flashStream()
	s, err := New(flashConfig(MethodTRMetis, true))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.result.Resizes) == 0 {
		t.Fatal("no resizes fired; oracle check is vacuous")
	}
	cw, tw := s.cutWeight, s.totalWeight
	ce, te := s.cutEdges, s.totalEdges
	s.recountCut()
	if cw != s.cutWeight || tw != s.totalWeight || ce != s.cutEdges || te != s.totalEdges {
		t.Errorf("incremental counters diverged from recount across resizes: "+
			"weight %d/%d vs %d/%d, edges %d/%d vs %d/%d",
			cw, tw, s.cutWeight, s.totalWeight, ce, te, s.cutEdges, s.totalEdges)
	}
	// Every assignment must target a live shard at the final k.
	k := s.cfg.K
	s.assign.Each(func(v graph.VertexID, shard int) bool {
		if shard >= k {
			t.Errorf("vertex %d assigned to dropped shard %d (k=%d)", v, shard, k)
		}
		return true
	})
}

// TestAutoscaleDisabledByteIdentical pins the opt-in contract: with the
// controller disabled the simulator must produce results byte-identical
// to a pre-autoscaler configuration, and arming it with bounds that can
// never fire (KMin = K = KMax) must change nothing either.
func TestAutoscaleDisabledByteIdentical(t *testing.T) {
	recs := flashStream()
	for _, m := range []Method{MethodHash, MethodMetis, MethodTRMetis} {
		base, err := New(flashConfig(m, false))
		if err != nil {
			t.Fatal(err)
		}
		want := replayAll(t, base, recs)
		if want.Resizes != nil {
			t.Fatalf("%v: disabled run recorded resizes", m)
		}

		pinnedCfg := flashConfig(m, true)
		pinnedCfg.Autoscale.KMin = 2
		pinnedCfg.Autoscale.KMax = 2
		pinned, err := New(pinnedCfg)
		if err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, pinned, recs)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: armed-but-pinned autoscaler changed the result", m)
		}
	}
}

// TestAutoscaleCooldownShared: a resize advances the shared wave clock, so
// the repartition policy cannot fire again until its own gap has elapsed —
// and vice versa, the controller respects a recent repartition.
func TestAutoscaleCooldownShared(t *testing.T) {
	recs := flashStream()
	s, err := New(flashConfig(MethodTRMetis, true))
	if err != nil {
		t.Fatal(err)
	}
	res := replayAll(t, s, recs)
	gap := 8 * time.Hour // the config's MinRepartitionGap = Cooldown
	var events []time.Time
	for _, ev := range res.Resizes {
		events = append(events, ev.At)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Sub(events[i-1]) < gap {
			t.Errorf("resizes %d and %d fired %v apart, inside the %v cooldown",
				i-1, i, events[i].Sub(events[i-1]), gap)
		}
	}
}
