// Package sim implements the sharding simulator: it replays a stream of
// interaction records, maintains the cumulative blockchain graph and a
// shard assignment, places newly appearing vertices, fires the method's
// repartitioning policy (none, periodic or threshold-triggered) and
// accumulates the paper's metrics in four-hour windows — the measurement
// granularity of Fig. 3.
package sim

import (
	"fmt"
	"time"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
	"ethpart/internal/partition"
	"ethpart/internal/partition/multilevel"
	"ethpart/internal/trace"
)

// Method selects one of the paper's five partitioning methods.
type Method int

// The five methods of §II-C.
const (
	MethodHash Method = iota + 1
	MethodKL
	MethodMetis
	MethodRMetis
	MethodTRMetis
)

// String implements fmt.Stringer with the paper's labels.
func (m Method) String() string {
	switch m {
	case MethodHash:
		return "HASH"
	case MethodKL:
		return "KL"
	case MethodMetis:
		return "METIS"
	case MethodRMetis:
		return "R-METIS"
	case MethodTRMetis:
		return "TR-METIS"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod maps a case-sensitive method label to its Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "hash", "HASH":
		return MethodHash, nil
	case "kl", "KL":
		return MethodKL, nil
	case "metis", "METIS":
		return MethodMetis, nil
	case "rmetis", "r-metis", "R-METIS", "P-METIS", "pmetis":
		return MethodRMetis, nil
	case "trmetis", "tr-metis", "TR-METIS":
		return MethodTRMetis, nil
	default:
		return 0, fmt.Errorf("sim: unknown method %q", s)
	}
}

// Methods lists all five methods in the paper's order.
func Methods() []Method {
	return []Method{MethodHash, MethodKL, MethodMetis, MethodRMetis, MethodTRMetis}
}

// Config parameterises a simulation run.
type Config struct {
	Method Method
	// K is the number of shards.
	K int
	// Window is the metric-accumulation window; the paper uses four hours.
	Window time.Duration
	// RepartitionEvery is the period of the periodic methods (KL, METIS,
	// R-METIS); the paper uses two weeks.
	RepartitionEvery time.Duration
	// CutThreshold and BalanceThreshold trigger TR-METIS: a repartition
	// fires when a window's dynamic edge-cut exceeds CutThreshold or its
	// dynamic balance exceeds BalanceThreshold.
	CutThreshold     float64
	BalanceThreshold float64
	// MinRepartitionGap bounds how often TR-METIS may fire.
	MinRepartitionGap time.Duration
	// TriggerWindows is the number of consecutive over-threshold windows
	// TR-METIS requires before firing, filtering out single noisy windows
	// (a 4-hour window with few transactions has a wild balance reading).
	TriggerWindows int
	// Multilevel configures the METIS-substitute partitioner.
	Multilevel multilevel.Config
	// KL configures the Kernighan–Lin refiner.
	KL partition.KLConfig
	// StorageSlots, when non-nil, reports a vertex's storage footprint so
	// moves can be weighed in relocated state, not just vertex count.
	StorageSlots func(graph.VertexID) int
	// HashPlacement forces hash placement of newly appearing vertices for
	// every method, replacing the paper's min-cut/tie-balance rule. Used
	// only by the placement ablation bench.
	HashPlacement bool

	// OnPlace, when non-nil, fires the moment a first-seen vertex is
	// assigned a shard (during the Process call that introduced it).
	OnPlace func(v graph.VertexID, shard int)
	// OnMove, when non-nil, fires for every vertex whose shard changes
	// while a repartition is applied, after the assignment is updated.
	// Observers driving a live system (see internal/opsim) translate these
	// into state migrations or re-homings.
	OnMove func(v graph.VertexID, from, to int)
	// OnRepartition, when non-nil, fires after a repartition completes,
	// with the window-boundary time that triggered it and the number of
	// vertices it moved. It fires after every OnMove of the batch.
	OnRepartition func(at time.Time, moves int)
}

// withDefaults fills zero fields with the paper's parameters.
func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 2
	}
	if c.Window <= 0 {
		c.Window = 4 * time.Hour
	}
	if c.RepartitionEvery <= 0 {
		c.RepartitionEvery = 14 * 24 * time.Hour
	}
	if c.CutThreshold <= 0 {
		// The hashing baseline cuts (k-1)/k of the edges; a threshold a
		// little below that fires only when the partition has degraded
		// toward "as bad as hashing". The paper tunes thresholds so
		// TR-METIS tracks R-METIS quality with far fewer repartitions.
		c.CutThreshold = 0.9 * float64(c.K-1) / float64(c.K)
	}
	if c.BalanceThreshold <= 0 {
		c.BalanceThreshold = 1.0 + 0.4*float64(c.K-1)
	}
	if c.MinRepartitionGap <= 0 {
		c.MinRepartitionGap = 3 * 24 * time.Hour
	}
	if c.TriggerWindows <= 0 {
		c.TriggerWindows = 6 // one day of sustained degradation
	}
	return c
}

// WindowStat is one data point of Fig. 3: metrics for a four-hour window.
type WindowStat struct {
	Start time.Time
	// DynamicCut is the cross-shard fraction of the interaction weight
	// executed in this window — the "executed cross-shard transactions".
	DynamicCut float64
	// DynamicBalance is Eq. 2 over the activity each shard served in this
	// window.
	DynamicBalance float64
	// StaticCut is Eq. 1 over the cumulative graph at window end.
	StaticCut float64
	// StaticBalance is Eq. 2 over vertex counts at window end.
	StaticBalance float64
	// Moves is the number of vertices that changed shard in this window.
	Moves int64
	// MovedSlots is the storage relocated by those moves, in slots.
	MovedSlots int64
	// Repartitioned marks windows in which the policy fired.
	Repartitioned bool
	// Interactions is the window's interaction count.
	Interactions int64
}

// Result is the outcome of a simulation run.
type Result struct {
	Method  Method
	K       int
	Windows []WindowStat
	// TotalMoves counts every vertex-shard change over the run.
	TotalMoves int64
	// TotalMovedSlots is the total storage relocated.
	TotalMovedSlots int64
	// Repartitions counts policy firings.
	Repartitions int
	// OverallDynamicCut is the cross-shard fraction of all executed
	// interaction weight over the whole run (Fig. 5's dynamic edge-cut).
	OverallDynamicCut float64
	// OverallDynamicBalance is Eq. 2 over the total activity each shard
	// served across the run (Fig. 5's dynamic balance).
	OverallDynamicBalance float64
	// FinalStaticCut and FinalStaticBalance are Eq. 1/2 on the final graph.
	FinalStaticCut     float64
	FinalStaticBalance float64
	// Vertices and Edges describe the final graph.
	Vertices, Edges int
}

// Simulator replays interaction records under one method configuration.
// Feed it records in time order via Process, then call Finish.
//
// Simulator is not safe for concurrent use.
type Simulator struct {
	cfg Config

	full   *graph.Graph // cumulative graph
	window *graph.Graph // graph of interactions since the last repartition
	assign *partition.Assignment

	hash partition.Hash
	ml   *multilevel.Partitioner
	kl   *partition.KL

	// csrb reuses CSR build scratch across window rebuilds.
	csrb graph.CSRBuilder
	// placeScratch and loadScratch keep PlaceVertex and staticBalance
	// allocation-free on the per-record hot path.
	placeScratch []int64
	loadScratch  []int64

	// Incrementally maintained cumulative cut state.
	cutEdges, totalEdges   int64
	cutWeight, totalWeight int64

	// Current window accumulation.
	winStart    time.Time
	winLoad     []int64
	winCutW     int64
	winTotalW   int64
	winCount    int64
	winMoves    int64
	winSlots    int64
	winReparted bool

	// Whole-run accounting for Fig. 5: per-shard served load and the
	// cross-shard fraction of executed interactions (evaluated at
	// execution time, like a real sharded system would experience it).
	runLoad          []int64
	runCutW, runTotW int64

	lastRepart time.Time
	started    bool
	// badWindows counts consecutive over-threshold windows (TR-METIS).
	badWindows int

	result Result
}

// New returns a simulator for cfg.
func New(cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	if cfg.Method < MethodHash || cfg.Method > MethodTRMetis {
		return nil, fmt.Errorf("sim: invalid method %d", cfg.Method)
	}
	assign, err := partition.NewAssignment(cfg.K)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:          cfg,
		full:         graph.New(),
		window:       graph.New(),
		assign:       assign,
		ml:           multilevel.New(cfg.Multilevel),
		kl:           partition.NewKL(cfg.KL),
		placeScratch: make([]int64, cfg.K),
		loadScratch:  make([]int64, cfg.K),
		winLoad:      make([]int64, cfg.K),
		runLoad:      make([]int64, cfg.K),
		result:       Result{Method: cfg.Method, K: cfg.K},
	}, nil
}

// Assignment exposes the live assignment (read-only use).
func (s *Simulator) Assignment() *partition.Assignment { return s.assign }

// Graph exposes the cumulative graph (read-only use).
func (s *Simulator) Graph() *graph.Graph { return s.full }

// Process consumes one interaction record. Records must arrive in
// non-decreasing time order.
func (s *Simulator) Process(rec trace.Record) error {
	t := time.Unix(rec.Time, 0).UTC()
	if !s.started {
		s.winStart = t.Truncate(s.cfg.Window)
		s.lastRepart = t
		s.started = true
	}
	// Window roll-over (possibly across several empty windows).
	for t.Sub(s.winStart) >= s.cfg.Window {
		s.flushWindow()
		s.winStart = s.winStart.Add(s.cfg.Window)
		// Threshold policy is evaluated at window boundaries; periodic
		// policies by elapsed time.
		if err := s.maybeRepartition(s.winStart); err != nil {
			return err
		}
	}

	u := graph.VertexID(rec.From)
	v := graph.VertexID(rec.To)
	newEdge := u != v && s.full.EdgeWeight(u, v) == 0

	if err := rec.Apply(s.full); err != nil {
		return err
	}
	if s.cfg.Method == MethodRMetis || s.cfg.Method == MethodTRMetis || s.cfg.Method == MethodKL {
		if err := rec.Apply(s.window); err != nil {
			return err
		}
	}

	// Place endpoints that are new to the assignment.
	su, err := s.placeIfNew(u)
	if err != nil {
		return err
	}
	sv, err := s.placeIfNew(v)
	if err != nil {
		return err
	}

	// Update cumulative cut state.
	cross := su != sv && u != v
	if newEdge {
		s.totalEdges++
		if cross {
			s.cutEdges++
		}
	}
	if u != v {
		s.totalWeight++
		if cross {
			s.cutWeight++
		}
	}

	// Window accumulation: each interaction is one unit of load on each
	// endpoint's shard; cross-shard interactions count against the cut.
	s.winCount++
	s.winLoad[su]++
	s.runLoad[su]++
	if u != v {
		s.winLoad[sv]++
		s.runLoad[sv]++
		s.winTotalW++
		s.runTotW++
		if cross {
			s.winCutW++
			s.runCutW++
		}
	}
	return nil
}

// placeIfNew assigns a shard to v if it has none, per the method's rule,
// and returns v's shard.
func (s *Simulator) placeIfNew(v graph.VertexID) (int, error) {
	if shard, ok := s.assign.ShardOf(v); ok {
		return shard, nil
	}
	var shard int
	if s.cfg.Method == MethodHash || s.cfg.HashPlacement {
		shard = s.hash.ShardOf(v, s.cfg.K)
	} else {
		shard = partition.PlaceVertexScratch(s.full, s.assign, v, s.placeScratch)
	}
	if _, _, err := s.assign.Assign(v, shard); err != nil {
		return 0, err
	}
	if s.cfg.OnPlace != nil {
		s.cfg.OnPlace(v, shard)
	}
	return shard, nil
}

// flushWindow closes the current window into the result.
func (s *Simulator) flushWindow() {
	stat := WindowStat{
		Start:          s.winStart,
		DynamicBalance: metrics.LoadBalance(s.winLoad),
		StaticBalance:  s.staticBalance(),
		Moves:          s.winMoves,
		MovedSlots:     s.winSlots,
		Repartitioned:  s.winReparted,
		Interactions:   s.winCount,
	}
	if s.winTotalW > 0 {
		stat.DynamicCut = float64(s.winCutW) / float64(s.winTotalW)
	}
	if s.totalEdges > 0 {
		stat.StaticCut = float64(s.cutEdges) / float64(s.totalEdges)
	}
	s.result.Windows = append(s.result.Windows, stat)

	for i := range s.winLoad {
		s.winLoad[i] = 0
	}
	s.winCutW, s.winTotalW, s.winCount = 0, 0, 0
	s.winMoves, s.winSlots = 0, 0
	s.winReparted = false
}

// staticBalance is Eq. 2 over assignment vertex counts.
func (s *Simulator) staticBalance() float64 {
	for i := range s.loadScratch {
		s.loadScratch[i] = int64(s.assign.Count(i))
	}
	return metrics.LoadBalance(s.loadScratch)
}

// maybeRepartition fires the method's policy at a window boundary.
func (s *Simulator) maybeRepartition(now time.Time) error {
	switch s.cfg.Method {
	case MethodHash:
		return nil
	case MethodKL, MethodMetis, MethodRMetis:
		if now.Sub(s.lastRepart) < s.cfg.RepartitionEvery {
			return nil
		}
	case MethodTRMetis:
		if len(s.result.Windows) == 0 {
			return nil
		}
		last := s.result.Windows[len(s.result.Windows)-1]
		bad := last.Interactions > 0 &&
			(last.DynamicCut > s.cfg.CutThreshold || last.DynamicBalance > s.cfg.BalanceThreshold)
		if bad {
			s.badWindows++
		} else {
			s.badWindows = 0
		}
		if now.Sub(s.lastRepart) < s.cfg.MinRepartitionGap {
			return nil
		}
		if s.badWindows < s.cfg.TriggerWindows {
			return nil
		}
		s.badWindows = 0
	}
	return s.repartition(now)
}

// repartition runs the method's partitioner and applies the result.
func (s *Simulator) repartition(now time.Time) error {
	var moves int
	switch s.cfg.Method {
	case MethodKL:
		// KL refines using the transactions of the period (window graph).
		if s.window.VertexCount() == 0 {
			break
		}
		csr := s.csrb.Build(s.window)
		parts := s.assign.ToParts(csr)
		// All window vertices were placed on first sight.
		refined, err := s.kl.Refine(csr, s.cfg.K, parts)
		if err != nil {
			return fmt.Errorf("sim: KL refine: %w", err)
		}
		if moves, err = s.applyParts(csr, refined); err != nil {
			return err
		}
	case MethodMetis:
		// METIS repartitions the whole cumulative graph.
		if s.full.VertexCount() == 0 {
			break
		}
		csr := s.csrb.Build(s.full)
		parts, err := s.ml.Partition(csr, s.cfg.K)
		if err != nil {
			return fmt.Errorf("sim: multilevel partition: %w", err)
		}
		if moves, err = s.applyParts(csr, parts); err != nil {
			return err
		}
	case MethodRMetis, MethodTRMetis:
		// Reduced graph: only the window since the last repartition.
		if s.window.VertexCount() == 0 {
			break
		}
		csr := s.csrb.Build(s.window)
		parts, err := s.ml.Partition(csr, s.cfg.K)
		if err != nil {
			return fmt.Errorf("sim: multilevel partition (window): %w", err)
		}
		if moves, err = s.applyParts(csr, parts); err != nil {
			return err
		}
	}
	s.lastRepart = now
	s.window = graph.New()
	s.winReparted = true
	s.winMoves += int64(moves)
	s.result.TotalMoves += int64(moves)
	s.result.Repartitions++
	if s.cfg.OnRepartition != nil {
		s.cfg.OnRepartition(now, moves)
	}
	return nil
}

// applyParts applies a partitioner result, accounting moved storage and
// keeping the cumulative cut counters exact incrementally: each moved
// vertex contributes the cut delta of its incident full-graph edges, so a
// repartition costs O(sum of moved-vertex degrees) instead of a full O(E)
// recount over the cumulative graph.
func (s *Simulator) applyParts(csr *graph.CSR, parts []int) (int, error) {
	if len(parts) != csr.N() {
		return 0, fmt.Errorf("sim: applying partition: result has %d entries for %d vertices",
			len(parts), csr.N())
	}
	var moves int
	var slots int64
	for i, id := range csr.IDs {
		old, ok := s.assign.ShardOf(id)
		if ok && old == parts[i] {
			continue
		}
		if ok {
			s.moveCutDelta(id, old, parts[i])
			if s.cfg.StorageSlots != nil {
				slots += int64(s.cfg.StorageSlots(id))
			}
			moves++
		}
		if _, _, err := s.assign.Assign(id, parts[i]); err != nil {
			return moves, fmt.Errorf("sim: applying partition: %w", err)
		}
		if ok && s.cfg.OnMove != nil {
			s.cfg.OnMove(id, old, parts[i])
		}
	}
	s.winSlots += slots
	s.result.TotalMovedSlots += slots
	return moves, nil
}

// moveCutDelta updates the cumulative cut counters for vertex v moving from
// shard old to shard next. It must run before the assignment is updated;
// neighbour shards reflect the current (possibly mid-batch) state, which
// keeps the invariant exact because each single-vertex move is accounted
// against the state it executes in.
func (s *Simulator) moveCutDelta(v graph.VertexID, old, next int) {
	adjust := func(u graph.VertexID, w int64) bool {
		su, ok := s.assign.ShardOf(u)
		if !ok {
			return true
		}
		wasCross := su != old
		isCross := su != next
		if wasCross == isCross {
			return true
		}
		if isCross {
			s.cutEdges++
			s.cutWeight += w
		} else {
			s.cutEdges--
			s.cutWeight -= w
		}
		return true
	}
	s.full.OutNeighbors(v, adjust)
	s.full.InNeighbors(v, adjust)
}

// Finish flushes the open window and computes run-level metrics.
func (s *Simulator) Finish() *Result {
	if s.started {
		s.flushWindow()
	}
	res := &s.result
	res.OverallDynamicBalance = metrics.LoadBalance(s.runLoad)
	if s.runTotW > 0 {
		res.OverallDynamicCut = float64(s.runCutW) / float64(s.runTotW)
	}
	if s.totalEdges > 0 {
		res.FinalStaticCut = float64(s.cutEdges) / float64(s.totalEdges)
	}
	res.FinalStaticBalance = s.staticBalance()
	res.Vertices = s.full.VertexCount()
	res.Edges = s.full.EdgeCount()
	return res
}
