// Package sim implements the sharding simulator: it replays a stream of
// interaction records, maintains the cumulative blockchain graph and a
// shard assignment, places newly appearing vertices, fires the method's
// repartitioning policy (none, periodic or threshold-triggered) and
// accumulates the paper's metrics in four-hour windows — the measurement
// granularity of Fig. 3.
package sim

import (
	"fmt"
	"math"
	"time"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
	"ethpart/internal/partition"
	"ethpart/internal/partition/multilevel"
	"ethpart/internal/trace"
)

// Method selects one of the paper's five partitioning methods.
type Method int

// The five methods of §II-C.
const (
	MethodHash Method = iota + 1
	MethodKL
	MethodMetis
	MethodRMetis
	MethodTRMetis
)

// String implements fmt.Stringer with the paper's labels.
func (m Method) String() string {
	switch m {
	case MethodHash:
		return "HASH"
	case MethodKL:
		return "KL"
	case MethodMetis:
		return "METIS"
	case MethodRMetis:
		return "R-METIS"
	case MethodTRMetis:
		return "TR-METIS"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod maps a case-sensitive method label to its Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "hash", "HASH":
		return MethodHash, nil
	case "kl", "KL":
		return MethodKL, nil
	case "metis", "METIS":
		return MethodMetis, nil
	case "rmetis", "r-metis", "R-METIS", "P-METIS", "pmetis":
		return MethodRMetis, nil
	case "trmetis", "tr-metis", "TR-METIS":
		return MethodTRMetis, nil
	default:
		return 0, fmt.Errorf("sim: unknown method %q", s)
	}
}

// Methods lists all five methods in the paper's order.
func Methods() []Method {
	return []Method{MethodHash, MethodKL, MethodMetis, MethodRMetis, MethodTRMetis}
}

// PlacementPenalty selects the size control of the first-sight placement
// rule (the paper's min-cut/tie-balance rule for vertices appearing
// between repartitionings).
type PlacementPenalty int

const (
	// PenaltyAuto (the default) keeps the hard overload cap in
	// full-history mode — the paper's behaviour, pinned by the goldens —
	// and switches to the shared Fennel-style degree-based penalty in
	// decay mode, where the decayed neighbour weights feed the same
	// recency-weighted objective the decayed repartitioner optimises.
	PenaltyAuto PlacementPenalty = iota
	// PenaltyCap always uses the hard overload cap (PlaceVertexCounts).
	PenaltyCap
	// PenaltyFennel always uses the Fennel-style degree-based penalty
	// (PlaceVertexFennel), even in full-history mode.
	PenaltyFennel
)

// Config parameterises a simulation run.
type Config struct {
	Method Method
	// K is the number of shards.
	K int
	// Window is the metric-accumulation window; the paper uses four hours.
	Window time.Duration
	// RepartitionEvery is the period of the periodic methods (KL, METIS,
	// R-METIS); the paper uses two weeks.
	RepartitionEvery time.Duration
	// CutThreshold and BalanceThreshold trigger TR-METIS: a repartition
	// fires when a window's dynamic edge-cut exceeds CutThreshold or its
	// dynamic balance exceeds BalanceThreshold.
	CutThreshold     float64
	BalanceThreshold float64
	// MinRepartitionGap bounds how often TR-METIS may fire.
	MinRepartitionGap time.Duration
	// TriggerWindows is the number of consecutive over-threshold windows
	// TR-METIS requires before firing, filtering out single noisy windows
	// (a 4-hour window with few transactions has a wild balance reading).
	TriggerWindows int
	// DecayHalfLife, when positive, enables windowed decay of the
	// cumulative activity graph: at every window boundary all vertex and
	// edge weights are multiplied by 2^(−Window/DecayHalfLife), so an
	// entry's influence halves every DecayHalfLife of inactivity and
	// repartitions weigh recent traffic over stale history. Zero disables
	// decay entirely (full-history mode, byte-identical to a simulator
	// without the subsystem).
	DecayHalfLife time.Duration
	// Horizon is the retention horizon of decay mode: vertices and edges
	// untouched for at least Horizon are retired from the live graph
	// (their shard assignments stay sticky, and a reappearing vertex is
	// re-admitted through the normal first-sight path), which bounds the
	// live graph — and every repartition — by the active set instead of
	// the full history. Defaults to 4×DecayHalfLife when decay is enabled;
	// ignored when it is not.
	Horizon time.Duration
	// DecayedWindow, in decay mode, gives KL and R-METIS the decayed
	// repartition source TR-METIS gained first: instead of the raw
	// since-last-repartition window graph, the partitioner sees the window
	// vertices together with their decayed live neighbourhood — every
	// surviving edge of the cumulative graph incident to a window vertex,
	// at its decayed weight — so heavy recent traffic outvotes one-off
	// interactions and cross-window adjacency the raw window cannot see
	// still pulls neighbours together. Ignored outside decay mode and by
	// methods with no window source (HASH, METIS, decayed TR-METIS).
	DecayedWindow bool
	// Multilevel configures the METIS-substitute partitioner.
	Multilevel multilevel.Config
	// KL configures the Kernighan–Lin refiner.
	KL partition.KLConfig
	// StorageSlots, when non-nil, reports a vertex's storage footprint so
	// moves can be weighed in relocated state, not just vertex count.
	StorageSlots func(graph.VertexID) int
	// HashPlacement forces hash placement of newly appearing vertices for
	// every method, replacing the paper's min-cut/tie-balance rule. Used
	// only by the placement ablation bench.
	HashPlacement bool
	// Placement selects the placement rule's size control; see
	// PlacementPenalty. The zero value (PenaltyAuto) follows the decay
	// mode: hard cap on full history, Fennel penalty under decay.
	Placement PlacementPenalty
	// Autoscale arms the saturation-driven shard autoscaler (see
	// AutoscaleConfig in autoscale.go): K becomes the *initial* shard
	// count and the controller splits/merges within [KMin, KMax] at window
	// boundaries. The zero value keeps K fixed for the run — byte-identical
	// to a simulator without the subsystem.
	Autoscale AutoscaleConfig

	// OnPlace, when non-nil, fires the moment a first-seen vertex is
	// assigned a shard (during the Process call that introduced it).
	OnPlace func(v graph.VertexID, shard int)
	// OnMove, when non-nil, fires for every vertex whose shard changes
	// while a repartition is applied, after the assignment is updated.
	// Observers driving a live system (see internal/opsim) translate these
	// into state migrations or re-homings.
	OnMove func(v graph.VertexID, from, to int)
	// OnRepartition, when non-nil, fires after a repartition completes,
	// with the window-boundary time that triggered it and the number of
	// vertices it moved. It fires after every OnMove of the batch.
	OnRepartition func(at time.Time, moves int)
	// OnRetire, when non-nil, fires for every vertex the decay sweep
	// retires from the live graph, with the sticky shard it keeps.
	// Observers maintaining a serving directory (see internal/directory)
	// use it to spill the entry to a cold tier; it never fires outside
	// decay mode.
	OnRetire func(v graph.VertexID, shard int)
	// OnResize, when non-nil, fires after the autoscaler completes a shard
	// resize, with the window-boundary time, the old and new shard counts,
	// and the number of vertices the scale wave moved. It fires after every
	// OnMove of the wave, so an observer (see internal/opsim and
	// directory.Publisher.OnResize) can commit the whole resize — new shard
	// count plus remapped placements — as one atomic epoch flip.
	OnResize func(at time.Time, oldK, newK, moves int)
}

// withDefaults fills zero fields with the paper's parameters.
func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 2
	}
	if c.Window <= 0 {
		c.Window = 4 * time.Hour
	}
	if c.RepartitionEvery <= 0 {
		c.RepartitionEvery = 14 * 24 * time.Hour
	}
	if c.CutThreshold <= 0 {
		c.CutThreshold = defaultCutThreshold(c.K)
	}
	if c.BalanceThreshold <= 0 {
		c.BalanceThreshold = defaultBalanceThreshold(c.K)
	}
	if c.MinRepartitionGap <= 0 {
		c.MinRepartitionGap = 3 * 24 * time.Hour
	}
	if c.TriggerWindows <= 0 {
		c.TriggerWindows = 6 // one day of sustained degradation
	}
	if c.DecayHalfLife > 0 && c.Horizon <= 0 {
		// Four half-lives: by then an entry's decayed weight has dropped
		// past 1/16 of its peak — effectively zero on integer weights.
		c.Horizon = 4 * c.DecayHalfLife
	}
	if c.Autoscale.Enabled {
		c.Autoscale = c.Autoscale.withDefaults(c.K, c.MinRepartitionGap)
	}
	return c
}

// defaultCutThreshold is the TR-METIS cut trigger derived from the shard
// count: the hashing baseline cuts (k-1)/k of the edges, and a threshold a
// little below that fires only when the partition has degraded toward "as
// bad as hashing". The paper tunes thresholds so TR-METIS tracks R-METIS
// quality with far fewer repartitions.
func defaultCutThreshold(k int) float64 {
	return 0.9 * float64(k-1) / float64(k)
}

// defaultBalanceThreshold is the TR-METIS balance trigger derived from the
// shard count: Eq. 2's balance ranges over [1, k], so the tolerated
// imbalance widens with k.
func defaultBalanceThreshold(k int) float64 {
	return 1.0 + 0.4*float64(k-1)
}

// WindowStat is one data point of Fig. 3: metrics for a four-hour window.
type WindowStat struct {
	Start time.Time
	// DynamicCut is the cross-shard fraction of the interaction weight
	// executed in this window — the "executed cross-shard transactions".
	DynamicCut float64
	// DynamicBalance is Eq. 2 over the activity each shard served in this
	// window.
	DynamicBalance float64
	// StaticCut is Eq. 1 over the cumulative graph at window end.
	StaticCut float64
	// StaticBalance is Eq. 2 over vertex counts at window end.
	StaticBalance float64
	// Moves is the number of vertices that changed shard in this window.
	Moves int64
	// MovedSlots is the storage relocated by those moves, in slots.
	MovedSlots int64
	// Repartitioned marks windows in which the policy fired.
	Repartitioned bool
	// Interactions is the window's interaction count.
	Interactions int64
	// Shards is the shard count the window was served at — constant without
	// the autoscaler, and the provisioned-capacity-over-time series (the
	// cost axis of the scalecost figure) with it.
	Shards int
	// PeakLoad is the largest per-shard load of the window — the
	// saturation signal the autoscaler's high-water trigger reads.
	PeakLoad int64
}

// Result is the outcome of a simulation run.
type Result struct {
	Method  Method
	K       int
	Windows []WindowStat
	// TotalMoves counts every vertex-shard change over the run.
	TotalMoves int64
	// TotalMovedSlots is the total storage relocated.
	TotalMovedSlots int64
	// Repartitions counts policy firings.
	Repartitions int
	// OverallDynamicCut is the cross-shard fraction of all executed
	// interaction weight over the whole run (Fig. 5's dynamic edge-cut).
	OverallDynamicCut float64
	// OverallDynamicBalance is Eq. 2 over the total activity each shard
	// served across the run (Fig. 5's dynamic balance).
	OverallDynamicBalance float64
	// FinalStaticCut and FinalStaticBalance are Eq. 1/2 on the final graph.
	FinalStaticCut     float64
	FinalStaticBalance float64
	// Vertices and Edges describe the final graph.
	Vertices, Edges int
	// Resizes records every autoscaler firing in order; empty (nil) unless
	// Config.Autoscale is enabled and the controller actually fired, so
	// fixed-k results are byte-identical to a simulator without the field.
	Resizes []ResizeEvent
}

// SweepObs is one window's decay-sweep observation — the measurement half
// of the O(touched) hot-path claim, kept outside Result so measurement
// noise (nanoseconds) never perturbs result goldens. One entry is recorded
// per flushed window, decay mode or not; windows without a sweep (decay
// off, or an empty live graph) report zero work and RecountSkipped true.
type SweepObs struct {
	// Start is the window's start time (joins with WindowStat.Start).
	Start time.Time
	// LiveVertices is the live-graph size after the window's sweep.
	LiveVertices int
	// SweepNanos is the wall time of the decay sweep, including the
	// incremental cut-counter updates driven by its edge deltas.
	SweepNanos int64
	// Touched counts the entries the sweep visited (graph.DecayDelta's
	// work metric): O(touched traffic) on the scheduled path regardless of
	// live-graph size.
	Touched int
	// RecountSkipped reports that the sweep changed no edge, so cut
	// maintenance — the former per-window O(live edges) recount — did zero
	// work this window.
	RecountSkipped bool
}

// Simulator replays interaction records under one method configuration.
// Feed it records in time order via Process, then call Finish.
//
// Simulator is not safe for concurrent use.
type Simulator struct {
	cfg Config

	full   *graph.Graph // cumulative graph
	window *graph.Graph // graph of interactions since the last repartition
	assign *partition.Assignment

	hash partition.Hash
	ml   *multilevel.Partitioner
	kl   *partition.KL

	// csrb reuses CSR build scratch across window rebuilds.
	csrb graph.CSRBuilder
	// placeScratch and loadScratch keep PlaceVertex and staticBalance
	// allocation-free on the per-record hot path.
	placeScratch []int64
	loadScratch  []int64

	// Incrementally maintained cumulative cut state.
	cutEdges, totalEdges   int64
	cutWeight, totalWeight int64

	// Current window accumulation.
	winStart    time.Time
	winLoad     []int64
	winCutW     int64
	winTotalW   int64
	winCount    int64
	winMoves    int64
	winSlots    int64
	winReparted bool

	// Whole-run accounting for Fig. 5: per-shard served load and the
	// cross-shard fraction of executed interactions (evaluated at
	// execution time, like a real sharded system would experience it).
	runLoad          []int64
	runCutW, runTotW int64

	lastRepart time.Time
	started    bool
	finished   bool
	// badWindows counts consecutive over-threshold observed windows
	// (TR-METIS); quiet windows neither extend nor reset the streak, but
	// a quiet gap longer than TriggerWindows ages the evidence out.
	// lastBadWindow is the flushed-window count at the streak's newest
	// evidence, for measuring that gap.
	badWindows    int
	lastBadWindow int

	// Autoscaler state (Config.Autoscale.Enabled): whether the TR-METIS
	// trigger thresholds were defaulted from K (and so must be re-derived
	// at the new k after a resize) rather than pinned by the caller, the
	// hysteresis streaks, and the saturation signals of the most recently
	// flushed window, stashed by flushWindow before it resets the
	// accumulators the controller reads.
	cutDefaulted, balDefaulted bool
	hotStreak, coldStreak      int
	lastWinMaxLoad             int64
	lastWinSumLoad             int64
	lastWinCut                 float64
	lastWinInteractions        int64

	// Decay mode (Config.DecayHalfLife > 0): the per-window weight
	// multiplier, the retention horizon in windows, and whether the
	// method needs the since-last-repartition window graph at all
	// (TR-METIS repartitions the decayed live graph instead).
	// liveCounts tracks live-graph vertices per shard — retired vertices
	// keep sticky assignments, so assign.Count measures dead history;
	// placement capacity and static balance must follow what actually
	// exists. Maintained incrementally (first sight, retirement, moves)
	// and only in decay mode.
	decayFactor float64
	decayMaxAge uint32
	needWindow  bool
	liveCounts  []int
	// fennelPlace selects the Fennel-style placement penalty, resolved
	// from Config.Placement (and the decay mode) at construction.
	fennelPlace bool

	// sweeps records one SweepObs per flushed window; see Sweeps.
	sweeps []SweepObs

	result Result
}

// New returns a simulator for cfg.
func New(cfg Config) (*Simulator, error) {
	// Whether the TR-METIS thresholds were left to default must be known
	// before withDefaults fills them: a resize re-derives defaulted
	// thresholds at the new k but never touches caller-pinned values.
	cutDefaulted := cfg.CutThreshold <= 0
	balDefaulted := cfg.BalanceThreshold <= 0
	cfg = cfg.withDefaults()
	if cfg.Method < MethodHash || cfg.Method > MethodTRMetis {
		return nil, fmt.Errorf("sim: invalid method %d", cfg.Method)
	}
	if cfg.Horizon > 0 && cfg.DecayHalfLife <= 0 {
		// A horizon without a half-life would be silently ignored —
		// full-history mode with the caller believing memory is bounded.
		return nil, fmt.Errorf("sim: Horizon is set but DecayHalfLife is not; decay needs both (or neither)")
	}
	if cfg.Autoscale.Enabled {
		if err := cfg.Autoscale.validate(cfg.K); err != nil {
			return nil, err
		}
	}
	assign, err := partition.NewAssignment(cfg.K)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:          cfg,
		full:         graph.New(),
		window:       graph.New(),
		assign:       assign,
		ml:           multilevel.New(cfg.Multilevel),
		kl:           partition.NewKL(cfg.KL),
		placeScratch: make([]int64, cfg.K),
		loadScratch:  make([]int64, cfg.K),
		winLoad:      make([]int64, cfg.K),
		runLoad:      make([]int64, cfg.K),
		cutDefaulted: cutDefaulted,
		balDefaulted: balDefaulted,
		result:       Result{Method: cfg.Method, K: cfg.K},
	}
	if cfg.DecayHalfLife > 0 {
		s.decayFactor = math.Exp2(-float64(cfg.Window) / float64(cfg.DecayHalfLife))
		if s.decayFactor == 0 {
			// A half-life thousands of times shorter than the window
			// underflows Exp2 to zero, which would read as "decay off".
			// Any such factor already means "every weight collapses to the
			// floor of one within a single sweep", so the smallest positive
			// float keeps exactly those semantics while keeping decay on.
			s.decayFactor = math.SmallestNonzeroFloat64
		}
		// Age is counted in whole windows and an entry touched just before
		// a boundary is already age 1 at the next sweep, so retirement at
		// age maxAge means a minimum idle time of (maxAge−1) windows; the
		// +1 guarantees that minimum is at least Horizon, honouring the
		// "untouched for at least Horizon" contract (and keeping
		// Horizon <= Window from degenerating into wiping every entry at
		// every boundary).
		s.decayMaxAge = uint32((int64(cfg.Horizon)+int64(cfg.Window)-1)/int64(cfg.Window) + 1)
		s.liveCounts = make([]int, cfg.K)
		// Scheduled decay makes each sweep O(traffic touched within the
		// horizon) instead of O(live graph); it is observably identical to
		// the eager sweep (pinned by the graph package's property test). A
		// horizon beyond the schedule's ring bound simply stays on the
		// eager path — correct either way, so the error is not one.
		_ = s.full.EnableScheduledDecay(s.decayMaxAge)
	}
	switch cfg.Placement {
	case PenaltyAuto:
		s.fennelPlace = s.decayEnabled()
	case PenaltyFennel:
		s.fennelPlace = true
	}
	// The window graph only serves methods that repartition over the
	// since-last-repartition slice; under decay TR-METIS switches to the
	// decayed live graph, so accumulating it would only burn memory.
	switch cfg.Method {
	case MethodKL, MethodRMetis:
		s.needWindow = true
	case MethodTRMetis:
		s.needWindow = !s.decayEnabled()
	}
	return s, nil
}

// decayEnabled reports whether windowed decay mode is on.
func (s *Simulator) decayEnabled() bool { return s.decayFactor > 0 }

// K returns the current shard count — Config.K until the autoscaler moves
// it.
func (s *Simulator) K() int { return s.cfg.K }

// Assignment exposes the live assignment (read-only use).
func (s *Simulator) Assignment() *partition.Assignment { return s.assign }

// Graph exposes the cumulative graph (read-only use).
func (s *Simulator) Graph() *graph.Graph { return s.full }

// Sweeps returns the per-window sweep observations recorded so far, one
// per flushed window, parallel to Result.Windows. The slice aliases the
// simulator's internal storage; callers must not modify it.
func (s *Simulator) Sweeps() []SweepObs { return s.sweeps }

// Process consumes one interaction record. Records must arrive in
// non-decreasing time order.
func (s *Simulator) Process(rec trace.Record) error {
	t := time.Unix(rec.Time, 0).UTC()
	if !s.started {
		s.winStart = t.Truncate(s.cfg.Window)
		s.lastRepart = t
		s.started = true
	}
	// Window roll-over (possibly across several empty windows).
	for t.Sub(s.winStart) >= s.cfg.Window {
		s.flushWindow()
		s.winStart = s.winStart.Add(s.cfg.Window)
		// Decay ages the live graph before the policy looks at it, so a
		// firing repartition sees this window's weights already decayed.
		s.decayStep()
		// The autoscaler runs before the repartition policy: a firing
		// resize IS a repartition wave (it advances lastRepart), so the
		// policy never double-fires on the same boundary.
		if err := s.maybeResize(s.winStart); err != nil {
			return err
		}
		// Threshold policy is evaluated at window boundaries; periodic
		// policies by elapsed time.
		if err := s.maybeRepartition(s.winStart); err != nil {
			return err
		}
	}

	u := graph.VertexID(rec.From)
	v := graph.VertexID(rec.To)
	newEdge := u != v && s.full.EdgeWeight(u, v) == 0
	// In decay mode, endpoints absent from the live graph (brand new or
	// retired-and-reappearing) are about to become live; their shard joins
	// the live counts after placement resolves it.
	var newU, newV bool
	if s.decayEnabled() {
		newU = !s.full.HasVertex(u)
		newV = u != v && !s.full.HasVertex(v)
	}

	if err := rec.Apply(s.full); err != nil {
		return err
	}
	if s.needWindow {
		if err := rec.Apply(s.window); err != nil {
			return err
		}
	}

	// Place endpoints that are new to the assignment. Each endpoint joins
	// the live counts right after its own placement, before the next
	// placement reads them — mirroring when the assignment's counts move.
	su, err := s.placeIfNew(u)
	if err != nil {
		return err
	}
	if newU {
		s.liveCounts[su]++
	}
	sv, err := s.placeIfNew(v)
	if err != nil {
		return err
	}
	if newV {
		s.liveCounts[sv]++
	}

	// Update cumulative cut state.
	cross := su != sv && u != v
	if newEdge {
		s.totalEdges++
		if cross {
			s.cutEdges++
		}
	}
	if u != v {
		s.totalWeight++
		if cross {
			s.cutWeight++
		}
	}

	// Window accumulation: each interaction is one unit of load on each
	// endpoint's shard; cross-shard interactions count against the cut.
	s.winCount++
	s.winLoad[su]++
	s.runLoad[su]++
	if u != v {
		s.winLoad[sv]++
		s.runLoad[sv]++
		s.winTotalW++
		s.runTotW++
		if cross {
			s.winCutW++
			s.runCutW++
		}
	}
	return nil
}

// placeIfNew assigns a shard to v if it has none, per the method's rule,
// and returns v's shard.
func (s *Simulator) placeIfNew(v graph.VertexID) (int, error) {
	if shard, ok := s.assign.ShardOf(v); ok {
		return shard, nil
	}
	var shard int
	switch {
	case s.cfg.Method == MethodHash || s.cfg.HashPlacement:
		shard = s.hash.ShardOf(v, s.cfg.K)
	case s.fennelPlace:
		// Decay-aware placement: decayed neighbour weights against the
		// shared degree-based size penalty, over the live population.
		shard = partition.PlaceVertexFennel(s.full, s.assign, v, s.placeScratch, s.liveCounts)
	default:
		// liveCounts is nil outside decay mode, falling back to the
		// assignment's cumulative counts.
		shard = partition.PlaceVertexCounts(s.full, s.assign, v, s.placeScratch, s.liveCounts)
	}
	if _, _, err := s.assign.Assign(v, shard); err != nil {
		return 0, err
	}
	if s.cfg.OnPlace != nil {
		s.cfg.OnPlace(v, shard)
	}
	return shard, nil
}

// flushWindow closes the current window into the result.
func (s *Simulator) flushWindow() {
	stat := WindowStat{
		Start:          s.winStart,
		DynamicBalance: metrics.LoadBalance(s.winLoad),
		StaticBalance:  s.staticBalance(),
		Moves:          s.winMoves,
		MovedSlots:     s.winSlots,
		Repartitioned:  s.winReparted,
		Interactions:   s.winCount,
		Shards:         s.cfg.K,
	}
	if s.winTotalW > 0 {
		stat.DynamicCut = float64(s.winCutW) / float64(s.winTotalW)
	}
	if s.totalEdges > 0 {
		stat.StaticCut = float64(s.cutEdges) / float64(s.totalEdges)
	}
	for _, l := range s.winLoad {
		if l > stat.PeakLoad {
			stat.PeakLoad = l
		}
	}
	s.result.Windows = append(s.result.Windows, stat)
	if s.cfg.Autoscale.Enabled {
		// Stash the controller's saturation signals before the reset below;
		// the autoscaler runs at the boundary, after decay, on the window
		// just closed.
		s.lastWinSumLoad = 0
		for _, l := range s.winLoad {
			s.lastWinSumLoad += l
		}
		s.lastWinMaxLoad = stat.PeakLoad
		s.lastWinCut = stat.DynamicCut
		s.lastWinInteractions = s.winCount
	}
	// Pre-fill the window's sweep observation; decayStep overwrites it if
	// a sweep actually runs (it fires right after this flush).
	s.sweeps = append(s.sweeps, SweepObs{
		Start:          s.winStart,
		LiveVertices:   s.full.VertexCount(),
		RecountSkipped: true,
	})

	for i := range s.winLoad {
		s.winLoad[i] = 0
	}
	s.winCutW, s.winTotalW, s.winCount = 0, 0, 0
	s.winMoves, s.winSlots = 0, 0
	s.winReparted = false
}

// decayStep ages the cumulative graph by one window in decay mode: weights
// shrink by the per-window factor and entries beyond the retention horizon
// retire. The cumulative cut counters are maintained *incrementally* from
// the sweep's edge deltas — every dropped or rescaled directed edge
// adjusts the counters by exactly its change, against the sticky shard
// assignments both endpoints are guaranteed to hold — so StaticCut stays
// Eq. 1 over exactly what the partitioners see without the former
// per-window O(live edges) recount. A quiet sweep (nothing dropped,
// nothing rescaled — the steady state once weights sit at the decay floor)
// does zero cut-maintenance work; recountCut survives as the test oracle
// this path is checked against.
func (s *Simulator) decayStep() {
	if !s.decayEnabled() {
		return
	}
	if s.full.VertexCount() == 0 {
		// Nothing live: the sweep would be a no-op. A long quiet gap rolls
		// over thousands of windows; skipping here keeps that O(windows),
		// not O(windows × peak slots). Skipping the epoch advance is safe —
		// ages only matter relative to sweeps that actually saw something.
		return
	}
	start := time.Now()
	delta := s.full.DecaySweep(s.decayFactor, s.decayMaxAge,
		func(v graph.VertexID) {
			// Retired vertices keep their sticky assignment but leave the
			// live population.
			if shard, ok := s.assign.ShardOf(v); ok {
				s.liveCounts[shard]--
				if s.cfg.OnRetire != nil {
					s.cfg.OnRetire(v, shard)
				}
			}
		},
		func(u, v graph.VertexID, oldW, newW int64) {
			// One callback per changed directed edge: newW == 0 is a
			// horizon drop, otherwise a weight rescale. Assignments are
			// sticky through retirement, so both endpoints still resolve
			// even when the sweep is about to retire them.
			su, _ := s.assign.ShardOf(u)
			sv, _ := s.assign.ShardOf(v)
			cross := su != sv
			if newW == 0 {
				s.totalEdges--
				s.totalWeight -= oldW
				if cross {
					s.cutEdges--
					s.cutWeight -= oldW
				}
				return
			}
			s.totalWeight += newW - oldW
			if cross {
				s.cutWeight += newW - oldW
			}
		})
	obs := &s.sweeps[len(s.sweeps)-1]
	obs.SweepNanos = time.Since(start).Nanoseconds()
	obs.LiveVertices = s.full.VertexCount()
	obs.Touched = delta.Touched
	obs.RecountSkipped = delta.Quiet()
}

// recountCut rebuilds the cumulative cut counters from the live graph and
// the current assignment. Every live vertex has a shard (placement happens
// on first sight and assignments are sticky through retirement), so the
// counters stay exact under decay and retirement. The hot path maintains
// the counters incrementally (Process, moveCutDelta, and decayStep's sweep
// deltas); this full recount is retained as the oracle the incremental
// path is verified against in tests.
func (s *Simulator) recountCut() {
	s.cutEdges, s.totalEdges = 0, 0
	s.cutWeight, s.totalWeight = 0, 0
	s.full.Edges(func(u, v graph.VertexID, w int64) bool {
		su, _ := s.assign.ShardOf(u)
		sv, _ := s.assign.ShardOf(v)
		s.totalEdges++
		s.totalWeight += w
		if su != sv {
			s.cutEdges++
			s.cutWeight += w
		}
		return true
	})
}

// staticBalance is Eq. 2 over vertex counts: assignment counts in
// full-history mode, per-shard live counts in decay mode. Retired vertices
// keep sticky assignments but no longer describe what the partitioners
// balance, so decay mode counts the live population — the same one
// StaticCut is recounted over and placement capacity is measured against —
// or the static metrics would drift onto different vertex sets.
func (s *Simulator) staticBalance() float64 {
	if s.decayEnabled() {
		for i := range s.loadScratch {
			s.loadScratch[i] = int64(s.liveCounts[i])
		}
	} else {
		for i := range s.loadScratch {
			s.loadScratch[i] = int64(s.assign.Count(i))
		}
	}
	return metrics.LoadBalance(s.loadScratch)
}

// maybeRepartition fires the method's policy at a window boundary.
func (s *Simulator) maybeRepartition(now time.Time) error {
	switch s.cfg.Method {
	case MethodHash:
		return nil
	case MethodKL, MethodMetis, MethodRMetis:
		if now.Sub(s.lastRepart) < s.cfg.RepartitionEvery {
			return nil
		}
	case MethodTRMetis:
		// The paper's trigger: TriggerWindows *consecutive* degraded
		// windows. A quiet window (no interactions) carries no evidence
		// either way — it neither extends nor erases the streak, so a
		// one-window lull during a multi-window rollover cannot wipe out
		// five genuinely bad windows. Two staleness guards bound the
		// evidence: a quiet gap longer than TriggerWindows windows ages
		// the streak out entirely (degradation separated by more idle
		// time than the trigger's own timescale is not "consecutive"),
		// and a firing always requires the just-flushed window itself to
		// be degraded — evidence accumulated while MinRepartitionGap
		// blocked the trigger can never fire on its own once the gap
		// elapses, only a fresh degraded window can.
		winCount := len(s.result.Windows)
		if winCount == 0 {
			return nil
		}
		last := s.result.Windows[winCount-1]
		if last.Interactions == 0 {
			return nil
		}
		if last.DynamicCut <= s.cfg.CutThreshold && last.DynamicBalance <= s.cfg.BalanceThreshold {
			s.badWindows = 0
			return nil
		}
		if s.badWindows > 0 && winCount-s.lastBadWindow-1 > s.cfg.TriggerWindows {
			s.badWindows = 0 // evidence aged out across the quiet gap
		}
		s.badWindows++
		s.lastBadWindow = winCount
		if now.Sub(s.lastRepart) < s.cfg.MinRepartitionGap {
			return nil
		}
		if s.badWindows < s.cfg.TriggerWindows {
			return nil
		}
		s.badWindows = 0
	}
	return s.repartition(now)
}

// repartition runs the method's partitioner and applies the result.
func (s *Simulator) repartition(now time.Time) error {
	var moves int
	switch s.cfg.Method {
	case MethodKL:
		// KL refines using the transactions of the period (window graph),
		// or — with DecayedWindow in decay mode — the window vertices with
		// their decayed live neighbourhood, so refinement gains weigh
		// recency-weighted adjacency instead of the raw period counts.
		src := s.window
		if s.useDecayedWindow() {
			src = s.decayedWindowGraph()
		}
		if src.VertexCount() == 0 {
			break
		}
		csr := s.csrb.Build(src)
		parts := s.assign.ToParts(csr)
		// All source vertices were placed on first sight (assignments are
		// sticky through retirement, so decayed-neighbourhood vertices
		// resolve too).
		refined, err := s.kl.Refine(csr, s.cfg.K, parts)
		if err != nil {
			return fmt.Errorf("sim: KL refine: %w", err)
		}
		if moves, err = s.applyParts(csr, refined); err != nil {
			return err
		}
	case MethodMetis:
		// METIS repartitions the whole cumulative graph.
		if s.full.VertexCount() == 0 {
			break
		}
		csr := s.csrb.Build(s.full)
		parts, err := s.ml.Partition(csr, s.cfg.K)
		if err != nil {
			return fmt.Errorf("sim: multilevel partition: %w", err)
		}
		if moves, err = s.applyParts(csr, parts); err != nil {
			return err
		}
	case MethodRMetis, MethodTRMetis:
		// Reduced graph: the window since the last repartition — except
		// TR-METIS in decay mode, which partitions the decayed live graph:
		// the same recency bias with heavy recent edges still outvoting
		// one-off traffic, and bounded by the retention horizon instead of
		// the (unbounded) time between firings. R-METIS with DecayedWindow
		// takes the middle ground: window ∪ decayed neighbourhood.
		src := s.window
		if s.cfg.Method == MethodTRMetis && s.decayEnabled() {
			src = s.full
		} else if s.useDecayedWindow() {
			src = s.decayedWindowGraph()
		}
		if src.VertexCount() == 0 {
			break
		}
		csr := s.csrb.Build(src)
		parts, err := s.ml.Partition(csr, s.cfg.K)
		if err != nil {
			return fmt.Errorf("sim: multilevel partition (window): %w", err)
		}
		if moves, err = s.applyParts(csr, parts); err != nil {
			return err
		}
	}
	s.lastRepart = now
	s.window = graph.New()
	s.winReparted = true
	s.winMoves += int64(moves)
	s.result.TotalMoves += int64(moves)
	s.result.Repartitions++
	if s.cfg.OnRepartition != nil {
		s.cfg.OnRepartition(now, moves)
	}
	return nil
}

// useDecayedWindow reports whether window-sourced methods (KL, R-METIS)
// should repartition the decayed window union instead of the raw window.
func (s *Simulator) useDecayedWindow() bool {
	return s.cfg.DecayedWindow && s.decayEnabled()
}

// decayedWindowGraph builds the decayed repartition source for KL and
// R-METIS: the vertices of the current window graph, plus every edge of
// the decayed cumulative graph incident to at least one of them — at its
// decayed weight — which pulls in the one-hop decayed neighbourhood. This
// is the window-scoped analogue of the full decayed graph TR-METIS
// partitions: bounded by the window's reach rather than the whole live
// graph, but seeing recency-weighted adjacency instead of raw period
// counts. Window vertices whose every trace of activity has already
// retired from the live graph are kept as isolated vertices, so the
// partitioner still re-balances them.
func (s *Simulator) decayedWindowGraph() *graph.Graph {
	u := graph.New()
	s.window.Vertices(func(id graph.VertexID, kind graph.Kind, _ int64) bool {
		if !s.full.HasVertex(id) {
			// Retired mid-period: no decayed adjacency survives, but the
			// vertex did transact this period and stays partitionable.
			u.EnsureVertex(id, kind)
			return true
		}
		u.EnsureVertex(id, s.full.VertexKind(id))
		// All decayed out-edges of a window vertex...
		s.full.OutNeighbors(id, func(v graph.VertexID, w int64) bool {
			if err := u.AddInteraction(id, v, s.full.VertexKind(id), s.full.VertexKind(v), w); err != nil {
				panic(fmt.Sprintf("sim: decayed window union: %v", err))
			}
			return true
		})
		// ...plus decayed in-edges from outside the window (edges between
		// two window vertices are covered once, by the source's out pass).
		s.full.InNeighbors(id, func(v graph.VertexID, w int64) bool {
			if s.window.HasVertex(v) {
				return true
			}
			if err := u.AddInteraction(v, id, s.full.VertexKind(v), s.full.VertexKind(id), w); err != nil {
				panic(fmt.Sprintf("sim: decayed window union: %v", err))
			}
			return true
		})
		return true
	})
	return u
}

// applyParts applies a partitioner result, accounting moved storage and
// keeping the cumulative cut counters exact incrementally: each moved
// vertex contributes the cut delta of its incident full-graph edges, so a
// repartition costs O(sum of moved-vertex degrees) instead of a full O(E)
// recount over the cumulative graph.
func (s *Simulator) applyParts(csr *graph.CSR, parts []int) (int, error) {
	if len(parts) != csr.N() {
		return 0, fmt.Errorf("sim: applying partition: result has %d entries for %d vertices",
			len(parts), csr.N())
	}
	var moves int
	var slots int64
	for i, id := range csr.IDs {
		old, ok := s.assign.ShardOf(id)
		if ok && old == parts[i] {
			continue
		}
		if ok {
			s.moveCutDelta(id, old, parts[i])
			if s.cfg.StorageSlots != nil {
				slots += int64(s.cfg.StorageSlots(id))
			}
			moves++
			// Live counts follow the move. A window-graph vertex (KL,
			// R-METIS) may already have retired from the live graph; its
			// sticky assignment still moves, the live population doesn't.
			if s.decayEnabled() && s.full.HasVertex(id) {
				s.liveCounts[old]--
				s.liveCounts[parts[i]]++
			}
		}
		if _, _, err := s.assign.Assign(id, parts[i]); err != nil {
			return moves, fmt.Errorf("sim: applying partition: %w", err)
		}
		if ok && s.cfg.OnMove != nil {
			s.cfg.OnMove(id, old, parts[i])
		}
	}
	s.winSlots += slots
	s.result.TotalMovedSlots += slots
	return moves, nil
}

// moveCutDelta updates the cumulative cut counters for vertex v moving from
// shard old to shard next. It must run before the assignment is updated;
// neighbour shards reflect the current (possibly mid-batch) state, which
// keeps the invariant exact because each single-vertex move is accounted
// against the state it executes in.
func (s *Simulator) moveCutDelta(v graph.VertexID, old, next int) {
	adjust := func(u graph.VertexID, w int64) bool {
		su, ok := s.assign.ShardOf(u)
		if !ok {
			return true
		}
		wasCross := su != old
		isCross := su != next
		if wasCross == isCross {
			return true
		}
		if isCross {
			s.cutEdges++
			s.cutWeight += w
		} else {
			s.cutEdges--
			s.cutWeight -= w
		}
		return true
	}
	s.full.OutNeighbors(v, adjust)
	s.full.InNeighbors(v, adjust)
}

// Finish flushes the open window and computes run-level metrics. It is
// idempotent: repeated calls return the same result without flushing a
// duplicate trailing window.
func (s *Simulator) Finish() *Result {
	if s.started && !s.finished {
		s.flushWindow()
	}
	s.finished = true
	res := &s.result
	res.OverallDynamicBalance = metrics.LoadBalance(s.runLoad)
	if s.runTotW > 0 {
		res.OverallDynamicCut = float64(s.runCutW) / float64(s.runTotW)
	}
	if s.totalEdges > 0 {
		res.FinalStaticCut = float64(s.cutEdges) / float64(s.totalEdges)
	}
	res.FinalStaticBalance = s.staticBalance()
	res.Vertices = s.full.VertexCount()
	res.Edges = s.full.EdgeCount()
	return res
}
