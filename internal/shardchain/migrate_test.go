package shardchain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// sameAccount compares addr's full account state between a shard state and
// the unsharded oracle: balance, nonce, code and storage in both directions.
func sameAccount(t *testing.T, got, oracle *chain.State, addr types.Address) bool {
	t.Helper()
	if got.GetBalance(addr) != oracle.GetBalance(addr) {
		return false
	}
	if got.GetNonce(addr) != oracle.GetNonce(addr) {
		return false
	}
	if string(got.GetCode(addr)) != string(oracle.GetCode(addr)) {
		return false
	}
	equal := true
	got.EachStorage(addr, func(k, v evm.Word) bool {
		if oracle.GetState(addr, k) != v {
			equal = false
		}
		return equal
	})
	oracle.EachStorage(addr, func(k, v evm.Word) bool {
		if got.GetState(addr, k) != v {
			equal = false
		}
		return equal
	})
	return equal
}

func TestMigrateRoundTripPurgesGhostState(t *testing.T) {
	// The ISSUE scenario: a slot zeroed while the account lived on another
	// shard must not resurrect with its stale value on the way back.
	x := types.AddressFromSeq(9)
	sc, err := New(Config{K: 2, Model: ModelMigration, Chain: chain.DefaultConfig()},
		map[types.Address]evm.Word{x: evm.WordFromUint64(1000)},
		fixedAssign(map[types.Address]int{x: 0}))
	if err != nil {
		t.Fatal(err)
	}
	st0 := sc.StateOf(0)
	st0.SetNonce(x, 3)
	st0.SetCode(x, []byte{0xaa, 0xbb})
	st0.SetState(x, evm.WordFromUint64(1), evm.WordFromUint64(10))
	st0.SetState(x, evm.WordFromUint64(2), evm.WordFromUint64(20))
	st0.DiscardJournal()

	if moved, err := sc.MigrateAccount(x, 1); err != nil || !moved {
		t.Fatalf("migrate to 1: moved=%v err=%v", moved, err)
	}
	if st0.Exist(x) {
		t.Fatal("source shard must not keep a ghost account after migration")
	}
	if st0.GetCode(x) != nil || st0.GetNonce(x) != 0 || st0.StorageSize(x) != 0 {
		t.Fatal("source shard must not keep nonce, code or storage after migration")
	}

	// While on shard 1: zero slot 1, write slot 3.
	st1 := sc.StateOf(1)
	st1.SetState(x, evm.WordFromUint64(1), evm.Word{})
	st1.SetState(x, evm.WordFromUint64(3), evm.WordFromUint64(30))
	st1.DiscardJournal()

	if moved, err := sc.MigrateAccount(x, 0); err != nil || !moved {
		t.Fatalf("migrate back to 0: moved=%v err=%v", moved, err)
	}
	if st1.Exist(x) {
		t.Fatal("shard 1 must not keep a ghost account after the return trip")
	}
	if got := st0.GetState(x, evm.WordFromUint64(1)); !got.IsZero() {
		t.Errorf("slot 1 was zeroed while away but resurrected as %v", got)
	}
	if got := st0.GetState(x, evm.WordFromUint64(2)).Uint64(); got != 20 {
		t.Errorf("slot 2 = %d, want 20", got)
	}
	if got := st0.GetState(x, evm.WordFromUint64(3)).Uint64(); got != 30 {
		t.Errorf("slot 3 = %d, want 30", got)
	}
	if st0.GetNonce(x) != 3 || len(st0.GetCode(x)) != 2 {
		t.Error("nonce/code must survive the round trip")
	}
	if got := st0.GetBalance(x).Uint64(); got != 1000 {
		t.Errorf("balance = %d, want 1000", got)
	}
}

func TestPropertyMigrationRoundTripMatchesOracle(t *testing.T) {
	// Property: for any interleaving of storage/nonce/balance mutations and
	// shard-to-shard migrations, the account's state on its final home shard
	// equals an unsharded oracle state that saw the same mutations, and no
	// other shard knows the account at all.
	x := types.AddressFromSeq(7)
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3
		sc, err := New(Config{K: k, Model: ModelMigration, Chain: chain.DefaultConfig()},
			map[types.Address]evm.Word{x: evm.WordFromUint64(1 << 30)},
			fixedAssign(map[types.Address]int{x: 0}))
		if err != nil {
			return false
		}
		oracle := chain.NewState()
		oracle.AddBalance(x, evm.WordFromUint64(1<<30))
		oracle.SetCode(x, []byte{0x60})
		sc.StateOf(0).SetCode(x, []byte{0x60})

		ops := int(opsRaw%24) + 8
		for i := 0; i < ops; i++ {
			home, _ := sc.Known(x)
			cur := sc.StateOf(home)
			switch rng.Intn(4) {
			case 0: // migrate to a random shard (possibly the current one)
				if _, err := sc.MigrateAccount(x, rng.Intn(k)); err != nil {
					return false
				}
			case 1: // write (or zero) a storage slot
				key := evm.WordFromUint64(uint64(rng.Intn(6)))
				val := evm.WordFromUint64(uint64(rng.Intn(3) * 100)) // 0 deletes
				cur.SetState(x, key, val)
				oracle.SetState(x, key, val)
				cur.DiscardJournal()
			case 2: // bump the nonce
				cur.SetNonce(x, cur.GetNonce(x)+1)
				oracle.SetNonce(x, oracle.GetNonce(x)+1)
				cur.DiscardJournal()
			case 3: // move some balance
				amt := evm.WordFromUint64(uint64(rng.Intn(1000)))
				cur.SubBalance(x, amt)
				oracle.SubBalance(x, amt)
				cur.DiscardJournal()
			}
			oracle.DiscardJournal()
		}

		home, _ := sc.Known(x)
		if !sameAccount(t, sc.StateOf(home), oracle, x) {
			return false
		}
		for s := 0; s < k; s++ {
			if s != home && sc.StateOf(s).Exist(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMigrateAccountPrehomesUnknown(t *testing.T) {
	sc := newSC(t, ModelMigration, nil)
	if moved, err := sc.MigrateAccount(carol, 1); err != nil || moved {
		t.Fatalf("unknown account: moved=%v err=%v, want pre-home without transfer", moved, err)
	}
	if home, ok := sc.Known(carol); !ok || home != 1 {
		t.Errorf("carol home = %d,%v, want 1,true", home, ok)
	}
	if sc.Stats().Migrations != 0 {
		t.Error("pre-homing must not count as a migration")
	}
	// A second move of the still-unmaterialised account must also re-home
	// without a transfer: migrating nothing would fabricate an empty
	// account on the destination and count a phantom migration.
	if moved, err := sc.MigrateAccount(carol, 0); err != nil || moved {
		t.Fatalf("unmaterialised account: moved=%v err=%v, want re-home only", moved, err)
	}
	if home, _ := sc.Known(carol); home != 0 {
		t.Errorf("carol home = %d, want 0", home)
	}
	for s := 0; s < 2; s++ {
		if sc.StateOf(s).Exist(carol) {
			t.Errorf("shard %d fabricated an account for a stateless address", s)
		}
	}
	if st := sc.Stats(); st.Migrations != 0 || st.Messages != 0 {
		t.Error("moving a stateless account must not count migrations or messages")
	}
	if _, err := sc.MigrateAccount(carol, 5); err == nil {
		t.Error("out-of-range shard must error")
	}
}

func TestRehomeOnlyMovesUnmaterialisedAccounts(t *testing.T) {
	sc := newSC(t, ModelReceipts, map[types.Address]int{alice: 0})
	// alice has genesis state on shard 0: rehoming must refuse.
	if changed, err := sc.Rehome(alice, 1); err != nil || changed {
		t.Errorf("rehome of materialised account: changed=%v err=%v, want false,nil", changed, err)
	}
	if home, _ := sc.Known(alice); home != 0 {
		t.Error("alice must stay on shard 0")
	}
	// carol has no state anywhere: rehoming redirects her future placement.
	other := 1 - sc.HomeOf(carol) // assign via hash fallback, pick the other shard
	if changed, err := sc.Rehome(carol, other); err != nil || !changed {
		t.Errorf("rehome of unmaterialised account: changed=%v err=%v, want true,nil", changed, err)
	}
	if home, _ := sc.Known(carol); home != other {
		t.Errorf("carol home = %d, want %d", home, other)
	}
	if _, err := sc.Rehome(carol, -1); err == nil {
		t.Error("out-of-range shard must error")
	}
}

func TestInFlightReceiptFollowsRehome(t *testing.T) {
	// A receipt is routed to its target's home shard at emit time; if the
	// account is re-homed while the receipt is in flight, settlement must
	// follow it to the new home instead of stranding value on (or
	// resurrecting ghost state of) the stale shard.
	sc := newSC(t, ModelReceipts, map[types.Address]int{alice: 0, carol: 1})
	r := sc.Step([]*chain.Transaction{transfer(0, alice, carol, 500)})[0]
	if !r.Success {
		t.Fatalf("cross transfer failed: %v", r.Err)
	}
	// The receipt now sits in shard 1's inbox; carol has no state yet, so
	// re-homing her to shard 0 is legal.
	if changed, err := sc.Rehome(carol, 0); err != nil || !changed {
		t.Fatalf("rehome: changed=%v err=%v", changed, err)
	}
	// First drain step forwards the receipt, second settles it.
	sc.Step(nil)
	sc.Step(nil)
	if sc.PendingReceipts() != 0 {
		t.Fatal("receipt must settle after forwarding")
	}
	if got := sc.StateOf(0).GetBalance(carol).Uint64(); got != 500 {
		t.Errorf("carol balance on new home = %d, want 500", got)
	}
	if sc.StateOf(1).Exist(carol) {
		t.Error("stale shard must not keep any state for the re-homed account")
	}
	// Forwarding costs one extra message and one extra block of latency.
	st := sc.Stats()
	if st.ReceiptsSettled != 1 || st.SettlementBlocks != 2 {
		t.Errorf("settled=%d latency=%d, want 1 receipt at 2 blocks", st.ReceiptsSettled, st.SettlementBlocks)
	}
	if st.Messages != 2 {
		t.Errorf("messages = %d, want 2 (emit + forward)", st.Messages)
	}
}

func TestReceiptsCrossPathErrors(t *testing.T) {
	// alice on shard 0, bob on shard 1 → cross under receipts.
	sc := newSC(t, ModelReceipts, map[types.Address]int{alice: 0, bob: 1})

	// Nonce mismatch must be reported as ErrNonceMismatch.
	tx := transfer(5, alice, bob, 10)
	r := sc.Step([]*chain.Transaction{tx})[0]
	if r.Success || r.Err != chain.ErrNonceMismatch {
		t.Errorf("bad nonce: success=%v err=%v, want ErrNonceMismatch", r.Success, r.Err)
	}

	// Only the value is required: a transfer of the full balance with a
	// non-zero gas price succeeds (gas money is never debited on this path).
	full := sc.BalanceOf(alice).Uint64()
	r = sc.Step([]*chain.Transaction{transfer(0, alice, bob, full)})[0]
	if !r.Success {
		t.Errorf("full-balance cross transfer failed: %v", r.Err)
	}

	// Now alice has nothing: any value must fail with ErrInsufficientFunds.
	r = sc.Step([]*chain.Transaction{transfer(1, alice, bob, 1)})[0]
	if r.Success || r.Err != chain.ErrInsufficientFunds {
		t.Errorf("broke sender: success=%v err=%v, want ErrInsufficientFunds", r.Success, r.Err)
	}

	sc.Step(nil)
	if sc.PendingReceipts() != 0 {
		t.Error("all receipts must settle after a drain step")
	}
	if got := sc.BalanceOf(bob).Uint64(); got != (1<<40)+full {
		t.Errorf("bob balance = %d, want %d", got, (1<<40)+full)
	}
}
