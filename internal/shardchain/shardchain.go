// Package shardchain is a running sharded blockchain: k independent chains
// (one per shard), an account→shard assignment, and a router that executes
// every transaction under one of the two multi-shard handling classes the
// paper's introduction identifies:
//
//   - ModelReceipts (coordinated-style): a transaction executes on its
//     target's home shard; calls and transfers that reach accounts on other
//     shards become cross-shard receipts, settled asynchronously in the
//     destination shard's next block — the design family of Spanner-style
//     coordination adapted to blockchains (and of Eth2's receipt drafts);
//   - ModelMigration (state-movement): before executing, every remote
//     participant's account state is migrated to the executing shard and
//     the assignment is updated, after which the transaction runs locally —
//     the dynamic-SMR family.
//
// The paper explicitly does not build this layer ("It is not our goal to
// propose mechanisms for Ethereum to handle multi-shard transactions");
// this package exists so that the study's central quantity — the edge-cut —
// can be observed as what it really is operationally: cross-shard messages,
// settlement latency and migrated state.
//
// # Migration semantics
//
// Migrating an account moves its complete state — balance, nonce, code and
// every storage slot — and then purges the source copy with
// chain.State.DeleteAccount. The purge is load-bearing for correctness: a
// partial cleanup (e.g. zeroing only the balance) leaves a ghost account on
// the source shard whose nonce, code and storage survive, and because
// storage copies transfer live slots only, a later round-trip migration
// would resurrect slots that were zeroed while the account lived elsewhere.
// After a migration the source shard answers Exist == false for the
// address, exactly as if the account had never been created there.
//
// Placement can also be driven externally (by a repartitioner running
// alongside the chain): MigrateAccount realises a new placement by moving
// state, while Rehome only redirects accounts whose state has not
// materialised yet — the receipts-model reaction, where existing state
// stays put.
package shardchain

import (
	"fmt"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// Model selects the multi-shard transaction handling class.
type Model int

const (
	// ModelReceipts settles cross-shard effects asynchronously.
	ModelReceipts Model = iota + 1
	// ModelMigration moves state to the executing shard first.
	ModelMigration
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelReceipts:
		return "receipts"
	case ModelMigration:
		return "migration"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Receipt is a pending cross-shard effect: value (and optionally a call)
// heading for an account on another shard.
type Receipt struct {
	From  types.Address
	To    types.Address
	Value evm.Word
	Input []byte
	// Born is the block height (of the source shard) that emitted the
	// receipt; settlement latency is measured against it.
	Born uint64
}

// Stats counts the operational cost of a run.
type Stats struct {
	// Transactions executed, split by locality.
	LocalTxs, CrossTxs int64
	// Messages is the number of cross-shard messages sent (receipts and
	// migration transfers).
	Messages int64
	// ReceiptsSettled counts settled receipts; SettlementBlocks sums the
	// block-latency of each (settled - born), so the mean settlement
	// latency is SettlementBlocks/ReceiptsSettled.
	ReceiptsSettled  int64
	SettlementBlocks int64
	// Migrations counts account moves; MigratedSlots the storage moved.
	Migrations    int64
	MigratedSlots int64
	// Failed counts transactions rejected by validation.
	Failed int64
}

// Config parameterises the sharded chain.
type Config struct {
	K     int
	Model Model
	// Chain configures every per-shard chain.
	Chain chain.Config
}

// ShardChain is the sharded execution engine.
//
// ShardChain is not safe for concurrent use.
type ShardChain struct {
	cfg    Config
	shards []*shard
	// home maps every known account to its shard.
	home map[types.Address]int
	// assign supplies the partition for first-seen accounts; accounts it
	// does not know fall back to hash placement.
	assign func(types.Address) (int, bool)
	stats  Stats
	// clock is the global block height (all shards advance in lockstep,
	// one block per Step).
	clock uint64
}

// shard is one member chain plus its receipt inbox.
type shard struct {
	state *chain.State
	inbox []Receipt
	// outbox accumulates receipts emitted while executing the current
	// block, delivered to peers at the end of Step.
	outbox map[int][]Receipt
}

// New builds a sharded chain with k shards under the given model. The
// genesis allocation is placed on the owner accounts' home shards, which
// are derived from the provided assignment (nil entries fall back to a
// hash of the address).
func New(cfg Config, alloc map[types.Address]evm.Word, assign func(types.Address) (int, bool)) (*ShardChain, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("shardchain: k must be >= 1, got %d", cfg.K)
	}
	if cfg.Model != ModelReceipts && cfg.Model != ModelMigration {
		return nil, fmt.Errorf("shardchain: invalid model %d", cfg.Model)
	}
	sc := &ShardChain{
		cfg:    cfg,
		shards: make([]*shard, cfg.K),
		home:   make(map[types.Address]int),
		assign: assign,
	}
	for i := range sc.shards {
		sc.shards[i] = &shard{
			state:  chain.NewState(),
			outbox: make(map[int][]Receipt),
		}
	}
	for addr, bal := range alloc {
		s := sc.HomeOf(addr)
		sc.shards[s].state.AddBalance(addr, bal)
		sc.shards[s].state.DiscardJournal()
	}
	return sc, nil
}

// HomeOf returns the current home shard of addr, assigning one on first
// sight: the configured partition decides when it knows the address,
// otherwise placement falls back to a hash of the address.
func (sc *ShardChain) HomeOf(addr types.Address) int {
	if s, ok := sc.home[addr]; ok {
		return s
	}
	s := -1
	if sc.assign != nil {
		if a, ok := sc.assign(addr); ok && a >= 0 && a < sc.cfg.K {
			s = a
		}
	}
	if s < 0 {
		s = hashShard(addr, sc.cfg.K)
	}
	sc.home[addr] = s
	return s
}

// Stats returns the accumulated operational counters.
func (sc *ShardChain) Stats() Stats { return sc.stats }

// StateOf exposes a shard's state for inspection.
func (sc *ShardChain) StateOf(shard int) *chain.State { return sc.shards[shard].state }

// BalanceOf returns addr's balance on its home shard.
func (sc *ShardChain) BalanceOf(addr types.Address) evm.Word {
	return sc.shards[sc.HomeOf(addr)].state.GetBalance(addr)
}

// hashShard is the fallback placement.
func hashShard(addr types.Address, k int) int {
	var h uint32 = 2166136261
	for _, b := range addr {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h % uint32(k))
}

// Step executes one global block: it settles every shard's pending inbox,
// executes the given transactions, and delivers newly emitted receipts.
// Transactions execute on the home shard of their target (creation
// transactions on the sender's shard).
func (sc *ShardChain) Step(txs []*chain.Transaction) []*chain.Receipt {
	sc.clock++
	// Phase 1: settle inboxes (receipts emitted in earlier blocks).
	for i, sh := range sc.shards {
		inbox := sh.inbox
		sh.inbox = nil
		for _, r := range inbox {
			sc.settle(i, r)
		}
	}
	// Phase 2: execute this block's transactions.
	var receipts []*chain.Receipt
	for _, tx := range txs {
		receipts = append(receipts, sc.execute(tx))
	}
	// Phase 3: deliver outboxes.
	for _, sh := range sc.shards {
		for dst, rs := range sh.outbox {
			sc.shards[dst].inbox = append(sc.shards[dst].inbox, rs...)
			delete(sh.outbox, dst)
		}
	}
	return receipts
}

// settle applies one receipt on its destination shard. Receipts are routed
// to the target's home shard at emit time, but the home can change while
// the receipt is in flight (an externally driven MigrateAccount or Rehome
// between emission and delivery); settling on the stale shard would strand
// the value on a shard that is no longer — or never was — the account's
// home, resurrecting exactly the ghost state migration purges. So delivery
// re-checks the home and forwards the receipt (one more message, one more
// block of latency), like any routed settlement layer.
func (sc *ShardChain) settle(shardIdx int, r Receipt) {
	if home := sc.HomeOf(r.To); home != shardIdx {
		sh := sc.shards[shardIdx]
		sh.outbox[home] = append(sh.outbox[home], r)
		sc.stats.Messages++
		return
	}
	st := sc.shards[shardIdx].state
	st.AddBalance(r.To, r.Value)
	st.DiscardJournal()
	sc.stats.ReceiptsSettled++
	sc.stats.SettlementBlocks += int64(sc.clock - r.Born)
	// A receipt carrying input against a contract triggers its code —
	// the "continuation" of the cross-shard call.
	if code := st.GetCode(r.To); len(code) > 0 {
		vm := evm.New(st)
		vm.SetRemoteHook(sc.hookFor(shardIdx))
		// Continuation gas is bounded; failures are absorbed (the value
		// has already moved, as in asynchronous designs).
		_, _, _ = vm.Call(r.From, r.To, evm.Word{}, r.Input, 2_000_000)
		st.DiscardJournal()
	}
}

// hookFor returns the RemoteHook that diverts calls leaving shardIdx into
// receipts.
func (sc *ShardChain) hookFor(shardIdx int) evm.RemoteHook {
	return func(from, to types.Address, value evm.Word, input []byte) bool {
		dst := sc.HomeOf(to)
		if dst == shardIdx {
			return false // local: execute normally
		}
		sh := sc.shards[shardIdx]
		sh.outbox[dst] = append(sh.outbox[dst], Receipt{
			From: from, To: to, Value: value,
			Input: append([]byte(nil), input...),
			Born:  sc.clock,
		})
		sc.stats.Messages++
		return true
	}
}

// execute runs one transaction under the configured model.
func (sc *ShardChain) execute(tx *chain.Transaction) *chain.Receipt {
	// The executing shard: the target's home (sender's home for creates).
	var execShard int
	if tx.IsCreate() {
		execShard = sc.HomeOf(tx.From)
	} else {
		execShard = sc.HomeOf(*tx.To)
	}
	senderShard := sc.HomeOf(tx.From)
	cross := senderShard != execShard

	switch sc.cfg.Model {
	case ModelMigration:
		if cross {
			// Move the sender's account to the executing shard, then run
			// locally.
			sc.migrate(tx.From, senderShard, execShard)
			cross = false
		}
	case ModelReceipts:
		if cross {
			// The sender's shard debits and emits a receipt carrying the
			// value and calldata; the target shard executes on settlement.
			// Only the value is debited here (fee plumbing is omitted, see
			// applyWithHook), so only the value is required — and a nonce
			// failure is reported as what it is, matching the semantics of
			// chain.ApplyTransaction.
			st := sc.shards[senderShard].state
			if st.GetNonce(tx.From) != tx.Nonce {
				sc.stats.Failed++
				return &chain.Receipt{TxHash: tx.Hash(), Success: false,
					Err: chain.ErrNonceMismatch}
			}
			if st.GetBalance(tx.From).Cmp(tx.Value) < 0 {
				sc.stats.Failed++
				return &chain.Receipt{TxHash: tx.Hash(), Success: false,
					Err: chain.ErrInsufficientFunds}
			}
			st.SubBalance(tx.From, tx.Value)
			st.SetNonce(tx.From, tx.Nonce+1)
			st.DiscardJournal()
			sh := sc.shards[senderShard]
			sh.outbox[execShard] = append(sh.outbox[execShard], Receipt{
				From: tx.From, To: *tx.To, Value: tx.Value,
				Input: append([]byte(nil), tx.Data...),
				Born:  sc.clock,
			})
			sc.stats.Messages++
			sc.stats.CrossTxs++
			return &chain.Receipt{TxHash: tx.Hash(), Success: true}
		}
	}

	// Local execution on execShard with the cross-shard hook armed for
	// internal calls that leave the shard.
	st := sc.shards[execShard].state
	receipt, err := applyWithHook(st, tx, sc.hookFor(execShard))
	if err != nil {
		sc.stats.Failed++
		return &chain.Receipt{TxHash: tx.Hash(), Success: false, Err: err}
	}
	if cross {
		sc.stats.CrossTxs++
	} else {
		sc.stats.LocalTxs++
	}
	return receipt
}

// migrate moves an account's full state between shards and re-homes it.
// The source copy is purged entirely (DeleteAccount): zeroing only the
// balance would leave a ghost account whose nonce, code and stale storage
// slots survive on the source shard and resurrect on a later round-trip
// (CopyStorage copies live slots only, so slots zeroed while the account
// was away would reappear with their old values).
func (sc *ShardChain) migrate(addr types.Address, from, to int) {
	src := sc.shards[from].state
	dst := sc.shards[to].state

	dst.CreateAccount(addr)
	dst.AddBalance(addr, src.GetBalance(addr))
	dst.SetNonce(addr, src.GetNonce(addr))
	if code := src.GetCode(addr); len(code) > 0 {
		dst.SetCode(addr, append([]byte(nil), code...))
	}
	slots := chain.CopyStorage(src, dst, addr)
	src.DeleteAccount(addr)
	src.DiscardJournal()
	dst.DiscardJournal()

	sc.home[addr] = to
	sc.stats.Migrations++
	sc.stats.MigratedSlots += int64(slots)
	sc.stats.Messages++ // the state transfer itself
}

// MigrateAccount moves addr's state to shard `to` and re-homes it — the
// externally driven form of migration a repartitioner uses to realise a new
// placement under ModelMigration. Accounts the chain has never seen are
// pre-homed on `to` without a transfer (there is no state to move yet), and
// a move to the current home is a no-op. It reports whether state moved.
func (sc *ShardChain) MigrateAccount(addr types.Address, to int) (bool, error) {
	if to < 0 || to >= sc.cfg.K {
		return false, fmt.Errorf("shardchain: migrate %v: shard %d out of range [0,%d)", addr, to, sc.cfg.K)
	}
	from, known := sc.home[addr]
	if !known || from == to {
		sc.home[addr] = to
		return false, nil
	}
	// A homed address whose state never materialised has nothing to move:
	// re-home it without a transfer. Running migrate() here would fabricate
	// an empty account on the destination (CreateAccount) and count a
	// phantom migration and message for moving nothing.
	if !sc.shards[from].state.Exist(addr) {
		sc.home[addr] = to
		return false, nil
	}
	sc.migrate(addr, from, to)
	return true, nil
}

// Rehome redirects addr's future placement to shard `to` without moving
// state — the receipts-model reaction to a repartition, where existing
// state stays put and only not-yet-materialised accounts follow the new
// assignment. It reports whether the home changed; an account whose state
// already exists on its current home shard is left alone (re-homing it
// would strand its balance, nonce and storage).
func (sc *ShardChain) Rehome(addr types.Address, to int) (bool, error) {
	if to < 0 || to >= sc.cfg.K {
		return false, fmt.Errorf("shardchain: rehome %v: shard %d out of range [0,%d)", addr, to, sc.cfg.K)
	}
	from, known := sc.home[addr]
	if known && sc.shards[from].state.Exist(addr) {
		return false, nil
	}
	if known && from == to {
		return false, nil
	}
	sc.home[addr] = to
	return true, nil
}

// Known returns addr's current home shard without assigning one.
func (sc *ShardChain) Known(addr types.Address) (int, bool) {
	s, ok := sc.home[addr]
	return s, ok
}

// PendingReceipts counts cross-shard receipts still in flight (undelivered
// outboxes plus unsettled inboxes). Drive Step(nil) until it reaches zero
// to fully settle a run.
func (sc *ShardChain) PendingReceipts() int {
	n := 0
	for _, sh := range sc.shards {
		n += len(sh.inbox)
		for _, rs := range sh.outbox {
			n += len(rs)
		}
	}
	return n
}

// applyWithHook is chain.ApplyTransaction with a remote hook installed.
// The miner fee plumbing is omitted: shardchain measures message and
// migration costs, not fee flows.
func applyWithHook(st *chain.State, tx *chain.Transaction, hook evm.RemoteHook) (*chain.Receipt, error) {
	return chain.ApplyTransactionHooked(st, tx, types.Address{}, hook)
}
