// Package shardchain is a running sharded blockchain: k independent chains
// (one per shard), an account→shard assignment, and a router that executes
// every transaction under one of the two multi-shard handling classes the
// paper's introduction identifies:
//
//   - ModelReceipts (coordinated-style): a transaction executes on its
//     target's home shard; calls and transfers that reach accounts on other
//     shards become cross-shard receipts, settled asynchronously in the
//     destination shard's next block — the design family of Spanner-style
//     coordination adapted to blockchains (and of Eth2's receipt drafts);
//   - ModelMigration (state-movement): before executing, every remote
//     participant's account state is migrated to the executing shard and
//     the assignment is updated, after which the transaction runs locally —
//     the dynamic-SMR family.
//
// The paper explicitly does not build this layer ("It is not our goal to
// propose mechanisms for Ethereum to handle multi-shard transactions");
// this package exists so that the study's central quantity — the edge-cut —
// can be observed as what it really is operationally: cross-shard messages,
// settlement latency and migrated state.
package shardchain

import (
	"fmt"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// Model selects the multi-shard transaction handling class.
type Model int

const (
	// ModelReceipts settles cross-shard effects asynchronously.
	ModelReceipts Model = iota + 1
	// ModelMigration moves state to the executing shard first.
	ModelMigration
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelReceipts:
		return "receipts"
	case ModelMigration:
		return "migration"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Receipt is a pending cross-shard effect: value (and optionally a call)
// heading for an account on another shard.
type Receipt struct {
	From  types.Address
	To    types.Address
	Value evm.Word
	Input []byte
	// Born is the block height (of the source shard) that emitted the
	// receipt; settlement latency is measured against it.
	Born uint64
}

// Stats counts the operational cost of a run.
type Stats struct {
	// Transactions executed, split by locality.
	LocalTxs, CrossTxs int64
	// Messages is the number of cross-shard messages sent (receipts and
	// migration transfers).
	Messages int64
	// ReceiptsSettled counts settled receipts; SettlementBlocks sums the
	// block-latency of each (settled - born), so the mean settlement
	// latency is SettlementBlocks/ReceiptsSettled.
	ReceiptsSettled  int64
	SettlementBlocks int64
	// Migrations counts account moves; MigratedSlots the storage moved.
	Migrations    int64
	MigratedSlots int64
	// Failed counts transactions rejected by validation.
	Failed int64
}

// Config parameterises the sharded chain.
type Config struct {
	K     int
	Model Model
	// Chain configures every per-shard chain.
	Chain chain.Config
}

// ShardChain is the sharded execution engine.
//
// ShardChain is not safe for concurrent use.
type ShardChain struct {
	cfg    Config
	shards []*shard
	// home maps every known account to its shard.
	home map[types.Address]int
	// assign supplies the partition for first-seen accounts; accounts it
	// does not know fall back to hash placement.
	assign func(types.Address) (int, bool)
	stats  Stats
	// clock is the global block height (all shards advance in lockstep,
	// one block per Step).
	clock uint64
}

// shard is one member chain plus its receipt inbox.
type shard struct {
	state *chain.State
	inbox []Receipt
	// outbox accumulates receipts emitted while executing the current
	// block, delivered to peers at the end of Step.
	outbox map[int][]Receipt
}

// New builds a sharded chain with k shards under the given model. The
// genesis allocation is placed on the owner accounts' home shards, which
// are derived from the provided assignment (nil entries fall back to a
// hash of the address).
func New(cfg Config, alloc map[types.Address]evm.Word, assign func(types.Address) (int, bool)) (*ShardChain, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("shardchain: k must be >= 1, got %d", cfg.K)
	}
	if cfg.Model != ModelReceipts && cfg.Model != ModelMigration {
		return nil, fmt.Errorf("shardchain: invalid model %d", cfg.Model)
	}
	sc := &ShardChain{
		cfg:    cfg,
		shards: make([]*shard, cfg.K),
		home:   make(map[types.Address]int),
		assign: assign,
	}
	for i := range sc.shards {
		sc.shards[i] = &shard{
			state:  chain.NewState(),
			outbox: make(map[int][]Receipt),
		}
	}
	for addr, bal := range alloc {
		s := sc.HomeOf(addr)
		sc.shards[s].state.AddBalance(addr, bal)
		sc.shards[s].state.DiscardJournal()
	}
	return sc, nil
}

// HomeOf returns the current home shard of addr, assigning one on first
// sight: the configured partition decides when it knows the address,
// otherwise placement falls back to a hash of the address.
func (sc *ShardChain) HomeOf(addr types.Address) int {
	if s, ok := sc.home[addr]; ok {
		return s
	}
	s := -1
	if sc.assign != nil {
		if a, ok := sc.assign(addr); ok && a >= 0 && a < sc.cfg.K {
			s = a
		}
	}
	if s < 0 {
		s = hashShard(addr, sc.cfg.K)
	}
	sc.home[addr] = s
	return s
}

// Stats returns the accumulated operational counters.
func (sc *ShardChain) Stats() Stats { return sc.stats }

// StateOf exposes a shard's state for inspection.
func (sc *ShardChain) StateOf(shard int) *chain.State { return sc.shards[shard].state }

// BalanceOf returns addr's balance on its home shard.
func (sc *ShardChain) BalanceOf(addr types.Address) evm.Word {
	return sc.shards[sc.HomeOf(addr)].state.GetBalance(addr)
}

// hashShard is the fallback placement.
func hashShard(addr types.Address, k int) int {
	var h uint32 = 2166136261
	for _, b := range addr {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h % uint32(k))
}

// Step executes one global block: it settles every shard's pending inbox,
// executes the given transactions, and delivers newly emitted receipts.
// Transactions execute on the home shard of their target (creation
// transactions on the sender's shard).
func (sc *ShardChain) Step(txs []*chain.Transaction) []*chain.Receipt {
	sc.clock++
	// Phase 1: settle inboxes (receipts emitted in earlier blocks).
	for i, sh := range sc.shards {
		inbox := sh.inbox
		sh.inbox = nil
		for _, r := range inbox {
			sc.settle(i, r)
		}
	}
	// Phase 2: execute this block's transactions.
	var receipts []*chain.Receipt
	for _, tx := range txs {
		receipts = append(receipts, sc.execute(tx))
	}
	// Phase 3: deliver outboxes.
	for _, sh := range sc.shards {
		for dst, rs := range sh.outbox {
			sc.shards[dst].inbox = append(sc.shards[dst].inbox, rs...)
			delete(sh.outbox, dst)
		}
	}
	return receipts
}

// settle applies one receipt on its destination shard.
func (sc *ShardChain) settle(shardIdx int, r Receipt) {
	st := sc.shards[shardIdx].state
	st.AddBalance(r.To, r.Value)
	st.DiscardJournal()
	sc.stats.ReceiptsSettled++
	sc.stats.SettlementBlocks += int64(sc.clock - r.Born)
	// A receipt carrying input against a contract triggers its code —
	// the "continuation" of the cross-shard call.
	if code := st.GetCode(r.To); len(code) > 0 {
		vm := evm.New(st)
		vm.SetRemoteHook(sc.hookFor(shardIdx))
		// Continuation gas is bounded; failures are absorbed (the value
		// has already moved, as in asynchronous designs).
		_, _, _ = vm.Call(r.From, r.To, evm.Word{}, r.Input, 2_000_000)
		st.DiscardJournal()
	}
}

// hookFor returns the RemoteHook that diverts calls leaving shardIdx into
// receipts.
func (sc *ShardChain) hookFor(shardIdx int) evm.RemoteHook {
	return func(from, to types.Address, value evm.Word, input []byte) bool {
		dst := sc.HomeOf(to)
		if dst == shardIdx {
			return false // local: execute normally
		}
		sh := sc.shards[shardIdx]
		sh.outbox[dst] = append(sh.outbox[dst], Receipt{
			From: from, To: to, Value: value,
			Input: append([]byte(nil), input...),
			Born:  sc.clock,
		})
		sc.stats.Messages++
		return true
	}
}

// execute runs one transaction under the configured model.
func (sc *ShardChain) execute(tx *chain.Transaction) *chain.Receipt {
	// The executing shard: the target's home (sender's home for creates).
	var execShard int
	if tx.IsCreate() {
		execShard = sc.HomeOf(tx.From)
	} else {
		execShard = sc.HomeOf(*tx.To)
	}
	senderShard := sc.HomeOf(tx.From)
	cross := senderShard != execShard

	switch sc.cfg.Model {
	case ModelMigration:
		if cross {
			// Move the sender's account to the executing shard, then run
			// locally.
			sc.migrate(tx.From, senderShard, execShard)
			cross = false
		}
	case ModelReceipts:
		if cross {
			// The sender's shard debits and emits a receipt carrying the
			// value and calldata; the target shard executes on settlement.
			st := sc.shards[senderShard].state
			total := tx.Value.Add(evm.WordFromUint64(tx.GasLimit * tx.GasPrice))
			if st.GetBalance(tx.From).Cmp(total) < 0 || st.GetNonce(tx.From) != tx.Nonce {
				sc.stats.Failed++
				return &chain.Receipt{TxHash: tx.Hash(), Success: false,
					Err: chain.ErrInsufficientFunds}
			}
			st.SubBalance(tx.From, tx.Value)
			st.SetNonce(tx.From, tx.Nonce+1)
			st.DiscardJournal()
			sh := sc.shards[senderShard]
			sh.outbox[execShard] = append(sh.outbox[execShard], Receipt{
				From: tx.From, To: *tx.To, Value: tx.Value,
				Input: append([]byte(nil), tx.Data...),
				Born:  sc.clock,
			})
			sc.stats.Messages++
			sc.stats.CrossTxs++
			return &chain.Receipt{TxHash: tx.Hash(), Success: true}
		}
	}

	// Local execution on execShard with the cross-shard hook armed for
	// internal calls that leave the shard.
	st := sc.shards[execShard].state
	receipt, err := applyWithHook(st, tx, sc.hookFor(execShard))
	if err != nil {
		sc.stats.Failed++
		return &chain.Receipt{TxHash: tx.Hash(), Success: false, Err: err}
	}
	if cross {
		sc.stats.CrossTxs++
	} else {
		sc.stats.LocalTxs++
	}
	return receipt
}

// migrate moves an account's full state between shards and re-homes it.
func (sc *ShardChain) migrate(addr types.Address, from, to int) {
	src := sc.shards[from].state
	dst := sc.shards[to].state

	dst.CreateAccount(addr)
	dst.AddBalance(addr, src.GetBalance(addr))
	dst.SetNonce(addr, src.GetNonce(addr))
	if code := src.GetCode(addr); len(code) > 0 {
		dst.SetCode(addr, append([]byte(nil), code...))
	}
	slots := chain.CopyStorage(src, dst, addr)
	src.SubBalance(addr, src.GetBalance(addr))
	src.DiscardJournal()
	dst.DiscardJournal()

	sc.home[addr] = to
	sc.stats.Migrations++
	sc.stats.MigratedSlots += int64(slots)
	sc.stats.Messages++ // the state transfer itself
}

// applyWithHook is chain.ApplyTransaction with a remote hook installed.
// The miner fee plumbing is omitted: shardchain measures message and
// migration costs, not fee flows.
func applyWithHook(st *chain.State, tx *chain.Transaction, hook evm.RemoteHook) (*chain.Receipt, error) {
	return chain.ApplyTransactionHooked(st, tx, types.Address{}, hook)
}
