// Package shardchain is a running sharded blockchain: k independent chains
// (one per shard), an account→shard assignment, and a router that executes
// every transaction under one of the two multi-shard handling classes the
// paper's introduction identifies:
//
//   - ModelReceipts (coordinated-style): a transaction executes on its
//     target's home shard; calls and transfers that reach accounts on other
//     shards become cross-shard receipts, settled asynchronously in the
//     destination shard's next block — the design family of Spanner-style
//     coordination adapted to blockchains (and of Eth2's receipt drafts);
//   - ModelMigration (state-movement): before executing, every remote
//     participant's account state is migrated to the executing shard and
//     the assignment is updated, after which the transaction runs locally —
//     the dynamic-SMR family. This covers internal calls too: a contract
//     call that reaches an account homed elsewhere migrates that account to
//     the executing shard and continues locally, it never emits a receipt.
//
// The paper explicitly does not build this layer ("It is not our goal to
// propose mechanisms for Ethereum to handle multi-shard transactions");
// this package exists so that the study's central quantity — the edge-cut —
// can be observed as what it really is operationally: cross-shard messages,
// settlement latency and migrated state.
//
// # Migration semantics
//
// Migrating an account moves its complete state — balance, nonce, code and
// every storage slot — and then purges the source copy with
// chain.State.DeleteAccount. The purge is load-bearing for correctness: a
// partial cleanup (e.g. zeroing only the balance) leaves a ghost account on
// the source shard whose nonce, code and storage survive, and because
// storage copies transfer live slots only, a later round-trip migration
// would resurrect slots that were zeroed while the account lived elsewhere.
// After a migration the source shard answers Exist == false for the
// address, exactly as if the account had never been created there.
//
// Placement can also be driven externally (by a repartitioner running
// alongside the chain): MigrateAccount realises a new placement by moving
// state, while Rehome only redirects accounts whose state has not
// materialised yet — the receipts-model reaction, where existing state
// stays put.
//
// # Execution engines
//
// Config.Parallel selects between two engines that produce byte-identical
// results (receipts, per-shard states, stats, homes): the serial reference
// engine, and a parallel engine that runs each block's per-shard work on
// one worker per shard with cross-shard receipts exchanged at the block
// barrier (see parallel.go and DESIGN.md §8).
package shardchain

import (
	"fmt"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/fault"
	"ethpart/internal/partition"
	"ethpart/internal/types"
)

// Model selects the multi-shard transaction handling class.
type Model int

const (
	// ModelReceipts settles cross-shard effects asynchronously.
	ModelReceipts Model = iota + 1
	// ModelMigration moves state to the executing shard first.
	ModelMigration
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelReceipts:
		return "receipts"
	case ModelMigration:
		return "migration"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Receipt is a pending cross-shard effect: value (and optionally a call)
// heading for an account on another shard.
type Receipt struct {
	From  types.Address
	To    types.Address
	Value evm.Word
	Input []byte
	// Born is the block height (of the source shard) that emitted the
	// receipt; settlement latency is measured against it.
	Born uint64
	// ID identifies one delivery hop for idempotent settlement under fault
	// injection: the coordinator assigns it when the emission lands in an
	// outbox (zero = unassigned), the destination shard's dedup journal
	// suppresses re-deliveries of the same ID, and forwarding clears it so
	// the next hop gets a fresh identity (a re-forwarded receipt is a new
	// delivery, not a duplicate). Zero whenever no fault plane is armed.
	ID uint64
	// Delay accumulates fault-injected transport latency in blocks
	// (drop/retry backoff and injected delays). Settlement subtracts it, so
	// SettlementBlocks measures the protocol's latency, not the injector's;
	// the injected share is reported by fault.Metrics.RedeliveryBlocks.
	Delay uint64
}

// Stats counts the operational cost of a run.
type Stats struct {
	// Transactions executed, split by locality.
	LocalTxs, CrossTxs int64
	// Messages is the number of cross-shard messages sent (receipts and
	// migration transfers).
	Messages int64
	// ReceiptsSettled counts settled receipts; SettlementBlocks sums the
	// block-latency of each (settled - born), so the mean settlement
	// latency is SettlementBlocks/ReceiptsSettled.
	ReceiptsSettled  int64
	SettlementBlocks int64
	// Migrations counts account moves; MigratedSlots the storage moved.
	Migrations    int64
	MigratedSlots int64
	// Failed counts transactions rejected by validation.
	Failed int64
}

// add accumulates a fieldwise delta.
func (s *Stats) add(d Stats) {
	s.LocalTxs += d.LocalTxs
	s.CrossTxs += d.CrossTxs
	s.Messages += d.Messages
	s.ReceiptsSettled += d.ReceiptsSettled
	s.SettlementBlocks += d.SettlementBlocks
	s.Migrations += d.Migrations
	s.MigratedSlots += d.MigratedSlots
	s.Failed += d.Failed
}

// sub removes a fieldwise delta — crash recovery discarding a crashed
// shard's partial block work before replaying it.
func (s *Stats) sub(d Stats) {
	s.LocalTxs -= d.LocalTxs
	s.CrossTxs -= d.CrossTxs
	s.Messages -= d.Messages
	s.ReceiptsSettled -= d.ReceiptsSettled
	s.SettlementBlocks -= d.SettlementBlocks
	s.Migrations -= d.Migrations
	s.MigratedSlots -= d.MigratedSlots
	s.Failed -= d.Failed
}

// Config parameterises the sharded chain.
type Config struct {
	K     int
	Model Model
	// Chain configures every per-shard chain.
	Chain chain.Config
	// Parallel runs every block's per-shard settle and execute work on one
	// worker per shard (a sim.RunIndexed-shaped pool), with outboxes
	// exchanged at the block barrier. Results are byte-identical to the
	// serial engine. When set, any assign callback must be safe for
	// concurrent calls and must answer deterministically for the duration
	// of one Step.
	Parallel bool
	// AssignSnapshot, when non-nil, supplies a frozen placement view per
	// block: Step calls it once at block start and resolves every
	// first-sight placement of that block through the returned view
	// instead of the per-call assign callback. A directory-backed caller
	// (see internal/directory) returns a pinned epoch snapshot here, which
	// upgrades the parallel engine's "must answer deterministically for
	// one Step" contract from a caller promise into a structural guarantee
	// — a concurrent publisher committing mid-block can never tear a
	// block's resolutions. Outside Step (genesis allocation, accessors)
	// the per-call assign callback still answers, so it should resolve
	// from the same source's current view.
	AssignSnapshot func() func(types.Address) (int, bool)
	// Fault, when non-nil, arms the deterministic fault-injection plane
	// (internal/fault): scheduled shard crash-stops recovered from the
	// per-shard durable log, and drop/delay/duplicate faults on the barrier
	// receipt exchange answered by retry with backoff and idempotent
	// settlement. Crash schedules require ModelReceipts — a crash inside a
	// migration-model block could tear a two-shard state move, which the
	// per-shard log cannot repair.
	Fault *fault.Injector
}

// ShardChain is the sharded execution engine.
//
// ShardChain is not safe for concurrent use: Step, MigrateAccount, Rehome
// and the accessors must be called from one goroutine. With
// Config.Parallel the parallelism lives *inside* Step, which fans work out
// to per-shard workers and joins them before returning.
type ShardChain struct {
	cfg    Config
	shards []*shard
	// home maps every known account to its shard. During a parallel phase
	// the map is read-only: first-sight placements are resolved purely
	// (resolveHome) and committed at the next barrier.
	home map[types.Address]int
	// assign supplies the partition for first-seen accounts; accounts it
	// does not know fall back to hash placement.
	assign func(types.Address) (int, bool)
	// blockAssign is the per-block frozen view from Config.AssignSnapshot;
	// non-nil only while a Step is executing.
	blockAssign func(types.Address) (int, bool)
	stats       Stats
	// clock is the global block height (all shards advance in lockstep,
	// one block per Step).
	clock uint64

	// Fault-plane state (see fault.go); all nil/zero unless Config.Fault
	// arms it. nextReceiptID feeds delivery-hop identities, blockDelta
	// accumulates each shard's stat deltas within the current block (the
	// part a crash discards), wal holds the per-shard durable log, and
	// flights is the fault-aware delivery channel's in-flight queue.
	nextReceiptID uint64
	blockDelta    []Stats
	wal           []walRecord
	flights       []flight
}

// shard is one member chain plus its receipt inbox.
type shard struct {
	state *chain.State
	inbox []Receipt
	// outbox[dst] accumulates receipts emitted for shard dst while
	// executing the current block; delivered to peers at the block barrier
	// in canonical (source-shard, emission-order) order.
	outbox [][]Receipt
	// seen journals applied receipt IDs by the block they settled (or
	// forwarded) in, making settlement idempotent under redelivery; pruned
	// past the schedule's dedup window. Nil unless the fault plane is armed.
	seen map[uint64]uint64
}

// New builds a sharded chain with k shards under the given model. The
// genesis allocation is placed on the owner accounts' home shards, which
// are derived from the provided assignment (nil entries fall back to a
// hash of the address).
func New(cfg Config, alloc map[types.Address]evm.Word, assign func(types.Address) (int, bool)) (*ShardChain, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("shardchain: k must be >= 1, got %d", cfg.K)
	}
	if cfg.Model != ModelReceipts && cfg.Model != ModelMigration {
		return nil, fmt.Errorf("shardchain: invalid model %d", cfg.Model)
	}
	if cfg.Fault != nil && cfg.Fault.HasCrashes() && cfg.Model != ModelReceipts {
		return nil, fmt.Errorf("shardchain: crash schedules require ModelReceipts: " +
			"a crash inside a migration-model block could tear a two-shard state move")
	}
	sc := &ShardChain{
		cfg:    cfg,
		shards: make([]*shard, cfg.K),
		home:   make(map[types.Address]int),
		assign: assign,
	}
	for i := range sc.shards {
		sc.shards[i] = &shard{
			state:  chain.NewState(),
			outbox: make([][]Receipt, cfg.K),
		}
	}
	if cfg.Fault != nil {
		for _, sh := range sc.shards {
			sh.seen = make(map[uint64]uint64)
		}
		if cfg.Fault.HasCrashes() {
			sc.blockDelta = make([]Stats, cfg.K)
			sc.wal = make([]walRecord, cfg.K)
		}
	}
	for addr, bal := range alloc {
		s := sc.HomeOf(addr)
		sc.shards[s].state.AddBalance(addr, bal)
		sc.shards[s].state.DiscardJournal()
	}
	return sc, nil
}

// resolveHome computes the first-sight placement of addr without touching
// the home map: the configured partition decides when it knows the
// address, otherwise placement falls back to a hash of the address. It is
// the pure half of HomeOf — parallel workers call it where writing the map
// would race, and the resolved pairs are committed at the next barrier.
// Within one Step it is a pure function of the address (the assignment
// callback must not change mid-block), so resolution order cannot matter.
func (sc *ShardChain) resolveHome(addr types.Address) int {
	assign := sc.assign
	if sc.blockAssign != nil {
		assign = sc.blockAssign
	}
	if assign != nil {
		if a, ok := assign(addr); ok && a >= 0 && a < sc.cfg.K {
			return a
		}
	}
	return hashShard(addr, sc.cfg.K)
}

// HomeOf returns the current home shard of addr, assigning one on first
// sight: the configured partition decides when it knows the address,
// otherwise placement falls back to a hash of the address.
func (sc *ShardChain) HomeOf(addr types.Address) int {
	if s, ok := sc.home[addr]; ok {
		return s
	}
	s := sc.resolveHome(addr)
	sc.home[addr] = s
	return s
}

// Stats returns the accumulated operational counters.
func (sc *ShardChain) Stats() Stats { return sc.stats }

// K returns the current number of shard lanes — Config.K until a resize
// (AddShards/RemoveShards) moves it.
func (sc *ShardChain) K() int { return sc.cfg.K }

// StateOf exposes a shard's state for inspection.
func (sc *ShardChain) StateOf(shard int) *chain.State { return sc.shards[shard].state }

// BalanceOf returns addr's balance on its home shard.
func (sc *ShardChain) BalanceOf(addr types.Address) evm.Word {
	return sc.shards[sc.HomeOf(addr)].state.GetBalance(addr)
}

// hashShard is the fallback placement: the repo's one shard-hash — the
// 64-bit FNV-1a fold of partition.Hash — over the 20 address bytes, so the
// chain's fallback and the partition layer's hashing method can never
// drift (TestHashShardMatchesPartition pins the delegation).
func hashShard(addr types.Address, k int) int {
	return partition.Hash{}.ShardOfBytes(addr[:], k)
}

// emission is one receipt headed for a destination shard.
type emission struct {
	dst int
	r   Receipt
}

// effects collects the side effects of one unit of work — a receipt
// settlement or a transaction — so the serial and parallel engines can run
// the identical item code and differ only in when effects land: applied
// immediately after the item (serial), or buffered and merged at the next
// barrier in item order (parallel).
type effects struct {
	out   []emission
	stats Stats
}

func (e *effects) emit(dst int, r Receipt) { e.out = append(e.out, emission{dst, r}) }

// applyEffects lands one item's buffered effects: emissions are appended
// to the owning shard's per-destination outbox, stat deltas to the chain
// counters. It always runs on the coordinator in canonical item order —
// serially inline, at the barrier merge in the parallel engine — which is
// what lets the fault plane assign receipt IDs here: the assignment order
// (and so every seeded delivery decision keyed on an ID) is identical for
// both engines and across repeated runs.
func (sc *ShardChain) applyEffects(src int, eff *effects) {
	sh := sc.shards[src]
	for _, em := range eff.out {
		r := em.r
		if sc.cfg.Fault != nil && r.ID == 0 {
			sc.nextReceiptID++
			r.ID = sc.nextReceiptID
		}
		sh.outbox[em.dst] = append(sh.outbox[em.dst], r)
	}
	sc.stats.add(eff.stats)
	if sc.blockDelta != nil {
		sc.blockDelta[src].add(eff.stats)
	}
}

// homes is an engine's view of the account→shard map during a phase. The
// serial engine commits first-sight placements immediately; parallel
// workers (record mode) resolve them read-only and remember the pairs so
// the coordinator can commit them at the barrier.
type homes struct {
	sc     *ShardChain
	record bool
	seen   []homePair
}

type homePair struct {
	addr  types.Address
	shard int
}

func (h *homes) of(addr types.Address) int {
	if !h.record {
		return h.sc.HomeOf(addr)
	}
	if s, ok := h.sc.home[addr]; ok {
		return s
	}
	s := h.sc.resolveHome(addr)
	h.seen = append(h.seen, homePair{addr, s})
	return s
}

// commitHomes lands first-sight resolutions recorded by parallel workers.
// An address may have been resolved by several workers (same pure value)
// or already committed by a serialized path; existing entries win.
func (sc *ShardChain) commitHomes(pairs []homePair) {
	for _, p := range pairs {
		if _, ok := sc.home[p.addr]; !ok {
			sc.home[p.addr] = p.shard
		}
	}
}

// onRemoteCallee is the migration-model reaction to an internal call whose
// callee is homed on another shard: the serial engine migrates the callee
// inline and continues, parallel workers abort the item instead (conflict
// protocol, see parallel.go). calleeHome is the callee's current home.
type onRemoteCallee func(to types.Address, calleeHome int)

// hookFor returns the RemoteHook for internal calls that leave shard s.
// Under ModelReceipts the call is diverted into a cross-shard receipt.
// Under ModelMigration the callee is brought to the executing shard (via
// onRemote) and the call continues locally — never a receipt, matching the
// model's contract that every remote participant's state is migrated.
func (sc *ShardChain) hookFor(s int, h *homes, eff *effects, onRemote onRemoteCallee) evm.RemoteHook {
	return func(from, to types.Address, value evm.Word, input []byte) bool {
		dst := h.of(to)
		if dst == s {
			return false // local: execute normally
		}
		if sc.cfg.Model == ModelMigration {
			onRemote(to, dst)
			return false // callee is local now: execute normally
		}
		eff.emit(dst, Receipt{
			From: from, To: to, Value: value,
			Input: append([]byte(nil), input...),
			Born:  sc.clock,
		})
		eff.stats.Messages++
		return true
	}
}

// migrateCallee brings an internal call's remote callee to the executing
// shard exec: a materialised callee migrates with its full state; one that
// has no state anywhere is simply re-homed (moving nothing would fabricate
// an empty account and count a phantom migration, as MigrateAccount also
// refuses to do). Serial contexts only.
func (sc *ShardChain) migrateCallee(to types.Address, calleeHome, exec int, eff *effects) {
	if sc.shards[calleeHome].state.Exist(to) {
		sc.migrateInto(to, calleeHome, exec, &eff.stats)
	} else {
		sc.home[to] = exec
	}
}

// settleOne applies one receipt on shard s. Receipts are routed to the
// target's home shard at emit time, but the home can change while the
// receipt is in flight (an externally driven MigrateAccount or Rehome
// between emission and delivery); settling on the stale shard would strand
// the value on a shard that is no longer — or never was — the account's
// home, resurrecting exactly the ghost state migration purges. So delivery
// re-checks the home and forwards the receipt (one more message, one more
// block of latency), like any routed settlement layer.
func (sc *ShardChain) settleOne(s int, r Receipt, h *homes, eff *effects, onRemote onRemoteCallee) {
	// Idempotence under redelivery: each delivery hop carries a unique ID,
	// and the shard's seen journal suppresses a re-delivered hop before any
	// effect — including the forward below, or a duplicate would fork into
	// two fresh-ID deliveries downstream that no later dedup could relate.
	// Workers touch only their own shard's journal, so no lock is needed.
	if sc.cfg.Fault != nil && r.ID != 0 {
		if _, dup := sc.shards[s].seen[r.ID]; dup {
			sc.cfg.Fault.Metrics.DupsSuppressed.Add(1)
			return
		}
		sc.shards[s].seen[r.ID] = sc.clock
	}
	if home := h.of(r.To); home != s {
		fwd := r
		// A forwarded receipt is a new delivery hop: it gets a fresh ID at
		// the barrier (a legitimate revisit after a home flip must not be
		// mistaken for a duplicate), but keeps its accumulated injected
		// delay so final settlement still subtracts all of it.
		fwd.ID = 0
		eff.emit(home, fwd)
		eff.stats.Messages++
		return
	}
	st := sc.shards[s].state
	st.AddBalance(r.To, r.Value)
	st.DiscardJournal()
	eff.stats.ReceiptsSettled++
	eff.stats.SettlementBlocks += int64(sc.clock - r.Born - r.Delay)
	// A receipt carrying input against a contract triggers its code —
	// the "continuation" of the cross-shard call.
	if code := st.GetCode(r.To); len(code) > 0 {
		vm := evm.New(st)
		vm.SetRemoteHook(sc.hookFor(s, h, eff, onRemote))
		// Continuation gas is bounded; failures are absorbed (the value
		// has already moved, as in asynchronous designs).
		_, _, _ = vm.Call(r.From, r.To, evm.Word{}, r.Input, 2_000_000)
		st.DiscardJournal()
	}
}

// execShardOf is where tx executes: the home of its target, or of its
// sender for creation transactions.
func (sc *ShardChain) execShardOf(tx *chain.Transaction, h *homes) int {
	if tx.IsCreate() {
		return h.of(tx.From)
	}
	return h.of(*tx.To)
}

// crossEmit is the receipts-model cross path, run on the sender's shard:
// the sender is debited and a receipt carrying the value and calldata is
// emitted; the target shard executes on settlement. Only the value is
// debited here (fee plumbing is omitted, see runLocal), so only the value
// is required — and a nonce failure is reported as what it is, matching
// the semantics of chain.ApplyTransaction.
// retain keeps the state journal (parallel waves; see runLocal).
func (sc *ShardChain) crossEmit(sender, exec int, tx *chain.Transaction, eff *effects, retain bool) *chain.Receipt {
	st := sc.shards[sender].state
	if st.GetNonce(tx.From) != tx.Nonce {
		eff.stats.Failed++
		return &chain.Receipt{TxHash: tx.Hash(), Success: false,
			Err: chain.ErrNonceMismatch}
	}
	if st.GetBalance(tx.From).Cmp(tx.Value) < 0 {
		eff.stats.Failed++
		return &chain.Receipt{TxHash: tx.Hash(), Success: false,
			Err: chain.ErrInsufficientFunds}
	}
	st.SubBalance(tx.From, tx.Value)
	st.SetNonce(tx.From, tx.Nonce+1)
	if !retain {
		st.DiscardJournal()
	}
	eff.emit(exec, Receipt{
		From: tx.From, To: *tx.To, Value: tx.Value,
		Input: append([]byte(nil), tx.Data...),
		Born:  sc.clock,
	})
	eff.stats.Messages++
	eff.stats.CrossTxs++
	return &chain.Receipt{TxHash: tx.Hash(), Success: true}
}

// runLocal executes tx on shard s with the cross-shard hook armed for
// internal calls that leave the shard. By the time a transaction reaches
// local execution it counts as local: receipts-model cross transactions
// took the crossEmit path, migration-model ones were made local by moving
// the sender first. retain keeps the state journal for the parallel
// engine's conflict rollback (content-identical either way). The miner fee
// plumbing is omitted: shardchain measures message and migration costs,
// not fee flows.
func (sc *ShardChain) runLocal(s int, tx *chain.Transaction, h *homes, eff *effects, onRemote onRemoteCallee, retain bool) *chain.Receipt {
	st := sc.shards[s].state
	hook := sc.hookFor(s, h, eff, onRemote)
	var receipt *chain.Receipt
	var err error
	if retain {
		receipt, err = chain.ApplyTransactionRetained(st, tx, types.Address{}, hook)
	} else {
		receipt, err = chain.ApplyTransactionHooked(st, tx, types.Address{}, hook)
	}
	if err != nil {
		eff.stats.Failed++
		return &chain.Receipt{TxHash: tx.Hash(), Success: false, Err: err}
	}
	eff.stats.LocalTxs++
	return receipt
}

// runTxSerial executes one transaction with full serial semantics — the
// sender of a migration-model cross transaction migrates inline, as do
// remote callees of internal calls — and applies its effects immediately.
// It is the whole per-transaction serial engine, and doubles as the
// parallel engine's serialized path for migration barriers and conflict
// re-execution.
func (sc *ShardChain) runTxSerial(tx *chain.Transaction, h *homes) *chain.Receipt {
	var eff effects
	exec := sc.execShardOf(tx, h)
	sender := h.of(tx.From)
	cross := sender != exec

	if sc.cfg.Model == ModelMigration && cross {
		// Move the sender's account to the executing shard, then run
		// locally.
		sc.migrateInto(tx.From, sender, exec, &eff.stats)
		cross = false
	}
	var receipt *chain.Receipt
	work := exec
	if cross { // ModelReceipts
		work = sender
		receipt = sc.crossEmit(sender, exec, tx, &eff, false)
	} else {
		receipt = sc.runLocal(exec, tx, h, &eff, func(to types.Address, calleeHome int) {
			sc.migrateCallee(to, calleeHome, exec, &eff)
		}, false)
	}
	sc.applyEffects(work, &eff)
	return receipt
}

// Step executes one global block: it settles every shard's pending inbox,
// executes the given transactions, and delivers newly emitted receipts at
// the block barrier. Transactions execute on the home shard of their
// target (creation transactions on the sender's shard).
func (sc *ShardChain) Step(txs []*chain.Transaction) []*chain.Receipt {
	sc.clock++
	if sc.cfg.AssignSnapshot != nil {
		// Pin one placement view for the whole block; dropped at the end
		// so out-of-block resolutions (accessors, migrations between
		// blocks) see the source's live view again.
		sc.blockAssign = sc.cfg.AssignSnapshot()
		defer func() { sc.blockAssign = nil }()
	}
	if sc.cfg.Fault != nil {
		sc.pruneSeen()
		if sc.wal != nil {
			// The durable point is the block boundary *entering* this block:
			// it must capture mutations made between blocks (opsim funding
			// accounts, external migrations), which a previous block's exit
			// snapshot would miss. blockDelta restarts with it — it tracks
			// only what a crash in *this* block would discard.
			sc.journalBarrier()
			for i := range sc.blockDelta {
				sc.blockDelta[i] = Stats{}
			}
		}
	}
	var receipts []*chain.Receipt
	if sc.cfg.Parallel {
		receipts = sc.stepParallel(txs)
	} else {
		receipts = sc.stepSerial(txs)
	}
	if sc.cfg.Fault != nil {
		for _, s := range sc.cfg.Fault.CrashedShards(sc.clock) {
			if s < sc.cfg.K {
				sc.recoverShard(s, txs, receipts)
			} else {
				// The schedule named a lane that a merge has since
				// decommissioned; count it instead of dropping it silently,
				// so a mis-aimed chaos scenario is visible in the metrics.
				sc.cfg.Fault.Metrics.CrashesSkipped.Add(1)
			}
		}
	}
	sc.exchangeOutboxes()
	return receipts
}

// stepSerial is the reference engine: settle then execute, one item at a
// time in canonical order (shards ascending for settlement, transaction
// order for execution).
func (sc *ShardChain) stepSerial(txs []*chain.Transaction) []*chain.Receipt {
	h := &homes{sc: sc}
	sc.settleInboxesSerial(h)
	receipts := make([]*chain.Receipt, len(txs))
	for i, tx := range txs {
		receipts[i] = sc.runTxSerial(tx, h)
	}
	return receipts
}

// settleInboxesSerial drains every shard's inbox one receipt at a time in
// canonical order (shards ascending, delivery order within each), with the
// serial callee reaction armed. Shared by the serial engine and the
// parallel engine's migration-model settle fallback so the two cannot
// drift.
func (sc *ShardChain) settleInboxesSerial(h *homes) {
	for i, sh := range sc.shards {
		inbox := sh.inbox
		sh.inbox = nil
		for _, r := range inbox {
			var eff effects
			sc.settleOne(i, r, h, &eff, func(to types.Address, calleeHome int) {
				sc.migrateCallee(to, calleeHome, i, &eff)
			})
			sc.applyEffects(i, &eff)
		}
	}
}

// exchangeOutboxes delivers every outbox into the destination inboxes at
// the block barrier, in canonical (source-shard, emission-order) order:
// shard dst's next inbox is the concatenation of outbox[src][dst] for src
// ascending, each in emission order. Both engines exchange identically, so
// inbox contents — and therefore every later settlement — match
// byte-for-byte. With message faults armed the exchange routes through
// the fault-aware channel instead (exchangeFaulty, fault.go).
func (sc *ShardChain) exchangeOutboxes() {
	if sc.cfg.Fault != nil && sc.cfg.Fault.HasMessageFaults() {
		sc.exchangeFaulty()
		return
	}
	for _, sh := range sc.shards {
		for dst, rs := range sh.outbox {
			if len(rs) == 0 {
				continue
			}
			sc.shards[dst].inbox = append(sc.shards[dst].inbox, rs...)
			sh.outbox[dst] = nil
		}
	}
}

// migrate moves an account's full state between shards and re-homes it,
// counting against the chain totals. The source copy is purged entirely
// (DeleteAccount): zeroing only the balance would leave a ghost account
// whose nonce, code and stale storage slots survive on the source shard
// and resurrect on a later round-trip (CopyStorage copies live slots only,
// so slots zeroed while the account was away would reappear with their old
// values).
func (sc *ShardChain) migrate(addr types.Address, from, to int) {
	sc.migrateInto(addr, from, to, &sc.stats)
}

// migrateInto is migrate with an explicit stats sink, so per-item engines
// can buffer the counter deltas alongside the item's other effects.
func (sc *ShardChain) migrateInto(addr types.Address, from, to int, stats *Stats) {
	src := sc.shards[from].state
	dst := sc.shards[to].state

	dst.CreateAccount(addr)
	dst.AddBalance(addr, src.GetBalance(addr))
	dst.SetNonce(addr, src.GetNonce(addr))
	if code := src.GetCode(addr); len(code) > 0 {
		dst.SetCode(addr, append([]byte(nil), code...))
	}
	slots := chain.CopyStorage(src, dst, addr)
	src.DeleteAccount(addr)
	src.DiscardJournal()
	dst.DiscardJournal()

	sc.home[addr] = to
	stats.Migrations++
	stats.MigratedSlots += int64(slots)
	stats.Messages++ // the state transfer itself
}

// MigrateAccount moves addr's state to shard `to` and re-homes it — the
// externally driven form of migration a repartitioner uses to realise a new
// placement under ModelMigration. Accounts the chain has never seen are
// pre-homed on `to` without a transfer (there is no state to move yet), and
// a move to the current home is a no-op. It reports whether state moved.
func (sc *ShardChain) MigrateAccount(addr types.Address, to int) (bool, error) {
	if to < 0 || to >= sc.cfg.K {
		return false, fmt.Errorf("shardchain: migrate %v: shard %d out of range [0,%d)", addr, to, sc.cfg.K)
	}
	from, known := sc.home[addr]
	if !known || from == to {
		sc.home[addr] = to
		return false, nil
	}
	// A homed address whose state never materialised has nothing to move:
	// re-home it without a transfer. Running migrate() here would fabricate
	// an empty account on the destination (CreateAccount) and count a
	// phantom migration and message for moving nothing.
	if !sc.shards[from].state.Exist(addr) {
		sc.home[addr] = to
		return false, nil
	}
	sc.migrate(addr, from, to)
	return true, nil
}

// Rehome redirects addr's future placement to shard `to` without moving
// state — the receipts-model reaction to a repartition, where existing
// state stays put and only not-yet-materialised accounts follow the new
// assignment. It reports whether the home changed; an account whose state
// already exists on its current home shard is left alone (re-homing it
// would strand its balance, nonce and storage).
func (sc *ShardChain) Rehome(addr types.Address, to int) (bool, error) {
	if to < 0 || to >= sc.cfg.K {
		return false, fmt.Errorf("shardchain: rehome %v: shard %d out of range [0,%d)", addr, to, sc.cfg.K)
	}
	from, known := sc.home[addr]
	if known && sc.shards[from].state.Exist(addr) {
		return false, nil
	}
	if known && from == to {
		return false, nil
	}
	sc.home[addr] = to
	return true, nil
}

// Known returns addr's current home shard without assigning one.
func (sc *ShardChain) Known(addr types.Address) (int, bool) {
	s, ok := sc.home[addr]
	return s, ok
}

// PendingReceipts counts cross-shard receipts still in flight (undelivered
// outboxes, unsettled inboxes, and receipts held by the fault-aware
// delivery channel — dropped-awaiting-retry, delayed, or pending
// duplicates). Drive Step(nil) until it reaches zero to fully settle a
// run; the at-least-once delivery bound (fault.Schedule.MaxAttempts plus
// capped backoff) guarantees the count reaches zero in bounded blocks.
func (sc *ShardChain) PendingReceipts() int {
	n := len(sc.flights)
	for _, sh := range sc.shards {
		n += len(sh.inbox)
		for _, rs := range sh.outbox {
			n += len(rs)
		}
	}
	return n
}
