package shardchain

import (
	"bytes"
	"fmt"
	"sort"

	"ethpart/internal/chain"
	"ethpart/internal/types"
)

// Elastic shard lanes (DESIGN.md §13): the chain's shard count follows the
// autoscaler. AddShards spins new lanes up empty; RemoveShards
// decommissions the highest-index lanes once DrainShard confirms nothing
// references them any more. The drain itself is not a new mechanism — the
// resize wave re-homes every account off the dropped lanes (MigrateAccount
// moves materialised state through the ordinary migration path), then
// settle-only Steps flush the in-flight receipts through the existing
// block-barrier machinery until PendingReceipts hits zero. Only then does
// removal truncate the lane slices. Both calls must happen between Steps,
// from the coordinator goroutine.

// AddShards grows the chain to newK lanes. The new lanes start with empty
// state, inboxes and journals; they receive traffic as soon as the caller's
// placement source starts answering with their indices. Existing lanes are
// untouched — a grow never moves state by itself.
func (sc *ShardChain) AddShards(newK int) error {
	oldK := sc.cfg.K
	if newK <= oldK {
		return fmt.Errorf("shardchain: AddShards to %d lanes, have %d", newK, oldK)
	}
	for i := oldK; i < newK; i++ {
		sh := &shard{
			state:  chain.NewState(),
			outbox: make([][]Receipt, newK),
		}
		if sc.cfg.Fault != nil {
			sh.seen = make(map[uint64]uint64)
		}
		sc.shards = append(sc.shards, sh)
	}
	// Existing lanes' per-destination outboxes grow to address the new
	// lanes.
	for _, sh := range sc.shards[:oldK] {
		sh.outbox = append(sh.outbox, make([][]Receipt, newK-len(sh.outbox))...)
	}
	if sc.blockDelta != nil {
		sc.blockDelta = append(sc.blockDelta, make([]Stats, newK-oldK)...)
	}
	if sc.wal != nil {
		sc.wal = append(sc.wal, make([]walRecord, newK-oldK)...)
	}
	sc.cfg.K = newK
	return nil
}

// DrainShard reports whether lane s is fully drained — no account homed on
// it, no unsettled inbox or outbox traffic, and no fault-channel flight
// addressed to it — returning a descriptive error naming the first blocker
// otherwise. RemoveShards requires it for every dropped lane; callers can
// also use it directly to decide whether another settle-only Step is
// needed.
func (sc *ShardChain) DrainShard(s int) error {
	if s < 0 || s >= sc.cfg.K {
		return fmt.Errorf("shardchain: drain: shard %d out of range [0,%d)", s, sc.cfg.K)
	}
	sh := sc.shards[s]
	if len(sh.inbox) > 0 {
		return fmt.Errorf("shardchain: shard %d still has %d unsettled inbox receipts", s, len(sh.inbox))
	}
	for dst, rs := range sh.outbox {
		if len(rs) > 0 {
			return fmt.Errorf("shardchain: shard %d still has %d undelivered receipts for shard %d", s, len(rs), dst)
		}
	}
	for _, sh2 := range sc.shards {
		if len(sh2.outbox) > s && len(sh2.outbox[s]) > 0 {
			return fmt.Errorf("shardchain: shard %d still addressed by %d undelivered receipts", s, len(sh2.outbox[s]))
		}
	}
	for _, f := range sc.flights {
		if f.dst == s {
			return fmt.Errorf("shardchain: shard %d still addressed by an in-flight fault-channel receipt", s)
		}
	}
	for addr, home := range sc.home {
		if home == s {
			return fmt.Errorf("shardchain: account %v still homed on shard %d", addr, s)
		}
	}
	return nil
}

// HomesOn returns every account currently homed on lane s, in address
// order. A merge uses it to find the stragglers a receipts-model history
// leaves behind — accounts whose materialised state pinned them to a lane
// earlier waves could only Rehome around — and force-migrate them off a
// lane being decommissioned, deterministically.
func (sc *ShardChain) HomesOn(s int) []types.Address {
	var out []types.Address
	for addr, home := range sc.home {
		if home == s {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// RemoveShards shrinks the chain to newK lanes, decommissioning lanes
// newK..K-1. Every dropped lane must pass DrainShard — the caller re-homed
// its accounts and settled its traffic first — so removal is pure
// bookkeeping: truncate the lane slices and each survivor's outbox range.
func (sc *ShardChain) RemoveShards(newK int) error {
	oldK := sc.cfg.K
	if newK >= oldK {
		return fmt.Errorf("shardchain: RemoveShards to %d lanes, have %d", newK, oldK)
	}
	if newK < 1 {
		return fmt.Errorf("shardchain: RemoveShards to %d lanes", newK)
	}
	for s := newK; s < oldK; s++ {
		if err := sc.DrainShard(s); err != nil {
			return err
		}
	}
	sc.shards = sc.shards[:newK]
	for _, sh := range sc.shards {
		sh.outbox = sh.outbox[:newK]
	}
	if sc.blockDelta != nil {
		sc.blockDelta = sc.blockDelta[:newK]
	}
	if sc.wal != nil {
		sc.wal = sc.wal[:newK]
	}
	sc.cfg.K = newK
	return nil
}
