package shardchain

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"ethpart/internal/chain"
	"ethpart/internal/sim"
	"ethpart/internal/types"
)

// The parallel engine (Config.Parallel) runs each block's per-shard work on
// one worker per shard — the sim.RunIndexed pool shape — and is
// byte-identical to the serial engine. The structure that makes that
// possible:
//
//   - Blocks are barriers. Within a block, work on different shards never
//     reads another shard's state: cross-shard receipts are buffered into
//     per-item effects and exchanged only at the block barrier, in
//     canonical (source-shard, emission-order) order.
//   - The home map is read-only during a fan-out. Every transaction sender
//     and target (and every inbox receipt target) is pre-resolved before
//     workers start; addresses that only surface during EVM execution are
//     resolved purely (resolveHome is a pure function of the address
//     within one Step) and committed at the next barrier.
//   - Stats are per-item deltas merged at the barrier; sums are
//     order-independent, so totals equal the serial engine's.
//   - Migration-model state movement is serialized. Top-level migrations
//     (a cross transaction moving its sender) are planned by scanning the
//     block in order: each one ends the current wave of parallel-safe
//     transactions and runs with full serial semantics between waves.
//     Internal calls that reach a remote callee cannot be planned (the
//     callee address is computed by the EVM at run time); they abort the
//     item (conflict protocol below) and re-execute serially.
//
// Conflict protocol: wave items run with retained journals and a snapshot
// per item. A worker whose item needs a callee migration reverts the item,
// publishes its index, and stops. After the wave joins, every shard rolls
// back all items at or after the earliest conflict (their effects are
// discarded, so outboxes and stats stay exact), the conflicted transaction
// re-executes serially — where migrating the callee is safe — and planning
// resumes after it. The earliest conflict is a deterministic function of
// the block prefix, so repeated runs take identical barriers.

// waveItem is one transaction pinned to the shard that does its work.
type waveItem struct {
	idx  int // index into the block's transactions
	work int // shard doing the work
	// receiptsCross marks the receipts-model cross path (debit the sender,
	// emit a receipt to dst) instead of local execution.
	receiptsCross bool
	dst           int
}

// itemRun records one executed wave item for the conflict rollback.
type itemRun struct {
	it   waveItem
	snap int // journal snapshot of the work shard before the item
	eff  effects
	// seen are the item's first-sight home resolutions. They are kept per
	// item because only surviving items may commit them: a rolled-back
	// item's re-execution can take a different path and never touch the
	// address again, and committing its resolution anyway would create a
	// home entry the serial engine never makes — divergent placement the
	// first time the assignment changes under the address's feet.
	seen []homePair
}

// migrationNeeded aborts a wave item whose internal call reached a callee
// homed on another shard; only a serialized context may migrate it.
type migrationNeeded struct{ to types.Address }

// workerPanic wraps any non-sentinel panic escaping a wave item with the
// shard and transaction it was executing. The sentinel check in
// runWaveItem matches by type, so an unrelated panic (a bug, an injected
// crash inside a worker) can never be mistaken for a migration abort and
// silently rolled back — it surfaces, with context attached.
type workerPanic struct {
	Shard, Tx int
	Val       any
}

func (p workerPanic) Error() string {
	return fmt.Sprintf("shardchain: wave worker panic on shard %d (tx %d): %v", p.Shard, p.Tx, p.Val)
}

// stepParallel is Step's parallel engine.
func (sc *ShardChain) stepParallel(txs []*chain.Transaction) []*chain.Receipt {
	sc.settleParallel()
	return sc.executeParallel(txs)
}

// settleParallel settles every shard's inbox on a worker per shard.
// Settlements on shard s touch only shard s's state and its own outbox, so
// no conflict protocol is needed; receipts only exist under ModelReceipts,
// whose hook never migrates. (Under ModelMigration inboxes are always
// empty — the hook migrates callees instead of emitting receipts — but if
// one were ever non-empty, the serial path handles it exactly.)
func (sc *ShardChain) settleParallel() {
	total := 0
	for _, sh := range sc.shards {
		total += len(sh.inbox)
	}
	if total == 0 {
		return
	}
	if sc.cfg.Model == ModelMigration {
		sc.settleInboxesSerial(&homes{sc: sc})
		return
	}
	// Pre-resolve every receipt target so workers read the home map
	// read-only (continuation code can still surface new addresses; those
	// resolve purely and commit at the barrier).
	for _, sh := range sc.shards {
		for _, r := range sh.inbox {
			sc.HomeOf(r.To)
		}
	}
	effs := make([]effects, sc.cfg.K)
	seen := make([][]homePair, sc.cfg.K)
	sim.RunIndexed(sc.cfg.K, func(s int) {
		sh := sc.shards[s]
		inbox := sh.inbox
		sh.inbox = nil
		h := &homes{sc: sc, record: true}
		for _, r := range inbox {
			sc.settleOne(s, r, h, &effs[s], nil)
		}
		seen[s] = h.seen
	})
	// Barrier: commit first-sight homes, then land effects in canonical
	// shard order (each shard's emissions are already in settle order).
	for s := 0; s < sc.cfg.K; s++ {
		sc.commitHomes(seen[s])
		sc.applyEffects(s, &effs[s])
	}
}

// executeParallel executes the block's transactions in waves of
// parallel-safe items, with migration-model barriers serialized between
// them.
func (sc *ShardChain) executeParallel(txs []*chain.Transaction) []*chain.Receipt {
	receipts := make([]*chain.Receipt, len(txs))
	// Pre-resolve every sender and target before any fan-out, so planning
	// and workers see a frozen home map.
	for _, tx := range txs {
		sc.HomeOf(tx.From)
		if tx.To != nil {
			sc.HomeOf(*tx.To)
		}
	}
	h := &homes{sc: sc}
	p := 0
	for p < len(txs) {
		q, items := sc.planWave(txs, p, h)
		if len(items) == 0 {
			// txs[p] needs its sender migrated before it can run: the
			// serialized migration barrier. Run the whole transaction with
			// serial semantics and resume planning after it.
			receipts[p] = sc.runTxSerial(txs[p], h)
			p++
			continue
		}
		if c := sc.runWave(txs, items, receipts); c >= 0 {
			// Conflict: everything at or after c was rolled back; item c
			// re-executes serially (callee migrations allowed), and the
			// remainder of the block is re-planned against the new homes.
			receipts[c] = sc.runTxSerial(txs[c], h)
			p = c + 1
			continue
		}
		p = q
	}
	return receipts
}

// planWave scans txs[p:] in block order and returns the end of the maximal
// wave of parallel-safe transactions plus their pinned work shards. Under
// ModelMigration a cross transaction needs its sender migrated first —
// state movement only a serialized context may perform — so it ends the
// wave (an empty wave means txs[p] itself is such a barrier). Under
// ModelReceipts every transaction is parallel-safe and the wave is the
// whole rest of the block. Homes cannot change inside a wave (the only
// in-block mutations are the serialized migrations between waves and the
// conflict path, which re-plans), so the pins stay valid.
func (sc *ShardChain) planWave(txs []*chain.Transaction, p int, h *homes) (int, []waveItem) {
	var items []waveItem
	for i := p; i < len(txs); i++ {
		tx := txs[i]
		exec := sc.execShardOf(tx, h)
		sender := h.of(tx.From)
		cross := sender != exec
		if sc.cfg.Model == ModelMigration && cross {
			return i, items
		}
		it := waveItem{idx: i, work: exec}
		if cross { // ModelReceipts: the sender's shard does the work
			it.work = sender
			it.receiptsCross = true
			it.dst = exec
		}
		items = append(items, it)
	}
	return len(txs), items
}

// runWave executes one wave on a worker per shard. It returns the earliest
// conflicting transaction index, or -1 when the wave committed cleanly.
// On conflict, every shard's state is rolled back to just before its first
// item at or after the conflict and those items' effects are discarded;
// committed items (all strictly before the conflict) have exactly the
// serial engine's cumulative effect.
func (sc *ShardChain) runWave(txs []*chain.Transaction, items []waveItem, receipts []*chain.Receipt) int {
	queues := make([][]waveItem, sc.cfg.K)
	for _, it := range items {
		queues[it.work] = append(queues[it.work], it)
	}
	runs := make([][]itemRun, sc.cfg.K)
	var conflict atomic.Int64
	conflict.Store(math.MaxInt64)
	// Conflicts (and therefore rollbacks) only exist under ModelMigration:
	// the receipts-model hook never migrates, so its waves skip the
	// retained journals and per-item snapshots entirely.
	retain := sc.cfg.Model == ModelMigration

	sim.RunIndexed(sc.cfg.K, func(s int) {
		st := sc.shards[s].state
		for _, it := range queues[s] {
			// A conflict strictly before this item means it will be rolled
			// back regardless; stop early. (conflict only ever decreases,
			// so everything skipped here is at or after the final value.)
			if int64(it.idx) > conflict.Load() {
				break
			}
			// A fresh recorder per item: only surviving items commit their
			// first-sight resolutions (resolveHome is pure within the
			// Step, so re-resolving across items costs nothing).
			h := &homes{sc: sc, record: true}
			run := itemRun{it: it}
			if retain {
				run.snap = st.Snapshot()
			}
			if sc.runWaveItem(txs[it.idx], it, h, &run.eff, receipts, retain) {
				// Needs a callee migration: undo the item and publish the
				// conflict (keep the minimum across workers).
				st.RevertToSnapshot(run.snap)
				for {
					cur := conflict.Load()
					if int64(it.idx) >= cur || conflict.CompareAndSwap(cur, int64(it.idx)) {
						break
					}
				}
				break
			}
			run.seen = h.seen
			runs[s] = append(runs[s], run)
		}
	})

	c := -1
	if v := conflict.Load(); v != math.MaxInt64 {
		c = int(v)
	}
	if c >= 0 {
		// Roll every shard back to just before its first item at or after
		// the conflict; their effects are dropped with them.
		for s := range runs {
			for j, run := range runs[s] {
				if run.it.idx >= c {
					sc.shards[s].state.RevertToSnapshot(run.snap)
					runs[s] = runs[s][:j]
					break
				}
			}
		}
	}
	// Merge surviving items in transaction order — the serial engine's
	// application order: commit their first-sight homes (pure values the
	// conflict path may later overwrite, exactly as the serial engine
	// would) and land their effects. Then drop the retained journals.
	var survivors []itemRun
	for s := range runs {
		survivors = append(survivors, runs[s]...)
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].it.idx < survivors[j].it.idx })
	for i := range survivors {
		sc.commitHomes(survivors[i].seen)
		sc.applyEffects(survivors[i].it.work, &survivors[i].eff)
	}
	if retain {
		for _, sh := range sc.shards {
			sh.state.DiscardJournal()
		}
	}
	return c
}

// runWaveItem executes one wave item on its worker, reporting whether it
// aborted on a needed callee migration. Receipts for committed items land
// at their transaction index; aborted or rolled-back indices are rewritten
// by the serialized re-execution.
func (sc *ShardChain) runWaveItem(tx *chain.Transaction, it waveItem, h *homes, eff *effects, receipts []*chain.Receipt, retain bool) (aborted bool) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case migrationNeeded:
			aborted = true
		case workerPanic:
			// Already wrapped by an inner frame; keep the innermost context.
			panic(r)
		default:
			panic(workerPanic{Shard: it.work, Tx: it.idx, Val: r})
		}
	}()
	if it.receiptsCross {
		receipts[it.idx] = sc.crossEmit(it.work, it.dst, tx, eff, retain)
		return false
	}
	receipts[it.idx] = sc.runLocal(it.work, tx, h, eff, func(to types.Address, _ int) {
		panic(migrationNeeded{to})
	}, retain)
	return false
}
