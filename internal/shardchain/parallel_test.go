package shardchain

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

// enginePair is a serial reference chain and a parallel chain built from
// identical genesis, model and assignment.
type enginePair struct {
	serial, parallel *ShardChain
}

func newEnginePair(t *testing.T, k int, model Model, alloc map[types.Address]evm.Word, assign func(types.Address) (int, bool)) *enginePair {
	t.Helper()
	mk := func(par bool) *ShardChain {
		sc, err := New(Config{K: k, Model: model, Chain: chain.DefaultConfig(), Parallel: par}, alloc, assign)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	return &enginePair{serial: mk(false), parallel: mk(true)}
}

// step drives both engines through the same block and requires identical
// receipts.
func (p *enginePair) step(t *testing.T, txs []*chain.Transaction) []*chain.Receipt {
	t.Helper()
	rs := p.serial.Step(txs)
	rp := p.parallel.Step(txs)
	if !reflect.DeepEqual(rs, rp) {
		t.Fatalf("receipts diverge at block %d:\nserial:   %+v\nparallel: %+v",
			p.serial.clock, dumpReceipts(rs), dumpReceipts(rp))
	}
	return rp
}

func dumpReceipts(rs []*chain.Receipt) string {
	out := ""
	for i, r := range rs {
		out += fmt.Sprintf("\n  [%d] %+v", i, r)
	}
	return out
}

// requireIdentical pins the full observable state: per-shard state roots
// and account counts, stats, pending receipts and the home map.
func (p *enginePair) requireIdentical(t *testing.T) {
	t.Helper()
	if p.serial.stats != p.parallel.stats {
		t.Fatalf("stats diverge:\nserial:   %+v\nparallel: %+v", p.serial.stats, p.parallel.stats)
	}
	for s := 0; s < p.serial.cfg.K; s++ {
		ss, ps := p.serial.StateOf(s), p.parallel.StateOf(s)
		if ss.AccountCount() != ps.AccountCount() {
			t.Fatalf("shard %d account counts diverge: %d vs %d", s, ss.AccountCount(), ps.AccountCount())
		}
		if ss.Commit() != ps.Commit() {
			t.Fatalf("shard %d state roots diverge", s)
		}
	}
	if p.serial.PendingReceipts() != p.parallel.PendingReceipts() {
		t.Fatalf("pending receipts diverge: %d vs %d",
			p.serial.PendingReceipts(), p.parallel.PendingReceipts())
	}
	if !reflect.DeepEqual(p.serial.home, p.parallel.home) {
		t.Fatalf("home maps diverge:\nserial:   %v\nparallel: %v", p.serial.home, p.parallel.home)
	}
}

// TestPropertyParallelStepMatchesSerial is the engine-equivalence property
// test: for seeded workload slices mixing plain transfers, token calls
// (storage-writing contract activity, cross-shard continuations under
// receipts), wallet calls (internal calls that leave the shard — receipts
// under ModelReceipts, callee migrations and the parallel conflict path
// under ModelMigration) and mid-run contract creations, the parallel
// engine's receipts, per-shard states, stats and homes are byte-identical
// to the serial reference, for both models and k ∈ {2, 4, 8}. Run under
// -race in CI, it also proves the fan-out is data-race free.
func TestPropertyParallelStepMatchesSerial(t *testing.T) {
	for _, model := range []Model{ModelReceipts, ModelMigration} {
		for _, k := range []int{2, 4, 8} {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%v/k=%d/seed=%d", model, k, seed), func(t *testing.T) {
					runEngineEquivalence(t, model, k, seed)
				})
			}
		}
	}
}

func runEngineEquivalence(t *testing.T, model Model, k int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const nAccounts = 12
	accounts := make([]types.Address, nAccounts)
	assignMap := map[types.Address]int{}
	alloc := map[types.Address]evm.Word{}
	for i := range accounts {
		accounts[i] = types.AddressFromSeq(uint64(i + 1))
		assignMap[accounts[i]] = i % k
		alloc[accounts[i]] = evm.WordFromUint64(1 << 40)
	}
	// The deployer of each contract is the account homed on the contract's
	// shard; pin the derived contract addresses in the assignment so both
	// engines home them where their code lives.
	deployer := accounts[0] // homed on shard 0
	wallet := types.ContractAddress(deployer, 0)
	token := types.ContractAddress(deployer, 1)
	assignMap[wallet] = 0
	assignMap[token] = 0
	pair := newEnginePair(t, k, model, alloc, fixedAssign(assignMap))

	nonces := map[types.Address]uint64{}
	deploy := func(runtime []byte) {
		tx := &chain.Transaction{
			Nonce: nonces[deployer], From: deployer,
			Data: evm.DeployWrapper(runtime), GasLimit: 5_000_000, GasPrice: 0,
		}
		nonces[deployer]++
		for _, r := range pair.step(t, []*chain.Transaction{tx}) {
			if !r.Success {
				t.Fatalf("deploy failed: %v", r.Err)
			}
		}
	}
	deploy(workload.WalletRuntime())
	deploy(workload.TokenRuntime())

	word := func(b []byte) []byte {
		w := evm.WordFromBytes(b).Bytes32()
		return w[:]
	}
	for block := 0; block < 8; block++ {
		var txs []*chain.Transaction
		for i := 0; i < 10; i++ {
			from := accounts[rng.Intn(nAccounts)]
			tx := &chain.Transaction{
				Nonce: nonces[from], From: from,
				GasLimit: 500_000, GasPrice: uint64(rng.Intn(2)),
			}
			switch roll := rng.Intn(10); {
			case roll < 5: // plain transfer
				to := accounts[rng.Intn(nAccounts)]
				tx.To = &to
				tx.Value = evm.WordFromUint64(uint64(rng.Intn(1000)))
			case roll < 7: // token transfer (storage writes, continuations)
				to := token
				tx.To = &to
				recipient := accounts[rng.Intn(nAccounts)]
				tx.Data = append(word(recipient[:]), word([]byte{byte(rng.Intn(200))})...)
			case roll < 9: // wallet forward (internal call leaving the shard)
				to := wallet
				tx.To = &to
				tx.Value = evm.WordFromUint64(uint64(1 + rng.Intn(500)))
				recipient := accounts[rng.Intn(nAccounts)]
				tx.Data = word(recipient[:])
			default: // mid-run creation
				tx.Data = evm.DeployWrapper(workload.TokenRuntime())
				tx.GasLimit = 5_000_000
			}
			nonces[from]++
			txs = append(txs, tx)
		}
		pair.step(t, txs)
	}
	// Drain in-flight receipts and compare the final states.
	for i := 0; i < 16 && pair.serial.PendingReceipts() > 0; i++ {
		pair.step(t, nil)
	}
	pair.requireIdentical(t)
}

// TestParallelWaveConflictMatchesSerial pins the conflict protocol on a
// deterministic scenario: a wave-parallel wallet call whose callee lives on
// another shard must abort, roll back, re-execute serially (migrating the
// callee) and still produce byte-identical results — with the callee's
// state moved, not a receipt emitted.
func TestParallelWaveConflictMatchesSerial(t *testing.T) {
	a1 := types.AddressFromSeq(1) // shard 0
	a2 := types.AddressFromSeq(2) // shard 0
	b1 := types.AddressFromSeq(3) // shard 1
	b2 := types.AddressFromSeq(4) // shard 1
	wallet := types.ContractAddress(a1, 0)
	assign := fixedAssign(map[types.Address]int{a1: 0, a2: 0, b1: 1, b2: 1, wallet: 0})
	alloc := map[types.Address]evm.Word{
		a1: evm.WordFromUint64(1 << 30), a2: evm.WordFromUint64(1 << 30),
		b1: evm.WordFromUint64(1 << 30), b2: evm.WordFromUint64(1 << 30),
	}
	pair := newEnginePair(t, 2, ModelMigration, alloc, assign)

	deployTx := &chain.Transaction{
		Nonce: 0, From: a1, Data: evm.DeployWrapper(workload.WalletRuntime()),
		GasLimit: 5_000_000, GasPrice: 0,
	}
	pair.step(t, []*chain.Transaction{deployTx})

	// One block: local traffic on both shards around a wallet call that
	// forwards value to b1, whose state lives on shard 1. The wallet call
	// is wave-parallel (a2 and the wallet share shard 0), so the parallel
	// engine must hit the conflict path, not a planned barrier.
	mk := func(nonce uint64, from, to types.Address, v uint64, data []byte) *chain.Transaction {
		return &chain.Transaction{Nonce: nonce, From: from, To: &to,
			Value: evm.WordFromUint64(v), Data: data, GasLimit: 500_000, GasPrice: 0}
	}
	b1w := evm.WordFromBytes(b1[:]).Bytes32()
	receipts := pair.step(t, []*chain.Transaction{
		mk(1, a1, a2, 10, nil),         // shard 0 local
		mk(0, b2, b1, 20, nil),         // shard 1 local
		mk(0, a2, wallet, 777, b1w[:]), // conflict: callee b1 is remote
		mk(2, a1, a2, 30, nil),         // shard 0, after the conflict
		mk(1, b2, b2, 1, nil),          // shard 1, after the conflict
	})
	for i, r := range receipts {
		if !r.Success {
			t.Fatalf("tx %d failed: %v", i, r.Err)
		}
	}
	pair.requireIdentical(t)

	st := pair.parallel.Stats()
	if st.Migrations == 0 {
		t.Error("remote callee must migrate under ModelMigration")
	}
	if st.ReceiptsSettled != 0 || pair.parallel.PendingReceipts() != 0 {
		t.Errorf("migration model must not emit receipts: settled=%d pending=%d",
			st.ReceiptsSettled, pair.parallel.PendingReceipts())
	}
	if home := pair.parallel.HomeOf(b1); home != 0 {
		t.Errorf("b1 home = %d, want 0 (migrated to the executing shard)", home)
	}
	if got := pair.parallel.BalanceOf(b1).Uint64(); got != (1<<30)+20+777 {
		t.Errorf("b1 balance = %d, want %d", got, (1<<30)+20+777)
	}
	if pair.parallel.StateOf(1).Exist(b1) {
		t.Error("source shard must not keep b1's state after the callee migration")
	}
}

// TestParallelMigrationBarriers pins the serialized migration barrier: a
// block whose transactions migrate their senders between waves must match
// the serial engine and actually move state.
func TestParallelMigrationBarriers(t *testing.T) {
	accounts := make([]types.Address, 6)
	assignMap := map[types.Address]int{}
	alloc := map[types.Address]evm.Word{}
	for i := range accounts {
		accounts[i] = types.AddressFromSeq(uint64(i + 1))
		assignMap[accounts[i]] = i % 3
		alloc[accounts[i]] = evm.WordFromUint64(1 << 30)
	}
	pair := newEnginePair(t, 3, ModelMigration, alloc, fixedAssign(assignMap))

	// Alternate local and cross transfers so waves and barriers interleave.
	var txs []*chain.Transaction
	nonces := map[types.Address]uint64{}
	for i := 0; i < 12; i++ {
		from := accounts[i%len(accounts)]
		to := accounts[(i+i%3+1)%len(accounts)]
		txs = append(txs, &chain.Transaction{
			Nonce: nonces[from], From: from, To: &to,
			Value: evm.WordFromUint64(uint64(100 + i)), GasLimit: 50_000, GasPrice: 0,
		})
		nonces[from]++
	}
	for _, r := range pair.step(t, txs) {
		if !r.Success {
			t.Fatalf("transfer failed: %v", r.Err)
		}
	}
	pair.requireIdentical(t)
	if pair.parallel.Stats().Migrations == 0 {
		t.Error("cross transfers under ModelMigration must migrate senders")
	}
}
