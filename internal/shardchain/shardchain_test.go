package shardchain

import (
	"testing"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

var (
	alice = types.AddressFromSeq(1)
	bob   = types.AddressFromSeq(2)
	carol = types.AddressFromSeq(3)
)

// fixedAssign pins addresses to shards for tests.
func fixedAssign(m map[types.Address]int) func(types.Address) (int, bool) {
	return func(a types.Address) (int, bool) {
		s, ok := m[a]
		return s, ok
	}
}

func newSC(t *testing.T, model Model, assign map[types.Address]int) *ShardChain {
	t.Helper()
	sc, err := New(Config{K: 2, Model: model, Chain: chain.DefaultConfig()},
		map[types.Address]evm.Word{
			alice: evm.WordFromUint64(1 << 40),
			bob:   evm.WordFromUint64(1 << 40),
		}, fixedAssign(assign))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func transfer(nonce uint64, from, to types.Address, value uint64) *chain.Transaction {
	return &chain.Transaction{
		Nonce: nonce, From: from, To: &to,
		Value: evm.WordFromUint64(value), GasLimit: 100_000, GasPrice: 1,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 0, Model: ModelReceipts}, nil, nil); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := New(Config{K: 2, Model: Model(9)}, nil, nil); err == nil {
		t.Error("bad model must be rejected")
	}
}

func TestModelString(t *testing.T) {
	if ModelReceipts.String() != "receipts" || ModelMigration.String() != "migration" {
		t.Error("model names wrong")
	}
}

func TestLocalTransferStaysLocal(t *testing.T) {
	sc := newSC(t, ModelReceipts, map[types.Address]int{alice: 0, bob: 0})
	rs := sc.Step([]*chain.Transaction{transfer(0, alice, bob, 500)})
	if !rs[0].Success {
		t.Fatalf("local transfer failed: %v", rs[0].Err)
	}
	st := sc.Stats()
	if st.LocalTxs != 1 || st.CrossTxs != 0 || st.Messages != 0 {
		t.Errorf("stats = %+v", st)
	}
	if got := sc.BalanceOf(bob); got.Uint64() != (1<<40)+500 {
		t.Errorf("bob balance = %v", got)
	}
}

func TestCrossTransferViaReceipts(t *testing.T) {
	sc := newSC(t, ModelReceipts, map[types.Address]int{alice: 0, bob: 1})
	rs := sc.Step([]*chain.Transaction{transfer(0, alice, bob, 500)})
	if !rs[0].Success {
		t.Fatalf("cross transfer rejected: %v", rs[0].Err)
	}
	// The value is debited immediately but credited only on settlement.
	if got := sc.StateOf(0).GetBalance(alice).Uint64(); got != (1<<40)-500 {
		t.Errorf("alice balance = %d", got)
	}
	if got := sc.StateOf(1).GetBalance(bob).Uint64(); got != 1<<40 {
		t.Errorf("bob credited too early: %d", got)
	}
	// Next block settles the receipt.
	sc.Step(nil)
	if got := sc.StateOf(1).GetBalance(bob).Uint64(); got != (1<<40)+500 {
		t.Errorf("bob balance after settlement = %d", got)
	}
	st := sc.Stats()
	if st.CrossTxs != 1 || st.Messages != 1 || st.ReceiptsSettled != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.SettlementBlocks != 1 {
		t.Errorf("settlement latency = %d blocks, want 1", st.SettlementBlocks)
	}
}

func TestCrossTransferViaMigration(t *testing.T) {
	sc := newSC(t, ModelMigration, map[types.Address]int{alice: 0, bob: 1})
	rs := sc.Step([]*chain.Transaction{transfer(0, alice, bob, 500)})
	if !rs[0].Success {
		t.Fatalf("cross transfer failed: %v", rs[0].Err)
	}
	// Migration moves alice to shard 1 and executes immediately.
	if sc.HomeOf(alice) != 1 {
		t.Error("alice must have migrated to shard 1")
	}
	if got := sc.StateOf(1).GetBalance(bob).Uint64(); got != (1<<40)+500 {
		t.Errorf("bob balance = %d (settlement must be synchronous)", got)
	}
	if got := sc.StateOf(0).GetBalance(alice); !got.IsZero() {
		t.Errorf("alice left balance behind: %v", got)
	}
	st := sc.Stats()
	if st.Migrations != 1 || st.Messages != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMigrationCarriesContractStorage(t *testing.T) {
	sc := newSC(t, ModelMigration, map[types.Address]int{alice: 0, bob: 1})
	// Put a contract with storage on shard 0 under alice's address space:
	// simulate by writing directly.
	contract := carol
	sc.home[contract] = 0
	st0 := sc.StateOf(0)
	st0.SetCode(contract, []byte{byte(evm.STOP)})
	st0.SetState(contract, evm.WordFromUint64(1), evm.WordFromUint64(11))
	st0.SetState(contract, evm.WordFromUint64(2), evm.WordFromUint64(22))
	st0.DiscardJournal()

	sc.migrate(contract, 0, 1)
	st1 := sc.StateOf(1)
	if got := st1.GetState(contract, evm.WordFromUint64(1)).Uint64(); got != 11 {
		t.Errorf("slot 1 = %d", got)
	}
	if got := st1.GetState(contract, evm.WordFromUint64(2)).Uint64(); got != 22 {
		t.Errorf("slot 2 = %d", got)
	}
	if len(st1.GetCode(contract)) == 0 {
		t.Error("code not migrated")
	}
	if sc.Stats().MigratedSlots != 2 {
		t.Errorf("MigratedSlots = %d, want 2", sc.Stats().MigratedSlots)
	}
}

func TestInternalCrossShardCallBecomesReceipt(t *testing.T) {
	// A wallet contract on shard 0 forwards value to carol on shard 1: the
	// internal CALL must divert into a receipt.
	sc := newSC(t, ModelReceipts, map[types.Address]int{alice: 0, carol: 1})
	wallet := deployOnShard(t, sc, 0, workload.WalletRuntime(), 1<<20)

	var data [32]byte
	cb := evm.WordFromBytes(carol[:]).Bytes32()
	copy(data[:], cb[:])
	tx := &chain.Transaction{
		Nonce: sc.StateOf(0).GetNonce(alice), From: alice, To: &wallet,
		Value: evm.WordFromUint64(777), Data: data[:],
		GasLimit: 500_000, GasPrice: 1,
	}
	rs := sc.Step([]*chain.Transaction{tx})
	if !rs[0].Success {
		t.Fatalf("wallet call failed: %v", rs[0].Err)
	}
	if sc.Stats().Messages != 1 {
		t.Fatalf("messages = %d, want 1 (internal call diverted)", sc.Stats().Messages)
	}
	// Carol is credited on settlement.
	sc.Step(nil)
	if got := sc.StateOf(1).GetBalance(carol).Uint64(); got != 777 {
		t.Errorf("carol balance = %d, want 777", got)
	}
}

func TestInternalCrossShardCallMigratesCalleeUnderMigration(t *testing.T) {
	// Regression: under ModelMigration an internal call leaving the shard
	// must migrate the callee to the executing shard and continue locally —
	// the package contract says "every remote participant's account state
	// is migrated" — not divert into a receipt (the old code armed the
	// receipts hook for both models).
	sc := newSC(t, ModelMigration, map[types.Address]int{alice: 0, carol: 1})
	// Carol has materialised state on shard 1.
	sc.StateOf(1).AddBalance(carol, evm.WordFromUint64(1000))
	sc.StateOf(1).DiscardJournal()
	wallet := deployOnShard(t, sc, 0, workload.WalletRuntime(), 1<<20)
	migrationsBefore := sc.Stats().Migrations

	var data [32]byte
	cb := evm.WordFromBytes(carol[:]).Bytes32()
	copy(data[:], cb[:])
	tx := &chain.Transaction{
		Nonce: sc.StateOf(0).GetNonce(alice), From: alice, To: &wallet,
		Value: evm.WordFromUint64(777), Data: data[:],
		GasLimit: 500_000, GasPrice: 1,
	}
	rs := sc.Step([]*chain.Transaction{tx})
	if !rs[0].Success {
		t.Fatalf("wallet call failed: %v", rs[0].Err)
	}
	st := sc.Stats()
	if st.Migrations <= migrationsBefore {
		t.Errorf("Migrations = %d, want > %d (remote callee must migrate)", st.Migrations, migrationsBefore)
	}
	if st.ReceiptsSettled != 0 || sc.PendingReceipts() != 0 {
		t.Errorf("migration model emitted receipts: settled=%d pending=%d",
			st.ReceiptsSettled, sc.PendingReceipts())
	}
	// The call completed synchronously on shard 0 with carol's full state.
	if home := sc.HomeOf(carol); home != 0 {
		t.Errorf("carol home = %d, want 0", home)
	}
	if got := sc.StateOf(0).GetBalance(carol).Uint64(); got != 1000+777 {
		t.Errorf("carol balance = %d, want 1777", got)
	}
	if sc.StateOf(1).Exist(carol) {
		t.Error("source shard must not keep carol's state after the callee migration")
	}
}

func TestInternalCallToStatelessRemoteRehomesUnderMigration(t *testing.T) {
	// A remote callee that has no materialised state anywhere is re-homed
	// to the executing shard without a phantom migration (mirroring
	// MigrateAccount's refusal to move nothing).
	sc := newSC(t, ModelMigration, map[types.Address]int{alice: 0, carol: 1})
	wallet := deployOnShard(t, sc, 0, workload.WalletRuntime(), 1<<20)

	var data [32]byte
	cb := evm.WordFromBytes(carol[:]).Bytes32()
	copy(data[:], cb[:])
	tx := &chain.Transaction{
		Nonce: sc.StateOf(0).GetNonce(alice), From: alice, To: &wallet,
		Value: evm.WordFromUint64(42), Data: data[:],
		GasLimit: 500_000, GasPrice: 1,
	}
	if rs := sc.Step([]*chain.Transaction{tx}); !rs[0].Success {
		t.Fatalf("wallet call failed: %v", rs[0].Err)
	}
	if st := sc.Stats(); st.Migrations != 0 || st.Messages != 0 {
		t.Errorf("stateless callee moved state: %+v", st)
	}
	if home := sc.HomeOf(carol); home != 0 {
		t.Errorf("carol home = %d, want 0 (re-homed to executing shard)", home)
	}
	if got := sc.StateOf(0).GetBalance(carol).Uint64(); got != 42 {
		t.Errorf("carol balance = %d, want 42", got)
	}
}

// deployOnShard deploys runtime on the given shard from alice (whose home
// must be that shard) and registers the contract's home.
func deployOnShard(t *testing.T, sc *ShardChain, shard int, runtime []byte, endow uint64) types.Address {
	t.Helper()
	nonce := sc.StateOf(shard).GetNonce(alice)
	tx := &chain.Transaction{
		Nonce: nonce, From: alice, Data: evm.DeployWrapper(runtime),
		Value: evm.WordFromUint64(endow), GasLimit: 5_000_000, GasPrice: 1,
	}
	rs := sc.Step([]*chain.Transaction{tx})
	if !rs[0].Success || rs[0].ContractAddress == nil {
		t.Fatalf("deploy failed: %+v", rs[0])
	}
	addr := *rs[0].ContractAddress
	sc.home[addr] = shard
	return addr
}

func TestReceiptAgainstContractTriggersCode(t *testing.T) {
	// A token contract on shard 1; a cross-shard receipt carrying transfer
	// calldata must execute the token's code on settlement.
	assign := map[types.Address]int{alice: 1, bob: 0}
	sc := newSC(t, ModelReceipts, assign)
	token := deployOnShard(t, sc, 1, workload.TokenRuntime(), 0)

	recipient := carol
	var data [64]byte
	rb := evm.WordFromBytes(recipient[:]).Bytes32()
	ab := evm.WordFromUint64(250).Bytes32()
	copy(data[0:32], rb[:])
	copy(data[32:64], ab[:])

	// bob (shard 0) calls the token (shard 1): receipt + deferred execute.
	tx := &chain.Transaction{
		Nonce: 0, From: bob, To: &token, Data: data[:],
		GasLimit: 300_000, GasPrice: 1,
	}
	rs := sc.Step([]*chain.Transaction{tx})
	if !rs[0].Success {
		t.Fatalf("cross token call rejected: %v", rs[0].Err)
	}
	if !sc.StateOf(1).GetState(token, evm.WordFromBytes(recipient[:])).IsZero() {
		t.Fatal("token executed before settlement")
	}
	sc.Step(nil)
	got := sc.StateOf(1).GetState(token, evm.WordFromBytes(recipient[:]))
	if got.Uint64() != 250 {
		t.Errorf("token balance after settlement = %v, want 250", got)
	}
}

func TestHashShardFallbackDeterministic(t *testing.T) {
	sc := newSC(t, ModelReceipts, nil)
	s1 := sc.HomeOf(carol)
	s2 := sc.HomeOf(carol)
	if s1 != s2 {
		t.Error("fallback placement must be sticky")
	}
	if s1 < 0 || s1 >= 2 {
		t.Errorf("shard %d out of range", s1)
	}
}

func TestCrossTxBadNonceFails(t *testing.T) {
	sc := newSC(t, ModelReceipts, map[types.Address]int{alice: 0, bob: 1})
	rs := sc.Step([]*chain.Transaction{transfer(7, alice, bob, 1)})
	if rs[0].Success {
		t.Fatal("bad nonce must fail")
	}
	if sc.Stats().Failed != 1 {
		t.Errorf("Failed = %d", sc.Stats().Failed)
	}
}

func TestValueConservationAcrossShards(t *testing.T) {
	// Total supply across shards is invariant under cross-shard traffic
	// (gas is priced but the miner address is the zero address whose
	// balance also counts).
	for _, model := range []Model{ModelReceipts, ModelMigration} {
		sc := newSC(t, model, map[types.Address]int{alice: 0, bob: 1})
		supply := func() uint64 {
			var total uint64
			for i := 0; i < 2; i++ {
				st := sc.StateOf(i)
				for _, a := range []types.Address{alice, bob, carol, {}} {
					total += st.GetBalance(a).Uint64()
				}
			}
			return total
		}
		before := supply()
		sc.Step([]*chain.Transaction{transfer(0, alice, bob, 12345)})
		sc.Step([]*chain.Transaction{transfer(0, bob, carol, 777)})
		sc.Step(nil)
		sc.Step(nil)
		if got := supply(); got != before {
			t.Errorf("%v: supply changed %d -> %d", model, before, got)
		}
	}
}
