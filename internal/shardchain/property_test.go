package shardchain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

func TestPropertyValueConservedUnderRandomTraffic(t *testing.T) {
	// Property: for any random transfer workload, under either model, the
	// total balance across all shards after full settlement equals the
	// genesis supply (gas is recycled: price 0 here isolates value flow).
	f := func(seed int64, nRaw, kRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%4) + 2
		model := []Model{ModelReceipts, ModelMigration}[int(mRaw)%2]
		nAccounts := 10
		accounts := make([]types.Address, nAccounts)
		alloc := map[types.Address]evm.Word{}
		var supply uint64
		for i := range accounts {
			accounts[i] = types.AddressFromSeq(uint64(i + 1))
			bal := uint64(1_000_000 + rng.Intn(1_000_000))
			alloc[accounts[i]] = evm.WordFromUint64(bal)
			supply += bal
		}
		sc, err := New(Config{K: k, Model: model, Chain: chain.DefaultConfig()}, alloc, nil)
		if err != nil {
			return false
		}
		nonces := map[types.Address]uint64{}
		steps := int(nRaw%8) + 2
		for b := 0; b < steps; b++ {
			var txs []*chain.Transaction
			for t := 0; t < 6; t++ {
				from := accounts[rng.Intn(nAccounts)]
				to := accounts[rng.Intn(nAccounts)]
				txs = append(txs, &chain.Transaction{
					Nonce: nonces[from], From: from, To: &to,
					Value:    evm.WordFromUint64(uint64(rng.Intn(500))),
					GasLimit: 50_000, GasPrice: 0,
				})
				nonces[from]++
			}
			sc.Step(txs)
		}
		// Drain receipts.
		sc.Step(nil)
		sc.Step(nil)

		var total uint64
		for i := 0; i < k; i++ {
			st := sc.StateOf(i)
			for _, a := range accounts {
				total += st.GetBalance(a).Uint64()
			}
		}
		return total == supply
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNoncesAdvanceExactlyOncePerTx(t *testing.T) {
	// Property: after a run, the nonce of every account on its home shard
	// equals the number of transactions it sent. Under migration the home
	// shard may change, but the nonce travels with the account.
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		model := []Model{ModelReceipts, ModelMigration}[int(mRaw)%2]
		accounts := []types.Address{
			types.AddressFromSeq(1), types.AddressFromSeq(2), types.AddressFromSeq(3),
		}
		alloc := map[types.Address]evm.Word{}
		for _, a := range accounts {
			alloc[a] = evm.WordFromUint64(1 << 30)
		}
		sc, err := New(Config{K: 3, Model: model, Chain: chain.DefaultConfig()}, alloc, nil)
		if err != nil {
			return false
		}
		sent := map[types.Address]uint64{}
		for b := 0; b < 5; b++ {
			var txs []*chain.Transaction
			for t := 0; t < 4; t++ {
				from := accounts[rng.Intn(len(accounts))]
				to := accounts[rng.Intn(len(accounts))]
				txs = append(txs, &chain.Transaction{
					Nonce: sent[from], From: from, To: &to,
					Value: evm.WordFromUint64(1), GasLimit: 50_000, GasPrice: 1,
				})
				sent[from]++
			}
			for _, r := range sc.Step(txs) {
				if !r.Success {
					return false // all transfers must validate
				}
			}
		}
		for _, a := range accounts {
			if sc.StateOf(sc.HomeOf(a)).GetNonce(a) != sent[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
