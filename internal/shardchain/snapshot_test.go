package shardchain

import (
	"testing"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// TestAssignSnapshotPinsBlockResolution pins the Config.AssignSnapshot
// contract: Step acquires exactly one frozen view per block and resolves
// every in-block first-sight placement through it, while out-of-block
// resolutions (accessors between blocks) use the per-call assign callback.
// A directory-backed caller relies on this to guarantee a whole block
// resolves against a single epoch even if a publisher commits mid-block.
func TestAssignSnapshotPinsBlockResolution(t *testing.T) {
	inBlockShard := 1
	snapshotCalls := 0
	sc, err := New(Config{
		K: 2, Model: ModelReceipts, Chain: chain.DefaultConfig(),
		AssignSnapshot: func() func(types.Address) (int, bool) {
			snapshotCalls++
			pinned := inBlockShard // frozen at block start
			return func(types.Address) (int, bool) { return pinned, true }
		},
	}, map[types.Address]evm.Word{
		alice: evm.WordFromUint64(1 << 40),
	}, func(types.Address) (int, bool) { return 0, true /* per-call view */ })
	if err != nil {
		t.Fatal(err)
	}
	// Genesis allocation happened before any Step: per-call view, shard 0.
	if snapshotCalls != 0 {
		t.Fatalf("AssignSnapshot called %d times before the first Step", snapshotCalls)
	}
	if s, ok := sc.Known(alice); !ok || s != 0 {
		t.Fatalf("genesis home = %d,%v, want 0 via per-call assign", s, ok)
	}

	// First sight of bob happens inside the block: the pinned view wins,
	// and mutating the source mid-"epoch" must not leak into this block.
	receipts := sc.Step([]*chain.Transaction{transfer(0, alice, bob, 5)})
	if !receipts[0].Success {
		t.Fatalf("transfer failed: %v", receipts[0].Err)
	}
	if snapshotCalls != 1 {
		t.Fatalf("AssignSnapshot called %d times for one Step, want 1", snapshotCalls)
	}
	if s, _ := sc.Known(bob); s != 1 {
		t.Fatalf("in-block first sight homed bob on %d, want pinned shard 1", s)
	}

	// Between blocks the pinned view is gone: a fresh first sight through
	// an accessor resolves via the per-call assign again.
	if s := sc.HomeOf(carol); s != 0 {
		t.Fatalf("between-blocks first sight homed carol on %d, want 0", s)
	}

	// The next Step re-acquires a fresh view reflecting the new source
	// state (shard 0 now), exactly once.
	inBlockShard = 0
	dave := types.AddressFromSeq(9)
	receipts = sc.Step([]*chain.Transaction{transfer(1, alice, dave, 5)})
	if !receipts[0].Success {
		t.Fatalf("second transfer failed: %v", receipts[0].Err)
	}
	if snapshotCalls != 2 {
		t.Fatalf("AssignSnapshot called %d times after two Steps, want 2", snapshotCalls)
	}
	if s, _ := sc.Known(dave); s != 0 {
		t.Fatalf("second block homed dave on %d, want 0", s)
	}
}
