package shardchain

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/fault"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

// chaosFixture is a pre-generated deterministic workload: the same blocks
// can be fed to any number of chains (fault-free reference, faulty run)
// so every difference in outcome is the fault plane's doing.
type chaosFixture struct {
	alloc  map[types.Address]evm.Word
	assign map[types.Address]int
	blocks [][]*chain.Transaction
}

// chaosWorkload generates nBlocks blocks over nAccounts accounts spread
// round-robin across k shards. With rich=true the mix includes token
// calls (storage-writing continuations) and wallet forwards alongside
// plain transfers, with the wallet and token contracts deployed in the
// first block. With rich=false only transfers and wallet forwards are
// generated — the shape whose outcomes are independent of settlement
// timing, required when injected delays shift credits across blocks.
// Funding is huge and values tiny so no transfer ever depends on a
// pending credit.
func chaosWorkload(seed int64, k, nBlocks int, rich bool) chaosFixture {
	rng := rand.New(rand.NewSource(seed))
	const nAccounts = 12
	fx := chaosFixture{
		alloc:  map[types.Address]evm.Word{},
		assign: map[types.Address]int{},
	}
	accounts := make([]types.Address, nAccounts)
	for i := range accounts {
		accounts[i] = types.AddressFromSeq(uint64(i + 1))
		fx.assign[accounts[i]] = i % k
		fx.alloc[accounts[i]] = evm.WordFromUint64(1 << 50)
	}
	deployer := accounts[0] // homed on shard 0
	wallet := types.ContractAddress(deployer, 0)
	token := types.ContractAddress(deployer, 1)
	fx.assign[wallet] = 0
	fx.assign[token] = 0

	nonces := map[types.Address]uint64{}
	deploy := func(runtime []byte) *chain.Transaction {
		tx := &chain.Transaction{
			Nonce: nonces[deployer], From: deployer,
			Data: evm.DeployWrapper(runtime), GasLimit: 5_000_000, GasPrice: 0,
		}
		nonces[deployer]++
		return tx
	}
	fx.blocks = append(fx.blocks, []*chain.Transaction{
		deploy(workload.WalletRuntime()), deploy(workload.TokenRuntime()),
	})

	word := func(b []byte) []byte {
		w := evm.WordFromBytes(b).Bytes32()
		return w[:]
	}
	for blk := 0; blk < nBlocks; blk++ {
		var txs []*chain.Transaction
		for i := 0; i < 10; i++ {
			from := accounts[rng.Intn(nAccounts)]
			tx := &chain.Transaction{
				Nonce: nonces[from], From: from,
				GasLimit: 500_000, GasPrice: uint64(rng.Intn(2)),
			}
			roll := rng.Intn(10)
			if !rich && roll >= 8 {
				roll = rng.Intn(8) // fold token calls back into the safe mix
			}
			switch {
			case roll < 6: // plain transfer
				to := accounts[rng.Intn(nAccounts)]
				tx.To = &to
				tx.Value = evm.WordFromUint64(uint64(rng.Intn(1000)))
			case roll < 8: // wallet forward (internal call leaving the shard)
				to := wallet
				tx.To = &to
				tx.Value = evm.WordFromUint64(uint64(1 + rng.Intn(500)))
				recipient := accounts[rng.Intn(nAccounts)]
				tx.Data = word(recipient[:])
			default: // token transfer (storage writes, continuations)
				to := token
				tx.To = &to
				recipient := accounts[rng.Intn(nAccounts)]
				tx.Data = append(word(recipient[:]), word([]byte{byte(rng.Intn(200))})...)
			}
			nonces[from]++
			txs = append(txs, tx)
		}
		fx.blocks = append(fx.blocks, txs)
	}
	return fx
}

func (fx chaosFixture) newChain(t testing.TB, k int, model Model, parallel bool, inj *fault.Injector) *ShardChain {
	t.Helper()
	sc, err := New(Config{
		K: k, Model: model, Chain: chain.DefaultConfig(), Parallel: parallel, Fault: inj,
	}, fx.alloc, fixedAssign(fx.assign))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func mustInjector(t testing.TB, s fault.Schedule) *fault.Injector {
	t.Helper()
	inj, err := fault.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// requireConverged pins full observable equality between two chains:
// stats, per-shard state roots and account counts, pending receipts and
// the home map.
func requireConverged(t *testing.T, ref, got *ShardChain) {
	t.Helper()
	if ref.stats != got.stats {
		t.Fatalf("stats diverge:\nreference: %+v\nfaulty:    %+v", ref.stats, got.stats)
	}
	for s := 0; s < ref.cfg.K; s++ {
		rs, gs := ref.StateOf(s), got.StateOf(s)
		if rs.AccountCount() != gs.AccountCount() {
			t.Fatalf("shard %d account counts diverge: %d vs %d", s, rs.AccountCount(), gs.AccountCount())
		}
		if rs.Commit() != gs.Commit() {
			t.Fatalf("shard %d state roots diverge", s)
		}
	}
	if ref.PendingReceipts() != got.PendingReceipts() {
		t.Fatalf("pending receipts diverge: %d vs %d", ref.PendingReceipts(), got.PendingReceipts())
	}
	if !reflect.DeepEqual(ref.home, got.home) {
		t.Fatalf("home maps diverge:\nreference: %v\nfaulty:    %v", ref.home, got.home)
	}
}

// drain steps both chains on empty blocks until neither has in-flight
// receipts (the faulty chain's backoff chains can outlast the
// reference's settle horizon).
func drainBoth(t *testing.T, ref, got *ShardChain) {
	t.Helper()
	for i := 0; i < 300; i++ {
		if ref.PendingReceipts() == 0 && got.PendingReceipts() == 0 {
			return
		}
		ref.Step(nil)
		got.Step(nil)
	}
	t.Fatalf("receipts did not drain: reference %d, faulty %d pending",
		ref.PendingReceipts(), got.PendingReceipts())
}

// TestPropertyCrashRecoveryConvergence is the crash-stop property test: a
// chain whose shards crash every other block (rotating through all
// shards) and recover from the durable log converges byte-identical —
// per-block receipts, final stats, state roots and homes — to a fault-
// free reference, over a rich workload (transfers, token calls, wallet
// forwards), on both engines and k ∈ {2, 4, 8}. Crash-only schedules
// leave delivery timing untouched, so even per-step receipts must match.
func TestPropertyCrashRecoveryConvergence(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for _, k := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("parallel=%v/k=%d", parallel, k), func(t *testing.T) {
				fx := chaosWorkload(int64(100+k), k, 10, true)
				inj := mustInjector(t, fault.Schedule{
					Seed:    7,
					Crashes: fault.PeriodicCrashes(2, uint64(len(fx.blocks))+40, k),
				})
				ref := fx.newChain(t, k, ModelReceipts, parallel, nil)
				got := fx.newChain(t, k, ModelReceipts, parallel, inj)
				for b, txs := range fx.blocks {
					rr, rg := ref.Step(txs), got.Step(txs)
					if !reflect.DeepEqual(rr, rg) {
						t.Fatalf("receipts diverge at block %d:\nreference: %s\nfaulty:    %s",
							b, dumpReceipts(rr), dumpReceipts(rg))
					}
				}
				drainBoth(t, ref, got)
				requireConverged(t, ref, got)
				m := inj.Metrics.Snapshot()
				if m.Crashes == 0 || m.ItemsReplayed == 0 {
					t.Fatalf("no crashes injected (metrics %+v) — the property was vacuous", m)
				}
			})
		}
	}
}

// TestPropertyDuplicateReorderNoOp pins idempotent settlement: with every
// receipt delivered twice (DupAll) and every barrier's arrivals shuffled,
// the run stays byte-identical to the fault-free reference — per-step
// receipts included, since duplicates ride the same barrier — for both
// models and k ∈ {2, 4, 8}. Under ModelMigration the channel is empty
// (no receipts exist) and the property holds vacuously; it is included
// so the plane is exercised against both hooks.
func TestPropertyDuplicateReorderNoOp(t *testing.T) {
	for _, model := range []Model{ModelReceipts, ModelMigration} {
		for _, k := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%v/k=%d", model, k), func(t *testing.T) {
				fx := chaosWorkload(int64(200+k), k, 10, true)
				inj := mustInjector(t, fault.Schedule{
					Seed: 11, DupAll: true, ShuffleDeliveries: true,
				})
				ref := fx.newChain(t, k, model, false, nil)
				got := fx.newChain(t, k, model, true, inj)
				for b, txs := range fx.blocks {
					rr, rg := ref.Step(txs), got.Step(txs)
					if !reflect.DeepEqual(rr, rg) {
						t.Fatalf("receipts diverge at block %d:\nreference: %s\nfaulty:    %s",
							b, dumpReceipts(rr), dumpReceipts(rg))
					}
				}
				drainBoth(t, ref, got)
				requireConverged(t, ref, got)
				m := inj.Metrics.Snapshot()
				if model == ModelReceipts {
					if m.Duplicated == 0 {
						t.Fatal("no duplicates injected — the property was vacuous")
					}
					if m.DupsSuppressed != m.Duplicated {
						t.Fatalf("suppressed %d of %d duplicates — a duplicate settled twice",
							m.DupsSuppressed, m.Duplicated)
					}
				}
			})
		}
	}
}

// TestMessageFaultsConverge pins the lossy-channel invariants: under
// drops with retry/backoff, injected delays and duplicates (with
// shuffled deliveries), final stats, states and homes still converge to
// the fault-free reference once the channel drains. The workload is
// transfers and wallet forwards only — shapes whose outcomes are
// independent of when a credit lands — because cross-block delays
// legitimately reorder settlement against storage reads.
func TestMessageFaultsConverge(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			const k = 4
			fx := chaosWorkload(300, k, 12, false)
			inj := mustInjector(t, fault.Schedule{
				Seed:     13,
				DropProb: 0.3, DelayProb: 0.25, DupProb: 0.2,
				ShuffleDeliveries: true,
			})
			ref := fx.newChain(t, k, ModelReceipts, parallel, nil)
			got := fx.newChain(t, k, ModelReceipts, parallel, inj)
			for _, txs := range fx.blocks {
				ref.Step(txs)
				got.Step(txs)
			}
			drainBoth(t, ref, got)
			requireConverged(t, ref, got)
			m := inj.Metrics.Snapshot()
			if m.Dropped == 0 || m.Delayed == 0 || m.Duplicated == 0 {
				t.Fatalf("fault mix not exercised: %+v", m)
			}
			if m.DupsSuppressed != m.Duplicated {
				t.Fatalf("suppressed %d of %d duplicates", m.DupsSuppressed, m.Duplicated)
			}
		})
	}
}

// TestCrashScheduleRequiresReceiptsModel pins the constructor guard: a
// crash inside a migration-model block could tear a two-shard state
// move, so New must refuse the combination.
func TestCrashScheduleRequiresReceiptsModel(t *testing.T) {
	inj := mustInjector(t, fault.Schedule{Crashes: []fault.Crash{{Block: 3, Shard: 0}}})
	_, err := New(Config{K: 2, Model: ModelMigration, Chain: chain.DefaultConfig(), Fault: inj},
		nil, nil)
	if err == nil || !strings.Contains(err.Error(), "crash schedules require ModelReceipts") {
		t.Fatalf("New accepted crashes under ModelMigration: err=%v", err)
	}
	if _, err := New(Config{K: 2, Model: ModelReceipts, Chain: chain.DefaultConfig(), Fault: inj},
		nil, nil); err != nil {
		t.Fatalf("New rejected crashes under ModelReceipts: %v", err)
	}
}

// TestWaveItemPanicGainsShardContext pins satellite behavior in the
// parallel engine's recover path: a non-sentinel panic escaping a wave
// item is rethrown wrapped with the shard and transaction index, never
// mistaken for a migration abort. The item is driven directly (not
// through Step) because sim.RunIndexed has no recovery — a worker panic
// would kill the process before the test could observe it.
func TestWaveItemPanicGainsShardContext(t *testing.T) {
	a := types.AddressFromSeq(1)
	bad := types.AddressFromSeq(2)
	assign := func(addr types.Address) (int, bool) {
		if addr == bad {
			panic("injected resolver failure")
		}
		return 0, true
	}
	sc, err := New(Config{K: 2, Model: ModelReceipts, Chain: chain.DefaultConfig(), Parallel: true},
		map[types.Address]evm.Word{a: evm.WordFromUint64(1 << 30)}, assign)
	if err != nil {
		t.Fatal(err)
	}
	// Deploy the wallet, then forward value through it to an address only
	// surfaced during EVM execution — the internal call's remote hook is
	// the one resolution a wave worker performs itself, and the panicking
	// resolver fires inside the worker's frame.
	wallet := types.ContractAddress(a, 0)
	deploy := &chain.Transaction{
		Nonce: 0, From: a, Data: evm.DeployWrapper(workload.WalletRuntime()),
		GasLimit: 5_000_000, GasPrice: 0,
	}
	for _, r := range sc.Step([]*chain.Transaction{deploy}) {
		if !r.Success {
			t.Fatalf("wallet deploy failed: %v", r.Err)
		}
	}
	badWord := evm.WordFromBytes(bad[:]).Bytes32()
	tx := &chain.Transaction{
		Nonce: 1, From: a, To: &wallet,
		Value: evm.WordFromUint64(5), Data: badWord[:], GasLimit: 500_000, GasPrice: 0,
	}
	receipts := make([]*chain.Receipt, 1)
	defer func() {
		wp, ok := recover().(workerPanic)
		if !ok {
			t.Fatalf("panic was not wrapped as workerPanic")
		}
		if wp.Shard != 0 || wp.Tx != 0 {
			t.Fatalf("workerPanic context = shard %d tx %d, want shard 0 tx 0", wp.Shard, wp.Tx)
		}
		if wp.Val != "injected resolver failure" {
			t.Fatalf("workerPanic lost the original value: %v", wp.Val)
		}
		if msg := wp.Error(); !strings.Contains(msg, "shard 0 (tx 0)") {
			t.Fatalf("workerPanic message lacks context: %q", msg)
		}
	}()
	var eff effects
	sc.runWaveItem(tx, waveItem{idx: 0, work: 0}, &homes{sc: sc}, &eff, receipts, false)
	t.Fatal("panic did not propagate out of runWaveItem")
}

// BenchmarkCrashRecovery measures the crash-stop recovery path: shard 0
// crashes every block and replays its inbox and transaction slice from
// the durable log.
func BenchmarkCrashRecovery(b *testing.B) {
	const k = 2
	fx := chaosWorkload(1, k, 0, false)
	inj := mustInjector(b, fault.Schedule{
		Seed:    1,
		Crashes: fault.PeriodicCrashes(1, uint64(b.N)+16, 1),
	})
	sc := fx.newChain(b, k, ModelReceipts, false, inj)
	sc.Step(fx.blocks[0]) // deploy block
	accounts := make([]types.Address, 12)
	for i := range accounts {
		accounts[i] = types.AddressFromSeq(uint64(i + 1))
	}
	nonces := map[types.Address]uint64{}
	for _, blk := range fx.blocks {
		for _, tx := range blk {
			nonces[tx.From]++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var txs []*chain.Transaction
		for j := 0; j < 8; j++ {
			from := accounts[(i+j)%len(accounts)]
			to := accounts[(i+j+1)%len(accounts)]
			txs = append(txs, &chain.Transaction{
				Nonce: nonces[from], From: from, To: &to,
				Value: evm.WordFromUint64(1), GasLimit: 50_000, GasPrice: 0,
			})
			nonces[from]++
		}
		sc.Step(txs)
	}
	b.StopTimer()
	m := inj.Metrics.Snapshot()
	if m.Crashes == 0 {
		b.Fatal("no crashes injected")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(m.Crashes)/1e3, "us/recovery")
}
