package shardchain

import (
	"bytes"
	"strings"
	"testing"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/fault"
	"ethpart/internal/partition"
	"ethpart/internal/types"
)

// TestHashShardMatchesPartition is the satellite cross-check pinning the
// unified shard hash: the chain's fallback address hash must agree with
// partition.Hash's byte fold for every k, so the two can never drift back
// into separate implementations.
func TestHashShardMatchesPartition(t *testing.T) {
	var h partition.Hash
	for seq := uint64(1); seq < 2000; seq++ {
		addr := types.AddressFromSeq(seq)
		for _, k := range []int{1, 2, 3, 4, 8, 16} {
			if got, want := hashShard(addr, k), h.ShardOfBytes(addr[:], k); got != want {
				t.Fatalf("hashShard(%v, %d) = %d, partition says %d", addr, k, got, want)
			}
		}
	}
}

// TestAddShardsRoutesTraffic: grown lanes start empty and serve traffic as
// soon as the assignment answers with their indices — including cross-shard
// receipts addressed to a lane that did not exist at construction.
func TestAddShardsRoutesTraffic(t *testing.T) {
	assign := map[types.Address]int{alice: 0, bob: 1}
	sc := newSC(t, ModelReceipts, assign)

	if err := sc.AddShards(4); err != nil {
		t.Fatal(err)
	}
	if sc.K() != 4 {
		t.Fatalf("K after AddShards = %d, want 4", sc.K())
	}
	if err := sc.AddShards(3); err == nil {
		t.Error("AddShards below current K accepted")
	}

	// Move bob's home onto the brand-new lane 3, then pay him across it.
	if _, err := sc.MigrateAccount(bob, 3); err != nil {
		t.Fatal(err)
	}
	assign[bob] = 3
	rs := sc.Step([]*chain.Transaction{transfer(0, alice, bob, 700)})
	if !rs[0].Success {
		t.Fatalf("cross transfer to new lane rejected: %v", rs[0].Err)
	}
	sc.Step(nil) // settle the receipt on lane 3
	if got := sc.BalanceOf(bob); got.Uint64() != (1<<40)+700 {
		t.Errorf("bob balance on new lane = %v", got)
	}
}

// TestRemoveShardsRequiresDrain: removal refuses while a dropped lane still
// homes an account or has unsettled traffic, and succeeds once both are
// migrated and settled.
func TestRemoveShardsRequiresDrain(t *testing.T) {
	assign := map[types.Address]int{alice: 0, bob: 1}
	sc := newSC(t, ModelReceipts, assign)

	err := sc.RemoveShards(1)
	if err == nil {
		t.Fatal("RemoveShards accepted with bob homed on shard 1")
	}
	if !strings.Contains(err.Error(), "homed on shard 1") {
		t.Errorf("drain error does not name the blocker: %v", err)
	}

	// An unsettled in-flight receipt addressed to the dropped lane also
	// blocks.
	rs := sc.Step([]*chain.Transaction{transfer(0, alice, bob, 10)})
	if !rs[0].Success {
		t.Fatal(rs[0].Err)
	}
	if err := sc.DrainShard(1); err == nil {
		t.Error("DrainShard(1) passed with an unsettled receipt in flight")
	}
	sc.Step(nil) // settle

	if _, err := sc.MigrateAccount(bob, 0); err != nil {
		t.Fatal(err)
	}
	assign[bob] = 0
	if err := sc.RemoveShards(1); err != nil {
		t.Fatalf("RemoveShards after drain: %v", err)
	}
	if sc.K() != 1 {
		t.Fatalf("K after RemoveShards = %d, want 1", sc.K())
	}
	// The merged chain still serves the moved account.
	rs = sc.Step([]*chain.Transaction{transfer(1, alice, bob, 5)})
	if !rs[0].Success {
		t.Fatalf("post-merge transfer failed: %v", rs[0].Err)
	}

	if err := sc.RemoveShards(0); err == nil {
		t.Error("RemoveShards(0) accepted")
	}
	if err := sc.RemoveShards(1); err == nil {
		t.Error("RemoveShards to current K accepted")
	}
}

// TestHomesOnDeterministic: HomesOn lists exactly the accounts homed on a
// lane, in address order.
func TestHomesOnDeterministic(t *testing.T) {
	assign := map[types.Address]int{alice: 1, bob: 1, carol: 0}
	sc, err := New(Config{K: 2, Model: ModelReceipts, Chain: chain.DefaultConfig()},
		map[types.Address]evm.Word{
			alice: evm.WordFromUint64(1000),
			bob:   evm.WordFromUint64(1000),
			carol: evm.WordFromUint64(1000),
		}, fixedAssign(assign))
	if err != nil {
		t.Fatal(err)
	}
	got := sc.HomesOn(1)
	if len(got) != 2 {
		t.Fatalf("HomesOn(1) = %v, want alice and bob", got)
	}
	if !(got[0] == alice && got[1] == bob) && !(got[0] == bob && got[1] == alice) {
		t.Fatalf("HomesOn(1) = %v, want alice and bob", got)
	}
	if bytes.Compare(got[0][:], got[1][:]) >= 0 {
		t.Errorf("HomesOn(1) not in address order: %v", got)
	}
	if n := len(sc.HomesOn(0)); n != 1 {
		t.Fatalf("HomesOn(0) has %d accounts, want 1", n)
	}
}

// TestCrashOnDecommissionedLaneSkipped: a crash entry naming a lane a merge
// removed mid-run is counted in CrashesSkipped instead of being applied (or
// silently dropped). The schedule declares the original shard universe, so
// it compiles; the lane disappears at runtime.
func TestCrashOnDecommissionedLaneSkipped(t *testing.T) {
	inj := mustInjector(t, fault.Schedule{Shards: 2, Crashes: []fault.Crash{{Block: 2, Shard: 1}}})
	assign := map[types.Address]int{alice: 0, bob: 0}
	sc, err := New(Config{K: 2, Model: ModelReceipts, Chain: chain.DefaultConfig(), Fault: inj},
		map[types.Address]evm.Word{
			alice: evm.WordFromUint64(1 << 20),
			bob:   evm.WordFromUint64(1 << 20),
		}, fixedAssign(assign))
	if err != nil {
		t.Fatal(err)
	}
	sc.Step([]*chain.Transaction{transfer(0, alice, bob, 5)}) // block 1
	if err := sc.RemoveShards(1); err != nil {
		t.Fatal(err)
	}
	sc.Step([]*chain.Transaction{transfer(1, alice, bob, 5)}) // block 2: crash fires, lane gone
	m := inj.Metrics.Snapshot()
	if m.CrashesSkipped != 1 {
		t.Errorf("CrashesSkipped = %d, want 1", m.CrashesSkipped)
	}
	if m.Crashes != 0 {
		t.Errorf("Crashes = %d, want 0 (the only scheduled crash was skipped)", m.Crashes)
	}
}
