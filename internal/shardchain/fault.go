package shardchain

import (
	"maps"
	"math/rand"
	"slices"
	"time"

	"ethpart/internal/chain"
	"ethpart/internal/types"
)

// This file is the chain side of the fault-injection plane (Config.Fault):
// the per-shard durable log and crash recovery, and the fault-aware
// delivery channel the barrier exchange routes through when message faults
// are scheduled. Everything here runs on the coordinator goroutine —
// injection and recovery happen between the engine fan-out and the barrier
// exchange, never inside a worker — which keeps every decision in one
// deterministic, canonical order.

// walRecord is one shard's durable log entry for the current block: the
// state at the block boundary, the undelivered inbox, and the applied-
// receipt journal. Restoring it is exactly "the shard restarted from its
// last durable point".
type walRecord struct {
	state *chain.State
	inbox []Receipt
	seen  map[uint64]uint64
}

// journalBarrier writes every shard's durable log entry for the block
// about to execute. The durable point is the boundary *entering* the
// block so it captures mutations made between blocks (opsim funding
// accounts at first sight, externally driven migrations), which an
// exit-of-previous-block snapshot would lose.
func (sc *ShardChain) journalBarrier() {
	for i, sh := range sc.shards {
		sc.wal[i] = walRecord{
			state: sh.state.Copy(),
			inbox: slices.Clone(sh.inbox),
			seen:  maps.Clone(sh.seen),
		}
	}
}

// pruneSeen ages the applied-receipt journals past the dedup window. The
// window must exceed the worst-case redelivery horizon (MaxAttempts drops
// with capped backoff, plus the delay bound), which the defaults do with
// a wide margin.
func (sc *ShardChain) pruneSeen() {
	win := sc.cfg.Fault.Schedule().DedupWindow
	if sc.clock <= win {
		return
	}
	cut := sc.clock - win
	for _, sh := range sc.shards {
		for id, b := range sh.seen {
			if b < cut {
				delete(sh.seen, id)
			}
		}
	}
}

// workShardOf returns the shard doing tx's work this block: the executing
// shard, or — for a receipts-model cross transaction — the sender's shard
// (which debits the sender and emits the receipt).
func (sc *ShardChain) workShardOf(tx *chain.Transaction, h *homes) int {
	exec := sc.execShardOf(tx, h)
	if sc.cfg.Model == ModelReceipts {
		if sender := h.of(tx.From); sender != exec {
			return sender
		}
	}
	return exec
}

// recoverShard handles a scheduled crash-stop of shard s during the
// current block: discard the shard's partial block work (restore the
// durable log, clear its outboxes, subtract its stat deltas) and replay —
// re-settle the journaled inbox, then re-run the shard's slice of the
// block's transactions. Valid because receipts-model block work is shard-
// isolated (a shard's work writes only its own state and its own outbox)
// and first-sight home resolution is pure within a Step, so the replay
// reproduces the discarded work exactly; it runs before the barrier
// exchange, so none of the discarded emissions ever left the shard.
func (sc *ShardChain) recoverShard(s int, txs []*chain.Transaction, receipts []*chain.Receipt) {
	w := &sc.wal[s]
	if w.state == nil {
		return // duplicate schedule entry for this (block, shard)
	}
	inj := sc.cfg.Fault
	start := time.Now()
	inj.Metrics.Crashes.Add(1)

	sh := sc.shards[s]
	sh.state = w.state
	sh.inbox = w.inbox
	sh.seen = w.seen
	w.state = nil // the restored copy is live now; never restore it twice
	for dst := range sh.outbox {
		sh.outbox[dst] = nil
	}
	sc.stats.sub(sc.blockDelta[s])
	sc.blockDelta[s] = Stats{}

	h := &homes{sc: sc}
	items := 0
	inbox := sh.inbox
	sh.inbox = nil
	for _, r := range inbox {
		var eff effects
		sc.settleOne(s, r, h, &eff, func(to types.Address, calleeHome int) {
			sc.migrateCallee(to, calleeHome, s, &eff)
		})
		sc.applyEffects(s, &eff)
		items++
	}
	for i, tx := range txs {
		if sc.workShardOf(tx, h) != s {
			continue
		}
		receipts[i] = sc.runTxSerial(tx, h)
		items++
	}
	inj.Metrics.BlocksReplayed.Add(1)
	inj.Metrics.ItemsReplayed.Add(uint64(items))
	inj.Metrics.RecoveryNanos.Add(uint64(time.Since(start)))
}

// flight is one receipt inside the fault-aware delivery channel.
type flight struct {
	r       Receipt
	dst     int
	first   uint64 // barrier block it entered the channel
	due     uint64 // earliest barrier it may next be considered
	attempt int    // delivery attempts rolled so far
	forced  bool   // fate already decided: deliver at due, no further rolls
}

// exchangeFaulty is the barrier exchange routed through the injector:
// each due flight rolls its seeded outcome — dropped (re-queued with
// backoff; attempt MaxAttempts always delivers, so the channel is
// at-least-once), delayed, and/or duplicated — and deliveries land in the
// destination inboxes, optionally reordered per the seeded shuffle. The
// queue and every decision live on the coordinator, keyed by receipt ID
// and attempt, so two runs of one schedule inject identical faults.
func (sc *ShardChain) exchangeFaulty() {
	inj := sc.cfg.Fault
	for _, sh := range sc.shards {
		for dst, rs := range sh.outbox {
			for _, r := range rs {
				sc.flights = append(sc.flights, flight{r: r, dst: dst, first: sc.clock, due: sc.clock})
			}
			sh.outbox[dst] = nil
		}
	}

	arrivals := make([][]Receipt, sc.cfg.K)
	deliver := func(fl flight) {
		r := fl.r
		d := sc.clock - fl.first // barriers the channel held it beyond normal
		r.Delay += d
		inj.Metrics.RedeliveryBlocks.Add(d)
		arrivals[fl.dst] = append(arrivals[fl.dst], r)
	}

	var next []flight
	for _, fl := range sc.flights {
		if fl.due > sc.clock {
			next = append(next, fl)
			continue
		}
		if fl.forced {
			deliver(fl)
			continue
		}
		fl.attempt++
		o := inj.Delivery(fl.r.ID, fl.attempt)
		if o.Drop {
			inj.Metrics.Dropped.Add(1)
			fl.due = sc.clock + o.Backoff
			next = append(next, fl)
			continue
		}
		if o.Duplicate {
			inj.Metrics.Duplicated.Add(1)
			dup := fl
			dup.forced = true
			if inj.Schedule().DupAll {
				// The reorder-property mode: the duplicate rides the same
				// barrier as the original, maximally stressing in-barrier
				// dedup and shuffle.
				deliver(dup)
			} else {
				dup.due = sc.clock + 1
				next = append(next, dup)
			}
		}
		if o.Delay > 0 {
			inj.Metrics.Delayed.Add(1)
			fl.forced = true
			fl.due = sc.clock + o.Delay
			next = append(next, fl)
			continue
		}
		deliver(fl)
	}
	sc.flights = next

	for dst, rs := range arrivals {
		if len(rs) == 0 {
			continue
		}
		if inj.ShuffleDeliveries() {
			rng := rand.New(rand.NewSource(int64(inj.ShuffleSeed(dst, sc.clock))))
			rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
		}
		sc.shards[dst].inbox = append(sc.shards[dst].inbox, rs...)
	}
}
