package workload

import (
	"io"

	"ethpart/internal/graph"
	"ethpart/internal/trace"
	"ethpart/internal/types"
)

// Stream adapts a Generator to the trace.RecordSource seam: it drives the
// chain block by block and yields each block's records in arrival order,
// stamped with per-action arrival times (open-loop compositions) or the
// block time (the era composition). This is the pipe every consumer —
// replay, the operational bridge, trace files — drinks from.
type Stream struct {
	g          *Generator
	reg        *trace.Registry
	isContract func(types.Address) bool
	buf        []trace.Record
	pos        int
	err        error
	done       bool
}

// Stream returns a record stream over the generator's remaining schedule.
// The stream owns the generator; interleaving NextBlock calls with Read
// corrupts it.
func (g *Generator) Stream() *Stream {
	st := g.ch.State()
	return &Stream{
		g:          g,
		reg:        trace.NewRegistry(),
		isContract: func(a types.Address) bool { return len(st.GetCode(a)) > 0 },
	}
}

// Read implements trace.RecordSource.
func (s *Stream) Read() (trace.Record, error) {
	for s.pos >= len(s.buf) {
		if s.err != nil {
			return trace.Record{}, s.err
		}
		if s.done {
			return trace.Record{}, io.EOF
		}
		block, receipts, ok, err := s.g.NextBlock()
		if err != nil {
			s.err = err
			return trace.Record{}, err
		}
		if !ok {
			s.done = true
			return trace.Record{}, io.EOF
		}
		if block == nil {
			continue // schedule gap
		}
		s.buf = trace.FromReceiptsTimes(block.Header.Number, block.Header.Time,
			s.g.BlockArrivalTimes(), receipts, s.reg, s.isContract)
		s.pos = 0
	}
	rec := s.buf[s.pos]
	s.pos++
	return rec, nil
}

// Registry returns the stream's vertex registry (valid incrementally;
// complete once Read returns io.EOF).
func (s *Stream) Registry() *trace.Registry { return s.reg }

// Generator returns the underlying generator.
func (s *Stream) Generator() *Generator { return s.g }

// StorageSlots computes the per-contract storage footprint at the end of
// the history; call after the stream is drained.
func (s *Stream) StorageSlots() map[graph.VertexID]int {
	st := s.g.Chain().State()
	slots := make(map[graph.VertexID]int)
	for id := uint64(0); id < uint64(s.reg.Len()); id++ {
		if !s.reg.IsContract(id) {
			continue
		}
		if addr, ok := s.reg.Address(id); ok {
			if n := st.StorageSize(addr); n > 0 {
				slots[graph.VertexID(id)] = n
			}
		}
	}
	return slots
}
