package workload

import (
	"io"
	"testing"
	"time"

	"ethpart/internal/trace"
)

// shortScenario shrinks a library scenario so every property test runs in
// milliseconds while still exercising the full composition.
func shortScenario(sc Scenario) Scenario {
	sc.Arrival.Duration = 36 * time.Hour
	return sc
}

func drainScenario(t *testing.T, sc Scenario) (*Generator, *Stream, []trace.Record) {
	t.Helper()
	gen, err := NewScenario(sc)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	s := gen.Stream()
	recs, skipped, err := trace.ReadAll(s)
	if err != nil {
		t.Fatalf("%s: draining: %v", sc.Name, err)
	}
	if skipped != 0 {
		t.Fatalf("%s: %d records skipped", sc.Name, skipped)
	}
	if len(recs) == 0 {
		t.Fatalf("%s: no records produced", sc.Name)
	}
	return gen, s, recs
}

func TestScenarioLibraryValidates(t *testing.T) {
	lib := Scenarios()
	if len(lib) < 3 {
		t.Fatalf("library has %d scenarios, want ≥ 3", len(lib))
	}
	seen := map[string]bool{}
	for _, sc := range lib {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if sc.Description == "" {
			t.Errorf("%s: empty description", sc.Name)
		}
	}
	if _, err := LookupScenario("no-such-scenario"); err == nil {
		t.Error("lookup of unknown scenario succeeded")
	}
}

// TestScenarioRecordValidity is the shared validity property every
// composition must satisfy: senders exist and are funded (no skipped
// transactions), per-sender nonces are monotone on-chain, contract targets
// are marked in the registry, and arrival timestamps never decrease.
func TestScenarioRecordValidity(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := shortScenario(sc)
		t.Run(sc.Name, func(t *testing.T) {
			gen, s, recs := drainScenario(t, sc)

			// Funded senders: the generator's balance bookkeeping must
			// never let a transaction bounce.
			if st := gen.Stats(); st.Skipped != 0 {
				t.Errorf("%d transactions skipped (underfunded or bad nonce)", st.Skipped)
			}

			// Monotone nonces per sender, checked against the chain itself.
			ch := gen.Chain()
			nonces := map[uint64]uint64{} // packed address prefix → next nonce
			for n := uint64(0); n < uint64(ch.Len()); n++ {
				for _, tx := range ch.BlockByNumber(n).Txs {
					key := uint64(tx.From[0])<<56 | uint64(tx.From[1])<<48 |
						uint64(tx.From[2])<<40 | uint64(tx.From[3])<<32 |
						uint64(tx.From[4])<<24 | uint64(tx.From[5])<<16 |
						uint64(tx.From[6])<<8 | uint64(tx.From[7])
					if tx.Nonce != nonces[key] {
						t.Fatalf("block %d: sender %x nonce %d, want %d",
							n, tx.From[:8], tx.Nonce, nonces[key])
					}
					nonces[key] = tx.Nonce + 1
				}
			}

			// Contract targets marked; arrival timestamps non-decreasing
			// within each block, block times non-decreasing overall.
			reg := s.Registry()
			st := ch.State()
			lastBlock, lastTime := uint64(0), int64(0)
			blockStart := map[uint64]int64{}
			for i, r := range recs {
				if r.Block < lastBlock {
					t.Fatalf("record %d: block %d after block %d", i, r.Block, lastBlock)
				}
				if r.Block == lastBlock && r.Time < lastTime {
					t.Fatalf("record %d: time %d before %d in block %d", i, r.Time, lastTime, r.Block)
				}
				if first, ok := blockStart[r.Block]; !ok {
					blockStart[r.Block] = r.Time
					if r.Time < lastTime {
						t.Fatalf("block %d starts at %d, before previous block's last arrival %d",
							r.Block, r.Time, lastTime)
					}
					_ = first
				}
				lastBlock, lastTime = r.Block, r.Time
				addr, ok := reg.Address(r.To)
				if !ok {
					t.Fatalf("record %d: unregistered target %d", i, r.To)
				}
				hasCode := len(st.GetCode(addr)) > 0
				if hasCode && !r.ToContract {
					t.Errorf("record %d: target %d has code but is not marked a contract", i, r.To)
				}
				if r.ToContract != reg.IsContract(r.To) {
					t.Errorf("record %d: ToContract=%v disagrees with registry", i, r.ToContract)
				}
			}
		})
	}
}

// TestScenarioDeterminism: same Seed ⇒ byte-identical record stream across
// two fresh generators, for every named scenario.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := shortScenario(sc)
		t.Run(sc.Name, func(t *testing.T) {
			_, _, a := drainScenario(t, sc)
			_, _, b := drainScenario(t, sc)
			if len(a) != len(b) {
				t.Fatalf("runs produced %d vs %d records", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestScenarioOpenLoopShape: open-loop compositions carry real arrival
// stamps — timestamps inside a block span the batching cell rather than
// collapsing onto the block time, and flash scenarios visibly spike.
func TestScenarioOpenLoopShape(t *testing.T) {
	sc, err := LookupScenario("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	_, _, recs := drainScenario(t, sc)
	distinct := map[int64]bool{}
	perBlock := map[uint64]int{}
	for _, r := range recs {
		distinct[r.Time] = true
		perBlock[r.Block]++
	}
	if len(distinct) < len(perBlock) {
		t.Errorf("only %d distinct arrival stamps over %d blocks: records collapsed onto block times",
			len(distinct), len(perBlock))
	}
	min, max := 1<<62, 0
	for _, n := range perBlock {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max < 4*min {
		t.Errorf("flash spike invisible: min %d, max %d records per block", min, max)
	}
}

// TestStreamReadAfterEOF: the stream keeps returning io.EOF.
func TestStreamReadAfterEOF(t *testing.T) {
	sc, err := LookupScenario("transfer-steady")
	if err != nil {
		t.Fatal(err)
	}
	sc = shortScenario(sc)
	gen, err := NewScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Stream()
	if _, _, err := trace.ReadAll(s); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(); err != io.EOF {
		t.Fatalf("Read after EOF = %v, want io.EOF", err)
	}
}
