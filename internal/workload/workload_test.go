package workload

import (
	"encoding/binary"
	"testing"
	"time"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/stats"
	"ethpart/internal/types"
)

// deployAndCall deploys runtime from a funded account and calls it once,
// returning the receipt of the call.
func deployAndCall(t *testing.T, runtime []byte, value uint64, data []byte, endow uint64) (*chain.Receipt, *chain.State) {
	t.Helper()
	sender := types.AddressFromSeq(1)
	st := chain.NewStateWithAlloc(map[types.Address]evm.Word{
		sender: evm.WordFromUint64(1 << 40),
	})
	deploy := &chain.Transaction{
		Nonce: 0, From: sender, Data: evm.DeployWrapper(runtime),
		Value: evm.WordFromUint64(endow), GasLimit: 5_000_000, GasPrice: 1,
	}
	r, err := chain.ApplyTransaction(st, deploy, types.AddressFromSeq(9))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatalf("deploy failed: %v", r.Err)
	}
	contract := *r.ContractAddress
	call := &chain.Transaction{
		Nonce: 1, From: sender, To: &contract,
		Value: evm.WordFromUint64(value), Data: data,
		GasLimit: 2_000_000, GasPrice: 1,
	}
	r, err = chain.ApplyTransaction(st, call, types.AddressFromSeq(9))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatalf("call failed: %v", r.Err)
	}
	return r, st
}

func TestTokenRuntimeMovesBalances(t *testing.T) {
	recipient := types.AddressFromSeq(42)
	amount := evm.WordFromUint64(250)
	var data [64]byte
	rb := evm.WordFromBytes(recipient[:]).Bytes32()
	ab := amount.Bytes32()
	copy(data[0:32], rb[:])
	copy(data[32:64], ab[:])

	r, st := deployAndCall(t, TokenRuntime(), 0, data[:], 0)
	contract := r.Traces[0].To
	got := st.GetState(contract, evm.WordFromBytes(recipient[:]))
	if got.Uint64() != 250 {
		t.Errorf("token balance of recipient = %v, want 250", got)
	}
	// Token transfers produce no internal calls.
	if len(r.Traces) != 1 {
		t.Errorf("traces = %d, want 1", len(r.Traces))
	}
}

func TestWalletRuntimeForwardsValue(t *testing.T) {
	target := types.AddressFromSeq(43)
	var data [32]byte
	tb := evm.WordFromBytes(target[:]).Bytes32()
	copy(data[:], tb[:])

	r, st := deployAndCall(t, WalletRuntime(), 777, data[:], 0)
	if got := st.GetBalance(target).Uint64(); got != 777 {
		t.Errorf("forwarded = %d, want 777", got)
	}
	if len(r.Traces) != 2 || r.Traces[1].Kind != evm.KindCall || r.Traces[1].To != target {
		t.Errorf("traces = %+v", r.Traces)
	}
}

func TestCrowdsaleRuntimeTwoInternalCalls(t *testing.T) {
	token := types.AddressFromSeq(50) // plain address: the call still traces
	owner := types.AddressFromSeq(51)
	r, st := deployAndCall(t, CrowdsaleRuntime(token, owner), 5_000, nil, 0)
	if len(r.Traces) != 3 {
		t.Fatalf("traces = %d, want 3 (tx + token call + owner pay): %+v", len(r.Traces), r.Traces)
	}
	if r.Traces[1].To != token {
		t.Errorf("first internal call to %v, want token", r.Traces[1].To)
	}
	if r.Traces[2].To != owner || r.Traces[2].Value.Uint64() != 5_000 {
		t.Errorf("owner payout trace = %+v", r.Traces[2])
	}
	if got := st.GetBalance(owner).Uint64(); got != 5_000 {
		t.Errorf("owner received %d, want 5000", got)
	}
}

func TestGameRuntimePaysEveryEighthMove(t *testing.T) {
	sender := types.AddressFromSeq(1)
	st := chain.NewStateWithAlloc(map[types.Address]evm.Word{
		sender: evm.WordFromUint64(1 << 40),
	})
	deploy := &chain.Transaction{
		Nonce: 0, From: sender, Data: evm.DeployWrapper(GameRuntime()),
		Value: evm.WordFromUint64(1_000_000), GasLimit: 5_000_000, GasPrice: 1,
	}
	r, err := chain.ApplyTransaction(st, deploy, types.AddressFromSeq(9))
	if err != nil || !r.Success {
		t.Fatalf("deploy: %v %v", err, r.Err)
	}
	game := *r.ContractAddress

	payouts := 0
	for i := 1; i <= 16; i++ {
		call := &chain.Transaction{
			Nonce: uint64(i), From: sender, To: &game,
			Value: evm.WordFromUint64(10), GasLimit: 2_000_000, GasPrice: 1,
		}
		r, err := chain.ApplyTransaction(st, call, types.AddressFromSeq(9))
		if err != nil || !r.Success {
			t.Fatalf("move %d: %v %v", i, err, r.Err)
		}
		for _, tr := range r.Traces {
			if tr.Kind == evm.KindCall && tr.To == sender {
				payouts++
			}
		}
	}
	if payouts != 2 {
		t.Errorf("payouts in 16 moves = %d, want 2", payouts)
	}
	// Counter stored at slot 0.
	if got := st.GetState(game, evm.Word{}).Uint64(); got != 16 {
		t.Errorf("counter = %d, want 16", got)
	}
}

func TestAirdropRuntimeFansOut(t *testing.T) {
	targets := []types.Address{
		types.AddressFromSeq(60), types.AddressFromSeq(61), types.AddressFromSeq(62),
	}
	data := make([]byte, 32*(len(targets)+1))
	nb := evm.WordFromUint64(uint64(len(targets))).Bytes32()
	copy(data[0:32], nb[:])
	for i, target := range targets {
		tb := evm.WordFromBytes(target[:]).Bytes32()
		copy(data[32*(i+1):], tb[:])
	}
	r, _ := deployAndCall(t, AirdropRuntime(), 0, data, 0)
	if len(r.Traces) != 1+len(targets) {
		t.Fatalf("traces = %d, want %d: %+v", len(r.Traces), 1+len(targets), r.Traces)
	}
	for i, target := range targets {
		tr := r.Traces[i+1]
		if tr.Kind != evm.KindCall || tr.To != target {
			t.Errorf("trace %d = %+v, want call to %v", i+1, tr, target)
		}
	}
}

// miniEras returns a compressed two-era schedule for fast tests.
func miniEras() []Era {
	return []Era{
		{
			Name:  "growth",
			Start: date(2016, time.January, 1), End: date(2016, time.January, 11),
			TxPerDayStart: 2_000, TxPerDayEnd: 8_000, Kind: GrowthExponential,
			NewAccountFrac: 0.3, DeploysPerDay: 10,
			Mix: TxMix{Transfer: 0.6, Token: 0.15, Wallet: 0.1, Crowdsale: 0.05, Game: 0.05, Airdrop: 0.05},
		},
		{
			Name:  "attack",
			Start: date(2016, time.January, 11), End: date(2016, time.January, 16),
			TxPerDayStart: 30_000, TxPerDayEnd: 30_000, Kind: GrowthLinear,
			NewAccountFrac: 0.1, DummyFrac: 0.8, DeploysPerDay: 2,
			Mix: TxMix{Transfer: 0.15, Token: 0.02, Wallet: 0.01, Crowdsale: 0.01, Game: 0.005, Airdrop: 0.005},
		},
	}
}

func TestGeneratorRunsScheduleWithoutSkips(t *testing.T) {
	gen, err := New(Config{Seed: 3, Scale: 0.05, Eras: miniEras(), BlockInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	for {
		_, _, ok, err := gen.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		blocks++
	}
	st := gen.Stats()
	if st.Skipped != 0 {
		t.Errorf("generator skipped %d transactions", st.Skipped)
	}
	if st.Transactions < 500 {
		t.Errorf("only %d transactions generated", st.Transactions)
	}
	if st.DummyAccounts == 0 {
		t.Error("attack era produced no dummy accounts")
	}
	if st.Deployments < 5 {
		t.Errorf("only %d deployments", st.Deployments)
	}
	if blocks < 300 {
		t.Errorf("only %d blocks", blocks)
	}
	if err := gen.Chain().VerifyHeaderChain(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	run := func() types.Hash {
		gen, err := New(Config{Seed: 7, Scale: 0.02, Eras: miniEras(), BlockInterval: 2 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, _, ok, err := gen.NextBlock()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		return gen.Chain().Head().Hash()
	}
	if run() != run() {
		t.Error("same seed must produce an identical chain")
	}
}

func TestGeneratorAttackSpikesRate(t *testing.T) {
	gen, err := New(Config{Seed: 5, Scale: 0.05, Eras: miniEras(), BlockInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	attackStart := date(2016, time.January, 11)
	var before, after, beforeBlocks, afterBlocks int
	for {
		blk, receipts, ok, err := gen.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if blk == nil {
			continue
		}
		if time.Unix(blk.Header.Time, 0).UTC().Before(attackStart) {
			before += len(receipts)
			beforeBlocks++
		} else {
			after += len(receipts)
			afterBlocks++
		}
	}
	rateBefore := float64(before) / float64(beforeBlocks)
	rateAfter := float64(after) / float64(afterBlocks)
	if rateAfter < 2*rateBefore {
		t.Errorf("attack rate %.1f tx/block vs %.1f before; want a clear spike", rateAfter, rateBefore)
	}
}

func TestEraRateInterpolation(t *testing.T) {
	e := Era{
		Start: date(2016, time.January, 1), End: date(2016, time.January, 11),
		TxPerDayStart: 100, TxPerDayEnd: 1600, Kind: GrowthExponential,
	}
	if got := e.rateAt(e.Start); got != 100 {
		t.Errorf("rate at start = %v", got)
	}
	mid := e.rateAt(date(2016, time.January, 6))
	if mid < 350 || mid > 450 { // geometric mean of 100 and 1600 is 400
		t.Errorf("exponential midpoint = %v, want ≈ 400", mid)
	}
	e.Kind = GrowthLinear
	mid = e.rateAt(date(2016, time.January, 6))
	if mid < 800 || mid > 900 { // arithmetic mean is 850
		t.Errorf("linear midpoint = %v, want ≈ 850", mid)
	}
}

func TestEraAt(t *testing.T) {
	eras := miniEras()
	if e := eraAt(eras, date(2016, time.January, 5)); e == nil || e.Name != "growth" {
		t.Errorf("eraAt(Jan 5) = %v", e)
	}
	if e := eraAt(eras, date(2016, time.January, 12)); e == nil || e.Name != "attack" {
		t.Errorf("eraAt(Jan 12) = %v", e)
	}
	if e := eraAt(eras, date(2017, time.January, 1)); e != nil {
		t.Errorf("eraAt outside schedule = %v, want nil", e)
	}
}

func TestDefaultErasContiguousAndOrdered(t *testing.T) {
	eras := DefaultEras()
	for i := 1; i < len(eras); i++ {
		if !eras[i].Start.Equal(eras[i-1].End) {
			t.Errorf("gap between era %q and %q", eras[i-1].Name, eras[i].Name)
		}
	}
	for _, e := range eras {
		if !e.Start.Before(e.End) {
			t.Errorf("era %q has non-positive span", e.Name)
		}
		if e.TxPerDayStart <= 0 || e.TxPerDayEnd <= 0 {
			t.Errorf("era %q has non-positive rates", e.Name)
		}
	}
}

func TestGeneratorDegreeDistributionIsHeavyTailed(t *testing.T) {
	// DESIGN.md claims the preferential-attachment targeting yields the
	// hub skew of real blockchain graphs. Validate: the degree tail index
	// of the generated graph must be in the heavy-tailed range (α < 3.5),
	// and the busiest vertex must dwarf the median.
	gen, err := New(Config{Seed: 9, Scale: 0.08, Eras: miniEras(), BlockInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	for {
		_, receipts, ok, err := gen.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for _, r := range receipts {
			for _, tr := range r.Traces {
				fromID := graph.VertexID(binaryID(tr.From))
				toID := graph.VertexID(binaryID(tr.To))
				if err := g.AddInteraction(fromID, toID, graph.KindAccount, graph.KindAccount, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	var degrees []float64
	var maxDeg float64
	g.Vertices(func(id graph.VertexID, _ graph.Kind, _ int64) bool {
		d := float64(g.Degree(id))
		degrees = append(degrees, d)
		if d > maxDeg {
			maxDeg = d
		}
		return true
	})
	if len(degrees) < 500 {
		t.Fatalf("graph too small: %d vertices", len(degrees))
	}
	alpha, n, err := stats.ParetoAlphaMLE(degrees, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Fatalf("tail too small: %d", n)
	}
	if alpha > 3.5 {
		t.Errorf("degree tail index α = %.2f, want < 3.5 (heavy tail)", alpha)
	}
	med := stats.Summarize(degrees).Median
	if maxDeg < 20*med {
		t.Errorf("max degree %v vs median %v: no hub skew", maxDeg, med)
	}
}

// binaryID derives a stable numeric ID from an address for the degree test.
func binaryID(a types.Address) uint64 {
	return binary.BigEndian.Uint64(a[:8])
}
