package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// The arrival layer of the workload pipeline. Unlike the closed-loop era
// composition — which decides per block how many actions to squeeze in —
// an ArrivalSpec describes an open-loop arrival process: actions arrive at
// instants drawn from a (possibly time-varying) Poisson process, records
// carry those arrival timestamps, and block boundaries are derived from
// the arrivals by batching each BlockInterval-wide grid cell into one
// block. Load is therefore imposed on the system rather than negotiated
// with it, which is what makes flash crowds visible to the autoscaler.

// ArrivalKind selects the arrival process shape.
type ArrivalKind int

const (
	// ArrivalPoisson is a homogeneous Poisson process at RatePerHour.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalDiurnal modulates the rate sinusoidally with the given
	// Amplitude and Period (default 24 h) — the day/night cycle every
	// production trace shows.
	ArrivalDiurnal
	// ArrivalFlash is a flat base rate with a square spike of
	// PeakFactor× the base rate over the [PeakStart, PeakStart+PeakWidth]
	// fraction of the run — the flash-crowd shape of the autoscale figure.
	ArrivalFlash
)

// String returns the flag spelling of k.
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalDiurnal:
		return "diurnal"
	case ArrivalFlash:
		return "flash"
	default:
		return "poisson"
	}
}

// ParseArrivalKind parses the flag spelling of an arrival kind.
func ParseArrivalKind(s string) (ArrivalKind, error) {
	switch s {
	case "poisson":
		return ArrivalPoisson, nil
	case "diurnal":
		return ArrivalDiurnal, nil
	case "flash":
		return ArrivalFlash, nil
	default:
		return 0, fmt.Errorf("workload: unknown arrival kind %q (poisson, diurnal, flash)", s)
	}
}

// ArrivalSpec parameterises one open-loop arrival process.
type ArrivalSpec struct {
	Kind ArrivalKind
	// Start and Duration bound the process in simulated time.
	Start    time.Time
	Duration time.Duration
	// RatePerHour is the base arrival rate.
	RatePerHour float64
	// Amplitude (diurnal) is the relative swing in [0, 1]: the rate
	// oscillates between Rate·(1−A) and Rate·(1+A). Period defaults to
	// 24 h.
	Amplitude float64
	Period    time.Duration
	// PeakFactor (flash) multiplies the base rate during the spike;
	// PeakStart and PeakWidth position the spike as fractions of
	// Duration.
	PeakFactor float64
	PeakStart  float64
	PeakWidth  float64
}

// withDefaults fills zero fields.
func (a ArrivalSpec) withDefaults() ArrivalSpec {
	if a.Start.IsZero() {
		a.Start = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if a.Duration <= 0 {
		a.Duration = 7 * 24 * time.Hour
	}
	if a.RatePerHour <= 0 {
		a.RatePerHour = 100
	}
	if a.Period <= 0 {
		a.Period = 24 * time.Hour
	}
	if a.Kind == ArrivalFlash {
		if a.PeakFactor <= 0 {
			a.PeakFactor = 8
		}
		if a.PeakWidth <= 0 {
			a.PeakWidth = 0.2
		}
		if a.PeakStart <= 0 {
			a.PeakStart = 0.4
		}
	}
	return a
}

// validate rejects specs the thinning sampler cannot handle.
func (a ArrivalSpec) validate() error {
	if a.RatePerHour <= 0 {
		return fmt.Errorf("workload: arrival rate must be positive, got %v", a.RatePerHour)
	}
	if a.Duration <= 0 {
		return fmt.Errorf("workload: arrival duration must be positive, got %v", a.Duration)
	}
	if a.Amplitude < 0 || a.Amplitude > 1 {
		return fmt.Errorf("workload: diurnal amplitude must be in [0,1], got %v", a.Amplitude)
	}
	if a.Kind == ArrivalFlash {
		if a.PeakFactor < 1 {
			return fmt.Errorf("workload: flash peak factor must be ≥ 1, got %v", a.PeakFactor)
		}
		if a.PeakStart < 0 || a.PeakWidth <= 0 || a.PeakStart+a.PeakWidth > 1 {
			return fmt.Errorf("workload: flash peak window [%v, %v+%v] must fit in [0,1]",
				a.PeakStart, a.PeakStart, a.PeakWidth)
		}
	}
	return nil
}

// rateAt returns the instantaneous arrival rate (per hour) at t.
func (a ArrivalSpec) rateAt(t time.Time) float64 {
	switch a.Kind {
	case ArrivalDiurnal:
		elapsed := t.Sub(a.Start).Seconds()
		phase := 2 * math.Pi * elapsed / a.Period.Seconds()
		return a.RatePerHour * (1 + a.Amplitude*math.Sin(phase))
	case ArrivalFlash:
		frac := float64(t.Sub(a.Start)) / float64(a.Duration)
		if frac >= a.PeakStart && frac < a.PeakStart+a.PeakWidth {
			return a.RatePerHour * a.PeakFactor
		}
		return a.RatePerHour
	default:
		return a.RatePerHour
	}
}

// peakRate returns the maximum instantaneous rate (per hour), the thinning
// envelope.
func (a ArrivalSpec) peakRate() float64 {
	switch a.Kind {
	case ArrivalDiurnal:
		return a.RatePerHour * (1 + a.Amplitude)
	case ArrivalFlash:
		return a.RatePerHour * a.PeakFactor
	default:
		return a.RatePerHour
	}
}

// arrivalStream samples successive arrival instants from a spec by
// thinning (Lewis & Shedler): candidate gaps are exponential at the peak
// rate and each candidate is accepted with probability rate(t)/peak, which
// yields an exact non-homogeneous Poisson process for any bounded rate
// function.
type arrivalStream struct {
	spec ArrivalSpec
	t    time.Time
	end  time.Time
	max  float64 // peak rate in arrivals per second
}

func newArrivalStream(spec ArrivalSpec) *arrivalStream {
	return &arrivalStream{
		spec: spec,
		t:    spec.Start,
		end:  spec.Start.Add(spec.Duration),
		max:  spec.peakRate() / 3600,
	}
}

// next draws the next arrival instant; ok=false once the process's horizon
// is exhausted.
func (s *arrivalStream) next(rng *rand.Rand) (time.Time, bool) {
	for {
		gap := rng.ExpFloat64() / s.max
		s.t = s.t.Add(time.Duration(gap * float64(time.Second)))
		if !s.t.Before(s.end) {
			return time.Time{}, false
		}
		if rng.Float64()*s.spec.peakRate() <= s.spec.rateAt(s.t) {
			return s.t, true
		}
	}
}
