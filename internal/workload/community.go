package workload

import (
	"math/rand"

	"ethpart/internal/types"
)

// communityState implements the paper's first caveat — "if sharding is made
// visible to developers, then multi-shard operations could be sometimes
// avoided" — as a workload property: every account and contract belongs to
// one of N application communities, and a configurable fraction of each
// account's interactions stays inside its community. A perfectly
// shard-aligned application corresponds to locality 1.0 with one community
// per shard; today's Ethereum corresponds to locality 0 (communities off).
type communityState struct {
	n        int
	locality float64
	of       map[types.Address]int

	accounts [][]types.Address
	pa       [][]types.Address

	tokens     [][]types.Address
	wallets    [][]types.Address
	games      [][]types.Address
	airdrops   [][]types.Address
	crowdsales [][]types.Address
}

func newCommunityState(n int, locality float64) *communityState {
	c := &communityState{
		n:        n,
		locality: locality,
		of:       make(map[types.Address]int),
	}
	alloc := func() [][]types.Address { return make([][]types.Address, n) }
	c.accounts = alloc()
	c.pa = alloc()
	c.tokens = alloc()
	c.wallets = alloc()
	c.games = alloc()
	c.airdrops = alloc()
	c.crowdsales = alloc()
	return c
}

// assign places addr in a community (uniformly) and returns it.
func (c *communityState) assign(rng *rand.Rand, addr types.Address) int {
	if comm, ok := c.of[addr]; ok {
		return comm
	}
	comm := rng.Intn(c.n)
	c.of[addr] = comm
	return comm
}

// assignTo places addr in a specific community (first placement wins) and
// returns the effective community. Shard-aware applications join their
// creator's community: a funded account joins its funder, an airdrop
// recipient its sender, a crowdsale its token.
func (c *communityState) assignTo(addr types.Address, comm int) int {
	if prev, ok := c.of[addr]; ok {
		return prev
	}
	c.of[addr] = comm
	return comm
}

// community returns addr's community, defaulting to 0 for untracked
// addresses (the faucet, miners).
func (c *communityState) community(addr types.Address) int {
	return c.of[addr]
}

// addAccount registers a user account in a uniformly chosen community.
func (c *communityState) addAccount(rng *rand.Rand, addr types.Address) {
	comm := c.assign(rng, addr)
	c.accounts[comm] = append(c.accounts[comm], addr)
}

// addAccountTo registers a user account in a chosen community.
func (c *communityState) addAccountTo(addr types.Address, comm int) {
	comm = c.assignTo(addr, comm)
	c.accounts[comm] = append(c.accounts[comm], addr)
}

// registryFor maps a generator contract registry to its per-community
// counterpart.
func (c *communityState) registryFor(global *[]types.Address, g *Generator) *[][]types.Address {
	switch global {
	case &g.tokens:
		return &c.tokens
	case &g.wallets:
		return &c.wallets
	case &g.games:
		return &c.games
	case &g.airdrops:
		return &c.airdrops
	case &g.crowdsales:
		return &c.crowdsales
	default:
		return nil
	}
}

// addContract registers a deployed contract in its community registry;
// comm < 0 chooses uniformly.
func (c *communityState) addContract(rng *rand.Rand, addr types.Address, reg *[][]types.Address, comm int) {
	if comm < 0 {
		comm = c.assign(rng, addr)
	} else {
		comm = c.assignTo(addr, comm)
	}
	(*reg)[comm] = append((*reg)[comm], addr)
}

// pickLocal reports whether the next interaction should stay local and, if
// so, returns a community-local pick from the list when available.
func (c *communityState) pickLocal(rng *rand.Rand, comm int, list [][]types.Address) (types.Address, bool) {
	if rng.Float64() >= c.locality {
		return types.Address{}, false
	}
	local := list[comm]
	if len(local) == 0 {
		return types.Address{}, false
	}
	return local[rng.Intn(len(local))], true
}

// feedPA records activity for preferential attachment inside addr's
// community.
func (c *communityState) feedPA(rng *rand.Rand, addr types.Address) {
	const paCap = 1 << 18
	comm, ok := c.of[addr]
	if !ok {
		return
	}
	if len(c.pa[comm]) < paCap {
		c.pa[comm] = append(c.pa[comm], addr)
	} else {
		c.pa[comm][rng.Intn(paCap)] = addr
	}
}
