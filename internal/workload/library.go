package workload

import (
	"fmt"
	"sort"
	"time"
)

// The named scenario library. Each entry is a full composition the tools
// can generate, validate and describe by name; experiments compare
// partitioning methods across them. Durations are kept to days so every
// scenario generates in seconds at default rates.

// libStart anchors the library in simulated time (the era history ends in
// 2016; scenarios probe the years after).
var libStart = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)

// Scenarios returns the named scenario library, sorted by name. The
// returned specs are copies; callers may adjust Seed or Arrival freely.
func Scenarios() []Scenario {
	lib := []Scenario{
		{
			Name:        "transfer-steady",
			Description: "steady Poisson user-to-user transfers, light population growth",
			Arrival: ArrivalSpec{
				Kind: ArrivalPoisson, Start: libStart,
				Duration: 7 * 24 * time.Hour, RatePerHour: 120,
			},
			Population:     PopulationSpec{HotProb: 0.2, RecencyBias: 0.5},
			Mix:            ScenarioMix{Transfer: 1},
			NewAccountFrac: 0.15,
		},
		{
			Name:        "diurnal-exchange",
			Description: "day/night exchange deposits and withdrawals around hub super-vertices",
			Arrival: ArrivalSpec{
				Kind: ArrivalDiurnal, Start: libStart,
				Duration: 7 * 24 * time.Hour, RatePerHour: 150, Amplitude: 0.8,
			},
			Population:     PopulationSpec{HotProb: 0.4, RecencyBias: 0.8},
			Mix:            ScenarioMix{Transfer: 0.3, Token: 0.2, Exchange: 0.5},
			NewAccountFrac: 0.08,
			DeploysPerDay:  2,
		},
		{
			Name:        "flash-nft-mint",
			Description: "NFT mint rush: flat traffic with an 8× mint spike mid-run",
			Arrival: ArrivalSpec{
				Kind: ArrivalFlash, Start: libStart,
				Duration: 4 * 24 * time.Hour, RatePerHour: 100,
				PeakFactor: 8, PeakStart: 0.4, PeakWidth: 0.15,
			},
			Population:     PopulationSpec{HotProb: 0.5, RecencyBias: 0.8},
			Mix:            ScenarioMix{Transfer: 0.25, NFTMint: 0.6, Airdrop: 0.15},
			NewAccountFrac: 0.2,
			DeploysPerDay:  6,
		},
		{
			Name:        "airdrop-storm",
			Description: "airdrop-heavy fan-out traffic seeding many new accounts",
			Arrival: ArrivalSpec{
				Kind: ArrivalPoisson, Start: libStart,
				Duration: 3 * 24 * time.Hour, RatePerHour: 80,
			},
			Population:     PopulationSpec{HotProb: 0.2, RecencyBias: 0.5},
			Mix:            ScenarioMix{Transfer: 0.3, Airdrop: 0.5, Token: 0.2},
			NewAccountFrac: 0.1,
			DeploysPerDay:  3,
		},
		{
			Name:        "crud-diurnal",
			Description: "state-heavy keyed-store CRUD mix with a day/night cycle",
			Arrival: ArrivalSpec{
				Kind: ArrivalDiurnal, Start: libStart,
				Duration: 5 * 24 * time.Hour, RatePerHour: 130, Amplitude: 0.6,
			},
			Population:     PopulationSpec{HotProb: 0.3, RecencyBias: 0.8},
			Mix:            ScenarioMix{Transfer: 0.2, CRUD: 0.6, Game: 0.2},
			NewAccountFrac: 0.1,
			DeploysPerDay:  2,
		},
		{
			Name:        "flash-crowd",
			Description: "the autoscale figure's shape: quiet boards, a 10× surge, cooldown",
			Arrival: ArrivalSpec{
				Kind: ArrivalFlash, Start: libStart,
				Duration: 4 * 24 * time.Hour, RatePerHour: 60,
				PeakFactor: 10, PeakStart: 0.3, PeakWidth: 0.25,
			},
			Population:     PopulationSpec{HotProb: 0.4, RecencyBias: 0.8},
			Mix:            ScenarioMix{Transfer: 0.6, Token: 0.2, Game: 0.2},
			NewAccountFrac: 0.25,
			DeploysPerDay:  2,
		},
	}
	sort.Slice(lib, func(i, j int) bool { return lib[i].Name < lib[j].Name })
	return lib
}

// ScenarioNames returns the library's names, sorted.
func ScenarioNames() []string {
	lib := Scenarios()
	names := make([]string, len(lib))
	for i, sc := range lib {
		names[i] = sc.Name
	}
	return names
}

// LookupScenario returns the named library scenario.
func LookupScenario(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, ScenarioNames())
}

// ResolveScenario looks up a named library scenario and applies the
// overrides every tool exposes as flags: arrival kind (empty keeps the
// scenario's own process), duration in hours (0 keeps), and seed (0
// keeps). Swapping the arrival kind keeps the scenario's rate and start;
// kind-specific parameters the scenario never set fall to their defaults
// when the generator is built.
func ResolveScenario(name, arrival string, hours float64, seed int64) (Scenario, error) {
	sc, err := LookupScenario(name)
	if err != nil {
		return Scenario{}, err
	}
	if arrival != "" {
		kind, err := ParseArrivalKind(arrival)
		if err != nil {
			return Scenario{}, err
		}
		sc.Arrival.Kind = kind
	}
	if hours > 0 {
		sc.Arrival.Duration = time.Duration(hours * float64(time.Hour))
	}
	if seed != 0 {
		sc.Seed = seed
	}
	return sc, nil
}
