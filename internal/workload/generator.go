package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// Config parameterises the era-based synthetic-history generator — the
// closed-loop reproduction of the paper's trace. Since the pipeline
// refactor it is one composition of the three workload layers (an era
// arrival plan, the preferential-attachment population and the era TxMix
// scenario) and produces byte-identical histories to the pre-pipeline
// generator.
type Config struct {
	// Seed makes the whole history reproducible.
	Seed int64
	// Scale multiplies every transaction rate. 1.0 approximates the
	// paper's trace magnitude (tens of millions of interactions); the
	// experiments default to 0.01–0.05 to stay laptop-sized while keeping
	// the relative magnitudes of all eras.
	Scale float64
	// Eras is the history schedule; defaults to DefaultEras().
	Eras []Era
	// BlockInterval is simulated time between blocks; defaults to 1 hour.
	// (Real Ethereum mines every ~15 s; coarser blocks with
	// proportionally more transactions produce the same graph.)
	BlockInterval time.Duration
	// MaxAirdropFanout bounds airdrop batch size; defaults to 16.
	MaxAirdropFanout int
	// PAProb is the probability that an interaction target is drawn by
	// preferential attachment rather than uniformly; defaults to 0.7,
	// which yields the heavy-tailed degree distribution real traces show.
	PAProb float64
	// Chain configures the underlying blockchain; defaults to
	// chain.DefaultConfig with a sparse state-commit interval.
	Chain *chain.Config
	// Communities, when > 1 together with CommunityLocality > 0, turns on
	// the shard-aware workload of the paper's first caveat: accounts and
	// contracts belong to application communities and CommunityLocality of
	// each account's interactions stays inside its community. See
	// communityState.
	Communities       int
	CommunityLocality float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Eras == nil {
		c.Eras = DefaultEras()
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = time.Hour
	}
	if c.MaxAirdropFanout <= 0 {
		c.MaxAirdropFanout = 16
	}
	if c.PAProb <= 0 {
		c.PAProb = 0.7
	}
	if c.Chain == nil {
		cc := chain.DefaultConfig()
		cc.CommitInterval = 512 // state roots are sampled, not per-block
		cc.BlockGasLimit = 1 << 62
		c.Chain = &cc
	}
	return c
}

// initialFunding is the balance a new account receives with its first
// incoming transfer — enough for many transactions at gas price 1.
const initialFunding = 100_000_000

// blockPlan is the arrival layer's output for one block: its timestamp,
// how many logical actions arrive in it and (for open-loop compositions)
// the arrival instant of each action. A nil times means every action
// arrives exactly at the block timestamp — the closed-loop era semantics.
type blockPlan struct {
	time  time.Time
	count int
	era   *Era    // era composition only
	times []int64 // per-action arrival unix seconds; nil = all at time
	skip  bool    // schedule gap: advance time, emit no block
}

// blockPlanner is the arrival layer: it plans successive blocks. plan
// returns ok=false when the schedule is exhausted; advance moves the
// generator clock after a block seals.
type blockPlanner interface {
	plan(g *Generator) (blockPlan, bool)
	advance(g *Generator)
	done(g *Generator) bool
}

// emitter is the scenario layer: it fills the block being built with the
// plan's transactions through the generator's population machinery.
type emitter interface {
	emit(g *Generator, plan blockPlan)
}

// composition binds the pipeline's layers for one generator. Both the
// era Config path and every named Scenario compile to exactly one of
// these; NextBlock is the single engine that runs them.
type composition struct {
	arrival  blockPlanner
	scenario emitter
}

// Generator produces the synthetic blockchain history block by block.
// It is not safe for concurrent use.
type Generator struct {
	cfg  Config
	comp composition
	rng  *rand.Rand
	ch   *chain.Chain
	now  time.Time
	end  time.Time

	faucet  types.Address
	miners  []types.Address
	seq     uint64                   // address sequence counter
	pending map[types.Address]uint64 // extra nonces used in the block being built
	delta   map[types.Address]int64  // balance effects of the block being built

	accounts []types.Address // funded user accounts (candidate senders)
	paPool   []types.Address // preferential-attachment pool (activity-weighted)

	tokens     []types.Address
	wallets    []types.Address
	games      []types.Address
	airdrops   []types.Address
	crowdsales []types.Address
	attackers  []types.Address

	// Scenario-composition contract registries and state.
	cruds    []types.Address
	nfts     []types.Address
	exchHubs []types.Address
	crudKeys map[types.Address]uint64 // live key count per CRUD store

	// comm is non-nil when the shard-aware community workload is enabled.
	comm *communityState
	// pop is non-nil when a scenario's hot-account/recency population
	// layer is enabled.
	pop *popState
	// deployComm, when set, pins the next deployTx's contract to a
	// community (consumed by deployTx).
	deployComm *int

	// Block under construction: transactions and their arrival stamps,
	// reused across blocks so the steady-state emit path does not
	// allocate per action.
	blockTxs    []*chain.Transaction
	blockTimes  []int64
	arrivalUnix int64 // arrival stamp applied by appendTx

	stats Stats
}

// Stats summarises what the generator has produced so far.
type Stats struct {
	Blocks        int
	Transactions  int
	Skipped       int
	Deployments   int
	DummyAccounts int
}

// New builds an era-composition generator, its genesis chain, a starter
// population and the initial contract set.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Eras) == 0 {
		return nil, fmt.Errorf("workload: empty era schedule")
	}
	g := newSubstrate(cfg)
	g.comp = composition{arrival: &eraPlanner{}, scenario: eraEmitter{}}
	g.now = cfg.Eras[0].Start
	g.end = cfg.Eras[len(cfg.Eras)-1].End
	if cfg.Communities > 1 && cfg.CommunityLocality > 0 {
		g.comm = newCommunityState(cfg.Communities, cfg.CommunityLocality)
	}
	if err := g.genesis(); err != nil {
		return nil, err
	}
	// Starter population and contracts arrive in the bootstrap blocks.
	if err := g.bootstrap(); err != nil {
		return nil, err
	}
	return g, nil
}

// newSubstrate builds the shared generator machinery (rng, bookkeeping).
func newSubstrate(cfg Config) *Generator {
	return &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pending: make(map[types.Address]uint64),
		delta:   make(map[types.Address]int64),
	}
}

// genesis mints the faucet and miners and boots the chain.
func (g *Generator) genesis() error {
	g.faucet = g.newAddress()
	alloc := map[types.Address]evm.Word{
		// Effectively inexhaustible faucet.
		g.faucet: {0, 0, 1, 0}, // 2^128 wei
	}
	g.ch = chain.NewChain(*g.cfg.Chain, alloc)
	for i := 0; i < 5; i++ {
		g.miners = append(g.miners, g.newAddress())
	}
	return nil
}

// Chain returns the underlying chain.
func (g *Generator) Chain() *chain.Chain { return g.ch }

// Now returns the next block's timestamp.
func (g *Generator) Now() time.Time { return g.now }

// Stats returns generation counters.
func (g *Generator) Stats() Stats { return g.stats }

// Eras returns the schedule (for figure annotations); nil for scenario
// compositions.
func (g *Generator) Eras() []Era { return g.cfg.Eras }

// BlockArrivalTimes returns the arrival stamp of each transaction in the
// most recently sealed block, aligned with its receipts. The slice is
// reused by the next block; callers must not retain it.
func (g *Generator) BlockArrivalTimes() []int64 { return g.blockTimes }

// newAddress mints the next deterministic address.
func (g *Generator) newAddress() types.Address {
	g.seq++
	return types.AddressFromSeq(g.seq)
}

// addAccount registers a user account as a future sender and, when the
// community workload is on, places it in a random community.
func (g *Generator) addAccount(a types.Address) {
	g.accounts = append(g.accounts, a)
	if g.comm != nil {
		g.comm.addAccount(g.rng, a)
	}
}

// addAccountNear registers a new user account in creator's community — the
// shard-aware growth pattern where newcomers join the application community
// that onboarded them.
func (g *Generator) addAccountNear(a, creator types.Address) {
	g.accounts = append(g.accounts, a)
	if g.comm != nil {
		g.comm.addAccountTo(a, g.comm.community(creator))
	}
}

// pickContract chooses a contract of one archetype, preferring the
// sender's community when the shard-aware workload is enabled.
func (g *Generator) pickContract(sender types.Address, global *[]types.Address) types.Address {
	if g.comm != nil {
		if perComm := g.comm.registryFor(global, g); perComm != nil {
			if addr, ok := g.comm.pickLocal(g.rng, g.comm.community(sender), *perComm); ok {
				return addr
			}
		}
	}
	return (*global)[g.rng.Intn(len(*global))]
}

// nonceOf returns the next usable nonce for addr inside the block being
// built (chain nonce plus uses earlier in this block).
func (g *Generator) nonceOf(addr types.Address) uint64 {
	n := g.ch.State().GetNonce(addr) + g.pending[addr]
	g.pending[addr]++
	return n
}

// avail returns addr's spendable balance including the effects of
// transactions already queued for the block being built.
func (g *Generator) avail(addr types.Address) int64 {
	bal := g.ch.State().GetBalance(addr)
	var b int64
	if bal.IsUint64() && bal.Uint64() < 1<<62 {
		b = int64(bal.Uint64())
	} else {
		b = 1 << 62 // effectively unlimited (the faucet)
	}
	return b + g.delta[addr]
}

// noteTx records tx's worst-case balance effects for within-block
// accounting and returns tx for chaining.
func (g *Generator) noteTx(tx *chain.Transaction) *chain.Transaction {
	cost := int64(tx.GasLimit * tx.GasPrice)
	if tx.Value.IsUint64() {
		cost += int64(tx.Value.Uint64())
		if tx.To != nil {
			g.delta[*tx.To] += int64(tx.Value.Uint64())
		}
	}
	g.delta[tx.From] -= cost
	return tx
}

// appendTx queues tx into the block being built, stamped with the current
// arrival instant. A nil tx is a no-op (actions whose sender needed no
// faucet top-up pass nil for the top-up slot).
func (g *Generator) appendTx(tx *chain.Transaction) {
	if tx == nil {
		return
	}
	g.blockTxs = append(g.blockTxs, tx)
	g.blockTimes = append(g.blockTimes, g.arrivalUnix)
}

// beginBlock resets the per-block transaction scratch.
func (g *Generator) beginBlock(at time.Time) {
	g.blockTxs = g.blockTxs[:0]
	g.blockTimes = g.blockTimes[:0]
	g.arrivalUnix = at.Unix()
}

// bootstrap funds the first accounts and deploys the starter contract set.
func (g *Generator) bootstrap() error {
	g.beginBlock(g.now)
	for i := 0; i < 32; i++ {
		a := g.newAddress()
		g.addAccount(a)
		g.appendTx(g.transferTx(g.faucet, a, initialFunding))
	}
	// Deploy two of each archetype (crowdsales need a token+owner first,
	// so they go through deployContract on the next block).
	for i := 0; i < 2; i++ {
		g.appendTx(g.deployTx(TokenRuntime(), &g.tokens))
		g.appendTx(g.deployTx(WalletRuntime(), &g.wallets))
	}
	g.appendTx(g.deployTx(GameRuntime(), &g.games))
	g.appendTx(g.deployTx(AirdropRuntime(), &g.airdrops))
	if _, _, err := g.seal(); err != nil {
		return err
	}
	// Second bootstrap block: crowdsales referencing the tokens.
	g.beginBlock(g.now)
	for i := 0; i < 2; i++ {
		owner := g.accounts[g.rng.Intn(len(g.accounts))]
		runtime := CrowdsaleRuntime(g.tokens[i%len(g.tokens)], owner)
		g.appendTx(g.deployTx(runtime, &g.crowdsales))
	}
	_, _, err := g.seal()
	return err
}

// seal builds a block from the queued transactions at the generator clock
// and advances it one interval (the closed-loop bootstrap cadence).
func (g *Generator) seal() (*chain.Block, []*chain.Receipt, error) {
	block, receipts, err := g.sealAt(g.now)
	g.now = g.now.Add(g.cfg.BlockInterval)
	return block, receipts, err
}

// sealAt builds a block from the queued transactions with the given
// timestamp. It does not advance the generator clock — the arrival layer
// owns time.
func (g *Generator) sealAt(at time.Time) (*chain.Block, []*chain.Receipt, error) {
	miner := g.miners[g.rng.Intn(len(g.miners))]
	block, receipts, skipped := g.ch.BuildBlock(miner, at.Unix(), g.blockTxs)
	g.stats.Blocks++
	g.stats.Transactions += len(receipts)
	g.stats.Skipped += len(skipped)
	clear(g.pending)
	clear(g.delta)
	g.updatePools(receipts)
	if len(skipped) > 0 {
		// Skips indicate a generator bug (bad nonce/balance bookkeeping);
		// surface the first one.
		return nil, nil, fmt.Errorf("workload: block %d skipped %d txs: %w",
			block.Header.Number, len(skipped), skipped[0])
	}
	return block, receipts, nil
}

// updatePools feeds executed interactions into the preferential-attachment
// pool and registers deployed contracts.
func (g *Generator) updatePools(receipts []*chain.Receipt) {
	const paCap = 1 << 20
	for _, r := range receipts {
		if r.ContractAddress != nil {
			g.stats.Deployments++
		}
		for _, tr := range r.Traces {
			for _, addr := range [2]types.Address{tr.From, tr.To} {
				if addr == g.faucet {
					continue
				}
				if len(g.paPool) < paCap {
					g.paPool = append(g.paPool, addr)
				} else {
					g.paPool[g.rng.Intn(paCap)] = addr
				}
				if g.comm != nil {
					g.comm.feedPA(g.rng, addr)
				}
				if g.pop != nil {
					g.pop.note(addr)
				}
			}
		}
	}
}

// pickTarget draws an interaction target for sender: the population
// layer's hot set first (scenario compositions), then preferential
// attachment with probability PAProb, otherwise a uniform existing
// account. With the community workload enabled, the draw stays inside the
// sender's community with the configured locality.
func (g *Generator) pickTarget(sender types.Address) types.Address {
	if g.pop != nil {
		if addr, ok := g.pop.draw(g.rng); ok {
			return addr
		}
	}
	if g.comm != nil && g.rng.Float64() < g.comm.locality {
		comm := g.comm.community(sender)
		if pool := g.comm.pa[comm]; len(pool) > 0 && g.rng.Float64() < g.cfg.PAProb {
			return pool[g.rng.Intn(len(pool))]
		}
		if accs := g.comm.accounts[comm]; len(accs) > 0 {
			return accs[g.rng.Intn(len(accs))]
		}
	}
	if len(g.paPool) > 0 && g.rng.Float64() < g.cfg.PAProb {
		return g.paPool[g.rng.Intn(len(g.paPool))]
	}
	return g.accounts[g.rng.Intn(len(g.accounts))]
}

// pickSender draws a funded sender, topping it up from the faucet when its
// spendable balance (including this block's queued spending) runs low. The
// returned top-up transaction (if any) must precede the sender's
// transaction in the block.
func (g *Generator) pickSender(need uint64) (types.Address, *chain.Transaction) {
	sender := g.accounts[g.rng.Intn(len(g.accounts))]
	if g.avail(sender) >= int64(need) {
		return sender, nil
	}
	top := initialFunding + need // cover this transaction plus headroom
	return sender, g.transferTx(g.faucet, sender, top)
}

// transferTx builds a plain value transfer.
func (g *Generator) transferTx(from, to types.Address, value uint64) *chain.Transaction {
	return g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(from), From: from, To: &to,
		Value: evm.WordFromUint64(value), GasLimit: 50_000, GasPrice: 1,
	})
}

// deployTx builds a contract deployment from the faucet and records the
// eventual address in reg.
func (g *Generator) deployTx(runtime []byte, reg *[]types.Address) *chain.Transaction {
	nonce := g.nonceOf(g.faucet)
	addr := types.ContractAddress(g.faucet, nonce)
	*reg = append(*reg, addr)
	if g.comm != nil {
		if perComm := g.comm.registryFor(reg, g); perComm != nil {
			comm := -1
			if g.deployComm != nil {
				comm = *g.deployComm
				g.deployComm = nil
			}
			g.comm.addContract(g.rng, addr, perComm, comm)
		}
	}
	return g.noteTx(&chain.Transaction{
		Nonce: nonce, From: g.faucet, To: nil,
		Data: evm.DeployWrapper(runtime), GasLimit: 5_000_000, GasPrice: 1,
		// Endow contracts that pay out.
		Value: evm.WordFromUint64(1_000_000),
	})
}

// Done reports whether the schedule is exhausted.
func (g *Generator) Done() bool { return g.comp.arrival.done(g) }

// NextBlock generates and executes one block of composition-appropriate
// transactions, returning the sealed block and its receipts. It returns
// ok=false once the schedule is exhausted. This is the pipeline engine:
// the arrival layer plans the block, the scenario layer emits its
// transactions through the population machinery, and the chain substrate
// seals it.
func (g *Generator) NextBlock() (*chain.Block, []*chain.Receipt, bool, error) {
	if g.Done() {
		return nil, nil, false, nil
	}
	plan, ok := g.comp.arrival.plan(g)
	if !ok {
		return nil, nil, false, nil
	}
	if plan.skip {
		// Gap in the schedule: skip forward.
		g.comp.arrival.advance(g)
		return nil, nil, true, nil
	}
	g.beginBlock(plan.time)
	g.comp.scenario.emit(g, plan)
	block, receipts, err := g.sealAt(plan.time)
	g.comp.arrival.advance(g)
	if err != nil {
		return nil, nil, false, err
	}
	return block, receipts, true, nil
}

// eraPlanner is the closed-loop arrival layer of the era composition: one
// block per BlockInterval, its action count drawn from the era's
// interpolated daily rate.
type eraPlanner struct{}

func (eraPlanner) plan(g *Generator) (blockPlan, bool) {
	era := eraAt(g.cfg.Eras, g.now)
	if era == nil {
		return blockPlan{skip: true}, true
	}
	perBlock := era.rateAt(g.now) * g.cfg.Scale * g.cfg.BlockInterval.Seconds() / 86_400
	count := int(perBlock)
	if g.rng.Float64() < perBlock-float64(count) {
		count++
	}
	return blockPlan{time: g.now, count: count, era: era}, true
}

func (eraPlanner) advance(g *Generator) { g.now = g.now.Add(g.cfg.BlockInterval) }

func (eraPlanner) done(g *Generator) bool { return !g.now.Before(g.end) }

// eraEmitter is the era composition's scenario layer: era-paced contract
// deployments plus the era's TxMix, exactly the paper-shaped closed-loop
// workload.
type eraEmitter struct{}

func (eraEmitter) emit(g *Generator, plan blockPlan) {
	era := plan.era
	// Era-paced contract deployments.
	perBlockDeploys := era.DeploysPerDay * g.cfg.BlockInterval.Seconds() / 86_400
	if g.rng.Float64() < perBlockDeploys {
		g.deployEraContract(era)
	}
	for i := 0; i < plan.count; i++ {
		g.eraAction(era)
	}
}

// deployEraContract deploys a random archetype weighted toward the era's mix.
func (g *Generator) deployEraContract(era *Era) {
	switch g.rng.Intn(5) {
	case 0:
		g.appendTx(g.deployTx(TokenRuntime(), &g.tokens))
	case 1:
		g.appendTx(g.deployTx(WalletRuntime(), &g.wallets))
	case 2:
		g.appendTx(g.deployTx(GameRuntime(), &g.games))
	case 3:
		g.appendTx(g.deployTx(AirdropRuntime(), &g.airdrops))
	default:
		token := g.tokens[g.rng.Intn(len(g.tokens))]
		owner := g.accounts[g.rng.Intn(len(g.accounts))]
		if g.comm != nil {
			// A shard-aware crowdsale is built around one community's
			// token and owner and lives in that community.
			comm := g.rng.Intn(g.comm.n)
			if local := g.comm.tokens[comm]; len(local) > 0 {
				token = local[g.rng.Intn(len(local))]
			}
			if local := g.comm.accounts[comm]; len(local) > 0 {
				owner = local[g.rng.Intn(len(local))]
			}
			g.deployComm = &comm
		}
		g.appendTx(g.deployTx(CrowdsaleRuntime(token, owner), &g.crowdsales))
	}
}

// eraAction emits one logical user action of the era's mix (possibly
// preceded by a faucet top-up transaction).
func (g *Generator) eraAction(era *Era) {
	// Attack-era dummy account creation takes priority.
	if era.DummyFrac > 0 && g.rng.Float64() < era.DummyFrac {
		g.dummyAction()
		return
	}
	r := g.rng.Float64()
	m := era.Mix
	switch {
	case r < m.Transfer:
		g.transferAction(era.NewAccountFrac)
	case r < m.Transfer+m.Token:
		g.tokenAction()
	case r < m.Transfer+m.Token+m.Wallet:
		g.walletAction()
	case r < m.Transfer+m.Token+m.Wallet+m.Crowdsale:
		g.crowdsaleAction()
	case r < m.Transfer+m.Token+m.Wallet+m.Crowdsale+m.Game:
		g.gameAction()
	default:
		g.airdropAction()
	}
}

// dummyAction mints a throwaway account from an attacker, creating a vertex
// that is never touched again.
func (g *Generator) dummyAction() {
	if len(g.attackers) == 0 {
		for i := 0; i < 8; i++ {
			g.attackers = append(g.attackers, g.newAddress())
		}
		// Fund attackers generously in-band.
		for _, a := range g.attackers {
			g.appendTx(g.transferTx(g.faucet, a, 1<<40))
		}
		g.dummyAction()
		return
	}
	attacker := g.attackers[g.rng.Intn(len(g.attackers))]
	victim := g.newAddress()
	g.stats.DummyAccounts++
	tx := g.transferTx(attacker, victim, 1)
	// Attacker running dry: top up.
	if g.avail(attacker) < 1<<20 {
		g.appendTx(g.transferTx(g.faucet, attacker, 1<<40))
	}
	g.appendTx(tx)
}

// transferAction is a plain transfer; with probability newFrac the
// recipient is a brand-new account (this is how the population grows).
func (g *Generator) transferAction(newFrac float64) {
	value := uint64(1_000 + g.rng.Intn(100_000))
	var to types.Address
	newAccount := g.rng.Float64() < newFrac
	if newAccount {
		value = initialFunding // first transfer funds the account
	}
	sender, topup := g.pickSender(value + 50_000)
	if newAccount {
		to = g.newAddress()
		g.addAccountNear(to, sender)
	} else {
		to = g.pickTarget(sender)
	}
	g.appendTx(topup)
	g.appendTx(g.transferTx(sender, to, value))
}

// tokenAction calls a token contract's transfer.
func (g *Generator) tokenAction() {
	sender, topup := g.pickSender(300_000)
	token := g.pickContract(sender, &g.tokens)
	recipient := g.pickTarget(sender)
	amount := evm.WordFromUint64(uint64(1 + g.rng.Intn(1000)))
	data := make([]byte, 64)
	rb := evm.WordFromBytes(recipient[:]).Bytes32()
	ab := amount.Bytes32()
	copy(data[0:32], rb[:])
	copy(data[32:64], ab[:])
	g.appendTx(topup)
	g.appendTx(g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &token,
		Data: data, GasLimit: 300_000, GasPrice: 1,
	}))
}

// walletAction sends value through a wallet contract.
func (g *Generator) walletAction() {
	value := uint64(100 + g.rng.Intn(10_000))
	sender, topup := g.pickSender(value + 300_000)
	wallet := g.pickContract(sender, &g.wallets)
	target := g.pickTarget(sender)
	data := make([]byte, 32)
	tb := evm.WordFromBytes(target[:]).Bytes32()
	copy(data, tb[:])
	g.appendTx(topup)
	g.appendTx(g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &wallet,
		Value: evm.WordFromUint64(value), Data: data, GasLimit: 300_000, GasPrice: 1,
	}))
}

// crowdsaleAction participates in a crowdsale.
func (g *Generator) crowdsaleAction() {
	value := uint64(1_000 + g.rng.Intn(50_000))
	sender, topup := g.pickSender(value + 500_000)
	sale := g.pickContract(sender, &g.crowdsales)
	g.appendTx(topup)
	g.appendTx(g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &sale,
		Value: evm.WordFromUint64(value), GasLimit: 500_000, GasPrice: 1,
	}))
}

// gameAction plays a game contract.
func (g *Generator) gameAction() {
	sender, topup := g.pickSender(500_000)
	game := g.pickContract(sender, &g.games)
	g.appendTx(topup)
	g.appendTx(g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &game,
		Value: evm.WordFromUint64(10), GasLimit: 500_000, GasPrice: 1,
	}))
}

// airdropAction distributes to a batch of targets, some brand new.
func (g *Generator) airdropAction() {
	n := 2 + g.rng.Intn(g.cfg.MaxAirdropFanout-1)
	sender, topup := g.pickSender(uint64(200_000 + n*40_000))
	drop := g.pickContract(sender, &g.airdrops)
	data := make([]byte, 32*(n+1))
	nb := evm.WordFromUint64(uint64(n)).Bytes32()
	copy(data[0:32], nb[:])
	for i := 0; i < n; i++ {
		var target types.Address
		if g.rng.Float64() < 0.3 {
			target = g.newAddress()
			g.addAccountNear(target, sender)
		} else {
			target = g.pickTarget(sender)
		}
		tb := evm.WordFromBytes(target[:]).Bytes32()
		copy(data[32*(i+1):], tb[:])
	}
	g.appendTx(topup)
	g.appendTx(g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &drop,
		Data: data, GasLimit: uint64(200_000 + n*40_000), GasPrice: 1,
	}))
}
