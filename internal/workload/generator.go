package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// Config parameterises the synthetic-history generator.
type Config struct {
	// Seed makes the whole history reproducible.
	Seed int64
	// Scale multiplies every transaction rate. 1.0 approximates the
	// paper's trace magnitude (tens of millions of interactions); the
	// experiments default to 0.01–0.05 to stay laptop-sized while keeping
	// the relative magnitudes of all eras.
	Scale float64
	// Eras is the history schedule; defaults to DefaultEras().
	Eras []Era
	// BlockInterval is simulated time between blocks; defaults to 1 hour.
	// (Real Ethereum mines every ~15 s; coarser blocks with
	// proportionally more transactions produce the same graph.)
	BlockInterval time.Duration
	// MaxAirdropFanout bounds airdrop batch size; defaults to 16.
	MaxAirdropFanout int
	// PAProb is the probability that an interaction target is drawn by
	// preferential attachment rather than uniformly; defaults to 0.7,
	// which yields the heavy-tailed degree distribution real traces show.
	PAProb float64
	// Chain configures the underlying blockchain; defaults to
	// chain.DefaultConfig with a sparse state-commit interval.
	Chain *chain.Config
	// Communities, when > 1 together with CommunityLocality > 0, turns on
	// the shard-aware workload of the paper's first caveat: accounts and
	// contracts belong to application communities and CommunityLocality of
	// each account's interactions stays inside its community. See
	// communityState.
	Communities       int
	CommunityLocality float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Eras == nil {
		c.Eras = DefaultEras()
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = time.Hour
	}
	if c.MaxAirdropFanout <= 0 {
		c.MaxAirdropFanout = 16
	}
	if c.PAProb <= 0 {
		c.PAProb = 0.7
	}
	if c.Chain == nil {
		cc := chain.DefaultConfig()
		cc.CommitInterval = 512 // state roots are sampled, not per-block
		cc.BlockGasLimit = 1 << 62
		c.Chain = &cc
	}
	return c
}

// initialFunding is the balance a new account receives with its first
// incoming transfer — enough for many transactions at gas price 1.
const initialFunding = 100_000_000

// Generator produces the synthetic blockchain history block by block.
// It is not safe for concurrent use.
type Generator struct {
	cfg Config
	rng *rand.Rand
	ch  *chain.Chain
	now time.Time
	end time.Time

	faucet  types.Address
	miners  []types.Address
	seq     uint64                   // address sequence counter
	pending map[types.Address]uint64 // extra nonces used in the block being built
	delta   map[types.Address]int64  // balance effects of the block being built

	accounts []types.Address // funded user accounts (candidate senders)
	paPool   []types.Address // preferential-attachment pool (activity-weighted)

	tokens     []types.Address
	wallets    []types.Address
	games      []types.Address
	airdrops   []types.Address
	crowdsales []types.Address
	attackers  []types.Address

	// comm is non-nil when the shard-aware community workload is enabled.
	comm *communityState
	// deployComm, when set, pins the next deployTx's contract to a
	// community (consumed by deployTx).
	deployComm *int

	stats Stats
}

// Stats summarises what the generator has produced so far.
type Stats struct {
	Blocks        int
	Transactions  int
	Skipped       int
	Deployments   int
	DummyAccounts int
}

// New builds a generator, its genesis chain, a starter population and the
// initial contract set.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Eras) == 0 {
		return nil, fmt.Errorf("workload: empty era schedule")
	}
	g := &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		now:     cfg.Eras[0].Start,
		end:     cfg.Eras[len(cfg.Eras)-1].End,
		pending: make(map[types.Address]uint64),
		delta:   make(map[types.Address]int64),
	}
	if cfg.Communities > 1 && cfg.CommunityLocality > 0 {
		g.comm = newCommunityState(cfg.Communities, cfg.CommunityLocality)
	}
	g.faucet = g.newAddress()
	alloc := map[types.Address]evm.Word{
		// Effectively inexhaustible faucet.
		g.faucet: {0, 0, 1, 0}, // 2^128 wei
	}
	g.ch = chain.NewChain(*cfg.Chain, alloc)

	for i := 0; i < 5; i++ {
		g.miners = append(g.miners, g.newAddress())
	}
	// Starter population and contracts arrive in a bootstrap block.
	if err := g.bootstrap(); err != nil {
		return nil, err
	}
	return g, nil
}

// Chain returns the underlying chain.
func (g *Generator) Chain() *chain.Chain { return g.ch }

// Now returns the next block's timestamp.
func (g *Generator) Now() time.Time { return g.now }

// Stats returns generation counters.
func (g *Generator) Stats() Stats { return g.stats }

// Eras returns the schedule (for figure annotations).
func (g *Generator) Eras() []Era { return g.cfg.Eras }

// newAddress mints the next deterministic address.
func (g *Generator) newAddress() types.Address {
	g.seq++
	return types.AddressFromSeq(g.seq)
}

// addAccount registers a user account as a future sender and, when the
// community workload is on, places it in a random community.
func (g *Generator) addAccount(a types.Address) {
	g.accounts = append(g.accounts, a)
	if g.comm != nil {
		g.comm.addAccount(g.rng, a)
	}
}

// addAccountNear registers a new user account in creator's community — the
// shard-aware growth pattern where newcomers join the application community
// that onboarded them.
func (g *Generator) addAccountNear(a, creator types.Address) {
	g.accounts = append(g.accounts, a)
	if g.comm != nil {
		g.comm.addAccountTo(a, g.comm.community(creator))
	}
}

// pickContract chooses a contract of one archetype, preferring the
// sender's community when the shard-aware workload is enabled.
func (g *Generator) pickContract(sender types.Address, global *[]types.Address) types.Address {
	if g.comm != nil {
		if perComm := g.comm.registryFor(global, g); perComm != nil {
			if addr, ok := g.comm.pickLocal(g.rng, g.comm.community(sender), *perComm); ok {
				return addr
			}
		}
	}
	return (*global)[g.rng.Intn(len(*global))]
}

// nonceOf returns the next usable nonce for addr inside the block being
// built (chain nonce plus uses earlier in this block).
func (g *Generator) nonceOf(addr types.Address) uint64 {
	n := g.ch.State().GetNonce(addr) + g.pending[addr]
	g.pending[addr]++
	return n
}

// avail returns addr's spendable balance including the effects of
// transactions already queued for the block being built.
func (g *Generator) avail(addr types.Address) int64 {
	bal := g.ch.State().GetBalance(addr)
	var b int64
	if bal.IsUint64() && bal.Uint64() < 1<<62 {
		b = int64(bal.Uint64())
	} else {
		b = 1 << 62 // effectively unlimited (the faucet)
	}
	return b + g.delta[addr]
}

// noteTx records tx's worst-case balance effects for within-block
// accounting and returns tx for chaining.
func (g *Generator) noteTx(tx *chain.Transaction) *chain.Transaction {
	cost := int64(tx.GasLimit * tx.GasPrice)
	if tx.Value.IsUint64() {
		cost += int64(tx.Value.Uint64())
		if tx.To != nil {
			g.delta[*tx.To] += int64(tx.Value.Uint64())
		}
	}
	g.delta[tx.From] -= cost
	return tx
}

// bootstrap funds the first accounts and deploys the starter contract set.
func (g *Generator) bootstrap() error {
	var txs []*chain.Transaction
	for i := 0; i < 32; i++ {
		a := g.newAddress()
		g.addAccount(a)
		txs = append(txs, g.transferTx(g.faucet, a, initialFunding))
	}
	// Deploy two of each archetype (crowdsales need a token+owner first,
	// so they go through deployContract on the next block).
	for i := 0; i < 2; i++ {
		txs = append(txs, g.deployTx(TokenRuntime(), &g.tokens))
		txs = append(txs, g.deployTx(WalletRuntime(), &g.wallets))
	}
	txs = append(txs, g.deployTx(GameRuntime(), &g.games))
	txs = append(txs, g.deployTx(AirdropRuntime(), &g.airdrops))
	if err := g.seal(txs); err != nil {
		return err
	}
	// Second bootstrap block: crowdsales referencing the tokens.
	txs = txs[:0]
	for i := 0; i < 2; i++ {
		owner := g.accounts[g.rng.Intn(len(g.accounts))]
		runtime := CrowdsaleRuntime(g.tokens[i%len(g.tokens)], owner)
		txs = append(txs, g.deployTx(runtime, &g.crowdsales))
	}
	return g.seal(txs)
}

// seal builds a block from txs and advances time.
func (g *Generator) seal(txs []*chain.Transaction) error {
	miner := g.miners[g.rng.Intn(len(g.miners))]
	_, receipts, skipped := g.ch.BuildBlock(miner, g.now.Unix(), txs)
	g.stats.Blocks++
	g.stats.Transactions += len(receipts)
	g.stats.Skipped += len(skipped)
	clear(g.pending)
	clear(g.delta)
	g.updatePools(receipts)
	g.now = g.now.Add(g.cfg.BlockInterval)
	if len(skipped) > 0 {
		// Skips indicate a generator bug (bad nonce/balance bookkeeping);
		// surface the first one.
		return fmt.Errorf("workload: block %d skipped %d txs: %w",
			g.ch.Head().Header.Number, len(skipped), skipped[0])
	}
	return nil
}

// updatePools feeds executed interactions into the preferential-attachment
// pool and registers deployed contracts.
func (g *Generator) updatePools(receipts []*chain.Receipt) {
	const paCap = 1 << 20
	for _, r := range receipts {
		if r.ContractAddress != nil {
			g.stats.Deployments++
		}
		for _, tr := range r.Traces {
			for _, addr := range [2]types.Address{tr.From, tr.To} {
				if addr == g.faucet {
					continue
				}
				if len(g.paPool) < paCap {
					g.paPool = append(g.paPool, addr)
				} else {
					g.paPool[g.rng.Intn(paCap)] = addr
				}
				if g.comm != nil {
					g.comm.feedPA(g.rng, addr)
				}
			}
		}
	}
}

// pickTarget draws an interaction target for sender: preferential
// attachment with probability PAProb, otherwise a uniform existing account.
// With the community workload enabled, the draw stays inside the sender's
// community with the configured locality.
func (g *Generator) pickTarget(sender types.Address) types.Address {
	if g.comm != nil && g.rng.Float64() < g.comm.locality {
		comm := g.comm.community(sender)
		if pool := g.comm.pa[comm]; len(pool) > 0 && g.rng.Float64() < g.cfg.PAProb {
			return pool[g.rng.Intn(len(pool))]
		}
		if accs := g.comm.accounts[comm]; len(accs) > 0 {
			return accs[g.rng.Intn(len(accs))]
		}
	}
	if len(g.paPool) > 0 && g.rng.Float64() < g.cfg.PAProb {
		return g.paPool[g.rng.Intn(len(g.paPool))]
	}
	return g.accounts[g.rng.Intn(len(g.accounts))]
}

// pickSender draws a funded sender, topping it up from the faucet when its
// spendable balance (including this block's queued spending) runs low. The
// returned extra transactions (if any) must precede the sender's
// transaction in the block.
func (g *Generator) pickSender(need uint64) (types.Address, []*chain.Transaction) {
	sender := g.accounts[g.rng.Intn(len(g.accounts))]
	if g.avail(sender) >= int64(need) {
		return sender, nil
	}
	top := initialFunding + need // cover this transaction plus headroom
	return sender, []*chain.Transaction{g.transferTx(g.faucet, sender, top)}
}

// transferTx builds a plain value transfer.
func (g *Generator) transferTx(from, to types.Address, value uint64) *chain.Transaction {
	return g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(from), From: from, To: &to,
		Value: evm.WordFromUint64(value), GasLimit: 50_000, GasPrice: 1,
	})
}

// deployTx builds a contract deployment from the faucet and records the
// eventual address in reg.
func (g *Generator) deployTx(runtime []byte, reg *[]types.Address) *chain.Transaction {
	nonce := g.nonceOf(g.faucet)
	addr := types.ContractAddress(g.faucet, nonce)
	*reg = append(*reg, addr)
	if g.comm != nil {
		if perComm := g.comm.registryFor(reg, g); perComm != nil {
			comm := -1
			if g.deployComm != nil {
				comm = *g.deployComm
				g.deployComm = nil
			}
			g.comm.addContract(g.rng, addr, perComm, comm)
		}
	}
	return g.noteTx(&chain.Transaction{
		Nonce: nonce, From: g.faucet, To: nil,
		Data: evm.DeployWrapper(runtime), GasLimit: 5_000_000, GasPrice: 1,
		// Endow contracts that pay out.
		Value: evm.WordFromUint64(1_000_000),
	})
}

// Done reports whether the schedule is exhausted.
func (g *Generator) Done() bool { return !g.now.Before(g.end) }

// NextBlock generates and executes one block of era-appropriate
// transactions, returning the sealed block and its receipts. It returns
// ok=false once the schedule is exhausted.
func (g *Generator) NextBlock() (*chain.Block, []*chain.Receipt, bool, error) {
	if g.Done() {
		return nil, nil, false, nil
	}
	era := eraAt(g.cfg.Eras, g.now)
	if era == nil {
		// Gap in the schedule: skip forward.
		g.now = g.now.Add(g.cfg.BlockInterval)
		return nil, nil, true, nil
	}
	perBlock := era.rateAt(g.now) * g.cfg.Scale * g.cfg.BlockInterval.Seconds() / 86_400
	count := int(perBlock)
	if g.rng.Float64() < perBlock-float64(count) {
		count++
	}

	txs := make([]*chain.Transaction, 0, count+4)
	// Era-paced contract deployments.
	perBlockDeploys := era.DeploysPerDay * g.cfg.BlockInterval.Seconds() / 86_400
	if g.rng.Float64() < perBlockDeploys {
		txs = append(txs, g.deployContract(era))
	}
	for i := 0; i < count; i++ {
		txs = append(txs, g.generateTx(era)...)
	}
	miner := g.miners[g.rng.Intn(len(g.miners))]
	block, receipts, skipped := g.ch.BuildBlock(miner, g.now.Unix(), txs)
	g.stats.Blocks++
	g.stats.Transactions += len(receipts)
	g.stats.Skipped += len(skipped)
	clear(g.pending)
	clear(g.delta)
	g.updatePools(receipts)
	g.now = g.now.Add(g.cfg.BlockInterval)
	if len(skipped) > 0 {
		return nil, nil, false, fmt.Errorf("workload: block %d skipped %d txs: %w",
			block.Header.Number, len(skipped), skipped[0])
	}
	return block, receipts, true, nil
}

// deployContract deploys a random archetype weighted toward the era's mix.
func (g *Generator) deployContract(era *Era) *chain.Transaction {
	switch g.rng.Intn(5) {
	case 0:
		return g.deployTx(TokenRuntime(), &g.tokens)
	case 1:
		return g.deployTx(WalletRuntime(), &g.wallets)
	case 2:
		return g.deployTx(GameRuntime(), &g.games)
	case 3:
		return g.deployTx(AirdropRuntime(), &g.airdrops)
	default:
		token := g.tokens[g.rng.Intn(len(g.tokens))]
		owner := g.accounts[g.rng.Intn(len(g.accounts))]
		if g.comm != nil {
			// A shard-aware crowdsale is built around one community's
			// token and owner and lives in that community.
			comm := g.rng.Intn(g.comm.n)
			if local := g.comm.tokens[comm]; len(local) > 0 {
				token = local[g.rng.Intn(len(local))]
			}
			if local := g.comm.accounts[comm]; len(local) > 0 {
				owner = local[g.rng.Intn(len(local))]
			}
			g.deployComm = &comm
		}
		return g.deployTx(CrowdsaleRuntime(token, owner), &g.crowdsales)
	}
}

// generateTx produces one logical user action (possibly preceded by a
// faucet top-up transaction).
func (g *Generator) generateTx(era *Era) []*chain.Transaction {
	// Attack-era dummy account creation takes priority.
	if era.DummyFrac > 0 && g.rng.Float64() < era.DummyFrac {
		return g.dummyTx()
	}
	r := g.rng.Float64()
	m := era.Mix
	switch {
	case r < m.Transfer:
		return g.userTransfer(era)
	case r < m.Transfer+m.Token:
		return g.tokenTransfer()
	case r < m.Transfer+m.Token+m.Wallet:
		return g.walletForward()
	case r < m.Transfer+m.Token+m.Wallet+m.Crowdsale:
		return g.crowdsaleBuy()
	case r < m.Transfer+m.Token+m.Wallet+m.Crowdsale+m.Game:
		return g.gameMove()
	default:
		return g.airdropBatch()
	}
}

// dummyTx mints a throwaway account from an attacker, creating a vertex
// that is never touched again.
func (g *Generator) dummyTx() []*chain.Transaction {
	if len(g.attackers) == 0 {
		for i := 0; i < 8; i++ {
			g.attackers = append(g.attackers, g.newAddress())
		}
		// Fund attackers generously in-band.
		var txs []*chain.Transaction
		for _, a := range g.attackers {
			txs = append(txs, g.transferTx(g.faucet, a, 1<<40))
		}
		txs = append(txs, g.dummyTx()...)
		return txs
	}
	attacker := g.attackers[g.rng.Intn(len(g.attackers))]
	victim := g.newAddress()
	g.stats.DummyAccounts++
	tx := g.transferTx(attacker, victim, 1)
	// Attacker running dry: top up.
	if g.avail(attacker) < 1<<20 {
		return []*chain.Transaction{g.transferTx(g.faucet, attacker, 1<<40), tx}
	}
	return []*chain.Transaction{tx}
}

// userTransfer is a plain transfer; with era probability the recipient is a
// brand-new account (this is how the population grows).
func (g *Generator) userTransfer(era *Era) []*chain.Transaction {
	value := uint64(1_000 + g.rng.Intn(100_000))
	var to types.Address
	newAccount := g.rng.Float64() < era.NewAccountFrac
	if newAccount {
		value = initialFunding // first transfer funds the account
	}
	sender, extra := g.pickSender(value + 50_000)
	if newAccount {
		to = g.newAddress()
		g.addAccountNear(to, sender)
	} else {
		to = g.pickTarget(sender)
	}
	return append(extra, g.transferTx(sender, to, value))
}

// tokenTransfer calls a token contract's transfer.
func (g *Generator) tokenTransfer() []*chain.Transaction {
	sender, extra := g.pickSender(300_000)
	token := g.pickContract(sender, &g.tokens)
	recipient := g.pickTarget(sender)
	amount := evm.WordFromUint64(uint64(1 + g.rng.Intn(1000)))
	var data [64]byte
	rb := evm.WordFromBytes(recipient[:]).Bytes32()
	ab := amount.Bytes32()
	copy(data[0:32], rb[:])
	copy(data[32:64], ab[:])
	return append(extra, g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &token,
		Data: data[:], GasLimit: 300_000, GasPrice: 1,
	}))
}

// walletForward sends value through a wallet contract.
func (g *Generator) walletForward() []*chain.Transaction {
	value := uint64(100 + g.rng.Intn(10_000))
	sender, extra := g.pickSender(value + 300_000)
	wallet := g.pickContract(sender, &g.wallets)
	target := g.pickTarget(sender)
	var data [32]byte
	tb := evm.WordFromBytes(target[:]).Bytes32()
	copy(data[:], tb[:])
	return append(extra, g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &wallet,
		Value: evm.WordFromUint64(value), Data: data[:], GasLimit: 300_000, GasPrice: 1,
	}))
}

// crowdsaleBuy participates in a crowdsale.
func (g *Generator) crowdsaleBuy() []*chain.Transaction {
	value := uint64(1_000 + g.rng.Intn(50_000))
	sender, extra := g.pickSender(value + 500_000)
	sale := g.pickContract(sender, &g.crowdsales)
	return append(extra, g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &sale,
		Value: evm.WordFromUint64(value), GasLimit: 500_000, GasPrice: 1,
	}))
}

// gameMove plays a game contract.
func (g *Generator) gameMove() []*chain.Transaction {
	sender, extra := g.pickSender(500_000)
	game := g.pickContract(sender, &g.games)
	return append(extra, g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &game,
		Value: evm.WordFromUint64(10), GasLimit: 500_000, GasPrice: 1,
	}))
}

// airdropBatch distributes to a batch of targets, some brand new.
func (g *Generator) airdropBatch() []*chain.Transaction {
	n := 2 + g.rng.Intn(g.cfg.MaxAirdropFanout-1)
	sender, extra := g.pickSender(uint64(200_000 + n*40_000))
	drop := g.pickContract(sender, &g.airdrops)
	data := make([]byte, 32*(n+1))
	nb := evm.WordFromUint64(uint64(n)).Bytes32()
	copy(data[0:32], nb[:])
	for i := 0; i < n; i++ {
		var target types.Address
		if g.rng.Float64() < 0.3 {
			target = g.newAddress()
			g.addAccountNear(target, sender)
		} else {
			target = g.pickTarget(sender)
		}
		tb := evm.WordFromBytes(target[:]).Bytes32()
		copy(data[32*(i+1):], tb[:])
	}
	return append(extra, g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &drop,
		Data: data, GasLimit: uint64(200_000 + n*40_000), GasPrice: 1,
	}))
}
