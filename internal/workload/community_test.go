package workload

import (
	"math/rand"
	"testing"
	"time"

	"ethpart/internal/types"
)

func TestCommunityStateAssignSticky(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := newCommunityState(4, 0.9)
	a := types.AddressFromSeq(1)
	comm := c.assign(rng, a)
	for i := 0; i < 10; i++ {
		if got := c.assign(rng, a); got != comm {
			t.Fatal("community assignment must be sticky")
		}
	}
	if got := c.community(a); got != comm {
		t.Fatalf("community() = %d, want %d", got, comm)
	}
}

func TestCommunityPickLocalRespectsLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// locality 0: never local.
	c := newCommunityState(2, 0)
	c.tokens[0] = []types.Address{types.AddressFromSeq(5)}
	if _, ok := c.pickLocal(rng, 0, c.tokens); ok {
		t.Error("locality 0 must never pick local")
	}
	// locality 1 with an empty community list: cannot pick local.
	c = newCommunityState(2, 1)
	if _, ok := c.pickLocal(rng, 0, c.tokens); ok {
		t.Error("empty community list must fall through")
	}
	// locality 1 with a local contract: always picks it.
	c.tokens[1] = []types.Address{types.AddressFromSeq(9)}
	got, ok := c.pickLocal(rng, 1, c.tokens)
	if !ok || got != types.AddressFromSeq(9) {
		t.Errorf("pickLocal = %v, %v", got, ok)
	}
}

func TestCommunityWorkloadKeepsInteractionsLocal(t *testing.T) {
	// With high locality, most account-to-account edges must join members
	// of the same community.
	eras := []Era{{
		Name:  "mini",
		Start: date(2017, time.January, 1), End: date(2017, time.January, 8),
		TxPerDayStart: 10_000, TxPerDayEnd: 10_000, Kind: GrowthLinear,
		NewAccountFrac: 0.2, DeploysPerDay: 10,
		Mix: TxMix{Transfer: 0.7, Token: 0.15, Wallet: 0.1, Crowdsale: 0.02, Game: 0.02, Airdrop: 0.01},
	}}
	gen, err := New(Config{
		Seed: 4, Scale: 0.05, Eras: eras, BlockInterval: time.Hour,
		Communities: 4, CommunityLocality: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	var same, cross int
	for {
		_, receipts, ok, err := gen.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for _, r := range receipts {
			for _, tr := range r.Traces {
				cf, okF := gen.comm.of[tr.From]
				ct, okT := gen.comm.of[tr.To]
				if !okF || !okT {
					continue // faucet, miners, attacker plumbing
				}
				if cf == ct {
					same++
				} else {
					cross++
				}
			}
		}
	}
	total := same + cross
	if total < 500 {
		t.Fatalf("too few community-tracked interactions: %d", total)
	}
	frac := float64(same) / float64(total)
	if frac < 0.75 {
		t.Errorf("same-community fraction = %.3f, want >= 0.75 at locality 0.95", frac)
	}
}

func TestCommunityWorkloadOffByDefault(t *testing.T) {
	gen, err := New(Config{Seed: 1, Scale: 0.02, Eras: miniEras(), BlockInterval: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if gen.comm != nil {
		t.Error("community workload must be off by default")
	}
}
